package oosql

import (
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus: every query shape the parser tests exercise,
// plus the syntactic edge cases the lexer tests reject.
var fuzzSeeds = []string{
	`select s from s in SUPPLIER`,
	`select (sname = s.sname,
	         pnames = select p.pname from p in s.parts_supplied where p.color = "red")
	 from s in SUPPLIER`,
	`select d from d in (select e from e in DELIVERY where e.supplier.sname = "supplier-1")
	 where d.date = 940101`,
	`select s.eid from s in SUPPLIER
	 where exists z in s.parts_supplied : not exists p in PART : z = p`,
	`select s from s in SUPPLIER
	 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
	`select x from x in X where x.c subset Y' with Y' = select y from y in Y where y.a = x.a`,
	`select s.sname from s in SUPPLIER where count(Y') = 2
	 with Y' = select p from p in PART where p in s.parts_supplied`,
	`forall z in x.c : exists y in Y : y in z`,
	`(a = 1, b = 2)`,
	`((a) = 1)`,
	`{1, 2, 3}`,
	`{}`,
	`x or y and z`,
	`1 + 2 * 3`,
	`a union b subset c`,
	`x not in S`,
	`not x in S`,
	`940101`,
	`select s.sname from s in SUPPLIER where s.x <= 940101 -- comment
	 and t = "red\n"`,
	`"unterminated`,
	`a ? b`,
	`"bad \q escape"`,
	`select`,
	`exists x in`,
	`flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "s")`,
}

// FuzzParse feeds arbitrary source through the lexer and parser: neither may
// panic, and whatever parses must print without panicking. Run the fuzzer
// with
//
//	go test ./internal/oosql -run '^$' -fuzz FuzzParse -fuzztime 30s
//
// (CI runs a short smoke; see make fuzz-smoke.)
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		e, err := Parse(src)
		if err != nil {
			// Errors must be diagnostics, not crashes, and must be non-empty.
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("empty parse error for %q", src)
			}
			return
		}
		if e == nil {
			t.Fatalf("nil AST without error for %q", src)
		}
		_ = e.String()
	})
}
