package oosql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the parser random byte soup and random
// mutations of valid queries: it must return a value or an error, never
// panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`select s from s in SUPPLIER where exists x in s.parts : x = 1`,
		`select (a = 1, b = {1, 2}) from x in X where x.a subset y union z`,
		`count(S) = 0 or not x in y and forall z in w : true`,
	}
	alphabet := `select from where in with exists forall and or not () {} ,.=<>+-*/: "str" 123 4.5 ident Y'`
	words := strings.Fields(alphabet)
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var src string
		switch rng.Intn(3) {
		case 0:
			// Pure word soup.
			n := rng.Intn(30)
			parts := make([]string, n)
			for i := range parts {
				parts[i] = words[rng.Intn(len(words))]
			}
			src = strings.Join(parts, " ")
		case 1:
			// Truncated valid query.
			s := seeds[rng.Intn(len(seeds))]
			src = s[:rng.Intn(len(s)+1)]
		default:
			// Valid query with random byte edits.
			b := []byte(seeds[rng.Intn(len(seeds))])
			for i := 0; i < 3; i++ {
				if len(b) == 0 {
					break
				}
				b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
			}
			src = string(b)
		}
		// Must not panic; errors are fine.
		_, _ = Parse(src)
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestDeepNestingParses guards against recursion blowups on deeply nested
// input.
func TestDeepNestingParses(t *testing.T) {
	depth := 200
	src := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("deep parens: %v", err)
	}
	if _, ok := e.(*Lit); !ok {
		t.Fatalf("deep parens = %T", e)
	}
	// Deep sfw nesting in the from-clause.
	q := "S"
	for i := 0; i < 50; i++ {
		q = "(select x from x in " + q + ")"
	}
	if _, err := Parse("select y from y in " + q); err != nil {
		t.Fatalf("deep sfw: %v", err)
	}
}

// TestWithBindingChains: multiple with-bindings see each other in order.
func TestWithBindingChains(t *testing.T) {
	e, err := Parse(`select x from x in X where x in B with A = {1, 2} with B = A union {3}`)
	if err != nil {
		t.Fatal(err)
	}
	sfw := e.(*SFW)
	if len(sfw.Withs) != 2 || sfw.Withs[0].Name != "A" || sfw.Withs[1].Name != "B" {
		t.Fatalf("withs = %v", sfw.Withs)
	}
}
