package oosql

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func parse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse(%q): expected error", src)
	}
	return err
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`select s.sname from s in SUPPLIER where s.x <= 940101 -- comment
		and t = "red\n"`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatalf("missing EOF: %v", kinds)
	}
	// Spot checks: keyword, ident, symbol, int, string.
	if toks[0].Kind != TokKeyword || toks[0].Text != "select" {
		t.Errorf("tok0 = %v", toks[0])
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokString && tok.Text == "red\n" {
			found = true
		}
	}
	if !found {
		t.Errorf("string literal with escape not lexed")
	}
}

func TestLexPrimedIdent(t *testing.T) {
	toks, err := Lex("Y' = 1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "Y'" {
		t.Fatalf("primed identifier: %v", toks[0])
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`"unterminated`); err == nil {
		t.Errorf("unterminated string must fail")
	}
	if _, err := Lex(`a ? b`); err == nil {
		t.Errorf("unknown character must fail")
	}
	if _, err := Lex(`"bad \q escape"`); err == nil {
		t.Errorf("unknown escape must fail")
	}
}

// TestParsePaperQueries parses the paper's §2 example queries verbatim
// (modulo ASCII operator spellings).
func TestParsePaperQueries(t *testing.T) {
	queries := map[string]string{
		"EQ1": `select (sname = s.sname,
		                pnames = select p.pname
		                         from p in s.parts_supplied
		                         where p.color = "red")
		        from s in SUPPLIER`,
		"EQ2": `select d
		        from d in (select e
		                   from e in DELIVERY
		                   where e.supplier.sname = "s1")
		        where d.date = 940101`,
		"EQ3a": `select s.sname
		         from s in SUPPLIER
		         where s.parts_supplied superset
		               flatten(select t.parts_supplied
		                       from t in SUPPLIER
		                       where t.sname = "s1")`,
		"EQ3b": `select d
		         from d in DELIVERY
		         where exists x in (select s
		                            from s in d.supply
		                            where s.part.color = "red")`,
		"EQ4": `select s.eid
		        from s in SUPPLIER
		        where exists z in s.parts_supplied :
		              not exists p in PART : z = p`,
		"EQ5": `select s
		        from s in SUPPLIER
		        where exists x in s.parts_supplied :
		              exists p in PART : x = p and p.color = "red"`,
		"EQ6": `select (sname = s.sname,
		                parts_suppl = select p from p in PART
		                              where p in s.parts_supplied)
		        from s in SUPPLIER`,
		"GeneralFormat": `select x
		        from x in X
		        where x.c subset Y'
		        with Y' = select y from y in Y where y.a = x.a`,
	}
	for name, src := range queries {
		e := parse(t, src)
		if _, ok := e.(*SFW); !ok {
			t.Errorf("%s: top level is %T, want *SFW", name, e)
		}
	}
}

func TestParseSFWStructure(t *testing.T) {
	e := parse(t, `select s.sname from s in SUPPLIER where s.sname = "s1"`).(*SFW)
	if e.Var != "s" {
		t.Errorf("Var = %q", e.Var)
	}
	if _, ok := e.Sel.(*FieldAcc); !ok {
		t.Errorf("Sel = %T", e.Sel)
	}
	if id, ok := e.From.(*Ident); !ok || id.Name != "SUPPLIER" {
		t.Errorf("From = %v", e.From)
	}
	if b, ok := e.Where.(*Binary); !ok || b.Op != OpEq {
		t.Errorf("Where = %v", e.Where)
	}
}

func TestParseWithBindings(t *testing.T) {
	e := parse(t, `select x from x in X where x.c subset Y' with Y' = select y from y in Y where y.a = x.a`).(*SFW)
	if len(e.Withs) != 1 || e.Withs[0].Name != "Y'" {
		t.Fatalf("Withs = %v", e.Withs)
	}
	if _, ok := e.Withs[0].Val.(*SFW); !ok {
		t.Errorf("with value = %T", e.Withs[0].Val)
	}
	if !strings.Contains(e.String(), "with Y' =") {
		t.Errorf("String = %q", e.String())
	}
}

func TestParseQuantifiers(t *testing.T) {
	q := parse(t, `exists x in S`).(*Quant)
	if q.Kind != QExists || q.Pred != nil {
		t.Errorf("bare exists = %v", q)
	}
	q2 := parse(t, `forall x in S : x.a = 1`).(*Quant)
	if q2.Kind != QForall || q2.Pred == nil {
		t.Errorf("forall = %v", q2)
	}
	// forall needs a predicate.
	parseErr(t, `forall x in S`)
	// Nested quantifiers with membership inside.
	q3 := parse(t, `forall z in x.c : exists y in Y : y in z`).(*Quant)
	if q3.Kind != QForall {
		t.Errorf("nested quant = %v", q3)
	}
}

func TestParseTupleVsParen(t *testing.T) {
	// Tuple constructor wins for "(ident = expr)".
	e := parse(t, `(a = 1, b = 2)`)
	ct, ok := e.(*TupleCtor)
	if !ok || len(ct.Names) != 2 {
		t.Fatalf("tuple ctor = %v", e)
	}
	// Parenthesized comparison with a path is unambiguous.
	e2 := parse(t, `(s.a = 1)`)
	if _, ok := e2.(*Binary); !ok {
		t.Fatalf("paren cmp = %T", e2)
	}
	// Extra parens force the comparison reading.
	e3 := parse(t, `((a) = 1)`)
	if _, ok := e3.(*Binary); !ok {
		t.Fatalf("forced cmp = %T", e3)
	}
}

func TestParseSetCtor(t *testing.T) {
	e := parse(t, `{1, 2, 3}`).(*SetCtor)
	if len(e.Elems) != 3 {
		t.Fatalf("set ctor = %v", e)
	}
	if em := parse(t, `{}`).(*SetCtor); len(em.Elems) != 0 {
		t.Fatalf("empty set ctor = %v", em)
	}
}

func TestParsePrecedence(t *testing.T) {
	// or is weaker than and: a or b and c = a or (b and c)
	e := parse(t, `x or y and z`).(*Binary)
	if e.Op != OpOr {
		t.Fatalf("top = %v", e.Op)
	}
	if r, ok := e.R.(*Binary); !ok || r.Op != OpAnd {
		t.Fatalf("right = %v", e.R)
	}
	// Comparison binds tighter than and.
	e2 := parse(t, `a = 1 and b = 2`).(*Binary)
	if e2.Op != OpAnd {
		t.Fatalf("top = %v", e2.Op)
	}
	// Arithmetic precedence: 1 + 2 * 3.
	e3 := parse(t, `1 + 2 * 3`).(*Binary)
	if e3.Op != OpAdd {
		t.Fatalf("top = %v", e3.Op)
	}
	if r, ok := e3.R.(*Binary); !ok || r.Op != OpMul {
		t.Fatalf("right = %v", e3.R)
	}
	// union level sits between comparison and additive.
	e4 := parse(t, `a union b subset c`).(*Binary)
	if e4.Op != OpSubset {
		t.Fatalf("top = %v", e4.Op)
	}
}

func TestParseNotIn(t *testing.T) {
	e := parse(t, `x not in S`).(*Binary)
	if e.Op != OpNotIn {
		t.Fatalf("op = %v", e.Op)
	}
	// "not (x in S)" is logical not over membership.
	e2 := parse(t, `not x in S`).(*Unary)
	if e2.Op != "not" {
		t.Fatalf("unary = %v", e2)
	}
}

func TestParseCalls(t *testing.T) {
	for _, fn := range []string{"count", "sum", "min", "max", "avg", "flatten"} {
		e := parse(t, fn+`(S)`).(*Call)
		if e.Fn != fn || len(e.Args) != 1 {
			t.Errorf("call %s = %v", fn, e)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	if l := parse(t, `940101`).(*Lit); !value.Equal(l.Val, value.Int(940101)) {
		t.Errorf("int lit = %v", l.Val)
	}
	if l := parse(t, `2.5`).(*Lit); !value.Equal(l.Val, value.Float(2.5)) {
		t.Errorf("float lit = %v", l.Val)
	}
	if l := parse(t, `"red"`).(*Lit); !value.Equal(l.Val, value.String("red")) {
		t.Errorf("string lit = %v", l.Val)
	}
	if l := parse(t, `true`).(*Lit); !value.Equal(l.Val, value.Bool(true)) {
		t.Errorf("bool lit = %v", l.Val)
	}
	if l := parse(t, `-5`).(*Unary); l.Op != "-" {
		t.Errorf("negative lit = %v", l)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`select`,
		`select x from`,
		`select x from x`,
		`select x from x in`,
		`select x from x in X where`,
		`x in`,
		`(a = )`,
		`{1, }`,
		`count(`,
		`count()`,
		`select x from x in X trailing`,
		`exists in S`,
	} {
		parseErr(t, src)
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	// String output re-parses to an equal-printing AST (idempotence of the
	// printer through the parser).
	srcs := []string{
		`select s.sname from s in SUPPLIER where s.sname = "s1"`,
		`select (a = 1, b = {1, 2}) from x in X`,
		`exists z in s.parts : not exists p in PART : z = p`,
		`count(S) = 0 or flatten(T) subset U`,
	}
	for _, src := range srcs {
		e1 := parse(t, src)
		e2 := parse(t, e1.String())
		if e1.String() != e2.String() {
			t.Errorf("round trip drifted:\n 1: %s\n 2: %s", e1, e2)
		}
	}
}
