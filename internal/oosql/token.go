// Package oosql implements the front end for the paper's OOSQL dialect: an
// orthogonal, SQL-like language in which select-from-where blocks nest
// arbitrarily in the select-, from- and where-clause, ranges may be base
// tables or set-valued attributes, and predicates include quantifiers and
// set comparison operators.
//
// The grammar covers every construct the paper uses (Example Queries 1–6 and
// the general formats of §5.1/§5.2):
//
//	query   = expr
//	expr    = or-expr
//	or      = and ("or" and)*
//	and     = not ("and" not)*
//	not     = "not" not | cmp
//	cmp     = set [cmpop set]          cmpop: = <> < <= > >= in, not in,
//	                                   subset psubset superset psuperset contains
//	set     = add (("union"|"intersect"|"minus") add)*
//	add     = mul (("+"|"-") mul)*
//	mul     = unary (("*"|"/") unary)*
//	unary   = "-" unary | postfix
//	postfix = primary ("." ident)*
//	primary = literal | ident | "(" expr ")" | tuple | "{" exprs "}"
//	        | sfw | quantifier | fn "(" expr ")"
//	tuple   = "(" ident "=" expr ("," ident "=" expr)* ")"
//	sfw     = "select" expr "from" ident "in" expr ["where" expr]
//	          ("with" ident "=" expr)*
//	quant   = ("exists"|"forall") ident "in" set [":" expr]
//	fn      = count | sum | min | max | avg | flatten
//
// Note two ambiguities inherited from the paper's notation: "(x = e)"
// parses as a one-field tuple constructor, not as a parenthesized equality
// (write "((x) = e)" or "x = e" for the comparison); and a "with" following
// an unparenthesized select block attaches to that block, so chained
// bindings should parenthesize their values:
// "with A = (select ...) with B = (select ... A ...)".
package oosql

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSym // punctuation and operator symbols
)

// Pos is a line/column source position (1-based).
type Pos struct{ Line, Col int }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords of the language. Identifiers are case-sensitive; keywords are
// recognized in lower case only, matching the paper's examples.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "in": true, "with": true,
	"exists": true, "forall": true,
	"and": true, "or": true, "not": true,
	"union": true, "intersect": true, "minus": true,
	"subset": true, "psubset": true, "superset": true, "psuperset": true,
	"contains": true,
	"count":    true, "sum": true, "min": true, "max": true, "avg": true,
	"flatten": true,
	"true":    true, "false": true,
}

// Error is a front-end error carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("oosql: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
