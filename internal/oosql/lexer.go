package oosql

import (
	"strings"
	"unicode"
)

// Lexer turns OOSQL source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(start)
	case c == '"':
		return lx.lexString(start)
	}
	// Symbols, longest match first.
	for _, sym := range []string{"<=", ">=", "<>", "(", ")", "{", "}", ",", ".", "=", "<", ">", "+", "-", "*", "/", ":"} {
		if strings.HasPrefix(lx.src[lx.off:], sym) {
			for range sym {
				lx.advance()
			}
			return Token{Kind: TokSym, Text: sym, Pos: start}, nil
		}
	}
	return Token{}, errf(start, "unexpected character %q", string(c))
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '-' && lx.peek2() == '-':
			// SQL-style line comment.
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// lexIdent scans an identifier or keyword. Trailing primes are allowed so
// the paper's subquery names (Y′ written Y') work verbatim.
func (lx *Lexer) lexIdent(start Pos) Token {
	from := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[from:lx.off]
	if keywords[text] {
		return Token{Kind: TokKeyword, Text: text, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (lx *Lexer) lexNumber(start Pos) (Token, error) {
	from := lx.off
	for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
		lx.advance()
	}
	isFloat := false
	if lx.peek() == '.' && lx.peek2() >= '0' && lx.peek2() <= '9' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
	}
	text := lx.src[from:lx.off]
	if isFloat {
		return Token{Kind: TokFloat, Text: text, Pos: start}, nil
	}
	return Token{Kind: TokInt, Text: text, Pos: start}, nil
}

func (lx *Lexer) lexString(start Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(start, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(start, "unterminated string escape")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(esc)
			default:
				return Token{}, errf(start, "unknown string escape \\%s", string(esc))
			}
			continue
		}
		b.WriteByte(c)
	}
}
