package oosql

import (
	"strconv"

	"repro/internal/value"
)

// Parser is a recursive-descent parser for OOSQL.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete query (one expression followed by end of input).
func Parse(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, errf(p.cur().Pos, "unexpected %s after query", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) atSym(sym string) bool {
	t := p.cur()
	return t.Kind == TokSym && t.Text == sym
}

func (p *Parser) eatKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) eatSym(sym string) bool {
	if p.atSym(sym) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.eatKeyword(kw) {
		return errf(p.cur().Pos, "expected %q, found %s", kw, p.cur())
	}
	return nil
}

func (p *Parser) expectSym(sym string) error {
	if !p.eatSym(sym) {
		return errf(p.cur().Pos, "expected %q, found %s", sym, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent() (string, Pos, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return "", t.Pos, errf(t.Pos, "expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, t.Pos, nil
}

// parseExpr parses an or-expression (lowest precedence).
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		at := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r, At: at}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		at := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r, At: at}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		at := p.next().Pos
		// "not in" is handled at the comparison level; a bare "not" here is
		// logical negation.
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x, At: at}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	var op BinOp
	switch {
	case t.Kind == TokSym && (t.Text == "=" || t.Text == "<>" || t.Text == "<" ||
		t.Text == "<=" || t.Text == ">" || t.Text == ">="):
		op = BinOp(t.Text)
		p.pos++
	case t.Kind == TokKeyword && t.Text == "in":
		op = OpIn
		p.pos++
	case t.Kind == TokKeyword && t.Text == "not" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "in":
		op = OpNotIn
		p.pos += 2
	case t.Kind == TokKeyword && (t.Text == "subset" || t.Text == "psubset" ||
		t.Text == "superset" || t.Text == "psuperset" || t.Text == "contains"):
		op = BinOp(t.Text)
		p.pos++
	default:
		return l, nil
	}
	r, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r, At: t.Pos}, nil
}

func (p *Parser) parseSet() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokKeyword || (t.Text != "union" && t.Text != "intersect" && t.Text != "minus") {
			return l, nil
		}
		p.pos++
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: BinOp(t.Text), L: l, R: r, At: t.Pos}
	}
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atSym("+") || p.atSym("-") {
		t := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: BinOp(t.Text), L: l, R: r, At: t.Pos}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atSym("*") || p.atSym("/") {
		t := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: BinOp(t.Text), L: l, R: r, At: t.Pos}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atSym("-") {
		at := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, At: at}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atSym(".") {
		at := p.next().Pos
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		e = &FieldAcc{X: e, Name: name, At: at}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &Lit{Val: value.Int(n), At: t.Pos}, nil
	case TokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &Lit{Val: value.Float(f), At: t.Pos}, nil
	case TokString:
		p.pos++
		return &Lit{Val: value.String(t.Text), At: t.Pos}, nil
	case TokIdent:
		p.pos++
		return &Ident{Name: t.Text, At: t.Pos}, nil
	case TokKeyword:
		switch t.Text {
		case "true":
			p.pos++
			return &Lit{Val: value.Bool(true), At: t.Pos}, nil
		case "false":
			p.pos++
			return &Lit{Val: value.Bool(false), At: t.Pos}, nil
		case "select":
			return p.parseSFW()
		case "exists", "forall":
			return p.parseQuant()
		case "count", "sum", "min", "max", "avg", "flatten":
			return p.parseCall()
		}
		return nil, errf(t.Pos, "unexpected keyword %s", t)
	case TokSym:
		switch t.Text {
		case "(":
			return p.parseParenOrTuple()
		case "{":
			return p.parseSetCtor()
		}
	}
	return nil, errf(t.Pos, "unexpected %s", t)
}

// parseParenOrTuple disambiguates "(expr)" from the tuple constructor
// "(name = expr, ...)". A leading "ident =" selects the tuple reading.
func (p *Parser) parseParenOrTuple() (Expr, error) {
	open := p.next() // "("
	if p.cur().Kind == TokIdent && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSym && p.toks[p.pos+1].Text == "=" {
		ctor := &TupleCtor{At: open.Pos}
		for {
			name, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym("="); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ctor.Names = append(ctor.Names, name)
			ctor.Elems = append(ctor.Elems, e)
			if p.eatSym(",") {
				continue
			}
			break
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return ctor, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) parseSetCtor() (Expr, error) {
	open := p.next() // "{"
	ctor := &SetCtor{At: open.Pos}
	if p.eatSym("}") {
		return ctor, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ctor.Elems = append(ctor.Elems, e)
		if p.eatSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return ctor, nil
}

func (p *Parser) parseSFW() (Expr, error) {
	at := p.next().Pos // "select"
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	v, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	sfw := &SFW{Sel: sel, Var: v, From: from, At: at}
	if p.eatKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sfw.Where = w
	}
	for p.eatKeyword("with") {
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sfw.Withs = append(sfw.Withs, WithBinding{Name: name, Val: val})
	}
	return sfw, nil
}

func (p *Parser) parseQuant() (Expr, error) {
	t := p.next() // "exists" or "forall"
	kind := QExists
	if t.Text == "forall" {
		kind = QForall
	}
	v, _, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	// The range is a set-level expression so that a following ":" starts the
	// predicate rather than being swallowed by the range.
	src, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	q := &Quant{Kind: kind, Var: v, Src: src, At: t.Pos}
	if p.eatSym(":") {
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Pred = pred
	} else if kind == QForall {
		return nil, errf(t.Pos, "forall requires a predicate (\": p\")")
	}
	return q, nil
}

func (p *Parser) parseCall() (Expr, error) {
	t := p.next() // function keyword
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return &Call{Fn: t.Text, Args: []Expr{arg}, At: t.Pos}, nil
}
