package oosql

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Expr is an OOSQL abstract syntax tree node.
type Expr interface {
	Pos() Pos
	String() string
	node()
}

// Lit is a literal (int, float, string, bool).
type Lit struct {
	Val value.Value
	At  Pos
}

// Ident is an unresolved name: an iteration variable, a with-binding, or a
// base table; resolution happens during translation.
type Ident struct {
	Name string
	At   Pos
}

// FieldAcc is a path step x.name. Paths over reference attributes navigate
// implicitly (d.supplier.sname).
type FieldAcc struct {
	X    Expr
	Name string
	At   Pos
}

// TupleCtor is the tuple constructor (a1 = e1, ..., an = en) used for
// nesting in the select-clause (Example Query 1).
type TupleCtor struct {
	Names []string
	Elems []Expr
	At    Pos
}

// SetCtor is the set constructor {e1, ..., en}.
type SetCtor struct {
	Elems []Expr
	At    Pos
}

// BinOp enumerates binary operators.
type BinOp string

// Binary operators.
const (
	OpEq        BinOp = "="
	OpNe        BinOp = "<>"
	OpLt        BinOp = "<"
	OpLe        BinOp = "<="
	OpGt        BinOp = ">"
	OpGe        BinOp = ">="
	OpIn        BinOp = "in"
	OpNotIn     BinOp = "not in"
	OpSubset    BinOp = "subset"    // ⊆
	OpPSubset   BinOp = "psubset"   // ⊂
	OpSuperset  BinOp = "superset"  // ⊇
	OpPSuperset BinOp = "psuperset" // ⊃
	OpContains  BinOp = "contains"  // ∋
	OpAnd       BinOp = "and"
	OpOr        BinOp = "or"
	OpUnion     BinOp = "union"
	OpIntersect BinOp = "intersect"
	OpMinus     BinOp = "minus"
	OpAdd       BinOp = "+"
	OpSub       BinOp = "-"
	OpMul       BinOp = "*"
	OpDiv       BinOp = "/"
)

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
	At   Pos
}

// Unary is "not e" or "-e".
type Unary struct {
	Op string // "not" or "-"
	X  Expr
	At Pos
}

// WithBinding is one "with name = expr" local definition attached to an SFW
// block (the paper's with construct, §5.1).
type WithBinding struct {
	Name string
	Val  Expr
}

// SFW is a select-from-where block. Where == nil means no where-clause.
type SFW struct {
	Sel   Expr
	Var   string
	From  Expr
	Where Expr
	Withs []WithBinding
	At    Pos
}

// QuantKind enumerates OOSQL quantifiers.
type QuantKind uint8

// Quantifier kinds.
const (
	QExists QuantKind = iota
	QForall
)

// Quant is "exists x in e [: p]" or "forall x in e : p". A missing predicate
// defaults to true (Example Query 3.2 tests bare non-emptiness).
type Quant struct {
	Kind QuantKind
	Var  string
	Src  Expr
	Pred Expr // nil ⇒ true
	At   Pos
}

// Call is an aggregate or builtin application: count, sum, min, max, avg,
// flatten.
type Call struct {
	Fn   string
	Args []Expr
	At   Pos
}

func (e *Lit) node()       {}
func (e *Ident) node()     {}
func (e *FieldAcc) node()  {}
func (e *TupleCtor) node() {}
func (e *SetCtor) node()   {}
func (e *Binary) node()    {}
func (e *Unary) node()     {}
func (e *SFW) node()       {}
func (e *Quant) node()     {}
func (e *Call) node()      {}

func (e *Lit) Pos() Pos       { return e.At }
func (e *Ident) Pos() Pos     { return e.At }
func (e *FieldAcc) Pos() Pos  { return e.At }
func (e *TupleCtor) Pos() Pos { return e.At }
func (e *SetCtor) Pos() Pos   { return e.At }
func (e *Binary) Pos() Pos    { return e.At }
func (e *Unary) Pos() Pos     { return e.At }
func (e *SFW) Pos() Pos       { return e.At }
func (e *Quant) Pos() Pos     { return e.At }
func (e *Call) Pos() Pos      { return e.At }

func (e *Lit) String() string   { return e.Val.String() }
func (e *Ident) String() string { return e.Name }
func (e *FieldAcc) String() string {
	return fmt.Sprintf("%s.%s", e.X, e.Name)
}

func (e *TupleCtor) String() string {
	parts := make([]string, len(e.Elems))
	for i := range e.Elems {
		parts[i] = e.Names[i] + " = " + e.Elems[i].String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *SetCtor) String() string {
	parts := make([]string, len(e.Elems))
	for i := range e.Elems {
		parts[i] = e.Elems[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *Unary) String() string { return fmt.Sprintf("%s %s", e.Op, e.X) }

func (e *SFW) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "select %s from %s in %s", e.Sel, e.Var, e.From)
	if e.Where != nil {
		fmt.Fprintf(&b, " where %s", e.Where)
	}
	for _, w := range e.Withs {
		fmt.Fprintf(&b, " with %s = %s", w.Name, w.Val)
	}
	return b.String()
}

func (e *Quant) String() string {
	kw := "exists"
	if e.Kind == QForall {
		kw = "forall"
	}
	if e.Pred == nil {
		return fmt.Sprintf("%s %s in %s", kw, e.Var, e.Src)
	}
	return fmt.Sprintf("%s %s in %s : %s", kw, e.Var, e.Src, e.Pred)
}

func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i := range e.Args {
		parts[i] = e.Args[i].String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}
