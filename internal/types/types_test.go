package types

import (
	"testing"

	"repro/internal/value"
)

func supplierType() *Set {
	// The paper's §4 ADL type for SUPPLIER:
	// {(eid: oid, sname: string, parts: {(pid: oid)})}
	return NewSet(NewTuple(
		"eid", OIDType,
		"sname", StringType,
		"parts", NewSet(NewTuple("pid", OIDType)),
	))
}

func TestStringNotation(t *testing.T) {
	got := supplierType().String()
	want := "{(eid: oid, sname: string, parts: {(pid: oid)})}"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestEqualStructural(t *testing.T) {
	a := NewTuple("a", IntType, "b", StringType)
	b := NewTuple("b", StringType, "a", IntType)
	if !Equal(a, b) {
		t.Fatalf("attribute order must not matter for tuple type equality")
	}
	if Equal(a, NewTuple("a", IntType)) {
		t.Fatalf("different widths must differ")
	}
	if Equal(a, NewTuple("a", IntType, "b", IntType)) {
		t.Fatalf("different field types must differ")
	}
	if !Equal(NewSet(IntType), NewSet(IntType)) || Equal(NewSet(IntType), NewSet(StringType)) {
		t.Fatalf("set equality misbehaves")
	}
	if Equal(IntType, NewSet(IntType)) {
		t.Fatalf("atomic vs set must differ")
	}
}

func TestSCH(t *testing.T) {
	names, err := SCH(supplierType())
	if err != nil {
		t.Fatalf("SCH: %v", err)
	}
	want := []string{"eid", "parts", "sname"}
	if len(names) != len(want) {
		t.Fatalf("SCH = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("SCH = %v, want %v", names, want)
		}
	}
	if _, err := SCH(NewSet(IntType)); err == nil {
		t.Fatalf("SCH over set of atoms must fail")
	}
	if _, err := SCH(IntType); err == nil {
		t.Fatalf("SCH over atom must fail")
	}
}

func TestInfer(t *testing.T) {
	v := value.NewTuple(
		"eid", value.OID(1),
		"sname", value.String("s1"),
		"parts", value.NewSet(value.NewTuple("pid", value.OID(2))),
	)
	got, err := Infer(v)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	want := NewTuple(
		"eid", OIDType,
		"sname", StringType,
		"parts", NewSet(NewTuple("pid", OIDType)),
	)
	if !Equal(got, want) {
		t.Fatalf("Infer = %s, want %s", got, want)
	}
}

func TestInferEmptySetUnifies(t *testing.T) {
	// {(a=1, c={}), (a=2, c={1})} must infer as {(a: int, c: {int})}.
	s := value.NewSet(
		value.NewTuple("a", value.Int(1), "c", value.EmptySet()),
		value.NewTuple("a", value.Int(2), "c", value.NewSet(value.Int(1))),
	)
	got, err := Infer(s)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	want := NewSet(NewTuple("a", IntType, "c", NewSet(IntType)))
	if !Equal(got, want) {
		t.Fatalf("Infer = %s, want %s", got, want)
	}
}

func TestInferHeterogeneousSetFails(t *testing.T) {
	s := value.NewSet(value.Int(1), value.String("x"))
	if _, err := Infer(s); err == nil {
		t.Fatalf("heterogeneous set must not type")
	}
}

func TestUnify(t *testing.T) {
	if u, ok := Unify(Bottom, IntType); !ok || !Equal(u, IntType) {
		t.Fatalf("Bottom must unify with int")
	}
	if u, ok := Unify(NewSet(Bottom), NewSet(NewTuple("a", IntType))); !ok || !Equal(u, NewSet(NewTuple("a", IntType))) {
		t.Fatalf("set-of-bottom must unify with any set: %v %v", u, ok)
	}
	if _, ok := Unify(IntType, StringType); ok {
		t.Fatalf("int and string must not unify")
	}
	if _, ok := Unify(NewTuple("a", IntType), NewTuple("b", IntType)); ok {
		t.Fatalf("mismatched field names must not unify")
	}
}

func TestConcatTuples(t *testing.T) {
	ab, err := ConcatTuples(NewTuple("a", IntType), NewTuple("b", StringType))
	if err != nil {
		t.Fatalf("ConcatTuples: %v", err)
	}
	if !Equal(ab, NewTuple("a", IntType, "b", StringType)) {
		t.Fatalf("ConcatTuples = %s", ab)
	}
	if _, err := ConcatTuples(ab, NewTuple("a", IntType)); err == nil {
		t.Fatalf("expected conflict")
	}
}

func TestIsTableAndElemTuple(t *testing.T) {
	if !IsTable(supplierType()) {
		t.Fatalf("supplier extent is a table")
	}
	if IsTable(NewSet(IntType)) || IsTable(IntType) {
		t.Fatalf("non-tables misreported")
	}
	et, ok := ElemTuple(supplierType())
	if !ok || len(et.Fields) != 3 {
		t.Fatalf("ElemTuple = %v, %v", et, ok)
	}
}

func TestRefObjectAndErase(t *testing.T) {
	ref := Ref{Class: "Part"}
	if ref.String() != "ref(Part)" {
		t.Errorf("Ref.String = %q", ref.String())
	}
	objTup := NewTuple("pid", OIDType, "pname", StringType)
	obj := Object{Class: "Part", Tup: objTup}
	if obj.String() != "Part" {
		t.Errorf("Object.String = %q", obj.String())
	}
	// Equality by class.
	if !Equal(ref, Ref{Class: "Part"}) || Equal(ref, Ref{Class: "Supplier"}) {
		t.Errorf("Ref equality misbehaves")
	}
	if !Equal(obj, Object{Class: "Part"}) || Equal(obj, Object{Class: "Supplier"}) {
		t.Errorf("Object equality misbehaves")
	}
	// Erase: refs become oid, objects become their tuples, recursively.
	annotated := NewSet(NewTuple(
		"r", ref,
		"rs", NewSet(NewTuple("pid", ref)),
		"o", obj,
	))
	erased := Erase(annotated)
	want := NewSet(NewTuple(
		"r", OIDType,
		"rs", NewSet(NewTuple("pid", OIDType)),
		"o", objTup,
	))
	if !Equal(erased, want) {
		t.Errorf("Erase = %s, want %s", erased, want)
	}
	// Atoms pass through.
	if !Equal(Erase(IntType), IntType) {
		t.Errorf("Erase(int) changed")
	}
}

func TestUnifyRefAndObject(t *testing.T) {
	ref := Ref{Class: "Part"}
	if u, ok := Unify(ref, OIDType); !ok || !Equal(u, ref) {
		t.Errorf("ref/oid unify = %v, %v", u, ok)
	}
	if u, ok := Unify(OIDType, ref); !ok || !Equal(u, ref) {
		t.Errorf("oid/ref unify = %v, %v", u, ok)
	}
	if _, ok := Unify(ref, Ref{Class: "Supplier"}); ok {
		t.Errorf("different classes must not unify")
	}
	obj := Object{Class: "Part", Tup: NewTuple("pid", OIDType)}
	if u, ok := Unify(obj, Object{Class: "Part", Tup: NewTuple("pid", OIDType)}); !ok || !Equal(u, obj) {
		t.Errorf("object unify = %v, %v", u, ok)
	}
	if _, ok := Unify(obj, Object{Class: "Supplier"}); ok {
		t.Errorf("different object classes must not unify")
	}
	if _, ok := Unify(obj, IntType); ok {
		t.Errorf("object/int must not unify")
	}
}
