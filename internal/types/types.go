// Package types implements the structural type system of the ADL complex
// object algebra: atomic types (bool, int, float, string, date), the basic
// type oid used to represent object identity, and the tuple ⟨ ⟩ and set { }
// type constructors, nested arbitrarily. It provides structural equality,
// the paper's schema function SCH (top-level attribute names of a table
// expression), and type inference for runtime values.
package types

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Type is the sum type of ADL types. Concrete variants are Atomic, *Tuple
// and *Set.
type Type interface {
	// String renders the type in the paper's notation, e.g.
	// {(pid: oid, pname: string)}.
	String() string
	typeNode()
}

// Atomic is a scalar type.
type Atomic struct{ Name string }

// The atomic types of the model. OIDType is the paper's basic type oid.
var (
	BoolType   = Atomic{"bool"}
	IntType    = Atomic{"int"}
	FloatType  = Atomic{"float"}
	StringType = Atomic{"string"}
	DateType   = Atomic{"date"}
	OIDType    = Atomic{"oid"}
)

func (a Atomic) String() string { return a.Name }
func (Atomic) typeNode()        {}

// Field is a named attribute of a tuple type.
type Field struct {
	Name string
	Type Type
}

// Tuple is the ⟨ ⟩ type constructor. Attribute order is preserved for
// printing but is insignificant for equality.
type Tuple struct{ Fields []Field }

// NewTuple builds a tuple type from alternating name/Type pairs.
func NewTuple(pairs ...any) *Tuple {
	if len(pairs)%2 != 0 {
		panic("types.NewTuple: odd number of arguments")
	}
	t := &Tuple{}
	for i := 0; i < len(pairs); i += 2 {
		t.Fields = append(t.Fields, Field{pairs[i].(string), pairs[i+1].(Type)})
	}
	return t
}

func (t *Tuple) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.Name + ": " + f.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
func (*Tuple) typeNode() {}

// Field returns the type of the named attribute.
func (t *Tuple) Field(name string) (Type, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return nil, false
}

// Names returns the attribute names in declaration order.
func (t *Tuple) Names() []string {
	ns := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		ns[i] = f.Name
	}
	return ns
}

// Set is the { } type constructor.
type Set struct{ Elem Type }

// NewSet returns the type {elem}.
func NewSet(elem Type) *Set { return &Set{Elem: elem} }

func (s *Set) String() string { return "{" + s.Elem.String() + "}" }
func (*Set) typeNode()        {}

// Ref is a class reference type used while typechecking OOSQL path
// expressions (d.supplier.sname needs to know supplier references Supplier).
// The ADL mapping erases Ref to the basic type oid (Erase); the algebra
// itself has no inheritance or class types.
type Ref struct{ Class string }

func (r Ref) String() string { return "ref(" + r.Class + ")" }
func (Ref) typeNode()        {}

// Object is the typechecker's view of one object of a class: the full tuple
// (identity field plus attributes, reference-annotated) tagged with its
// class so that surface-name aliases and identity comparisons can be
// resolved. It erases to the plain tuple type.
type Object struct {
	Class string
	Tup   *Tuple
}

func (o Object) String() string { return o.Class }
func (Object) typeNode()        {}

// Erase replaces every Ref by oid and every Object by its tuple type,
// yielding a pure ADL type.
func Erase(t Type) Type {
	switch tt := t.(type) {
	case Ref:
		return OIDType
	case Object:
		return Erase(tt.Tup)
	case *Set:
		return &Set{Elem: Erase(tt.Elem)}
	case *Tuple:
		out := &Tuple{Fields: make([]Field, len(tt.Fields))}
		for i, f := range tt.Fields {
			out.Fields[i] = Field{f.Name, Erase(f.Type)}
		}
		return out
	}
	return t
}

// Equal reports structural equality of types; tuple attribute order is
// insignificant.
func Equal(a, b Type) bool {
	switch at := a.(type) {
	case Atomic:
		bt, ok := b.(Atomic)
		return ok && at.Name == bt.Name
	case Ref:
		bt, ok := b.(Ref)
		return ok && at.Class == bt.Class
	case Object:
		bt, ok := b.(Object)
		return ok && at.Class == bt.Class
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(at.Fields) != len(bt.Fields) {
			return false
		}
		for _, f := range at.Fields {
			bf, ok := bt.Field(f.Name)
			if !ok || !Equal(f.Type, bf) {
				return false
			}
		}
		return true
	case *Set:
		bt, ok := b.(*Set)
		return ok && Equal(at.Elem, bt.Elem)
	}
	return false
}

// SCH implements the paper's schema function: applied to a table type (a set
// of tuples) or directly to a tuple type, it delivers the top-level attribute
// names, sorted for determinism.
func SCH(t Type) ([]string, error) {
	switch tt := t.(type) {
	case *Tuple:
		ns := tt.Names()
		sort.Strings(ns)
		return ns, nil
	case *Set:
		inner, ok := tt.Elem.(*Tuple)
		if !ok {
			return nil, fmt.Errorf("types: SCH on set of non-tuples %s", t)
		}
		ns := inner.Names()
		sort.Strings(ns)
		return ns, nil
	}
	return nil, fmt.Errorf("types: SCH on non-table type %s", t)
}

// ElemTuple returns the tuple type of a table type's elements.
func ElemTuple(t Type) (*Tuple, bool) {
	s, ok := t.(*Set)
	if !ok {
		return nil, false
	}
	tt, ok := s.Elem.(*Tuple)
	return tt, ok
}

// Infer derives the most specific type of a runtime value. Empty sets infer
// as {⊥}; Unifiable treats the bottom element type as compatible with any
// element type.
func Infer(v value.Value) (Type, error) {
	switch vv := v.(type) {
	case value.Bool:
		return BoolType, nil
	case value.Int:
		return IntType, nil
	case value.Float:
		return FloatType, nil
	case value.String:
		return StringType, nil
	case value.Date:
		return DateType, nil
	case value.OID:
		return OIDType, nil
	case value.Null:
		return Bottom, nil
	case *value.Tuple:
		t := &Tuple{}
		for i := 0; i < vv.Len(); i++ {
			name, fv := vv.At(i)
			ft, err := Infer(fv)
			if err != nil {
				return nil, err
			}
			t.Fields = append(t.Fields, Field{name, ft})
		}
		return t, nil
	case *value.Set:
		var elem Type = Bottom
		for _, e := range vv.Elems() {
			et, err := Infer(e)
			if err != nil {
				return nil, err
			}
			u, ok := Unify(elem, et)
			if !ok {
				return nil, fmt.Errorf("types: heterogeneous set: %s vs %s", elem, et)
			}
			elem = u
		}
		return &Set{Elem: elem}, nil
	}
	return nil, fmt.Errorf("types: cannot infer type of %v", v)
}

// Bottom is the type of the elements of the empty set: it unifies with
// anything. It never appears in declared schemas.
var Bottom = Atomic{"⊥"}

// Unify returns the least common type of a and b if one exists. Bottom
// unifies with anything; otherwise the types must agree structurally, with
// unification applied pointwise inside sets and tuples.
func Unify(a, b Type) (Type, bool) {
	if at, ok := a.(Atomic); ok && at == Bottom {
		return b, true
	}
	if bt, ok := b.(Atomic); ok && bt == Bottom {
		return a, true
	}
	switch at := a.(type) {
	case Atomic:
		if bt, ok := b.(Atomic); ok && at.Name == bt.Name {
			return a, true
		}
		// A bare oid unifies with any class reference (the erased view).
		if _, ok := b.(Ref); ok && at == OIDType {
			return b, true
		}
	case Ref:
		if bt, ok := b.(Ref); ok && at.Class == bt.Class {
			return a, true
		}
		if bt, ok := b.(Atomic); ok && bt == OIDType {
			return a, true
		}
	case Object:
		if bt, ok := b.(Object); ok && at.Class == bt.Class {
			return a, true
		}
	case *Set:
		if bt, ok := b.(*Set); ok {
			if e, ok := Unify(at.Elem, bt.Elem); ok {
				return &Set{Elem: e}, true
			}
		}
	case *Tuple:
		bt, ok := b.(*Tuple)
		if !ok || len(at.Fields) != len(bt.Fields) {
			return nil, false
		}
		out := &Tuple{}
		for _, f := range at.Fields {
			bf, ok := bt.Field(f.Name)
			if !ok {
				return nil, false
			}
			u, ok := Unify(f.Type, bf)
			if !ok {
				return nil, false
			}
			out.Fields = append(out.Fields, Field{f.Name, u})
		}
		return out, true
	}
	return nil, false
}

// ConcatTuples returns the tuple type of x ∘ y, failing on a name conflict.
func ConcatTuples(a, b *Tuple) (*Tuple, error) {
	out := &Tuple{Fields: append([]Field(nil), a.Fields...)}
	for _, f := range b.Fields {
		if _, dup := a.Field(f.Name); dup {
			return nil, fmt.Errorf("types: concatenation conflict on attribute %q", f.Name)
		}
		out.Fields = append(out.Fields, f)
	}
	return out, nil
}

// IsTable reports whether t is a set of tuples (a table type).
func IsTable(t Type) bool {
	_, ok := ElemTuple(t)
	return ok
}
