package bench

import (
	"testing"

	"repro/internal/value"
)

func TestGenerateSkewDeterministic(t *testing.T) {
	cfg := SkewConfig{Facts: 500, DimA: 50, DimB: 40, Seed: 7}
	a, b := GenerateSkew(cfg), GenerateSkew(cfg)
	for _, ext := range []string{"FACT", "DIMA", "DIMB"} {
		ta, err := a.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(ta, tb) {
			t.Errorf("%s differs across runs with the same seed", ext)
		}
	}
	if got := a.Size("FACT"); got != 500 {
		t.Errorf("FACT size = %d, want 500", got)
	}
}

// TestGenerateSkewIsSkewed: the hottest DIMA category must hold far more
// than the uniform share — otherwise B12's premise (NDV ≠ truth) is gone.
func TestGenerateSkewIsSkewed(t *testing.T) {
	st := GenerateSkew(SkewConfig{})
	hot, n := HotCategory(st)
	dimA := st.Size("DIMA")
	uniformShare := dimA / 40 // CatValues default
	if n < 5*uniformShare {
		t.Fatalf("hot category %v holds %d of %d rows — not skewed (uniform share %d)",
			hot, n, dimA, uniformShare)
	}
	// The skewed FACT.sev distribution shows up in collected histograms: the
	// heavy hitter's frequency dwarfs 1/NDV.
	stats := st.Analyze()
	h := stats.Histogram("FACT", "sev")
	if h == nil {
		t.Fatal("no histogram collected for FACT.sev")
	}
	hotFrac := h.EqFraction(value.Int(0))
	if hotFrac < 0.5 {
		t.Errorf("hot sev fraction = %v, want > 0.5 under the default skew", hotFrac)
	}
}
