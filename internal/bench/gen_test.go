package bench

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Suppliers: 20, Parts: 30, Fanout: 4, EmptyFrac: 0.2,
		DanglingFrac: 0.1, Deliveries: 5, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	for _, ext := range []string{"SUPPLIER", "PART", "DELIVERY"} {
		ta, err := a.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(ta, tb) {
			t.Errorf("%s differs across runs with the same seed", ext)
		}
	}
	c := Generate(Config{Suppliers: 20, Parts: 30, Fanout: 4, EmptyFrac: 0.2,
		DanglingFrac: 0.1, Deliveries: 5, Seed: 43})
	ta, _ := a.Table("SUPPLIER")
	tc, _ := c.Table("SUPPLIER")
	if value.Equal(ta, tc) {
		t.Errorf("different seeds should differ")
	}
}

func TestGenerateSizes(t *testing.T) {
	st := Generate(Config{Suppliers: 17, Parts: 23, Deliveries: 7, Seed: 1})
	if st.Size("SUPPLIER") != 17 || st.Size("PART") != 23 || st.Size("DELIVERY") != 7 {
		t.Errorf("sizes = %d/%d/%d", st.Size("SUPPLIER"), st.Size("PART"), st.Size("DELIVERY"))
	}
}

func TestGenerateEmptyFrac(t *testing.T) {
	st := Generate(Config{Suppliers: 200, Parts: 20, Fanout: 3, EmptyFrac: 0.5, Seed: 5})
	sup, _ := st.Table("SUPPLIER")
	empty := 0
	for _, el := range sup.Elems() {
		if el.(*value.Tuple).MustGet("parts").(*value.Set).Len() == 0 {
			empty++
		}
	}
	if empty < 60 || empty > 140 {
		t.Errorf("empty suppliers = %d of 200, want ≈100", empty)
	}
}

func TestGenerateDanglingRefsDontCollide(t *testing.T) {
	st := Generate(Config{Suppliers: 50, Parts: 10, DanglingFrac: 1.0, Seed: 3})
	sup, _ := st.Table("SUPPLIER")
	part, _ := st.Table("PART")
	validPids := value.EmptySet()
	for _, p := range part.Elems() {
		validPids.Add(p.(*value.Tuple).MustGet("pid"))
	}
	dangling := 0
	for _, s := range sup.Elems() {
		for _, ref := range s.(*value.Tuple).MustGet("parts").(*value.Set).Elems() {
			if !validPids.Contains(ref.(*value.Tuple).MustGet("pid")) {
				dangling++
			}
		}
	}
	if dangling != 50 {
		t.Errorf("dangling refs = %d, want one per supplier", dangling)
	}
}

func TestGenerateRedFrac(t *testing.T) {
	st := Generate(Config{Suppliers: 1, Parts: 1000, RedFrac: 0.3, Seed: 9})
	part, _ := st.Table("PART")
	red := 0
	for _, p := range part.Elems() {
		if value.Equal(p.(*value.Tuple).MustGet("color"), value.String("red")) {
			red++
		}
	}
	if red < 200 || red > 400 {
		t.Errorf("red parts = %d of 1000, want ≈300", red)
	}
}

func TestFigureDBs(t *testing.T) {
	f2 := Figure2DB()
	x, err := f2.Table("X")
	if err != nil || x.Len() != 3 {
		t.Fatalf("Figure2 X = %v, %v", x, err)
	}
	if !x.Contains(value.NewTuple("a", value.Int(2), "c", value.EmptySet())) {
		t.Errorf("Figure2 X must contain the dangling tuple ⟨a=2, c=∅⟩")
	}
	y, _ := f2.Table("Y")
	if y.Len() != 4 {
		t.Errorf("Figure2 Y = %v", y)
	}
	f3 := Figure3DB()
	x3, _ := f3.Table("X")
	y3, _ := f3.Table("Y")
	if x3.Len() != 3 || y3.Len() != 3 {
		t.Errorf("Figure3 sizes = %d, %d", x3.Len(), y3.Len())
	}
}

func TestTablePrinter(t *testing.T) {
	tab := &Table{
		Title: "demo",
		Cols:  []string{"name", "n", "ratio"},
		Notes: []string{"a note"},
	}
	tab.AddRow("alpha", 1, 2.5)
	tab.AddRow("beta-longer", 100, 0.125)
	out := tab.String()
	for _, want := range []string{"demo", "name", "alpha", "beta-longer", "2.50", "0.12", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the same prefix width up to col 2.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected table shape:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Suppliers == 0 || c.Parts == 0 || c.Fanout == 0 || c.Seed == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
