package bench

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a printable experiment result in the paper's row/column style.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - utf8.RuneCountInString(cell); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	line(t.Cols)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
