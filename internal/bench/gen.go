// Package bench provides deterministic workload generators and fixtures for
// the experiment suite: scalable supplier-part databases (the paper's §2
// schema), the paper's Figure 1/2/3 example tables, and small helpers for
// printing paper-style result tables.
package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Config parameterizes the supplier-part generator. Zero values get
// sensible defaults from Defaults.
type Config struct {
	Suppliers int // number of Supplier objects
	Parts     int // number of Part objects
	Fanout    int // parts referenced per supplier (before dedup)
	// RedFrac is the fraction of parts colored "red"; the rest split evenly
	// between "green" and "blue".
	RedFrac float64
	// EmptyFrac is the fraction of suppliers with an empty parts set —
	// the dangling tuples of the Complex Object bug experiments.
	EmptyFrac float64
	// DanglingFrac is the fraction of suppliers holding one reference to a
	// non-existing part (violating referential integrity, Example Query 4).
	DanglingFrac float64
	Deliveries   int // number of Delivery objects
	SupplySize   int // parts per delivery
	Seed         int64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Suppliers == 0 {
		c.Suppliers = 100
	}
	if c.Parts == 0 {
		c.Parts = 200
	}
	if c.Fanout == 0 {
		c.Fanout = 8
	}
	if c.RedFrac == 0 {
		c.RedFrac = 0.3
	}
	if c.SupplySize == 0 {
		c.SupplySize = 4
	}
	if c.Seed == 0 {
		c.Seed = 94
	}
	return c
}

// Generate builds a deterministic supplier-part database.
func Generate(cfg Config) *storage.Store {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := storage.New(schema.SupplierPart())

	colors := []string{"green", "blue"}
	partOIDs := make([]value.OID, cfg.Parts)
	for i := 0; i < cfg.Parts; i++ {
		color := colors[i%2]
		if rng.Float64() < cfg.RedFrac {
			color = "red"
		}
		oid, err := st.Insert("PART", value.NewTuple(
			"pname", value.String(fmt.Sprintf("part-%d", i)),
			"price", value.Int(int64(rng.Intn(100)+1)),
			"color", value.String(color),
		))
		if err != nil {
			panic(err)
		}
		partOIDs[i] = oid
	}

	for i := 0; i < cfg.Suppliers; i++ {
		parts := value.EmptySet()
		if rng.Float64() >= cfg.EmptyFrac {
			for j := 0; j < cfg.Fanout; j++ {
				parts.Add(value.NewTuple("pid", partOIDs[rng.Intn(len(partOIDs))]))
			}
		}
		if rng.Float64() < cfg.DanglingFrac {
			// An oid that is never allocated to a part: beyond every real one.
			parts.Add(value.NewTuple("pid", value.OID(1<<40)+value.OID(i)))
		}
		if _, err := st.Insert("SUPPLIER", value.NewTuple(
			"sname", value.String(fmt.Sprintf("supplier-%d", i)),
			"parts", parts,
		)); err != nil {
			panic(err)
		}
	}

	supplierOIDs := st.OIDs("SUPPLIER")
	for i := 0; i < cfg.Deliveries; i++ {
		supply := value.EmptySet()
		for j := 0; j < cfg.SupplySize; j++ {
			supply.Add(value.NewTuple(
				"part", partOIDs[rng.Intn(len(partOIDs))],
				"quantity", value.Int(int64(rng.Intn(50)+1)),
			))
		}
		if _, err := st.Insert("DELIVERY", value.NewTuple(
			"supplier", supplierOIDs[rng.Intn(len(supplierOIDs))],
			"supply", supply,
			"date", value.Date(int32(940101+i%28)),
		)); err != nil {
			panic(err)
		}
	}
	return st
}

// Figure2DB returns the paper's Figure 2 example tables:
//
//	X = {⟨a=1, c={⟨d=1,e=1⟩, ⟨d=1,e=2⟩}⟩, ⟨a=2, c=∅⟩, ⟨a=3, c={⟨d=2,e=3⟩}⟩}
//	Y = {⟨d=1,e=1⟩, ⟨d=1,e=2⟩, ⟨d=1,e=3⟩, ⟨d=3,e=3⟩}
//
// The tuple ⟨a=2, c=∅⟩ is the dangling tuple the unnesting-by-grouping
// technique loses.
func Figure2DB() *storage.MemDB {
	de := func(d, e int64) *value.Tuple {
		return value.NewTuple("d", value.Int(d), "e", value.Int(e))
	}
	x := value.NewSet(
		value.NewTuple("a", value.Int(1), "c", value.NewSet(de(1, 1), de(1, 2))),
		value.NewTuple("a", value.Int(2), "c", value.EmptySet()),
		value.NewTuple("a", value.Int(3), "c", value.NewSet(de(2, 3))),
	)
	y := value.NewSet(de(1, 1), de(1, 2), de(1, 3), de(3, 3))
	return storage.NewMemDB("X", x, "Y", y)
}

// Figure3DB returns the nestjoin example tables of Figure 3: X and Y
// equijoined on X.b = Y.d, with one dangling X tuple.
func Figure3DB() *storage.MemDB {
	x := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(1)),
		value.NewTuple("a", value.Int(2), "b", value.Int(1)),
		value.NewTuple("a", value.Int(3), "b", value.Int(3)),
	)
	y := value.NewSet(
		value.NewTuple("c", value.Int(1), "d", value.Int(1)),
		value.NewTuple("c", value.Int(2), "d", value.Int(1)),
		value.NewTuple("c", value.Int(3), "d", value.Int(2)),
	)
	return storage.NewMemDB("X", x, "Y", y)
}
