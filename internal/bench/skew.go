// Zipf-skewed workload generator. The supplier-part generator (gen.go)
// draws every attribute uniformly, which is exactly the world where the
// planner's 1/NDV uniformity assumption is harmless. Real categorical
// attributes and foreign keys are skewed; GenerateSkew builds a
// fact-with-two-dimensions database whose distributions follow a Zipf law,
// so ANALYZE-collected histograms and the NDV rules genuinely disagree —
// the substrate of experiments.B12.
package bench

import (
	"math/rand"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/value"
)

// SkewConfig parameterizes the skewed fact-dimension generator. Zero values
// get sensible defaults from Defaults.
type SkewConfig struct {
	// Facts is the FACT extent cardinality; each fact references one DIMA
	// and one DIMB object uniformly.
	Facts int
	// DimA and DimB are the dimension extent cardinalities.
	DimA, DimB int
	// CatValues is the domain size of DIMA.cat; CatSkew the Zipf s
	// parameter of its distribution (must be > 1; larger is more skewed —
	// at the default 2.5 the hottest category holds roughly 3/4 of DIMA).
	CatValues int
	CatSkew   float64
	// GrpValues is the domain size of DIMB.grp, drawn uniformly — the
	// control attribute whose NDV estimate is actually right.
	GrpValues int
	// SevValues/SevSkew shape FACT.sev, a Zipf-skewed measure attribute;
	// QtyMax bounds FACT.qty, drawn uniformly from [1, QtyMax].
	SevValues int
	SevSkew   float64
	QtyMax    int
	Seed      int64
}

// Defaults fills unset fields.
func (c SkewConfig) Defaults() SkewConfig {
	if c.Facts == 0 {
		c.Facts = 20000
	}
	if c.DimA == 0 {
		c.DimA = 400
	}
	if c.DimB == 0 {
		c.DimB = 400
	}
	if c.CatValues == 0 {
		c.CatValues = 40
	}
	if c.CatSkew == 0 {
		c.CatSkew = 2.5
	}
	if c.GrpValues == 0 {
		c.GrpValues = 8
	}
	if c.SevValues == 0 {
		c.SevValues = 50
	}
	if c.SevSkew == 0 {
		c.SevSkew = 2.5
	}
	if c.QtyMax == 0 {
		c.QtyMax = 100
	}
	if c.Seed == 0 {
		c.Seed = 94
	}
	return c
}

// SkewCatalog is the star schema of the skewed workload:
// FACT(fa → DimA, fb → DimB, sev, qty), DIMA(cat), DIMB(grp).
func SkewCatalog() *schema.Catalog {
	c := schema.NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.Define(&schema.Class{
		Name: "DimA", Extent: "DIMA", IDField: "aid",
		Attrs: []schema.Attr{
			{Name: "cat", Kind: schema.Plain, Type: types.IntType},
		},
	}))
	must(c.Define(&schema.Class{
		Name: "DimB", Extent: "DIMB", IDField: "bid",
		Attrs: []schema.Attr{
			{Name: "grp", Kind: schema.Plain, Type: types.IntType},
		},
	}))
	must(c.Define(&schema.Class{
		Name: "Fact", Extent: "FACT", IDField: "fid",
		Attrs: []schema.Attr{
			{Name: "fa", Kind: schema.Ref, RefClass: "DimA"},
			{Name: "fb", Kind: schema.Ref, RefClass: "DimB"},
			{Name: "sev", Kind: schema.Plain, Type: types.IntType},
			{Name: "qty", Kind: schema.Plain, Type: types.IntType},
		},
	}))
	return c
}

// zipfDraw builds a deterministic Zipf sampler over [0, n): value 0 is the
// heavy hitter. A degenerate domain (n < 2) or skew (s <= 1) collapses to
// the constant 0.
func zipfDraw(rng *rand.Rand, s float64, n int) func() int64 {
	if n < 2 || s <= 1 {
		return func() int64 { return 0 }
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return func() int64 { return int64(z.Uint64()) }
}

// GenerateSkew builds a deterministic Zipf-skewed fact-dimension database.
func GenerateSkew(cfg SkewConfig) *storage.Store {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := storage.New(SkewCatalog())
	ins := func(extent string, t *value.Tuple) value.OID {
		oid, err := st.Insert(extent, t)
		if err != nil {
			panic(err)
		}
		return oid
	}

	// Every category occurs at least once (the first CatValues rows count
	// round-robin) before the Zipf draw piles the rest onto the head: the
	// observed NDV is then exactly CatValues at any scale, so the uniform
	// 1/NDV estimate is deterministically — and badly — below the heavy
	// hitter's true frequency.
	catDraw := zipfDraw(rng, cfg.CatSkew, cfg.CatValues)
	aOIDs := make([]value.OID, cfg.DimA)
	for i := range aOIDs {
		cat := int64(i % cfg.CatValues)
		if i >= cfg.CatValues {
			cat = catDraw()
		}
		aOIDs[i] = ins("DIMA", value.NewTuple("cat", value.Int(cat)))
	}
	bOIDs := make([]value.OID, cfg.DimB)
	for i := range bOIDs {
		bOIDs[i] = ins("DIMB", value.NewTuple(
			"grp", value.Int(int64(i%cfg.GrpValues))))
	}
	sevDraw := zipfDraw(rng, cfg.SevSkew, cfg.SevValues)
	for i := 0; i < cfg.Facts; i++ {
		ins("FACT", value.NewTuple(
			"fa", aOIDs[rng.Intn(len(aOIDs))],
			"fb", bOIDs[rng.Intn(len(bOIDs))],
			"sev", value.Int(sevDraw()),
			"qty", value.Int(int64(rng.Intn(cfg.QtyMax)+1)),
		))
	}
	return st
}

// HotCategory reports the most frequent DIMA.cat value of a generated store
// and the number of DIMA rows holding it — experiments pick their skewed
// filter constant from it rather than assuming which value won the draw.
func HotCategory(st *storage.Store) (value.Value, int) {
	tbl, err := st.Table("DIMA")
	if err != nil {
		panic(err)
	}
	counts := map[int64]int{}
	for _, row := range tbl.Elems() {
		t := row.(*value.Tuple)
		v, _ := t.Get("cat")
		counts[int64(v.(value.Int))]++
	}
	bestV, bestN := int64(0), -1
	for v, n := range counts {
		if n > bestN || (n == bestN && v < bestV) {
			bestV, bestN = v, n
		}
	}
	return value.Int(bestV), bestN
}
