package plan

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// The histogram arm of the differential harness: seeded random multi-join
// queries over real stores whose key attributes are Zipf-skewed — the data
// shape where histogram estimates and the NDV rules genuinely diverge — are
// planned with histograms on (default), off (Config.NoHistograms), with
// parallel operators, and without reordering. Every plan must return the
// rule-based serial reference's exact result set. CI runs this under -race.
func TestDifferentialHistogramEquivalence(t *testing.T) {
	histDiffers := 0
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 1300))
		nt := 3 + rng.Intn(2)
		st := storeRelations(t, rng, nt, true)
		stats := st.Analyze()
		leaves := rng.Perm(nt)
		tg := &treeGen{rng: rng}
		expr, _ := tg.build(leaves)

		ref := collect(t, Compile(expr), st)

		arms := map[string]Config{
			"histograms":       {Statistics: stats},
			"nohistograms":     {Statistics: stats, NoHistograms: true},
			"hist-parallel":    {Statistics: stats, Parallelism: 3},
			"hist-noreorder":   {Statistics: stats, NoReorder: true},
			"nohist-noindexes": {Statistics: stats, NoHistograms: true, NoIndexes: true},
		}
		var histPlan, ndvPlan string
		for name, cfg := range arms {
			pl := cfg.Plan(expr)
			got := collect(t, pl.Root, st)
			if !value.Equal(got, ref) {
				t.Fatalf("seed %d arm %s diverges from rule-based reference:\nquery: %s\nplan:\n%s\n got  %v\n want %v",
					seed, name, expr, pl.Explain(), got, ref)
			}
			switch name {
			case "histograms":
				histPlan = pl.Explain()
			case "nohistograms":
				ndvPlan = pl.Explain()
			}
		}
		if histPlan != ndvPlan {
			histDiffers++
		}
	}
	// On skewed data the histogram estimates must actually change some
	// decisions (plan shape or recorded estimates), not silently reproduce
	// the NDV model everywhere.
	if histDiffers < 5 {
		t.Fatalf("histograms changed the plan on only %d/25 seeds", histDiffers)
	}
}
