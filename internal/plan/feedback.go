// Runtime cardinality feedback. The optimizer's estimates are predictions;
// execution produces the ground truth. A plan hands out instrumented
// mirrors (exec.Instrument) whose per-node row tallies are keyed by the
// original plan nodes — the same keys the estimate table uses — and the
// q-error between the two tells a serving layer when a cached plan was
// priced on assumptions the data no longer satisfies (deletes and updates
// shift cardinalities without any re-ANALYZE). Estimate drift never makes a
// plan wrong, only slow, so the consumer's move is eviction and re-planning,
// not abort.
package plan

import (
	"math"
	"sync"

	"repro/internal/exec"
)

// DefaultFeedbackThreshold is the q-error past which a cached plan's
// estimates are considered drifted. 4 tolerates normal estimator noise
// (histogram bucket granularity, the containment assumption) while catching
// the order-of-magnitude misses that flip strategy choices.
const DefaultFeedbackThreshold = 4.0

// DefaultFeedbackMinRows ignores drift on nodes where both the estimated and
// the observed row counts are tiny: a 2-row estimate observing 40 rows is a
// 20x q-error that no strategy choice hinges on.
const DefaultFeedbackMinRows = 32

// QError is the symmetric ratio error between an estimated and an observed
// row count, >= 1, with +1 smoothing so empty results stay finite.
func QError(est, actual int64) float64 {
	e, a := float64(est)+1, float64(actual)+1
	return math.Max(e/a, a/e)
}

// Drift is the worst estimate-versus-observation disagreement in a plan.
type Drift struct {
	// Op is the (original) plan node that drifted, Est its estimate.
	Op  exec.Operator
	Est Estimate
	// Actual is the observed row count; Q the q-error.
	Actual int64
	Q      float64
}

// feedbackState is the observation half of a Plan: the per-node row counts
// of the most recent committed instrumented execution.
type feedbackState struct {
	mu      sync.Mutex
	actuals map[exec.Operator]int64
	execs   int64
}

// Instrumented returns a fresh counted mirror of the plan — already a
// runnable clone, no CloneTree needed — and a commit func that records the
// mirror's tallies as the plan's current observation. Call commit after the
// tree has been drained to completion; an abandoned (errored) run is simply
// never committed. Each execution gets its own mirror, so observations are
// exact per-run counts even under concurrent executions — the committed
// observation is whichever run finished last, which is also the freshest
// view of the data.
func (p *Plan) Instrumented() (root exec.Operator, commit func()) {
	root, tallies := exec.Instrument(p.Root)
	return root, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.actuals == nil {
			p.actuals = make(map[exec.Operator]int64, len(tallies))
		}
		for op, n := range tallies {
			p.actuals[op] = n.Load()
		}
		p.execs++
	}
}

// Executions reports how many instrumented runs have been committed.
func (p *Plan) Executions() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.execs
}

// Actual reports the row count observed at a node of the original tree in
// the last committed execution; false before any commit or for an unknown
// node.
func (p *Plan) Actual(op exec.Operator) (int64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.actuals[op]
	return a, ok
}

// Feedback returns the worst drift between the optimizer's estimates and
// the last committed execution's row counts, considering only nodes where
// either side reaches minRows (<= 0 means DefaultFeedbackMinRows). ok is
// false when nothing qualifies — no committed execution, no estimates
// (planned without statistics), or every qualifying node agrees.
func (p *Plan) Feedback(minRows int64) (Drift, bool) {
	if minRows <= 0 {
		minRows = DefaultFeedbackMinRows
	}
	var worst Drift
	for op, est := range p.est {
		act, ok := p.Actual(op)
		if !ok {
			continue
		}
		if est.Rows < minRows && act < minRows {
			continue
		}
		if q := QError(est.Rows, act); q > worst.Q {
			worst = Drift{Op: op, Est: est, Actual: act, Q: q}
		}
	}
	return worst, worst.Op != nil
}
