package plan

import (
	"math"
	"testing"

	"repro/internal/adl"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Regression coverage for the zero-row guards: planning against an empty
// store (or statistics reporting empty extents) must never produce NaN or
// infinite cost estimates — a poisoned float comparison would silently
// derail every strategy and join-order choice above it.

// assertFiniteEstimates walks a plan's annotations.
func assertFiniteEstimates(t *testing.T, pl *Plan) {
	t.Helper()
	for op, e := range pl.est {
		if math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			t.Errorf("%T: non-finite cost %v in:\n%s", op, e.Cost, pl.Explain())
		}
		if e.Cost < 0 {
			t.Errorf("%T: negative cost %v", op, e.Cost)
		}
		if e.Rows < 0 {
			t.Errorf("%T: negative row estimate %d", op, e.Rows)
		}
	}
}

// zeroQueries is the plan-shape gauntlet: every join kind, the membership
// shape, scalar operators over joins, and a reorderable chain.
func zeroQueries() []adl.Expr {
	equi := func(kind adl.JoinKind) adl.Expr {
		j := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
			adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
			adl.T("DELIVERY"))
		j.Kind = kind
		if kind == adl.NestJ {
			j.As = "g"
		}
		return j
	}
	membership := adl.SemiJoin(adl.T("SUPPLIER"), "s", "p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.T("PART"))
	inner := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	chain := adl.JoinE(inner, "sd", "p",
		adl.EqE(adl.Dot(adl.V("sd"), "eid"), adl.Dot(adl.V("p"), "pid")),
		adl.T("PART"))
	return []adl.Expr{
		equi(adl.Inner), equi(adl.Semi), equi(adl.Anti), equi(adl.NestJ), equi(adl.Outer),
		membership,
		chain,
		adl.Sel("s", adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("nope")), adl.T("SUPPLIER")),
		adl.Mu("parts", adl.T("SUPPLIER")),
		adl.Proj(adl.T("PART"), "pid", "color"),
	}
}

// TestZeroRowPlansStayFinite plans the gauntlet against a freshly created,
// completely empty store using its own collected (all-zero) statistics.
func TestZeroRowPlansStayFinite(t *testing.T) {
	st := storage.New(schema.SupplierPart())
	stats := st.Analyze()
	for _, q := range zeroQueries() {
		pl := Config{Statistics: stats, Parallelism: 4}.Plan(q)
		assertFiniteEstimates(t, pl)
		// The empty plans must also execute to an empty result, not crash.
		got := collect(t, pl.Root, st)
		if got.Len() != 0 {
			t.Errorf("empty store produced %d rows for %s", got.Len(), q)
		}
	}
}

// TestZeroRowReorderStaysFinite drives the join-order enumerator itself with
// zero-row relations: statistics that list attributes (so decomposition
// succeeds) but report empty extents.
func TestZeroRowReorderStaysFinite(t *testing.T) {
	stats := fakeStatistics{
		rows: map[string]int{"A": 0, "B": 0, "C": 0},
		ndv: map[string]int{
			"A.a_id": 0, "A.a_v": 0,
			"B.b_a": 0, "B.b_c": 0, "B.b_v": 0,
			"C.c_id": 0, "C.c_v": 0,
		},
	}
	pl := Config{Statistics: stats, Parallelism: 4}.Plan(reorderChain())
	assertFiniteEstimates(t, pl)
	e, ok := pl.Estimate(pl.Root)
	if !ok {
		t.Fatalf("zero-row chain not annotated:\n%s", pl.Explain())
	}
	if e.Rows != 0 {
		t.Errorf("zero-row chain estimates %d rows, want 0", e.Rows)
	}
}

// TestJoinOutRowsGuards exercises the estimator helpers directly at the
// degenerate points.
func TestJoinOutRowsGuards(t *testing.T) {
	kinds := []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.NestJ, adl.Outer}
	for _, kind := range kinds {
		for _, in := range [][5]float64{
			{0, 0, 0, 0, 0}, {0, 10, 0, 0, 5}, {10, 0, 0, 5, 0},
			{1e18, 1e18, math.Inf(1), 1, 1}, {10, 10, math.NaN(), 0, 0},
		} {
			out := joinOutRows(kind, in[0], in[1], in[2], in[3], in[4])
			if math.IsNaN(out) || math.IsInf(out, 0) || out < 0 {
				t.Errorf("joinOutRows(%v, %v) = %v", kind, in, out)
			}
		}
	}
	if v := finite(math.NaN()); v != 0 {
		t.Errorf("finite(NaN) = %v, want 0", v)
	}
	if v := finite(math.Inf(1)); v != math.MaxFloat64 {
		t.Errorf("finite(+Inf) = %v, want MaxFloat64", v)
	}
	if v := finite(math.Inf(-1)); v != 0 {
		t.Errorf("finite(-Inf) = %v, want 0", v)
	}
}
