package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adl"
	"repro/internal/stats"
)

// -update regenerates the golden files:
//
//	go test ./internal/plan -run TestExplainGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenStats is a fixed statistics feed so the rendered costs are
// deterministic and reviewable.
var goldenStats = fakeStatistics{
	rows: map[string]int{"SUPPLIER": 200, "PART": 4000, "DELIVERY": 60000},
	ndv: map[string]int{
		"SUPPLIER.eid": 200, "SUPPLIER.sname": 180,
		"PART.pid": 4000, "PART.color": 3,
		"DELIVERY.supplier": 200,
	},
	avg: map[string]float64{"SUPPLIER.parts": 6},
}

// goldenCases are the plan shapes whose Explain output is change-reviewed:
// every cost annotation or plan-shape change must show up in a golden diff.
func goldenCases() map[string]*Plan {
	semiMembership := adl.SemiJoin(adl.T("SUPPLIER"), "s", "p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.Sel("p", adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART")))

	innerSwap := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	groupBig := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	groupBig.Kind = adl.NestJ
	groupBig.As = "ds"

	theta := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	// reorderStats drive the two-phase optimizer cases: a 3-relation chain
	// written huge-join-first (A ⋈ B explodes, C is selective), and a
	// 4-relation chain whose cheapest shape is bushy — the A–B and C–D edges
	// are selective, the B–C edge connecting the two pairs is weak, so
	// (A ⋈ B) ⋈ (C ⋈ D) avoids every 100k-row left-deep intermediate.
	reorderStats := fakeStatistics{
		rows: map[string]int{"A": 2000, "B": 2000, "C": 20, "D": 1000},
		ndv: map[string]int{
			"A.a_id": 10, "A.a_v": 20,
			"B.b_a": 10, "B.b_c": 2000, "B.b_v": 20,
			"C.c_id": 20, "C.c_v": 20,
			"D.d_id": 1000,
		},
	}
	chain3 := reorderChain()

	bushyStats := fakeStatistics{
		rows: map[string]int{"A": 1000, "B": 1000, "C": 1000, "D": 1000},
		ndv: map[string]int{
			"A.a_id": 1000,
			"B.b_a":  1000, "B.b_c": 10,
			"C.c_id": 10, "C.c_d": 1000,
			"D.d_id": 1000,
		},
	}
	b1 := adl.JoinE(adl.T("A"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
	b2 := adl.JoinE(b1, "xy", "z",
		adl.EqE(adl.Dot(adl.V("xy"), "b_c"), adl.Dot(adl.V("z"), "c_id")), adl.T("C"))
	chain4 := adl.JoinE(b2, "xyz", "w",
		adl.EqE(adl.Dot(adl.V("xyz"), "c_d"), adl.Dot(adl.V("w"), "d_id")), adl.T("D"))

	// indexStats mirror goldenStats plus secondary indexes, kept separate so
	// the index access paths show up only in the index golden cases.
	indexStats := fakeStatistics{
		rows: map[string]int{"SUPPLIER": 2000, "DELIVERY": 50000},
		ndv: map[string]int{"SUPPLIER.sname": 2000, "SUPPLIER.eid": 2000,
			"DELIVERY.supplier": 2000},
		idx: map[string]string{"SUPPLIER.sname": "ordered", "DELIVERY.supplier": "hash"},
	}
	lookupJoin := adl.JoinE(
		adl.Sel("s", adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-42")),
			adl.T("SUPPLIER")),
		"s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	rangeSel := adl.Sel("s", adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-5")),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-6"))),
		adl.T("SUPPLIER"))

	// histStats carry equi-depth histograms: EVT.sev is Zipf-shaped (value 0
	// holds 70% of the rows), EVT.qty uniform over [0,100). The histogram
	// cases show estimates the NDV rules cannot produce — the exact heavy-
	// hitter equality, the interpolated two-sided range — and the nohist
	// control renders the same queries under Config.NoHistograms.
	sevVals := make([]int64, 0, 2000)
	for i := 0; i < 2000; i++ {
		v := int64(1 + i%40)
		if i < 1400 {
			v = 0
		}
		sevVals = append(sevVals, v)
	}
	histStats := fakeStatistics{
		rows: map[string]int{"EVT": 2000},
		ndv:  map[string]int{"EVT.sev": 41, "EVT.qty": 100},
		idx:  map[string]string{"EVT.sev": "hash", "EVT.qty": "ordered"},
		hist: map[string]*stats.Histogram{
			"EVT.sev": histOf(sevVals...),
			"EVT.qty": uniformHist(2000, 100),
		},
	}
	hotEq := adl.Sel("e", adl.EqE(adl.Dot(adl.V("e"), "sev"), adl.CInt(0)), adl.T("EVT"))
	qtyRange := adl.Sel("e", adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("e"), "qty"), adl.CInt(20)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("e"), "qty"), adl.CInt(30))), adl.T("EVT"))

	costed := Config{Statistics: goldenStats, Parallelism: 4}
	bare := Config{}
	return map[string]*Plan{
		"stats_hist_hot_eq":        Config{Statistics: histStats, Parallelism: 4}.Plan(hotEq),
		"stats_nohist_hot_eq":      Config{Statistics: histStats, Parallelism: 4, NoHistograms: true}.Plan(hotEq),
		"stats_hist_range_probe":   Config{Statistics: histStats, Parallelism: 4}.Plan(qtyRange),
		"stats_nohist_range_probe": Config{Statistics: histStats, Parallelism: 4, NoHistograms: true}.Plan(qtyRange),
		"stats_index_lookup":       Config{Statistics: indexStats}.Plan(lookupJoin),
		"stats_index_range":        Config{Statistics: indexStats}.Plan(rangeSel),
		"stats_reorder_chain3":     Config{Statistics: reorderStats, Parallelism: 4}.Plan(chain3),
		"stats_noreorder_chain3":   Config{Statistics: reorderStats, Parallelism: 4, NoReorder: true}.Plan(chain3),
		"stats_reorder_bushy4":     Config{Statistics: bushyStats, Parallelism: 4}.Plan(chain4),
		"stats_reorder_greedy4":    Config{Statistics: bushyStats, Parallelism: 4, MaxDPRelations: 3}.Plan(chain4),
		"nostats_semijoin":         bare.Plan(semiMembership),
		"nostats_equijoin":         bare.Plan(innerSwap),
		"stats_semijoin":           costed.Plan(semiMembership),
		"stats_inner_swap":         costed.Plan(innerSwap),
		"stats_group_par":          costed.Plan(groupBig),
		"stats_theta_nl":           costed.Plan(theta),
		"stats_filter_serial":      costed.Plan(adl.Sel("p", adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART"))),
		"stats_map_parallel": costed.Plan(adl.MapE("d", adl.Dot(adl.V("d"), "date"),
			adl.T("DELIVERY"))),
		"stats_project_unnest": costed.Plan(adl.Proj(adl.Mu("parts", adl.T("SUPPLIER")), "pid")),
	}
}

func TestExplainGolden(t *testing.T) {
	for name, pl := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got := pl.Explain()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("Explain output changed; run with -update if intended.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
