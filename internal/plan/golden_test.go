package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adl"
)

// -update regenerates the golden files:
//
//	go test ./internal/plan -run TestExplainGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenStats is a fixed statistics feed so the rendered costs are
// deterministic and reviewable.
var goldenStats = fakeStatistics{
	rows: map[string]int{"SUPPLIER": 200, "PART": 4000, "DELIVERY": 60000},
	ndv: map[string]int{
		"SUPPLIER.eid": 200, "SUPPLIER.sname": 180,
		"PART.pid": 4000, "PART.color": 3,
		"DELIVERY.supplier": 200,
	},
	avg: map[string]float64{"SUPPLIER.parts": 6},
}

// goldenCases are the plan shapes whose Explain output is change-reviewed:
// every cost annotation or plan-shape change must show up in a golden diff.
func goldenCases() map[string]*Plan {
	semiMembership := adl.SemiJoin(adl.T("SUPPLIER"), "s", "p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.Sel("p", adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART")))

	innerSwap := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	groupBig := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	groupBig.Kind = adl.NestJ
	groupBig.As = "ds"

	theta := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	costed := Config{Statistics: goldenStats, Parallelism: 4}
	bare := Config{}
	return map[string]*Plan{
		"nostats_semijoin":    bare.Plan(semiMembership),
		"nostats_equijoin":    bare.Plan(innerSwap),
		"stats_semijoin":      costed.Plan(semiMembership),
		"stats_inner_swap":    costed.Plan(innerSwap),
		"stats_group_par":     costed.Plan(groupBig),
		"stats_theta_nl":      costed.Plan(theta),
		"stats_filter_serial": costed.Plan(adl.Sel("p", adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART"))),
		"stats_map_parallel": costed.Plan(adl.MapE("d", adl.Dot(adl.V("d"), "date"),
			adl.T("DELIVERY"))),
		"stats_project_unnest": costed.Plan(adl.Proj(adl.Mu("parts", adl.T("SUPPLIER")), "pid")),
	}
}

func TestExplainGolden(t *testing.T) {
	for name, pl := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got := pl.Explain()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("Explain output changed; run with -update if intended.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
