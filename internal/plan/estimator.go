// The cardinality estimator: every selectivity, distinct-count and set-size
// estimate the planner makes goes through the one estimator type in this
// file, so the two-phase optimizer's order enumeration (joingraph.go), the
// physical operator selection (plan.go, cost.go) and the index access-path
// pricing (access.go) can never disagree about what a predicate keeps.
//
// The estimator is histogram-first with graceful degradation: an equality
// over a collected attribute prices by equi-depth bucket density (exact for
// heavy hitters), one- and two-sided ranges by bucket interpolation, and
// join-key overlap by histogram intersection. When no histogram exists —
// the attribute was not collected, the extent is unknown, or
// Config.NoHistograms forces the A/B control arm — each estimate falls back
// to the pre-histogram model: the 1/NDV equality rule, defaultSelectivity
// for ranges, and the min-NDV containment rule for join keys.
package plan

import (
	"math"
	"sort"

	"repro/internal/adl"
	"repro/internal/stats"
	"repro/internal/value"
)

// estimator answers the planner's cardinality questions from collected
// statistics. The zero estimator (no Statistics) answers every question with
// the default guesses, which no costed path ever consults.
type estimator struct {
	stats  Statistics
	noHist bool
}

func newEstimator(cfg Config) estimator {
	return estimator{stats: cfg.Statistics, noHist: cfg.NoHistograms}
}

// hist resolves the histogram for extent.attr, nil when unavailable or when
// histogram use is disabled for A/B comparison.
func (e estimator) hist(extent, attr string) *stats.Histogram {
	if e.noHist || e.stats == nil || extent == "" || attr == "" {
		return nil
	}
	return e.stats.Histogram(extent, attr)
}

// combineConj combines per-conjunct selectivities into a conjunction
// estimate by exponential backoff: sorted ascending, the result is
// s0 · s1^(1/2) · s2^(1/4) · …. Full independence (the plain product)
// over-shrinks badly when conjuncts are correlated — which predicates over
// the same row usually are — and the old ×3 damping factor could estimate a
// conjunction *above* its weakest conjunct. Backoff is bounded both ways:
// the estimate never exceeds the most selective conjunct (every further
// factor is ≤ 1) and never collapses as fast as the product.
func combineConj(sels []float64) float64 {
	if len(sels) == 0 {
		return 1
	}
	sorted := append([]float64(nil), sels...)
	sort.Float64s(sorted)
	total, exp := 1.0, 1.0
	for _, s := range sorted {
		total *= math.Pow(clamp(finite(s), 0, 1), exp)
		exp /= 2
	}
	return clamp(finite(total), 0, 1)
}

// orientCmp normalizes a comparison to attribute-op-other form relative to
// the iteration variable v: x.a < c and c > x.a both yield ("a", c, Lt).
// A comparison not anchored to v's attribute yields attr == "".
func orientCmp(cmp *adl.Cmp, v string) (attr string, other adl.Expr, op adl.CmpOp) {
	attr, other, op = attrOf(cmp.L, v), cmp.R, cmp.Op
	if attr == "" {
		attr, other = attrOf(cmp.R, v), cmp.L
		switch cmp.Op {
		case adl.Lt:
			op = adl.Gt
		case adl.Le:
			op = adl.Ge
		case adl.Gt:
			op = adl.Lt
		case adl.Ge:
			op = adl.Le
		}
	}
	return attr, other, op
}

// literal resolves an optional bound expression to its literal value: a nil
// bound is an open end (ok with a nil value), a non-literal bound reports
// not-ok — the histogram cannot be consulted for a value only known at run
// time.
func literal(e adl.Expr) (value.Value, bool) {
	if e == nil {
		return nil, true
	}
	if c, ok := e.(*adl.Const); ok && c.Val != nil {
		return c.Val, true
	}
	return nil, false
}

// eqSelectivity estimates the fraction of extent rows whose attr equals the
// expression other: histogram bucket density when other is a literal, the
// 1/NDV uniform rule otherwise.
func (e estimator) eqSelectivity(extent, attr string, other adl.Expr) float64 {
	if h := e.hist(extent, attr); h != nil {
		if c, ok := other.(*adl.Const); ok && c.Val != nil {
			return h.EqFraction(c.Val)
		}
	}
	if e.stats != nil && extent != "" {
		if d := e.stats.DistinctValues(extent, attr); d > 0 {
			return clamp(1/float64(d), 0, 1)
		}
	}
	return defaultSelectivity
}

// cmpSelectivity estimates a one-sided range attr-op-other over the extent:
// histogram interpolation when other is a literal, the default guess
// otherwise. op must be one of Lt/Le/Gt/Ge.
func (e estimator) cmpSelectivity(op adl.CmpOp, extent, attr string, other adl.Expr) float64 {
	h := e.hist(extent, attr)
	c, isConst := other.(*adl.Const)
	if h == nil || !isConst || c.Val == nil {
		return defaultSelectivity
	}
	switch op {
	case adl.Lt:
		return h.LessFraction(c.Val, false)
	case adl.Le:
		return h.LessFraction(c.Val, true)
	case adl.Gt:
		return clamp(1-h.LessFraction(c.Val, true), 0, 1)
	case adl.Ge:
		return clamp(1-h.LessFraction(c.Val, false), 0, 1)
	}
	return defaultSelectivity
}

// boundsSelectivity estimates a (possibly one-sided) range lo..hi over
// extent.attr — the shape the index access path probes. With a histogram
// and literal bounds the fraction is interpolated directly; without, each
// present bound contributes one defaultSelectivity factor, combined — so a
// two-sided merged range prices below the flat unknown-predicate guess
// instead of identically to it.
func (e estimator) boundsSelectivity(extent, attr string, lo, hi adl.Expr, loIncl, hiIncl bool) float64 {
	if h := e.hist(extent, attr); h != nil {
		loV, loOK := literal(lo)
		hiV, hiOK := literal(hi)
		if loOK && hiOK {
			return h.RangeFraction(loV, hiV, loIncl, hiIncl)
		}
	}
	var sels []float64
	if lo != nil {
		sels = append(sels, defaultSelectivity)
	}
	if hi != nil {
		sels = append(sels, defaultSelectivity)
	}
	return combineConj(sels)
}

// conjunctSelectivity estimates one σ conjunct over the iteration variable v
// whose rows come from extent.
func (e estimator) conjunctSelectivity(c adl.Expr, v, extent string) float64 {
	cmp, ok := c.(*adl.Cmp)
	if !ok {
		return defaultSelectivity
	}
	attr, other, op := orientCmp(cmp, v)
	if attr == "" {
		return defaultSelectivity
	}
	switch op {
	case adl.Eq:
		return e.eqSelectivity(extent, attr, other)
	case adl.Lt, adl.Le, adl.Gt, adl.Ge:
		return e.cmpSelectivity(op, extent, attr, other)
	}
	return defaultSelectivity
}

// selectivity estimates what fraction of rows a σ predicate keeps, where v
// is the σ's iteration variable and extent the base table its rows come
// from ("" when unknown). The predicate is split into conjuncts, each
// priced by the histogram/NDV rules above; complementary one-sided bounds
// over the same attribute (lo ≤ x.a ∧ x.a < hi) merge into a single
// interpolated range first, and the per-conjunct estimates are combined
// with combineConj. The attribute rules are bound to the iteration variable
// through attrOf: a field read off any other variable (x.a = y.b with y
// free) must not look up the source extent's statistics for the foreign
// attribute — when attribute names collide across extents that silently
// used the wrong extent's NDV.
func (e estimator) selectivity(pred adl.Expr, v, extent string) float64 {
	type bounds struct {
		lo, hi         adl.Expr
		loIncl, hiIncl bool
	}
	ranges := map[string]*bounds{}
	var sels []float64
	for _, c := range adl.Conjuncts(pred) {
		cmp, ok := c.(*adl.Cmp)
		if !ok {
			sels = append(sels, defaultSelectivity)
			continue
		}
		attr, other, op := orientCmp(cmp, v)
		switch {
		case attr == "":
			sels = append(sels, defaultSelectivity)
		case op == adl.Eq:
			sels = append(sels, e.eqSelectivity(extent, attr, other))
		case op == adl.Lt || op == adl.Le:
			if r := rangeSlot(ranges, attr); r.hi == nil {
				r.hi, r.hiIncl = other, op == adl.Le
			} else {
				sels = append(sels, e.cmpSelectivity(op, extent, attr, other))
			}
		case op == adl.Gt || op == adl.Ge:
			if r := rangeSlot(ranges, attr); r.lo == nil {
				r.lo, r.loIncl = other, op == adl.Ge
			} else {
				sels = append(sels, e.cmpSelectivity(op, extent, attr, other))
			}
		default:
			sels = append(sels, defaultSelectivity)
		}
	}
	for attr, r := range ranges {
		sels = append(sels, e.boundsSelectivity(extent, attr, r.lo, r.hi, r.loIncl, r.hiIncl))
	}
	return combineConj(sels)
}

// rangeSlot fetches (or creates) the per-attribute bound accumulator the
// selectivity estimator merges complementary comparisons into.
func rangeSlot[T any](m map[string]*T, attr string) *T {
	if r, ok := m[attr]; ok {
		return r
	}
	r := new(T)
	m[attr] = r
	return r
}

// keyNDV estimates the number of distinct join-key values on one side. For a
// single collected attribute it is exact; composite keys multiply, capped at
// the row count; unknown keys fall back to rows/10 (a mild "some
// duplication" guess).
func (e estimator) keyNDV(n nodeEst, keys []adl.Expr, v string) float64 {
	ndv := 1.0
	resolved := false
	if e.stats != nil && n.extent != "" {
		ndv, resolved = 1.0, true
		for _, k := range keys {
			attr := attrOf(k, v)
			if attr == "" {
				resolved = false
				break
			}
			d := e.stats.DistinctValues(n.extent, attr)
			if d <= 0 {
				resolved = false
				break
			}
			ndv *= float64(d)
		}
	}
	if !resolved {
		ndv = n.rows / 10
	}
	return clamp(finite(ndv), 1, math.Max(1, finite(n.rows)))
}

// joinEqSelectivity estimates the selectivity of one equality edge between
// two relations: histogram intersection when both key attributes carry
// histograms, the containment rule 1/max(NDV) otherwise. Histogram
// intersection is what min-NDV cannot be: sensitive to *which* values each
// side holds — disjoint key domains estimate near zero, a hot foreign key
// concentrates matches where the rows actually are.
func (e estimator) joinEqSelectivity(le nodeEst, lkey adl.Expr, lvar string,
	re nodeEst, rkey adl.Expr, rvar string) float64 {
	la, ra := attrOf(lkey, lvar), attrOf(rkey, rvar)
	if la != "" && ra != "" {
		if sel, ok := stats.JoinSelectivity(e.hist(le.extent, la), e.hist(re.extent, ra)); ok {
			return clamp(finite(sel), 0, 1)
		}
	}
	ndvL := e.keyNDV(le, []adl.Expr{lkey}, lvar)
	ndvR := e.keyNDV(re, []adl.Expr{rkey}, rvar)
	return 1 / math.Max(1, math.Max(ndvL, ndvR))
}

// joinConjSelectivity estimates one join conjunct between operands bound to
// lvar/rvar: cross-variable equalities use the key-overlap estimate,
// single-variable comparisons price like leaf selections on their side,
// anything else the default guess.
func (e estimator) joinConjSelectivity(c adl.Expr, lvar string, le nodeEst,
	rvar string, re nodeEst) float64 {
	if cmp, ok := c.(*adl.Cmp); ok && cmp.Op == adl.Eq {
		lk, rk := cmp.L, cmp.R
		if attrOf(lk, lvar) == "" && attrOf(rk, lvar) != "" {
			lk, rk = rk, lk
		}
		if attrOf(lk, lvar) != "" && attrOf(rk, rvar) != "" {
			return e.joinEqSelectivity(le, lk, lvar, re, rk, rvar)
		}
	}
	if !adl.HasFree(c, rvar) {
		return e.conjunctSelectivity(c, lvar, le.extent)
	}
	if !adl.HasFree(c, lvar) {
		return e.conjunctSelectivity(c, rvar, re.extent)
	}
	return defaultSelectivity
}

// joinPredSelectivity estimates a whole join predicate (the no-equi-key
// nested-loop shape included — formerly a flat rows·defaultSelectivity
// cross-product guess).
func (e estimator) joinPredSelectivity(cs []adl.Expr, lvar string, le nodeEst,
	rvar string, re nodeEst) float64 {
	sels := make([]float64, len(cs))
	for i, c := range cs {
		sels[i] = e.joinConjSelectivity(c, lvar, le, rvar, re)
	}
	return combineConj(sels)
}

// avgSetSize estimates the mean cardinality of a set-valued attribute of the
// given subtree's rows.
func (e estimator) avgSetSize(n nodeEst, attr string) float64 {
	if e.stats != nil && n.extent != "" {
		if s := e.stats.AvgSetSize(n.extent, attr); s > 0 {
			return s
		}
	}
	return defaultSetSize
}
