// Cost model for physical operator selection. The paper's §5.1 promise —
// "the optimizer may choose from a number of different join processing
// strategies" — needs a way to rank the choices; this file prices every
// physical join operator (NLJoin, HashJoin with either build side,
// SortMergeJoin, the set-probe/PNHL family, PartitionedHashJoin) from
// collected statistics (storage.Analyze) and lets the planner pick the
// cheapest.
//
// Costs are abstract work units, calibrated so that one unit is roughly one
// cheap per-row step of the Go execution engine. The constants matter only
// relative to each other; the interesting outputs are strategy crossovers,
// not absolute numbers.
package plan

import (
	"math"

	"repro/internal/adl"
	"repro/internal/stats"
)

// Statistics is the collected-statistics view of the database the cost model
// consumes; *storage.DBStats implements it.
type Statistics interface {
	// RowCount reports an extent's cardinality, -1 if unknown.
	RowCount(extent string) int
	// DistinctValues reports an attribute's distinct-value count, 0 if
	// unknown.
	DistinctValues(extent, attr string) int
	// AvgSetSize reports the mean cardinality of a set-valued attribute,
	// 0 if unknown or not set-valued.
	AvgSetSize(extent, attr string) float64
	// Attributes lists an extent's collected top-level attribute names
	// (nil if the extent is unknown). The join-order enumerator uses it to
	// attribute predicates over concatenated join tuples to the base
	// relation owning the accessed attribute.
	Attributes(extent string) []string
	// IndexKind reports the secondary index on extent.attr: "hash"
	// (equality probes), "ordered" (equality and range probes), or "" when
	// the attribute is not indexed. It gates the index access paths —
	// IndexScan leaves and the index-nested-loop join.
	IndexKind(extent, attr string) string
	// Histogram reports the equi-depth histogram collected for extent.attr
	// (the element distribution for a set-valued attribute), or nil when
	// none was collected. The estimator prices equality predicates by bucket
	// density, range predicates by bucket interpolation, and join-key
	// overlap by histogram intersection; a nil histogram falls back to the
	// NDV rules.
	Histogram(extent, attr string) *stats.Histogram
}

// Estimate annotates a physical operator with the optimizer's prediction.
type Estimate struct {
	// Rows is the estimated output cardinality.
	Rows int64
	// Cost is the estimated cumulative cost in abstract work units
	// (children included).
	Cost float64
	// Note is an optional human-readable hint about the choice, e.g.
	// "build side swapped".
	Note string
}

// Cost model constants. cEval dominates: scalar expressions run through the
// reference interpreter, so a predicate or key evaluation costs several
// times a plain row hand-off.
const (
	cRow       = 1.0 // emit or pass one row
	cEval      = 4.0 // evaluate one compiled scalar expression
	cHashBuild = 3.5 // insert one row into a hash table
	cHashProbe = 2.0 // probe one key against a hash table
	cCmp       = 3.0 // one comparison while sorting or merging

	// cIndexProbe is one key probe against a secondary index (hash bucket
	// walk or ordered binary search); cIndexFetch is fetching one matching
	// object through the store's metered lookup path — random-access I/O,
	// priced above a scan's sequential row hand-off.
	cIndexProbe = 2.5
	cIndexFetch = 1.5

	// cParallelStartup is the fixed price of spinning up a partitioned
	// parallel pipeline (goroutines, channels, partition bookkeeping). It is
	// calibrated against DefaultParallelThreshold: the parallel hash join
	// becomes cheaper than the serial one at a combined input of roughly
	// that many rows.
	cParallelStartup = 12000.0
	// cPoolStartup is the (smaller) fixed price of a ParallelMap/Filter
	// worker pool.
	cPoolStartup = 8000.0
	// cChannelRow is the per-row price of moving results through the
	// bounded merge channel.
	cChannelRow = 1.0

	// defaultSelectivity is the guess for predicates the model cannot see
	// through.
	defaultSelectivity = 1.0 / 3.0
	// defaultSetSize is the guess for a set-valued attribute's mean
	// cardinality when uncollected.
	defaultSetSize = 4.0
)

// nodeEst is the planner's internal estimate for one compiled subtree.
type nodeEst struct {
	rows  float64
	known bool
	// extent is the base table this subtree's rows (still) originate from,
	// when attribute statistics remain applicable ("" otherwise).
	extent string
	cost   float64
	note   string
}

// unknownEst is the estimate for shapes the model cannot see through.
var unknownEst = nodeEst{}

// estimate converts a nodeEst to the exported annotation. Row estimates
// beyond int64 saturate instead of wrapping negative in the conversion.
func (e nodeEst) estimate() Estimate {
	rows := finite(e.rows)
	out := int64(math.MaxInt64)
	if rows < 9e18 { // safely below the float64 image of MaxInt64
		out = int64(rows + 0.5)
	}
	return Estimate{Rows: out, Cost: finite(e.cost), Note: e.note}
}

// finite guards estimate arithmetic against NaN/Inf: empty extents drive row
// counts (and hence divisors) to zero, and a poisoned estimate would corrupt
// every cost comparison above it. NaN collapses to 0, infinities saturate.
func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return 0
	}
	return v
}

// attrOf resolves a join-key expression to the attribute it reads off the
// iteration variable: x.a and x[a] both resolve to "a". Anything else
// (computed keys) resolves to "".
func attrOf(key adl.Expr, v string) string {
	switch k := key.(type) {
	case *adl.Field:
		if vr, ok := k.X.(*adl.Var); ok && vr.Name == v {
			return k.Name
		}
	case *adl.Subscript:
		if vr, ok := k.X.(*adl.Var); ok && vr.Name == v && len(k.Attrs) == 1 {
			return k.Attrs[0]
		}
	}
	return ""
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// joinOutRows estimates a join's output cardinality per kind, from the input
// sizes, the estimated inner-join output (supplied by the estimator — NDV
// containment or histogram intersection) and the key distinct counts that
// drive the filtering kinds' match fraction.
func joinOutRows(kind adl.JoinKind, l, r, inner, ndvL, ndvR float64) float64 {
	inner = finite(inner)
	matchFrac := clamp(finite(ndvR/math.Max(1, ndvL)), 0, 1)
	switch kind {
	case adl.Inner:
		return inner
	case adl.Outer:
		return math.Max(inner, l)
	case adl.Semi:
		return l * matchFrac
	case adl.Anti:
		return l * (1 - matchFrac)
	case adl.NestJ:
		return l // the nestjoin emits exactly one row per left row
	}
	return inner
}

// ---------------------------------------------------------------------------
// Per-operator own costs (excluding the children's costs). l and r are the
// input cardinalities, out the estimated output cardinality.
// ---------------------------------------------------------------------------

// costNL prices the tuple-oriented nested loop: one predicate evaluation per
// pair.
func costNL(l, r, out float64) float64 {
	return l*r*cEval + out*cRow
}

// costHash prices the serial hash join: build on `build` rows, probe with
// `probe` rows, evaluate the residual on the candidate matches.
func costHash(build, probe, out, residMatches float64) float64 {
	return build*(cEval+cHashBuild) + probe*(cEval+cHashProbe) +
		residMatches*cEval + out*cRow
}

// costSortMerge prices the sort-merge join: key extraction, two sorts, one
// merge pass.
func costSortMerge(l, r, out float64) float64 {
	return (l+r)*cEval + (l*log2(l)+r*log2(r)+l+r)*cCmp + out*cRow
}

// costPartitionedHash prices the Grace-style parallel hash join: a fixed
// startup, one partitioning pass over both inputs, the per-partition
// build+probe divided across p workers, and the merge channel.
func costPartitionedHash(build, probe, out, residMatches float64, p int) float64 {
	w := math.Max(1, float64(p))
	work := build*(cEval+cHashBuild) + probe*(cEval+cHashProbe) + residMatches*cEval
	return cParallelStartup + (build+probe)*cRow + work/w + out*cChannelRow
}

// costPNHL prices the Partitioned Nested-Hashed-Loops family for joining a
// set-valued attribute (l rows, avgSet elements each) with a flat build
// table of r rows, split into `segments` memory-bounded segments: the build
// table is hashed once in total, but the probe side is rescanned per
// segment. The single-segment case (segments=1) is the set-probe join the
// planner emits for membership predicates.
func costPNHL(l, avgSet, r, out float64, segments int) float64 {
	s := math.Max(1, float64(segments))
	return r*(cEval+cHashBuild) + s*l*avgSet*cHashProbe + out*cRow
}

// costIndexScan prices an index leaf: one probe plus fetching and emitting
// the matching objects. Against the full scan + filter's rows*cEval it wins
// exactly when the predicate is selective — a low-NDV equality or a wide
// range loses to the sequential sweep.
func costIndexScan(matches float64) float64 {
	return cIndexProbe + matches*(cIndexFetch+cRow)
}

// costIndexNL prices the index-nested-loop join: each of the outer rows
// evaluates its key and probes the inner extent's index, the matches are
// fetched, residual conjuncts are evaluated on them, and the output rows
// emitted. No term scales with the inner extent's cardinality — that is the
// whole point, and why it beats the hash join's full inner scan when the
// outer side is small.
func costIndexNL(outer, matches, residMatches, out float64) float64 {
	return outer*(cEval+cIndexProbe) + matches*cIndexFetch + residMatches*cEval + out*cRow
}

// costParallelPool prices a ParallelMap/Filter over n rows against its
// serial counterpart's n*cEval.
func costParallelPool(n float64, p int) float64 {
	w := math.Max(1, float64(p))
	return cPoolStartup + n*cEval/w + n*cChannelRow
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// Vectorized execution constants. A batch pipeline pays a fixed dispatch
// cost per batch (virtual call, selection-vector reset) and a much smaller
// per-row cost than the interpreter: typed kernels compare decoded column
// slices without env binding or value boxing.
const (
	pageRows       = 1024.0 // default batch granularity for page-unit costing
	cBatchDispatch = 16.0   // fixed cost of dispatching one batch
	cVecRow        = 0.25   // per-row cost inside a typed kernel
)

// pages is the number of batches n rows occupy at the given batch size.
func pages(n float64, batch int) float64 {
	b := pageRows
	if batch > 0 {
		b = float64(batch)
	}
	return math.Ceil(math.Max(0, n) / b)
}

// costVecScan prices a columnar extent scan emitting n rows in batches.
func costVecScan(n float64, batch int) float64 {
	return pages(n, batch)*cBatchDispatch + n*cVecRow
}

// costVecFilter prices a selection-vector filter: every input row passes
// through each kernel (no short-circuit across rows, only across kernels as
// the selection narrows — priced pessimistically at full width).
func costVecFilter(n, kernels float64, batch int) float64 {
	return pages(n, batch)*cBatchDispatch + n*math.Max(1, kernels)*cVecRow
}

// costVecHash prices the batch hash join: the build side is evaluated and
// hashed row-wise (same as the scalar build), the probe side streams in
// batches through a flat typed table, and the output rows are emitted.
func costVecHash(build, probe, out float64, batch int) float64 {
	return build*(cEval+cHashBuild) + pages(probe, batch)*cBatchDispatch +
		probe*cVecRow + out*cRow
}

// costVecSetProbe prices the batch set-probe join: the right keys build a
// flat table, and each left row probes it once per set element.
func costVecSetProbe(l, avgSet, r, out float64, batch int) float64 {
	return r*(cEval+cHashBuild) + pages(l, batch)*cBatchDispatch +
		l*avgSet*cVecRow + out*cRow
}

// Parallel-vectorized constants. Exchanging whole batches over bounded
// channels needs orders of magnitude fewer channel operations than the
// tuple-at-a-time pool, so the startup hurdle is well below cPoolStartup
// and the per-transfer cost is paid per batch, not per row.
const (
	cChannelBatch       = 4.0    // send one Batch over a bounded channel
	cVecParallelStartup = 4000.0 // spawn workers, allocate pools and channels
)

// costVecExchange prices the morsel-driven parallel scan+filter pipeline:
// workers claim morsels from a shared cursor, run the filter kernels, and
// send surviving batches over one bounded channel. Kernel work divides by
// the worker count; the batch sends and the startup hurdle do not.
func costVecExchange(n, kernels float64, batch, w int) float64 {
	ww := math.Max(1, float64(w))
	return cVecParallelStartup +
		(pages(n, batch)*cBatchDispatch+n*math.Max(1, kernels)*cVecRow)/ww +
		pages(n, batch)*cChannelBatch
}

// costVecPartHash prices the partitioned batch hash join: the build side is
// evaluated and routed serially, then indexed and probed by w workers with
// whole batches exchanged over one bounded channel. Build indexing, probe
// kernels and output emission divide by the worker count.
func costVecPartHash(build, probe, out float64, batch int, w float64) float64 {
	ww := math.Max(1, w)
	return cVecParallelStartup + build*cRow +
		pages(probe, batch)*(cBatchDispatch+cChannelBatch) +
		(build*(cEval+cHashBuild)+probe*cVecRow+out*cRow)/ww
}
