package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/value"
)

// The reordering differential property test: seeded random multi-join
// queries (3–4 relations, random tree shapes, equi and theta conjuncts,
// occasional empty tables) are planned four ways — rewriter order, the
// enumerated order, the enumerated order with parallel operators, and the
// greedy left-deep fallback — and every plan must return the rule-based
// serial reference's exact result set. CI runs this under -race, which also
// shakes the parallel operators reached through reordered plans.

// randRelations builds nt random tables T0..T{nt-1}, each with a key
// attribute t{i}k (small domain), a second key t{i}j, and a value t{i}v,
// plus exact collected-style statistics. Tables are sometimes empty.
func randRelations(rng *rand.Rand, nt int) (*storage.MemDB, fakeStatistics, []string) {
	stats := fakeStatistics{rows: map[string]int{}, ndv: map[string]int{}}
	var pairs []any
	var names []string
	for i := 0; i < nt; i++ {
		name := fmt.Sprintf("T%d", i)
		names = append(names, name)
		set := value.EmptySet()
		rows := rng.Intn(40)
		if rng.Intn(8) == 0 {
			rows = 0 // the empty-extent edge the cost guards exist for
		}
		dom := int64(1 + rng.Intn(6))
		distinct := map[string]map[value.Value]bool{}
		note := func(attr string, v value.Value) {
			if distinct[attr] == nil {
				distinct[attr] = map[value.Value]bool{}
			}
			distinct[attr][v] = true
		}
		for r := 0; r < rows; r++ {
			k := value.Int(rng.Int63n(dom))
			j := value.Int(rng.Int63n(dom))
			v := value.Int(int64(rng.Intn(25)))
			set.Add(value.NewTuple(
				fmt.Sprintf("t%dk", i), k,
				fmt.Sprintf("t%dj", i), j,
				fmt.Sprintf("t%dv", i), v,
			))
			note(fmt.Sprintf("t%dk", i), k)
			note(fmt.Sprintf("t%dj", i), j)
			note(fmt.Sprintf("t%dv", i), v)
		}
		pairs = append(pairs, name, set)
		stats.rows[name] = set.Len()
		for attr, vals := range distinct {
			stats.ndv[name+"."+attr] = len(vals)
		}
		// Empty tables still need their attributes known for decomposition,
		// as collected statistics would not list them.
		for _, suffix := range []string{"k", "j", "v"} {
			key := fmt.Sprintf("%s.t%d%s", name, i, suffix)
			if _, ok := stats.ndv[key]; !ok {
				stats.ndv[key] = 0
			}
		}
	}
	return storage.NewMemDB(pairs...), stats, names
}

// randJoinTree builds a random inner-join tree over the table indexes in
// leaves, with every join predicate referencing attributes through the
// join's own operand variables (the nested form the rewriter emits).
type treeGen struct {
	rng *rand.Rand
	seq int
}

// attrName picks a random attribute of table index i.
func (tg *treeGen) attrName(i int, keyOnly bool) string {
	suffixes := []string{"k", "j"}
	if !keyOnly {
		suffixes = append(suffixes, "v")
	}
	return fmt.Sprintf("t%d%s", i, suffixes[tg.rng.Intn(len(suffixes))])
}

// build returns the expression over the given leaves and the table indexes
// it covers.
func (tg *treeGen) build(leaves []int) (adl.Expr, []int) {
	if len(leaves) == 1 {
		return adl.T(fmt.Sprintf("T%d", leaves[0])), leaves
	}
	split := 1 + tg.rng.Intn(len(leaves)-1)
	l, lIdx := tg.build(leaves[:split])
	r, rIdx := tg.build(leaves[split:])
	lv := fmt.Sprintf("v%d", tg.seq)
	rv := fmt.Sprintf("v%d", tg.seq+1)
	tg.seq += 2

	// One connecting equi conjunct, plus occasionally a theta residual.
	li := lIdx[tg.rng.Intn(len(lIdx))]
	ri := rIdx[tg.rng.Intn(len(rIdx))]
	on := []adl.Expr{adl.EqE(
		adl.Dot(adl.V(lv), tg.attrName(li, true)),
		adl.Dot(adl.V(rv), tg.attrName(ri, true)))}
	if tg.rng.Intn(3) == 0 {
		li, ri = lIdx[tg.rng.Intn(len(lIdx))], rIdx[tg.rng.Intn(len(rIdx))]
		on = append(on, adl.CmpE(adl.Lt,
			adl.Dot(adl.V(lv), tg.attrName(li, false)),
			adl.Dot(adl.V(rv), tg.attrName(ri, false))))
	}
	// Occasionally a single-relation filter conjunct, exercising pushdown.
	if tg.rng.Intn(4) == 0 {
		side, idx := lv, lIdx
		if tg.rng.Intn(2) == 0 {
			side, idx = rv, rIdx
		}
		on = append(on, adl.CmpE(adl.Le,
			adl.Dot(adl.V(side), tg.attrName(idx[tg.rng.Intn(len(idx))], false)),
			adl.CInt(int64(tg.rng.Intn(20)))))
	}
	return adl.JoinE(l, lv, rv, adl.AndE(on...), r), append(lIdx, rIdx...)
}

func TestDifferentialReorderedEquivalence(t *testing.T) {
	engaged := 0
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		nt := 3 + rng.Intn(2)
		db, stats, _ := randRelations(rng, nt)
		leaves := rng.Perm(nt)
		tg := &treeGen{rng: rng}
		expr, _ := tg.build(leaves)

		ref := collect(t, Compile(expr), db)

		arms := map[string]Config{
			"rewriter-order": {Statistics: stats, NoReorder: true},
			"reordered":      {Statistics: stats},
			"reordered-par":  {Statistics: stats, Parallelism: 3},
			"greedy":         {Statistics: stats, MaxDPRelations: 2},
		}
		for name, cfg := range arms {
			pl := cfg.Plan(expr)
			got := collect(t, pl.Root, db)
			if !value.Equal(got, ref) {
				t.Fatalf("seed %d arm %s diverges from rule-based reference:\nquery: %s\nplan:\n%s\n got  %v\n want %v",
					seed, name, expr, pl.Explain(), got, ref)
			}
			if name == "reordered" {
				if e, ok := pl.Estimate(pl.Root); ok && strings.Contains(e.Note, "order:") {
					engaged++
				}
			}
		}
	}
	// The generator must actually exercise the enumerator, not just its
	// fallbacks.
	if engaged < 10 {
		t.Fatalf("enumeration engaged on only %d/25 seeds", engaged)
	}
}

// storeRelations mirrors randRelations on a real storage.Store with
// secondary indexes — ordered on each t{i}k, hash on each t{i}j — so the
// indexed arms probe real index structures and ANALYZE-collected statistics
// (index kinds included) drive the planner. With skewed set, the key
// attributes are drawn from a Zipf distribution instead of uniformly, so
// the collected histograms have heavy hitters to disagree with the NDV
// rules about.
func storeRelations(t *testing.T, rng *rand.Rand, nt int, skewed bool) *storage.Store {
	t.Helper()
	cat := schema.NewCatalog()
	for i := 0; i < nt; i++ {
		if err := cat.Define(&schema.Class{
			Name:    fmt.Sprintf("T%dClass", i),
			Extent:  fmt.Sprintf("T%d", i),
			IDField: fmt.Sprintf("t%did", i),
			Attrs: []schema.Attr{
				{Name: fmt.Sprintf("t%dk", i), Kind: schema.Plain, Type: types.IntType},
				{Name: fmt.Sprintf("t%dj", i), Kind: schema.Plain, Type: types.IntType},
				{Name: fmt.Sprintf("t%dv", i), Kind: schema.Plain, Type: types.IntType},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.New(cat)
	for i := 0; i < nt; i++ {
		name := fmt.Sprintf("T%d", i)
		rows := rng.Intn(40)
		if rng.Intn(8) == 0 {
			rows = 0
		}
		dom := int64(1 + rng.Intn(6))
		draw := func() value.Value { return value.Int(rng.Int63n(dom)) }
		if skewed && dom > 1 {
			zipf := rand.NewZipf(rng, 1.8, 1, uint64(dom-1))
			draw = func() value.Value { return value.Int(int64(zipf.Uint64())) }
		}
		for r := 0; r < rows; r++ {
			if _, err := st.Insert(name, value.NewTuple(
				fmt.Sprintf("t%dk", i), draw(),
				fmt.Sprintf("t%dj", i), draw(),
				fmt.Sprintf("t%dv", i), value.Int(int64(rng.Intn(25))),
			)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.CreateIndex(name, fmt.Sprintf("t%dk", i), storage.OrderedIndex); err != nil {
			t.Fatal(err)
		}
		if err := st.EnsureIndexes(name, fmt.Sprintf("t%dj", i)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestDifferentialIndexedEquivalence is the indexed arm of the harness:
// seeded random multi-join queries over a real store with secondary indexes
// must return the rule-based reference's exact result set with indexes on,
// off, and under parallel operators — race-clean under -race.
func TestDifferentialIndexedEquivalence(t *testing.T) {
	idxEngaged := 0
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 900))
		nt := 3 + rng.Intn(2)
		st := storeRelations(t, rng, nt, false)
		stats := st.Analyze()
		leaves := rng.Perm(nt)
		tg := &treeGen{rng: rng}
		expr, _ := tg.build(leaves)

		ref := collect(t, Compile(expr), st)

		arms := map[string]Config{
			"indexed":          {Statistics: stats},
			"indexed-noreord":  {Statistics: stats, NoReorder: true},
			"indexed-parallel": {Statistics: stats, Parallelism: 3},
			"indexes-off":      {Statistics: stats, NoIndexes: true},
		}
		for name, cfg := range arms {
			pl := cfg.Plan(expr)
			got := collect(t, pl.Root, st)
			if !value.Equal(got, ref) {
				t.Fatalf("seed %d arm %s diverges from rule-based reference:\nquery: %s\nplan:\n%s\n got  %v\n want %v",
					seed, name, expr, pl.Explain(), got, ref)
			}
			if name == "indexed" && strings.Contains(pl.Explain(), "Index") {
				idxEngaged++
			}
		}
	}
	// The generator must actually exercise the index operators, not plan
	// around them every time.
	if idxEngaged < 5 {
		t.Fatalf("index access paths engaged on only %d/25 seeds", idxEngaged)
	}
}
