package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

// The reordering differential property test: seeded random multi-join
// queries (3–4 relations, random tree shapes, equi and theta conjuncts,
// occasional empty tables) are planned four ways — rewriter order, the
// enumerated order, the enumerated order with parallel operators, and the
// greedy left-deep fallback — and every plan must return the rule-based
// serial reference's exact result set. CI runs this under -race, which also
// shakes the parallel operators reached through reordered plans.

// randRelations builds nt random tables T0..T{nt-1}, each with a key
// attribute t{i}k (small domain), a second key t{i}j, and a value t{i}v,
// plus exact collected-style statistics. Tables are sometimes empty.
func randRelations(rng *rand.Rand, nt int) (*storage.MemDB, fakeStatistics, []string) {
	stats := fakeStatistics{rows: map[string]int{}, ndv: map[string]int{}}
	var pairs []any
	var names []string
	for i := 0; i < nt; i++ {
		name := fmt.Sprintf("T%d", i)
		names = append(names, name)
		set := value.EmptySet()
		rows := rng.Intn(40)
		if rng.Intn(8) == 0 {
			rows = 0 // the empty-extent edge the cost guards exist for
		}
		dom := int64(1 + rng.Intn(6))
		distinct := map[string]map[value.Value]bool{}
		note := func(attr string, v value.Value) {
			if distinct[attr] == nil {
				distinct[attr] = map[value.Value]bool{}
			}
			distinct[attr][v] = true
		}
		for r := 0; r < rows; r++ {
			k := value.Int(rng.Int63n(dom))
			j := value.Int(rng.Int63n(dom))
			v := value.Int(int64(rng.Intn(25)))
			set.Add(value.NewTuple(
				fmt.Sprintf("t%dk", i), k,
				fmt.Sprintf("t%dj", i), j,
				fmt.Sprintf("t%dv", i), v,
			))
			note(fmt.Sprintf("t%dk", i), k)
			note(fmt.Sprintf("t%dj", i), j)
			note(fmt.Sprintf("t%dv", i), v)
		}
		pairs = append(pairs, name, set)
		stats.rows[name] = set.Len()
		for attr, vals := range distinct {
			stats.ndv[name+"."+attr] = len(vals)
		}
		// Empty tables still need their attributes known for decomposition,
		// as collected statistics would not list them.
		for _, suffix := range []string{"k", "j", "v"} {
			key := fmt.Sprintf("%s.t%d%s", name, i, suffix)
			if _, ok := stats.ndv[key]; !ok {
				stats.ndv[key] = 0
			}
		}
	}
	return storage.NewMemDB(pairs...), stats, names
}

// randJoinTree builds a random inner-join tree over the table indexes in
// leaves, with every join predicate referencing attributes through the
// join's own operand variables (the nested form the rewriter emits).
type treeGen struct {
	rng *rand.Rand
	seq int
}

// attrName picks a random attribute of table index i.
func (tg *treeGen) attrName(i int, keyOnly bool) string {
	suffixes := []string{"k", "j"}
	if !keyOnly {
		suffixes = append(suffixes, "v")
	}
	return fmt.Sprintf("t%d%s", i, suffixes[tg.rng.Intn(len(suffixes))])
}

// build returns the expression over the given leaves and the table indexes
// it covers.
func (tg *treeGen) build(leaves []int) (adl.Expr, []int) {
	if len(leaves) == 1 {
		return adl.T(fmt.Sprintf("T%d", leaves[0])), leaves
	}
	split := 1 + tg.rng.Intn(len(leaves)-1)
	l, lIdx := tg.build(leaves[:split])
	r, rIdx := tg.build(leaves[split:])
	lv := fmt.Sprintf("v%d", tg.seq)
	rv := fmt.Sprintf("v%d", tg.seq+1)
	tg.seq += 2

	// One connecting equi conjunct, plus occasionally a theta residual.
	li := lIdx[tg.rng.Intn(len(lIdx))]
	ri := rIdx[tg.rng.Intn(len(rIdx))]
	on := []adl.Expr{adl.EqE(
		adl.Dot(adl.V(lv), tg.attrName(li, true)),
		adl.Dot(adl.V(rv), tg.attrName(ri, true)))}
	if tg.rng.Intn(3) == 0 {
		li, ri = lIdx[tg.rng.Intn(len(lIdx))], rIdx[tg.rng.Intn(len(rIdx))]
		on = append(on, adl.CmpE(adl.Lt,
			adl.Dot(adl.V(lv), tg.attrName(li, false)),
			adl.Dot(adl.V(rv), tg.attrName(ri, false))))
	}
	// Occasionally a single-relation filter conjunct, exercising pushdown.
	if tg.rng.Intn(4) == 0 {
		side, idx := lv, lIdx
		if tg.rng.Intn(2) == 0 {
			side, idx = rv, rIdx
		}
		on = append(on, adl.CmpE(adl.Le,
			adl.Dot(adl.V(side), tg.attrName(idx[tg.rng.Intn(len(idx))], false)),
			adl.CInt(int64(tg.rng.Intn(20)))))
	}
	return adl.JoinE(l, lv, rv, adl.AndE(on...), r), append(lIdx, rIdx...)
}

func TestDifferentialReorderedEquivalence(t *testing.T) {
	engaged := 0
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		nt := 3 + rng.Intn(2)
		db, stats, _ := randRelations(rng, nt)
		leaves := rng.Perm(nt)
		tg := &treeGen{rng: rng}
		expr, _ := tg.build(leaves)

		ref := collect(t, Compile(expr), db)

		arms := map[string]Config{
			"rewriter-order": {Statistics: stats, NoReorder: true},
			"reordered":      {Statistics: stats},
			"reordered-par":  {Statistics: stats, Parallelism: 3},
			"greedy":         {Statistics: stats, MaxDPRelations: 2},
		}
		for name, cfg := range arms {
			pl := cfg.Plan(expr)
			got := collect(t, pl.Root, db)
			if !value.Equal(got, ref) {
				t.Fatalf("seed %d arm %s diverges from rule-based reference:\nquery: %s\nplan:\n%s\n got  %v\n want %v",
					seed, name, expr, pl.Explain(), got, ref)
			}
			if name == "reordered" {
				if e, ok := pl.Estimate(pl.Root); ok && strings.Contains(e.Note, "order:") {
					engaged++
				}
			}
		}
	}
	// The generator must actually exercise the enumerator, not just its
	// fallbacks.
	if engaged < 10 {
		t.Fatalf("enumeration engaged on only %d/25 seeds", engaged)
	}
}
