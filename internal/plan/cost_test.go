package plan

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/value"
)

// fakeStatistics is a hand-built Statistics feed for planner tests.
type fakeStatistics struct {
	rows map[string]int
	ndv  map[string]int // keyed "EXTENT.attr"
	avg  map[string]float64
	idx  map[string]string           // keyed "EXTENT.attr" → "hash"/"ordered"
	hist map[string]*stats.Histogram // keyed "EXTENT.attr"
}

// Attributes derives the attribute list from the ndv/avg keys, mirroring how
// storage.DBStats reports collected attributes.
func (f fakeStatistics) Attributes(extent string) []string {
	var attrs []string
	seen := map[string]bool{}
	add := func(key string) {
		if rest, ok := strings.CutPrefix(key, extent+"."); ok && !seen[rest] {
			seen[rest] = true
			attrs = append(attrs, rest)
		}
	}
	for k := range f.ndv {
		add(k)
	}
	for k := range f.avg {
		add(k)
	}
	sort.Strings(attrs)
	return attrs
}

func (f fakeStatistics) RowCount(extent string) int {
	if n, ok := f.rows[extent]; ok {
		return n
	}
	return -1
}
func (f fakeStatistics) DistinctValues(extent, attr string) int {
	return f.ndv[extent+"."+attr]
}
func (f fakeStatistics) AvgSetSize(extent, attr string) float64 {
	return f.avg[extent+"."+attr]
}
func (f fakeStatistics) IndexKind(extent, attr string) string {
	return f.idx[extent+"."+attr]
}
func (f fakeStatistics) Histogram(extent, attr string) *stats.Histogram {
	return f.hist[extent+"."+attr]
}

func equiJoin(kind adl.JoinKind) *adl.Join {
	j := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	j.Kind = kind
	if kind == adl.NestJ {
		j.As = "g"
	}
	return j
}

// TestCostBasedPicksParallelForLargeJoin: with collected statistics the
// optimizer prices the partitioned hash join below the serial one for large
// inputs — no size threshold involved.
func TestCostBasedPicksParallelForLargeJoin(t *testing.T) {
	stats := fakeStatistics{rows: map[string]int{"X": 50000, "Y": 50000}}
	cfg := Config{Statistics: stats, Parallelism: 4}
	op := cfg.Compile(equiJoin(adl.Inner))
	if _, ok := op.(*exec.PartitionedHashJoin); !ok {
		t.Fatalf("large equi join should cost out to PartitionedHashJoin, got %T", op)
	}
	small := fakeStatistics{rows: map[string]int{"X": 50, "Y": 50}}
	op2 := Config{Statistics: small, Parallelism: 4}.Compile(equiJoin(adl.Inner))
	if _, ok := op2.(*exec.PartitionedHashJoin); ok {
		t.Fatalf("small equi join should not go parallel:\n%s", Explain(op2))
	}
}

// TestCostBasedSwapsBuildSide: an inner equi-join with a small left and a
// large right operand builds the hash table on the smaller (left) side by
// swapping the operands — a plan the rule-based planner never produces.
func TestCostBasedSwapsBuildSide(t *testing.T) {
	stats := fakeStatistics{rows: map[string]int{"X": 50, "Y": 2000}}
	pl := Config{Statistics: stats, Parallelism: 4}.Plan(equiJoin(adl.Inner))
	hj, ok := pl.Root.(*exec.HashJoin)
	if !ok {
		t.Fatalf("expected serial HashJoin, got %T:\n%s", pl.Root, pl.Explain())
	}
	// Swapped: the (large) Y scan is now the probe (left) child.
	if scan, ok := hj.L.(*exec.Scan); !ok || scan.Table != "Y" {
		t.Errorf("build side not swapped; probe child is %v", hj.L)
	}
	e, ok := pl.Estimate(pl.Root)
	if !ok || e.Note != "build side swapped" {
		t.Errorf("estimate note = %+v, want build side swapped", e)
	}
	if !strings.Contains(pl.Explain(), "build side swapped") {
		t.Errorf("Explain does not show the swap:\n%s", pl.Explain())
	}
}

// TestCostBasedNeverSwapsAsymmetricKinds: semi/anti/nestjoin results depend
// on operand roles, so the swap candidates must not apply.
func TestCostBasedNeverSwapsAsymmetricKinds(t *testing.T) {
	stats := fakeStatistics{rows: map[string]int{"X": 50, "Y": 2000}}
	for _, kind := range []adl.JoinKind{adl.Semi, adl.Anti, adl.NestJ} {
		op := Config{Statistics: stats, Parallelism: 4}.Compile(equiJoin(kind))
		var probe exec.Operator
		switch o := op.(type) {
		case *exec.HashJoin:
			probe = o.L
		case *exec.SortMergeJoin:
			probe = o.L
		case *exec.PartitionedHashJoin:
			probe = o.L
		default:
			t.Fatalf("kind %v: unexpected operator %T", kind, op)
		}
		if scan, ok := probe.(*exec.Scan); !ok || scan.Table != "X" {
			t.Errorf("kind %v: left operand swapped to %v", kind, probe)
		}
	}
}

// TestCostBasedSwapCorrectness: the swapped inner hash join returns the same
// result set as the default orientation (tuple equality ignores attribute
// order).
func TestCostBasedSwapCorrectness(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 40, Parts: 10, Fanout: 2,
		Deliveries: 400, Seed: 7})
	j := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	defaultOp := Compile(j)
	if hj, ok := defaultOp.(*exec.HashJoin); !ok {
		t.Fatalf("rule-based plan should be HashJoin, got %T", defaultOp)
	} else if scan, ok := hj.L.(*exec.Scan); !ok || scan.Table != "SUPPLIER" {
		t.Fatalf("rule-based plan unexpectedly swapped")
	}

	stats := st.Analyze()
	costedPl := Config{Statistics: stats, Parallelism: 2}.Plan(j)
	hj, ok := costedPl.Root.(*exec.HashJoin)
	if !ok {
		t.Fatalf("cost-based plan is %T:\n%s", costedPl.Root, costedPl.Explain())
	}
	if scan, ok := hj.L.(*exec.Scan); !ok || scan.Table != "DELIVERY" {
		t.Fatalf("cost-based plan should swap to build on SUPPLIER:\n%s", costedPl.Explain())
	}

	want, err := exec.Collect(defaultOp, &exec.Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(costedPl.Root, &exec.Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("swapped join diverges:\n got  %v\n want %v", got, want)
	}
}

// TestCostBasedResidualSurvivesSwap: a swapped inner join re-binds the
// residual predicate's variables to the exchanged operand roles.
func TestCostBasedResidualSurvivesSwap(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 10, Fanout: 2,
		Deliveries: 300, Seed: 11})
	on := adl.AndE(
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("d"), "date"), adl.C(value.Date(940110))))
	j := adl.JoinE(adl.T("SUPPLIER"), "s", "d", on, adl.T("DELIVERY"))

	want, err := eval.EvalSet(j, nil, st)
	if err != nil {
		t.Fatal(err)
	}
	pl := Config{Statistics: st.Analyze(), Parallelism: 2}.Plan(j)
	hj, ok := pl.Root.(*exec.HashJoin)
	if !ok || hj.Residual == nil {
		t.Fatalf("expected HashJoin with residual, got %T:\n%s", pl.Root, pl.Explain())
	}
	got, err := exec.Collect(pl.Root, &exec.Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("residual mishandled:\n got  %v\n want %v", got, want)
	}
}

// TestCostBasedMembershipShape: the membership predicate still plans the
// set-probe join under the cost model, now with an annotation.
func TestCostBasedMembershipShape(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 40, Seed: 5})
	j := adl.SemiJoin(adl.T("SUPPLIER"), "s", "p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.T("PART"))
	pl := Config{Statistics: st.Analyze()}.Plan(j)
	if _, ok := pl.Root.(*exec.SetProbeJoin); !ok {
		t.Fatalf("membership shape should plan SetProbeJoin, got %T", pl.Root)
	}
	e, ok := pl.Estimate(pl.Root)
	if !ok || e.Rows <= 0 || e.Cost <= 0 {
		t.Errorf("set-probe join not annotated: %+v", e)
	}
}

// TestPlanExplainAnnotations: with statistics every costed node renders rows
// and cost; without, the rendering is annotation-free and identical to the
// legacy Explain.
func TestPlanExplainAnnotations(t *testing.T) {
	stats := fakeStatistics{rows: map[string]int{"X": 100, "Y": 100},
		ndv: map[string]int{"X.a": 50, "Y.d": 50}}
	j := equiJoin(adl.Inner)
	costed := Config{Statistics: stats}.Plan(j)
	out := costed.Explain()
	for _, want := range []string{"rows≈", "cost≈", "Scan(X)", "Scan(Y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotated Explain missing %q:\n%s", want, out)
		}
	}
	bare := Config{}.Plan(j)
	if s := bare.Explain(); strings.Contains(s, "rows≈") {
		t.Errorf("un-costed plan should have no annotations:\n%s", s)
	}
	if got, want := bare.Explain(), Explain(bare.Root); got != want {
		t.Errorf("Plan.Explain without stats diverges from Explain:\n%s\nvs\n%s", got, want)
	}
}

// TestCostBasedUsesNDVForJoinEstimates: distinct-value counts shrink the
// estimated join output.
func TestCostBasedUsesNDVForJoinEstimates(t *testing.T) {
	manyDup := fakeStatistics{rows: map[string]int{"X": 1000, "Y": 1000},
		ndv: map[string]int{"X.a": 10, "Y.d": 10}}
	unique := fakeStatistics{rows: map[string]int{"X": 1000, "Y": 1000},
		ndv: map[string]int{"X.a": 1000, "Y.d": 1000}}
	plDup := Config{Statistics: manyDup}.Plan(equiJoin(adl.Inner))
	plUniq := Config{Statistics: unique}.Plan(equiJoin(adl.Inner))
	eDup, ok1 := plDup.Estimate(plDup.Root)
	eUniq, ok2 := plUniq.Estimate(plUniq.Root)
	if !ok1 || !ok2 {
		t.Fatal("join estimates missing")
	}
	if eDup.Rows != 100000 {
		t.Errorf("10-NDV join estimate = %d rows, want 100000", eDup.Rows)
	}
	if eUniq.Rows != 1000 {
		t.Errorf("unique-key join estimate = %d rows, want 1000", eUniq.Rows)
	}
}

// TestCostBasedFallsBackWithoutRowCounts: unknown extents keep the legacy
// rule-based plan and produce no annotations.
func TestCostBasedFallsBackWithoutRowCounts(t *testing.T) {
	stats := fakeStatistics{rows: map[string]int{"X": 100}} // Y unknown
	pl := Config{Statistics: stats, Parallelism: 4}.Plan(equiJoin(adl.Inner))
	if _, ok := pl.Root.(*exec.HashJoin); !ok {
		t.Fatalf("unknown cardinality should fall back to rule-based HashJoin, got %T", pl.Root)
	}
	if _, ok := pl.Estimate(pl.Root); ok {
		t.Errorf("fallback plan should not be annotated")
	}
}

// TestCostBasedParallelFilter: σ over a large extent goes to the worker pool
// under the cost model, σ over a small one stays serial.
func TestCostBasedParallelFilter(t *testing.T) {
	pred := adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.C(value.Int(3)))
	big := Config{Statistics: fakeStatistics{rows: map[string]int{"X": 50000}}, Parallelism: 8}
	if _, ok := big.Compile(adl.Sel("x", pred, adl.T("X"))).(*exec.ParallelFilter); !ok {
		t.Errorf("large σ should cost out to ParallelFilter")
	}
	small := Config{Statistics: fakeStatistics{rows: map[string]int{"X": 100}}, Parallelism: 8}
	if _, ok := small.Compile(adl.Sel("x", pred, adl.T("X"))).(*exec.Filter); !ok {
		t.Errorf("small σ should stay serial")
	}
}

// TestSelectivityBoundToIterationVariable: the 1/NDV equality rule must only
// fire for attributes read off the σ's own iteration variable. The old code
// matched a field off *any* variable, so a correlated predicate x.a = y.b
// (y free) looked up DistinctValues(X, "b") — the wrong extent's statistics
// whenever an attribute name collides across extents.
func TestSelectivityBoundToIterationVariable(t *testing.T) {
	stats := fakeStatistics{
		rows: map[string]int{"X": 30000},
		// X has an attribute named "b" (NDV 100) — the name collision that
		// used to poison the estimate. X.a is uncollected.
		ndv: map[string]int{"X.b": 100},
	}
	cfg := Config{Statistics: stats}

	// Correlated equality over a foreign variable: the default guess, not
	// 1/NDV of the colliding local attribute (which estimated 300 rows).
	corr := adl.Sel("x",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "b")), adl.T("X"))
	pl := cfg.Plan(corr)
	est, ok := pl.Estimate(pl.Root)
	if !ok {
		t.Fatal("σ over collected extent must be annotated")
	}
	if want := int64(10000); est.Rows != want { // 30000 * 1/3
		t.Errorf("correlated σ estimate = %d rows, want %d (default guess)", est.Rows, want)
	}

	// The rule still fires for the iteration variable's own attribute.
	local := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "b"), adl.CInt(4)), adl.T("X"))
	pl = cfg.Plan(local)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 300 { // 30000 / 100
		t.Errorf("local σ estimate = %d rows, want 300 (1/NDV)", est.Rows)
	}
	// Subscript form binds the same way.
	sub := adl.Sel("x", adl.EqE(adl.SubT(adl.V("x"), "b"), adl.CInt(4)), adl.T("X"))
	pl = cfg.Plan(sub)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 300 {
		t.Errorf("subscript σ estimate = %d rows, want 300 (1/NDV)", est.Rows)
	}
}

// TestUnknownExtentSizeIsNotEmpty: DBStats.Size reports -1 for extents that
// were never analyzed, sending the threshold fallback down its no-stats
// (serial) path. The old 0 made an unknown extent look empty, and a join
// pairing one huge analyzed extent with an unknown one crossed the parallel
// threshold on fabricated numbers.
func TestUnknownExtentSizeIsNotEmpty(t *testing.T) {
	stats := &storage.DBStats{Tables: map[string]storage.TableStats{
		"X": {Rows: 100000},
	}}
	if got := stats.Size("Y"); got != -1 {
		t.Fatalf("Size of unanalyzed extent = %d, want -1", got)
	}
	// X analyzed huge, Y never analyzed: the threshold fallback must stay
	// serial instead of planning the parallel variant from a made-up zero.
	pl := Config{Stats: stats, Parallelism: 4}.Plan(equiJoin(adl.Inner))
	if _, ok := pl.Root.(*exec.HashJoin); !ok {
		t.Fatalf("join with an unknown extent should stay a serial HashJoin, got %T", pl.Root)
	}
}
