package plan

import (
	"math"
	"testing"

	"repro/internal/adl"
	"repro/internal/stats"
	"repro/internal/value"
)

// histOf builds an equi-depth histogram from int values for estimator tests.
func histOf(vals ...int64) *stats.Histogram {
	vs := make([]value.Value, len(vals))
	for i, v := range vals {
		vs[i] = value.Int(v)
	}
	return stats.NewEquiDepth(vs, 8)
}

// uniformHist builds n values uniform over [0, dom).
func uniformHist(n, dom int) *stats.Histogram {
	vs := make([]value.Value, n)
	for i := range vs {
		vs[i] = value.Int(int64(i % dom))
	}
	return stats.NewEquiDepth(vs, 16)
}

// TestCombineConjNeverExceedsWeakestConjunct is the regression test for the
// old ×3 damping factor in the And case: sel(a)·sel(b)·3 could exceed
// min(sel(a), sel(b)) — e.g. 0.5·0.5·3 = 0.75 — claiming a conjunction
// keeps more rows than its most selective conjunct alone. The exponential
// backoff combinator is bounded by the weakest conjunct by construction.
func TestCombineConjNeverExceedsWeakestConjunct(t *testing.T) {
	cases := [][]float64{
		{0.5, 0.5},           // the old ×3 factor estimated 0.75 here
		{1.0 / 3, 1.0 / 3},   // the default-guess pair the ×3 was tuned for
		{0.9, 0.1, 0.5},      // mixed magnitudes
		{1, 1, 1},            // no-op conjuncts
		{0.001, 0.9, 0.9, 1}, // one sharp conjunct dominates
		{0.25},               // single conjunct is itself
		{0, 0.5},             // impossible conjunct forces zero
		{defaultSelectivity, defaultSelectivity, defaultSelectivity},
	}
	for _, sels := range cases {
		got := combineConj(sels)
		weakest := 1.0
		for _, s := range sels {
			weakest = math.Min(weakest, s)
		}
		if got > weakest+1e-12 {
			t.Errorf("combineConj(%v) = %v exceeds weakest conjunct %v", sels, got, weakest)
		}
		// And it never collapses below the full-independence product — the
		// backoff is a damping, not an extra penalty.
		product := 1.0
		for _, s := range sels {
			product *= s
		}
		if got < product-1e-12 {
			t.Errorf("combineConj(%v) = %v below independence product %v", sels, got, product)
		}
	}
	if got := combineConj(nil); got != 1 {
		t.Errorf("combineConj(nil) = %v, want 1", got)
	}
	if got := combineConj([]float64{0.25}); got != 0.25 {
		t.Errorf("combineConj single = %v, want identity", got)
	}
}

// TestSelectivityConjunctionRegression drives the same guarantee through the
// planner: a σ with several conjuncts must never estimate more rows than the
// same σ with only its most selective conjunct.
func TestSelectivityConjunctionRegression(t *testing.T) {
	st := fakeStatistics{
		rows: map[string]int{"X": 30000},
		ndv:  map[string]int{"X.a": 100, "X.b": 10},
	}
	cfg := Config{Statistics: st}
	sharp := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(4)), adl.T("X"))
	conj := adl.Sel("x", adl.AndE(
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(4)),
		adl.EqE(adl.Dot(adl.V("x"), "b"), adl.CInt(1)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "v"), adl.CInt(9))), adl.T("X"))
	sharpPl, conjPl := cfg.Plan(sharp), cfg.Plan(conj)
	sharpEst, ok1 := sharpPl.Estimate(sharpPl.Root)
	conjEst, ok2 := conjPl.Estimate(conjPl.Root)
	if !ok1 || !ok2 {
		t.Fatal("σ plans not annotated")
	}
	if conjEst.Rows > sharpEst.Rows {
		t.Errorf("conjunction estimates %d rows, more than its weakest conjunct's %d",
			conjEst.Rows, sharpEst.Rows)
	}
}

// TestEstimatorHistogramEquality: with a histogram, an equality against a
// literal prices by bucket density — exact for a heavy hitter — instead of
// the uniform 1/NDV rule; Config.NoHistograms restores the old path.
func TestEstimatorHistogramEquality(t *testing.T) {
	// 1000 rows: value 7 in 700 of them, 30 other values sharing the rest.
	vals := make([]int64, 0, 1000)
	for i := 0; i < 700; i++ {
		vals = append(vals, 7)
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, int64(100+i%30))
	}
	st := fakeStatistics{
		rows: map[string]int{"X": 1000},
		ndv:  map[string]int{"X.a": 31},
		hist: map[string]*stats.Histogram{"X.a": histOf(vals...)},
	}
	hot := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(7)), adl.T("X"))

	pl := Config{Statistics: st}.Plan(hot)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 700 {
		t.Errorf("histogram equality estimate = %d rows, want 700 (exact)", est.Rows)
	}
	pl = Config{Statistics: st, NoHistograms: true}.Plan(hot)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 32 { // 1000/31, rounded
		t.Errorf("NoHistograms equality estimate = %d rows, want 32 (1/NDV)", est.Rows)
	}
	// A value the histogram proves absent estimates zero.
	cold := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(9999)), adl.T("X"))
	pl = Config{Statistics: st}.Plan(cold)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 0 {
		t.Errorf("absent-value estimate = %d rows, want 0", est.Rows)
	}
	// A non-literal comparison cannot consult the histogram: NDV rule.
	corr := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "b")), adl.T("X"))
	pl = Config{Statistics: st}.Plan(corr)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 32 {
		t.Errorf("non-literal equality estimate = %d rows, want 32 (1/NDV)", est.Rows)
	}
}

// TestEstimatorHistogramRange: one- and two-sided ranges interpolate bucket
// fractions instead of the flat defaultSelectivity guess.
func TestEstimatorHistogramRange(t *testing.T) {
	st := fakeStatistics{
		rows: map[string]int{"X": 1000},
		hist: map[string]*stats.Histogram{"X.a": uniformHist(1000, 100)},
	}
	oneSided := adl.Sel("x", adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(10)), adl.T("X"))
	pl := Config{Statistics: st}.Plan(oneSided)
	est, _ := pl.Estimate(pl.Root)
	if est.Rows < 50 || est.Rows > 150 {
		t.Errorf("one-sided range estimate = %d rows, want ≈100", est.Rows)
	}
	// The mirrored orientation (const < x.a) estimates the complement.
	mirrored := adl.Sel("x", adl.CmpE(adl.Lt, adl.CInt(89), adl.Dot(adl.V("x"), "a")), adl.T("X"))
	pl = Config{Statistics: st}.Plan(mirrored)
	if est, _ := pl.Estimate(pl.Root); est.Rows < 50 || est.Rows > 150 {
		t.Errorf("mirrored range estimate = %d rows, want ≈100", est.Rows)
	}
	twoSided := adl.Sel("x", adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("x"), "a"), adl.CInt(40)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(50))), adl.T("X"))
	pl = Config{Statistics: st}.Plan(twoSided)
	if est, _ := pl.Estimate(pl.Root); est.Rows < 30 || est.Rows > 170 {
		t.Errorf("two-sided range estimate = %d rows, want ≈100", est.Rows)
	}
	// Without the histogram, the default guess returns.
	pl = Config{Statistics: st, NoHistograms: true}.Plan(oneSided)
	if est, _ := pl.Estimate(pl.Root); est.Rows != 333 {
		t.Errorf("NoHistograms range estimate = %d rows, want 333", est.Rows)
	}
}

// TestEstimatorJoinHistogramIntersection: join-key overlap prices by
// histogram intersection — disjoint key domains estimate (near) zero output
// where the min-NDV containment rule estimates |X|·|Y|/NDV regardless.
func TestEstimatorJoinHistogramIntersection(t *testing.T) {
	disjoint := make([]int64, 0, 1000)
	for i := 0; i < 1000; i++ {
		disjoint = append(disjoint, int64(5000+i%100))
	}
	overlapping := make([]int64, 0, 1000)
	for i := 0; i < 1000; i++ {
		overlapping = append(overlapping, int64(i%100))
	}
	mk := func(yvals []int64) fakeStatistics {
		return fakeStatistics{
			rows: map[string]int{"X": 1000, "Y": 1000},
			ndv:  map[string]int{"X.a": 100, "Y.d": 100},
			hist: map[string]*stats.Histogram{
				"X.a": histOf(overlapping...),
				"Y.d": histOf(yvals...),
			},
		}
	}
	j := equiJoin(adl.Inner)

	pl := Config{Statistics: mk(overlapping)}.Plan(j)
	est, _ := pl.Estimate(pl.Root)
	if est.Rows < 5000 || est.Rows > 20000 {
		t.Errorf("overlapping-domain join estimate = %d rows, want ≈10000", est.Rows)
	}

	pl = Config{Statistics: mk(disjoint)}.Plan(j)
	est, _ = pl.Estimate(pl.Root)
	if est.Rows > 100 {
		t.Errorf("disjoint-domain join estimate = %d rows, want ≈0", est.Rows)
	}
	// The NDV containment rule cannot tell the two apart.
	pl = Config{Statistics: mk(disjoint), NoHistograms: true}.Plan(j)
	est, _ = pl.Estimate(pl.Root)
	if est.Rows != 10000 {
		t.Errorf("NoHistograms disjoint join estimate = %d rows, want 10000 (containment)", est.Rows)
	}
}
