// Phase 2 of the two-phase optimizer: cost-based join-order enumeration over
// the join graph of joingraph.go. Up to Config.MaxDPRelations the enumerator
// runs DPsize — dynamic programming over connected subgraphs, bushy trees
// included — pricing every candidate split with the same cost functions the
// physical operator selection uses and the collected NDVs driving the
// intermediate cardinalities. Above the cap it falls back to a greedy
// left-deep heuristic. The winning order is then rebuilt as adl.Join nodes
// (adl.ComposeConjunct re-binds the decomposed conjuncts) and every edge is
// handed to the existing physical operator selection — hash/sort-merge/
// nested-loop/partitioned, build-side swap included.
package plan

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/adl"
	"repro/internal/exec"
)

// dpEntry is one memoized subproblem: the best plan found for a relation
// subset, with the split that achieved it.
type dpEntry struct {
	mask uint64
	rel  int // leaf index when the subset is a singleton, else -1
	l, r *dpEntry
	rows float64 // estimated output cardinality of the subset
	cost float64 // estimated cumulative cost of the best plan
}

// maxDP resolves the effective DPsize relation cap.
func (c Config) maxDP() int {
	if c.MaxDPRelations > 0 {
		return c.MaxDPRelations
	}
	return DefaultMaxDPRelations
}

// enumerateJoinOrder picks the cheapest join order for the graph, or nil
// when no plan exists (cannot happen once cross products are admitted, but
// kept defensive).
func (p *planner) enumerateJoinOrder(g *joinGraph) *dpEntry {
	if len(g.rels) > p.cfg.maxDP() {
		return p.greedyLeftDeep(g)
	}
	// Connected splits only; a disconnected graph needs cross products, which
	// the second pass admits everywhere (they still price high).
	if e := p.dpSize(g, false); e != nil {
		return e
	}
	return p.dpSize(g, true)
}

// dpSize runs the DPsize enumeration. With allowCross false only connected
// splits are considered.
func (p *planner) dpSize(g *joinGraph, allowCross bool) *dpEntry {
	n := len(g.rels)
	full := uint64(1)<<n - 1
	best := make(map[uint64]*dpEntry, 1<<n)
	for i := range g.rels {
		best[1<<i] = &dpEntry{mask: 1 << i, rel: i,
			rows: g.rels[i].est.rows, cost: g.rels[i].est.cost}
	}
	for size := 2; size <= n; size++ {
		for mask := uint64(1); mask <= full; mask++ {
			if bits.OnesCount64(mask) != size {
				continue
			}
			lowbit := mask & -mask
			// Enumerate unordered splits: s1 always keeps the lowest bit.
			for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
				if s1&lowbit == 0 {
					continue
				}
				s2 := mask ^ s1
				e1, ok1 := best[s1]
				e2, ok2 := best[s2]
				if !ok1 || !ok2 {
					continue
				}
				if !allowCross && !g.connected(s1, s2) {
					continue
				}
				own := p.joinOwnCost(g, s1, s2)
				cost := e1.cost + e2.cost + own
				if cur, seen := best[mask]; !seen || cost < cur.cost {
					best[mask] = &dpEntry{mask: mask, rel: -1, l: e1, r: e2,
						rows: g.rows(mask), cost: cost}
				}
			}
		}
	}
	return best[full]
}

// greedyLeftDeep builds a left-deep order heuristically: start from the
// smallest relation, then repeatedly append the relation that joins the
// accumulated prefix most cheaply, preferring connected relations so cross
// products are a last resort.
func (p *planner) greedyLeftDeep(g *joinGraph) *dpEntry {
	n := len(g.rels)
	start := 0
	for i := 1; i < n; i++ {
		if g.rels[i].est.rows < g.rels[start].est.rows {
			start = i
		}
	}
	cur := &dpEntry{mask: 1 << start, rel: start,
		rows: g.rels[start].est.rows, cost: g.rels[start].est.cost}
	used := cur.mask
	for bits.OnesCount64(used) < n {
		bestIdx, bestCost, bestConnected := -1, math.Inf(1), false
		for i := 0; i < n; i++ {
			b := uint64(1) << i
			if used&b != 0 {
				continue
			}
			connected := g.connected(used, b)
			if bestConnected && !connected {
				continue
			}
			// finite() keeps saturated prefixes comparable: with every
			// candidate at +Inf the strict < would otherwise never pick one.
			cost := finite(g.rels[i].est.cost + p.joinOwnCost(g, used, b))
			if bestIdx < 0 || (connected && !bestConnected) || cost < bestCost {
				bestIdx, bestCost, bestConnected = i, cost, connected
			}
		}
		leaf := &dpEntry{mask: 1 << bestIdx, rel: bestIdx,
			rows: g.rels[bestIdx].est.rows, cost: g.rels[bestIdx].est.cost}
		used |= leaf.mask
		cur = &dpEntry{mask: used, rel: -1, l: cur, r: leaf,
			rows: g.rows(used), cost: cur.cost + bestCost}
	}
	return cur
}

// joinOwnCost prices joining two disjoint subsets with the cheapest
// applicable physical strategy — the same cost functions chooseEquiJoin
// ranks, orientation (build-side) freedom included, so the order search and
// the physical selection agree on what an edge costs.
func (p *planner) joinOwnCost(g *joinGraph, s1, s2 uint64) float64 {
	l, r := g.rows(s1), g.rows(s2)
	out := g.rows(s1 | s2)
	span := g.spanningConjs(s1, s2)

	nKeys, nResid := 0, 0
	var keySels []float64
	for _, ci := range span {
		c := &g.conjs[ci]
		if c.eq && oppositeSides(c, s1, s2) {
			nKeys++
			keySels = append(keySels, c.sel)
		} else {
			nResid++
		}
	}
	if nKeys == 0 {
		return costNL(l, r, out)
	}
	matches := finite(l * r * combineConj(keySels))
	residMatches := 0.0
	if nResid > 0 {
		residMatches = matches
	}
	par := exec.Parallelism(p.cfg.Parallelism)
	own := math.Min(costHash(r, l, out, residMatches), costHash(l, r, out, residMatches))
	own = math.Min(own, costPartitionedHash(r, l, out, residMatches, par))
	own = math.Min(own, costPartitionedHash(l, r, out, residMatches, par))
	own = math.Min(own, costNL(l, r, out))
	if nResid == 0 {
		own = math.Min(own, costSortMerge(l, r, out))
	}
	if !p.cfg.NoIndexes {
		// Index-nested-loop candidates, so the order search sees the same
		// access paths physical selection will admit: when one side of the
		// split is a single bare-scanned relation with an index on its key
		// attribute, the other side can probe it per row. Pricing must agree
		// with chooseEquiJoin or the DP would pick orders whose edges then
		// compile to something else entirely.
		idxProbe := func(rel int, key adl.Expr, outerRows, sel float64) (float64, bool) {
			gr := &g.rels[rel]
			scan, isScan := gr.op.(*exec.Scan)
			if !isScan {
				return 0, false
			}
			attr := attrOf(key, gr.leafVar)
			if attr == "" || p.cfg.Statistics.IndexKind(scan.Table, attr) == "" {
				return 0, false
			}
			matches := finite(outerRows * gr.est.rows * sel)
			probeResid := 0.0
			if len(span) > 1 {
				probeResid = matches
			}
			// The DP adds both subtrees' costs to whatever this returns, but
			// an index probe never executes the inner leaf's scan — subtract
			// it so the DP's total matches what chooseEquiJoin will record.
			return costIndexNL(outerRows, matches, probeResid, out) - gr.est.cost, true
		}
		for _, ci := range span {
			c := &g.conjs[ci]
			if !c.eq {
				continue
			}
			// Either endpoint may be the probed inner: it must sit alone on
			// its side of the split, with the conjunct's other endpoint on
			// the outer side (so the probe key is computable there).
			for _, o := range [...]struct {
				inner, outer int
				key          adl.Expr
			}{
				{c.lrel, c.rrel, c.lkey},
				{c.rrel, c.lrel, c.rkey},
			} {
				ib, ob := uint64(1)<<o.inner, uint64(1)<<o.outer
				if s1 == ib && s2&ob != 0 {
					if v, ok := idxProbe(o.inner, o.key, r, c.sel); ok {
						own = math.Min(own, v)
					}
				}
				if s2 == ib && s1&ob != 0 {
					if v, ok := idxProbe(o.inner, o.key, l, c.sel); ok {
						own = math.Min(own, v)
					}
				}
			}
		}
	}
	return own
}

// oppositeSides reports whether an equi edge's two relations fall on
// opposite sides of the split (making it usable as a hash/sort key).
func oppositeSides(c *graphConj, s1, s2 uint64) bool {
	lb, rb := uint64(1)<<c.lrel, uint64(1)<<c.rrel
	return (lb&s1 != 0 && rb&s2 != 0) || (lb&s2 != 0 && rb&s1 != 0)
}

// buildJoinOrder rebuilds the chosen order as physical operators and
// annotates the root with how the order was found.
func (p *planner) buildJoinOrder(g *joinGraph, e *dpEntry) (exec.Operator, nodeEst) {
	op, est, _, _ := p.buildDPNode(g, e)
	how := fmt.Sprintf("order: dp over %d relations", len(g.rels))
	if len(g.rels) > p.cfg.maxDP() {
		how = fmt.Sprintf("order: greedy left-deep over %d relations", len(g.rels))
	}
	if est.note != "" {
		how = est.note + "; " + how
	}
	est.note = how
	p.record(op, est)
	return op, est
}

// buildDPNode recursively builds one dpEntry. It returns the operator, its
// estimate, the leaf variables covered by the subtree, and the variable the
// subtree's rows are bound to when it appears as a join operand.
func (p *planner) buildDPNode(g *joinGraph, e *dpEntry) (exec.Operator, nodeEst, []string, string) {
	if e.rel >= 0 {
		rel := &g.rels[e.rel]
		return rel.op, rel.est, []string{rel.leafVar}, rel.leafVar
	}
	lop, le, lvars, lv := p.buildDPNode(g, e.l)
	rop, re, rvars, rv := p.buildDPNode(g, e.r)
	if len(lvars) > 1 {
		lv = p.freshJoinVar(g)
	}
	if len(rvars) > 1 {
		rv = p.freshJoinVar(g)
	}

	span := g.spanningConjs(e.l.mask, e.r.mask)
	on := make([]adl.Expr, len(span))
	for i, ci := range span {
		on[i] = adl.ComposeConjunct(g.conjs[ci].expr, lvars, lv, rvars, rv)
	}
	j := &adl.Join{Kind: adl.Inner, LVar: lv, RVar: rv, On: adl.AndE(on...)}
	allVars := append(append([]string{}, lvars...), rvars...)

	cs := conjuncts(j.On)
	lkeys, rkeys, residual := splitEquiKeys(cs, j)
	if len(lkeys) > 0 {
		var res *exec.Scalar
		if len(residual) > 0 {
			s := exec.NewScalar(adl.AndE(residual...), j.LVar, j.RVar)
			res = &s
		}
		op, est := p.chooseEquiJoin(j, lop, rop, le, re, lkeys, rkeys, residual, res, nil)
		return op, est, allVars, ""
	}
	// No usable key: theta (or cross) edge, nested loop.
	nl := &exec.NLJoin{Kind: adl.Inner, L: lop, R: rop, LVar: lv, RVar: rv,
		Pred: exec.NewScalar(j.On, lv, rv)}
	est := nodeEst{rows: e.rows, known: true,
		cost: le.cost + re.cost + costNL(le.rows, re.rows, e.rows)}
	p.record(nl, est)
	return nl, est, allVars, ""
}
