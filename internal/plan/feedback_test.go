package plan

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/rewrite"
	"repro/internal/translate"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act int64
		want     float64
	}{
		{100, 100, 1},
		{0, 0, 1},
		{99, 0, 100}, // overestimate: empty result observed
		{0, 99, 100}, // underestimate: symmetric
		{10, 43, 4},  // (43+1)/(10+1)
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%d, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestInstrumentedExecutionFeedback(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 200, Deliveries: 10, Seed: 7})
	stats := st.Analyze()
	src := `select p.pname from p in PART where p.color = "red"`
	e, _, err := translate.Parse(src, st.Catalog())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))
	p := Config{Statistics: stats, Stats: stats, Parallelism: 1}.Plan(res.Expr)

	if _, ok := p.Feedback(1); ok {
		t.Fatalf("feedback before any execution must report nothing")
	}
	if _, ok := p.Actual(p.Root); ok {
		t.Fatalf("actuals before any execution must report nothing")
	}

	// Two instrumented executions: each mirror is a fresh clone with its own
	// tallies; the last committed run is the plan's current observation.
	var rows int
	for i := 0; i < 2; i++ {
		root, commit := p.Instrumented()
		set, err := exec.Collect(root, &exec.Ctx{DB: st})
		if err != nil {
			t.Fatalf("instrumented exec: %v", err)
		}
		rows = set.Len()
		commit()
	}
	if p.Executions() != 2 {
		t.Fatalf("Executions = %d, want 2", p.Executions())
	}
	act, ok := p.Actual(p.Root)
	if !ok {
		t.Fatalf("no actual for the plan root")
	}
	if act != int64(rows) { // part names are unique, so emitted rows == set size
		t.Fatalf("root actual = %d, want the per-run output %d", act, rows)
	}

	// Instrumentation must not change results.
	plain, err := exec.Collect(exec.CloneTree(p.Root), &exec.Ctx{DB: st})
	if err != nil {
		t.Fatalf("plain exec: %v", err)
	}
	if plain.Len() != rows {
		t.Fatalf("instrumented run returned %d rows, plain run %d", rows, plain.Len())
	}

	// On freshly analyzed, unmutated data the estimates hold: no node may
	// drift past the eviction threshold.
	if d, ok := p.Feedback(1); ok && d.Q > DefaultFeedbackThreshold {
		t.Fatalf("estimates drifted on unmutated data: est %d, actual %d, q %.1f",
			d.Est.Rows, d.Actual, d.Q)
	}

	// Explain surfaces observed rows next to the estimates.
	if out := p.Explain(); !strings.Contains(out, "actual=") {
		t.Fatalf("Explain after instrumented executions lacks actuals:\n%s", out)
	}
}
