package plan

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/value"
)

// lookupStats models a small filtered side and a large indexed inner side.
func lookupStats() fakeStatistics {
	return fakeStatistics{
		rows: map[string]int{"X": 2000, "Y": 100000},
		ndv:  map[string]int{"X.a": 1000, "X.v": 20, "Y.d": 50000},
		idx:  map[string]string{"X.a": "ordered", "Y.d": "hash"},
	}
}

func TestIndexScanChosenForSelectiveEquality(t *testing.T) {
	stats := lookupStats()
	sel := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(7)), adl.T("X"))

	pl := Config{Statistics: stats}.Plan(sel)
	idx, ok := pl.Root.(*exec.IndexScan)
	if !ok {
		t.Fatalf("selective indexed equality should plan IndexScan, got:\n%s", pl.Explain())
	}
	if idx.Table != "X" || idx.Attr != "a" || idx.Eq == nil {
		t.Fatalf("IndexScan mis-built: %+v", idx)
	}
	if est, ok := pl.Estimate(pl.Root); !ok || est.Rows != 2 {
		t.Errorf("IndexScan estimate = %+v, want rows 2 (2000/1000)", est)
	}

	// The same σ with indexes disabled stays a filtered scan.
	op := Config{Statistics: stats, NoIndexes: true}.Compile(sel)
	if _, ok := op.(*exec.IndexScan); ok {
		t.Fatal("NoIndexes must suppress the index access path")
	}
	// And without an index on the attribute, so does planning on v.
	selV := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "v"), adl.CInt(7)), adl.T("X"))
	if op := (Config{Statistics: stats}).Compile(selV); !isFilterish(op) {
		t.Fatalf("unindexed equality should stay a scan+filter, got %T", op)
	}
}

func isFilterish(op exec.Operator) bool {
	switch op.(type) {
	case *exec.Filter, *exec.ParallelFilter:
		return true
	}
	return false
}

func TestIndexScanRangeNeedsOrderedIndex(t *testing.T) {
	stats := lookupStats()
	// x.a has an ordered index: a range σ uses it (constant on either side).
	for _, pred := range []adl.Expr{
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(10)),
		adl.CmpE(adl.Ge, adl.CInt(10), adl.Dot(adl.V("x"), "a")),
	} {
		pl := Config{Statistics: stats}.Plan(adl.Sel("x", pred, adl.T("X")))
		idx, ok := pl.Root.(*exec.IndexScan)
		if !ok {
			t.Fatalf("range over ordered index should plan IndexScan, got:\n%s", pl.Explain())
		}
		if idx.Eq != nil || (idx.Lo == nil && idx.Hi == nil) {
			t.Fatalf("range IndexScan mis-built: %+v", idx)
		}
	}
	// Y.d is hash-indexed: a range σ cannot use it.
	rangeY := adl.Sel("y", adl.CmpE(adl.Lt, adl.Dot(adl.V("y"), "d"), adl.CInt(10)), adl.T("Y"))
	if op := (Config{Statistics: stats}).Compile(rangeY); !isFilterish(op) {
		t.Fatalf("range over hash index should stay a filtered scan, got %T", op)
	}
}

// TestIndexScanMergesTwoSidedRange: a lower and an upper bound on the same
// ordered-indexed attribute merge into one two-sided probe with no residual
// Filter, instead of a half-open probe that fetches and then discards.
func TestIndexScanMergesTwoSidedRange(t *testing.T) {
	stats := lookupStats()
	sel := adl.Sel("x", adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("x"), "a"), adl.CInt(10)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(20))), adl.T("X"))
	pl := Config{Statistics: stats}.Plan(sel)
	idx, ok := pl.Root.(*exec.IndexScan)
	if !ok {
		t.Fatalf("two-sided range should plan a bare IndexScan, got:\n%s", pl.Explain())
	}
	if idx.Lo == nil || !idx.LoIncl || idx.Hi == nil || idx.HiIncl {
		t.Fatalf("bounds mis-merged: %+v", idx)
	}
}

// TestTwoSidedRangeNotPricedAsUnknownPredicate is the regression test for
// the old access-path pricing: a merged two-sided range probe kept the
// one-sided conjunct's rows·defaultSelectivity guess — the same estimate as
// a predicate the model cannot see at all. The estimator now re-prices the
// merged probe: with a histogram the bounds interpolate to the actual
// fraction, and even without one the two bounds must price strictly below
// the flat one-third guess.
func TestTwoSidedRangeNotPricedAsUnknownPredicate(t *testing.T) {
	twoSided := adl.Sel("x", adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("x"), "a"), adl.CInt(40)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(50))), adl.T("X"))

	// Without histograms: strictly below rows·defaultSelectivity.
	noHist := lookupStats()
	pl := Config{Statistics: noHist}.Plan(twoSided)
	idx, ok := pl.Root.(*exec.IndexScan)
	if !ok {
		t.Fatalf("two-sided range should plan a bare IndexScan, got:\n%s", pl.Explain())
	}
	est, ok := pl.Estimate(idx)
	if !ok {
		t.Fatal("IndexScan not annotated")
	}
	flatGuess := 2000 * defaultSelectivity
	if float64(est.Rows) >= flatGuess {
		t.Errorf("merged range priced at %d rows — not below the %.0f unknown-predicate guess",
			est.Rows, flatGuess)
	}

	// With a histogram: the interpolated fraction of the actual bounds.
	// X.a uniform over [0,1000) → [40,50) holds ≈1% of 2000 rows.
	withHist := lookupStats()
	withHist.hist = map[string]*stats.Histogram{"X.a": uniformHist(2000, 1000)}
	pl = Config{Statistics: withHist}.Plan(twoSided)
	idx, ok = pl.Root.(*exec.IndexScan)
	if !ok {
		t.Fatalf("two-sided range should plan a bare IndexScan, got:\n%s", pl.Explain())
	}
	est, _ = pl.Estimate(idx)
	if est.Rows < 5 || est.Rows > 60 {
		t.Errorf("histogram-priced merged range = %d rows, want ≈20 (1%% of 2000)", est.Rows)
	}
}

func TestIndexScanResidualFilter(t *testing.T) {
	stats := lookupStats()
	sel := adl.Sel("x", adl.AndE(
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(7)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "v"), adl.CInt(5))), adl.T("X"))
	pl := Config{Statistics: stats}.Plan(sel)
	f, ok := pl.Root.(*exec.Filter)
	if !ok {
		t.Fatalf("residual conjunct should wrap the IndexScan in a Filter, got:\n%s", pl.Explain())
	}
	if _, ok := f.Child.(*exec.IndexScan); !ok {
		t.Fatalf("Filter child is %T, want IndexScan", f.Child)
	}
}

// TestIndexScanNotUsedForCorrelatedKey: a key with free variables cannot be
// evaluated at Open, so the index path must not fire.
func TestIndexScanNotUsedForCorrelatedKey(t *testing.T) {
	stats := lookupStats()
	sel := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("z"), "b")), adl.T("X"))
	if op := (Config{Statistics: stats}).Compile(sel); !isFilterish(op) {
		t.Fatalf("correlated equality must stay a filtered scan, got %T", op)
	}
}

func TestIndexNLJoinChosenForSelectiveLookup(t *testing.T) {
	stats := lookupStats()
	// σ(x.a = 7)(X) ⋈ Y on x.a = y.d — a selective outer against a large
	// indexed inner: probing Y.d per outer row beats hashing all of Y.
	sel := adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(7)), adl.T("X"))
	j := adl.JoinE(sel, "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))

	pl := Config{Statistics: stats}.Plan(j)
	idx, ok := pl.Root.(*exec.IndexNLJoin)
	if !ok {
		t.Fatalf("selective lookup join should plan IndexNLJoin, got:\n%s", pl.Explain())
	}
	if idx.Table != "Y" || idx.Attr != "d" {
		t.Fatalf("IndexNLJoin probes %s.%s, want Y.d", idx.Table, idx.Attr)
	}
	if est, ok := pl.Estimate(pl.Root); !ok || !strings.Contains(est.Note, "index probe into Y.d") {
		t.Errorf("estimate note = %+v, want index probe note", est)
	}
	if op := (Config{Statistics: stats, NoIndexes: true}).Compile(j); isIndexOp(op) {
		t.Fatal("NoIndexes must suppress the index-nested-loop join")
	}
}

func isIndexOp(op exec.Operator) bool {
	switch op.(type) {
	case *exec.IndexNLJoin, *exec.IndexScan:
		return true
	}
	return false
}

// TestIndexNLJoinSwappedOrientation: the small side may be the right
// operand; inner joins probe the left extent's index with right rows.
func TestIndexNLJoinSwappedOrientation(t *testing.T) {
	stats := fakeStatistics{
		rows: map[string]int{"X": 100000, "Y": 40},
		ndv:  map[string]int{"X.a": 50000, "Y.d": 40},
		idx:  map[string]string{"X.a": "hash"},
	}
	j := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	pl := Config{Statistics: stats}.Plan(j)
	idx, ok := pl.Root.(*exec.IndexNLJoin)
	if !ok {
		t.Fatalf("swapped lookup join should plan IndexNLJoin, got:\n%s", pl.Explain())
	}
	if idx.Table != "X" || idx.Attr != "a" {
		t.Fatalf("IndexNLJoin probes %s.%s, want X.a", idx.Table, idx.Attr)
	}
}

// TestIndexNLJoinNotUsedOverFilteredInner: an index covers the whole
// extent, so a filtered inner side must not be probed through it — the
// probe would resurrect rows the selection removed.
func TestIndexNLJoinNotUsedOverFilteredInner(t *testing.T) {
	stats := fakeStatistics{
		rows: map[string]int{"X": 40, "Y": 100000},
		ndv:  map[string]int{"X.a": 40, "Y.d": 50000, "Y.v": 2},
		idx:  map[string]string{"Y.d": "hash"},
	}
	selY := adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "v"), adl.CInt(1)), adl.T("Y"))
	j := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), selY)
	if op := (Config{Statistics: stats}).Compile(j); isIndexOp(op) {
		t.Fatalf("filtered inner must not be index-probed, got %T", op)
	}
}

// TestIndexedPlanEndToEnd: a real store, ANALYZE with indexes, and the
// chosen index plan returns exactly the no-index plan's result.
func TestIndexedPlanEndToEnd(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 300, Parts: 10, Fanout: 2,
		Deliveries: 3000, Seed: 11})
	if err := st.CreateIndex("SUPPLIER", "sname", storage.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureIndexes("DELIVERY", "supplier"); err != nil {
		t.Fatal(err)
	}
	stats := st.Analyze()
	sel := adl.Sel("s", adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-42")),
		adl.T("SUPPLIER"))
	q := adl.JoinE(sel, "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))

	indexed := Config{Statistics: stats}.Plan(q)
	if _, ok := indexed.Root.(*exec.IndexNLJoin); !ok {
		t.Fatalf("collected statistics with indexes should choose IndexNLJoin, got:\n%s",
			indexed.Explain())
	}
	baseline := Config{Statistics: stats, NoIndexes: true}.Plan(q)
	got := collect(t, indexed.Root, st)
	want := collect(t, baseline.Root, st)
	if !value.Equal(got, want) {
		t.Fatalf("indexed plan diverges: %d vs %d rows", got.Len(), want.Len())
	}
	if got.Len() == 0 {
		t.Fatal("fixture returned no rows; workload degenerate")
	}
}
