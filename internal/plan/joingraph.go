// Phase 1 of the two-phase optimizer: the join-graph IR. A nested chain of
// inner joins fixes the evaluation order the rewriter happened to emit;
// buildJoinGraph decomposes the chain (via adl.DecomposeJoinTree) into an
// n-way join graph — relations are base extents or opaque subplans, edges
// are the equi-key and theta conjuncts connecting two relations, and
// single-relation conjuncts are pushed down as selections on their leaf.
// Phase 2 (enumerate.go) prices join orders over this graph; the chosen
// order is handed back to the existing physical operator selection.
package plan

import (
	"fmt"
	"math/bits"

	"repro/internal/adl"
	"repro/internal/exec"
)

// DefaultMaxDPRelations is the relation count up to which the enumerator
// runs exhaustive DPsize over connected subgraphs; larger graphs fall back
// to the greedy left-deep heuristic. 2^10 subsets keep planning well under a
// millisecond; the exponential cliff beyond that is not worth the marginal
// plans.
const DefaultMaxDPRelations = 10

// maxGraphRels bounds the graph at the subset-bitmask width.
const maxGraphRels = 63

// graphRel is one relation of the join graph: a leaf of the decomposed join
// tree with its single-relation filters folded in, already compiled so the
// enumerator can price against its estimated cardinality.
type graphRel struct {
	leafVar string
	op      exec.Operator
	est     nodeEst
}

// graphConj is one predicate conjunct of the graph, in leaf-variable form.
// Conjuncts referencing exactly two relations are the graph's edges; an
// equi-comparison between single-relation sides additionally carries the key
// expressions that make hash/sort strategies applicable.
type graphConj struct {
	expr adl.Expr
	mask uint64 // referenced relations
	// eq marks a usable equi-key edge: lrel/rrel are the two relations and
	// lkey/rkey the key expressions in terms of their leaf variables.
	eq         bool
	lrel, rrel int
	lkey, rkey adl.Expr
	// sel is the conjunct's estimated selectivity.
	sel float64
}

// joinGraph is the logical IR the enumerator works on.
type joinGraph struct {
	rels  []graphRel
	conjs []graphConj
	// root is the original expression, used to mint fresh intermediate
	// variable names during recomposition.
	root adl.Expr

	rowsMemo map[uint64]float64
}

// isReorderableJoin reports whether e is an inner join the enumerator may
// flatten.
func isReorderableJoin(e adl.Expr) bool {
	j, ok := e.(*adl.Join)
	return ok && adl.Reorderable(j)
}

// leafAttrs resolves the output attribute names of a decomposition leaf from
// collected statistics, through the attribute-preserving wrappers.
func (p *planner) leafAttrs(e adl.Expr) []string {
	switch n := e.(type) {
	case *adl.Table:
		return p.cfg.Statistics.Attributes(n.Name)
	case *adl.Select:
		return p.leafAttrs(n.Src)
	case *adl.Project:
		return n.Attrs
	case *adl.Rename:
		base := p.leafAttrs(n.X)
		if base == nil {
			return nil
		}
		out := make([]string, len(base))
		for i, a := range base {
			if a == n.From {
				a = n.To
			}
			out[i] = a
		}
		return out
	}
	return nil
}

// buildJoinGraph decomposes the inner-join chain rooted at j and classifies
// its conjuncts. It fails (ok == false) when the chain does not decompose,
// has fewer than three relations (nothing to reorder) or more than the
// bitmask width, when a leaf's cardinality is unknown to the cost model, or
// when a conjunct references no relation at all.
func (p *planner) buildJoinGraph(j *adl.Join) (*joinGraph, bool) {
	tree, ok := adl.DecomposeJoinTree(j, p.leafAttrs)
	if !ok || len(tree.Leaves) < 3 || len(tree.Leaves) > maxGraphRels {
		return nil, false
	}
	g := &joinGraph{root: j, rowsMemo: map[uint64]float64{}}

	varBit := map[string]int{}
	for i, lf := range tree.Leaves {
		varBit[lf.Var] = i
	}

	// Classify conjuncts: single-relation ones become leaf filters, the rest
	// graph predicates.
	filters := make([][]adl.Expr, len(tree.Leaves))
	var conjs []graphConj
	for _, c := range tree.Conjs {
		mask := uint64(0)
		for v := range adl.FreeVars(c) {
			if i, isLeaf := varBit[v]; isLeaf {
				mask |= 1 << i
			}
		}
		switch bits.OnesCount64(mask) {
		case 0:
			// A conjunct anchored to no relation (constant or purely
			// correlated) has no place in the graph.
			return nil, false
		case 1:
			i := bits.TrailingZeros64(mask)
			filters[i] = append(filters[i], c)
		default:
			gc := graphConj{expr: c, mask: mask}
			if cmp, isCmp := c.(*adl.Cmp); isCmp && cmp.Op == adl.Eq && bits.OnesCount64(mask) == 2 {
				lv, lok := soleLeafVar(cmp.L, varBit)
				rv, rok := soleLeafVar(cmp.R, varBit)
				if lok && rok && lv != rv {
					gc.eq = true
					gc.lrel, gc.rrel = lv, rv
					gc.lkey, gc.rkey = cmp.L, cmp.R
				}
			}
			conjs = append(conjs, gc)
		}
	}

	// Compile the (filtered) leaves; the enumerator needs every cardinality.
	g.rels = make([]graphRel, len(tree.Leaves))
	for i, lf := range tree.Leaves {
		expr := lf.Expr
		if len(filters[i]) > 0 {
			expr = adl.Sel(lf.Var, adl.AndE(filters[i]...), expr)
		}
		op, est := p.compile(expr)
		if !est.known {
			return nil, false
		}
		g.rels[i] = graphRel{leafVar: lf.Var, op: op, est: est}
	}

	// Estimate per-conjunct selectivities, now that leaf estimates exist.
	for i := range conjs {
		conjs[i].sel = p.conjSelectivity(g, &conjs[i])
	}
	g.conjs = conjs
	return g, true
}

// soleLeafVar reports the single leaf relation an expression references, if
// it references exactly one.
func soleLeafVar(e adl.Expr, varBit map[string]int) (int, bool) {
	rel, n := -1, 0
	for v := range adl.FreeVars(e) {
		if i, isLeaf := varBit[v]; isLeaf {
			rel = i
			n++
		}
	}
	return rel, n == 1
}

// conjSelectivity estimates what fraction of the Cartesian pairs a graph
// conjunct keeps: equi-key edges through the shared estimator (histogram
// intersection when both key attributes carry histograms, the larger-NDV
// containment rule otherwise), everything else the default guess.
func (p *planner) conjSelectivity(g *joinGraph, c *graphConj) float64 {
	if !c.eq {
		return defaultSelectivity
	}
	lrel, rrel := &g.rels[c.lrel], &g.rels[c.rrel]
	return p.card.joinEqSelectivity(lrel.est, c.lkey, lrel.leafVar,
		rrel.est, c.rkey, rrel.leafVar)
}

// rows estimates the output cardinality of joining the relation subset mask:
// the product of the member cardinalities times the combined selectivity of
// every conjunct internal to the subset (combineConj — the same exponential
// backoff the σ estimator uses, so multi-conjunct subsets never estimate
// above their most selective edge applied alone). The estimate depends only
// on the subset, never on a join order, which keeps the DP's per-subset
// memoization sound.
func (g *joinGraph) rows(mask uint64) float64 {
	if v, ok := g.rowsMemo[mask]; ok {
		return v
	}
	rows := 1.0
	for i := range g.rels {
		if mask&(1<<i) != 0 {
			rows *= g.rels[i].est.rows
		}
	}
	var sels []float64
	for i := range g.conjs {
		if g.conjs[i].mask&^mask == 0 {
			sels = append(sels, g.conjs[i].sel)
		}
	}
	rows = finite(rows * combineConj(sels))
	g.rowsMemo[mask] = rows
	return rows
}

// spanningConjs lists the conjuncts that become applicable exactly when the
// two disjoint subsets are joined: covered by the union, internal to
// neither side.
func (g *joinGraph) spanningConjs(s1, s2 uint64) []int {
	var out []int
	for i := range g.conjs {
		m := g.conjs[i].mask
		if m&^(s1|s2) == 0 && m&s1 != 0 && m&s2 != 0 {
			out = append(out, i)
		}
	}
	return out
}

// connected reports whether at least one conjunct spans the two subsets.
func (g *joinGraph) connected(s1, s2 uint64) bool {
	for i := range g.conjs {
		m := g.conjs[i].mask
		if m&^(s1|s2) == 0 && m&s1 != 0 && m&s2 != 0 {
			return true
		}
	}
	return false
}

// tryReorder routes a multi-relation inner-join chain through the two-phase
// pipeline: decompose to a join graph, enumerate orders, build the chosen
// one through the existing physical operator selection. ok == false means
// the shape is not eligible (or the graph degenerate) and the caller should
// compile in rewriter order.
func (p *planner) tryReorder(j *adl.Join) (exec.Operator, nodeEst, bool) {
	if !p.statsMode() || p.cfg.NoReorder || !adl.Reorderable(j) {
		return nil, unknownEst, false
	}
	// A graph needs at least three relations: one operand must itself be a
	// flattenable join.
	if !isReorderableJoin(j.L) && !isReorderableJoin(j.R) {
		return nil, unknownEst, false
	}
	g, built := p.buildJoinGraph(j)
	if !built {
		return nil, unknownEst, false
	}
	entry := p.enumerateJoinOrder(g)
	if entry == nil {
		return nil, unknownEst, false
	}
	op, est := p.buildJoinOrder(g, entry)
	return op, est, true
}

// freshJoinVar mints a deterministic intermediate-result variable for
// recomposed join nodes, fresh with respect to the original expression.
func (p *planner) freshJoinVar(g *joinGraph) string {
	v := adl.Fresh(fmt.Sprintf("q%d", p.joinVarSeq), g.root)
	p.joinVarSeq++
	return v
}
