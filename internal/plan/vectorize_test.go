package plan

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

func TestSetBatchSize(t *testing.T) {
	var c Config
	for _, bad := range []int{0, -1, -1024} {
		if err := c.SetBatchSize(bad); err == nil {
			t.Fatalf("SetBatchSize(%d) must fail", bad)
		}
	}
	if c.BatchSize != 0 {
		t.Fatalf("rejected sizes must not stick, got %d", c.BatchSize)
	}
	if got := c.batchSize(); got != exec.DefaultBatchSize {
		t.Fatalf("default batch size = %d, want %d", got, exec.DefaultBatchSize)
	}
	if err := c.SetBatchSize(256); err != nil {
		t.Fatalf("SetBatchSize(256): %v", err)
	}
	if got := c.batchSize(); got != 256 {
		t.Fatalf("batch size = %d, want 256", got)
	}
}

// TestVectorizedPlanShapes pins which logical shapes compile to batch
// operators under the flag, which fall back to scalar, and that the flag off
// never produces a vectorized node.
func TestVectorizedPlanShapes(t *testing.T) {
	sel := adl.Sel("x",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.C(value.Int(10))), adl.T("X"))
	equi := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))
	semi := adl.JoinE(adl.T("X"), "x", "y", equi, adl.T("Y"))
	semi.Kind = adl.Semi
	inner := adl.JoinE(adl.T("X"), "x", "y", equi, adl.T("Y"))
	setprobe := adl.JoinE(adl.T("X"), "x", "y",
		adl.CmpE(adl.In, adl.SubT(adl.V("y"), "k"), adl.Dot(adl.V("x"), "c")), adl.T("Y"))
	setprobe.Kind = adl.Anti
	residual := adl.JoinE(adl.T("X"), "x", "y",
		adl.AndE(equi, adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "e"))),
		adl.T("Y"))
	outer := adl.JoinE(adl.T("X"), "x", "y", equi, adl.T("Y"))
	outer.Kind = adl.Outer
	nestj := adl.JoinE(adl.T("X"), "x", "y", equi, adl.T("Y"))
	nestj.Kind, nestj.As = adl.NestJ, "g"
	setnest := adl.JoinE(adl.T("X"), "x", "y",
		adl.CmpE(adl.In, adl.SubT(adl.V("y"), "k"), adl.Dot(adl.V("x"), "c")), adl.T("Y"))
	setnest.Kind, setnest.As = adl.NestJ, "g"

	vec := Config{Vectorized: true}

	op := vec.Compile(sel)
	ad, ok := op.(*exec.VecAdapter)
	if !ok {
		t.Fatalf("σ compiled to %T, want *exec.VecAdapter", op)
	}
	if _, ok := ad.Src.(*exec.VecFilter); !ok {
		t.Fatalf("σ pipeline is %T, want *exec.VecFilter", ad.Src)
	}
	out := Explain(op)
	for _, want := range []string{"VecScan(X", "typed kernels", "columnar projection"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain misses %q:\n%s", want, out)
		}
	}

	proj := adl.Proj(sel, "a")
	ad, ok = vec.Compile(proj).(*exec.VecAdapter)
	if !ok || len(ad.Project) != 1 {
		t.Fatalf("π compiled to %T (project %v), want VecAdapter[π a]", ad, ad.Project)
	}

	ad, ok = vec.Compile(semi).(*exec.VecAdapter)
	if !ok {
		t.Fatalf("semi equi-join must vectorize")
	}
	if _, ok := ad.Src.(*exec.VecSemiJoin); !ok {
		t.Fatalf("semi join pipeline is %T, want *exec.VecSemiJoin", ad.Src)
	}

	if op := vec.Compile(inner); true {
		if _, ok := op.(*exec.VecInnerJoin); !ok {
			t.Fatalf("inner equi-join compiled to %T, want *exec.VecInnerJoin", op)
		}
	}

	ad, ok = vec.Compile(setprobe).(*exec.VecAdapter)
	if !ok {
		t.Fatalf("set-probe join must vectorize")
	}
	if _, ok := ad.Src.(*exec.VecSetProbeJoin); !ok {
		t.Fatalf("set-probe pipeline is %T, want *exec.VecSetProbeJoin", ad.Src)
	}

	// The widened kinds all vectorize: residual conjuncts ride along as a
	// scalar predicate on the batch join, outer shares the inner operator,
	// nestjoin gets the grouping forms.
	rj, ok := vec.Compile(residual).(*exec.VecInnerJoin)
	if !ok || rj.Residual == nil {
		t.Fatalf("residual join compiled to %T, want *exec.VecInnerJoin with residual",
			vec.Compile(residual))
	}
	oj, ok := vec.Compile(outer).(*exec.VecInnerJoin)
	if !ok || !oj.Outer {
		t.Fatalf("outer join compiled to %T, want *exec.VecInnerJoin{Outer}", vec.Compile(outer))
	}
	if _, ok := vec.Compile(nestj).(*exec.VecHashGroupJoin); !ok {
		t.Fatalf("nestjoin compiled to %T, want *exec.VecHashGroupJoin", vec.Compile(nestj))
	}
	if _, ok := vec.Compile(setnest).(*exec.VecSetGroupJoin); !ok {
		t.Fatalf("set-probe nestjoin compiled to %T, want *exec.VecSetGroupJoin", vec.Compile(setnest))
	}

	// Above the parallel threshold the equi-join lowers to the partitioned
	// batch join over a morsel-exchanged probe pipeline.
	par := Config{Vectorized: true, Parallelism: 4,
		Stats: fakeStats{"X": 10000, "Y": 10000}}
	pj, ok := par.Compile(semi).(*exec.VecPartitionedHashJoin)
	if !ok {
		t.Fatalf("large semi join compiled to %T, want *exec.VecPartitionedHashJoin",
			par.Compile(semi))
	}
	if _, ok := pj.L.(*exec.VecExchange); !ok {
		t.Fatalf("partitioned join probe pipeline is %T, want *exec.VecExchange", pj.L)
	}
	if _, ok := par.Compile(nestj).(*exec.VecHashGroupJoin); !ok {
		t.Fatalf("nestjoin must stay on the serial grouping operator, got %T",
			par.Compile(nestj))
	}
	// Below the threshold the serial batch operators stay.
	small := Config{Vectorized: true, Parallelism: 4, Stats: fakeStats{"X": 10, "Y": 10}}
	if _, ok := small.Compile(semi).(*exec.VecAdapter); !ok {
		t.Fatalf("small semi join compiled to %T, want serial *exec.VecAdapter",
			small.Compile(semi))
	}

	// The flag off must never emit a batch operator.
	for _, q := range []adl.Expr{sel, proj, semi, inner, setprobe, residual, outer, nestj, setnest} {
		if out := Explain(Compile(q)); strings.Contains(out, "Vec") {
			t.Fatalf("vectorized node without the flag:\n%s", out)
		}
	}

	// Costed vectorized plans carry the annotation.
	x, y := genTables(rand.New(rand.NewSource(1)))
	costed := Config{Vectorized: true, Statistics: tableStatistics(x, y)}
	if out := costed.Plan(semi).Explain(); !strings.Contains(out, "-- vectorized") {
		t.Fatalf("costed vectorized plan misses the annotation:\n%s", out)
	}
}

// randVecQuery draws one logical query over the X/Y differential schema,
// mixing vectorizable shapes with shapes that must fall back to scalar.
func randVecQuery(rng *rand.Rand) adl.Expr {
	xa := func() adl.Expr { return adl.Dot(adl.V("x"), "a") }
	xb := func() adl.Expr { return adl.Dot(adl.V("x"), "b") }
	ops := []adl.CmpOp{adl.Eq, adl.Ne, adl.Lt, adl.Le, adl.Gt, adl.Ge}
	conj := func() adl.Expr {
		op := ops[rng.Intn(len(ops))]
		switch rng.Intn(4) {
		case 0: // x.attr op const
			return adl.CmpE(op, xa(), adl.C(value.Int(int64(rng.Intn(8)))))
		case 1: // const op x.attr (mirrored kernel)
			return adl.CmpE(op, adl.C(value.Int(int64(rng.Intn(20)))), xb())
		case 2: // column vs column
			return adl.CmpE(op, xa(), xb())
		default: // cross-kind constant: Eq/Ne short-circuit, ordered ops
			// would error row-wise, so restrict to the equality pair.
			if op != adl.Eq && op != adl.Ne {
				op = adl.Eq
			}
			return adl.CmpE(op, xa(), adl.C(value.Float(float64(rng.Intn(8)))))
		}
	}
	src := func() adl.Expr {
		if rng.Intn(3) == 0 {
			return adl.T("X")
		}
		pred := conj()
		for i, n := 0, rng.Intn(2); i < n; i++ {
			pred = adl.AndE(pred, conj())
		}
		return adl.Sel("x", pred, adl.T("X"))
	}
	switch rng.Intn(7) {
	case 0:
		return src()
	case 1:
		return adl.Proj(src(), "a")
	case 2, 3:
		j := adl.JoinE(src(), "x", "y",
			adl.EqE(xa(), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
		j.Kind = []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti}[rng.Intn(3)]
		return j
	case 4: // residual conjunct rides along on the batch join
		j := adl.JoinE(src(), "x", "y",
			adl.AndE(adl.EqE(xa(), adl.Dot(adl.V("y"), "d")),
				adl.CmpE(adl.Lt, xb(), adl.Dot(adl.V("y"), "e"))), adl.T("Y"))
		j.Kind = []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti}[rng.Intn(3)]
		return j
	case 5: // membership predicate: the set-probe shape (nestjoin grouping
		// form included)
		j := adl.JoinE(src(), "x", "y",
			adl.CmpE(adl.In, adl.SubT(adl.V("y"), "k"), adl.Dot(adl.V("x"), "c")),
			adl.T("Y"))
		j.Kind = []adl.JoinKind{adl.Semi, adl.Anti, adl.NestJ}[rng.Intn(3)]
		if j.Kind == adl.NestJ {
			j.As = "g"
		}
		return j
	default: // outer join and nestjoin grouping
		j := adl.JoinE(src(), "x", "y",
			adl.EqE(xa(), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
		j.Kind = adl.Outer
		if rng.Intn(2) == 0 {
			j.Kind = adl.NestJ
			j.As = "g"
		}
		return j
	}
}

// TestDifferentialScalarVsVectorized is the vectorized arm of the
// differential harness: randomized queries run through the scalar planner
// and through the vectorized planner at several batch sizes, asserting
// identical result sets. Run under -race in CI.
func TestDifferentialScalarVsVectorized(t *testing.T) {
	queries := 0
	for seed := int64(1); seed <= 14; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		x, y := genTables(rng)
		db := storage.NewMemDB("X", x, "Y", y)
		for i := 0; i < 3; i++ {
			q := randVecQuery(rng)
			queries++
			ref := collect(t, Compile(q), db)
			arms := map[string]Config{
				"vec":        {Vectorized: true},
				"vec-batch1": {Vectorized: true, BatchSize: 1},
				"vec-batch7": {Vectorized: true, BatchSize: 7},
				"vec-costed": {Vectorized: true, Statistics: tableStatistics(x, y)},
				"vec-parallel": {Vectorized: true, Parallelism: 4, ParallelThreshold: 1,
					Stats: fakeStats{"X": x.Len(), "Y": y.Len()}},
			}
			for name, cfg := range arms {
				got := collect(t, cfg.Compile(q), db)
				if !value.Equal(got, ref) {
					t.Fatalf("seed %d query %d (%v): %s diverges from scalar:\n got  %v\n want %v",
						seed, i, q, name, got, ref)
				}
			}
		}
	}
	if queries < 25 {
		t.Fatalf("differential harness ran %d queries, want ≥ 25", queries)
	}
}

// TestDifferentialVectorizedMVCC runs scalar vs vectorized over pinned MVCC
// snapshots while the store keeps mutating: the columnar projection reader
// must respect each snapshot's visibility, including deletes and updates
// pending after the pin.
func TestDifferentialVectorizedMVCC(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 12, Parts: 30, Deliveries: 90, Seed: 7})

	queries := func() []adl.Expr {
		sel := adl.Sel("d",
			adl.CmpE(adl.Lt, adl.Dot(adl.V("d"), "date"), adl.C(value.Date(940115))),
			adl.T("DELIVERY"))
		qs := []adl.Expr{sel, adl.Proj(sel, "date")}
		for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti} {
			j := adl.JoinE(sel, "d", "s",
				adl.EqE(adl.Dot(adl.V("d"), "supplier"), adl.Dot(adl.V("s"), "eid")),
				adl.T("SUPPLIER"))
			j.Kind = kind
			qs = append(qs, j)
		}
		for _, kind := range []adl.JoinKind{adl.Semi, adl.Anti} {
			// The paper's EQ5 shape: p[pid] ∈ s.parts.
			j := adl.JoinE(adl.T("SUPPLIER"), "s", "p",
				adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
				adl.T("PART"))
			j.Kind = kind
			qs = append(qs, j)
		}
		return qs
	}()

	check := func(label string, sn *storage.Snapshot) {
		for qi, q := range queries {
			ref := collect(t, Compile(q), sn)
			for _, cfg := range []Config{{Vectorized: true}, {Vectorized: true, BatchSize: 3}} {
				got := collect(t, cfg.Compile(q), sn)
				if !value.Equal(got, ref) {
					t.Fatalf("%s query %d: vectorized(batch %d) diverges: got %d rows, want %d",
						label, qi, cfg.BatchSize, got.Len(), ref.Len())
				}
			}
		}
	}

	sn0 := st.Snapshot()
	defer sn0.Release()
	check("pinned-before-mutations", sn0)

	// Delete a third of the deliveries, update the dates of another third,
	// and add fresh rows: sn0 must keep answering as before, a fresh pin
	// must see the new state, and both must agree scalar vs vectorized.
	oids := st.OIDs("DELIVERY")
	for i, oid := range oids {
		switch i % 3 {
		case 0:
			if err := st.Delete("DELIVERY", oid); err != nil {
				t.Fatal(err)
			}
		case 1:
			row, err := st.Deref(oid)
			if err != nil {
				t.Fatal(err)
			}
			args := make([]any, 0, 2*row.Len())
			for _, n := range row.Names() {
				if n == "did" {
					continue // Update supplies the id field itself
				}
				v := row.MustGet(n)
				if n == "date" {
					v = value.Date(940131)
				}
				args = append(args, n, v)
			}
			if err := st.Update("DELIVERY", oid, value.NewTuple(args...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		sup := st.OIDs("SUPPLIER")[i]
		if _, err := st.Insert("DELIVERY", value.NewTuple(
			"supplier", sup,
			"supply", value.EmptySet(),
			"date", value.Date(int32(940102+i)))); err != nil {
			t.Fatal(err)
		}
	}

	check("pinned-with-pending-mutations", sn0)
	sn1 := st.Snapshot()
	defer sn1.Release()
	check("fresh-after-mutations", sn1)
}
