package plan

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/rewrite"
	"repro/internal/translate"
	"repro/internal/value"
)

// pipeline runs OOSQL source through the full stack: parse → typecheck/
// translate → optimize → plan → execute, returning both the physically
// executed result and the nested-loop reference result.
func pipeline(t *testing.T, src string, cfg bench.Config) (*value.Set, *value.Set, exec.Operator) {
	t.Helper()
	st := bench.Generate(cfg)
	e, _, err := translate.Parse(src, st.Catalog())
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	want, err := eval.EvalSet(e, nil, st)
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))
	op := Compile(res.Expr)
	got, err := exec.Collect(op, &exec.Ctx{DB: st})
	if err != nil {
		t.Fatalf("physical exec of %s: %v", res.Expr, err)
	}
	return got, want, op
}

func TestPipelinePaperQueries(t *testing.T) {
	queries := map[string]string{
		"EQ1": `select (sname = s.sname,
		                pnames = select p.pname from p in s.parts_supplied where p.color = "red")
		        from s in SUPPLIER`,
		"EQ2": `select d from d in (select e from e in DELIVERY where e.supplier.sname = "supplier-1")
		        where d.date = 940101`,
		"EQ3b": `select d from d in DELIVERY
		         where exists x in (select s from s in d.supply where s.part.color = "red")`,
		"EQ4": `select s.eid from s in SUPPLIER
		        where exists z in s.parts_supplied : not exists p in PART : z = p`,
		"EQ5": `select s from s in SUPPLIER
		        where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
		"EQ6": `select (sname = s.sname,
		                ps = select p from p in PART where p in s.parts_supplied)
		        from s in SUPPLIER`,
		"count": `select s.sname from s in SUPPLIER
		          where count(Y') = 2
		          with Y' = select p from p in PART where p in s.parts_supplied`,
	}
	cfg := bench.Config{Suppliers: 25, Parts: 30, Fanout: 4, EmptyFrac: 0.2,
		Deliveries: 10, Seed: 5}
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			qcfg := cfg
			if name == "EQ4" {
				// EQ4 looks for referential-integrity violations; it
				// compares identities without navigating, so dangling
				// references are safe — and the point of the query.
				qcfg.DanglingFrac = 0.15
			}
			got, want, _ := pipeline(t, src, qcfg)
			if !value.Equal(got, want) {
				t.Fatalf("physical result differs from reference:\n got  %v\n want %v", got, want)
			}
		})
	}
}

func TestPlannerChoosesSetProbeForEQ5(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 10, Parts: 10, Seed: 3})
	e, _, err := translate.Parse(`
		select s from s in SUPPLIER
		where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
		st.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))
	op := Compile(res.Expr)
	if _, ok := op.(*exec.SetProbeJoin); !ok {
		t.Errorf("EQ5 should plan a SetProbeJoin, got:\n%s", Explain(op))
	}
}

func TestPlannerChoosesHashJoinForEquiKeys(t *testing.T) {
	j := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	op := Compile(j)
	if _, ok := op.(*exec.HashJoin); !ok {
		t.Errorf("equi join should plan a HashJoin, got %T", op)
	}
	// Composite keys plus residual.
	j2 := adl.JoinE(adl.T("X"), "x", "y", adl.AndE(
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")),
		adl.EqE(adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "e")),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "e"))), adl.T("Y"))
	op2 := Compile(j2)
	hj, ok := op2.(*exec.HashJoin)
	if !ok {
		t.Fatalf("composite equi join should plan a HashJoin, got %T", op2)
	}
	if hj.Residual == nil {
		t.Errorf("residual predicate lost")
	}
	// Non-equi predicates fall back to NL.
	j3 := adl.JoinE(adl.T("X"), "x", "y",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	if _, ok := Compile(j3).(*exec.NLJoin); !ok {
		t.Errorf("theta join should plan an NLJoin")
	}
	// EXISTS-style predicates referencing both vars in one conjunct: NL.
	j4 := adl.SemiJoin(adl.T("X"), "x", "y",
		adl.Ex("z", adl.Dot(adl.V("x"), "c"), adl.EqE(adl.V("z"), adl.V("y"))), adl.T("Y"))
	if _, ok := Compile(j4).(*exec.NLJoin); !ok {
		t.Errorf("quantified join predicate should plan an NLJoin")
	}
}

func TestPlannerMaterializeBecomesAssembly(t *testing.T) {
	op := Compile(adl.Mat(adl.T("DELIVERY"), "supplier", "sup"))
	if _, ok := op.(*exec.Assembly); !ok {
		t.Errorf("materialize should plan Assembly, got %T", op)
	}
}

func TestPlannerLetBecomesLetOp(t *testing.T) {
	e := adl.LetE("v", adl.T("PART"), adl.V("v"))
	op, ok := Compile(e).(*exec.LetOp)
	if !ok {
		t.Fatalf("let should plan a LetOp, got %T", Compile(e))
	}
	// The body (a bare variable) falls back to the interpreter.
	if _, ok := op.Child.(*exec.ExprScan); !ok {
		t.Errorf("let body should fall back to ExprScan, got %T", op.Child)
	}
	// And it executes correctly.
	st := bench.Generate(bench.Config{Suppliers: 3, Parts: 4, Seed: 2})
	got, err := exec.Collect(op, &exec.Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := st.Table("PART")
	if !value.Equal(got, want) {
		t.Errorf("LetOp result = %v", got)
	}
}

func TestPlannerFallbackForScalarShapes(t *testing.T) {
	// A quantifier at plan level has no physical counterpart.
	e := adl.Ex("x", adl.T("PART"), adl.CBool(true))
	if _, ok := Compile(e).(*exec.ExprScan); !ok {
		t.Errorf("quantifier should fall back to ExprScan")
	}
}

func TestCorrelatedOperandsViaEnv(t *testing.T) {
	// A plan fragment with a free variable executes under a caller-supplied
	// environment (the nested-loop boundary).
	st := bench.Generate(bench.Config{Suppliers: 5, Parts: 8, Seed: 11})
	inner := adl.Sel("p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.T("PART"))
	sup, err := st.Table("SUPPLIER")
	if err != nil {
		t.Fatal(err)
	}
	op := Compile(inner)
	for _, srow := range sup.Elems() {
		env := (*eval.Env)(nil).Bind("s", srow)
		got, err := exec.Collect(op, &exec.Ctx{DB: st, Env: env})
		if err != nil {
			t.Fatal(err)
		}
		want, err := eval.EvalSet(inner, env, st)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(got, want) {
			t.Fatalf("correlated fragment differs for %v", srow)
		}
	}
}

func TestExplainRendersPlan(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 5, Parts: 5, Seed: 13})
	e, _, err := translate.Parse(`
		select s from s in SUPPLIER
		where exists x in s.parts_supplied : exists p in PART : x = p`, st.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))
	out := Explain(Compile(res.Expr))
	for _, want := range []string{"SetProbeJoin", "Scan(SUPPLIER)", "Scan(PART)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// fakeStats is a planner cardinality feed for tests.
type fakeStats map[string]int

func (f fakeStats) Size(extent string) int { return f[extent] }

// TestPlannerParallelThreshold pins the cost-based choice between the serial
// and the parallel partitioned hash join.
func TestPlannerParallelThreshold(t *testing.T) {
	j := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))

	big := Config{Stats: fakeStats{"X": 5000, "Y": 5000}, Parallelism: 4}
	op := big.Compile(j)
	pj, ok := op.(*exec.PartitionedHashJoin)
	if !ok {
		t.Fatalf("large equi join with stats should plan PartitionedHashJoin, got %T", op)
	}
	if pj.Partitions != 4 {
		t.Errorf("partitions not threaded through: %d", pj.Partitions)
	}

	small := Config{Stats: fakeStats{"X": 10, "Y": 10}, Parallelism: 4}
	if _, ok := small.Compile(j).(*exec.HashJoin); !ok {
		t.Errorf("small equi join should stay a serial HashJoin")
	}

	// No stats: cardinalities are unknown, so the plan stays serial even
	// with parallelism configured.
	nostats := Config{Parallelism: 4}
	if _, ok := nostats.Compile(j).(*exec.HashJoin); !ok {
		t.Errorf("equi join without stats should stay a serial HashJoin")
	}

	// A custom threshold flips the decision.
	lowbar := Config{Stats: fakeStats{"X": 10, "Y": 10}, ParallelThreshold: 5}
	if _, ok := lowbar.Compile(j).(*exec.PartitionedHashJoin); !ok {
		t.Errorf("low threshold should plan PartitionedHashJoin")
	}
}

// TestPlannerParallelMapFilter pins the worker-pool wrappers for large σ/α.
func TestPlannerParallelMapFilter(t *testing.T) {
	cfg := Config{Stats: fakeStats{"X": 5000}, Parallelism: 8}
	sel := adl.Sel("x", adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.C(value.Int(3))), adl.T("X"))
	if _, ok := cfg.Compile(sel).(*exec.ParallelFilter); !ok {
		t.Errorf("large σ should plan ParallelFilter")
	}
	m := adl.MapE("x", adl.Dot(adl.V("x"), "a"), adl.T("X"))
	if _, ok := cfg.Compile(m).(*exec.ParallelMap); !ok {
		t.Errorf("large α should plan ParallelMap")
	}
	smallCfg := Config{Stats: fakeStats{"X": 10}, Parallelism: 8}
	if _, ok := smallCfg.Compile(sel).(*exec.Filter); !ok {
		t.Errorf("small σ should stay a serial Filter")
	}
}

// TestExplainShowsParallelOperators checks that the parallel choice is
// visible in plans.
func TestExplainShowsParallelOperators(t *testing.T) {
	cfg := Config{Stats: fakeStats{"X": 5000, "Y": 5000}, Parallelism: 4}
	j := adl.JoinE(
		adl.Sel("x", adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.C(value.Int(3))), adl.T("X")),
		"x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	out := Explain(cfg.Compile(j))
	for _, want := range []string{"PartitionedHashJoin", "4 partitions", "ParallelFilter", "4 workers"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

// TestPhysicalEquivalenceRandomized stresses the whole stack over random
// databases and all rewrite templates used in the rewrite package.
func TestPhysicalEquivalenceRandomized(t *testing.T) {
	srcs := []string{
		`select s.sname from s in SUPPLIER
		 where s.parts_supplied superset
		       flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "supplier-1")`,
		`select s from s in SUPPLIER
		 where count(Y') = 0
		 with Y' = select p from p in PART where p in s.parts_supplied`,
		`select (n = s.sname, k = count(s.parts_supplied)) from s in SUPPLIER
		 where exists p in PART : p in s.parts_supplied and p.price > 50`,
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := bench.Config{Suppliers: 15, Parts: 12, Fanout: 3,
			EmptyFrac: 0.2, Seed: seed}
		for qi, src := range srcs {
			got, want, _ := pipeline(t, src, cfg)
			if !value.Equal(got, want) {
				t.Fatalf("seed %d query %d: physical ≠ reference", seed, qi)
			}
		}
	}
}

// TestSerialParallelEquivalenceRandomized mirrors the randomized stress test
// with the parallel planner: for every seed and query, the serial plan, the
// parallel plan (threshold forced to 1 so every eligible operator goes
// parallel) and the reference interpreter must agree. Run under -race this
// also shakes out data races in the parallel operators.
func TestSerialParallelEquivalenceRandomized(t *testing.T) {
	srcs := []string{
		`select s from s in SUPPLIER
		 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
		`select s.eid from s in SUPPLIER
		 where exists z in s.parts_supplied : not exists p in PART : z = p`,
		`select (n = s.sname, k = count(s.parts_supplied)) from s in SUPPLIER
		 where exists p in PART : p in s.parts_supplied and p.price > 50`,
		`select s.sname from s in SUPPLIER
		 where s.parts_supplied superset
		       flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "supplier-1")`,
	}
	for seed := int64(1); seed <= 5; seed++ {
		st := bench.Generate(bench.Config{Suppliers: 40, Parts: 30, Fanout: 4,
			EmptyFrac: 0.2, DanglingFrac: 0.1, Seed: seed})
		for qi, src := range srcs {
			e, _, err := translate.Parse(src, st.Catalog())
			if err != nil {
				t.Fatalf("seed %d query %d: translate: %v", seed, qi, err)
			}
			want, err := eval.EvalSet(e, nil, st)
			if err != nil {
				t.Fatalf("seed %d query %d: reference eval: %v", seed, qi, err)
			}
			res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))

			serialGot, err := exec.Collect(Compile(res.Expr), &exec.Ctx{DB: st})
			if err != nil {
				t.Fatalf("seed %d query %d: serial exec: %v", seed, qi, err)
			}
			pcfg := Config{Stats: st, Parallelism: 4, ParallelThreshold: 1}
			parallelGot, err := exec.Collect(pcfg.Compile(res.Expr), &exec.Ctx{DB: st})
			if err != nil {
				t.Fatalf("seed %d query %d: parallel exec: %v", seed, qi, err)
			}
			if !value.Equal(serialGot, want) {
				t.Fatalf("seed %d query %d: serial ≠ reference", seed, qi)
			}
			if !value.Equal(parallelGot, serialGot) {
				t.Fatalf("seed %d query %d: parallel ≠ serial:\n parallel %v\n serial   %v",
					seed, qi, parallelGot, serialGot)
			}
		}
	}
}
