// Vectorized physical selection. Behind Config.Vectorized the planner
// compiles eligible fragments to batch-at-a-time operators: extent scans
// become columnar-projection scans, conjunctive selections become selection-
// vector filters with typed comparison kernels, and single-key equi-joins of
// every kind (inner, semi, anti, outer, nestjoin — residual conjuncts
// included) and set-probe joins (semi/anti pass-through and the nestjoin
// grouping form) probe flat hash tables batch by batch. With workers
// available (Config.Parallelism) the scan+filter pipeline additionally
// lowers to the morsel-driven VecExchange and semi/anti/inner/outer
// equi-joins to VecPartitionedHashJoin — the batch-native parallel pair,
// priced in stats mode and size-thresholded otherwise. Ineligible shapes —
// computed or composite keys, non-extent sources — silently fall through to
// the scalar operators, which remain the reference semantics.
package plan

import (
	"repro/internal/adl"
	"repro/internal/exec"
)

// vecSource compiles an expression into a batch pipeline when it has a
// vectorizable shape: a base extent, possibly under conjunctive selections.
// It returns the pipeline, its scan leaf (so callers can accumulate the
// attributes they read columnar), and the source's estimate.
func (p *planner) vecSource(e adl.Expr) (exec.VecOp, *exec.VecScan, nodeEst, bool) {
	switch n := e.(type) {
	case *adl.Table:
		scan := &exec.VecScan{Extent: n.Name, Batch: p.cfg.batchSize()}
		est := unknownEst
		if p.statsMode() {
			if rows := p.cfg.Statistics.RowCount(n.Name); rows >= 0 {
				est = nodeEst{rows: float64(rows), known: true, extent: n.Name,
					cost: costVecScan(float64(rows), p.cfg.batchSize())}
			}
		}
		return scan, scan, est, true

	case *adl.Select:
		src, scan, se, ok := p.vecSource(n.Src)
		if !ok {
			return nil, nil, unknownEst, false
		}
		kernels, attrs := p.kernelsFor(n)
		scan.Attrs = addAttrs(scan.Attrs, attrs)
		f := &exec.VecFilter{Src: src, Var: n.Var, Kernels: kernels}
		est := unknownEst
		if se.known {
			out := se.rows * p.card.selectivity(n.Pred, n.Var, se.extent)
			est = nodeEst{rows: out, known: true, extent: se.extent,
				cost: se.cost + costVecFilter(se.rows, float64(len(kernels)), p.cfg.batchSize())}
		}
		return f, scan, est, true
	}
	return nil, nil, unknownEst, false
}

// kernelsFor compiles a selection's conjuncts into filter kernels, one per
// conjunct in And order (matching the scalar short-circuit). Conjuncts of
// the shape x.a <op> const, const <op> x.a (mirrored) or x.a <op> x.b get a
// typed kernel over the named columns; everything else keeps only the
// row-wise fallback. The second result lists the columns typed kernels
// read.
func (p *planner) kernelsFor(n *adl.Select) ([]exec.VecCmp, []string) {
	cs := conjuncts(n.Pred)
	ks := make([]exec.VecCmp, 0, len(cs))
	var attrs []string
	for _, c := range cs {
		pred := exec.NewScalar(c, n.Var)
		k := exec.VecCmp{Pred: pred}
		if cmp, ok := c.(*adl.Cmp); ok && kernelOp(cmp.Op) {
			l, r, op := cmp.L, cmp.R, cmp.Op
			if fieldAttr(l, n.Var) == "" && fieldAttr(r, n.Var) != "" {
				l, r, op = r, l, mirrorCmp(op)
			}
			if a := fieldAttr(l, n.Var); a != "" {
				if cv, isConst := r.(*adl.Const); isConst {
					k = exec.VecCmp{Attr: a, Op: op, Const: cv.Val, Pred: pred}
					attrs = append(attrs, a)
				} else if ra := fieldAttr(r, n.Var); ra != "" {
					k = exec.VecCmp{Attr: a, Op: op, RAttr: ra, Pred: pred}
					attrs = append(attrs, a, ra)
				}
			}
		}
		ks = append(ks, k)
	}
	return ks, attrs
}

// kernelOp reports whether a comparison operator has a typed kernel.
func kernelOp(op adl.CmpOp) bool {
	switch op {
	case adl.Eq, adl.Ne, adl.Lt, adl.Le, adl.Gt, adl.Ge:
		return true
	}
	return false
}

// mirrorCmp exchanges a comparison's operand roles (c < x.a ⇔ x.a > c).
func mirrorCmp(op adl.CmpOp) adl.CmpOp {
	switch op {
	case adl.Lt:
		return adl.Gt
	case adl.Le:
		return adl.Ge
	case adl.Gt:
		return adl.Lt
	case adl.Ge:
		return adl.Le
	}
	return op // Eq, Ne are symmetric
}

// fieldAttr resolves v.a field access to "a". Unlike attrOf it rejects the
// subscript form x[a]: a subscript evaluates to a unary tuple, not the
// attribute's value, so it must not feed typed column kernels.
func fieldAttr(e adl.Expr, v string) string {
	f, ok := e.(*adl.Field)
	if !ok {
		return ""
	}
	if vr, ok := f.X.(*adl.Var); ok && vr.Name == v {
		return f.Name
	}
	return ""
}

// addAttrs appends the new attributes not already present.
func addAttrs(have []string, add []string) []string {
	for _, a := range add {
		dup := false
		for _, h := range have {
			if h == a {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, a)
		}
	}
	return have
}

// tryVecSelect compiles σ into a batch pipeline behind the Vectorized flag.
func (p *planner) tryVecSelect(n *adl.Select) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	pipe, _, est, ok := p.vecSource(n)
	if !ok {
		return nil, unknownEst, false
	}
	pipe, est = p.maybeExchange(pipe, n, est)
	op := &exec.VecAdapter{Src: pipe}
	p.record(op, est)
	return op, est, true
}

// tryVecProject compiles π over a vectorizable source: the batch pipeline
// runs untouched and the adapter applies the projection while
// materializing.
func (p *planner) tryVecProject(n *adl.Project) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	pipe, _, se, ok := p.vecSource(n.X)
	if !ok {
		return nil, unknownEst, false
	}
	pipe, se = p.maybeExchange(pipe, n.X, se)
	op := &exec.VecAdapter{Src: pipe, Project: n.Attrs}
	est := se.withOwn(se.rows, se.rows*cRow)
	p.record(op, est)
	return op, est, true
}

// maybeExchange converts a serial scan+filter batch pipeline into the
// morsel-driven parallel exchange when workers are available and it pays:
// priced against the serial pipeline in stats mode, size-thresholded (the
// scalar planner's PartitionedHashJoin rule) otherwise. Non-convertible
// pipelines and single-worker configurations pass through unchanged.
func (p *planner) maybeExchange(pipe exec.VecOp, src adl.Expr, est nodeEst) (exec.VecOp, nodeEst) {
	w := exec.Parallelism(p.cfg.Parallelism)
	if w < 2 {
		return pipe, est
	}
	ex, ok := exec.Exchange(pipe, p.cfg.Parallelism)
	if !ok {
		return pipe, est
	}
	if p.statsMode() {
		rows := p.cfg.Statistics.RowCount(ex.Src.Extent)
		if rows < 0 || !est.known {
			return pipe, est
		}
		parOwn := costVecExchange(float64(rows), float64(len(ex.Kernels)), p.cfg.batchSize(), w)
		if parOwn >= est.cost {
			return pipe, est
		}
		est.cost = parOwn
		est.note = "parallel vectorized"
		return ex, est
	}
	if c := p.cfg.card(src); p.cfg.Stats != nil && c >= 0 && c >= p.cfg.threshold() {
		return ex, est
	}
	return pipe, est
}

// tryVecJoin compiles eligible joins to batch operators behind the
// Vectorized flag: set-probe joins (semi/anti pass-through and the nestjoin
// grouping form) and single-key equi-joins of every kind — semi, anti,
// inner, outer and nestjoin, residual conjuncts included — whose left
// operand is a vectorizable pipeline. Semi/anti/inner/outer equi-joins
// above the parallel threshold (or priced cheaper in stats mode) lower to
// the morsel-exchanged VecPartitionedHashJoin instead of the serial batch
// operator.
func (p *planner) tryVecJoin(j *adl.Join) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	cs := conjuncts(j.On)

	if attr, rkeyExpr, ok := setProbeShape(j, cs); ok {
		if j.RFun != nil && j.Kind != adl.NestJ {
			return nil, unknownEst, false
		}
		switch j.Kind {
		case adl.Semi, adl.Anti, adl.NestJ:
		default:
			return nil, unknownEst, false
		}
		pipe, scan, le, ok := p.vecSource(j.L)
		if !ok {
			return nil, unknownEst, false
		}
		r, re := p.compile(j.R)
		scan.Attrs = addAttrs(scan.Attrs, []string{attr})
		rkey := exec.NewScalar(rkeyExpr, j.RVar)
		var op exec.Operator
		if j.Kind == adl.NestJ {
			var rfun *exec.Scalar
			if j.RFun != nil {
				s := exec.NewScalar(j.RFun, j.LVar, j.RVar)
				rfun = &s
			}
			op = &exec.VecSetGroupJoin{L: pipe, R: r, Attr: attr, RKey: rkey,
				As: j.As, RFun: rfun}
		} else {
			op = &exec.VecAdapter{Src: &exec.VecSetProbeJoin{Anti: j.Kind == adl.Anti,
				L: pipe, R: r, Attr: attr, RKey: rkey}}
		}
		est := unknownEst
		if p.statsMode() && le.known && re.known {
			avg := p.card.avgSetSize(le, attr)
			inner := finite(le.rows * re.rows / maxf(1, maxf(le.rows, re.rows)))
			out := joinOutRows(j.Kind, le.rows, re.rows, inner, le.rows, re.rows)
			est = nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
				cost: le.cost + re.cost + costVecSetProbe(le.rows, avg, re.rows, out, p.cfg.batchSize()),
				note: "vectorized"}
		}
		p.record(op, est)
		return op, est, true
	}

	lkeys, rkeys, residual := splitEquiKeys(cs, j)
	if len(lkeys) != 1 {
		return nil, unknownEst, false
	}
	if j.RFun != nil && j.Kind != adl.NestJ {
		return nil, unknownEst, false
	}
	switch j.Kind {
	case adl.Semi, adl.Anti, adl.Inner, adl.Outer, adl.NestJ:
	default:
		return nil, unknownEst, false
	}
	lattr := fieldAttr(lkeys[0], j.LVar)
	if lattr == "" {
		return nil, unknownEst, false
	}
	pipe, scan, le, ok := p.vecSource(j.L)
	if !ok {
		return nil, unknownEst, false
	}
	r, re := p.compile(j.R)
	scan.Attrs = addAttrs(scan.Attrs, []string{lattr})
	lkey := exec.NewScalar(lkeys[0], j.LVar)
	rkey := exec.NewScalar(rkeys[0], j.RVar)
	var res *exec.Scalar
	if len(residual) > 0 {
		s := exec.NewScalar(adl.AndE(residual...), j.LVar, j.RVar)
		res = &s
	}

	batch := p.cfg.batchSize()
	known := p.statsMode() && le.known && re.known
	var out float64
	if known {
		ndvL := p.card.keyNDV(le, lkeys, j.LVar)
		ndvR := p.card.keyNDV(re, rkeys, j.RVar)
		eqSel := p.card.joinEqSelectivity(le, lkeys[0], j.LVar, re, rkeys[0], j.RVar)
		inner := finite(le.rows * re.rows * eqSel)
		out = joinOutRows(j.Kind, le.rows, re.rows, inner, ndvL, ndvR)
	}

	if j.Kind != adl.NestJ && p.vecParallelJoin(j, le, re, out, known) {
		// Parallel-vectorized: morsel-exchange the probe pipeline and
		// partition the build across the same worker count.
		pipe, le = p.maybeExchange(pipe, j.L, le)
		op := &exec.VecPartitionedHashJoin{Kind: j.Kind, L: pipe, R: r,
			LAttr: lattr, LKey: lkey, RKey: rkey, Residual: res,
			Partitions: p.cfg.Parallelism}
		est := unknownEst
		if known {
			w := float64(exec.Parallelism(p.cfg.Parallelism))
			est = nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
				cost: le.cost + re.cost + costVecPartHash(re.rows, le.rows, out, batch, w),
				note: "parallel vectorized"}
		}
		p.record(op, est)
		return op, est, true
	}

	var op exec.Operator
	switch j.Kind {
	case adl.Inner, adl.Outer:
		op = &exec.VecInnerJoin{L: pipe, R: r, LAttr: lattr, LKey: lkey, RKey: rkey,
			Residual: res, Outer: j.Kind == adl.Outer}
	case adl.NestJ:
		var rfun *exec.Scalar
		if j.RFun != nil {
			s := exec.NewScalar(j.RFun, j.LVar, j.RVar)
			rfun = &s
		}
		op = &exec.VecHashGroupJoin{L: pipe, R: r, LAttr: lattr, LKey: lkey,
			RKey: rkey, Residual: res, As: j.As, RFun: rfun}
	default:
		op = &exec.VecAdapter{Src: &exec.VecSemiJoin{Anti: j.Kind == adl.Anti,
			L: pipe, R: r, LAttr: lattr, LKey: lkey, RKey: rkey, Residual: res}}
	}
	est := unknownEst
	if known {
		est = nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
			cost: le.cost + re.cost + costVecHash(re.rows, le.rows, out, batch),
			note: "vectorized"}
	}
	p.record(op, est)
	return op, est, true
}

// vecParallelJoin decides whether a semi/anti/inner/outer equi-join lowers
// to the partitioned batch join: in stats mode when the parallel variant
// prices cheaper than the serial batch hash join, otherwise by the same
// combined-size threshold the scalar planner uses for PartitionedHashJoin.
// Single-worker configurations never parallelize.
func (p *planner) vecParallelJoin(j *adl.Join, le, re nodeEst, out float64, known bool) bool {
	if exec.Parallelism(p.cfg.Parallelism) < 2 {
		return false
	}
	if known {
		batch := p.cfg.batchSize()
		w := float64(exec.Parallelism(p.cfg.Parallelism))
		return costVecPartHash(re.rows, le.rows, out, batch, w) <
			costVecHash(re.rows, le.rows, out, batch)
	}
	lc, rc := p.cfg.card(j.L), p.cfg.card(j.R)
	return p.cfg.Stats != nil && lc >= 0 && rc >= 0 && lc+rc >= p.cfg.threshold()
}

// maxf is math.Max without the import noise in this file's hot path.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
