// Vectorized physical selection. Behind Config.Vectorized the planner
// compiles eligible fragments to batch-at-a-time operators: extent scans
// become columnar-projection scans, conjunctive selections become selection-
// vector filters with typed comparison kernels, and single-key equi-joins
// (inner, semi, anti) and set-probe joins probe flat hash tables batch by
// batch. Ineligible shapes — computed or composite keys, residual
// predicates, nestjoins, outer joins, non-extent sources — silently fall
// through to the scalar operators, which remain the reference semantics.
package plan

import (
	"repro/internal/adl"
	"repro/internal/exec"
)

// vecSource compiles an expression into a batch pipeline when it has a
// vectorizable shape: a base extent, possibly under conjunctive selections.
// It returns the pipeline, its scan leaf (so callers can accumulate the
// attributes they read columnar), and the source's estimate.
func (p *planner) vecSource(e adl.Expr) (exec.VecOp, *exec.VecScan, nodeEst, bool) {
	switch n := e.(type) {
	case *adl.Table:
		scan := &exec.VecScan{Extent: n.Name, Batch: p.cfg.batchSize()}
		est := unknownEst
		if p.statsMode() {
			if rows := p.cfg.Statistics.RowCount(n.Name); rows >= 0 {
				est = nodeEst{rows: float64(rows), known: true, extent: n.Name,
					cost: costVecScan(float64(rows), p.cfg.batchSize())}
			}
		}
		return scan, scan, est, true

	case *adl.Select:
		src, scan, se, ok := p.vecSource(n.Src)
		if !ok {
			return nil, nil, unknownEst, false
		}
		kernels, attrs := p.kernelsFor(n)
		scan.Attrs = addAttrs(scan.Attrs, attrs)
		f := &exec.VecFilter{Src: src, Var: n.Var, Kernels: kernels}
		est := unknownEst
		if se.known {
			out := se.rows * p.card.selectivity(n.Pred, n.Var, se.extent)
			est = nodeEst{rows: out, known: true, extent: se.extent,
				cost: se.cost + costVecFilter(se.rows, float64(len(kernels)), p.cfg.batchSize())}
		}
		return f, scan, est, true
	}
	return nil, nil, unknownEst, false
}

// kernelsFor compiles a selection's conjuncts into filter kernels, one per
// conjunct in And order (matching the scalar short-circuit). Conjuncts of
// the shape x.a <op> const, const <op> x.a (mirrored) or x.a <op> x.b get a
// typed kernel over the named columns; everything else keeps only the
// row-wise fallback. The second result lists the columns typed kernels
// read.
func (p *planner) kernelsFor(n *adl.Select) ([]exec.VecCmp, []string) {
	cs := conjuncts(n.Pred)
	ks := make([]exec.VecCmp, 0, len(cs))
	var attrs []string
	for _, c := range cs {
		pred := exec.NewScalar(c, n.Var)
		k := exec.VecCmp{Pred: pred}
		if cmp, ok := c.(*adl.Cmp); ok && kernelOp(cmp.Op) {
			l, r, op := cmp.L, cmp.R, cmp.Op
			if fieldAttr(l, n.Var) == "" && fieldAttr(r, n.Var) != "" {
				l, r, op = r, l, mirrorCmp(op)
			}
			if a := fieldAttr(l, n.Var); a != "" {
				if cv, isConst := r.(*adl.Const); isConst {
					k = exec.VecCmp{Attr: a, Op: op, Const: cv.Val, Pred: pred}
					attrs = append(attrs, a)
				} else if ra := fieldAttr(r, n.Var); ra != "" {
					k = exec.VecCmp{Attr: a, Op: op, RAttr: ra, Pred: pred}
					attrs = append(attrs, a, ra)
				}
			}
		}
		ks = append(ks, k)
	}
	return ks, attrs
}

// kernelOp reports whether a comparison operator has a typed kernel.
func kernelOp(op adl.CmpOp) bool {
	switch op {
	case adl.Eq, adl.Ne, adl.Lt, adl.Le, adl.Gt, adl.Ge:
		return true
	}
	return false
}

// mirrorCmp exchanges a comparison's operand roles (c < x.a ⇔ x.a > c).
func mirrorCmp(op adl.CmpOp) adl.CmpOp {
	switch op {
	case adl.Lt:
		return adl.Gt
	case adl.Le:
		return adl.Ge
	case adl.Gt:
		return adl.Lt
	case adl.Ge:
		return adl.Le
	}
	return op // Eq, Ne are symmetric
}

// fieldAttr resolves v.a field access to "a". Unlike attrOf it rejects the
// subscript form x[a]: a subscript evaluates to a unary tuple, not the
// attribute's value, so it must not feed typed column kernels.
func fieldAttr(e adl.Expr, v string) string {
	f, ok := e.(*adl.Field)
	if !ok {
		return ""
	}
	if vr, ok := f.X.(*adl.Var); ok && vr.Name == v {
		return f.Name
	}
	return ""
}

// addAttrs appends the new attributes not already present.
func addAttrs(have []string, add []string) []string {
	for _, a := range add {
		dup := false
		for _, h := range have {
			if h == a {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, a)
		}
	}
	return have
}

// tryVecSelect compiles σ into a batch pipeline behind the Vectorized flag.
func (p *planner) tryVecSelect(n *adl.Select) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	pipe, _, est, ok := p.vecSource(n)
	if !ok {
		return nil, unknownEst, false
	}
	op := &exec.VecAdapter{Src: pipe}
	p.record(op, est)
	return op, est, true
}

// tryVecProject compiles π over a vectorizable source: the batch pipeline
// runs untouched and the adapter applies the projection while
// materializing.
func (p *planner) tryVecProject(n *adl.Project) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	pipe, _, se, ok := p.vecSource(n.X)
	if !ok {
		return nil, unknownEst, false
	}
	op := &exec.VecAdapter{Src: pipe, Project: n.Attrs}
	est := se.withOwn(se.rows, se.rows*cRow)
	p.record(op, est)
	return op, est, true
}

// tryVecJoin compiles eligible joins to batch operators behind the
// Vectorized flag: set-probe and single-key equi-joins (semi/anti/inner
// without residuals or right-tuple functions) whose left operand is a
// vectorizable pipeline, plus the batch nested-loop reference for other
// predicates over vectorizable left operands.
func (p *planner) tryVecJoin(j *adl.Join) (exec.Operator, nodeEst, bool) {
	if !p.cfg.Vectorized {
		return nil, unknownEst, false
	}
	cs := conjuncts(j.On)

	if attr, rkeyExpr, ok := setProbeShape(j, cs); ok && j.Kind != adl.NestJ && j.RFun == nil {
		pipe, scan, le, ok := p.vecSource(j.L)
		if !ok {
			return nil, unknownEst, false
		}
		r, re := p.compile(j.R)
		scan.Attrs = addAttrs(scan.Attrs, []string{attr})
		vj := &exec.VecSetProbeJoin{Anti: j.Kind == adl.Anti, L: pipe, R: r,
			Attr: attr, RKey: exec.NewScalar(rkeyExpr, j.RVar)}
		op := &exec.VecAdapter{Src: vj}
		est := unknownEst
		if p.statsMode() && le.known && re.known {
			avg := p.card.avgSetSize(le, attr)
			inner := finite(le.rows * re.rows / maxf(1, maxf(le.rows, re.rows)))
			out := joinOutRows(j.Kind, le.rows, re.rows, inner, le.rows, re.rows)
			est = nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
				cost: le.cost + re.cost + costVecSetProbe(le.rows, avg, re.rows, out, p.cfg.batchSize()),
				note: "vectorized"}
		}
		p.record(op, est)
		return op, est, true
	}

	lkeys, rkeys, residual := splitEquiKeys(cs, j)
	if len(lkeys) != 1 || len(residual) != 0 || j.RFun != nil {
		return nil, unknownEst, false
	}
	lattr := fieldAttr(lkeys[0], j.LVar)
	if lattr == "" {
		return nil, unknownEst, false
	}
	switch j.Kind {
	case adl.Semi, adl.Anti, adl.Inner:
	default:
		return nil, unknownEst, false
	}
	pipe, scan, le, ok := p.vecSource(j.L)
	if !ok {
		return nil, unknownEst, false
	}
	r, re := p.compile(j.R)
	scan.Attrs = addAttrs(scan.Attrs, []string{lattr})
	lkey := exec.NewScalar(lkeys[0], j.LVar)
	rkey := exec.NewScalar(rkeys[0], j.RVar)
	var op exec.Operator
	if j.Kind == adl.Inner {
		op = &exec.VecInnerJoin{L: pipe, R: r, LAttr: lattr, LKey: lkey, RKey: rkey}
	} else {
		op = &exec.VecAdapter{Src: &exec.VecSemiJoin{Anti: j.Kind == adl.Anti,
			L: pipe, R: r, LAttr: lattr, LKey: lkey, RKey: rkey}}
	}
	est := unknownEst
	if p.statsMode() && le.known && re.known {
		ndvL := p.card.keyNDV(le, lkeys, j.LVar)
		ndvR := p.card.keyNDV(re, rkeys, j.RVar)
		eqSel := p.card.joinEqSelectivity(le, lkeys[0], j.LVar, re, rkeys[0], j.RVar)
		inner := finite(le.rows * re.rows * eqSel)
		out := joinOutRows(j.Kind, le.rows, re.rows, inner, ndvL, ndvR)
		est = nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
			cost: le.cost + re.cost + costVecHash(re.rows, le.rows, out, p.cfg.batchSize()),
			note: "vectorized"}
	}
	p.record(op, est)
	return op, est, true
}

// maxf is math.Max without the import noise in this file's hot path.
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
