package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// The differential property test: a seeded random data/query generator runs
// every physical join strategy applicable to the same logical join — serial
// and parallel, plus the cost-based optimizer's own pick — and asserts that
// all of them produce identical result sets. Run under -race (CI does) this
// also shakes the parallel operators for data races.

// genTables builds two random tables: X{a, b, c={⟨k⟩}} and Y{d, e, k}. Small
// key domains force duplicates, empty groups and dangling rows — the shapes
// the join kinds disagree on when buggy.
func genTables(rng *rand.Rand) (*value.Set, *value.Set) {
	dom := 1 + rng.Intn(8)
	x := value.EmptySet()
	for i, n := 0, rng.Intn(50); i < n; i++ {
		set := value.EmptySet()
		for j, m := 0, rng.Intn(4); j < m; j++ {
			set.Add(value.NewTuple("k", value.Int(int64(rng.Intn(dom)))))
		}
		x.Add(value.NewTuple(
			"a", value.Int(int64(rng.Intn(dom))),
			"b", value.Int(int64(rng.Intn(20))),
			"c", set,
		))
	}
	y := value.EmptySet()
	for i, n := 0, rng.Intn(50); i < n; i++ {
		y.Add(value.NewTuple(
			"d", value.Int(int64(rng.Intn(dom))),
			"e", value.Int(int64(rng.Intn(20))),
			"k", value.Int(int64(rng.Intn(dom))),
		))
	}
	return x, y
}

// tableStatistics derives a Statistics feed from the in-memory tables so the
// optimizer arm runs its cost model (row counts only; NDVs stay defaults).
func tableStatistics(x, y *value.Set) Statistics {
	return fakeStatistics{rows: map[string]int{"X": x.Len(), "Y": y.Len()}}
}

func collect(t *testing.T, op exec.Operator, db eval.DB) *value.Set {
	t.Helper()
	got, err := exec.Collect(op, &exec.Ctx{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDifferentialEquiJoinStrategies(t *testing.T) {
	kinds := []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.NestJ, adl.Outer}
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		x, y := genTables(rng)
		db := storage.NewMemDB("X", x, "Y", y)
		withResidual := seed%2 == 0
		withRFun := seed%3 == 0

		for _, kind := range kinds {
			on := adl.Expr(adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")))
			if withResidual {
				on = adl.AndE(on,
					adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "e")))
			}
			j := adl.JoinE(adl.T("X"), "x", "y", on, adl.T("Y"))
			j.Kind = kind
			if kind == adl.NestJ {
				j.As = "g"
				if withRFun {
					j.RFun = adl.SubT(adl.V("y"), "e")
				}
			}

			lk := exec.NewScalar(adl.Dot(adl.V("x"), "a"), "x")
			rk := exec.NewScalar(adl.Dot(adl.V("y"), "d"), "y")
			var res *exec.Scalar
			if withResidual {
				s := exec.NewScalar(
					adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "e")),
					"x", "y")
				res = &s
			}
			var rfun *exec.Scalar
			if j.RFun != nil {
				s := exec.NewScalar(j.RFun, "x", "y")
				rfun = &s
			}
			scanX := func() exec.Operator { return &exec.Scan{Table: "X"} }
			scanY := func() exec.Operator { return &exec.Scan{Table: "Y"} }

			strategies := map[string]exec.Operator{
				"nl": &exec.NLJoin{Kind: kind, L: scanX(), R: scanY(),
					LVar: "x", RVar: "y",
					Pred: exec.NewScalar(on, "x", "y"), As: j.As, RFun: rfun},
				"hash": &exec.HashJoin{Kind: kind, L: scanX(), R: scanY(),
					LVar: "x", RVar: "y", LKey: lk, RKey: rk,
					Residual: res, As: j.As, RFun: rfun},
				"partitioned1": &exec.PartitionedHashJoin{Kind: kind,
					L: scanX(), R: scanY(), LVar: "x", RVar: "y",
					LKey: lk, RKey: rk, Residual: res, As: j.As, RFun: rfun,
					Partitions: 1},
				"partitioned3": &exec.PartitionedHashJoin{Kind: kind,
					L: scanX(), R: scanY(), LVar: "x", RVar: "y",
					LKey: lk, RKey: rk, Residual: res, As: j.As, RFun: rfun,
					Partitions: 3},
			}
			if (kind == adl.Inner || kind == adl.NestJ) && !withResidual {
				strategies["sortmerge"] = &exec.SortMergeJoin{Kind: kind,
					L: scanX(), R: scanY(), LVar: "x", RVar: "y",
					LKey: lk, RKey: rk, As: j.As, RFun: rfun}
			}
			if kind == adl.Inner && rfun == nil {
				var resSwap *exec.Scalar
				if withResidual {
					s := exec.NewScalar(
						adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "e")),
						"y", "x")
					resSwap = &s
				}
				strategies["hash-swap"] = &exec.HashJoin{Kind: kind,
					L: scanY(), R: scanX(), LVar: "y", RVar: "x",
					LKey: rk, RKey: lk, Residual: resSwap}
			}
			// The planner's own picks: rule-based and cost-based.
			strategies["planner"] = Compile(j)
			strategies["planner-costed"] = Config{Statistics: tableStatistics(x, y),
				Parallelism: 2}.Compile(j)

			ref := collect(t, strategies["nl"], db)
			for name, op := range strategies {
				if name == "nl" {
					continue
				}
				got := collect(t, op, db)
				if !value.Equal(got, ref) {
					t.Fatalf("seed %d kind %v residual=%v rfun=%v: %s diverges from nl:\n got  %v\n want %v",
						seed, kind, withResidual, withRFun, name, got, ref)
				}
			}
		}
	}
}

func TestDifferentialMembershipStrategies(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		x, y := genTables(rng)
		db := storage.NewMemDB("X", x, "Y", y)

		for _, kind := range []adl.JoinKind{adl.Semi, adl.Anti, adl.NestJ} {
			// key(y) ∈ x.c with key(y) = y[k] — the paper's EQ5/EQ6 shape.
			on := adl.CmpE(adl.In, adl.SubT(adl.V("y"), "k"), adl.Dot(adl.V("x"), "c"))
			j := adl.JoinE(adl.T("X"), "x", "y", on, adl.T("Y"))
			j.Kind = kind
			if kind == adl.NestJ {
				j.As = "g"
			}
			var rfun *exec.Scalar
			strategies := map[string]exec.Operator{
				"nl": &exec.NLJoin{Kind: kind, L: &exec.Scan{Table: "X"},
					R: &exec.Scan{Table: "Y"}, LVar: "x", RVar: "y",
					Pred: exec.NewScalar(on, "x", "y"), As: j.As, RFun: rfun},
				"setprobe": &exec.SetProbeJoin{Kind: kind, L: &exec.Scan{Table: "X"},
					R: &exec.Scan{Table: "Y"}, Attr: "c",
					RKey: exec.NewScalar(adl.SubT(adl.V("y"), "k"), "y"),
					As:   j.As},
				"planner": Compile(j),
				"planner-costed": Config{Statistics: tableStatistics(x, y),
					Parallelism: 2}.Compile(j),
			}
			ref := collect(t, strategies["nl"], db)
			for name, op := range strategies {
				if name == "nl" {
					continue
				}
				got := collect(t, op, db)
				if !value.Equal(got, ref) {
					t.Fatalf("seed %d kind %v: %s diverges from nl (%s)",
						seed, kind, name, fmt.Sprintf("got %v want %v", got, ref))
				}
			}
		}
	}
}
