// Index access-path selection: the planner-side half of the secondary-index
// subsystem (storage/index.go holds the structures, exec/index.go the
// operators). tryIndexSelect replaces a σ over a base extent with an
// IndexScan leaf when an indexed conjunct is selective enough to beat the
// sequential sweep, and indexNLCandidate admits the index-nested-loop join
// into chooseEquiJoin's candidate set when the inner side of an equi-join is
// a bare extent with an index on a join-key attribute — the access-path
// choice Selinger-style optimizers price against the scan-based strategies.
package plan

import (
	"math"

	"repro/internal/adl"
	"repro/internal/exec"
)

// indexAccess describes one usable indexed access of a σ predicate — a
// single equality conjunct, or the range bounds merged from one or two
// comparison conjuncts over the same ordered-indexed attribute.
type indexAccess struct {
	attr    string  // indexed attribute
	matches float64 // estimated rows the probe returns
	// eq is the equality key; nil selects the range form below.
	eq             adl.Expr
	lo, hi         adl.Expr
	loIncl, hiIncl bool
}

// constExpr reports whether e is evaluable at Open time: no free variables,
// so neither the iteration variable nor any correlated outer binding.
func constExpr(e adl.Expr) bool { return len(adl.FreeVars(e)) == 0 }

// indexableConjunct classifies one σ conjunct as an index access over the
// extent, or reports false. Equality needs any index kind on the attribute;
// the ordered comparisons need an ordered index. Match counts come from the
// shared estimator: histogram density for equalities, interpolated bucket
// fractions for range bounds, the NDV/default rules without histograms.
func (p *planner) indexableConjunct(c adl.Expr, v, extent string, rows float64) (indexAccess, bool) {
	cmp, ok := c.(*adl.Cmp)
	if !ok {
		return indexAccess{}, false
	}
	// Orient the comparison as field-op-constant.
	attr, other, op := orientCmp(cmp, v)
	if attr == "" || !constExpr(other) {
		return indexAccess{}, false
	}
	kind := p.cfg.Statistics.IndexKind(extent, attr)
	if kind == "" {
		return indexAccess{}, false
	}
	switch op {
	case adl.Eq:
		matches := rows * p.card.eqSelectivity(extent, attr, other)
		return indexAccess{attr: attr, matches: matches, eq: other}, true
	case adl.Lt, adl.Le, adl.Gt, adl.Ge:
		if kind != "ordered" {
			return indexAccess{}, false
		}
		a := indexAccess{attr: attr}
		switch op {
		case adl.Lt:
			a.hi = other
		case adl.Le:
			a.hi, a.hiIncl = other, true
		case adl.Gt:
			a.lo = other
		case adl.Ge:
			a.lo, a.loIncl = other, true
		}
		a.matches = rows * p.card.boundsSelectivity(extent, attr, a.lo, a.hi, a.loIncl, a.hiIncl)
		return a, true
	}
	return indexAccess{}, false
}

// tryIndexSelect plans a σ directly over a base extent through a secondary
// index when that prices below the full scan + filter. The most selective
// indexable conjunct becomes the IndexScan; the remaining conjuncts stay as
// a residual Filter on top.
func (p *planner) tryIndexSelect(n *adl.Select) (exec.Operator, nodeEst, bool) {
	if !p.statsMode() || p.cfg.NoIndexes {
		return nil, unknownEst, false
	}
	tbl, ok := n.Src.(*adl.Table)
	if !ok {
		return nil, unknownEst, false
	}
	rows := p.cfg.Statistics.RowCount(tbl.Name)
	if rows < 0 {
		return nil, unknownEst, false
	}
	cs := conjuncts(n.Pred)
	best, bestIdx := indexAccess{}, -1
	for i, c := range cs {
		a, ok := p.indexableConjunct(c, n.Var, tbl.Name, float64(rows))
		if !ok {
			continue
		}
		if bestIdx < 0 || a.matches < best.matches {
			best, bestIdx = a, i
		}
	}
	if bestIdx < 0 {
		return nil, unknownEst, false
	}
	used := map[int]bool{bestIdx: true}
	if best.eq == nil {
		// A one-sided range can absorb the complementary bound from another
		// comparison conjunct over the same attribute, so lo ≤ x.a < hi
		// probes the ordered index once instead of fetching a half-open
		// range and filtering the rest away.
		merged := false
		for i, c := range cs {
			if used[i] {
				continue
			}
			a, ok := p.indexableConjunct(c, n.Var, tbl.Name, float64(rows))
			if !ok || a.eq != nil || a.attr != best.attr {
				continue
			}
			switch {
			case best.lo == nil && a.lo != nil:
				best.lo, best.loIncl = a.lo, a.loIncl
				used[i], merged = true, true
			case best.hi == nil && a.hi != nil:
				best.hi, best.hiIncl = a.hi, a.hiIncl
				used[i], merged = true, true
			}
		}
		if merged {
			// Re-price the probe for the merged two-sided range: it returns
			// the rows between both bounds, not the one-sided (or flat
			// defaultSelectivity) guess either conjunct priced alone.
			best.matches = float64(rows) * p.card.boundsSelectivity(
				tbl.Name, best.attr, best.lo, best.hi, best.loIncl, best.hiIncl)
		}
	}
	var residual []adl.Expr
	for i, c := range cs {
		if !used[i] {
			residual = append(residual, c)
		}
	}

	// Price the index path against the scan + filter the normal path builds.
	idxCost := costIndexScan(best.matches)
	if len(residual) > 0 {
		idxCost += best.matches * cEval
	}
	scanCost := float64(rows)*cRow +
		math.Min(float64(rows)*cEval, costParallelPool(float64(rows), exec.Parallelism(p.cfg.Parallelism)))
	if idxCost >= scanCost {
		return nil, unknownEst, false
	}

	scan := &exec.IndexScan{Table: tbl.Name, Attr: best.attr}
	note := "index scan on " + tbl.Name + "." + best.attr
	if best.eq != nil {
		s := exec.NewScalar(best.eq)
		scan.Eq = &s
	} else {
		if best.lo != nil {
			s := exec.NewScalar(best.lo)
			scan.Lo, scan.LoIncl = &s, best.loIncl
		}
		if best.hi != nil {
			s := exec.NewScalar(best.hi)
			scan.Hi, scan.HiIncl = &s, best.hiIncl
		}
		note += " (range)"
	}
	scanEst := nodeEst{rows: best.matches, known: true, extent: tbl.Name,
		cost: costIndexScan(best.matches), note: note}
	p.record(scan, scanEst)
	if len(residual) == 0 {
		return scan, scanEst, true
	}
	outRows := best.matches * p.card.selectivity(adl.AndE(residual...), n.Var, tbl.Name)
	op := &exec.Filter{Child: scan, Var: n.Var,
		Pred: exec.NewScalar(adl.AndE(residual...), n.Var)}
	est := nodeEst{rows: outRows, known: true, extent: tbl.Name,
		cost: scanEst.cost + best.matches*cEval + outRows*cRow}
	p.record(op, est)
	return op, est, true
}

// indexNLCandidate checks whether the inner side of an equi-key join admits
// an index-nested-loop probe: the compiled inner operator must be the bare
// extent scan (an index covers every object of the extent, so any filtered
// or reshaped inner would let probes resurrect rows the plan already
// removed), and one inner key must be a plain indexed attribute. It returns
// the indexed attribute, the outer-side key expression paired with it, and
// the remaining conjuncts (other key equations plus the residual) that must
// run as the probe's residual predicate.
func (p *planner) indexNLCandidate(inner exec.Operator, innerExt, innerVar string,
	innerKeys, outerKeys []adl.Expr, residual []adl.Expr) (string, adl.Expr, []adl.Expr, bool) {
	if p.cfg.NoIndexes || innerExt == "" {
		return "", nil, nil, false
	}
	scan, ok := inner.(*exec.Scan)
	if !ok || scan.Table != innerExt {
		return "", nil, nil, false
	}
	for i := range innerKeys {
		attr := attrOf(innerKeys[i], innerVar)
		if attr == "" || p.cfg.Statistics.IndexKind(innerExt, attr) == "" {
			continue
		}
		var resid []adl.Expr
		for j := range innerKeys {
			if j != i {
				resid = append(resid, adl.EqE(outerKeys[j], innerKeys[j]))
			}
		}
		resid = append(resid, residual...)
		return attr, outerKeys[i], resid, true
	}
	return "", nil, nil, false
}
