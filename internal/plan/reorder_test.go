package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// chainTables builds three random tables A(a_id, a_v), B(b_a, b_c, b_v),
// C(c_id, c_v) with small key domains, plus exact statistics.
func chainTables(seed int64, na, nb, nc int) (*storage.MemDB, fakeStatistics) {
	rng := rand.New(rand.NewSource(seed))
	dom := func(n int) int64 {
		if n == 0 {
			return 1
		}
		return int64(1 + rng.Intn(n))
	}
	a, b, c := value.EmptySet(), value.EmptySet(), value.EmptySet()
	for i := 0; i < na; i++ {
		a.Add(value.NewTuple("a_id", value.Int(dom(8)), "a_v", value.Int(int64(rng.Intn(20)))))
	}
	for i := 0; i < nb; i++ {
		b.Add(value.NewTuple("b_a", value.Int(dom(8)), "b_c", value.Int(dom(6)),
			"b_v", value.Int(int64(rng.Intn(20)))))
	}
	for i := 0; i < nc; i++ {
		c.Add(value.NewTuple("c_id", value.Int(dom(6)), "c_v", value.Int(int64(rng.Intn(20)))))
	}
	db := storage.NewMemDB("A", a, "B", b, "C", c)
	stats := fakeStatistics{
		rows: map[string]int{"A": a.Len(), "B": b.Len(), "C": c.Len()},
		ndv:  map[string]int{},
	}
	for table, set := range map[string]*value.Set{"A": a, "B": b, "C": c} {
		distinct := map[string]map[value.Value]bool{}
		for _, row := range set.Elems() {
			tup := row.(*value.Tuple)
			for i := 0; i < tup.Len(); i++ {
				name, v := tup.At(i)
				if distinct[name] == nil {
					distinct[name] = map[value.Value]bool{}
				}
				distinct[name][v] = true
			}
		}
		for name, vals := range distinct {
			stats.ndv[table+"."+name] = len(vals)
		}
	}
	return db, stats
}

// reorderChain is ((A ⋈ B) ⋈ C), the shape whose outer predicate references
// the concatenated left tuple.
func reorderChain() *adl.Join {
	inner := adl.JoinE(adl.T("A"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
	return adl.JoinE(inner, "xy", "z",
		adl.EqE(adl.Dot(adl.V("xy"), "b_c"), adl.Dot(adl.V("z"), "c_id")), adl.T("C"))
}

func rootNote(t *testing.T, pl *Plan) string {
	t.Helper()
	e, ok := pl.Estimate(pl.Root)
	if !ok {
		t.Fatalf("root not annotated:\n%s", pl.Explain())
	}
	return e.Note
}

// TestReorderEngagesOnChain: a three-relation inner chain with statistics
// goes through the enumerator, is annotated as such, and returns exactly the
// rewriter-order result.
func TestReorderEngagesOnChain(t *testing.T) {
	db, stats := chainTables(1, 40, 40, 12)
	j := reorderChain()

	reordered := Config{Statistics: stats}.Plan(j)
	if note := rootNote(t, reordered); !strings.Contains(note, "order: dp over 3 relations") {
		t.Fatalf("root note %q does not mark enumeration:\n%s", note, reordered.Explain())
	}

	baseline := Config{Statistics: stats, NoReorder: true}.Plan(j)
	if note, ok := baseline.Estimate(baseline.Root); ok && strings.Contains(note.Note, "order:") {
		t.Fatalf("NoReorder plan must not enumerate:\n%s", baseline.Explain())
	}

	want := collect(t, Compile(j), db)
	for name, pl := range map[string]*Plan{"reordered": reordered, "baseline": baseline} {
		got := collect(t, pl.Root, db)
		if !value.Equal(got, want) {
			t.Fatalf("%s diverges:\n got  %v\n want %v", name, got, want)
		}
	}
}

// TestReorderPrefersSmallIntermediate: when the chain is written so the huge
// join comes first, the enumerator starts from the selective end instead,
// and its cost estimate is no worse than the rewriter order's.
func TestReorderPrefersSmallIntermediate(t *testing.T) {
	// A ⋈ B is huge (low-NDV keys), B ⋈ C is selective. Written order does
	// A ⋈ B first.
	stats := fakeStatistics{
		rows: map[string]int{"A": 2000, "B": 2000, "C": 20},
		ndv: map[string]int{
			"A.a_id": 10, "A.a_v": 20,
			"B.b_a": 10, "B.b_c": 2000, "B.b_v": 20,
			"C.c_id": 20, "C.c_v": 20,
		},
	}
	j := reorderChain()
	reordered := Config{Statistics: stats}.Plan(j)
	baseline := Config{Statistics: stats, NoReorder: true}.Plan(j)
	re, _ := reordered.Estimate(reordered.Root)
	be, _ := baseline.Estimate(baseline.Root)
	if re.Cost > be.Cost {
		t.Fatalf("enumerated order costs %.0f, rewriter order %.0f:\n%s\nvs\n%s",
			re.Cost, be.Cost, reordered.Explain(), baseline.Explain())
	}
	// The first join executed must involve C (the selective end): in the
	// Explain tree, Scan(C) may not sit at the root join's direct right-hand
	// side the way the written order has it... assert structurally instead:
	// the root's immediate children must not be the A ⋈ B join.
	if hj, ok := reordered.Root.(*exec.HashJoin); ok {
		for _, child := range []exec.Operator{hj.L, hj.R} {
			if inner, isJoin := child.(*exec.HashJoin); isJoin {
				ls, lok := inner.L.(*exec.Scan)
				rs, rok := inner.R.(*exec.Scan)
				if lok && rok {
					pair := ls.Table + rs.Table
					if pair == "AB" || pair == "BA" {
						t.Fatalf("enumerator kept the huge A ⋈ B first:\n%s", reordered.Explain())
					}
				}
			}
		}
	}
}

// TestReorderFallbacks: shapes and configurations that must keep the
// rewriter order — two-relation joins, missing attribute knowledge, missing
// row counts, NoReorder.
func TestReorderFallbacks(t *testing.T) {
	db, stats := chainTables(2, 30, 30, 10)
	want := collect(t, Compile(reorderChain()), db)

	t.Run("two relations", func(t *testing.T) {
		j := adl.JoinE(adl.T("A"), "x", "y",
			adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
		pl := Config{Statistics: stats}.Plan(j)
		if note, ok := pl.Estimate(pl.Root); ok && strings.Contains(note.Note, "order:") {
			t.Fatalf("two-relation join must not enumerate:\n%s", pl.Explain())
		}
	})
	t.Run("missing attributes", func(t *testing.T) {
		// Statistics without B's attributes: the outer conjunct over the
		// concatenated tuple cannot be attributed; the plan falls back and
		// still evaluates correctly.
		blind := fakeStatistics{rows: stats.rows, ndv: map[string]int{}}
		pl := Config{Statistics: blind}.Plan(reorderChain())
		if note, ok := pl.Estimate(pl.Root); ok && strings.Contains(note.Note, "order:") {
			t.Fatalf("attribute-blind plan must not enumerate:\n%s", pl.Explain())
		}
		if got := collect(t, pl.Root, db); !value.Equal(got, want) {
			t.Fatalf("fallback diverges: got %v want %v", got, want)
		}
	})
	t.Run("missing row count", func(t *testing.T) {
		partial := fakeStatistics{rows: map[string]int{"A": 30, "B": 30}, ndv: stats.ndv}
		pl := Config{Statistics: partial}.Plan(reorderChain())
		if got := collect(t, pl.Root, db); !value.Equal(got, want) {
			t.Fatalf("fallback diverges: got %v want %v", got, want)
		}
	})
	t.Run("NoReorder", func(t *testing.T) {
		pl := Config{Statistics: stats, NoReorder: true}.Plan(reorderChain())
		if got := collect(t, pl.Root, db); !value.Equal(got, want) {
			t.Fatalf("NoReorder diverges: got %v want %v", got, want)
		}
	})
}

// TestReorderGreedyFallback: above MaxDPRelations the enumerator switches to
// the greedy left-deep heuristic, annotates the root accordingly, and still
// returns the identical result.
func TestReorderGreedyFallback(t *testing.T) {
	db, stats := chainTables(3, 30, 30, 10)
	j := reorderChain()
	pl := Config{Statistics: stats, MaxDPRelations: 2}.Plan(j)
	if note := rootNote(t, pl); !strings.Contains(note, "greedy left-deep over 3 relations") {
		t.Fatalf("root note %q does not mark the greedy fallback:\n%s", note, pl.Explain())
	}
	want := collect(t, Compile(j), db)
	if got := collect(t, pl.Root, db); !value.Equal(got, want) {
		t.Fatalf("greedy plan diverges: got %v want %v", got, want)
	}
}

// TestReorderThetaEdge: a chain whose outer predicate is a theta comparison
// still enumerates (the edge prices as a nested loop) and stays correct.
func TestReorderThetaEdge(t *testing.T) {
	db, stats := chainTables(4, 25, 25, 8)
	inner := adl.JoinE(adl.T("A"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
	j := adl.JoinE(inner, "xy", "z",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("xy"), "b_c"), adl.Dot(adl.V("z"), "c_id")), adl.T("C"))
	pl := Config{Statistics: stats}.Plan(j)
	if note := rootNote(t, pl); !strings.Contains(note, "order:") {
		t.Fatalf("theta chain should still enumerate, note %q:\n%s", note, pl.Explain())
	}
	want := collect(t, Compile(j), db)
	if got := collect(t, pl.Root, db); !value.Equal(got, want) {
		t.Fatalf("theta reorder diverges: got %v want %v", got, want)
	}
}

// TestReorderWrappedLeaves: attribute resolution sees through the
// attribute-preserving wrappers (σ, ρ, π) when a wrapped leaf sits inside a
// multi-leaf operand.
func TestReorderWrappedLeaves(t *testing.T) {
	db, stats := chainTables(6, 30, 30, 10)
	selA := adl.Sel("f", adl.CmpE(adl.Le, adl.Dot(adl.V("f"), "a_v"), adl.CInt(15)), adl.T("A"))
	renB := adl.Rho(adl.T("B"), "b_v", "b_w")
	inner := adl.JoinE(selA, "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), renB)
	j := adl.JoinE(inner, "xy", "z",
		adl.EqE(adl.Dot(adl.V("xy"), "b_c"), adl.Dot(adl.V("z"), "c_id")),
		adl.Proj(adl.T("C"), "c_id", "c_v"))
	pl := Config{Statistics: stats}.Plan(j)
	if note := rootNote(t, pl); !strings.Contains(note, "order:") {
		t.Fatalf("wrapped-leaf chain should enumerate, note %q:\n%s", note, pl.Explain())
	}
	want := collect(t, Compile(j), db)
	if got := collect(t, pl.Root, db); !value.Equal(got, want) {
		t.Fatalf("wrapped-leaf reorder diverges: got %v want %v", got, want)
	}
}

// TestReorderDisconnectedGraph: a chain whose last join carries no predicate
// (a cross product) has a disconnected join graph; the second DP pass admits
// the cross product and the plan stays correct.
func TestReorderDisconnectedGraph(t *testing.T) {
	db, stats := chainTables(7, 12, 12, 4)
	inner := adl.JoinE(adl.T("A"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
	j := adl.JoinE(inner, "xy", "z", adl.CBool(true), adl.T("C"))
	pl := Config{Statistics: stats}.Plan(j)
	if note := rootNote(t, pl); !strings.Contains(note, "order:") {
		t.Fatalf("disconnected chain should still enumerate, note %q:\n%s", note, pl.Explain())
	}
	want := collect(t, Compile(j), db)
	if got := collect(t, pl.Root, db); !value.Equal(got, want) {
		t.Fatalf("cross-product reorder diverges: got %v want %v", got, want)
	}
}

// TestReorderGreedySaturatedCosts: a long fully-disconnected chain (every ON
// literal true) of astronomically large relations drives the greedy
// heuristic's cost accumulation to saturation — every candidate prices the
// same; the enumerator must still pick relations (no bestIdx=-1 panic) and
// keep all estimates finite.
func TestReorderGreedySaturatedCosts(t *testing.T) {
	const n = 18 // enough relations for the row product to overflow float64
	stats := fakeStatistics{rows: map[string]int{}, ndv: map[string]int{}}
	cur := adl.Expr(adl.T("T0"))
	stats.rows["T0"] = int(^uint(0) >> 1)
	stats.ndv["T0.t0k"] = 1
	for i := 1; i < n; i++ {
		name := fmt.Sprintf("T%d", i)
		stats.rows[name] = int(^uint(0) >> 1)
		stats.ndv[fmt.Sprintf("%s.t%dk", name, i)] = 1
		cur = adl.JoinE(cur, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i),
			adl.CBool(true), adl.T(name))
	}
	pl := Config{Statistics: stats}.Plan(cur) // must not panic
	if note := rootNote(t, pl); !strings.Contains(note, "greedy left-deep over 18 relations") {
		t.Fatalf("expected the greedy fallback, note %q", note)
	}
	assertFiniteEstimates(t, pl)
}

// TestReorderPushesSingleRelationFilter: a conjunct referencing one relation
// becomes a selection on that leaf instead of a join residual.
func TestReorderPushesSingleRelationFilter(t *testing.T) {
	db, stats := chainTables(5, 30, 30, 10)
	inner := adl.JoinE(adl.T("A"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a_id"), adl.Dot(adl.V("y"), "b_a")), adl.T("B"))
	j := adl.JoinE(inner, "xy", "z",
		adl.AndE(
			adl.EqE(adl.Dot(adl.V("xy"), "b_c"), adl.Dot(adl.V("z"), "c_id")),
			adl.CmpE(adl.Lt, adl.Dot(adl.V("z"), "c_v"), adl.CInt(10))),
		adl.T("C"))
	pl := Config{Statistics: stats}.Plan(j)
	if note := rootNote(t, pl); !strings.Contains(note, "order:") {
		t.Fatalf("filter chain should enumerate, note %q", note)
	}
	if !strings.Contains(pl.Explain(), "Filter[") {
		t.Fatalf("single-relation conjunct was not pushed down to a Filter:\n%s", pl.Explain())
	}
	want := collect(t, Compile(j), db)
	if got := collect(t, pl.Root, db); !value.Equal(got, want) {
		t.Fatalf("filter pushdown diverges: got %v want %v", got, want)
	}
}
