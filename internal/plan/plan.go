// Package plan lowers logical ADL expressions to physical operator trees.
// The planner is rule-based, in the spirit of the paper's motivation: once
// the rewriter has produced join operators, "the optimizer may choose from a
// number of different join processing strategies" (§5.1). Equi-predicates
// select hash joins, membership-in-attribute predicates select the
// set-probe join (the single-segment PNHL core), materialize becomes the
// pointer-based assembly, and everything else falls back to nested loops —
// or, for fragments with no physical counterpart, to the reference
// interpreter.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/value"
)

// Stats supplies base-table cardinalities to the planner's cost model.
// storage.Store satisfies it.
type Stats interface {
	Size(extent string) int
}

// DefaultParallelThreshold is the minimum combined input cardinality at
// which the planner prefers the parallel partitioned operators. Below it,
// goroutine and channel overhead dominates and the serial operators win.
const DefaultParallelThreshold = 2048

// Config parameterizes compilation. The zero Config plans exactly like the
// serial planner: parallel variants are considered only when Stats is set,
// because the threshold decision needs cardinalities.
type Config struct {
	// Stats feeds table cardinalities to the size threshold; nil disables
	// parallel operator selection entirely.
	Stats Stats
	// Parallelism is the partition/worker count for parallel operators;
	// 0 means runtime.NumCPU.
	Parallelism int
	// ParallelThreshold is the minimum combined input cardinality for a
	// parallel plan; 0 means DefaultParallelThreshold.
	ParallelThreshold int
}

// threshold resolves the effective parallel threshold.
func (c Config) threshold() int {
	if c.ParallelThreshold > 0 {
		return c.ParallelThreshold
	}
	return DefaultParallelThreshold
}

// Compile builds a physical operator tree with the default (serial)
// configuration.
func Compile(e adl.Expr) exec.Operator { return Config{}.Compile(e) }

// Compile builds a physical operator tree for a (set-valued) ADL expression.
func (c Config) Compile(e adl.Expr) exec.Operator {
	switch n := e.(type) {
	case *adl.Table:
		return &exec.Scan{Table: n.Name}

	case *adl.Select:
		child := c.Compile(n.Src)
		pred := exec.NewScalar(n.Pred, n.Var)
		if c.parallelWorthwhile(c.card(n.Src)) {
			return &exec.ParallelFilter{Child: child, Var: n.Var, Pred: pred,
				Workers: c.Parallelism}
		}
		return &exec.Filter{Child: child, Var: n.Var, Pred: pred}

	case *adl.Map:
		child := c.Compile(n.Src)
		body := exec.NewScalar(n.Body, n.Var)
		if c.parallelWorthwhile(c.card(n.Src)) {
			return &exec.ParallelMap{Child: child, Var: n.Var, Body: body,
				Workers: c.Parallelism}
		}
		return &exec.MapOp{Child: child, Var: n.Var, Body: body}

	case *adl.Project:
		return &exec.ProjectOp{Child: c.Compile(n.X), Attrs: n.Attrs}

	case *adl.Unnest:
		return &exec.UnnestOp{Child: c.Compile(n.X), Attr: n.Attr}

	case *adl.Nest:
		return &exec.NestOp{Child: c.Compile(n.X), Attrs: n.Attrs, As: n.As}

	case *adl.Flatten:
		return &exec.FlattenOp{Child: c.Compile(n.X)}

	case *adl.Materialize:
		return &exec.Assembly{Child: c.Compile(n.X), Attr: n.Attr, As: n.As}

	case *adl.Rename:
		return &exec.RenameOp{Child: c.Compile(n.X), From: n.From, To: n.To}

	case *adl.Divide:
		return &exec.DivideOp{L: c.Compile(n.L), R: c.Compile(n.R)}

	case *adl.Let:
		return &exec.LetOp{Var: n.Var, Val: n.Val, Child: c.Compile(n.Body)}

	case *adl.Join:
		return compileJoin(n, c)
	}
	// Fallback: evaluate the fragment with the reference interpreter.
	return &exec.ExprScan{Expr: e}
}

// Run compiles and executes a set-valued expression.
func Run(e adl.Expr, db eval.DB) (*value.Set, error) {
	op := Compile(e)
	return exec.Collect(op, &exec.Ctx{DB: db})
}

// parallelWorthwhile reports whether an operator over an estimated input
// cardinality should use its parallel variant.
func (c Config) parallelWorthwhile(card int) bool {
	return c.Stats != nil && card >= c.threshold()
}

// card estimates the cardinality of a set-valued expression from base-table
// sizes. Row-preserving and row-filtering operators inherit their source's
// estimate (an upper bound); shapes the model cannot see through estimate
// -1, which never crosses the threshold — unknown sizes stay serial.
func (c Config) card(e adl.Expr) int {
	if c.Stats == nil {
		return -1
	}
	switch n := e.(type) {
	case *adl.Table:
		return c.Stats.Size(n.Name)
	case *adl.Select:
		return c.card(n.Src)
	case *adl.Map:
		return c.card(n.Src)
	case *adl.Project:
		return c.card(n.X)
	case *adl.Rename:
		return c.card(n.X)
	case *adl.Materialize:
		return c.card(n.X)
	case *adl.Nest:
		return c.card(n.X)
	case *adl.Unnest:
		return c.card(n.X)
	case *adl.Let:
		return c.card(n.Body)
	case *adl.Join:
		// Filtering kinds return a subset of the left operand; inner/outer
		// and nestjoin are dominated by their probe side for thresholding.
		return c.card(n.L)
	}
	return -1
}

// compileJoin chooses a join implementation from the predicate shape.
func compileJoin(j *adl.Join, c Config) exec.Operator {
	l, r := c.Compile(j.L), c.Compile(j.R)
	var rfun *exec.Scalar
	if j.RFun != nil {
		s := exec.NewScalar(j.RFun, j.LVar, j.RVar)
		rfun = &s
	}

	cs := conjuncts(j.On)

	// Membership-in-attribute shape: key(y) ∈ x.attr as the sole conjunct
	// (the paper's p[pid] ∈ s.parts), for the filtering/grouping kinds.
	if len(cs) == 1 && (j.Kind == adl.Semi || j.Kind == adl.Anti || j.Kind == adl.NestJ) {
		if cmp, ok := cs[0].(*adl.Cmp); ok && cmp.Op == adl.In {
			if fa, ok := cmp.R.(*adl.Field); ok {
				if v, ok := fa.X.(*adl.Var); ok && v.Name == j.LVar &&
					!adl.HasFree(cmp.L, j.LVar) {
					return &exec.SetProbeJoin{
						Kind: j.Kind, L: l, R: r,
						Attr: fa.Name,
						RKey: exec.NewScalar(cmp.L, j.RVar),
						As:   j.As, RFun: rfun,
					}
				}
			}
		}
	}

	// Equi-key extraction: conjuncts f(x) = g(y).
	var lkeys, rkeys []adl.Expr
	var residual []adl.Expr
	for _, c := range cs {
		cmp, ok := c.(*adl.Cmp)
		if !ok || cmp.Op != adl.Eq {
			residual = append(residual, c)
			continue
		}
		lSide, rSide := cmp.L, cmp.R
		if adl.HasFree(lSide, j.RVar) || adl.HasFree(rSide, j.LVar) {
			lSide, rSide = rSide, lSide
		}
		if adl.HasFree(lSide, j.RVar) || adl.HasFree(rSide, j.LVar) {
			residual = append(residual, c)
			continue
		}
		// A usable key pair references each side's variable (constant-only
		// sides are legal but belong in the residual).
		if !adl.HasFree(lSide, j.LVar) || !adl.HasFree(rSide, j.RVar) {
			residual = append(residual, c)
			continue
		}
		lkeys = append(lkeys, lSide)
		rkeys = append(rkeys, rSide)
	}

	if len(lkeys) > 0 {
		var res *exec.Scalar
		if len(residual) > 0 {
			s := exec.NewScalar(adl.AndE(residual...), j.LVar, j.RVar)
			res = &s
		}
		// Large equi-key joins get the Grace-style parallel partitioned
		// variant; small ones stay serial, where partitioning overhead
		// would dominate.
		if lc, rc := c.card(j.L), c.card(j.R); c.Stats != nil &&
			lc >= 0 && rc >= 0 && lc+rc >= c.threshold() {
			return &exec.PartitionedHashJoin{
				Kind: j.Kind, L: l, R: r,
				LVar: j.LVar, RVar: j.RVar,
				LKey:     keyScalar(lkeys, j.LVar),
				RKey:     keyScalar(rkeys, j.RVar),
				Residual: res,
				As:       j.As, RFun: rfun,
				Partitions: c.Parallelism,
			}
		}
		return &exec.HashJoin{
			Kind: j.Kind, L: l, R: r,
			LVar: j.LVar, RVar: j.RVar,
			LKey:     keyScalar(lkeys, j.LVar),
			RKey:     keyScalar(rkeys, j.RVar),
			Residual: res,
			As:       j.As, RFun: rfun,
		}
	}

	return &exec.NLJoin{
		Kind: j.Kind, L: l, R: r,
		LVar: j.LVar, RVar: j.RVar,
		Pred: exec.NewScalar(j.On, j.LVar, j.RVar),
		As:   j.As, RFun: rfun,
	}
}

// keyScalar packs key expressions into a composite tuple key.
func keyScalar(keys []adl.Expr, v string) exec.Scalar {
	if len(keys) == 1 {
		return exec.NewScalar(keys[0], v)
	}
	t := &adl.TupleExpr{}
	for i, k := range keys {
		t.Names = append(t.Names, fmt.Sprintf("k%d", i))
		t.Elems = append(t.Elems, k)
	}
	return exec.NewScalar(t, v)
}

func conjuncts(e adl.Expr) []adl.Expr {
	if a, ok := e.(*adl.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	if c, ok := e.(*adl.Const); ok {
		if b, isB := c.Val.(value.Bool); isB && bool(b) {
			return nil
		}
	}
	return []adl.Expr{e}
}

// Explain renders the physical plan tree.
func Explain(op exec.Operator) string {
	var b strings.Builder
	explain(&b, op, 0)
	return b.String()
}

func explain(b *strings.Builder, op exec.Operator, depth int) {
	indent := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *exec.Scan:
		fmt.Fprintf(b, "%sScan(%s)\n", indent, o.Table)
	case *exec.SetScan:
		fmt.Fprintf(b, "%sSetScan(%d elems)\n", indent, o.Set.Len())
	case *exec.ExprScan:
		fmt.Fprintf(b, "%sExprScan(%s)  -- interpreter fallback\n", indent, o.Expr)
	case *exec.Filter:
		fmt.Fprintf(b, "%sFilter[%s: %s]\n", indent, o.Var, o.Pred.Expr)
		explain(b, o.Child, depth+1)
	case *exec.MapOp:
		fmt.Fprintf(b, "%sMap[%s: %s]\n", indent, o.Var, o.Body.Expr)
		explain(b, o.Child, depth+1)
	case *exec.ProjectOp:
		fmt.Fprintf(b, "%sProject[%s]\n", indent, strings.Join(o.Attrs, ", "))
		explain(b, o.Child, depth+1)
	case *exec.UnnestOp:
		fmt.Fprintf(b, "%sUnnest[%s]\n", indent, o.Attr)
		explain(b, o.Child, depth+1)
	case *exec.NestOp:
		fmt.Fprintf(b, "%sNest[{%s} -> %s]\n", indent, strings.Join(o.Attrs, ", "), o.As)
		explain(b, o.Child, depth+1)
	case *exec.FlattenOp:
		fmt.Fprintf(b, "%sFlatten\n", indent)
		explain(b, o.Child, depth+1)
	case *exec.Assembly:
		fmt.Fprintf(b, "%sAssembly[%s -> %s]  -- pointer-based materialize\n", indent, o.Attr, o.As)
		explain(b, o.Child, depth+1)
	case *exec.LetOp:
		fmt.Fprintf(b, "%sLet[%s = %s]  -- constant, evaluated once\n", indent, o.Var, o.Val)
		explain(b, o.Child, depth+1)
	case *exec.HashJoin:
		fmt.Fprintf(b, "%sHashJoin[%v on %s = %s]\n", indent, o.Kind, o.LKey.Expr, o.RKey.Expr)
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	case *exec.PartitionedHashJoin:
		fmt.Fprintf(b, "%sPartitionedHashJoin[%v on %s = %s | %d partitions]  -- parallel\n",
			indent, o.Kind, o.LKey.Expr, o.RKey.Expr, exec.Parallelism(o.Partitions))
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	case *exec.ParallelFilter:
		fmt.Fprintf(b, "%sParallelFilter[%s: %s | %d workers]  -- parallel\n",
			indent, o.Var, o.Pred.Expr, exec.Parallelism(o.Workers))
		explain(b, o.Child, depth+1)
	case *exec.ParallelMap:
		fmt.Fprintf(b, "%sParallelMap[%s: %s | %d workers]  -- parallel\n",
			indent, o.Var, o.Body.Expr, exec.Parallelism(o.Workers))
		explain(b, o.Child, depth+1)
	case *exec.SetProbeJoin:
		fmt.Fprintf(b, "%sSetProbeJoin[%v on %s ∈ .%s]\n", indent, o.Kind, o.RKey.Expr, o.Attr)
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	case *exec.SortMergeJoin:
		fmt.Fprintf(b, "%sSortMergeJoin[%v on %s = %s]\n", indent, o.Kind, o.LKey.Expr, o.RKey.Expr)
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	case *exec.NLJoin:
		fmt.Fprintf(b, "%sNLJoin[%v on %s]\n", indent, o.Kind, o.Pred.Expr)
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	case *exec.PNHL:
		fmt.Fprintf(b, "%sPNHL[.%s with budget %d rows]\n", indent, o.Attr, o.BudgetRows)
		explain(b, o.L, depth+1)
		explain(b, o.R, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, op)
	}
}
