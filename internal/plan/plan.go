// Package plan lowers logical ADL expressions to physical operator trees.
// The planner realizes the paper's motivation: once the rewriter has
// produced join operators, "the optimizer may choose from a number of
// different join processing strategies" (§5.1). With collected statistics
// (storage.Analyze → Config.Statistics) the planner is a two-phase
// optimizer: phase 1 decomposes chains of inner joins into a join-graph IR
// (joingraph.go) and phase 2 enumerates join orders over it — DPsize over
// connected subgraphs, bushy trees included, with a greedy left-deep
// fallback past Config.MaxDPRelations (enumerate.go). Each chosen edge is
// handed to cost-based physical selection: every applicable physical join
// operator is priced by the model in cost.go — including build/probe side
// swapping for inner equi-joins — and the cheapest wins. Without statistics
// the planner falls back to the original rule-based single-pass selection:
// equi-predicates select hash joins, membership-in-attribute predicates
// select the set-probe join (the single-segment PNHL core), materialize
// becomes the pointer-based assembly, everything else nested loops — with a
// size threshold toggling the parallel partitioned variants when base-table
// cardinalities are known.
package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/value"
)

// Stats supplies base-table cardinalities to the planner's threshold
// fallback. storage.Store satisfies it.
type Stats interface {
	Size(extent string) int
}

// DefaultParallelThreshold is the minimum combined input cardinality at
// which the threshold fallback prefers the parallel partitioned operators.
// Below it, goroutine and channel overhead dominates and the serial
// operators win. The cost model's cParallelStartup is calibrated to the same
// crossover.
const DefaultParallelThreshold = 2048

// Config parameterizes compilation. The zero Config plans exactly like the
// serial planner. Set Statistics (collected by storage.Store.Analyze) for
// cost-based operator selection; set only Stats for the legacy
// size-threshold heuristic.
type Config struct {
	// Statistics enables cost-based physical selection: every applicable
	// join strategy is priced and the cheapest chosen, and plans carry
	// per-node cardinality/cost estimates (see Plan.Explain). nil disables
	// the cost model.
	Statistics Statistics
	// Stats feeds table cardinalities to the size-threshold fallback used
	// when Statistics is nil; nil disables parallel operator selection
	// entirely in that mode.
	Stats Stats
	// Parallelism is the partition/worker count for parallel operators;
	// 0 means runtime.NumCPU.
	Parallelism int
	// ParallelThreshold is the minimum combined input cardinality for a
	// parallel plan under the threshold fallback; 0 means
	// DefaultParallelThreshold.
	ParallelThreshold int
	// MaxDPRelations caps exhaustive DPsize join-order enumeration; graphs
	// with more relations fall back to the greedy left-deep heuristic.
	// 0 means DefaultMaxDPRelations.
	MaxDPRelations int
	// NoReorder disables phase-2 join-order enumeration: multi-join queries
	// compile in the order the rewriter emitted them, with cost-based
	// physical selection still applied per node. It exists for A/B
	// comparisons (experiments.B10) and differential tests.
	NoReorder bool
	// NoIndexes disables index-aware planning — IndexScan leaves and the
	// index-nested-loop join — even when the statistics report secondary
	// indexes. It exists for A/B comparisons (experiments.B11) and
	// differential tests.
	NoIndexes bool
	// NoHistograms makes the estimator ignore collected histograms and fall
	// back to the pre-histogram model (1/NDV equality, defaultSelectivity
	// ranges, min-NDV join keys). It exists for A/B comparisons
	// (experiments.B12) and differential tests.
	NoHistograms bool
	// Vectorized enables batch execution: eligible fragments — extent
	// scans, conjunctive selections, single-key equi-joins (inner, semi,
	// anti), set-probe joins — compile to batch-at-a-time operators over
	// columnar extent projections with selection vectors (vectorize.go).
	// Default off: the scalar operators are the reference semantics the
	// differential harness compares against.
	Vectorized bool
	// BatchSize is the rows-per-batch of vectorized pipelines; 0 means
	// exec.DefaultBatchSize. Use SetBatchSize to validate externally
	// supplied values.
	BatchSize int
}

// SetBatchSize sets an explicit vectorized batch size, rejecting
// non-positive values — the validation entry point for externally supplied
// sizes (serving engine options, adlbench flags).
func (c *Config) SetBatchSize(n int) error {
	if n <= 0 {
		return fmt.Errorf("plan: batch size must be positive, got %d", n)
	}
	c.BatchSize = n
	return nil
}

// batchSize resolves the effective rows-per-batch.
func (c Config) batchSize() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return exec.DefaultBatchSize
}

// threshold resolves the effective parallel threshold.
func (c Config) threshold() int {
	if c.ParallelThreshold > 0 {
		return c.ParallelThreshold
	}
	return DefaultParallelThreshold
}

// Plan is a compiled physical operator tree plus the optimizer's per-node
// estimates (present when the Config carried Statistics), and — once an
// instrumented execution has committed — the observed row counts runtime
// feedback compares them against (feedback.go).
type Plan struct {
	Root exec.Operator

	est map[exec.Operator]Estimate
	feedbackState
}

// Estimate returns the optimizer's annotation for a node of this plan.
func (p *Plan) Estimate(op exec.Operator) (Estimate, bool) {
	e, ok := p.est[op]
	return e, ok
}

// Explain renders the plan tree with cost annotations where available, and
// observed per-execution row counts once instrumented executions have run.
func (p *Plan) Explain() string { return explainTree(p.Root, p.est, p.Actual) }

// Compile builds a physical operator tree with the default (serial)
// configuration.
func Compile(e adl.Expr) exec.Operator { return Config{}.Compile(e) }

// Compile builds a physical operator tree for a (set-valued) ADL expression.
func (c Config) Compile(e adl.Expr) exec.Operator { return c.Plan(e).Root }

// Plan compiles a (set-valued) ADL expression into an annotated plan.
func (c Config) Plan(e adl.Expr) *Plan {
	p := &planner{cfg: c, card: newEstimator(c), est: map[exec.Operator]Estimate{}}
	root, _ := p.compile(e)
	return &Plan{Root: root, est: p.est}
}

// Run compiles and executes a set-valued expression.
func Run(e adl.Expr, db eval.DB) (*value.Set, error) {
	op := Compile(e)
	return exec.Collect(op, &exec.Ctx{DB: db})
}

// planner carries one compilation's state: the configuration, the shared
// cardinality estimator (estimator.go), the estimates accumulated for the
// annotated plan, and the sequence for intermediate join variables minted
// during join-order recomposition.
type planner struct {
	cfg        Config
	card       estimator
	est        map[exec.Operator]Estimate
	joinVarSeq int
}

// statsMode reports whether cost-based selection is active.
func (p *planner) statsMode() bool { return p.cfg.Statistics != nil }

// record stores a node's annotation when the model produced one.
func (p *planner) record(op exec.Operator, e nodeEst) {
	if e.known {
		p.est[op] = e.estimate()
	}
}

// compile lowers one expression, returning the operator and its estimate
// (unknownEst outside stats mode or for shapes the model cannot see
// through).
func (p *planner) compile(e adl.Expr) (exec.Operator, nodeEst) {
	switch n := e.(type) {
	case *adl.Table:
		op := &exec.Scan{Table: n.Name}
		if p.statsMode() {
			if rows := p.cfg.Statistics.RowCount(n.Name); rows >= 0 {
				est := nodeEst{rows: float64(rows), known: true,
					extent: n.Name, cost: float64(rows) * cRow}
				p.record(op, est)
				return op, est
			}
		}
		return op, unknownEst

	case *adl.Select:
		if op, est, ok := p.tryVecSelect(n); ok {
			return op, est
		}
		if op, est, ok := p.tryIndexSelect(n); ok {
			return op, est
		}
		child, ce := p.compile(n.Src)
		pred := exec.NewScalar(n.Pred, n.Var)
		if p.statsMode() && ce.known {
			return p.chooseScalarOp(ce, ce.rows*p.card.selectivity(n.Pred, n.Var, ce.extent), ce.extent,
				func() exec.Operator {
					return &exec.Filter{Child: child, Var: n.Var, Pred: pred}
				},
				func() exec.Operator {
					return &exec.ParallelFilter{Child: child, Var: n.Var, Pred: pred,
						Workers: p.cfg.Parallelism}
				})
		}
		if p.cfg.parallelWorthwhile(p.cfg.card(n.Src)) {
			return &exec.ParallelFilter{Child: child, Var: n.Var, Pred: pred,
				Workers: p.cfg.Parallelism}, unknownEst
		}
		return &exec.Filter{Child: child, Var: n.Var, Pred: pred}, unknownEst

	case *adl.Map:
		child, ce := p.compile(n.Src)
		body := exec.NewScalar(n.Body, n.Var)
		if p.statsMode() && ce.known {
			// The body may reshape rows, so the origin extent is dropped.
			return p.chooseScalarOp(ce, ce.rows, "",
				func() exec.Operator {
					return &exec.MapOp{Child: child, Var: n.Var, Body: body}
				},
				func() exec.Operator {
					return &exec.ParallelMap{Child: child, Var: n.Var, Body: body,
						Workers: p.cfg.Parallelism}
				})
		}
		if p.cfg.parallelWorthwhile(p.cfg.card(n.Src)) {
			return &exec.ParallelMap{Child: child, Var: n.Var, Body: body,
				Workers: p.cfg.Parallelism}, unknownEst
		}
		return &exec.MapOp{Child: child, Var: n.Var, Body: body}, unknownEst

	case *adl.Project:
		if op, est, ok := p.tryVecProject(n); ok {
			return op, est
		}
		child, ce := p.compile(n.X)
		op := &exec.ProjectOp{Child: child, Attrs: n.Attrs}
		est := ce.withOwn(ce.rows, ce.rows*cRow)
		p.record(op, est)
		return op, est

	case *adl.Unnest:
		child, ce := p.compile(n.X)
		op := &exec.UnnestOp{Child: child, Attr: n.Attr}
		rows := ce.rows * p.card.avgSetSize(ce, n.Attr)
		est := ce.withOwn(rows, ce.rows*cRow+rows*cRow)
		est.extent = ""
		p.record(op, est)
		return op, est

	case *adl.Nest:
		child, ce := p.compile(n.X)
		op := &exec.NestOp{Child: child, Attrs: n.Attrs, As: n.As}
		est := ce.withOwn(ce.rows/2, ce.rows*cHashBuild)
		est.extent = ""
		p.record(op, est)
		return op, est

	case *adl.Flatten:
		child, ce := p.compile(n.X)
		op := &exec.FlattenOp{Child: child}
		est := ce.withOwn(ce.rows*defaultSetSize, ce.rows*cRow*defaultSetSize)
		est.extent = ""
		p.record(op, est)
		return op, est

	case *adl.Materialize:
		child, ce := p.compile(n.X)
		op := &exec.Assembly{Child: child, Attr: n.Attr, As: n.As}
		est := ce.withOwn(ce.rows, ce.rows*cEval)
		p.record(op, est)
		return op, est

	case *adl.Rename:
		child, ce := p.compile(n.X)
		op := &exec.RenameOp{Child: child, From: n.From, To: n.To}
		est := ce.withOwn(ce.rows, ce.rows*cRow)
		est.extent = ""
		p.record(op, est)
		return op, est

	case *adl.Divide:
		l, _ := p.compile(n.L)
		r, _ := p.compile(n.R)
		return &exec.DivideOp{L: l, R: r}, unknownEst

	case *adl.Let:
		child, ce := p.compile(n.Body)
		op := &exec.LetOp{Var: n.Var, Val: n.Val, Child: child}
		p.record(op, ce)
		return op, ce

	case *adl.Join:
		// Multi-join chains go through the two-phase optimizer when
		// statistics are available: decompose to a join graph, enumerate
		// orders, rebuild the cheapest. Ineligible shapes (and planning
		// without statistics) keep the rewriter's order.
		if op, est, ok := p.tryReorder(n); ok {
			return op, est
		}
		return p.compileJoin(n)
	}
	// Fallback: evaluate the fragment with the reference interpreter.
	return &exec.ExprScan{Expr: e}, unknownEst
}

// chooseScalarOp prices a σ/α over a known-size child serially versus with
// its worker-pool variant, builds the cheaper one, and records its estimate
// (outRows output rows, origin extent as given).
func (p *planner) chooseScalarOp(ce nodeEst, outRows float64, extent string,
	mkSerial, mkPool func() exec.Operator) (exec.Operator, nodeEst) {
	own, mk := ce.rows*cEval, mkSerial
	if pool := costParallelPool(ce.rows, exec.Parallelism(p.cfg.Parallelism)); pool < own {
		own, mk = pool, mkPool
	}
	op := mk()
	est := nodeEst{rows: outRows, known: true, extent: extent,
		cost: ce.cost + own + outRows*cRow}
	p.record(op, est)
	return op, est
}

// withOwn derives a child's estimate for a row-transforming parent: new row
// count, extent preserved, own cost added. Unknown stays unknown.
func (e nodeEst) withOwn(rows, own float64) nodeEst {
	if !e.known {
		return unknownEst
	}
	return nodeEst{rows: rows, known: true, extent: e.extent, cost: e.cost + own}
}

// parallelWorthwhile reports whether an operator over an estimated input
// cardinality should use its parallel variant (threshold fallback).
func (c Config) parallelWorthwhile(card int) bool {
	return c.Stats != nil && card >= c.threshold()
}

// card estimates the cardinality of a set-valued expression from base-table
// sizes for the threshold fallback. Row-preserving and row-filtering
// operators inherit their source's estimate (an upper bound); shapes the
// model cannot see through estimate -1, which never crosses the threshold —
// unknown sizes stay serial.
func (c Config) card(e adl.Expr) int {
	if c.Stats == nil {
		return -1
	}
	switch n := e.(type) {
	case *adl.Table:
		return c.Stats.Size(n.Name)
	case *adl.Select:
		return c.card(n.Src)
	case *adl.Map:
		return c.card(n.Src)
	case *adl.Project:
		return c.card(n.X)
	case *adl.Rename:
		return c.card(n.X)
	case *adl.Materialize:
		return c.card(n.X)
	case *adl.Nest:
		return c.card(n.X)
	case *adl.Unnest:
		return c.card(n.X)
	case *adl.Let:
		return c.card(n.Body)
	case *adl.Join:
		// Filtering kinds return a subset of the left operand; inner/outer
		// and nestjoin are dominated by their probe side for thresholding.
		return c.card(n.L)
	}
	return -1
}

// setProbeShape recognizes the membership-in-attribute predicate shape:
// key(y) ∈ x.attr as the sole conjunct (the paper's p[pid] ∈ s.parts), for
// the filtering/grouping kinds. It returns the attribute and the right-key
// expression.
func setProbeShape(j *adl.Join, cs []adl.Expr) (attr string, rkey adl.Expr, ok bool) {
	if len(cs) != 1 || (j.Kind != adl.Semi && j.Kind != adl.Anti && j.Kind != adl.NestJ) {
		return "", nil, false
	}
	cmp, isCmp := cs[0].(*adl.Cmp)
	if !isCmp || cmp.Op != adl.In {
		return "", nil, false
	}
	fa, isField := cmp.R.(*adl.Field)
	if !isField {
		return "", nil, false
	}
	v, isVar := fa.X.(*adl.Var)
	if !isVar || v.Name != j.LVar || adl.HasFree(cmp.L, j.LVar) {
		return "", nil, false
	}
	return fa.Name, cmp.L, true
}

// splitEquiKeys partitions the conjuncts into equi-key pairs f(x) = g(y) and
// a residual.
func splitEquiKeys(cs []adl.Expr, j *adl.Join) (lkeys, rkeys, residual []adl.Expr) {
	for _, c := range cs {
		cmp, ok := c.(*adl.Cmp)
		if !ok || cmp.Op != adl.Eq {
			residual = append(residual, c)
			continue
		}
		lSide, rSide := cmp.L, cmp.R
		if adl.HasFree(lSide, j.RVar) || adl.HasFree(rSide, j.LVar) {
			lSide, rSide = rSide, lSide
		}
		if adl.HasFree(lSide, j.RVar) || adl.HasFree(rSide, j.LVar) {
			residual = append(residual, c)
			continue
		}
		// A usable key pair references each side's variable (constant-only
		// sides are legal but belong in the residual).
		if !adl.HasFree(lSide, j.LVar) || !adl.HasFree(rSide, j.RVar) {
			residual = append(residual, c)
			continue
		}
		lkeys = append(lkeys, lSide)
		rkeys = append(rkeys, rSide)
	}
	return lkeys, rkeys, residual
}

// joinExtent is the base extent of a join's output rows: the filtering and
// grouping kinds keep left rows (attribute statistics stay valid), the
// widening kinds concatenate and lose the mapping.
func joinExtent(kind adl.JoinKind, le nodeEst) string {
	switch kind {
	case adl.Semi, adl.Anti, adl.NestJ:
		return le.extent
	}
	return ""
}

// compileJoin chooses a join implementation — cost-based under Statistics,
// by predicate shape and the size threshold otherwise.
func (p *planner) compileJoin(j *adl.Join) (exec.Operator, nodeEst) {
	if op, est, ok := p.tryVecJoin(j); ok {
		return op, est
	}
	l, le := p.compile(j.L)
	r, re := p.compile(j.R)
	var rfun *exec.Scalar
	if j.RFun != nil {
		s := exec.NewScalar(j.RFun, j.LVar, j.RVar)
		rfun = &s
	}

	cs := conjuncts(j.On)
	costed := p.statsMode() && le.known && re.known

	if attr, rkeyExpr, ok := setProbeShape(j, cs); ok {
		sp := &exec.SetProbeJoin{
			Kind: j.Kind, L: l, R: r,
			Attr: attr,
			RKey: exec.NewScalar(rkeyExpr, j.RVar),
			As:   j.As, RFun: rfun,
		}
		if !costed {
			return sp, unknownEst
		}
		// Price the single-segment PNHL core against the nested loop.
		avg := p.card.avgSetSize(le, attr)
		inner := finite(le.rows * re.rows / math.Max(1, math.Max(le.rows, re.rows)))
		out := joinOutRows(j.Kind, le.rows, re.rows, inner, le.rows, re.rows)
		spOwn := costPNHL(le.rows, avg, re.rows, out, 1)
		nlOwn := costNL(le.rows, re.rows, out)
		child := le.cost + re.cost
		if nlOwn < spOwn {
			op := &exec.NLJoin{Kind: j.Kind, L: l, R: r, LVar: j.LVar, RVar: j.RVar,
				Pred: exec.NewScalar(j.On, j.LVar, j.RVar), As: j.As, RFun: rfun}
			est := nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
				cost: child + nlOwn, note: "nested loop priced cheaper"}
			p.record(op, est)
			return op, est
		}
		est := nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
			cost: child + spOwn}
		p.record(sp, est)
		return sp, est
	}

	lkeys, rkeys, residual := splitEquiKeys(cs, j)

	if len(lkeys) > 0 {
		var res *exec.Scalar
		if len(residual) > 0 {
			s := exec.NewScalar(adl.AndE(residual...), j.LVar, j.RVar)
			res = &s
		}
		if costed {
			return p.chooseEquiJoin(j, l, r, le, re, lkeys, rkeys, residual, res, rfun)
		}
		// Threshold fallback: large equi-key joins get the Grace-style
		// parallel partitioned variant; small ones stay serial, where
		// partitioning overhead would dominate.
		if lc, rc := p.cfg.card(j.L), p.cfg.card(j.R); p.cfg.Stats != nil &&
			lc >= 0 && rc >= 0 && lc+rc >= p.cfg.threshold() {
			return &exec.PartitionedHashJoin{
				Kind: j.Kind, L: l, R: r,
				LVar: j.LVar, RVar: j.RVar,
				LKey:     keyScalar(lkeys, j.LVar),
				RKey:     keyScalar(rkeys, j.RVar),
				Residual: res,
				As:       j.As, RFun: rfun,
				Partitions: p.cfg.Parallelism,
			}, unknownEst
		}
		return &exec.HashJoin{
			Kind: j.Kind, L: l, R: r,
			LVar: j.LVar, RVar: j.RVar,
			LKey:     keyScalar(lkeys, j.LVar),
			RKey:     keyScalar(rkeys, j.RVar),
			Residual: res,
			As:       j.As, RFun: rfun,
		}, unknownEst
	}

	nl := &exec.NLJoin{
		Kind: j.Kind, L: l, R: r,
		LVar: j.LVar, RVar: j.RVar,
		Pred: exec.NewScalar(j.On, j.LVar, j.RVar),
		As:   j.As, RFun: rfun,
	}
	if costed {
		// No usable equi key: the estimator prices the theta predicate
		// conjunct by conjunct (formerly a flat cross-product ·1/3 guess).
		sel := p.card.joinPredSelectivity(cs, j.LVar, le, j.RVar, re)
		out := le.rows * re.rows * sel
		if j.Kind == adl.Semi || j.Kind == adl.Anti || j.Kind == adl.NestJ {
			out = joinOutRows(j.Kind, le.rows, re.rows, out, le.rows, re.rows)
		}
		est := nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
			cost: le.cost + re.cost + costNL(le.rows, re.rows, out)}
		p.record(nl, est)
		return nl, est
	}
	return nl, unknownEst
}

// chooseEquiJoin prices every applicable physical implementation of an
// equi-key join and returns the cheapest. Inner joins with no right-tuple
// function may swap build and probe sides: tuple equality is
// attribute-order-insensitive, so exchanging the operands (and key/variable
// roles) preserves the result set.
func (p *planner) chooseEquiJoin(j *adl.Join, l, r exec.Operator, le, re nodeEst,
	lkeys, rkeys, residual []adl.Expr, res *exec.Scalar, rfun *exec.Scalar) (exec.Operator, nodeEst) {

	ndvL := p.card.keyNDV(le, lkeys, j.LVar)
	ndvR := p.card.keyNDV(re, rkeys, j.RVar)
	// The inner-join output estimate: the containment rule for composite
	// keys, histogram intersection for a single key pair when both sides
	// carry histograms.
	eqSel := 1 / math.Max(1, math.Max(ndvL, ndvR))
	if len(lkeys) == 1 {
		eqSel = p.card.joinEqSelectivity(le, lkeys[0], j.LVar, re, rkeys[0], j.RVar)
	}
	inner := finite(le.rows * re.rows * eqSel)
	out := joinOutRows(j.Kind, le.rows, re.rows, inner, ndvL, ndvR)
	matches := inner
	residMatches := 0.0
	if len(residual) > 0 {
		residMatches = matches
	}
	par := exec.Parallelism(p.cfg.Parallelism)
	swappable := j.Kind == adl.Inner && j.RFun == nil

	// A swapped residual binds the variables in exchanged positions.
	var resSwapped *exec.Scalar
	if len(residual) > 0 {
		s := exec.NewScalar(adl.AndE(residual...), j.RVar, j.LVar)
		resSwapped = &s
	}

	// child is the children's cumulative cost a candidate actually pays:
	// scan-based strategies drain both compiled operands, the index probes
	// drop the inner scan entirely — only the outer side's cost is real.
	type candidate struct {
		build func() exec.Operator
		own   float64
		child float64
		note  string
	}
	bothChildren := le.cost + re.cost
	cands := []candidate{
		{
			build: func() exec.Operator {
				return &exec.HashJoin{Kind: j.Kind, L: l, R: r,
					LVar: j.LVar, RVar: j.RVar,
					LKey: keyScalar(lkeys, j.LVar), RKey: keyScalar(rkeys, j.RVar),
					Residual: res, As: j.As, RFun: rfun}
			},
			own: costHash(re.rows, le.rows, out, residMatches), child: bothChildren,
		},
		{
			build: func() exec.Operator {
				return &exec.PartitionedHashJoin{Kind: j.Kind, L: l, R: r,
					LVar: j.LVar, RVar: j.RVar,
					LKey: keyScalar(lkeys, j.LVar), RKey: keyScalar(rkeys, j.RVar),
					Residual: res, As: j.As, RFun: rfun,
					Partitions: p.cfg.Parallelism}
			},
			own: costPartitionedHash(re.rows, le.rows, out, residMatches, par), child: bothChildren,
		},
		{
			build: func() exec.Operator {
				return &exec.NLJoin{Kind: j.Kind, L: l, R: r,
					LVar: j.LVar, RVar: j.RVar,
					Pred: exec.NewScalar(j.On, j.LVar, j.RVar),
					As:   j.As, RFun: rfun}
			},
			own: costNL(le.rows, re.rows, out), child: bothChildren,
		},
	}
	if swappable {
		cands = append(cands,
			candidate{
				build: func() exec.Operator {
					return &exec.HashJoin{Kind: j.Kind, L: r, R: l,
						LVar: j.RVar, RVar: j.LVar,
						LKey: keyScalar(rkeys, j.RVar), RKey: keyScalar(lkeys, j.LVar),
						Residual: resSwapped, As: j.As}
				},
				own:   costHash(le.rows, re.rows, out, residMatches),
				child: bothChildren,
				note:  "build side swapped",
			},
			candidate{
				build: func() exec.Operator {
					return &exec.PartitionedHashJoin{Kind: j.Kind, L: r, R: l,
						LVar: j.RVar, RVar: j.LVar,
						LKey: keyScalar(rkeys, j.RVar), RKey: keyScalar(lkeys, j.LVar),
						Residual: resSwapped, As: j.As,
						Partitions: p.cfg.Parallelism}
				},
				own:   costPartitionedHash(le.rows, re.rows, out, residMatches, par),
				child: bothChildren,
				note:  "build side swapped",
			})
	}
	if (j.Kind == adl.Inner || j.Kind == adl.NestJ) && len(residual) == 0 {
		cands = append(cands, candidate{
			build: func() exec.Operator {
				return &exec.SortMergeJoin{Kind: j.Kind, L: l, R: r,
					LVar: j.LVar, RVar: j.RVar,
					LKey: keyScalar(lkeys, j.LVar), RKey: keyScalar(rkeys, j.RVar),
					As: j.As, RFun: rfun}
			},
			own: costSortMerge(le.rows, re.rows, out), child: bothChildren,
		})
	}

	// Index-nested-loop candidates: probe the inner extent's secondary index
	// per outer row instead of scanning and hashing the whole inner side.
	// The outer join needs the inner schema for null padding, which a probe
	// cannot supply, so it stays with the scan-based family.
	idxMatches := func(extent, attr string) float64 {
		ndv := float64(p.cfg.Statistics.DistinctValues(extent, attr))
		return finite(le.rows * re.rows / clamp(ndv, 1, 1e18))
	}
	if j.Kind != adl.Outer {
		if attr, lkey, residExprs, ok := p.indexNLCandidate(r, re.extent, j.RVar, rkeys, lkeys, residual); ok {
			m := idxMatches(re.extent, attr)
			residM := 0.0
			var res2 *exec.Scalar
			if len(residExprs) > 0 {
				s := exec.NewScalar(adl.AndE(residExprs...), j.LVar, j.RVar)
				res2, residM = &s, m
			}
			cands = append(cands, candidate{
				build: func() exec.Operator {
					return &exec.IndexNLJoin{Kind: j.Kind, L: l,
						Table: re.extent, Attr: attr,
						LVar: j.LVar, RVar: j.RVar,
						LKey: exec.NewScalar(lkey, j.LVar), Residual: res2,
						As: j.As, RFun: rfun}
				},
				own:   costIndexNL(le.rows, m, residM, out),
				child: le.cost,
				note:  "index probe into " + re.extent + "." + attr,
			})
		}
	}
	if swappable {
		if attr, rkey, residExprs, ok := p.indexNLCandidate(l, le.extent, j.LVar, lkeys, rkeys, residual); ok {
			m := idxMatches(le.extent, attr)
			residM := 0.0
			var res2 *exec.Scalar
			if len(residExprs) > 0 {
				s := exec.NewScalar(adl.AndE(residExprs...), j.RVar, j.LVar)
				res2, residM = &s, m
			}
			cands = append(cands, candidate{
				build: func() exec.Operator {
					return &exec.IndexNLJoin{Kind: j.Kind, L: r,
						Table: le.extent, Attr: attr,
						LVar: j.RVar, RVar: j.LVar,
						LKey: exec.NewScalar(rkey, j.RVar), Residual: res2}
				},
				own:   costIndexNL(re.rows, m, residM, out),
				child: re.cost,
				note:  "index probe into " + le.extent + "." + attr + ", outer side swapped",
			})
		}
	}

	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].child+cands[i].own < cands[best].child+cands[best].own {
			best = i
		}
	}
	op := cands[best].build()
	est := nodeEst{rows: out, known: true, extent: joinExtent(j.Kind, le),
		cost: cands[best].child + cands[best].own, note: cands[best].note}
	p.record(op, est)
	return op, est
}

// keyScalar packs key expressions into a composite tuple key.
func keyScalar(keys []adl.Expr, v string) exec.Scalar {
	if len(keys) == 1 {
		return exec.NewScalar(keys[0], v)
	}
	t := &adl.TupleExpr{}
	for i, k := range keys {
		t.Names = append(t.Names, fmt.Sprintf("k%d", i))
		t.Elems = append(t.Elems, k)
	}
	return exec.NewScalar(t, v)
}

func conjuncts(e adl.Expr) []adl.Expr { return adl.Conjuncts(e) }

// Explain renders a physical plan tree without annotations.
func Explain(op exec.Operator) string { return explainTree(op, nil, nil) }

func explainTree(op exec.Operator, est map[exec.Operator]Estimate, act func(exec.Operator) (int64, bool)) string {
	var b strings.Builder
	explain(&b, op, 0, est, act)
	return b.String()
}

func explain(b *strings.Builder, node any, depth int, est map[exec.Operator]Estimate, act func(exec.Operator) (int64, bool)) {
	line, children := describe(node)
	if op, isOp := node.(exec.Operator); isOp {
		if e, ok := est[op]; ok {
			line += fmt.Sprintf("  (rows≈%d cost≈%d)", e.Rows, int64(e.Cost+0.5))
			if act != nil {
				if a, ok := act(op); ok {
					line += fmt.Sprintf(" (actual=%d)", a)
				}
			}
			if e.Note != "" {
				line += "  -- " + e.Note
			}
		}
	}
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), line)
	for _, c := range children {
		explain(b, c, depth+1, est, act)
	}
}

// describe renders one node's line (sans indentation) and lists its
// children. Nodes are either scalar Operators or batch VecOps — the
// vectorized pipeline hangs under a VecAdapter bridge.
func describe(node any) (string, []any) {
	switch o := node.(type) {
	case *exec.VecAdapter:
		if len(o.Project) > 0 {
			return fmt.Sprintf("VecAdapter[π %s]  -- vectorized→scalar bridge",
				strings.Join(o.Project, ", ")), []any{o.Src}
		}
		return "VecAdapter  -- vectorized→scalar bridge", []any{o.Src}
	case *exec.VecScan:
		batch := o.Batch
		if batch <= 0 {
			batch = exec.DefaultBatchSize
		}
		cols := "∅"
		if len(o.Attrs) > 0 {
			cols = strings.Join(o.Attrs, ", ")
		}
		return fmt.Sprintf("VecScan(%s | batch %d | cols %s)  -- columnar projection",
			o.Extent, batch, cols), nil
	case *exec.VecFilter:
		typed := 0
		parts := make([]string, len(o.Kernels))
		for i, k := range o.Kernels {
			parts[i] = fmt.Sprint(k.Pred.Expr)
			if k.Attr != "" {
				typed++
			}
		}
		return fmt.Sprintf("VecFilter[%s: %s | %d/%d typed kernels]  -- selection vector",
			o.Var, strings.Join(parts, " ∧ "), typed, len(o.Kernels)), []any{o.Src}
	case *exec.VecExchange:
		return fmt.Sprintf("VecExchange(workers %d | morsel %d)  -- parallel morsel scan",
			exec.Parallelism(o.Workers), o.Morsel), []any{o.Src}
	case *exec.VecSemiJoin:
		kind := "semi"
		if o.Anti {
			kind = "anti"
		}
		return fmt.Sprintf("VecHashJoin[%s on .%s = %s%s]  -- vectorized",
			kind, o.LAttr, o.RKey.Expr, residualNote(o.Residual)), []any{o.L, o.R}
	case *exec.VecInnerJoin:
		kind := "inner"
		if o.Outer {
			kind = "outer"
		}
		return fmt.Sprintf("VecHashJoin[%s on .%s = %s%s]  -- vectorized",
			kind, o.LAttr, o.RKey.Expr, residualNote(o.Residual)), []any{o.L, o.R}
	case *exec.VecHashGroupJoin:
		return fmt.Sprintf("VecHashGroupJoin[nestjoin as %s on .%s = %s%s]  -- vectorized",
			o.As, o.LAttr, o.RKey.Expr, residualNote(o.Residual)), []any{o.L, o.R}
	case *exec.VecPartitionedHashJoin:
		return fmt.Sprintf("VecPartitionedHashJoin[%v on .%s = %s%s | workers %d]  -- parallel vectorized",
			o.Kind, o.LAttr, o.RKey.Expr, residualNote(o.Residual),
			exec.Parallelism(o.Partitions)), []any{o.L, o.R}
	case *exec.VecNLJoin:
		return fmt.Sprintf("VecNLJoin[%v on %s]  -- vectorized",
			o.Kind, o.Pred.Expr), []any{o.L, o.R}
	case *exec.VecSetProbeJoin:
		kind := "semi"
		if o.Anti {
			kind = "anti"
		}
		return fmt.Sprintf("VecSetProbeJoin[%s on %s ∈ .%s]  -- vectorized",
			kind, o.RKey.Expr, o.Attr), []any{o.L, o.R}
	case *exec.VecSetGroupJoin:
		return fmt.Sprintf("VecSetGroupJoin[nestjoin as %s on %s ∈ .%s]  -- vectorized",
			o.As, o.RKey.Expr, o.Attr), []any{o.L, o.R}
	case *exec.VecPNHL:
		return fmt.Sprintf("VecPNHL[on .%s | budget %d rows]  -- vectorized segmented",
			o.Attr, o.BudgetRows), []any{o.L, o.R}
	}
	switch o := node.(type) {
	case *exec.Scan:
		return fmt.Sprintf("Scan(%s)", o.Table), nil
	case *exec.IndexScan:
		if o.Eq != nil {
			return fmt.Sprintf("IndexScan(%s.%s = %s)  -- index access path",
				o.Table, o.Attr, o.Eq.Expr), nil
		}
		lo, hi := "-∞", "+∞"
		lob, hib := "(", ")"
		if o.Lo != nil {
			lo = fmt.Sprint(o.Lo.Expr)
			if o.LoIncl {
				lob = "["
			}
		}
		if o.Hi != nil {
			hi = fmt.Sprint(o.Hi.Expr)
			if o.HiIncl {
				hib = "]"
			}
		}
		return fmt.Sprintf("IndexScan(%s.%s in %s%s, %s%s)  -- ordered index range",
			o.Table, o.Attr, lob, lo, hi, hib), nil
	case *exec.IndexNLJoin:
		return fmt.Sprintf("IndexNLJoin[%v on %s -> %s.%s]  -- index nested loop",
			o.Kind, o.LKey.Expr, o.Table, o.Attr), []any{o.L}
	case *exec.SetScan:
		return fmt.Sprintf("SetScan(%d elems)", o.Set.Len()), nil
	case *exec.ExprScan:
		return fmt.Sprintf("ExprScan(%s)  -- interpreter fallback", o.Expr), nil
	case *exec.Filter:
		return fmt.Sprintf("Filter[%s: %s]", o.Var, o.Pred.Expr), []any{o.Child}
	case *exec.MapOp:
		return fmt.Sprintf("Map[%s: %s]", o.Var, o.Body.Expr), []any{o.Child}
	case *exec.ProjectOp:
		return fmt.Sprintf("Project[%s]", strings.Join(o.Attrs, ", ")), []any{o.Child}
	case *exec.UnnestOp:
		return fmt.Sprintf("Unnest[%s]", o.Attr), []any{o.Child}
	case *exec.NestOp:
		return fmt.Sprintf("Nest[{%s} -> %s]", strings.Join(o.Attrs, ", "), o.As), []any{o.Child}
	case *exec.FlattenOp:
		return "Flatten", []any{o.Child}
	case *exec.Assembly:
		return fmt.Sprintf("Assembly[%s -> %s]  -- pointer-based materialize", o.Attr, o.As), []any{o.Child}
	case *exec.LetOp:
		return fmt.Sprintf("Let[%s = %s]  -- constant, evaluated once", o.Var, o.Val), []any{o.Child}
	case *exec.HashJoin:
		return fmt.Sprintf("HashJoin[%v on %s = %s]", o.Kind, o.LKey.Expr, o.RKey.Expr), []any{o.L, o.R}
	case *exec.PartitionedHashJoin:
		return fmt.Sprintf("PartitionedHashJoin[%v on %s = %s | %d partitions]  -- parallel",
			o.Kind, o.LKey.Expr, o.RKey.Expr, exec.Parallelism(o.Partitions)), []any{o.L, o.R}
	case *exec.ParallelFilter:
		return fmt.Sprintf("ParallelFilter[%s: %s | %d workers]  -- parallel",
			o.Var, o.Pred.Expr, exec.Parallelism(o.Workers)), []any{o.Child}
	case *exec.ParallelMap:
		return fmt.Sprintf("ParallelMap[%s: %s | %d workers]  -- parallel",
			o.Var, o.Body.Expr, exec.Parallelism(o.Workers)), []any{o.Child}
	case *exec.SetProbeJoin:
		return fmt.Sprintf("SetProbeJoin[%v on %s ∈ .%s]", o.Kind, o.RKey.Expr, o.Attr), []any{o.L, o.R}
	case *exec.SortMergeJoin:
		return fmt.Sprintf("SortMergeJoin[%v on %s = %s]", o.Kind, o.LKey.Expr, o.RKey.Expr), []any{o.L, o.R}
	case *exec.NLJoin:
		return fmt.Sprintf("NLJoin[%v on %s]", o.Kind, o.Pred.Expr), []any{o.L, o.R}
	case *exec.PNHL:
		return fmt.Sprintf("PNHL[.%s with budget %d rows]", o.Attr, o.BudgetRows), []any{o.L, o.R}
	}
	return fmt.Sprintf("%T", node), nil
}

// residualNote renders an optional residual predicate for a join line.
func residualNote(res *exec.Scalar) string {
	if res == nil {
		return ""
	}
	return fmt.Sprintf(" if %s", res.Expr)
}
