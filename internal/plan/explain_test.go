package plan

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/exec"
	"repro/internal/value"
)

func TestRunEndToEnd(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 6, Parts: 8, Seed: 3})
	got, err := Run(adl.Sel("p",
		adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART")), st)
	if err != nil {
		t.Fatal(err)
	}
	for _, el := range got.Elems() {
		if !value.Equal(el.(*value.Tuple).MustGet("color"), value.String("red")) {
			t.Errorf("Run returned non-red part: %v", el)
		}
	}
	if _, err := Run(adl.T("NOPE"), st); err == nil {
		t.Errorf("Run must surface execution errors")
	}
}

// TestExplainCoversEveryOperator drives Explain over one instance of each
// physical operator and checks each renders a recognizable line.
func TestExplainCoversEveryOperator(t *testing.T) {
	key := exec.NewScalar(adl.Dot(adl.V("x"), "a"), "x")
	rkey := exec.NewScalar(adl.Dot(adl.V("y"), "d"), "y")
	pred := exec.NewScalar(adl.CBool(true), "x", "y")
	scanL := func() exec.Operator { return &exec.Scan{Table: "L"} }
	scanR := func() exec.Operator { return &exec.Scan{Table: "R"} }
	cases := []struct {
		op   exec.Operator
		want string
	}{
		{scanL(), "Scan(L)"},
		{&exec.SetScan{Set: value.NewSet(value.Int(1))}, "SetScan(1 elems)"},
		{&exec.ExprScan{Expr: adl.T("L")}, "interpreter fallback"},
		{&exec.Filter{Child: scanL(), Var: "x", Pred: exec.NewScalar(adl.CBool(true), "x")}, "Filter[x"},
		{&exec.MapOp{Child: scanL(), Var: "x", Body: key}, "Map[x"},
		{&exec.ProjectOp{Child: scanL(), Attrs: []string{"a"}}, "Project[a]"},
		{&exec.UnnestOp{Child: scanL(), Attr: "c"}, "Unnest[c]"},
		{&exec.NestOp{Child: scanL(), Attrs: []string{"a"}, As: "g"}, "Nest[{a} -> g]"},
		{&exec.FlattenOp{Child: scanL()}, "Flatten"},
		{&exec.Assembly{Child: scanL(), Attr: "r", As: "o"}, "Assembly[r -> o]"},
		{&exec.RenameOp{Child: scanL(), From: "a", To: "b"}, "RenameOp"},
		{&exec.LetOp{Var: "v", Val: adl.T("R"), Child: scanL()}, "Let[v = R]"},
		{&exec.HashJoin{Kind: adl.Inner, L: scanL(), R: scanR(), LKey: key, RKey: rkey}, "HashJoin[⋈"},
		{&exec.SetProbeJoin{Kind: adl.Semi, L: scanL(), R: scanR(), Attr: "c", RKey: rkey}, "SetProbeJoin[⋉"},
		{&exec.SortMergeJoin{Kind: adl.Inner, L: scanL(), R: scanR(), LKey: key, RKey: rkey}, "SortMergeJoin[⋈"},
		{&exec.NLJoin{Kind: adl.Anti, L: scanL(), R: scanR(), Pred: pred}, "NLJoin[▷"},
		{&exec.PNHL{L: scanL(), R: scanR(), Attr: "c", ElemKey: key, BuildKey: rkey, BudgetRows: 7}, "PNHL[.c with budget 7"},
		{&exec.DivideOp{L: scanL(), R: scanR()}, "DivideOp"},
	}
	for _, c := range cases {
		out := Explain(c.op)
		if !strings.Contains(out, c.want) {
			t.Errorf("Explain(%T) = %q, want contains %q", c.op, out, c.want)
		}
	}
	// Children are rendered, indented.
	nested := Explain(&exec.Filter{Child: &exec.Scan{Table: "L"}, Var: "x",
		Pred: exec.NewScalar(adl.CBool(true), "x")})
	if !strings.Contains(nested, "  Scan(L)") {
		t.Errorf("child not indented:\n%s", nested)
	}
}
