// Package col provides columnar projections of extents for the batch
// executor: each referenced attribute is decoded once per extent into a
// typed slice (int64/float64/string/oid/set), so vectorized operators scan
// flat arrays instead of probing tuple attribute maps row by row.
//
// A projection keeps the original tuple rows alongside the decoded columns.
// The rows are what operators emit (results are always value.Value), and
// they are the fallback for anything the columnar fast paths cannot type: an
// attribute that is missing on some row, mixed-kind, or nested gets a Mixed
// column, and the operator evaluates those rows through the reference
// interpreter — same semantics, same errors, just slower.
package col

import "repro/internal/value"

// Kind classifies a decoded column.
type Kind uint8

// Column kinds. Mixed marks an attribute the decoder could not type
// uniformly (missing on some row, differing kinds, nulls, or nested tuples);
// operators must fall back to row-wise evaluation for it.
const (
	Mixed Kind = iota
	Bool
	Int
	Float
	Str
	Date
	OID
	Set
)

// Col is one decoded attribute across all rows of a projection. Exactly one
// backing slice is populated, chosen by Kind: Ints carries Int values,
// Date days, OID bits and Bool as 0/1; Floats, Strs and Sets carry their
// namesakes. A Mixed column has no backing.
type Col struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Sets   []*value.Set
}

// Proj is a columnar projection of one extent: the original rows (tuples, in
// extent order) plus the decoded columns for the attributes a pipeline
// reads. A Proj is immutable once built and safe to share across queries.
type Proj struct {
	Extent string
	Rows   []value.Value
	cols   map[string]*Col
}

// New builds a projection of rows, decoding the named attributes. Attributes
// that cannot be uniformly typed decode to Mixed columns; rows is retained,
// not copied.
func New(extent string, rows []value.Value, attrs []string) *Proj {
	p := &Proj{Extent: extent, Rows: rows, cols: make(map[string]*Col, len(attrs))}
	for _, a := range attrs {
		if _, dup := p.cols[a]; !dup {
			p.cols[a] = decode(rows, a)
		}
	}
	return p
}

// Len reports the number of rows.
func (p *Proj) Len() int { return len(p.Rows) }

// Col returns the decoded column for attr, or nil when attr was not
// requested at build time. Callers must treat a nil column like a Mixed one:
// evaluate row-wise.
func (p *Proj) Col(attr string) *Col { return p.cols[attr] }

// Attrs returns the decoded attribute names (order unspecified).
func (p *Proj) Attrs() []string {
	out := make([]string, 0, len(p.cols))
	for a := range p.cols {
		out = append(out, a)
	}
	return out
}

// kindOf maps a value kind to its column kind; tuples and nulls are not
// columnar.
func kindOf(v value.Value) Kind {
	switch v.Kind() {
	case value.KindBool:
		return Bool
	case value.KindInt:
		return Int
	case value.KindFloat:
		return Float
	case value.KindString:
		return Str
	case value.KindDate:
		return Date
	case value.KindOID:
		return OID
	case value.KindSet:
		return Set
	}
	return Mixed
}

// decode types one attribute across all rows, bailing to Mixed on the first
// row that breaks uniformity.
func decode(rows []value.Value, attr string) *Col {
	c := &Col{}
	for i, r := range rows {
		t, ok := r.(*value.Tuple)
		if !ok {
			return &Col{Kind: Mixed}
		}
		v, ok := t.Get(attr)
		if !ok {
			return &Col{Kind: Mixed}
		}
		k := kindOf(v)
		if k == Mixed {
			return &Col{Kind: Mixed}
		}
		if i == 0 {
			c.Kind = k
			switch k {
			case Int, Date, OID, Bool:
				c.Ints = make([]int64, 0, len(rows))
			case Float:
				c.Floats = make([]float64, 0, len(rows))
			case Str:
				c.Strs = make([]string, 0, len(rows))
			case Set:
				c.Sets = make([]*value.Set, 0, len(rows))
			}
		} else if k != c.Kind {
			return &Col{Kind: Mixed}
		}
		switch k {
		case Int:
			c.Ints = append(c.Ints, int64(v.(value.Int)))
		case Date:
			c.Ints = append(c.Ints, int64(v.(value.Date)))
		case OID:
			c.Ints = append(c.Ints, int64(v.(value.OID)))
		case Bool:
			if v.(value.Bool) {
				c.Ints = append(c.Ints, 1)
			} else {
				c.Ints = append(c.Ints, 0)
			}
		case Float:
			c.Floats = append(c.Floats, float64(v.(value.Float)))
		case Str:
			c.Strs = append(c.Strs, string(v.(value.String)))
		case Set:
			c.Sets = append(c.Sets, v.(*value.Set))
		}
	}
	return c
}
