package col

import (
	"testing"

	"repro/internal/value"
)

func rowsOf(ts ...*value.Tuple) []value.Value {
	out := make([]value.Value, len(ts))
	for i, t := range ts {
		out[i] = t
	}
	return out
}

func TestDecodeTypedColumns(t *testing.T) {
	rows := rowsOf(
		value.NewTuple("i", value.Int(1), "f", value.Float(1.5), "s", value.String("a"),
			"d", value.Date(940101), "o", value.OID(7), "b", value.Bool(true),
			"set", value.NewSet(value.Int(1))),
		value.NewTuple("i", value.Int(-2), "f", value.Float(0), "s", value.String(""),
			"d", value.Date(940102), "o", value.OID(9), "b", value.Bool(false),
			"set", value.EmptySet()),
	)
	p := New("E", rows, []string{"i", "f", "s", "d", "o", "b", "set"})
	if p.Len() != 2 || p.Extent != "E" {
		t.Fatalf("proj shape: len=%d extent=%q", p.Len(), p.Extent)
	}
	cases := []struct {
		attr string
		kind Kind
	}{{"i", Int}, {"f", Float}, {"s", Str}, {"d", Date}, {"o", OID}, {"b", Bool}, {"set", Set}}
	for _, c := range cases {
		cl := p.Col(c.attr)
		if cl == nil || cl.Kind != c.kind {
			t.Fatalf("col %q: got %+v, want kind %d", c.attr, cl, c.kind)
		}
	}
	if got := p.Col("i").Ints; got[0] != 1 || got[1] != -2 {
		t.Errorf("int column = %v", got)
	}
	if got := p.Col("o").Ints; got[0] != 7 || got[1] != 9 {
		t.Errorf("oid column = %v", got)
	}
	if got := p.Col("b").Ints; got[0] != 1 || got[1] != 0 {
		t.Errorf("bool column = %v", got)
	}
	if got := p.Col("s").Strs; got[0] != "a" || got[1] != "" {
		t.Errorf("string column = %v", got)
	}
	if got := p.Col("set").Sets; got[0].Len() != 1 || got[1].Len() != 0 {
		t.Errorf("set column = %v", got)
	}
	if len(p.Attrs()) != 7 {
		t.Errorf("Attrs() = %v", p.Attrs())
	}
}

func TestDecodeMixedFallbacks(t *testing.T) {
	mixedKind := rowsOf(
		value.NewTuple("a", value.Int(1)),
		value.NewTuple("a", value.Float(2)),
	)
	missing := rowsOf(
		value.NewTuple("a", value.Int(1)),
		value.NewTuple("b", value.Int(2)),
	)
	nested := rowsOf(value.NewTuple("a", value.NewTuple("x", value.Int(1))))
	nullValued := rowsOf(value.NewTuple("a", value.Null{}))
	nonTuple := []value.Value{value.Int(3)}
	for name, rows := range map[string][]value.Value{
		"mixed kinds": mixedKind, "missing attr": missing,
		"nested tuple": nested, "null": nullValued, "non-tuple row": nonTuple,
	} {
		p := New("E", rows, []string{"a"})
		if c := p.Col("a"); c == nil || c.Kind != Mixed {
			t.Errorf("%s: got %+v, want Mixed", name, c)
		}
	}
	// Unrequested attribute: nil, caller treats as Mixed.
	if c := New("E", mixedKind, nil).Col("a"); c != nil {
		t.Errorf("unrequested attr: got %+v, want nil", c)
	}
	// Empty extent decodes to Mixed (no rows to type).
	if c := New("E", nil, []string{"a"}).Col("a"); c == nil || c.Kind != Mixed {
		t.Errorf("empty extent: got %+v, want Mixed", c)
	}
}
