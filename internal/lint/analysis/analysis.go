// Package analysis is an offline-compatible shim of the
// golang.org/x/tools/go/analysis API surface the adllint suite needs:
// Analyzer, Pass, Diagnostic, and a package loader built on the standard
// library only (go/parser + go/types, with dependencies imported from the
// compiler's export data via `go list -export`).
//
// The repository's build environment is fully offline — go.mod deliberately
// has no module requirements — so the real x/tools module cannot be pinned.
// The shim keeps the analyzer code shaped exactly like x/tools analyzers
// (same Run(*Pass) contract, same Reportf idiom, same analysistest-style
// `// want` testdata), so porting the suite onto the real driver is a matter
// of swapping this import if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name the driver and the
// //lint:adllint suppression syntax key on, documentation, and the Run
// function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It must
	// be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description `adllint -list` prints: the
	// invariant the analyzer encodes and why violating it is a bug.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. The result value is unused by this driver (kept for API
	// compatibility with x/tools).
	Run func(*Pass) (any, error)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Sizes is the target platform's layout model (types.SizesFor("gc", …)),
	// for analyzers that reason about struct layout.
	Sizes types.Sizes
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
