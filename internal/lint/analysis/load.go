package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one source-loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goTool resolves the go command (ADLLINT_GO overrides for tests).
func goTool() string {
	if g := os.Getenv("ADLLINT_GO"); g != "" {
		return g
	}
	return "go"
}

// goList runs `go list -e -export -deps -json args...` in dir and returns
// the streamed package records. -export compiles the transitive dependency
// set so every package carries export data the type checker can import —
// the offline substitute for x/tools/go/packages' LoadAllSyntax.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command(goTool(), append([]string{"list", "-e", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: starting go list: %w", err)
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		lp := &listedPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w", strings.Join(args, " "), err)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer that resolves imports from the
// export files `go list -export` produced.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// Sizes is the layout model analyzers and the loader share.
func Sizes() types.Sizes { return types.SizesFor("gc", runtime.GOARCH) }

// typecheck parses files and type-checks them into a Package.
func typecheck(pkgPath, dir string, fset *token.FileSet, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    Sizes(),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(pkgPath, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, errs[0])
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// LoadPatterns loads the packages matching the go list patterns (run from
// dir, a directory inside the target module), type-checking each matched
// package from source with its dependencies imported from export data.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil && lp.Export == "" && !lp.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		exports[lp.ImportPath] = lp.Export
		if !lp.DepOnly && !lp.Standard && lp.Name != "" {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, lp := range targets {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := typecheck(lp.ImportPath, lp.Dir, fset, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// findModuleRoot walks up from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadDir loads the single package rooted at pkgDir — a directory of .go
// files that need not be part of any module build (analysistest testdata
// lives under testdata/, which the go tool ignores). Imports are resolved
// against the enclosing module: the loader collects the files' import paths
// and asks `go list -export` for their export data from the module root.
func LoadDir(pkgDir string) (*Package, error) {
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(pkgDir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", pkgDir)
	}
	sort.Strings(filenames)

	// Pre-parse just for the import lists (the real parse happens in
	// typecheck, against the shared FileSet).
	importSet := map[string]bool{}
	scanFset := token.NewFileSet()
	pkgName := ""
	for _, fn := range filenames {
		f, err := parser.ParseFile(scanFset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		pkgName = f.Name.Name
		for _, im := range f.Imports {
			p := strings.Trim(im.Path.Value, `"`)
			if p != "unsafe" && p != "C" {
				importSet[p] = true
			}
		}
	}

	root, err := findModuleRoot(pkgDir)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		listed, err := goList(root, imports...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Error != nil && lp.Export == "" {
				return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	return typecheck(pkgName, pkgDir, fset, filenames, exportImporter(fset, exports))
}
