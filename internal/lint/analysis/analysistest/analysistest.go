// Package analysistest runs one analyzer over a testdata package and checks
// its diagnostics against `// want` comments, mirroring the x/tools package
// of the same name: a comment
//
//	x.Close() // want `discards the Close error`
//
// expects exactly one diagnostic on that line whose message matches the
// regular expression; several expectations may sit on one line. The runner
// fails the test for unmatched expectations AND for unexpected diagnostics,
// so testdata doubles as a false-positive regression suite.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<pkgRel> and applies az, comparing diagnostics
// against want comments.
func Run(t *testing.T, testdata string, az *analysis.Analyzer, pkgRel string) {
	t.Helper()
	pkg, err := analysis.LoadDir(filepath.Join(testdata, "src", pkgRel))
	if err != nil {
		t.Fatalf("loading %s: %v", pkgRel, err)
	}

	expects := collectWants(t, pkg)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  az,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Sizes:     analysis.Sizes(),
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := az.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", az.Name, err)
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		if !claim(expects, p, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(p.Filename), p.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(e.file), e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation covering (p, msg).
func claim(expects []*expectation, p token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == p.Filename && e.line == p.Line && e.rx.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses want comments from every file of the package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, p, c.Text[idx+len("// want "):]) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
					}
					out = append(out, &expectation{file: p.Filename, line: p.Line, rx: rx, raw: pat})
				}
			}
		}
	}
	return out
}

// parsePatterns reads a sequence of Go-quoted strings (double or backquote).
func parsePatterns(t *testing.T, p token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: want patterns must be quoted strings, got %q", p.Filename, p.Line, s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern: %q", p.Filename, p.Line, s)
		}
		lit := s[:end+2]
		pat, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: cannot unquote %q: %v", p.Filename, p.Line, lit, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
