package adllint_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lint/adllint"
)

// TestExitCodes drives the multichecker over the synthetic module in
// testdata/mod and checks the exit-code contract: clean code exits 0,
// seeded violations exit 1, documented suppressions bring it back to 0,
// and unloadable patterns exit 2.
func TestExitCodes(t *testing.T) {
	const mod = "testdata/mod"

	t.Run("clean", func(t *testing.T) {
		var buf bytes.Buffer
		if code := adllint.Run(&buf, mod, adllint.Suite(), "./clean"); code != adllint.ExitClean {
			t.Fatalf("exit = %d, want %d; output:\n%s", code, adllint.ExitClean, buf.String())
		}
		if buf.Len() != 0 {
			t.Errorf("clean run produced output:\n%s", buf.String())
		}
	})

	t.Run("violating", func(t *testing.T) {
		var buf bytes.Buffer
		if code := adllint.Run(&buf, mod, adllint.Suite(), "./violating"); code != adllint.ExitFindings {
			t.Fatalf("exit = %d, want %d; output:\n%s", code, adllint.ExitFindings, buf.String())
		}
		out := buf.String()
		for _, want := range []string{"(clonesafety)", "(closepropagate)", "violating.go"} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("suppressed", func(t *testing.T) {
		var buf bytes.Buffer
		if code := adllint.Run(&buf, mod, adllint.Suite(), "./suppressed"); code != adllint.ExitClean {
			t.Fatalf("exit = %d, want %d; output:\n%s", code, adllint.ExitClean, buf.String())
		}
	})

	t.Run("load-error", func(t *testing.T) {
		var buf bytes.Buffer
		if code := adllint.Run(&buf, mod, adllint.Suite(), "./no-such-package"); code != adllint.ExitError {
			t.Fatalf("exit = %d, want %d; output:\n%s", code, adllint.ExitError, buf.String())
		}
	})

	t.Run("all-packages", func(t *testing.T) {
		var buf bytes.Buffer
		if code := adllint.Run(&buf, mod, adllint.Suite(), "./..."); code != adllint.ExitFindings {
			t.Fatalf("exit = %d, want %d; output:\n%s", code, adllint.ExitFindings, buf.String())
		}
		out := buf.String()
		if strings.Contains(out, "suppressed.go") || strings.Contains(out, "clean.go") {
			t.Errorf("findings leaked from clean/suppressed packages:\n%s", out)
		}
	})
}

// TestSuiteSize pins the acceptance floor: at least five custom analyzers.
func TestSuiteSize(t *testing.T) {
	if n := len(adllint.Suite()); n < 5 {
		t.Fatalf("Suite() has %d analyzers, want >= 5", n)
	}
	seen := map[string]bool{}
	for _, az := range adllint.Suite() {
		if az.Name == "" || az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", az)
		}
		if seen[az.Name] {
			t.Errorf("duplicate analyzer name %q", az.Name)
		}
		seen[az.Name] = true
	}
}
