module synthetic

go 1.22
