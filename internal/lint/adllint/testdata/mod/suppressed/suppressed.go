// Package suppressed carries the same violations as package violating, each
// muted by a documented //lint:adllint directive in both accepted positions
// (trailing and standalone-above).
package suppressed

// Ctx and Row stand in for the engine's execution types.
type Ctx struct{}
type Row struct{}

// Op structurally matches exec.Operator.
type Op interface {
	Open(*Ctx) error
	Next() (Row, bool, error)
	Close() error
}

// Counter mutates its exported field at run time, with suppressions.
type Counter struct {
	Child Op
	Seen  int
}

// Open resets the exported counter (trailing suppression form).
func (c *Counter) Open(ctx *Ctx) error {
	c.Seen = 0 //lint:adllint clonesafety synthetic testdata exercising the trailing form
	return c.Child.Open(ctx)
}

// Next bumps the exported counter (standalone suppression form).
func (c *Counter) Next() (Row, bool, error) {
	//lint:adllint clonesafety synthetic testdata exercising the standalone form
	c.Seen++
	return c.Child.Next()
}

// Close discards the child's Close error, suppressed.
func (c *Counter) Close() error {
	c.Child.Close() //lint:adllint closepropagate synthetic testdata; error intentionally dropped
	return nil
}
