// Package clean passes every adllint analyzer: pointer-receiver operator,
// unexported state, propagated Close errors, paired open/close.
package clean

// Ctx and Row stand in for the engine's execution types.
type Ctx struct{}
type Row struct{}

// Op structurally matches exec.Operator.
type Op interface {
	Open(*Ctx) error
	Next() (Row, bool, error)
	Close() error
}

// Filter is a well-behaved operator.
type Filter struct {
	Child Op
	Attr  string
	done  bool
}

// Open opens the child; the child is closed by Close.
func (f *Filter) Open(ctx *Ctx) error {
	f.done = false
	return f.Child.Open(ctx)
}

// Next pulls from the child.
func (f *Filter) Next() (Row, bool, error) {
	if f.done {
		return Row{}, false, nil
	}
	return f.Child.Next()
}

// Close tears down the child, propagating its error.
func (f *Filter) Close() error {
	return f.Child.Close()
}

// Collect drains an operator with the propagation idiom.
func Collect(ctx *Ctx, op Op) (out []Row, err error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for {
		r, ok, nerr := op.Next()
		if nerr != nil {
			return nil, nerr
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}
