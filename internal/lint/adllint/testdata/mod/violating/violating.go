// Package violating seeds two adllint findings: a discarded Close error
// (closepropagate) and a run-time write to an exported operator field
// (clonesafety).
package violating

// Ctx and Row stand in for the engine's execution types.
type Ctx struct{}
type Row struct{}

// Op structurally matches exec.Operator.
type Op interface {
	Open(*Ctx) error
	Next() (Row, bool, error)
	Close() error
}

// Counter mutates its exported field at run time.
type Counter struct {
	Child Op
	Seen  int
}

// Open resets the exported counter — a clonesafety violation.
func (c *Counter) Open(ctx *Ctx) error {
	c.Seen = 0
	return c.Child.Open(ctx)
}

// Next bumps the exported counter — a clonesafety violation.
func (c *Counter) Next() (Row, bool, error) {
	c.Seen++
	return c.Child.Next()
}

// Close discards the child's Close error — a closepropagate violation.
func (c *Counter) Close() error {
	c.Child.Close()
	return nil
}
