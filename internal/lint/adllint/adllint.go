// Package adllint is the multichecker driver for the engine's custom
// analyzer suite: it loads packages (offline, via the go/analysis shim in
// internal/lint/analysis), applies every analyzer, honors //lint:adllint
// suppressions, and renders findings in the standard file:line:col format.
//
// Suppression syntax, parsed here rather than in the analyzers so every
// check gets it uniformly:
//
//	//lint:adllint <analyzer> <reason…>
//
// placed either at the end of the offending line or on a line of its own
// directly above it. The analyzer name must match, and a reason is
// required — a suppression documents WHY the finding is a false positive,
// or it is just a muted bug.
package adllint

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analyzers/atomicmeter"
	"repro/internal/lint/analyzers/batchimmutable"
	"repro/internal/lint/analyzers/clonesafety"
	"repro/internal/lint/analyzers/closepropagate"
	"repro/internal/lint/analyzers/fieldalign"
	"repro/internal/lint/analyzers/snapshotdiscipline"
)

// Exit codes, matching the driver-test contract.
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one unsuppressed finding
	ExitError    = 2 // packages failed to load or an analyzer crashed
)

// Suite is the default analyzer set `make lint` runs.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clonesafety.Analyzer,
		snapshotdiscipline.Analyzer,
		atomicmeter.Analyzer,
		closepropagate.Analyzer,
		batchimmutable.Analyzer,
	}
}

// Advisory returns the opt-in analyzers (cmd/adllint -fieldalign).
func Advisory() []*analysis.Analyzer {
	return []*analysis.Analyzer{fieldalign.Analyzer}
}

// finding is one rendered diagnostic.
type finding struct {
	pos      token.Position
	analyzer string
	message  string
}

// Run loads the packages matching patterns (go list syntax, resolved from
// dir) and applies analyzers, writing findings to out. It returns one of
// the Exit* codes.
func Run(out io.Writer, dir string, analyzers []*analysis.Analyzer, patterns ...string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPatterns(dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "adllint: %v\n", err)
		return ExitError
	}
	var findings []finding
	for _, pkg := range pkgs {
		sup := suppressions(pkg)
		for _, az := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  az,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Sizes:     analysis.Sizes(),
			}
			name := az.Name
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				if sup.covers(name, p) {
					return
				}
				findings = append(findings, finding{pos: p, analyzer: name, message: d.Message})
			}
			if _, err := az.Run(pass); err != nil {
				fmt.Fprintf(out, "adllint: analyzer %s failed on %s: %v\n", az.Name, pkg.PkgPath, err)
				return ExitError
			}
		}
	}
	if len(findings) == 0 {
		return ExitClean
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(out, "%s:%d:%d: %s (%s)\n", f.pos.Filename, f.pos.Line, f.pos.Column, f.message, f.analyzer)
	}
	fmt.Fprintf(out, "adllint: %d finding(s)\n", len(findings))
	return ExitFindings
}

// suppressionSet records, per file, the lines each analyzer is muted on.
type suppressionSet map[string]map[int]map[string]bool

func (s suppressionSet) covers(analyzer string, p token.Position) bool {
	lines := s[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][analyzer]
}

// suppressions parses //lint:adllint comments out of one package. A
// directive covers its own line (trailing-comment form) and the line below
// (standalone form). Directives without both an analyzer name and a reason
// are ignored — an undocumented suppression is not a suppression.
func suppressions(pkg *analysis.Package) suppressionSet {
	out := suppressionSet{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:adllint")
				if !ok {
					continue
				}
				parts := strings.Fields(text)
				if len(parts) < 2 {
					continue // analyzer name AND reason required
				}
				name := parts[0]
				p := pkg.Fset.Position(c.Pos())
				lines := out[p.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					out[p.Filename] = lines
				}
				for _, line := range []int{p.Line, p.Line + 1} {
					if lines[line] == nil {
						lines[line] = map[string]bool{}
					}
					lines[line][name] = true
				}
			}
		}
	}
	return out
}
