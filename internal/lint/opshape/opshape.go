// Package opshape recognizes the engine's Volcano iterator shapes from type
// structure alone: a row operator has Open/Next/Close methods, a batch
// operator OpenVec/NextBatch/CloseVec, with Close returning exactly error
// (the exec.Operator and exec.VecOp contracts). Matching structurally — by
// method names and the Close signature, not by named interface identity —
// keeps the analyzers working on any module, including the synthetic
// testdata packages the analysistest suites and the driver test load, which
// define their own toy operators.
package opshape

import "go/types"

// hasMethod reports whether t's method set contains name, optionally
// requiring the func() error signature (the Close/CloseVec contract).
func hasMethod(t types.Type, name string, wantErrResult bool) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		f, ok := ms.At(i).Obj().(*types.Func)
		if !ok || f.Name() != name {
			continue
		}
		if !wantErrResult {
			return true
		}
		sig := f.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return false
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
	}
	return false
}

// iteratorShape reports whether t (as given — pass a pointer type to get
// the full method set) carries the row or batch iterator method triple.
func iteratorShape(t types.Type) bool {
	if hasMethod(t, "Close", true) && hasMethod(t, "Open", false) && hasMethod(t, "Next", false) {
		return true
	}
	return hasMethod(t, "CloseVec", true) && hasMethod(t, "OpenVec", false) && hasMethod(t, "NextBatch", false)
}

// IsOperator reports whether values of type t behave as a row or batch
// operator: t itself, or its pointer (for named non-pointer types), has the
// iterator method triple. Interfaces qualify when they declare the triple.
func IsOperator(t types.Type) bool {
	if t == nil {
		return false
	}
	if iteratorShape(t) {
		return true
	}
	// A named struct whose methods live on the pointer receiver.
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			return iteratorShape(types.NewPointer(t))
		}
	}
	return false
}

// ValueReceiverOperator reports whether t is an operator whose iterator
// methods are all in the VALUE method set — the shape exec.CloneTree cannot
// clone: cloneAny only copies pointer-to-struct nodes, so a value-typed
// operator stored in an Operator interface is returned as-is and every
// "clone" shares its state.
func ValueReceiverOperator(t types.Type) bool {
	return iteratorShape(t)
}

// IsNamedIn reports whether t (possibly behind a pointer) is the named type
// pkgSuffix.name — matching the defining package by import-path suffix so
// the check is independent of the module name.
func IsNamedIn(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || len(path) > len(pkgSuffix) && path[len(path)-len(pkgSuffix)-1] == '/' &&
		path[len(path)-len(pkgSuffix):] == pkgSuffix
}
