// Package batchimmutable protects the columnar read path's core bargain:
// col.Proj and col.Col values are version-keyed, cached, and shared across
// every concurrent query reading the same extent version — they are frozen
// at construction. A single `p.Rows[i] = v`, `c.Ints[k]++`, or
// `append(c.Strs, s)` from outside the col package compiles fine and is a
// cross-query data race (append may write in place when capacity allows).
//
// The analyzer flags, in any package other than the type's defining
// package:
//
//   - assignments to fields of col.Proj / col.Col (p.Rows = …, c.Kind = …)
//   - element writes through those fields (p.Rows[i] = …, c.Ints[k] = …)
//   - append calls whose first argument is a field of col.Proj / col.Col
//   - assignments to exec.Batch's Proj field (re-pointing a batch at a
//     projection it does not own)
//
// Construction stays where it belongs: the defining package (internal/col
// for Proj/Col, internal/exec for Batch) is exempt, matching Go's own
// encapsulation line.
package batchimmutable

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/opshape"
)

// Analyzer is the batchimmutable check.
var Analyzer = &analysis.Analyzer{
	Name: "batchimmutable",
	Doc: "col.Proj / col.Col are immutable after construction and shared across concurrent " +
		"queries; no field assignments, element writes, or appends outside their defining package",
	Run: run,
}

// frozenRecv reports whether t is one of the shared-immutable container
// types, returning which.
func frozenRecv(t types.Type) (string, bool) {
	switch {
	case opshape.IsNamedIn(t, "internal/col", "Proj"):
		return "col.Proj", true
	case opshape.IsNamedIn(t, "internal/col", "Col"):
		return "col.Col", true
	}
	return "", false
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, st.X)
			case *ast.CallExpr:
				checkAppend(pass, st)
			}
			return true
		})
	}
	return nil, nil
}

// frozenField matches expr being a field selector on a frozen type defined
// outside pass.Pkg, returning the selector, the type label, and whether the
// match held.
func frozenField(pass *analysis.Pass, expr ast.Expr) (*ast.SelectorExpr, string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	label, ok := frozenRecv(s.Recv())
	if !ok {
		return nil, "", false
	}
	// The defining package retains construction rights.
	if definingPkg(s.Recv()) == pass.Pkg {
		return nil, "", false
	}
	return sel, label, true
}

func definingPkg(t types.Type) *types.Package {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg()
	}
	return nil
}

// checkWrite flags direct and element writes.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	// Unwrap index chains: p.Rows[i], c.Mat[i][j].
	target := lhs
	indexed := false
	for {
		ix, ok := target.(*ast.IndexExpr)
		if !ok {
			break
		}
		indexed = true
		target = ix.X
	}
	if sel, label, ok := frozenField(pass, target); ok {
		if indexed {
			pass.Reportf(sel.Sel.Pos(),
				"element write through %s.%s mutates a projection shared across concurrent "+
					"queries; build a new column via the col constructors instead", label, sel.Sel.Name)
		} else {
			pass.Reportf(sel.Sel.Pos(),
				"assignment to %s.%s after construction; projections are version-keyed and "+
					"shared — build a new %s instead", label, sel.Sel.Name, label)
		}
		return
	}
	// Re-pointing a Batch at a foreign projection: flag outside exec.
	if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Proj" {
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal &&
			opshape.IsNamedIn(s.Recv(), "internal/exec", "Batch") &&
			definingPkg(s.Recv()) != pass.Pkg {
			pass.Reportf(sel.Sel.Pos(),
				"assignment to exec.Batch.Proj outside internal/exec; batches expose shared "+
					"projections read-only — produce a new batch through a VecOp instead")
		}
	}
}

// checkAppend flags append(frozen.Slice, …): append writes in place when
// capacity allows, racing with every concurrent reader of the projection.
func checkAppend(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return
	}
	if obj, ok := pass.TypesInfo.Uses[id]; !ok || obj != types.Universe.Lookup("append") {
		return
	}
	if sel, label, ok := frozenField(pass, call.Args[0]); ok {
		pass.Reportf(sel.Sel.Pos(),
			"append to %s.%s may write in place into a projection shared across concurrent "+
				"queries; copy into a fresh slice first", label, sel.Sel.Name)
	}
}
