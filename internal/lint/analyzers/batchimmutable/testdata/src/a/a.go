// Package a is batchimmutable testdata. It imports the real col and exec
// packages and pokes at shared projections the way a buggy operator would.
package a

import (
	"repro/internal/col"
	"repro/internal/exec"
	"repro/internal/value"
)

func mutateProj(p *col.Proj, v value.Value) {
	p.Rows[0] = v  // want `element write through col.Proj.Rows`
	p.Extent = "x" // want `assignment to col.Proj.Extent`
	p.Rows = nil   // want `assignment to col.Proj.Rows`
}

func mutateCol(c *col.Col) {
	c.Ints[0] = 1           // want `element write through col.Col.Ints`
	c.Kind = 0              // want `assignment to col.Col.Kind`
	_ = append(c.Strs, "x") // want `append to col.Col.Strs`
	c.Floats[2] += 1.5      // want `element write through col.Col.Floats`
}

func rePoint(b *exec.Batch, p *col.Proj) {
	b.Proj = p // want `assignment to exec.Batch.Proj`
}

// Reads are the whole point of sharing — none of these may be flagged.
func reads(p *col.Proj, c *col.Col, b *exec.Batch) (value.Value, int64, int) {
	fresh := append([]string(nil), c.Strs...)
	_ = fresh
	sel := b.Sel // operators own their selection vectors; Sel is not frozen
	_ = sel
	return p.Rows[0], c.Ints[0], len(p.Rows)
}

// Local copies are fair game: the frozen types only freeze shared values
// reached through their fields, not values of the same element types.
func localScratch(rows []value.Value, v value.Value) {
	rows[0] = v
	rows = append(rows, v)
	_ = rows
}
