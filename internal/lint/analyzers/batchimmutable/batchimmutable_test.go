package batchimmutable_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/batchimmutable"
)

func TestBatchimmutable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), batchimmutable.Analyzer, "a")
}
