package snapshotdiscipline_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/snapshotdiscipline"
)

func TestSnapshotdiscipline(t *testing.T) {
	// The testdata package path is synthetic, so widen the scope for the run.
	saved := snapshotdiscipline.Scope
	snapshotdiscipline.Scope = nil
	defer func() { snapshotdiscipline.Scope = saved }()

	analysistest.Run(t, analysistest.TestData(t), snapshotdiscipline.Analyzer, "a")
}
