// Package a is snapshotdiscipline testdata. It imports the real storage
// package and exercises both the forbidden raw-Store read surface and the
// allowed snapshot/admin surface. (The test runs with Scope = nil so the
// synthetic package path is in scope.)
package a

import (
	"repro/internal/storage"
	"repro/internal/value"
)

func badReads(s *storage.Store) {
	s.Table("emp")                             // want `direct storage.Store.Table read`
	s.Lookup(value.OID(1))                     // want `direct storage.Store.Lookup read`
	s.Deref(value.OID(1))                      // want `direct storage.Store.Deref read`
	s.OIDs("emp")                              // want `direct storage.Store.OIDs read`
	s.Size("emp")                              // want `direct storage.Store.Size read`
	s.IndexLookup("emp", "age", value.Int(30)) // want `direct storage.Store.IndexLookup read`
	s.ColProj("emp", []string{"age"})          // want `direct storage.Store.ColProj read`
}

func goodReads(s *storage.Store) {
	snap := s.Snapshot()
	snap.Table("emp")
	snap.Lookup(value.OID(1))
	_ = s.Stats()
	_ = s.Catalog()
	s.Analyze()
}

func writesAllowed(s *storage.Store, t *value.Tuple) {
	s.Insert("emp", t)
	s.Delete("emp", value.OID(1))
	s.GC()
}
