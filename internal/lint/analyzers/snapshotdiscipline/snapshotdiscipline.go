// Package snapshotdiscipline enforces MVCC read isolation at the call
// graph's surface: code in the serving and execution layers must read object
// state through a Snapshot (which implements eval.DB, exec.IndexedDB and
// exec.ColumnarDB at a pinned version), never through the raw storage.Store
// read accessors. A direct Store read compiles and returns plausible data —
// but it sees concurrent writers mid-flight, silently escaping the snapshot
// the rest of the query pinned.
//
// The analyzer flags method calls of the Store read surface (Table, Lookup,
// Deref, OIDs, Size, IndexLookup, IndexRange, ColProj) on a value whose type
// is storage.Store, in any package whose import path ends with one of the
// scoped suffixes. Administrative and write-path methods (Snapshot, Insert,
// Delete, Update, Analyze, Stats, GC, CreateIndex, ...) stay allowed: those
// are the Store's actual contract with the serving layer.
package snapshotdiscipline

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/opshape"
)

// Scope lists the import-path suffixes the discipline applies to. Nil means
// every package (used by the analysistest suite, whose testdata package path
// is synthetic). The serving and execution layers are scoped; internal/eval
// and internal/storage itself are not — eval predates the serving layer and
// is reached only through Snapshot already, and the Store must of course
// call itself.
var Scope = []string{
	"internal/server",
	"internal/exec",
	"cmd/adlserve",
	"cmd/adlload",
}

// readSurface is the set of Store methods that read object state and are
// therefore version-sensitive.
var readSurface = map[string]bool{
	"Table":       true,
	"Lookup":      true,
	"Deref":       true,
	"OIDs":        true,
	"Size":        true,
	"IndexLookup": true,
	"IndexRange":  true,
	"ColProj":     true,
}

// Analyzer is the snapshotdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotdiscipline",
	Doc: "serving/exec code must read through Snapshot (eval.DB / exec.IndexedDB / exec.ColumnarDB), " +
		"never storage.Store's raw read accessors, which escape MVCC visibility",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !readSurface[sel.Sel.Name] {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok {
				return true // package-qualified call, not a method
			}
			if !opshape.IsNamedIn(s.Recv(), "internal/storage", "Store") {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"direct storage.Store.%s read escapes MVCC snapshot visibility; go through "+
					"Store.Snapshot() (it implements the eval.DB, exec.IndexedDB and exec.ColumnarDB "+
					"read interfaces at a pinned version)", sel.Sel.Name)
			return true
		})
	}
	return nil, nil
}

func inScope(pkgPath string) bool {
	if Scope == nil {
		return true
	}
	for _, suffix := range Scope {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) ||
			strings.Contains(pkgPath, "/"+suffix+"/") || strings.HasPrefix(pkgPath, suffix+"/") {
			return true
		}
	}
	return false
}
