// Package a is clonesafety testdata: toy operators exercising the three
// violation shapes plus clean counterparts guarding against false positives.
package a

// Ctx and Row stand in for the engine's execution context and row types.
type Ctx struct{}
type Row struct{}

// Op is the row-operator interface, structurally matching exec.Operator.
type Op interface {
	Open(*Ctx) error
	Next() (Row, bool, error)
	Close() error
}

// Good follows the convention: pointer receivers, exported immutable
// config, unexported per-run state, direct operator-typed child field.
type Good struct {
	Attr  string
	Child Op
	pos   int
}

func (g *Good) Open(*Ctx) error          { g.pos = 0; return nil }
func (g *Good) Next() (Row, bool, error) { g.pos++; return Row{}, false, nil }
func (g *Good) Close() error             { return nil }

// ValOp implements the iterator on value receivers while carrying state —
// CloneTree cannot clone it, so all "clones" share pos.
type ValOp struct { // want `value receivers but carries unexported state`
	pos int
}

func (v ValOp) Open(*Ctx) error          { return nil }
func (v ValOp) Next() (Row, bool, error) { return Row{}, false, nil }
func (v ValOp) Close() error             { return nil }

// Union hides its children inside a slice: the clone plan copies the slice
// header and every clone shares the same child operators.
type Union struct {
	Kids []Op // want `holds operators inside`
	idx  int
}

func (u *Union) Open(*Ctx) error          { return nil }
func (u *Union) Next() (Row, bool, error) { return Row{}, false, nil }
func (u *Union) Close() error             { return nil }

// branch is a non-operator struct that holds an operator — burying a child
// one level deeper must still be caught.
type branch struct {
	op Op
}

// Wrapped hides a child inside a config struct.
type Wrapped struct {
	Cfg branch // want `holds operators inside`
}

func (w *Wrapped) Open(*Ctx) error          { return nil }
func (w *Wrapped) Next() (Row, bool, error) { return Row{}, false, nil }
func (w *Wrapped) Close() error             { return nil }

// Meter mutates an exported field at run time: the write lands on shared
// plan-time configuration, racing across clones.
type Meter struct {
	SegmentsUsed int
	rows         int
}

func (m *Meter) Open(*Ctx) error {
	m.SegmentsUsed = 0 // want `writes exported field SegmentsUsed`
	m.rows = 0
	return nil
}

func (m *Meter) Next() (Row, bool, error) {
	m.SegmentsUsed++ // want `writes exported field SegmentsUsed`
	m.rows++
	return Row{}, false, nil
}

func (m *Meter) Close() error { return nil }

// Plan is NOT an operator, so holding operators in containers is fine — it
// is a plan-time description, not a cloned execution node.
type Plan struct {
	Ops []Op
}

// SetAttr is a builder method on an operator called at plan time; it writes
// an exported field, which the analyzer still flags — builders belong on
// config structs or constructors, not on the operator itself.
func (g *Good) SetAttr(a string) {
	g.Attr = a // want `writes exported field Attr`
}
