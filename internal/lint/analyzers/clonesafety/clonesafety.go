// Package clonesafety enforces the structural convention exec.CloneTree
// rests on: for every operator struct, exported fields are immutable
// plan-time configuration (copied into clones and therefore shared), and
// unexported fields are per-run iterator state (zeroed in clones). The plan
// cache executes reflection-cloned trees concurrently, so a violation is a
// cross-request data race that no test deterministically reaches.
//
// Three violation shapes are flagged:
//
//  1. An operator type whose iterator methods are on the value receiver
//     while it carries unexported state: cloneAny only clones
//     pointer-to-struct nodes, so such an operator is returned as-is and
//     every "independent" execution shares its iterator state.
//
//  2. An exported field whose type holds child operators inside a container
//     (slice, array, map, chan, or a non-operator struct): the clone plan
//     copies the container value verbatim without recursing, so all clones
//     share the same child operator instances — per-run state by another
//     route. Child fields must be operator-typed (or interface-typed)
//     directly for CloneTree's dynamic dispatch to see them.
//
//  3. A method of an operator writing one of its exported fields: exported
//     fields are copied into every clone from the cached original, so a
//     run-time write is per-run state escaping into shared configuration.
package clonesafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/opshape"
)

// Analyzer is the clonesafety check.
var Analyzer = &analysis.Analyzer{
	Name: "clonesafety",
	Doc: "operator structs must keep exported fields immutable config and unexported fields " +
		"per-run state, the convention exec.CloneTree's layout plans rely on",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.TYPE {
					for _, spec := range d.Specs {
						checkTypeSpec(pass, spec.(*ast.TypeSpec))
					}
				}
			case *ast.FuncDecl:
				checkMethod(pass, d)
			}
		}
	}
	return nil, nil
}

// checkTypeSpec applies shapes 1 and 2 to one struct declaration.
func checkTypeSpec(pass *analysis.Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Defs[spec.Name]
	if obj == nil {
		return
	}
	named := obj.Type()
	if !opshape.IsOperator(named) {
		return
	}

	// Shape 1: a value-receiver operator with unexported state is returned
	// as-is by cloneAny — CloneTree has no layout plan covering it.
	if opshape.ValueReceiverOperator(named) && hasUnexportedField(st) {
		pass.Reportf(spec.Name.Pos(),
			"operator %s implements the iterator on value receivers but carries unexported state; "+
				"CloneTree cannot clone a non-pointer operator, so every execution would share it "+
				"(move the iterator methods to *%s)", spec.Name.Name, spec.Name.Name)
	}

	// Shape 2: exported fields hiding children inside containers.
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			fobj := pass.TypesInfo.Defs[name]
			if fobj == nil {
				continue
			}
			ft := fobj.Type()
			// Directly operator- or interface-typed fields are what the
			// clone plan's dynamic dispatch handles.
			if opshape.IsOperator(ft) || isInterface(ft) {
				continue
			}
			if buriesOperator(ft, 0, map[types.Type]bool{}) {
				pass.Reportf(name.Pos(),
					"exported field %s.%s holds operators inside %s; CloneTree copies the container "+
						"without recursing, so all clones share the child iterator state "+
						"(make the field operator-typed, or unexport it and rebuild it in Open)",
					spec.Name.Name, name.Name, types.TypeString(ft, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func hasUnexportedField(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if !n.IsExported() {
				return true
			}
		}
	}
	return false
}

// buriesOperator walks one type's structure looking for operator-shaped
// components below the level CloneTree's field dispatch can see.
func buriesOperator(t types.Type, depth int, seen map[types.Type]bool) bool {
	if depth > 6 || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return reaches(u.Elem(), depth+1, seen)
	case *types.Array:
		return reaches(u.Elem(), depth+1, seen)
	case *types.Map:
		return reaches(u.Key(), depth+1, seen) || reaches(u.Elem(), depth+1, seen)
	case *types.Chan:
		return reaches(u.Elem(), depth+1, seen)
	case *types.Pointer:
		// A pointer to a non-operator struct is shared config by convention;
		// operators hiding inside it are still shared children.
		return buriesOperator(u.Elem(), depth+1, seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reaches(u.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	}
	return false
}

// reaches reports whether t is itself operator-shaped or buries one.
func reaches(t types.Type, depth int, seen map[types.Type]bool) bool {
	return opshape.IsOperator(t) || buriesOperator(t, depth, seen)
}

// checkMethod applies shape 3: methods of an operator must not write its
// exported fields.
func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
		return
	}
	recvField := fd.Recv.List[0]
	if len(recvField.Names) != 1 {
		return // anonymous receiver cannot be written through
	}
	recvName := recvField.Names[0].Name
	if recvName == "_" {
		return
	}
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil || !opshape.IsOperator(recvObj.Type()) {
		return
	}
	typeName := operatorTypeName(recvObj.Type())

	report := func(sel *ast.SelectorExpr) {
		pass.Reportf(sel.Sel.Pos(),
			"method of operator %s writes exported field %s; exported fields are plan-time "+
				"configuration shared across CloneTree clones — keep per-run state in an "+
				"unexported field", typeName, sel.Sel.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel := receiverExportedTarget(pass, lhs, recvObj); sel != nil {
					report(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel := receiverExportedTarget(pass, st.X, recvObj); sel != nil {
				report(sel)
			}
		}
		return true
	})
}

// operatorTypeName names the receiver's operator type for diagnostics.
func operatorTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// receiverExportedTarget matches lhs being recv.Field or recv.Field[i] (any
// index depth) for an exported Field, returning the selector.
func receiverExportedTarget(pass *analysis.Pass, lhs ast.Expr, recv types.Object) *ast.SelectorExpr {
	for {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			break
		}
		lhs = ix.X
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || !sel.Sel.IsExported() {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return nil
	}
	// Only direct field writes count; method values cannot be assigned.
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return sel
}
