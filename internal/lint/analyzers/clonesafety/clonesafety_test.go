package clonesafety_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/clonesafety"
)

func TestClonesafety(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), clonesafety.Analyzer, "a")
}
