package closepropagate_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/closepropagate"
)

func TestClosepropagate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), closepropagate.Analyzer, "a")
}
