// Package closepropagate enforces the operator lifecycle contract from both
// ends — the PR 2 Collect/drain bug class, made compile-time:
//
//  1. Close errors must be propagated, never discarded. A bare statement
//     `op.Close()`, a `_ = op.Close()`, or a direct `defer op.Close()`
//     throws away the only signal a cursor or spill file has for reporting
//     teardown failure. The accepted idiom is the drain pattern:
//
//     defer func() {
//     if cerr := op.Close(); cerr != nil && err == nil {
//     err = cerr
//     }
//     }()
//
//  2. Children opened in an operator's Open/OpenVec must be closed: every
//     receiver-rooted path opened there (j.left.Open(ctx), p.child.OpenVec)
//     must have a matching Close/CloseVec on the same path either inside
//     the method (error-path cleanup, including deferred closures) or in
//     the type's own Close/CloseVec method. A path handed to another
//     function (drain(p.child)) transfers ownership and is exempt.
//
//     Closes may go through a local alias of the path — the goroutine
//     hand-off pattern, where a method rebinds the child before a
//     completion goroutine closes it:
//
//     src := e.Src
//     go func() {
//     e.wg.Wait()
//     if cerr := src.CloseVec(); cerr != nil { e.fail(cerr) }
//     }()
//
//     The alias resolves to the path it was bound to (flow-insensitively;
//     a rebound alias keeps its last binding), so the close above pairs
//     with an e.Src.OpenVec in the same method. Aliasing alone transfers
//     nothing: without the close call through the alias, the open is still
//     flagged.
package closepropagate

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/opshape"
)

// Analyzer is the closepropagate check.
var Analyzer = &analysis.Analyzer{
	Name: "closepropagate",
	Doc: "operator Close/CloseVec errors must be propagated (not discarded), and every child " +
		"opened in Open/OpenVec must have a matching close on the same field path",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		checkDiscards(pass, file)
	}
	checkPairing(pass)
	return nil, nil
}

// isOperatorClose reports whether call is x.Close() or x.CloseVec() on an
// operator-shaped receiver, i.e. a call whose error result matters.
func isOperatorClose(pass *analysis.Pass, call *ast.CallExpr) (*ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "CloseVec") {
		return nil, false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, false
	}
	if !opshape.IsOperator(s.Recv()) {
		return nil, false
	}
	// Only calls that actually return an error can discard one.
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return nil, false
	}
	return sel, true
}

// checkDiscards flags the three discard shapes.
func checkDiscards(pass *analysis.Pass, file *ast.File) {
	report := func(sel *ast.SelectorExpr, how string) {
		pass.Reportf(sel.Sel.Pos(),
			"%s discards the %s error of an operator; propagate it "+
				"(e.g. `if cerr := x.%s(); cerr != nil && err == nil { err = cerr }`)",
			how, sel.Sel.Name, sel.Sel.Name)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if sel, ok := isOperatorClose(pass, call); ok {
					report(sel, "bare statement")
				}
			}
		case *ast.DeferStmt:
			if sel, ok := isOperatorClose(pass, st.Call); ok {
				report(sel, "direct defer")
			}
			// A deferred closure is fine — its body is walked normally.
		case *ast.GoStmt:
			if sel, ok := isOperatorClose(pass, st.Call); ok {
				report(sel, "go statement")
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					if sel, ok := isOperatorClose(pass, call); ok {
						report(sel, "assignment to _")
					}
				}
			}
		}
		return true
	})
}

// methodSet groups a type's declared methods for the pairing check.
type methodSet struct {
	typeName string
	open     []*ast.FuncDecl // Open / OpenVec
	other    []*ast.FuncDecl // everything else, searched for closes
}

// checkPairing verifies opened receiver paths have matching closes.
func checkPairing(pass *analysis.Pass) {
	byType := map[types.Object]*methodSet{}
	recvOf := map[*ast.FuncDecl]types.Object{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
				continue
			}
			recvObj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
			if recvObj == nil {
				continue
			}
			rt := recvObj.Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok || !opshape.IsOperator(named.Obj().Type()) {
				continue
			}
			ms := byType[named.Obj()]
			if ms == nil {
				ms = &methodSet{typeName: named.Obj().Name()}
				byType[named.Obj()] = ms
			}
			recvOf[fd] = recvObj
			if fd.Name.Name == "Open" || fd.Name.Name == "OpenVec" {
				ms.open = append(ms.open, fd)
			} else {
				ms.other = append(ms.other, fd)
			}
		}
	}

	for _, ms := range byType {
		if len(ms.open) == 0 {
			continue
		}
		// Paths closed anywhere in the type's non-open methods (Close,
		// CloseVec, helpers they call stay out of scope — same-name paths
		// only).
		closed := map[string]bool{}
		for _, fd := range ms.other {
			collectClosed(pass, fd, recvOf[fd], closed)
		}
		for _, fd := range ms.open {
			localClosed := map[string]bool{}
			collectClosed(pass, fd, recvOf[fd], localClosed)
			escaped := collectEscapes(pass, fd, recvOf[fd])
			for _, op := range collectOpens(pass, fd, recvOf[fd]) {
				if closed[op.path] || localClosed[op.path] || escaped[op.path] {
					continue
				}
				pass.Reportf(op.pos,
					"%s.%s opens %s but no matching Close/CloseVec on that path exists in %s or in "+
						"%s's Close/CloseVec; the child leaks when this tree is torn down",
					ms.typeName, fd.Name.Name, op.path, fd.Name.Name, ms.typeName)
			}
		}
	}
}

type openSite struct {
	path string
	pos  token.Pos
}

// collectOpens finds receiver-rooted paths with .Open/.OpenVec calls.
func collectOpens(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) []openSite {
	aliases := collectAliases(pass, fd, recv)
	var out []openSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Open" && sel.Sel.Name != "OpenVec") {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.MethodVal || !opshape.IsOperator(s.Recv()) {
			return true
		}
		if path, ok := receiverPath(pass, sel.X, recv, aliases); ok {
			out = append(out, openSite{path: path, pos: sel.Sel.Pos()})
		}
		return true
	})
	return out
}

// collectClosed records receiver-rooted paths with .Close/.CloseVec calls.
// Closes through a local alias of a path (the goroutine hand-off pattern)
// resolve to the aliased path.
func collectClosed(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, into map[string]bool) {
	aliases := collectAliases(pass, fd, recv)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "CloseVec") {
			return true
		}
		if path, ok := receiverPath(pass, sel.X, recv, aliases); ok {
			into[path] = true
		}
		return true
	})
}

// collectEscapes records receiver-rooted paths passed as call arguments —
// ownership handed to a helper (drain, Collect, a goroutine body). Binding
// an alias is NOT an escape: only a call argument transfers ownership, so
// an alias that is never closed still leaves its open flagged.
func collectEscapes(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) map[string]bool {
	aliases := collectAliases(pass, fd, recv)
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if path, ok := receiverPath(pass, arg, recv, aliases); ok {
				out[path] = true
			}
		}
		return true
	})
	return out
}

// collectAliases maps local variables bound to a receiver-rooted path
// (src := e.Src) to that path. The mapping is flow-insensitive: a variable
// rebound to a second path keeps the last binding seen in source order.
func collectAliases(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) map[types.Object]string {
	out := map[types.Object]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			path, ok := receiverPath(pass, as.Rhs[i], recv, nil)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = path
			}
		}
		return true
	})
	return out
}

// receiverPath renders expr as a normalized path when it is the receiver or
// a field chain rooted at it: recv.child → "recv.child", recv.kids[i] →
// "recv.kids[#]". Index expressions normalize to "#" so an open in a loop
// matches a close in a different loop. A non-nil aliases map additionally
// resolves local variables bound to receiver paths.
func receiverPath(pass *analysis.Pass, expr ast.Expr, recv types.Object, aliases map[types.Object]string) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == recv {
			return "recv", true
		}
		if path, ok := aliases[obj]; ok {
			return path, true
		}
		return "", false
	case *ast.SelectorExpr:
		base, ok := receiverPath(pass, e.X, recv, aliases)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		base, ok := receiverPath(pass, e.X, recv, aliases)
		if !ok {
			return "", false
		}
		return base + "[#]", true
	case *ast.ParenExpr:
		return receiverPath(pass, e.X, recv, aliases)
	}
	return "", false
}
