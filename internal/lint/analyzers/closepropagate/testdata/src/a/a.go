// Package a is closepropagate testdata: discard shapes, open/close pairing
// violations, and the accepted drain/ownership idioms.
package a

// Ctx and Row stand in for the engine's execution context and row types.
type Ctx struct{}
type Row struct{}

// Op structurally matches exec.Operator.
type Op interface {
	Open(*Ctx) error
	Next() (Row, bool, error)
	Close() error
}

// Leaf is a concrete operator.
type Leaf struct{ pos int }

func (l *Leaf) Open(*Ctx) error          { l.pos = 0; return nil }
func (l *Leaf) Next() (Row, bool, error) { return Row{}, false, nil }
func (l *Leaf) Close() error             { return nil }

// --- discard shapes ---

func discards(op Op) {
	op.Close()     // want `bare statement discards`
	_ = op.Close() // want `assignment to _ discards`
}

func deferred(op Op) error {
	defer op.Close() // want `direct defer discards`
	return nil
}

// propagate is the accepted idiom: the deferred closure folds the Close
// error into the named return.
func propagate(op Op) (err error) {
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return nil
}

// returned is also fine: the error leaves the function.
func returned(op Op) error {
	return op.Close()
}

// --- open/close pairing ---

// LeakJoin closes its left child but never its right: flagged at the open.
type LeakJoin struct {
	Left  Op
	Right Op
}

func (j *LeakJoin) Open(ctx *Ctx) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	return j.Right.Open(ctx) // want `opens recv.Right but no matching`
}
func (j *LeakJoin) Next() (Row, bool, error) { return Row{}, false, nil }
func (j *LeakJoin) Close() error             { return j.Left.Close() }

// PairJoin opens both children and closes both, including the error path.
type PairJoin struct {
	Left  Op
	Right Op
}

func (j *PairJoin) Open(ctx *Ctx) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		if cerr := j.Left.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return nil
}
func (j *PairJoin) Next() (Row, bool, error) { return Row{}, false, nil }
func (j *PairJoin) Close() error {
	err := j.Left.Close()
	if cerr := j.Right.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// drain consumes and closes an operator, propagating the Close error.
func drain(op Op) (err error) {
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for {
		if _, ok, nerr := op.Next(); nerr != nil {
			return nerr
		} else if !ok {
			return nil
		}
	}
}

// EagerJoin hands its opened build side to drain — ownership transfer, not
// a leak.
type EagerJoin struct {
	Build Op
}

func (j *EagerJoin) Open(ctx *Ctx) error {
	if err := j.Build.Open(ctx); err != nil {
		return err
	}
	return drain(j.Build)
}
func (j *EagerJoin) Next() (Row, bool, error) { return Row{}, false, nil }
func (j *EagerJoin) Close() error             { return nil }

// --- goroutine-transferred close ownership ---

// HandoffExchange rebinds its source to a local before a completion
// goroutine closes it — the morsel-exchange pattern. The close through the
// alias pairs with the open on recv.Src: accepted.
type HandoffExchange struct {
	Src  Op
	errs chan error
}

func (e *HandoffExchange) Open(ctx *Ctx) error {
	if err := e.Src.Open(ctx); err != nil {
		return err
	}
	src := e.Src
	go func() {
		if cerr := src.Close(); cerr != nil {
			e.errs <- cerr
		}
	}()
	return nil
}
func (e *HandoffExchange) Next() (Row, bool, error) { return Row{}, false, nil }
func (e *HandoffExchange) Close() error             { return nil }

// AliasLeak binds the same alias but never closes through it: the alias
// alone transfers nothing, so the open is still flagged.
type AliasLeak struct {
	Src Op
}

func (e *AliasLeak) Open(ctx *Ctx) error {
	if err := e.Src.Open(ctx); err != nil { // want `opens recv.Src but no matching`
		return err
	}
	src := e.Src
	go func() {
		_ = src
	}()
	return nil
}
func (e *AliasLeak) Next() (Row, bool, error) { return Row{}, false, nil }
func (e *AliasLeak) Close() error             { return nil }
