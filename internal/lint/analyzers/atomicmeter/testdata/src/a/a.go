// Package a is atomicmeter testdata: a metering struct mixing atomic
// counters with mutex-guarded plain fields, written with and without the
// lock held.
package a

import (
	"sync"
	"sync/atomic"
)

// Meters mirrors storage.Store's shape: atomic hot counters next to plain
// configuration/bookkeeping integers guarded by mu.
type Meters struct {
	mu        sync.Mutex
	reads     atomic.Int64
	last      *atomic.Int64
	mutations int
	gcEvery   int
	name      string
}

func (m *Meters) BadInc() {
	m.mutations++ // want `unguarded write to Meters.mutations`
}

func (m *Meters) BadSet(n int) {
	m.gcEvery = n // want `unguarded write to Meters.gcEvery`
}

func (m *Meters) BadCompound(n int) {
	m.mutations += n // want `unguarded write to Meters.mutations`
}

// GoodSet holds the struct's lock across the write.
func (m *Meters) GoodSet(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gcEvery = n
}

// GoodAtomic goes through the atomic API, which is the point.
func (m *Meters) GoodAtomic() {
	m.reads.Add(1)
}

// GoodString writes a non-integer field — out of scope for a meter check.
func (m *Meters) GoodString(s string) {
	m.name = s
}

// Plain has no atomic fields, so its integer writes are not metering
// territory.
type Plain struct {
	n int
}

func (p *Plain) Inc() { p.n++ }
