package atomicmeter_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/atomicmeter"
)

func TestAtomicmeter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), atomicmeter.Analyzer, "a")
}
