// Package atomicmeter guards the metering counters that concurrent readers
// sample while writers run: structs that mix sync/atomic fields with plain
// integer fields are exactly where a bare `s.count++` slips in — it
// compiles, it works single-threaded, and it corrupts metrics (or worse,
// trips the race detector a month later) under load.
//
// For every struct type that declares at least one sync/atomic-typed field,
// the analyzer flags writes (assignment, ++/--, compound assignment) to the
// struct's plain integer fields from methods that do not visibly hold a
// lock: a method body containing a receiver-rooted `.Lock()` call (a mutex
// field of the same struct) is treated as guarded. Read-side locks (RLock)
// do not count — they do not license writes.
package atomicmeter

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the atomicmeter check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmeter",
	Doc: "plain integer fields of structs holding sync/atomic meters must only be written " +
		"under a held lock; bare increments corrupt counters sampled by concurrent readers",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	meterStructs := collectMeterStructs(pass)
	if len(meterStructs) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			checkMethod(pass, fd, meterStructs)
		}
	}
	return nil, nil
}

// collectMeterStructs finds named struct types in this package with at least
// one sync/atomic field, keyed by the type name object.
func collectMeterStructs(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isAtomicType(st.Field(i).Type()) {
				out[tn] = true
				break
			}
		}
	}
	return out
}

// isAtomicType reports whether t (or its pointee) is declared in sync/atomic.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// isPlainInteger reports whether t is a basic integer type (the kind of
// field a meter counter would be if someone forgot the atomic).
func isPlainInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, meterStructs map[types.Object]bool) {
	recvField := fd.Recv.List[0]
	if len(recvField.Names) != 1 || recvField.Names[0].Name == "_" {
		return
	}
	recvObj := pass.TypesInfo.Defs[recvField.Names[0]]
	if recvObj == nil {
		return
	}
	rt := recvObj.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || !meterStructs[named.Obj()] {
		return
	}

	if holdsLock(pass, fd.Body, recvObj) {
		return
	}

	report := func(sel *ast.SelectorExpr) {
		pass.Reportf(sel.Sel.Pos(),
			"unguarded write to %s.%s, a plain integer field of a struct carrying sync/atomic "+
				"meters; either write it under the struct's lock or make it atomic",
			named.Obj().Name(), sel.Sel.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if sel := plainIntFieldWrite(pass, lhs, recvObj); sel != nil {
					report(sel)
				}
			}
		case *ast.IncDecStmt:
			if sel := plainIntFieldWrite(pass, st.X, recvObj); sel != nil {
				report(sel)
			}
		}
		return true
	})
}

// holdsLock reports whether the method body contains a receiver-rooted
// `.Lock()` call — `s.mu.Lock()` or `s.Lock()` — signalling the writes are
// serialized. RLock is deliberately excluded.
func holdsLock(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if rootedInReceiver(pass, sel.X, recv) {
			held = true
			return false
		}
		return true
	})
	return held
}

// rootedInReceiver reports whether expr is the receiver or a selector chain
// starting at it (s, s.mu, s.inner.mu, ...).
func rootedInReceiver(pass *analysis.Pass, expr ast.Expr, recv types.Object) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e] == recv
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// plainIntFieldWrite matches lhs = recv.Field where Field is a plain integer
// field of the receiver's struct.
func plainIntFieldWrite(pass *analysis.Pass, lhs ast.Expr, recv types.Object) *ast.SelectorExpr {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	if !isPlainInteger(s.Obj().Type()) {
		return nil
	}
	return sel
}
