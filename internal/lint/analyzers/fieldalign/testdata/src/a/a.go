// Package a is fieldalign testdata: one padded struct, one already-tight
// struct, and one whose waste is under the reporting threshold.
package a

// Padded interleaves bools with int64s: 40 bytes where 24 suffice.
type Padded struct { // want `reordering fields`
	a bool
	b int64
	c bool
	d int64
	e bool
}

// Tight is the same field set in optimal order.
type Tight struct {
	b int64
	d int64
	a bool
	c bool
	e bool
}

// Minor wastes under 8 bytes — below the advisory threshold.
type Minor struct {
	a bool
	b int32
	c bool
}
