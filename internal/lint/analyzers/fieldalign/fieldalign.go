// Package fieldalign reports struct types whose declared field order wastes
// memory to padding, mirroring x/tools' fieldalignment analyzer. It is an
// advisory check (the adllint driver runs it only with -fieldalign): field
// order is often chosen for readability, and the engine only reorders hot
// per-batch structs where the padding actually shows up in allocation
// profiles.
//
// For each struct the analyzer compares the current size under the gc
// layout model against the best size achievable by reordering (fields
// sorted by alignment then size — optimal for gc's simple layout), and
// reports when the gap is at least 8 bytes.
package fieldalign

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// Threshold is the minimum padding waste, in bytes, worth reporting.
const Threshold = 8

// Analyzer is the fieldalign check.
var Analyzer = &analysis.Analyzer{
	Name: "fieldalign",
	Doc: "advisory: struct field order wastes " +
		fmt.Sprint(Threshold) + "+ bytes of padding; reorder hot structs (run via adllint -fieldalign)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[st]
			if !ok {
				return true
			}
			strct, ok := tv.Type.Underlying().(*types.Struct)
			if !ok || strct.NumFields() < 2 {
				return true
			}
			cur := pass.Sizes.Sizeof(strct)
			best, order := optimalSize(pass.Sizes, strct)
			if cur-best >= Threshold {
				pass.Reportf(ts.Name.Pos(),
					"struct %s is %d bytes; reordering fields to (%s) makes it %d bytes (%d saved)",
					ts.Name.Name, cur, order, best, cur-best)
			}
			return true
		})
	}
	return nil, nil
}

// optimalSize computes the best struct size achievable by reordering fields
// by descending alignment, then descending size — optimal under gc's
// sequential layout — and a human-readable field order.
func optimalSize(sizes types.Sizes, strct *types.Struct) (int64, string) {
	n := strct.NumFields()
	fields := make([]*types.Var, n)
	for i := 0; i < n; i++ {
		fields[i] = strct.Field(i)
	}
	sort.SliceStable(fields, func(i, j int) bool {
		ai, aj := sizes.Alignof(fields[i].Type()), sizes.Alignof(fields[j].Type())
		if ai != aj {
			return ai > aj
		}
		si, sj := sizes.Sizeof(fields[i].Type()), sizes.Sizeof(fields[j].Type())
		return si > sj
	})
	names := ""
	for i, f := range fields {
		if i > 0 {
			names += ", "
		}
		names += f.Name()
	}
	return sizes.Sizeof(types.NewStruct(fields, nil)), names
}
