package fieldalign_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/analyzers/fieldalign"
)

func TestFieldalign(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), fieldalign.Analyzer, "a")
}
