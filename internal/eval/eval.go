// Package eval is the reference interpreter for ADL: a direct, tuple-at-a-
// time implementation of the semantics rules 1–12 of the paper's §3. Nested
// iterator expressions are executed by nested loops, which makes this
// interpreter both the paper's "naive" execution model (the baseline every
// optimization is measured against) and the semantic oracle every rewrite
// rule and physical operator is validated against.
package eval

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/value"
)

// DB provides base tables and object dereferencing to the interpreter.
// Both storage.Store and storage.MemDB satisfy it.
type DB interface {
	Table(name string) (*value.Set, error)
	Deref(oid value.OID) (*value.Tuple, error)
}

// Env is an immutable environment binding iteration variables to values.
type Env struct {
	name   string
	val    value.Value
	parent *Env
}

// Bind returns a new environment extending e with name = v.
func (e *Env) Bind(name string, v value.Value) *Env {
	return &Env{name: name, val: v, parent: e}
}

// Lookup resolves a variable.
func (e *Env) Lookup(name string) (value.Value, bool) {
	for env := e; env != nil; env = env.parent {
		if env.name == name {
			return env.val, true
		}
	}
	return nil, false
}

// Eval evaluates an ADL expression under an environment against a database.
func Eval(e adl.Expr, env *Env, db DB) (value.Value, error) {
	switch n := e.(type) {
	case *adl.Const:
		return n.Val, nil

	case *adl.Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return nil, fmt.Errorf("eval: unbound variable %q", n.Name)
		}
		return v, nil

	case *adl.Table:
		return db.Table(n.Name)

	case *adl.Field:
		return evalField(n, env, db)

	case *adl.TupleExpr:
		t := value.EmptyTuple()
		for i, name := range n.Names {
			v, err := Eval(n.Elems[i], env, db)
			if err != nil {
				return nil, err
			}
			t = t.With(name, v)
		}
		return t, nil

	case *adl.SetExpr:
		s := value.NewSetCap(len(n.Elems))
		for _, el := range n.Elems {
			v, err := Eval(el, env, db)
			if err != nil {
				return nil, err
			}
			s.Add(v)
		}
		return s, nil

	case *adl.Subscript:
		t, err := evalTuple(n.X, env, db, "subscript")
		if err != nil {
			return nil, err
		}
		return t.Subscript(n.Attrs)

	case *adl.ExceptExpr:
		t, err := evalTuple(n.X, env, db, "except")
		if err != nil {
			return nil, err
		}
		upd := value.EmptyTuple()
		for i, name := range n.Names {
			v, err := Eval(n.Elems[i], env, db)
			if err != nil {
				return nil, err
			}
			upd = upd.With(name, v)
		}
		return t.Except(upd), nil

	case *adl.Concat:
		l, err := evalTuple(n.L, env, db, "concat")
		if err != nil {
			return nil, err
		}
		r, err := evalTuple(n.R, env, db, "concat")
		if err != nil {
			return nil, err
		}
		return l.Concat(r)

	case *adl.Cmp:
		return evalCmp(n, env, db)

	case *adl.Arith:
		return evalArith(n, env, db)

	case *adl.Not:
		b, err := evalBool(n.X, env, db, "¬")
		if err != nil {
			return nil, err
		}
		return value.Bool(!b), nil

	case *adl.And:
		l, err := evalBool(n.L, env, db, "∧")
		if err != nil {
			return nil, err
		}
		if !l {
			return value.Bool(false), nil
		}
		r, err := evalBool(n.R, env, db, "∧")
		if err != nil {
			return nil, err
		}
		return value.Bool(r), nil

	case *adl.Or:
		l, err := evalBool(n.L, env, db, "∨")
		if err != nil {
			return nil, err
		}
		if l {
			return value.Bool(true), nil
		}
		r, err := evalBool(n.R, env, db, "∨")
		if err != nil {
			return nil, err
		}
		return value.Bool(r), nil

	case *adl.SetOp:
		l, err := evalSet(n.L, env, db, n.Op.String())
		if err != nil {
			return nil, err
		}
		r, err := evalSet(n.R, env, db, n.Op.String())
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case adl.Union:
			return l.Union(r), nil
		case adl.Intersect:
			return l.Intersect(r), nil
		case adl.Diff:
			return l.Diff(r), nil
		}
		return nil, fmt.Errorf("eval: unknown set operator")

	case *adl.Flatten:
		s, err := evalSet(n.X, env, db, "flatten")
		if err != nil {
			return nil, err
		}
		return s.Flatten()

	case *adl.Map:
		src, err := evalSet(n.Src, env, db, "α")
		if err != nil {
			return nil, err
		}
		out := value.NewSetCap(src.Len())
		for _, x := range src.Elems() {
			v, err := Eval(n.Body, env.Bind(n.Var, x), db)
			if err != nil {
				return nil, err
			}
			out.Add(v)
		}
		return out, nil

	case *adl.Select:
		src, err := evalSet(n.Src, env, db, "σ")
		if err != nil {
			return nil, err
		}
		out := value.NewSetCap(src.Len())
		for _, x := range src.Elems() {
			keep, err := evalBoolBound(n.Pred, env.Bind(n.Var, x), db, "σ predicate")
			if err != nil {
				return nil, err
			}
			if keep {
				out.Add(x)
			}
		}
		return out, nil

	case *adl.Project:
		src, err := evalSet(n.X, env, db, "π")
		if err != nil {
			return nil, err
		}
		out := value.NewSetCap(src.Len())
		for _, x := range src.Elems() {
			t, ok := x.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("eval: π over non-tuple element %v", x)
			}
			p, err := t.Subscript(n.Attrs)
			if err != nil {
				return nil, err
			}
			out.Add(p)
		}
		return out, nil

	case *adl.Unnest:
		return evalUnnest(n, env, db)

	case *adl.Nest:
		return evalNest(n, env, db)

	case *adl.Product:
		return evalProduct(n, env, db)

	case *adl.Join:
		return evalJoin(n, env, db)

	case *adl.Divide:
		return evalDivide(n, env, db)

	case *adl.Quant:
		src, err := evalSet(n.Src, env, db, n.Kind.String())
		if err != nil {
			return nil, err
		}
		for _, x := range src.Elems() {
			ok, err := evalBoolBound(n.Pred, env.Bind(n.Var, x), db, "quantifier predicate")
			if err != nil {
				return nil, err
			}
			if n.Kind == adl.Exists && ok {
				return value.Bool(true), nil
			}
			if n.Kind == adl.Forall && !ok {
				return value.Bool(false), nil
			}
		}
		// ∃ over the empty range is false; ∀ over the empty range is true.
		return value.Bool(n.Kind == adl.Forall), nil

	case *adl.Agg:
		s, err := evalSet(n.X, env, db, n.Op.String())
		if err != nil {
			return nil, err
		}
		return evalAgg(n.Op, s)

	case *adl.Rename:
		src, err := evalSet(n.X, env, db, "ρ")
		if err != nil {
			return nil, err
		}
		out := value.NewSetCap(src.Len())
		for _, xv := range src.Elems() {
			t, ok := xv.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("eval: ρ over non-tuple element %v", xv)
			}
			v, ok := t.Get(n.From)
			if !ok {
				return nil, fmt.Errorf("eval: ρ on missing attribute %q", n.From)
			}
			renamed := t.Drop([]string{n.From})
			if renamed.Has(n.To) {
				return nil, fmt.Errorf("eval: ρ target attribute %q already exists", n.To)
			}
			out.Add(renamed.With(n.To, v))
		}
		return out, nil

	case *adl.Materialize:
		return evalMaterialize(n, env, db)

	case *adl.Let:
		v, err := Eval(n.Val, env, db)
		if err != nil {
			return nil, err
		}
		return Eval(n.Body, env.Bind(n.Var, v), db)
	}
	return nil, fmt.Errorf("eval: unknown expression %T", e)
}

// EvalSet evaluates e and requires a set result (e.g. a whole query).
func EvalSet(e adl.Expr, env *Env, db DB) (*value.Set, error) {
	v, err := Eval(e, env, db)
	if err != nil {
		return nil, err
	}
	s, ok := v.(*value.Set)
	if !ok {
		return nil, fmt.Errorf("eval: expected set result, got %s", v.Kind())
	}
	return s, nil
}

func evalField(n *adl.Field, env *Env, db DB) (value.Value, error) {
	x, err := Eval(n.X, env, db)
	if err != nil {
		return nil, err
	}
	// Implicit pointer navigation: path expressions over oid references are
	// followed through the object store.
	if oid, ok := x.(value.OID); ok {
		obj, err := db.Deref(oid)
		if err != nil {
			return nil, err
		}
		x = obj
	}
	t, ok := x.(*value.Tuple)
	if !ok {
		return nil, fmt.Errorf("eval: field access .%s on %s", n.Name, x.Kind())
	}
	v, ok := t.Get(n.Name)
	if !ok {
		return nil, fmt.Errorf("eval: tuple %v has no attribute %q", t, n.Name)
	}
	return v, nil
}

func evalCmp(n *adl.Cmp, env *Env, db DB) (value.Value, error) {
	l, err := Eval(n.L, env, db)
	if err != nil {
		return nil, err
	}
	r, err := Eval(n.R, env, db)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case adl.Eq:
		return value.Bool(value.Equal(l, r)), nil
	case adl.Ne:
		return value.Bool(!value.Equal(l, r)), nil
	case adl.Lt, adl.Le, adl.Gt, adl.Ge:
		if l.Kind() != r.Kind() || !orderedKind(l.Kind()) {
			return nil, fmt.Errorf("eval: ordered comparison %s on %s and %s", n.Op, l.Kind(), r.Kind())
		}
		c := value.Compare(l, r)
		switch n.Op {
		case adl.Lt:
			return value.Bool(c < 0), nil
		case adl.Le:
			return value.Bool(c <= 0), nil
		case adl.Gt:
			return value.Bool(c > 0), nil
		default:
			return value.Bool(c >= 0), nil
		}
	case adl.In:
		rs, ok := r.(*value.Set)
		if !ok {
			return nil, fmt.Errorf("eval: ∈ requires a set right operand, got %s", r.Kind())
		}
		return value.Bool(rs.Contains(l)), nil
	case adl.Has:
		ls, ok := l.(*value.Set)
		if !ok {
			return nil, fmt.Errorf("eval: ∋ requires a set left operand, got %s", l.Kind())
		}
		return value.Bool(ls.Contains(r)), nil
	case adl.Sub, adl.SubEq, adl.Sup, adl.SupEq:
		ls, ok1 := l.(*value.Set)
		rs, ok2 := r.(*value.Set)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("eval: %s requires set operands, got %s and %s", n.Op, l.Kind(), r.Kind())
		}
		switch n.Op {
		case adl.Sub:
			return value.Bool(ls.ProperSubsetOf(rs)), nil
		case adl.SubEq:
			return value.Bool(ls.SubsetOf(rs)), nil
		case adl.Sup:
			return value.Bool(rs.ProperSubsetOf(ls)), nil
		default:
			return value.Bool(rs.SubsetOf(ls)), nil
		}
	}
	return nil, fmt.Errorf("eval: unknown comparison operator")
}

func orderedKind(k value.Kind) bool {
	switch k {
	case value.KindInt, value.KindFloat, value.KindString, value.KindDate:
		return true
	}
	return false
}

func evalArith(n *adl.Arith, env *Env, db DB) (value.Value, error) {
	l, err := Eval(n.L, env, db)
	if err != nil {
		return nil, err
	}
	r, err := Eval(n.R, env, db)
	if err != nil {
		return nil, err
	}
	if li, ok := l.(value.Int); ok {
		ri, ok := r.(value.Int)
		if !ok {
			return nil, fmt.Errorf("eval: arithmetic on int and %s", r.Kind())
		}
		switch n.Op {
		case adl.Add:
			return li + ri, nil
		case adl.Subtract:
			return li - ri, nil
		case adl.Mul:
			return li * ri, nil
		case adl.Div:
			if ri == 0 {
				return nil, fmt.Errorf("eval: integer division by zero")
			}
			return li / ri, nil
		}
	}
	if lf, ok := l.(value.Float); ok {
		rf, ok := r.(value.Float)
		if !ok {
			return nil, fmt.Errorf("eval: arithmetic on float and %s", r.Kind())
		}
		switch n.Op {
		case adl.Add:
			return lf + rf, nil
		case adl.Subtract:
			return lf - rf, nil
		case adl.Mul:
			return lf * rf, nil
		case adl.Div:
			if rf == 0 {
				return nil, fmt.Errorf("eval: division by zero")
			}
			return lf / rf, nil
		}
	}
	return nil, fmt.Errorf("eval: arithmetic on %s", l.Kind())
}

// evalUnnest implements semantics rule 7:
// μ_a(e) = {x′ ∘ x[b1,...,bm] | x ∈ e ∧ x′ ∈ x.a}.
// Tuples whose set-valued attribute is empty contribute nothing — the
// dangling-tuple loss at the heart of the Complex Object bug.
func evalUnnest(n *adl.Unnest, env *Env, db DB) (value.Value, error) {
	src, err := evalSet(n.X, env, db, "μ")
	if err != nil {
		return nil, err
	}
	out := value.NewSetCap(src.Len())
	for _, xv := range src.Elems() {
		x, ok := xv.(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: μ over non-tuple element %v", xv)
		}
		av, ok := x.Get(n.Attr)
		if !ok {
			return nil, fmt.Errorf("eval: μ on missing attribute %q", n.Attr)
		}
		as, ok := av.(*value.Set)
		if !ok {
			return nil, fmt.Errorf("eval: μ on non-set attribute %q (%s)", n.Attr, av.Kind())
		}
		rest := x.Drop([]string{n.Attr})
		for _, inner := range as.Elems() {
			it, ok := inner.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("eval: μ element of %q is not a tuple: %v", n.Attr, inner)
			}
			cat, err := it.Concat(rest)
			if err != nil {
				return nil, err
			}
			out.Add(cat)
		}
	}
	return out, nil
}

// evalNest implements semantics rule 8: ν_{A→a}(e) groups e by the
// attributes B = SCH(e) − A and collects each group's A-subtuples.
func evalNest(n *adl.Nest, env *Env, db DB) (value.Value, error) {
	src, err := evalSet(n.X, env, db, "ν")
	if err != nil {
		return nil, err
	}
	type group struct {
		key     *value.Tuple
		members *value.Set
	}
	var groups []*group
	index := map[uint64][]int{}
	for _, xv := range src.Elems() {
		x, ok := xv.(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: ν over non-tuple element %v", xv)
		}
		sub, err := x.Subscript(n.Attrs)
		if err != nil {
			return nil, err
		}
		key := x.Drop(n.Attrs)
		if key.Has(n.As) {
			return nil, fmt.Errorf("eval: ν result attribute %q already exists", n.As)
		}
		h := value.Hash(key)
		found := false
		for _, gi := range index[h] {
			if value.Equal(groups[gi].key, key) {
				groups[gi].members.Add(sub)
				found = true
				break
			}
		}
		if !found {
			index[h] = append(index[h], len(groups))
			groups = append(groups, &group{key: key, members: value.NewSet(sub)})
		}
	}
	out := value.NewSetCap(len(groups))
	for _, g := range groups {
		out.Add(g.key.With(n.As, g.members))
	}
	return out, nil
}

func evalProduct(n *adl.Product, env *Env, db DB) (value.Value, error) {
	l, err := evalSet(n.L, env, db, "×")
	if err != nil {
		return nil, err
	}
	r, err := evalSet(n.R, env, db, "×")
	if err != nil {
		return nil, err
	}
	out := value.NewSetCap(l.Len() * r.Len())
	for _, lv := range l.Elems() {
		lt, ok := lv.(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: × over non-tuple element %v", lv)
		}
		for _, rv := range r.Elems() {
			rt, ok := rv.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("eval: × over non-tuple element %v", rv)
			}
			cat, err := lt.Concat(rt)
			if err != nil {
				return nil, err
			}
			out.Add(cat)
		}
	}
	return out, nil
}

// evalJoin implements semantics rules 10–12, Definition 1 (nestjoin) and the
// left outer join, all by nested loops.
func evalJoin(n *adl.Join, env *Env, db DB) (value.Value, error) {
	l, err := evalSet(n.L, env, db, "join")
	if err != nil {
		return nil, err
	}
	r, err := evalSet(n.R, env, db, "join")
	if err != nil {
		return nil, err
	}
	out := value.NewSetCap(l.Len())
	// nullPad is the all-null tuple over R's attributes, used by outer joins.
	var nullPad *value.Tuple
	if n.Kind == adl.Outer {
		nullPad = value.EmptyTuple()
		if len(r.Elems()) > 0 {
			if rt, ok := r.Elems()[0].(*value.Tuple); ok {
				for _, name := range rt.Names() {
					nullPad = nullPad.With(name, value.Null{})
				}
			}
		}
	}
	for _, lv := range l.Elems() {
		lt, ok := lv.(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: join over non-tuple element %v", lv)
		}
		matched := false
		var nestSet *value.Set
		if n.Kind == adl.NestJ {
			nestSet = value.EmptySet()
		}
		for _, rv := range r.Elems() {
			benv := env.Bind(n.LVar, lv).Bind(n.RVar, rv)
			ok, err := evalBoolBound(n.On, benv, db, "join predicate")
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			switch n.Kind {
			case adl.Inner, adl.Outer:
				rt, isT := rv.(*value.Tuple)
				if !isT {
					return nil, fmt.Errorf("eval: join over non-tuple element %v", rv)
				}
				cat, err := lt.Concat(rt)
				if err != nil {
					return nil, err
				}
				out.Add(cat)
			case adl.Semi:
				out.Add(lv)
			case adl.NestJ:
				member := rv
				if n.RFun != nil {
					member, err = Eval(n.RFun, benv, db)
					if err != nil {
						return nil, err
					}
				}
				nestSet.Add(member)
			}
			if n.Kind == adl.Semi {
				break
			}
		}
		switch n.Kind {
		case adl.Anti:
			if !matched {
				out.Add(lv)
			}
		case adl.NestJ:
			// Dangling left tuples are preserved with an empty set — exactly
			// what distinguishes the nestjoin from join-then-nest.
			out.Add(lt.With(n.As, nestSet))
		case adl.Outer:
			if !matched {
				cat, err := lt.Concat(nullPad)
				if err != nil {
					return nil, err
				}
				out.Add(cat)
			}
		}
	}
	return out, nil
}

// evalDivide implements relational division: with SCH(l) = A ∪ B and
// SCH(r) = B, l ÷ r = {x[A] | x ∈ l ∧ ∀y ∈ r • x[A] ∘ y ∈ l}.
func evalDivide(n *adl.Divide, env *Env, db DB) (value.Value, error) {
	l, err := evalSet(n.L, env, db, "÷")
	if err != nil {
		return nil, err
	}
	r, err := evalSet(n.R, env, db, "÷")
	if err != nil {
		return nil, err
	}
	out := value.EmptySet()
	if l.Len() == 0 {
		return out, nil
	}
	lt0, ok := l.Elems()[0].(*value.Tuple)
	if !ok {
		return nil, fmt.Errorf("eval: ÷ over non-tuple elements")
	}
	var bNames []string
	if r.Len() > 0 {
		rt0, ok := r.Elems()[0].(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: ÷ divisor of non-tuples")
		}
		bNames = rt0.Names()
	}
	aNames := lt0.Drop(bNames).Names()
	for _, lv := range l.Elems() {
		lt := lv.(*value.Tuple)
		a, err := lt.Subscript(aNames)
		if err != nil {
			return nil, err
		}
		all := true
		for _, rv := range r.Elems() {
			rt := rv.(*value.Tuple)
			cat, err := a.Concat(rt)
			if err != nil {
				return nil, err
			}
			if !l.Contains(cat) {
				all = false
				break
			}
		}
		if all {
			out.Add(a)
		}
	}
	return out, nil
}

func evalAgg(op adl.AggOp, s *value.Set) (value.Value, error) {
	if op == adl.Count {
		return value.Int(int64(s.Len())), nil
	}
	if s.Len() == 0 {
		if op == adl.Sum {
			return value.Int(0), nil
		}
		return nil, fmt.Errorf("eval: %s over empty set", op)
	}
	elems := s.Elems()
	switch op {
	case adl.Min, adl.Max:
		best := elems[0]
		if !orderedKind(best.Kind()) {
			return nil, fmt.Errorf("eval: %s over non-ordered elements", op)
		}
		for _, e := range elems[1:] {
			if e.Kind() != best.Kind() {
				return nil, fmt.Errorf("eval: %s over mixed kinds", op)
			}
			c := value.Compare(e, best)
			if (op == adl.Min && c < 0) || (op == adl.Max && c > 0) {
				best = e
			}
		}
		return best, nil
	case adl.Sum, adl.Avg:
		switch elems[0].(type) {
		case value.Int:
			var total int64
			for _, e := range elems {
				i, ok := e.(value.Int)
				if !ok {
					return nil, fmt.Errorf("eval: %s over mixed kinds", op)
				}
				total += int64(i)
			}
			if op == adl.Sum {
				return value.Int(total), nil
			}
			return value.Float(float64(total) / float64(len(elems))), nil
		case value.Float:
			var total float64
			for _, e := range elems {
				f, ok := e.(value.Float)
				if !ok {
					return nil, fmt.Errorf("eval: %s over mixed kinds", op)
				}
				total += float64(f)
			}
			if op == adl.Sum {
				return value.Float(total), nil
			}
			return value.Float(total / float64(len(elems))), nil
		}
		return nil, fmt.Errorf("eval: %s over non-numeric elements", op)
	}
	return nil, fmt.Errorf("eval: unknown aggregate")
}

// evalMaterialize dereferences the oid-valued attribute Attr of every tuple
// of X and extends the tuple with the referenced object(s) as attribute As.
// A scalar oid attribute yields the single object; a set-valued attribute of
// unary oid tuples (the schema mapping of set-of-reference attributes)
// yields the set of objects.
func evalMaterialize(n *adl.Materialize, env *Env, db DB) (value.Value, error) {
	src, err := evalSet(n.X, env, db, "materialize")
	if err != nil {
		return nil, err
	}
	out := value.NewSetCap(src.Len())
	for _, xv := range src.Elems() {
		x, ok := xv.(*value.Tuple)
		if !ok {
			return nil, fmt.Errorf("eval: materialize over non-tuple element %v", xv)
		}
		av, ok := x.Get(n.Attr)
		if !ok {
			return nil, fmt.Errorf("eval: materialize on missing attribute %q", n.Attr)
		}
		switch ref := av.(type) {
		case value.OID:
			obj, err := db.Deref(ref)
			if err != nil {
				return nil, err
			}
			out.Add(x.With(n.As, obj))
		case *value.Set:
			objs := value.NewSetCap(ref.Len())
			for _, el := range ref.Elems() {
				oid, err := refOID(el)
				if err != nil {
					return nil, err
				}
				obj, err := db.Deref(oid)
				if err != nil {
					return nil, err
				}
				objs.Add(obj)
			}
			out.Add(x.With(n.As, objs))
		default:
			return nil, fmt.Errorf("eval: materialize on non-reference attribute %q (%s)", n.Attr, av.Kind())
		}
	}
	return out, nil
}

// refOID extracts the oid from a reference-set element: either a bare oid or
// a unary tuple holding one.
func refOID(el value.Value) (value.OID, error) {
	switch rv := el.(type) {
	case value.OID:
		return rv, nil
	case *value.Tuple:
		if rv.Len() == 1 {
			_, v := rv.At(0)
			if oid, ok := v.(value.OID); ok {
				return oid, nil
			}
		}
	}
	return 0, fmt.Errorf("eval: reference element %v is not an oid", el)
}

func evalSet(e adl.Expr, env *Env, db DB, op string) (*value.Set, error) {
	v, err := Eval(e, env, db)
	if err != nil {
		return nil, err
	}
	s, ok := v.(*value.Set)
	if !ok {
		return nil, fmt.Errorf("eval: %s requires a set operand, got %s", op, v.Kind())
	}
	return s, nil
}

func evalTuple(e adl.Expr, env *Env, db DB, op string) (*value.Tuple, error) {
	v, err := Eval(e, env, db)
	if err != nil {
		return nil, err
	}
	// Implicit pointer navigation also applies to tuple positions.
	if oid, ok := v.(value.OID); ok {
		return db.Deref(oid)
	}
	t, ok := v.(*value.Tuple)
	if !ok {
		return nil, fmt.Errorf("eval: %s requires a tuple operand, got %s", op, v.Kind())
	}
	return t, nil
}

func evalBool(e adl.Expr, env *Env, db DB, op string) (bool, error) {
	return evalBoolBound(e, env, db, op)
}

func evalBoolBound(e adl.Expr, env *Env, db DB, op string) (bool, error) {
	v, err := Eval(e, env, db)
	if err != nil {
		return false, err
	}
	b, ok := v.(value.Bool)
	if !ok {
		return false, fmt.Errorf("eval: %s requires a boolean, got %s", op, v.Kind())
	}
	return bool(b), nil
}
