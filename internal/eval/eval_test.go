package eval

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

// figure2DB returns the paper's Figure 2 example tables:
//
//	X = {⟨a=1, c={⟨d=1,e=1⟩, ⟨d=1,e=2⟩}⟩, ⟨a=2, c=∅⟩, ⟨a=3, c={⟨d=2,e=3⟩}⟩}
//	Y = {⟨d=1,e=1⟩, ⟨d=1,e=2⟩, ⟨d=1,e=3⟩, ⟨d=3,e=3⟩}
func figure2DB() *storage.MemDB {
	de := func(d, e int64) *value.Tuple {
		return value.NewTuple("d", value.Int(d), "e", value.Int(e))
	}
	x := value.NewSet(
		value.NewTuple("a", value.Int(1), "c", value.NewSet(de(1, 1), de(1, 2))),
		value.NewTuple("a", value.Int(2), "c", value.EmptySet()),
		value.NewTuple("a", value.Int(3), "c", value.NewSet(de(2, 3))),
	)
	y := value.NewSet(de(1, 1), de(1, 2), de(1, 3), de(3, 3))
	return storage.NewMemDB("X", x, "Y", y)
}

func mustEval(t *testing.T, e adl.Expr, db DB) value.Value {
	t.Helper()
	v, err := Eval(e, nil, db)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func evalErr(t *testing.T, e adl.Expr, db DB) error {
	t.Helper()
	_, err := Eval(e, nil, db)
	if err == nil {
		t.Fatalf("Eval(%s): expected error", e)
	}
	return err
}

func TestConstVarTable(t *testing.T) {
	db := figure2DB()
	if v := mustEval(t, adl.CInt(42), db); !value.Equal(v, value.Int(42)) {
		t.Errorf("const = %v", v)
	}
	env := (*Env)(nil).Bind("x", value.Int(7))
	v, err := Eval(adl.V("x"), env, db)
	if err != nil || !value.Equal(v, value.Int(7)) {
		t.Errorf("var = %v, %v", v, err)
	}
	if _, err := Eval(adl.V("nope"), env, db); err == nil {
		t.Errorf("unbound var must fail")
	}
	tab := mustEval(t, adl.T("Y"), db)
	if tab.(*value.Set).Len() != 4 {
		t.Errorf("table Y = %v", tab)
	}
	evalErr(t, adl.T("NOPE"), db)
}

// TestFlatten exercises semantics rule 1: ∪(e) = {z | z ∈ Z ∧ Z ∈ e}.
func TestFlatten(t *testing.T) {
	db := figure2DB()
	// flatten(α[x : x.c](X)) = union of all c-sets.
	e := adl.Flat(adl.MapE("x", adl.Dot(adl.V("x"), "c"), adl.T("X")))
	got := mustEval(t, e, db)
	de := func(d, e int64) *value.Tuple {
		return value.NewTuple("d", value.Int(d), "e", value.Int(e))
	}
	want := value.NewSet(de(1, 1), de(1, 2), de(2, 3))
	if !value.Equal(got, want) {
		t.Errorf("flatten = %v, want %v", got, want)
	}
	evalErr(t, adl.Flat(adl.T("Y")), db) // elements are tuples, not sets
}

// TestSubscript exercises semantics rule 2: e[a1,...,an].
func TestSubscript(t *testing.T) {
	db := figure2DB()
	env := (*Env)(nil).Bind("t", value.NewTuple("a", value.Int(1), "b", value.Int(2), "c", value.Int(3)))
	v, err := Eval(adl.SubT(adl.V("t"), "c", "a"), env, db)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(v, value.NewTuple("a", value.Int(1), "c", value.Int(3))) {
		t.Errorf("subscript = %v", v)
	}
	if _, err := Eval(adl.SubT(adl.V("t"), "zz"), env, db); err == nil {
		t.Errorf("missing attribute must fail")
	}
}

// TestExcept exercises semantics rule 3: update, keep, extend.
func TestExcept(t *testing.T) {
	db := figure2DB()
	env := (*Env)(nil).Bind("t", value.NewTuple("a", value.Int(1), "b", value.Int(2)))
	e := adl.Exc(adl.V("t"), "a", adl.CInt(10), "z", adl.CInt(9))
	v, err := Eval(e, env, db)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewTuple("a", value.Int(10), "b", value.Int(2), "z", value.Int(9))
	if !value.Equal(v, want) {
		t.Errorf("except = %v, want %v", v, want)
	}
	// The update expressions may reference the tuple being updated.
	e2 := adl.Exc(adl.V("t"), "a", &adl.Arith{Op: adl.Add, L: adl.Dot(adl.V("t"), "a"), R: adl.CInt(5)})
	v2, err := Eval(e2, env, db)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v2.(*value.Tuple).Get("a"); !value.Equal(got, value.Int(6)) {
		t.Errorf("self-referencing except = %v", v2)
	}
}

// TestMap exercises semantics rule 4, including deduplication (map yields a set).
func TestMap(t *testing.T) {
	db := figure2DB()
	// α[y : y.d](Y) = {1, 3}: three tuples share d=1.
	got := mustEval(t, adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.T("Y")), db)
	if !value.Equal(got, value.NewSet(value.Int(1), value.Int(3))) {
		t.Errorf("map dedup = %v", got)
	}
	// Map can build complex results: α[y : ⟨k = y.d, s = {y.e}⟩](Y).
	e := adl.MapE("y", adl.Tup("k", adl.Dot(adl.V("y"), "d"), "s", adl.SetOf(adl.Dot(adl.V("y"), "e"))), adl.T("Y"))
	got2 := mustEval(t, e, db).(*value.Set)
	if got2.Len() != 4 {
		t.Errorf("complex map = %v", got2)
	}
}

// TestSelect exercises semantics rule 5.
func TestSelect(t *testing.T) {
	db := figure2DB()
	e := adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y"))
	got := mustEval(t, e, db).(*value.Set)
	if got.Len() != 3 {
		t.Errorf("select = %v", got)
	}
	// Non-boolean predicate is a type error.
	bad := adl.Sel("y", adl.CInt(1), adl.T("Y"))
	evalErr(t, bad, db)
}

// TestProject exercises semantics rule 6 (with set semantics collapsing
// duplicates).
func TestProject(t *testing.T) {
	db := figure2DB()
	got := mustEval(t, adl.Proj(adl.T("Y"), "d"), db)
	want := value.NewSet(value.NewTuple("d", value.Int(1)), value.NewTuple("d", value.Int(3)))
	if !value.Equal(got, want) {
		t.Errorf("project = %v, want %v", got, want)
	}
}

// TestUnnest exercises semantics rule 7, including the silent loss of tuples
// with empty set-valued attributes.
func TestUnnest(t *testing.T) {
	db := figure2DB()
	got := mustEval(t, adl.Mu("c", adl.T("X")), db).(*value.Set)
	// a=1 contributes 2 tuples, a=2 contributes none (c=∅), a=3 contributes 1.
	if got.Len() != 3 {
		t.Fatalf("unnest size = %d: %v", got.Len(), got)
	}
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		if value.Equal(tup.MustGet("a"), value.Int(2)) {
			t.Errorf("tuple with empty c must be lost by μ, got %v", tup)
		}
		if tup.Len() != 3 { // d, e, a
			t.Errorf("unnested tuple shape: %v", tup)
		}
	}
}

// TestNest exercises semantics rule 8 and checks ν ∘ μ behaviour on PNF
// relations (nest undoes unnest only when no empty sets were lost).
func TestNest(t *testing.T) {
	db := figure2DB()
	// ν over the unnested X: μ then ν loses ⟨a=2, c=∅⟩.
	e := adl.Nu(adl.Mu("c", adl.T("X")), "c", "d", "e")
	got := mustEval(t, e, db).(*value.Set)
	if got.Len() != 2 {
		t.Fatalf("nest(unnest) = %v", got)
	}
	x, _ := db.Table("X")
	if got.Contains(value.NewTuple("a", value.Int(2), "c", value.EmptySet())) {
		t.Errorf("ν(μ(X)) must lose the empty-set tuple (PNF caveat)")
	}
	// All other tuples are recovered.
	for _, el := range got.Elems() {
		if !x.Contains(el) {
			t.Errorf("ν(μ(X)) invented tuple %v", el)
		}
	}
}

func TestNestGroupsByRemainingAttributes(t *testing.T) {
	// ν_{e→es}(Y) groups by d.
	db := figure2DB()
	got := mustEval(t, adl.Nu(adl.T("Y"), "es", "e"), db)
	want := value.NewSet(
		value.NewTuple("d", value.Int(1), "es", value.NewSet(
			value.NewTuple("e", value.Int(1)), value.NewTuple("e", value.Int(2)), value.NewTuple("e", value.Int(3)))),
		value.NewTuple("d", value.Int(3), "es", value.NewSet(value.NewTuple("e", value.Int(3)))),
	)
	if !value.Equal(got, want) {
		t.Errorf("nest = %v, want %v", got, want)
	}
}

// TestProduct exercises semantics rule 9.
func TestProduct(t *testing.T) {
	db := storage.NewMemDB(
		"A", value.NewSet(value.NewTuple("a", value.Int(1)), value.NewTuple("a", value.Int(2))),
		"B", value.NewSet(value.NewTuple("b", value.Int(10))),
	)
	got := mustEval(t, adl.Prod(adl.T("A"), adl.T("B")), db)
	want := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(10)),
		value.NewTuple("a", value.Int(2), "b", value.Int(10)),
	)
	if !value.Equal(got, want) {
		t.Errorf("product = %v", got)
	}
	// Name conflicts are well-formedness errors.
	evalErr(t, adl.Prod(adl.T("A"), adl.T("A")), db)
}

// TestJoins exercises semantics rules 10-12.
func TestJoins(t *testing.T) {
	db := figure2DB()
	on := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))

	// Regular join: a=1 matches three Y tuples, a=3 matches one.
	inner := mustEval(t, adl.JoinE(adl.T("X"), "x", "y", on, adl.T("Y")), db).(*value.Set)
	if inner.Len() != 4 {
		t.Errorf("inner join size = %d, want 4", inner.Len())
	}

	// Semijoin: left tuples with at least one match.
	semi := mustEval(t, adl.SemiJoin(adl.T("X"), "x", "y", on, adl.T("Y")), db).(*value.Set)
	if semi.Len() != 2 {
		t.Errorf("semijoin size = %d, want 2", semi.Len())
	}
	for _, el := range semi.Elems() {
		a := el.(*value.Tuple).MustGet("a")
		if value.Equal(a, value.Int(2)) {
			t.Errorf("a=2 has no match and must not appear in semijoin")
		}
	}

	// Antijoin: left tuples with no match.
	anti := mustEval(t, adl.AntiJoin(adl.T("X"), "x", "y", on, adl.T("Y")), db).(*value.Set)
	if anti.Len() != 1 {
		t.Fatalf("antijoin size = %d, want 1", anti.Len())
	}
	if a := anti.Elems()[0].(*value.Tuple).MustGet("a"); !value.Equal(a, value.Int(2)) {
		t.Errorf("antijoin kept %v, want a=2", a)
	}

	// Semijoin ∪ antijoin = left operand.
	x, _ := db.Table("X")
	if !value.Equal(semi.Union(anti), x) {
		t.Errorf("⋉ ∪ ▷ must partition the left operand")
	}
}

// TestNestjoin exercises Definition 1 (§6.1) on the Figure 3 example shape.
func TestNestjoin(t *testing.T) {
	xyz := storage.NewMemDB(
		"X", value.NewSet(
			value.NewTuple("a", value.Int(1), "b", value.Int(1)),
			value.NewTuple("a", value.Int(2), "b", value.Int(1)),
			value.NewTuple("a", value.Int(3), "b", value.Int(3))),
		"Y", value.NewSet(
			value.NewTuple("c", value.Int(1), "d", value.Int(1)),
			value.NewTuple("c", value.Int(2), "d", value.Int(1)),
			value.NewTuple("c", value.Int(3), "d", value.Int(2))),
	)
	on := adl.EqE(adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "d"))
	got := mustEval(t, adl.NestJoin(adl.T("X"), "x", "y", on, "ys", adl.T("Y")), xyz).(*value.Set)
	if got.Len() != 3 {
		t.Fatalf("nestjoin size = %d, want 3 (dangling preserved)", got.Len())
	}
	matches := value.NewSet(
		value.NewTuple("c", value.Int(1), "d", value.Int(1)),
		value.NewTuple("c", value.Int(2), "d", value.Int(1)))
	want := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(1), "ys", matches),
		value.NewTuple("a", value.Int(2), "b", value.Int(1), "ys", matches),
		value.NewTuple("a", value.Int(3), "b", value.Int(3), "ys", value.EmptySet()),
	)
	if !value.Equal(got, want) {
		t.Errorf("nestjoin = %v, want %v", got, want)
	}
}

func TestNestjoinWithRFun(t *testing.T) {
	// Extended nestjoin: collect G(x,y) = y.e instead of whole right tuples.
	db := figure2DB()
	on := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))
	e := adl.NestJoinF(adl.T("X"), "x", "y", on, adl.Dot(adl.V("y"), "e"), "es", adl.T("Y"))
	got := mustEval(t, e, db).(*value.Set)
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		a := tup.MustGet("a").(value.Int)
		es := tup.MustGet("es").(*value.Set)
		switch a {
		case 1:
			if !value.Equal(es, value.NewSet(value.Int(1), value.Int(2), value.Int(3))) {
				t.Errorf("a=1 es = %v", es)
			}
		case 2:
			if es.Len() != 0 {
				t.Errorf("a=2 es = %v, want ∅", es)
			}
		case 3:
			if !value.Equal(es, value.NewSet(value.Int(3))) {
				t.Errorf("a=3 es = %v, want {3}", es)
			}
		}
	}
}

func TestOuterJoinPadsWithNull(t *testing.T) {
	db := figure2DB()
	on := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))
	got := mustEval(t, adl.OuterJoin(adl.T("X"), "x", "y", on, adl.T("Y")), db).(*value.Set)
	// 4 matched tuples + 1 null-padded dangling tuple (a=2).
	if got.Len() != 5 {
		t.Fatalf("outer join size = %d, want 5", got.Len())
	}
	foundNull := false
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		if value.Equal(tup.MustGet("a"), value.Int(2)) {
			foundNull = true
			if tup.MustGet("d").Kind() != value.KindNull || tup.MustGet("e").Kind() != value.KindNull {
				t.Errorf("dangling tuple not null-padded: %v", tup)
			}
		}
	}
	if !foundNull {
		t.Errorf("outer join lost the dangling tuple")
	}
}

func TestDivide(t *testing.T) {
	// Classic division: which a's are paired with all b's in R?
	l := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(10)),
		value.NewTuple("a", value.Int(1), "b", value.Int(20)),
		value.NewTuple("a", value.Int(2), "b", value.Int(10)),
	)
	r := value.NewSet(
		value.NewTuple("b", value.Int(10)),
		value.NewTuple("b", value.Int(20)),
	)
	db := storage.NewMemDB("L", l, "R", r)
	got := mustEval(t, adl.DivE(adl.T("L"), adl.T("R")), db)
	want := value.NewSet(value.NewTuple("a", value.Int(1)))
	if !value.Equal(got, want) {
		t.Errorf("divide = %v, want %v", got, want)
	}
	// Empty divisor: ∀ over ∅ holds for every left tuple. At runtime the
	// divisor schema B is unknown when the divisor is empty, so A defaults
	// to all of SCH(l) and the result is l itself.
	got2 := mustEval(t, adl.DivE(adl.T("L"), adl.SetOf()), db)
	if got2.(*value.Set).Len() != 3 {
		t.Errorf("divide by ∅ = %v", got2)
	}
}

func TestQuantifiers(t *testing.T) {
	db := figure2DB()
	// ∃y ∈ Y • y.d = 3 is true; ∀y ∈ Y • y.d = 1 is false.
	ex := adl.Ex("y", adl.T("Y"), adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(3)))
	if v := mustEval(t, ex, db); !value.Truth(v) {
		t.Errorf("∃ = %v", v)
	}
	all := adl.All("y", adl.T("Y"), adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)))
	if v := mustEval(t, all, db); value.Truth(v) {
		t.Errorf("∀ = %v", v)
	}
	// Over the empty range: ∃ false, ∀ true (the paper leans on this).
	if v := mustEval(t, adl.Ex("y", adl.SetOf(), adl.CBool(true)), db); value.Truth(v) {
		t.Errorf("∃ over ∅ must be false")
	}
	if v := mustEval(t, adl.All("y", adl.SetOf(), adl.CBool(false)), db); !value.Truth(v) {
		t.Errorf("∀ over ∅ must be true")
	}
}

func TestAggregates(t *testing.T) {
	db := figure2DB()
	set := adl.SetOf(adl.CInt(1), adl.CInt(2), adl.CInt(3))
	cases := []struct {
		op   adl.AggOp
		want value.Value
	}{
		{adl.Count, value.Int(3)},
		{adl.Sum, value.Int(6)},
		{adl.Min, value.Int(1)},
		{adl.Max, value.Int(3)},
		{adl.Avg, value.Float(2)},
	}
	for _, c := range cases {
		if got := mustEval(t, adl.AggE(c.op, set), db); !value.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", c.op, got, c.want)
		}
	}
	// count(∅) = 0, sum(∅) = 0, min(∅) errors.
	if got := mustEval(t, adl.AggE(adl.Count, adl.SetOf()), db); !value.Equal(got, value.Int(0)) {
		t.Errorf("count(∅) = %v", got)
	}
	if got := mustEval(t, adl.AggE(adl.Sum, adl.SetOf()), db); !value.Equal(got, value.Int(0)) {
		t.Errorf("sum(∅) = %v", got)
	}
	evalErr(t, adl.AggE(adl.Min, adl.SetOf()), db)
}

func TestSetComparisons(t *testing.T) {
	db := figure2DB()
	s12 := adl.SetOf(adl.CInt(1), adl.CInt(2))
	s123 := adl.SetOf(adl.CInt(1), adl.CInt(2), adl.CInt(3))
	cases := []struct {
		e    adl.Expr
		want bool
	}{
		{adl.CmpE(adl.In, adl.CInt(1), s12), true},
		{adl.CmpE(adl.In, adl.CInt(9), s12), false},
		{adl.CmpE(adl.SubEq, s12, s123), true},
		{adl.CmpE(adl.Sub, s12, s123), true},
		{adl.CmpE(adl.Sub, s123, s123), false},
		{adl.CmpE(adl.SubEq, s123, s123), true},
		{adl.CmpE(adl.SupEq, s123, s12), true},
		{adl.CmpE(adl.Sup, s123, s12), true},
		{adl.CmpE(adl.Sup, s12, s123), false},
		{adl.EqE(s12, adl.SetOf(adl.CInt(2), adl.CInt(1))), true},
		{adl.CmpE(adl.Has, adl.SetOf(s12), adl.SetOf(adl.CInt(2), adl.CInt(1))), true},
		{adl.CmpE(adl.Has, adl.SetOf(s123), s12), false},
		{adl.CmpE(adl.Ne, s12, s123), true},
	}
	for _, c := range cases {
		got := mustEval(t, c.e, db)
		if value.Truth(got) != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	// Kind errors.
	evalErr(t, adl.CmpE(adl.In, adl.CInt(1), adl.CInt(2)), db)
	evalErr(t, adl.CmpE(adl.SubEq, adl.CInt(1), s12), db)
	evalErr(t, adl.CmpE(adl.Has, adl.CInt(1), s12), db)
	evalErr(t, adl.CmpE(adl.Lt, adl.CInt(1), adl.CStr("x")), db)
}

func TestOrderedComparisons(t *testing.T) {
	db := figure2DB()
	cases := []struct {
		e    adl.Expr
		want bool
	}{
		{adl.CmpE(adl.Lt, adl.CInt(1), adl.CInt(2)), true},
		{adl.CmpE(adl.Le, adl.CInt(2), adl.CInt(2)), true},
		{adl.CmpE(adl.Gt, adl.CStr("b"), adl.CStr("a")), true},
		{adl.CmpE(adl.Ge, adl.C(value.Date(940102)), adl.C(value.Date(940101))), true},
		{adl.CmpE(adl.Lt, adl.C(value.Float(1.5)), adl.C(value.Float(2.5))), true},
	}
	for _, c := range cases {
		if got := mustEval(t, c.e, db); value.Truth(got) != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicShortCircuits(t *testing.T) {
	db := figure2DB()
	// (false ∧ <error>) must not evaluate the right side.
	bad := adl.CmpE(adl.In, adl.CInt(1), adl.CInt(1))
	if v := mustEval(t, adl.AndE(adl.CBool(false), bad), db); value.Truth(v) {
		t.Errorf("short-circuit ∧ broken")
	}
	if v := mustEval(t, adl.OrE(adl.CBool(true), bad), db); !value.Truth(v) {
		t.Errorf("short-circuit ∨ broken")
	}
	if v := mustEval(t, adl.NotE(adl.CBool(false)), db); !value.Truth(v) {
		t.Errorf("¬ broken")
	}
}

func TestLetWithConstruct(t *testing.T) {
	db := figure2DB()
	// with Y′ = σ[y : y.d = 1](Y): count(Y′) = 3.
	e := adl.LetE("Yp",
		adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y")),
		adl.AggE(adl.Count, adl.V("Yp")))
	if got := mustEval(t, e, db); !value.Equal(got, value.Int(3)) {
		t.Errorf("let = %v", got)
	}
}

func TestImplicitPointerNavigation(t *testing.T) {
	db := storage.NewMemDB("D", value.NewSet(
		value.NewTuple("did", value.OID(1), "supplier", value.OID(10)),
	))
	db.Objs[10] = value.NewTuple("eid", value.OID(10), "sname", value.String("s1"))
	// d.supplier.sname follows the oid.
	e := adl.MapE("d", adl.Dot(adl.V("d"), "supplier", "sname"), adl.T("D"))
	got := mustEval(t, e, db)
	if !value.Equal(got, value.NewSet(value.String("s1"))) {
		t.Errorf("path expression = %v", got)
	}
	// Dangling reference errors.
	db2 := storage.NewMemDB("D", value.NewSet(
		value.NewTuple("did", value.OID(1), "supplier", value.OID(99)),
	))
	evalErr(t, adl.MapE("d", adl.Dot(adl.V("d"), "supplier", "sname"), adl.T("D")), db2)
}

func TestMaterialize(t *testing.T) {
	db := storage.NewMemDB("S", value.NewSet(
		value.NewTuple("eid", value.OID(1), "parts", value.NewSet(
			value.NewTuple("pid", value.OID(20)), value.NewTuple("pid", value.OID(21)))),
	))
	db.Objs[20] = value.NewTuple("pid", value.OID(20), "pname", value.String("bolt"))
	db.Objs[21] = value.NewTuple("pid", value.OID(21), "pname", value.String("nut"))
	got := mustEval(t, adl.Mat(adl.T("S"), "parts", "partobjs"), db).(*value.Set)
	tup := got.Elems()[0].(*value.Tuple)
	objs := tup.MustGet("partobjs").(*value.Set)
	if objs.Len() != 2 {
		t.Fatalf("materialize = %v", objs)
	}
	if !objs.Contains(db.Objs[20]) || !objs.Contains(db.Objs[21]) {
		t.Errorf("materialized objects wrong: %v", objs)
	}

	// Scalar reference.
	db2 := storage.NewMemDB("D", value.NewSet(
		value.NewTuple("did", value.OID(1), "supplier", value.OID(10)),
	))
	db2.Objs[10] = value.NewTuple("eid", value.OID(10), "sname", value.String("s1"))
	got2 := mustEval(t, adl.Mat(adl.T("D"), "supplier", "sup"), db2).(*value.Set)
	tup2 := got2.Elems()[0].(*value.Tuple)
	if !value.Equal(tup2.MustGet("sup"), db2.Objs[10]) {
		t.Errorf("scalar materialize = %v", tup2)
	}
}

// TestSFWTranslationShape checks the §3 translation target directly:
// select e1 from x in e2 where e3 ≡ α[x : e1](σ[x : e3](e2)).
func TestSFWTranslationShape(t *testing.T) {
	db := figure2DB()
	// select y.e from y in Y where y.d = 1
	e := adl.MapE("y", adl.Dot(adl.V("y"), "e"),
		adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y")))
	got := mustEval(t, e, db)
	want := value.NewSet(value.Int(1), value.Int(2), value.Int(3))
	if !value.Equal(got, want) {
		t.Errorf("sfw = %v, want %v", got, want)
	}
}

// TestFigure2NestedQuery evaluates the Figure 2 nested query under
// nested-loop semantics — the ground truth the Complex Object bug is
// measured against.
func TestFigure2NestedQuery(t *testing.T) {
	db := figure2DB()
	// σ[x : x.c ⊆ σ[y : x.a = y.d](Y)](X)
	inner := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	e := adl.Sel("x", adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), inner), adl.T("X"))
	got := mustEval(t, e, db).(*value.Set)
	// a=1: {⟨1,1⟩,⟨1,2⟩} ⊆ {⟨1,1⟩,⟨1,2⟩,⟨1,3⟩} → true
	// a=2: ∅ ⊆ ∅ → true (the tuple the buggy plan loses!)
	// a=3: {⟨2,3⟩} ⊆ ∅ → false
	if got.Len() != 2 {
		t.Fatalf("nested query = %v", got)
	}
	as := value.NewSet()
	for _, el := range got.Elems() {
		as.Add(el.(*value.Tuple).MustGet("a"))
	}
	if !value.Equal(as, value.NewSet(value.Int(1), value.Int(2))) {
		t.Errorf("selected a-values = %v, want {1, 2}", as)
	}
}

func TestErrorMessagesCarryContext(t *testing.T) {
	db := figure2DB()
	err := evalErr(t, adl.Mu("nope", adl.T("X")), db)
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error lacks attribute name: %v", err)
	}
}

func TestArithmetic(t *testing.T) {
	db := figure2DB()
	cases := []struct {
		op   adl.ArithOp
		l, r value.Value
		want value.Value
	}{
		{adl.Add, value.Int(2), value.Int(3), value.Int(5)},
		{adl.Subtract, value.Int(2), value.Int(3), value.Int(-1)},
		{adl.Mul, value.Int(4), value.Int(3), value.Int(12)},
		{adl.Div, value.Int(7), value.Int(2), value.Int(3)},
		{adl.Add, value.Float(1.5), value.Float(2.5), value.Float(4)},
		{adl.Subtract, value.Float(1.5), value.Float(0.5), value.Float(1)},
		{adl.Mul, value.Float(2), value.Float(3.5), value.Float(7)},
		{adl.Div, value.Float(7), value.Float(2), value.Float(3.5)},
	}
	for _, c := range cases {
		e := &adl.Arith{Op: c.op, L: adl.C(c.l), R: adl.C(c.r)}
		if got := mustEval(t, e, db); !value.Equal(got, c.want) {
			t.Errorf("%s = %v, want %v", e, got, c.want)
		}
	}
	// Errors: division by zero (both kinds), mixed kinds, non-numeric.
	evalErr(t, &adl.Arith{Op: adl.Div, L: adl.CInt(1), R: adl.CInt(0)}, db)
	evalErr(t, &adl.Arith{Op: adl.Div, L: adl.C(value.Float(1)), R: adl.C(value.Float(0))}, db)
	evalErr(t, &adl.Arith{Op: adl.Add, L: adl.CInt(1), R: adl.C(value.Float(1))}, db)
	evalErr(t, &adl.Arith{Op: adl.Add, L: adl.CStr("a"), R: adl.CStr("b")}, db)
	evalErr(t, &adl.Arith{Op: adl.Add, L: adl.C(value.Float(1)), R: adl.CInt(1)}, db)
}

func TestAggregateEdgeCases(t *testing.T) {
	db := figure2DB()
	// min/max over strings and dates (ordered atoms).
	strs := adl.SetOf(adl.CStr("b"), adl.CStr("a"), adl.CStr("c"))
	if got := mustEval(t, adl.AggE(adl.Min, strs), db); !value.Equal(got, value.String("a")) {
		t.Errorf("min strings = %v", got)
	}
	dates := adl.SetOf(adl.C(value.Date(940102)), adl.C(value.Date(940101)))
	if got := mustEval(t, adl.AggE(adl.Max, dates), db); !value.Equal(got, value.Date(940102)) {
		t.Errorf("max dates = %v", got)
	}
	// Float sum and avg.
	fs := adl.SetOf(adl.C(value.Float(1.5)), adl.C(value.Float(2.5)))
	if got := mustEval(t, adl.AggE(adl.Sum, fs), db); !value.Equal(got, value.Float(4)) {
		t.Errorf("sum floats = %v", got)
	}
	if got := mustEval(t, adl.AggE(adl.Avg, fs), db); !value.Equal(got, value.Float(2)) {
		t.Errorf("avg floats = %v", got)
	}
	// Errors: aggregates over sets/tuples, mixed kinds, non-numeric sum.
	evalErr(t, adl.AggE(adl.Min, adl.T("X")), db)
	evalErr(t, adl.AggE(adl.Sum, adl.SetOf(adl.CStr("a"))), db)
	evalErr(t, adl.AggE(adl.Sum, adl.SetOf(adl.CInt(1), adl.C(value.Float(1)))), db)
	evalErr(t, adl.AggE(adl.Max, adl.SetOf(adl.CInt(1), adl.CStr("x"))), db)
	evalErr(t, adl.AggE(adl.Avg, adl.SetOf(adl.C(value.Bool(true)))), db)
}

func TestTuplePositionsDerefOIDs(t *testing.T) {
	// evalTuple's implicit deref: concat with a referenced object.
	db := storage.NewMemDB("D", value.NewSet(
		value.NewTuple("did", value.OID(1), "supplier", value.OID(10))))
	db.Objs[10] = value.NewTuple("eid", value.OID(10), "sname", value.String("s1"))
	e := adl.MapE("d", adl.Cat(adl.SubT(adl.V("d"), "did"), adl.Dot(adl.V("d"), "supplier")), adl.T("D"))
	got := mustEval(t, e, db).(*value.Set)
	tup := got.Elems()[0].(*value.Tuple)
	if !tup.Has("sname") || !tup.Has("did") {
		t.Errorf("concat through oid = %v", tup)
	}
	// Concat of a non-tuple errors.
	evalErr(t, adl.Cat(adl.CInt(1), adl.CInt(2)), db)
}
