package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

func TestRename(t *testing.T) {
	db := figure2DB()
	got := mustEval(t, adl.Rho(adl.T("Y"), "d", "k"), db).(*value.Set)
	if got.Len() != 4 {
		t.Fatalf("ρ size = %d", got.Len())
	}
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		if tup.Has("d") || !tup.Has("k") || !tup.Has("e") {
			t.Errorf("ρ tuple = %v", tup)
		}
	}
	// ρ then ρ back is the identity.
	back := mustEval(t, adl.Rho(adl.Rho(adl.T("Y"), "d", "k"), "k", "d"), db)
	y, _ := db.Table("Y")
	if !value.Equal(back, y) {
		t.Errorf("ρ∘ρ⁻¹ ≠ id: %v", back)
	}
	// Errors: missing source attribute, clashing target.
	evalErr(t, adl.Rho(adl.T("Y"), "zz", "k"), db)
	evalErr(t, adl.Rho(adl.T("Y"), "d", "e"), db)
}

// TestNestUnnestPNFProperty checks the [RoKS88] result the paper leans on in
// §4: nest and unnest are each other's inverse exactly for PNF relations
// with no empty set-valued attributes. Random nested relations whose atomic
// attributes form a key and whose sets are non-empty must satisfy
// ν(μ(X)) = X; relations with empty sets must lose exactly those tuples.
func TestNestUnnestPNFProperty(t *testing.T) {
	build := func(seed int64, allowEmpty bool) (*value.Set, int) {
		rng := rand.New(rand.NewSource(seed))
		x := value.EmptySet()
		emptyCount := 0
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			inner := value.EmptySet()
			k := rng.Intn(4)
			if !allowEmpty && k == 0 {
				k = 1
			}
			for j := 0; j < k; j++ {
				inner.Add(value.NewTuple("d", value.Int(int64(rng.Intn(5))),
					"e", value.Int(int64(rng.Intn(5)))))
			}
			if inner.Len() == 0 {
				emptyCount++
			}
			// The atomic attribute a is unique: PNF key condition.
			x.Add(value.NewTuple("a", value.Int(int64(i)), "c", inner))
		}
		return x, emptyCount
	}
	roundTrip := func(x *value.Set) *value.Set {
		db := storage.NewMemDB("X", x)
		e := adl.Nu(adl.Mu("c", adl.T("X")), "c", "d", "e")
		out, err := EvalSet(e, nil, db)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		return out
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(func(seed int64) bool {
		// PNF, no empty sets: exact inverse.
		x, _ := build(seed, false)
		if !value.Equal(roundTrip(x), x) {
			return false
		}
		// With empty sets: exactly the empty-set tuples are lost.
		y, empties := build(seed+1, true)
		got := roundTrip(y)
		return got.Len() == y.Len()-empties && got.SubsetOf(y)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestNonPNFNestUnnestMerges demonstrates the other PNF failure mode: when
// the atomic attributes do not form a key, ν(μ(X)) merges tuples that share
// them (restructuring is lossy in both directions).
func TestNonPNFNestUnnestMerges(t *testing.T) {
	x := value.NewSet(
		value.NewTuple("a", value.Int(1), "c", value.NewSet(
			value.NewTuple("d", value.Int(1)))),
		value.NewTuple("a", value.Int(1), "c", value.NewSet(
			value.NewTuple("d", value.Int(2)))),
	)
	db := storage.NewMemDB("X", x)
	got, err := EvalSet(adl.Nu(adl.Mu("c", adl.T("X")), "c", "d"), nil, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("non-PNF round trip = %v, want the merged single group", got)
	}
	merged := got.Elems()[0].(*value.Tuple).MustGet("c").(*value.Set)
	if merged.Len() != 2 {
		t.Errorf("merged group = %v", merged)
	}
}
