package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

const redParts = `select p.pname from p in PART where p.color = "red"`

func newEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	st := bench.Generate(bench.Config{Suppliers: 50, Parts: 100, Deliveries: 20, Seed: 94})
	st.Analyze()
	return New(st, opts)
}

func newPart(i int, color string) *value.Tuple {
	return value.NewTuple(
		"pname", value.String(fmt.Sprintf("t-part-%d", i)),
		"price", value.Int(int64(i%50+1)),
		"color", value.String(color),
	)
}

func TestPlanCacheHitMissReplan(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})

	r1, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.CacheHit {
		t.Fatalf("first execution must be a cache miss")
	}
	r2, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r2.CacheHit {
		t.Fatalf("second execution must hit the cache")
	}
	// A handful of inserts stays under the drift floor: still a hit.
	for i := 0; i < 4; i++ {
		if _, err := eng.Insert("PART", newPart(i, "red")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	r3, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r3.CacheHit {
		t.Fatalf("sub-floor drift must not invalidate the cached plan")
	}
	// The snapshot still sees the new rows — cache staleness is about plan
	// choice, never visibility.
	if r3.Set.Len() <= r1.Set.Len() {
		t.Fatalf("red rows did not grow: %d → %d", r1.Set.Len(), r3.Set.Len())
	}

	// An index creation bumps the stats epoch: next execution re-plans.
	if err := eng.Store().CreateIndex("PART", "color", storage.HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	r4, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r4.CacheHit || !r4.Replanned {
		t.Fatalf("epoch drift must re-plan: hit=%v replanned=%v", r4.CacheHit, r4.Replanned)
	}
	if r4.Set.Len() != r3.Set.Len() {
		t.Fatalf("re-planned query changed its result: %d vs %d rows", r4.Set.Len(), r3.Set.Len())
	}
	m := eng.Metrics()
	if m.CacheHits != 2 || m.CacheMiss != 1 || m.Replans != 1 {
		t.Fatalf("metrics = %+v, want 2 hits / 1 miss / 1 replan", m)
	}
}

func TestNoPlanCache(t *testing.T) {
	eng := newEngine(t, Options{NoPlanCache: true, Parallelism: 1})
	for i := 0; i < 2; i++ {
		r, err := eng.Query(redParts)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if r.CacheHit || r.Replanned {
			t.Fatalf("NoPlanCache engine must never report cache activity")
		}
	}
	if m := eng.Metrics(); m.CacheHits != 0 && m.CacheMiss != 0 {
		t.Fatalf("metrics = %+v, want no cache counters", m)
	}
}

// TestQueryVerifiedUnderConcurrentInserts is the reads-under-writes
// differential arm in miniature: while a writer streams inserts, every
// verified query must match a serial re-execution of the untransformed
// nested form against the same pinned snapshot.
func TestQueryVerifiedUnderConcurrentInserts(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})

	// The writer is bounded: the naive re-execution inside QueryVerified is
	// the paper's quadratic baseline, so letting the extent grow without
	// limit makes each verification slower than the last (pathological
	// under -race on small CI machines).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			if _, err := eng.Insert("PART", newPart(i, []string{"red", "green", "blue"}[i%3])); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	queries := []string{
		redParts,
		`select p.pname from p in PART where p.price < 10`,
		`select s from s in SUPPLIER
 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
	}
	for i := 0; i < 24; i++ {
		if _, err := eng.QueryVerified(queries[i%len(queries)]); err != nil {
			t.Fatalf("verified query %d: %v", i, err)
		}
	}
	wg.Wait()
	// And once more against the quiesced store.
	for _, q := range queries {
		if _, err := eng.QueryVerified(q); err != nil {
			t.Fatalf("verified query after writer drained: %v", err)
		}
	}
}

func TestQueryError(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})
	if _, err := eng.Query(`select x from x in NO_SUCH_EXTENT`); err == nil {
		t.Fatalf("bad query must error")
	}
	if _, err := eng.Insert("NO_SUCH_EXTENT", value.EmptyTuple()); err == nil {
		t.Fatalf("bad insert must error")
	}
}

func TestDeleteUpdateThroughEngine(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})
	oid, err := eng.Insert("PART", newPart(1, "cyan"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := eng.Update("PART", oid, newPart(2, "magenta")); err != nil {
		t.Fatalf("Update: %v", err)
	}
	r, err := eng.Query(`select p.pname from p in PART where p.color = "magenta"`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Set.Len() != 1 {
		t.Fatalf("updated row not visible: %d rows", r.Set.Len())
	}
	if err := eng.Delete("PART", oid); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	r, err = eng.Query(`select p.pname from p in PART where p.color = "magenta"`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Set.Len() != 0 {
		t.Fatalf("deleted row still visible: %d rows", r.Set.Len())
	}
	m := eng.Metrics()
	if m.Deletes != 1 || m.Updates != 1 {
		t.Fatalf("metrics deletes/updates = %d/%d, want 1/1", m.Deletes, m.Updates)
	}
}

// TestFeedbackEvictsDriftedPlan is the full runtime-feedback loop: a plan
// cached against pre-delete statistics keeps hitting the cache (deletes do
// not advance the stats epoch), its instrumented execution observes far
// fewer rows than estimated, the entry is evicted, and the re-planned query
// is priced measurably cheaper against fresh statistics.
func TestFeedbackEvictsDriftedPlan(t *testing.T) {
	st := storage.New(schema.SupplierPart())
	var blues []value.OID
	for i := 0; i < 1000; i++ {
		oid, err := st.Insert("PART", newPart(i, "blue"))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		blues = append(blues, oid)
	}
	for i := 1000; i < 1020; i++ {
		if _, err := st.Insert("PART", newPart(i, "red")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	st.Analyze()
	eng := New(st, Options{Parallelism: 1})
	src := `select p.pname from p in PART where p.color = "blue"`

	r1, err := eng.Query(src)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.Set.Len() != 1000 {
		t.Fatalf("pre-delete result = %d rows, want 1000", r1.Set.Len())
	}
	if r1.Evicted {
		t.Fatalf("accurate estimates must not evict")
	}
	eng.cacheMu.Lock()
	q1 := eng.cache[src].q
	eng.cacheMu.Unlock()

	// Bulk delete shifts the cardinality 50x without advancing the epoch.
	for _, oid := range blues[:980] {
		if err := eng.Delete("PART", oid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}

	r2, err := eng.Query(src)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r2.CacheHit {
		t.Fatalf("deletes alone must not invalidate the cache — that is feedback's job")
	}
	if !r2.Evicted {
		t.Fatalf("execution observing 20 rows against a 1000-row estimate must evict")
	}
	if r2.Set.Len() != 20 {
		t.Fatalf("post-delete result = %d rows, want 20", r2.Set.Len())
	}

	r3, err := eng.Query(src)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r3.CacheHit {
		t.Fatalf("evicted entry must be re-planned, not re-served")
	}
	if r3.Evicted {
		t.Fatalf("re-planned estimates match the data, nothing to evict")
	}
	eng.cacheMu.Lock()
	q2 := eng.cache[src].q
	eng.cacheMu.Unlock()

	e1, ok1 := q1.Planned.Estimate(q1.Plan)
	e2, ok2 := q2.Planned.Estimate(q2.Plan)
	if !ok1 || !ok2 {
		t.Fatalf("plans lack root estimates: %v %v", ok1, ok2)
	}
	if e2.Cost >= e1.Cost/2 {
		t.Fatalf("re-planned cost %.0f not measurably cheaper than drifted %.0f", e2.Cost, e1.Cost)
	}

	m := eng.Metrics()
	if m.FeedbackEvictions != 1 {
		t.Fatalf("FeedbackEvictions = %d, want 1", m.FeedbackEvictions)
	}
}

func TestNoFeedbackOption(t *testing.T) {
	st := storage.New(schema.SupplierPart())
	var oids []value.OID
	for i := 0; i < 500; i++ {
		oid, err := st.Insert("PART", newPart(i, "blue"))
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		oids = append(oids, oid)
	}
	st.Analyze()
	eng := New(st, Options{Parallelism: 1, NoFeedback: true})
	src := `select p.pname from p in PART where p.color = "blue"`
	if _, err := eng.Query(src); err != nil {
		t.Fatalf("Query: %v", err)
	}
	for _, oid := range oids[:490] {
		if err := eng.Delete("PART", oid); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	r, err := eng.Query(src)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r.Evicted {
		t.Fatalf("NoFeedback must never evict")
	}
	if m := eng.Metrics(); m.FeedbackEvictions != 0 {
		t.Fatalf("FeedbackEvictions = %d with feedback disabled", m.FeedbackEvictions)
	}
}

func TestVectorizedEngine(t *testing.T) {
	scalar := newEngine(t, Options{Parallelism: 1})
	vec := New(scalar.Store(), Options{Parallelism: 1, Vectorized: true, BatchSize: 16})

	rs, err := scalar.Query(redParts)
	if err != nil {
		t.Fatalf("scalar Query: %v", err)
	}
	rv, err := vec.Query(redParts)
	if err != nil {
		t.Fatalf("vectorized Query: %v", err)
	}
	if !value.Equal(rs.Set, rv.Set) {
		t.Fatalf("vectorized engine diverges:\n scalar %v\n vec    %v", rs.Set, rv.Set)
	}

	// Mutations stay visible through the vectorized path (the columnar
	// projection is snapshot-pinned, not a stale cache).
	if _, err := vec.Insert("PART", newPart(900, "red")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	rv2, err := vec.Query(redParts)
	if err != nil {
		t.Fatalf("vectorized Query after insert: %v", err)
	}
	if rv2.Set.Len() != rv.Set.Len()+1 {
		t.Fatalf("insert not visible vectorized: %d → %d rows", rv.Set.Len(), rv2.Set.Len())
	}
}

func TestEngineRejectsNonPositiveBatchSize(t *testing.T) {
	eng := newEngine(t, Options{Vectorized: true, BatchSize: -3})
	_, err := eng.Query(redParts)
	if err == nil || !strings.Contains(err.Error(), "batch size must be positive") {
		t.Fatalf("want batch-size error, got %v", err)
	}
}
