package server

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/storage"
	"repro/internal/value"
)

const redParts = `select p.pname from p in PART where p.color = "red"`

func newEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	st := bench.Generate(bench.Config{Suppliers: 50, Parts: 100, Deliveries: 20, Seed: 94})
	st.Analyze()
	return New(st, opts)
}

func newPart(i int, color string) *value.Tuple {
	return value.NewTuple(
		"pname", value.String(fmt.Sprintf("t-part-%d", i)),
		"price", value.Int(int64(i%50+1)),
		"color", value.String(color),
	)
}

func TestPlanCacheHitMissReplan(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})

	r1, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r1.CacheHit {
		t.Fatalf("first execution must be a cache miss")
	}
	r2, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r2.CacheHit {
		t.Fatalf("second execution must hit the cache")
	}
	// A handful of inserts stays under the drift floor: still a hit.
	for i := 0; i < 4; i++ {
		if _, err := eng.Insert("PART", newPart(i, "red")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	r3, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !r3.CacheHit {
		t.Fatalf("sub-floor drift must not invalidate the cached plan")
	}
	// The snapshot still sees the new rows — cache staleness is about plan
	// choice, never visibility.
	if r3.Set.Len() <= r1.Set.Len() {
		t.Fatalf("red rows did not grow: %d → %d", r1.Set.Len(), r3.Set.Len())
	}

	// An index creation bumps the stats epoch: next execution re-plans.
	if err := eng.Store().CreateIndex("PART", "color", storage.HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	r4, err := eng.Query(redParts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if r4.CacheHit || !r4.Replanned {
		t.Fatalf("epoch drift must re-plan: hit=%v replanned=%v", r4.CacheHit, r4.Replanned)
	}
	if r4.Set.Len() != r3.Set.Len() {
		t.Fatalf("re-planned query changed its result: %d vs %d rows", r4.Set.Len(), r3.Set.Len())
	}
	m := eng.Metrics()
	if m.CacheHits != 2 || m.CacheMiss != 1 || m.Replans != 1 {
		t.Fatalf("metrics = %+v, want 2 hits / 1 miss / 1 replan", m)
	}
}

func TestNoPlanCache(t *testing.T) {
	eng := newEngine(t, Options{NoPlanCache: true, Parallelism: 1})
	for i := 0; i < 2; i++ {
		r, err := eng.Query(redParts)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if r.CacheHit || r.Replanned {
			t.Fatalf("NoPlanCache engine must never report cache activity")
		}
	}
	if m := eng.Metrics(); m.CacheHits != 0 && m.CacheMiss != 0 {
		t.Fatalf("metrics = %+v, want no cache counters", m)
	}
}

// TestQueryVerifiedUnderConcurrentInserts is the reads-under-writes
// differential arm in miniature: while a writer streams inserts, every
// verified query must match a serial re-execution of the untransformed
// nested form against the same pinned snapshot.
func TestQueryVerifiedUnderConcurrentInserts(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})

	// The writer is bounded: the naive re-execution inside QueryVerified is
	// the paper's quadratic baseline, so letting the extent grow without
	// limit makes each verification slower than the last (pathological
	// under -race on small CI machines).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			if _, err := eng.Insert("PART", newPart(i, []string{"red", "green", "blue"}[i%3])); err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
		}
	}()
	queries := []string{
		redParts,
		`select p.pname from p in PART where p.price < 10`,
		`select s from s in SUPPLIER
 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
	}
	for i := 0; i < 24; i++ {
		if _, err := eng.QueryVerified(queries[i%len(queries)]); err != nil {
			t.Fatalf("verified query %d: %v", i, err)
		}
	}
	wg.Wait()
	// And once more against the quiesced store.
	for _, q := range queries {
		if _, err := eng.QueryVerified(q); err != nil {
			t.Fatalf("verified query after writer drained: %v", err)
		}
	}
}

func TestQueryError(t *testing.T) {
	eng := newEngine(t, Options{Parallelism: 1})
	if _, err := eng.Query(`select x from x in NO_SUCH_EXTENT`); err == nil {
		t.Fatalf("bad query must error")
	}
	if _, err := eng.Insert("NO_SUCH_EXTENT", value.EmptyTuple()); err == nil {
		t.Fatalf("bad insert must error")
	}
}
