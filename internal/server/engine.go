// Package server is the serving layer: a long-lived query engine over one
// storage.Store that executes OOSQL against pinned MVCC snapshots while
// concurrent inserts land, planning through a prepared-query plan cache.
//
// The cache is keyed on (query source, stats epoch). Statistics drift only
// changes which plan is cheapest, never what a plan returns — the
// differential suite proves every physical strategy result-equal — so a
// cached plan is correct at any epoch; the epoch key exists to bound
// staleness of plan *quality*. When the store's epoch moves past a cached
// entry's (enough inserts since the last bump, or an index change), the
// next request re-plans against freshly published statistics. Each
// execution runs a clone of the cached operator tree (exec.CloneTree), so
// concurrent requests never share iterator state.
//
// Inserts advance the epoch through the store's mutation counter; deletes
// and updates deliberately do not — their drift is caught from the other
// end by runtime feedback: cached executions run instrumented, and when the
// observed per-node row counts disagree with the plan's estimates past a
// q-error threshold the entry is evicted and the epoch advanced, so the
// next request re-plans against statistics that reflect the mutations.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/value"
)

// Options configures an Engine.
type Options struct {
	// PlanCache disables the prepared-plan cache when false is explicitly
	// requested via NoPlanCache; the zero Options enables it.
	NoPlanCache bool
	// Parallelism is passed through to the physical planner; 0 means
	// runtime.NumCPU.
	Parallelism int
	// NoFeedback disables runtime cardinality feedback. By default every
	// cached execution runs instrumented (per-node row tallies) and a plan
	// whose estimates drift past FeedbackThreshold is evicted and the stats
	// epoch advanced, forcing re-planning against fresh statistics.
	NoFeedback bool
	// FeedbackThreshold is the q-error (max ratio between estimated and
	// observed rows at any plan node) past which a cached plan is evicted;
	// 0 means plan.DefaultFeedbackThreshold.
	FeedbackThreshold float64
	// FeedbackMinRows ignores drift where both estimate and observation
	// stay under this row count; 0 means plan.DefaultFeedbackMinRows.
	FeedbackMinRows int64
	// Vectorized routes eligible plans through the batch execution pipeline
	// (plan.Config.Vectorized); plans keep the scalar operators where no
	// vectorized shape applies. BatchSize tunes rows per batch — 0 keeps the
	// planner default, negative values surface plan.Config.SetBatchSize's
	// error at planning time.
	Vectorized bool
	BatchSize  int
}

// Engine serves OOSQL queries and inserts over one store.
type Engine struct {
	st   *storage.Store
	opts Options

	cacheMu sync.Mutex
	cache   map[string]*cacheEntry

	queries   atomic.Int64
	inserts   atomic.Int64
	deletes   atomic.Int64
	updates   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	replans   atomic.Int64
	evictions atomic.Int64
}

// cacheEntry is one prepared query: the plan and the stats epoch it was
// priced under.
type cacheEntry struct {
	epoch uint64
	q     *core.Query
}

// New builds an engine over a populated store.
func New(st *storage.Store, opts Options) *Engine {
	return &Engine{st: st, opts: opts, cache: map[string]*cacheEntry{}}
}

// Store exposes the underlying store (for diagnostics and direct loading).
func (e *Engine) Store() *storage.Store { return e.st }

// Result is one query execution: the result set and the consistency
// metadata of the snapshot it ran against.
type Result struct {
	Set *value.Set
	// Seq is the pinned version's sequence number; Epoch the stats epoch
	// the plan was keyed on.
	Seq   uint64
	Epoch uint64
	// CacheHit reports whether the plan came from the cache; Replanned
	// whether a cached plan existed but was re-planned on epoch drift;
	// Evicted whether THIS execution's observed row counts drifted far
	// enough from the plan's estimates to evict it (the next request for
	// the same source re-plans against fresh statistics).
	CacheHit  bool
	Replanned bool
	Evicted   bool
}

// prepare resolves the plan for a query source at the given epoch, through
// the cache unless disabled.
func (e *Engine) prepare(src string, epoch uint64) (*core.Query, bool, bool, error) {
	if e.opts.NoPlanCache {
		q, err := e.plan(src)
		return q, false, false, err
	}
	e.cacheMu.Lock()
	ent := e.cache[src]
	e.cacheMu.Unlock()
	if ent != nil && ent.epoch == epoch {
		e.hits.Add(1)
		return ent.q, true, false, nil
	}
	// Miss or drift: plan outside the cache lock — planning can be costly
	// and concurrent requests for other queries must not serialize on it.
	q, err := e.plan(src)
	if err != nil {
		return nil, false, false, err
	}
	replanned := ent != nil
	if replanned {
		e.replans.Add(1)
	} else {
		e.misses.Add(1)
	}
	e.cacheMu.Lock()
	e.cache[src] = &cacheEntry{epoch: epoch, q: q}
	e.cacheMu.Unlock()
	return q, false, replanned, nil
}

// plan prepares a query against freshly published statistics.
func (e *Engine) plan(src string) (*core.Query, error) {
	stats := e.st.Analyze()
	cfg := plan.Config{
		Statistics:  stats,
		Stats:       stats,
		Parallelism: e.opts.Parallelism,
		Vectorized:  e.opts.Vectorized,
	}
	if e.opts.BatchSize != 0 {
		if err := cfg.SetBatchSize(e.opts.BatchSize); err != nil {
			return nil, err
		}
	}
	return core.PrepareCfg(src, e.st.Catalog(), cfg)
}

// Query executes an OOSQL query against a snapshot pinned at call time:
// the result reflects exactly the mutations published before the pin, no
// matter how many land while the query runs. The snapshot is released when
// the query returns, so it never holds the GC horizon back.
func (e *Engine) Query(src string) (*Result, error) {
	e.queries.Add(1)
	sn := e.st.Snapshot()
	defer sn.Release()
	q, hit, replanned, err := e.prepare(src, sn.StatsEpoch())
	if err != nil {
		return nil, err
	}
	set, evicted, err := e.run(src, q, sn)
	if err != nil {
		return nil, err
	}
	return &Result{Set: set, Seq: sn.Seq(), Epoch: sn.StatsEpoch(),
		CacheHit: hit, Replanned: replanned, Evicted: evicted}, nil
}

// run executes one prepared query against a pinned snapshot — instrumented
// when feedback is on — and applies the post-execution drift check.
func (e *Engine) run(src string, q *core.Query, sn *storage.Snapshot) (*value.Set, bool, error) {
	if e.opts.NoPlanCache || e.opts.NoFeedback || q.Planned == nil {
		set, err := exec.Collect(exec.CloneTree(q.Plan), &exec.Ctx{DB: sn})
		return set, false, err
	}
	// An instrumented mirror is itself a fresh clone, so it runs directly.
	root, commit := q.Planned.Instrumented()
	set, err := exec.Collect(root, &exec.Ctx{DB: sn})
	if err != nil {
		return nil, false, err
	}
	commit()
	return set, e.feedback(src, q), nil
}

// feedback compares a completed execution's observed row counts against the
// plan's estimates. Drift past the threshold means the statistics the plan
// was priced under no longer describe the data (deletes and updates shift
// cardinalities without re-ANALYZE): the entry is evicted and the stats
// epoch advanced, so every cached plan re-prices against fresh statistics
// on its next request. Drift never makes a plan wrong — every strategy is
// result-equal — so correctness is untouched; this is purely a plan-quality
// repair loop closing the estimate → execute → observe → re-plan cycle.
func (e *Engine) feedback(src string, q *core.Query) bool {
	thr := e.opts.FeedbackThreshold
	if thr <= 0 {
		thr = plan.DefaultFeedbackThreshold
	}
	d, ok := q.Planned.Feedback(e.opts.FeedbackMinRows)
	if !ok || d.Q <= thr {
		return false
	}
	e.cacheMu.Lock()
	if ent := e.cache[src]; ent != nil && ent.q == q {
		delete(e.cache, src)
	}
	e.cacheMu.Unlock()
	e.evictions.Add(1)
	e.st.AdvanceStatsEpoch()
	return true
}

// QueryVerified executes like Query, then re-executes the untransformed
// nested form tuple-at-a-time against the same pinned snapshot and fails if
// the two result sets differ — the reads-under-writes differential arm: a
// mismatch means either the rewrite/planner broke result equivalence or the
// snapshot was not actually immutable under concurrent inserts.
func (e *Engine) QueryVerified(src string) (*Result, error) {
	e.queries.Add(1)
	sn := e.st.Snapshot()
	defer sn.Release()
	q, hit, replanned, err := e.prepare(src, sn.StatsEpoch())
	if err != nil {
		return nil, err
	}
	set, evicted, err := e.run(src, q, sn)
	if err != nil {
		return nil, err
	}
	want, err := q.ExecuteNaive(sn)
	if err != nil {
		return nil, fmt.Errorf("server: serial re-execution failed: %w", err)
	}
	if set.Len() != want.Len() || !set.SubsetOf(want) {
		return nil, fmt.Errorf("server: non-linearizable read at seq %d: plan returned %d rows, serial re-execution %d",
			sn.Seq(), set.Len(), want.Len())
	}
	return &Result{Set: set, Seq: sn.Seq(), Epoch: sn.StatsEpoch(),
		CacheHit: hit, Replanned: replanned, Evicted: evicted}, nil
}

// Insert stores an object in the named extent, visible to every snapshot
// pinned after it returns.
func (e *Engine) Insert(extent string, t *value.Tuple) (value.OID, error) {
	e.inserts.Add(1)
	return e.st.Insert(extent, t)
}

// Delete tombstones an object: snapshots pinned before the delete keep
// seeing it, snapshots pinned after do not.
func (e *Engine) Delete(extent string, oid value.OID) error {
	e.deletes.Add(1)
	return e.st.Delete(extent, oid)
}

// Update replaces an object's attributes in place (same oid, so references
// to it stay valid), visible to every snapshot pinned after it returns.
func (e *Engine) Update(extent string, oid value.OID, t *value.Tuple) error {
	e.updates.Add(1)
	return e.st.Update(extent, oid, t)
}

// Metrics is a point-in-time counter snapshot.
type Metrics struct {
	Queries           int64  `json:"queries"`
	Inserts           int64  `json:"inserts"`
	Deletes           int64  `json:"deletes"`
	Updates           int64  `json:"updates"`
	CacheHits         int64  `json:"cache_hits"`
	CacheMiss         int64  `json:"cache_misses"`
	Replans           int64  `json:"replans"`
	FeedbackEvictions int64  `json:"feedback_evictions"`
	StatsEpoch        uint64 `json:"stats_epoch"`
	Seq               uint64 `json:"seq"`
}

// Metrics reports the engine counters and current store position.
func (e *Engine) Metrics() Metrics {
	sn := e.st.Snapshot()
	defer sn.Release()
	return Metrics{
		Queries:           e.queries.Load(),
		Inserts:           e.inserts.Load(),
		Deletes:           e.deletes.Load(),
		Updates:           e.updates.Load(),
		CacheHits:         e.hits.Load(),
		CacheMiss:         e.misses.Load(),
		Replans:           e.replans.Load(),
		FeedbackEvictions: e.evictions.Load(),
		StatsEpoch:        sn.StatsEpoch(),
		Seq:               sn.Seq(),
	}
}
