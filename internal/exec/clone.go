package exec

import (
	"reflect"
	"sync"
)

// CloneTree returns a fresh copy of an operator tree that can be Opened and
// drained independently of the original — the mechanism behind a prepared-
// plan cache: one planned tree is cached, and every execution runs a clone,
// so concurrent requests never share iterator state.
//
// The copy relies on a structural convention every operator in this package
// follows: exported struct fields are immutable configuration fixed at plan
// time (child operators, Scalar programs, table and attribute names),
// unexported fields are per-run iterator state created by Open and
// abandoned by Close. CloneTree copies the exported configuration — cloning
// recursively through any field that holds an Operator or a VecOp — and
// leaves the unexported state zero, which is exactly the state a freshly
// constructed operator has. A non-pointer or non-struct Operator
// implementation is returned as-is (it has no per-run state to share).
//
// The field walk is driven by a memoized per-type clone plan: the first
// clone of each operator type computes which field indices to copy and
// which need the child-dispatch, and every later clone replays the plan
// without re-reading struct tags and visibility through reflect.
func CloneTree(op Operator) Operator {
	if op == nil {
		return nil
	}
	return cloneAny(op).(Operator)
}

// CloneVecTree is CloneTree for batch pipelines.
func CloneVecTree(op VecOp) VecOp {
	if op == nil {
		return nil
	}
	return cloneAny(op).(VecOp)
}

// cloneStep is one exported field of a clone plan. Dynamic fields can hold
// an Operator or VecOp child (interface-typed fields, or concrete types
// implementing either) and dispatch on the value at clone time; the rest
// are copied directly.
type cloneStep struct {
	idx     int
	dynamic bool
}

var (
	operatorType = reflect.TypeOf((*Operator)(nil)).Elem()
	vecOpType    = reflect.TypeOf((*VecOp)(nil)).Elem()

	clonePlans sync.Map // reflect.Type → []cloneStep
)

// planFor returns the memoized clone plan of a struct type.
func planFor(t reflect.Type) []cloneStep {
	if p, ok := clonePlans.Load(t); ok {
		return p.([]cloneStep)
	}
	steps := make([]cloneStep, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue // per-run iterator state: stays zero in the clone
		}
		dyn := f.Type.Kind() == reflect.Interface ||
			f.Type.Implements(operatorType) || f.Type.Implements(vecOpType)
		steps = append(steps, cloneStep{idx: i, dynamic: dyn})
	}
	p, _ := clonePlans.LoadOrStore(t, steps)
	return p.([]cloneStep)
}

// cloneAny clones one pointer-to-struct node by its plan.
func cloneAny(x any) any {
	v := reflect.ValueOf(x)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return x
	}
	src := v.Elem()
	t := src.Type()
	dst := reflect.New(t)
	de := dst.Elem()
	for _, st := range planFor(t) {
		fv := src.Field(st.idx)
		if st.dynamic {
			switch child := fv.Interface().(type) {
			case Operator:
				if cl := CloneTree(child); cl != nil {
					de.Field(st.idx).Set(reflect.ValueOf(cl))
				}
				continue
			case VecOp:
				if cl := CloneVecTree(child); cl != nil {
					de.Field(st.idx).Set(reflect.ValueOf(cl))
				}
				continue
			}
		}
		de.Field(st.idx).Set(fv)
	}
	return dst.Interface()
}
