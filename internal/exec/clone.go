package exec

import "reflect"

// CloneTree returns a fresh copy of an operator tree that can be Opened and
// drained independently of the original — the mechanism behind a prepared-
// plan cache: one planned tree is cached, and every execution runs a clone,
// so concurrent requests never share iterator state.
//
// The copy relies on a structural convention every operator in this package
// follows: exported struct fields are immutable configuration fixed at plan
// time (child operators, Scalar programs, table and attribute names),
// unexported fields are per-run iterator state created by Open and
// abandoned by Close. CloneTree copies the exported configuration — cloning
// recursively through any field that holds an Operator — and leaves the
// unexported state zero, which is exactly the state a freshly constructed
// operator has. A non-pointer or non-struct Operator implementation is
// returned as-is (it has no per-run state to share).
func CloneTree(op Operator) Operator {
	if op == nil {
		return nil
	}
	v := reflect.ValueOf(op)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		return op
	}
	src := v.Elem()
	dst := reflect.New(src.Type())
	de := dst.Elem()
	t := src.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue // per-run iterator state: stays zero in the clone
		}
		fv := src.Field(i)
		if child, ok := fv.Interface().(Operator); ok {
			cl := CloneTree(child)
			if cl != nil {
				de.Field(i).Set(reflect.ValueOf(cl))
			}
			continue
		}
		de.Field(i).Set(fv)
	}
	return dst.Interface().(Operator)
}
