package exec

import (
	"sort"

	"repro/internal/adl"
	"repro/internal/value"
)

// SortMergeJoin is the sort-merge implementation of the inner join and the
// nestjoin on a single equi-key (the paper names the sort-merge join as a
// nestjoin implementation candidate in §6.1). Both inputs are materialized,
// sorted by key under the canonical value order, and merged; for the
// nestjoin, each left key group is paired with the matching right group
// (dangling left tuples get the empty set).
type SortMergeJoin struct {
	Kind       adl.JoinKind // Inner or NestJ
	L, R       Operator
	LVar, RVar string
	LKey, RKey Scalar
	As         string
	RFun       *Scalar

	out []value.Value
	pos int
}

type keyedRow struct {
	key value.Value
	row value.Value
}

func sortByKey(ctx *Ctx, op Operator, key Scalar) ([]keyedRow, error) {
	rows, err := drain(op, ctx)
	if err != nil {
		return nil, err
	}
	out := make([]keyedRow, len(rows))
	for i, r := range rows {
		k, err := key.Eval(ctx, r)
		if err != nil {
			return nil, err
		}
		out[i] = keyedRow{key: k, row: r}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return value.Compare(out[i].key, out[j].key) < 0
	})
	return out, nil
}

// Open sorts and merges.
func (j *SortMergeJoin) Open(ctx *Ctx) error {
	ls, err := sortByKey(ctx, j.L, j.LKey)
	if err != nil {
		return err
	}
	rs, err := sortByKey(ctx, j.R, j.RKey)
	if err != nil {
		return err
	}
	j.out = j.out[:0]
	j.pos = 0
	ri := 0
	for li := 0; li < len(ls); {
		lkey := ls[li].key
		// Advance the right side to the first key ≥ lkey.
		for ri < len(rs) && value.Compare(rs[ri].key, lkey) < 0 {
			ri++
		}
		// Collect the right group with equal keys.
		re := ri
		for re < len(rs) && value.Compare(rs[re].key, lkey) == 0 {
			re++
		}
		// Emit for every left row in this key group.
		le := li
		for le < len(ls) && value.Compare(ls[le].key, lkey) == 0 {
			lt, err := asTuple(ls[le].row, "sort-merge join")
			if err != nil {
				return err
			}
			switch j.Kind {
			case adl.Inner:
				for k := ri; k < re; k++ {
					rt, err := asTuple(rs[k].row, "sort-merge join")
					if err != nil {
						return err
					}
					cat, err := lt.Concat(rt)
					if err != nil {
						return err
					}
					j.out = append(j.out, cat)
				}
			case adl.NestJ:
				nest := value.EmptySet()
				for k := ri; k < re; k++ {
					member := rs[k].row
					if j.RFun != nil {
						member, err = j.RFun.Eval(ctx, ls[le].row, rs[k].row)
						if err != nil {
							return err
						}
					}
					nest.Add(member)
				}
				j.out = append(j.out, lt.With(j.As, nest))
			}
			le++
		}
		li = le
	}
	return nil
}

// Next yields the next row.
func (j *SortMergeJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *SortMergeJoin) Close() error { j.out = nil; return nil }
