package exec

import (
	"reflect"
	"sync/atomic"

	"repro/internal/value"
)

// Counted wraps an operator and tallies the rows it emits. The planner's
// cardinality estimates are predictions; the tallies are the ground truth a
// serving layer can compare them against after a run (runtime feedback:
// evict and re-plan cached plans whose estimates have drifted). The counter
// is held by pointer so the caller keeps reading it after handing the tree
// off, and so a CloneTree copy feeds the same tally as its original.
type Counted struct {
	Child Operator
	N     *atomic.Int64
}

func (c *Counted) Open(ctx *Ctx) error { return c.Child.Open(ctx) }

func (c *Counted) Next() (value.Value, bool, error) {
	row, ok, err := c.Child.Next()
	if ok && err == nil {
		c.N.Add(1)
	}
	return row, ok, err
}

func (c *Counted) Close() error { return c.Child.Close() }

// Instrument mirrors an operator tree with every node wrapped in a Counted
// and returns the instrumented root plus the tallies keyed by the ORIGINAL
// tree's nodes — the same keys a plan's estimate table uses, so estimates
// and actuals line up without any bookkeeping in the caller. The original
// tree is not modified and remains the one to Explain; the mirror is built
// like a CloneTree copy (exported fields are plan-time configuration,
// copied, recursing through Operator-valued ones; unexported per-run state
// stays zero), so it is itself a fresh runnable clone: instrument once per
// execution and the tallies are exact per-run counts.
func Instrument(op Operator) (Operator, map[Operator]*atomic.Int64) {
	tallies := map[Operator]*atomic.Int64{}
	return instrument(op, tallies), tallies
}

func instrument(op Operator, tallies map[Operator]*atomic.Int64) Operator {
	if op == nil {
		return nil
	}
	mirrored := op
	if v := reflect.ValueOf(op); v.Kind() == reflect.Pointer && !v.IsNil() && v.Elem().Kind() == reflect.Struct {
		src := v.Elem()
		dst := reflect.New(src.Type())
		de := dst.Elem()
		t := src.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fv := src.Field(i)
			if child, ok := fv.Interface().(Operator); ok {
				if cl := instrument(child, tallies); cl != nil {
					de.Field(i).Set(reflect.ValueOf(cl))
				}
				continue
			}
			de.Field(i).Set(fv)
		}
		mirrored = dst.Interface().(Operator)
	}
	n := &atomic.Int64{}
	tallies[op] = n
	return &Counted{Child: mirrored, N: n}
}
