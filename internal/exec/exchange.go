package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/col"
)

// exchBatch is a batch in flight through an exchange channel plus the
// plumbing to return its selection buffer: buf is b.Sel's whole backing
// buffer and recycle is the owning worker's free list. The consumer sends
// buf back on recycle (non-blocking — a full pool just drops the buffer to
// the GC) once it is done with the batch, so steady-state execution cycles
// a fixed set of selection buffers instead of allocating per batch.
type exchBatch struct {
	b       Batch
	buf     []int32
	recycle chan []int32
}

// VecExchange is the morsel-driven parallel front of the batch pipeline: it
// splits the source scan's columnar projection into contiguous selection-
// vector morsels claimed from a shared atomic cursor, applies the filter
// kernels worker-local, and exchanges whole batches over one bounded
// channel. Workers own per-worker buffer pools, so the hot path does one
// channel send per batch — never per tuple.
//
// The source must be a VecScan: the exchange bypasses its NextBatch and
// reads the opened projection directly, claiming row ranges instead.
type VecExchange struct {
	Src *VecScan
	// Kernels are the filter predicates, applied in order to each morsel.
	Kernels []VecCmp
	// Workers is the worker count; <=0 means NumCPU.
	Workers int
	// Morsel is the rows claimed per cursor bump; <=0 uses the scan's
	// batch size (or DefaultBatchSize).
	Morsel int

	ctx     *Ctx
	cursor  atomic.Int64
	out     chan exchBatch
	abort   chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	err     error
	stopped bool
	cur     exchBatch
}

// OpenVec opens the source scan and launches the workers plus a completion
// goroutine that closes the source once every worker is done and then
// closes the output stream.
func (e *VecExchange) OpenVec(ctx *Ctx) error {
	if err := e.Src.OpenVec(ctx); err != nil {
		return err
	}
	e.ctx = ctx
	w := Parallelism(e.Workers)
	morsel := e.Morsel
	if morsel <= 0 {
		morsel = e.Src.Batch
	}
	if morsel <= 0 {
		morsel = DefaultBatchSize
	}
	e.cursor.Store(0)
	e.out = make(chan exchBatch, 2*w)
	e.abort = make(chan struct{})
	e.err = nil
	e.stopped = false
	e.cur = exchBatch{}
	proj := e.Src.projection()
	n := proj.Len()
	for i := 0; i < w; i++ {
		e.wg.Add(1)
		pool := make(chan []int32, 4)
		go e.worker(proj, n, morsel, pool)
	}
	// Close ownership of the scan transfers to the worker group: this
	// goroutine releases it the moment the last worker finishes (not when
	// the consumer gets around to CloseVec), surfacing any close error at
	// stream end.
	src := e.Src
	go func() {
		e.wg.Wait()
		if cerr := src.CloseVec(); cerr != nil {
			e.fail(cerr)
		}
		close(e.out)
	}()
	return nil
}

// worker claims morsels until the cursor passes the end, an error is
// recorded, or the consumer aborts.
func (e *VecExchange) worker(proj *col.Proj, n, morsel int, pool chan []int32) {
	defer e.wg.Done()
	for {
		lo := int(e.cursor.Add(int64(morsel))) - morsel
		if lo >= n {
			return
		}
		hi := lo + morsel
		if hi > n {
			hi = n
		}
		var buf []int32
		select {
		case buf = <-pool:
		default:
			buf = make([]int32, morsel)
		}
		sel := buf[:hi-lo]
		for i := range sel {
			sel[i] = int32(lo + i)
		}
		ok := true
		for ki := range e.Kernels {
			var err error
			if sel, err = e.Kernels[ki].apply(e.ctx, proj, sel); err != nil {
				e.fail(err)
				return
			}
			if len(sel) == 0 {
				ok = false
				break
			}
		}
		if !ok || len(sel) == 0 {
			select {
			case pool <- buf:
			default:
			}
			continue
		}
		select {
		case e.out <- exchBatch{b: Batch{Proj: proj, Sel: sel}, buf: buf, recycle: pool}:
		case <-e.abort:
			return
		}
	}
}

// NextBatch recycles the previous batch's buffer and receives the next one.
// Batch order is whatever the workers produce — the morsel cursor hands out
// ranges in order, but completion interleaves.
func (e *VecExchange) NextBatch() (Batch, bool, error) {
	if e.cur.buf != nil {
		select {
		case e.cur.recycle <- e.cur.buf:
		default:
		}
		e.cur = exchBatch{}
	}
	eb, ok := <-e.out
	if !ok {
		e.mu.Lock()
		defer e.mu.Unlock()
		return Batch{}, false, e.err
	}
	e.cur = eb
	return eb.b, true, nil
}

// CloseVec aborts the workers, drains the stream (so the completion
// goroutine's source close always runs before return), and reports any
// recorded error. The source scan itself was closed by the worker group.
func (e *VecExchange) CloseVec() error {
	if e.out == nil {
		return nil
	}
	e.stop()
	for range e.out {
	}
	e.out = nil
	e.cur = exchBatch{}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// fail records the first error and aborts the exchange.
func (e *VecExchange) fail(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.stop()
}

// stop closes the abort channel exactly once.
func (e *VecExchange) stop() {
	e.mu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.abort)
	}
	e.mu.Unlock()
}

// Exchange converts a serial scan+filter batch pipeline into a VecExchange
// over the same projection and kernels, flattened in application order.
// ok=false means the pipeline has a different shape (the exchange covers
// exactly the scan+filter fragment the vectorized planner emits).
func Exchange(op VecOp, workers int) (*VecExchange, bool) {
	var kernels []VecCmp
	for {
		switch v := op.(type) {
		case *VecScan:
			return &VecExchange{Src: v, Kernels: kernels, Workers: workers, Morsel: v.Batch}, true
		case *VecFilter:
			// Walking outside-in: inner filters run first, so prepend.
			kernels = append(append([]VecCmp{}, v.Kernels...), kernels...)
			op = v.Src
		default:
			return nil, false
		}
	}
}
