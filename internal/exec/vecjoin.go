package exec

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/adl"
	"repro/internal/col"
	"repro/internal/value"
)

// fibMix scatters int64 keys across power-of-two bucket arrays
// (Fibonacci hashing: multiply by 2^64/φ, keep the high bits).
const fibMix uint64 = 0x9E3779B97F4A7C15

// i64Table is a chained flat hash table over int64 keys: heads holds
// 1-based slot numbers (0 = empty bucket), next chains slots, and slot i is
// build row i. Two slices and no boxing — the build side of the vectorized
// equi-joins for int-backed key columns (int, date, oid, bool).
type i64Table struct {
	heads []int32
	next  []int32
	keys  []int64
	shift uint
}

func newI64Table(keys []int64) *i64Table {
	nb := 8
	for nb < 2*len(keys) {
		nb <<= 1
	}
	t := &i64Table{
		heads: make([]int32, nb),
		next:  make([]int32, len(keys)),
		keys:  keys,
		shift: uint(64 - bits.Len(uint(nb-1))),
	}
	for i, k := range keys {
		h := (uint64(k) * fibMix) >> t.shift
		t.next[i] = t.heads[h]
		t.heads[h] = int32(i + 1)
	}
	return t
}

// head returns the first slot of k's bucket (0 = empty).
func (t *i64Table) head(k int64) int32 {
	return t.heads[(uint64(k)*fibMix)>>t.shift]
}

func (t *i64Table) contains(k int64) bool {
	for s := t.head(k); s != 0; s = t.next[s-1] {
		if t.keys[s-1] == k {
			return true
		}
	}
	return false
}

// strTable is the string-keyed counterpart of i64Table.
type strTable struct {
	heads []int32
	next  []int32
	keys  []string
	shift uint
}

func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

func newStrTable(keys []string) *strTable {
	nb := 8
	for nb < 2*len(keys) {
		nb <<= 1
	}
	t := &strTable{
		heads: make([]int32, nb),
		next:  make([]int32, len(keys)),
		keys:  keys,
		shift: uint(64 - bits.Len(uint(nb-1))),
	}
	for i, k := range keys {
		h := (fnv64(k) * fibMix) >> t.shift
		t.next[i] = t.heads[h]
		t.heads[h] = int32(i + 1)
	}
	return t
}

func (t *strTable) head(k string) int32 {
	return t.heads[(fnv64(k)*fibMix)>>t.shift]
}

func (t *strTable) contains(k string) bool {
	for s := t.head(k); s != 0; s = t.next[s-1] {
		if t.keys[s-1] == k {
			return true
		}
	}
	return false
}

// colValueKind maps a typed column kind to the value kind its entries carry
// (Mixed has no single kind).
func colValueKind(k col.Kind) (value.Kind, bool) {
	switch k {
	case col.Bool:
		return value.KindBool, true
	case col.Int:
		return value.KindInt, true
	case col.Float:
		return value.KindFloat, true
	case col.Str:
		return value.KindString, true
	case col.Date:
		return value.KindDate, true
	case col.OID:
		return value.KindOID, true
	case col.Set:
		return value.KindSet, true
	}
	return value.KindNull, false
}

// intBacked reports whether a column kind stores its values in Ints.
func intBacked(k col.Kind) bool {
	return k == col.Int || k == col.Date || k == col.OID || k == col.Bool
}

// valueBits extracts the int64 image of an int-backed scalar value.
func valueBits(v value.Value) (int64, bool) {
	switch cv := v.(type) {
	case value.Int:
		return int64(cv), true
	case value.Date:
		return int64(cv), true
	case value.OID:
		return int64(cv), true
	case value.Bool:
		if cv {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// keyTable is the build side of a vectorized equi-join: the evaluated build
// keys plus one of three tables over them. Uniform int-backed keys get the
// flat i64Table, uniform strings the strTable; anything else (floats, sets,
// tuples, mixed kinds, empty) falls back to the generic table — the exact
// structure the scalar HashJoin uses (value.Hash buckets probed with
// value.Equal), so float edge cases (±0, NaN) behave identically.
type keyTable struct {
	vkind value.Kind // key kind when a typed table is built
	keys  []value.Value
	i64   *i64Table
	str   *strTable
	gen   map[uint64][]int32
}

// build evaluates the key over each build row and constructs the table.
func (t *keyTable) build(ctx *Ctx, rows []value.Value, key Scalar) error {
	t.i64, t.str, t.gen = nil, nil, nil
	t.keys = t.keys[:0]
	if !t.appendFast(rows, key) {
		t.keys = t.keys[:0]
		for _, r := range rows {
			k, err := key.Eval(ctx, r)
			if err != nil {
				return err
			}
			t.keys = append(t.keys, k)
		}
	}
	t.index()
	return nil
}

// index constructs the table over t.keys, which must already be evaluated.
// Partitioned callers fill keys directly — routing rows by hash — and index
// each partition independently; index never fails and touches only the
// receiver, so disjoint partitions can be indexed concurrently.
func (t *keyTable) index() {
	t.i64, t.str, t.gen = nil, nil, nil
	if len(t.keys) > 0 {
		kind := t.keys[0].Kind()
		uniform := true
		for _, k := range t.keys[1:] {
			if k.Kind() != kind {
				uniform = false
				break
			}
		}
		if uniform {
			switch kind {
			case value.KindInt, value.KindDate, value.KindOID, value.KindBool:
				bs := make([]int64, len(t.keys))
				for i, k := range t.keys {
					bs[i], _ = valueBits(k)
				}
				t.vkind = kind
				t.i64 = newI64Table(bs)
				return
			case value.KindString:
				ss := make([]string, len(t.keys))
				for i, k := range t.keys {
					ss[i] = string(k.(value.String))
				}
				t.vkind = kind
				t.str = newStrTable(ss)
				return
			}
		}
	}
	t.gen = make(map[uint64][]int32, len(t.keys))
	for i, k := range t.keys {
		h := value.Hash(k)
		t.gen[h] = append(t.gen[h], int32(i))
	}
}

// appendFast fills keys by reading a v.attr key straight off each build
// tuple, skipping the per-row environment binding. False (with keys possibly
// partial) means the caller must re-evaluate through the interpreter, which
// is also how shape mismatches (non-tuple rows, missing attributes) surface
// the interpreter's exact errors.
func (t *keyTable) appendFast(rows []value.Value, key Scalar) bool {
	attr := fieldKeyAttr(key)
	if attr == "" {
		return false
	}
	for _, r := range rows {
		tup, ok := r.(*value.Tuple)
		if !ok {
			return false
		}
		k, ok := tup.Get(attr)
		if !ok {
			return false
		}
		t.keys = append(t.keys, k)
	}
	return true
}

// typed reports whether a typed (non-generic) table was built.
func (t *keyTable) typed() bool { return t.i64 != nil || t.str != nil }

// containsValue reports whether any build key equals k, with scalar
// semantics (typed kinds never cross; generic = hash bucket + Equal).
func (t *keyTable) containsValue(k value.Value) bool {
	if t.i64 != nil {
		if k.Kind() != t.vkind {
			return false
		}
		b, _ := valueBits(k)
		return t.i64.contains(b)
	}
	if t.str != nil {
		s, ok := k.(value.String)
		return ok && t.str.contains(string(s))
	}
	for _, ri := range t.gen[value.Hash(k)] {
		if value.Equal(t.keys[ri], k) {
			return true
		}
	}
	return false
}

// forEach calls fn for every build row whose key equals k.
func (t *keyTable) forEach(k value.Value, fn func(ri int) error) error {
	if t.i64 != nil {
		if k.Kind() != t.vkind {
			return nil
		}
		b, _ := valueBits(k)
		for s := t.i64.head(b); s != 0; s = t.i64.next[s-1] {
			if t.i64.keys[s-1] == b {
				if err := fn(int(s - 1)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if t.str != nil {
		s2, ok := k.(value.String)
		if !ok {
			return nil
		}
		b := string(s2)
		for s := t.str.head(b); s != 0; s = t.str.next[s-1] {
			if t.str.keys[s-1] == b {
				if err := fn(int(s - 1)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, ri := range t.gen[value.Hash(k)] {
		if value.Equal(t.keys[ri], k) {
			if err := fn(int(ri)); err != nil {
				return err
			}
		}
	}
	return nil
}

// errStopProbe is the sentinel a probe callback returns to end the match
// walk early without error (a semijoin's first residual-passing hit);
// probeEach and forEachElem swallow it.
var errStopProbe = errors.New("exec: stop probe")

// probeEach walks every build row whose key matches left row i, dispatching
// on the probe column's type the way the join operators' inline fast paths
// do: a typed column against the matching typed table walks the flat chain
// with no value boxing; a typed column against a typed table of another kind
// matches nothing (Equal never crosses kinds); a typed column against the
// generic table reads the key off the decoded tuple; Mixed columns go
// through the interpreter, reference semantics and scalar errors included.
// fn may return errStopProbe to end the walk early.
func (t *keyTable) probeEach(ctx *Ctx, p *col.Proj, i int32, c *col.Col, lkey Scalar, attr, opName string, fn func(ri int) error) error {
	if err := t.probeWalk(ctx, p, i, c, lkey, attr, opName, fn); err != nil && err != errStopProbe {
		return err
	}
	return nil
}

func (t *keyTable) probeWalk(ctx *Ctx, p *col.Proj, i int32, c *col.Col, lkey Scalar, attr, opName string, fn func(ri int) error) error {
	typedCol := c != nil && c.Kind != col.Mixed
	switch {
	case typedCol && t.i64 != nil && intBacked(c.Kind) && mustColValueKind(c.Kind) == t.vkind:
		k := c.Ints[i]
		for s := t.i64.head(k); s != 0; s = t.i64.next[s-1] {
			if t.i64.keys[s-1] == k {
				if err := fn(int(s - 1)); err != nil {
					return err
				}
			}
		}
	case typedCol && t.str != nil && c.Kind == col.Str:
		k := c.Strs[i]
		for s := t.str.head(k); s != 0; s = t.str.next[s-1] {
			if t.str.keys[s-1] == k {
				if err := fn(int(s - 1)); err != nil {
					return err
				}
			}
		}
	case typedCol && t.typed():
		// cross-kind: no matches
	case typedCol:
		// Generic table, typed column: the key comes straight off the
		// decoded tuple (a typed column implies every row is a tuple
		// carrying the attribute).
		k, _ := p.Rows[i].(*value.Tuple).Get(attr)
		return t.forEach(k, fn)
	default:
		// Mixed column: reference row-wise path.
		if _, err := asTuple(p.Rows[i], opName); err != nil {
			return err
		}
		k, err := lkey.Eval(ctx, p.Rows[i])
		if err != nil {
			return err
		}
		return t.forEach(k, fn)
	}
	return nil
}

// VecSemiJoin is the batch hash semijoin/antijoin on an equi-key: the right
// operand is drained and hashed once, then left batches pass through with
// their selection narrowed to rows whose key column hits (semi) or misses
// (anti) the table. Left rows are untouched, so the operator stays a VecOp.
type VecSemiJoin struct {
	Anti bool
	L    VecOp
	R    Operator
	// LAttr is the left key column; LKey is the same key as a scalar, the
	// row-wise fallback when the column is not typed.
	LAttr string
	LKey  Scalar
	RKey  Scalar
	// Residual is an optional extra predicate over both join variables; a
	// key match counts only after the residual passes on the pair.
	Residual *Scalar

	ctx   *Ctx
	tab   keyTable
	right []value.Value
}

// OpenVec builds the table from the right operand and opens the left
// pipeline.
func (j *VecSemiJoin) OpenVec(ctx *Ctx) error {
	j.ctx = ctx
	rrows, err := drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.tab.build(ctx, rrows, j.RKey); err != nil {
		return err
	}
	if j.Residual != nil {
		j.right = rrows
	}
	return j.L.OpenVec(ctx)
}

// NextBatch yields the next non-empty probed batch.
func (j *VecSemiJoin) NextBatch() (Batch, bool, error) {
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil || !ok {
			return Batch{}, false, err
		}
		if b.Sel, err = j.probe(b.Proj, b.Sel); err != nil {
			return Batch{}, false, err
		}
		if len(b.Sel) > 0 {
			return b, true, nil
		}
	}
}

// CloseVec closes the left pipeline (the right operand was drained at open).
func (j *VecSemiJoin) CloseVec() error {
	j.right = nil
	return j.L.CloseVec()
}

// probe narrows sel to the rows passing the (anti)semijoin.
func (j *VecSemiJoin) probe(p *col.Proj, sel []int32) ([]int32, error) {
	c := p.Col(j.LAttr)
	out := sel[:0]
	if j.Residual != nil {
		// Residual predicate: every key match walks the pair through the
		// interpreter until one passes (the scalar HashJoin's semi break).
		for _, i := range sel {
			lrow := p.Rows[i]
			matched := false
			err := j.tab.probeEach(j.ctx, p, i, c, j.LKey, j.LAttr, "hash join", func(ri int) error {
				ok, err := j.Residual.Bool(j.ctx, lrow, j.right[ri])
				if err != nil {
					return err
				}
				if ok {
					matched = true
					return errStopProbe
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if matched != j.Anti {
				out = append(out, i)
			}
		}
		return out, nil
	}
	switch {
	case c != nil && j.tab.i64 != nil && intBacked(c.Kind) && mustColValueKind(c.Kind) == j.tab.vkind:
		for _, i := range sel {
			if j.tab.i64.contains(c.Ints[i]) != j.Anti {
				out = append(out, i)
			}
		}
	case c != nil && j.tab.str != nil && c.Kind == col.Str:
		for _, i := range sel {
			if j.tab.str.contains(c.Strs[i]) != j.Anti {
				out = append(out, i)
			}
		}
	case c != nil && c.Kind != col.Mixed && j.tab.typed():
		// Typed column against a typed table of a different kind: Equal
		// never crosses kinds, so nothing matches.
		if j.Anti {
			return sel, nil
		}
		return sel[:0], nil
	case c != nil && c.Kind != col.Mixed:
		// Generic table, typed column: the key comes straight off the
		// decoded tuple (a typed column implies every row is a tuple
		// carrying the attribute).
		for _, i := range sel {
			k, _ := p.Rows[i].(*value.Tuple).Get(j.LAttr)
			if j.tab.containsValue(k) != j.Anti {
				out = append(out, i)
			}
		}
	default:
		// Mixed column: reference row-wise path, scalar errors included.
		for _, i := range sel {
			if _, err := asTuple(p.Rows[i], "hash join"); err != nil {
				return nil, err
			}
			k, err := j.LKey.Eval(j.ctx, p.Rows[i])
			if err != nil {
				return nil, err
			}
			if j.tab.containsValue(k) != j.Anti {
				out = append(out, i)
			}
		}
	}
	return out, nil
}

// mustColValueKind is colValueKind for kinds known typed.
func mustColValueKind(k col.Kind) value.Kind {
	vk, _ := colValueKind(k)
	return vk
}

// VecInnerJoin is the batch hash inner/outer join on an equi-key. It sinks
// the batch pipeline: output rows are fresh concatenated tuples, so it
// exposes the Operator interface (plus bulk collection) rather than VecOp.
type VecInnerJoin struct {
	L     VecOp
	R     Operator
	LAttr string
	LKey  Scalar
	RKey  Scalar
	// Residual is an optional extra predicate over both join variables.
	Residual *Scalar
	// Outer pads unmatched left rows with nulls over the right schema.
	Outer bool

	right   []value.Value
	tab     keyTable
	nullPad *value.Tuple
	out     []value.Value
	pos     int
}

// Open builds the table from the right operand and computes the join
// eagerly, like the scalar HashJoin.
func (j *VecInnerJoin) Open(ctx *Ctx) (err error) {
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.tab.build(ctx, j.right, j.RKey); err != nil {
		return err
	}
	j.nullPad = value.EmptyTuple()
	if j.Outer {
		j.nullPad = outerNullPad(adl.Outer, j.right)
	}
	if err := j.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := j.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	j.out = j.out[:0]
	j.pos = 0
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := j.probeBatch(ctx, b); err != nil {
			return err
		}
	}
}

// probeBatch joins one batch into the output.
func (j *VecInnerJoin) probeBatch(ctx *Ctx, b Batch) error {
	c := b.Proj.Col(j.LAttr)
	for _, i := range b.Sel {
		lrow := b.Proj.Rows[i]
		lt, err := asTuple(lrow, "hash join")
		if err != nil {
			return err
		}
		matched := false
		if err := j.tab.probeEach(ctx, b.Proj, i, c, j.LKey, j.LAttr, "hash join", func(ri int) error {
			if j.Residual != nil {
				ok, err := j.Residual.Bool(ctx, lrow, j.right[ri])
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
			}
			matched = true
			return j.emit(lt, ri)
		}); err != nil {
			return err
		}
		if j.Outer && !matched {
			cat, err := lt.Concat(j.nullPad)
			if err != nil {
				return err
			}
			j.out = append(j.out, cat)
		}
	}
	return nil
}

// emit appends the concatenation of a left tuple with build row ri.
func (j *VecInnerJoin) emit(lt *value.Tuple, ri int) error {
	rt, err := asTuple(j.right[ri], "hash join")
	if err != nil {
		return err
	}
	cat, err := lt.Concat(rt)
	if err != nil {
		return err
	}
	j.out = append(j.out, cat)
	return nil
}

// Next yields the next joined row.
func (j *VecInnerJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *VecInnerJoin) Close() error {
	j.right, j.out, j.nullPad = nil, nil, nil
	return nil
}

// CollectSet materializes the join straight into a set with the bulk
// constructor.
func (j *VecInnerJoin) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := j.Open(ctx); err != nil {
		return nil, errors.Join(err, j.Close())
	}
	s := value.NewSetFromSlice(j.out)
	j.out = j.out[:0]
	if cerr := j.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}

// VecHashGroupJoin is the batch hash nestjoin (grouping join) on an
// equi-key: each left row is extended with a set-valued attribute holding
// its matching right rows (or their RFun images) — the paper's nestjoin
// evaluated with the §6.1 hash-join adaptation over the typed batch tables.
// Exactly one output row per left row, matched or not.
type VecHashGroupJoin struct {
	L     VecOp
	R     Operator
	LAttr string
	LKey  Scalar
	RKey  Scalar
	// Residual is an optional extra predicate over both join variables.
	Residual *Scalar
	// As names the nest attribute; RFun optionally maps each matched pair
	// to the nested member.
	As   string
	RFun *Scalar

	right []value.Value
	tab   keyTable
	out   []value.Value
	pos   int
}

// Open builds the table from the right operand and computes the grouping
// join eagerly.
func (j *VecHashGroupJoin) Open(ctx *Ctx) (err error) {
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.tab.build(ctx, j.right, j.RKey); err != nil {
		return err
	}
	if err := j.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := j.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	j.out = j.out[:0]
	j.pos = 0
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		c := b.Proj.Col(j.LAttr)
		for _, i := range b.Sel {
			lrow := b.Proj.Rows[i]
			lt, err := asTuple(lrow, "hash join")
			if err != nil {
				return err
			}
			nest := value.EmptySet()
			if err := j.tab.probeEach(ctx, b.Proj, i, c, j.LKey, j.LAttr, "hash join", func(ri int) error {
				if j.Residual != nil {
					ok, err := j.Residual.Bool(ctx, lrow, j.right[ri])
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
				}
				member := j.right[ri]
				if j.RFun != nil {
					if member, err = j.RFun.Eval(ctx, lrow, j.right[ri]); err != nil {
						return err
					}
				}
				nest.Add(member)
				return nil
			}); err != nil {
				return err
			}
			j.out = append(j.out, lt.With(j.As, nest))
		}
	}
}

// Next yields the next grouped row.
func (j *VecHashGroupJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *VecHashGroupJoin) Close() error {
	j.right, j.out = nil, nil
	return nil
}

// CollectSet materializes the grouping join straight into a set.
func (j *VecHashGroupJoin) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := j.Open(ctx); err != nil {
		return nil, errors.Join(err, j.Close())
	}
	s := value.NewSetFromSlice(j.out)
	j.out = j.out[:0]
	if cerr := j.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}

// VecNLJoin is the batch nested-loop join — the reference showing the batch
// plumbing is semantics-neutral: batches stream through, but the predicate
// is still the interpreter evaluated per pair. Inner, semi and anti kinds.
type VecNLJoin struct {
	Kind adl.JoinKind
	L    VecOp
	R    Operator
	Pred Scalar

	out []value.Value
	pos int
}

// Open materializes the right operand and computes the join eagerly.
func (j *VecNLJoin) Open(ctx *Ctx) (err error) {
	right, err := drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := j.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	j.out = j.out[:0]
	j.pos = 0
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for _, i := range b.Sel {
			lrow := b.Proj.Rows[i]
			lt, err := asTuple(lrow, "join")
			if err != nil {
				return err
			}
			matched := false
			for _, rrow := range right {
				ok, err := j.Pred.Bool(ctx, lrow, rrow)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				matched = true
				if j.Kind == adl.Inner {
					rt, err := asTuple(rrow, "join")
					if err != nil {
						return err
					}
					cat, err := lt.Concat(rt)
					if err != nil {
						return err
					}
					j.out = append(j.out, cat)
				}
				if j.Kind == adl.Semi {
					break
				}
			}
			switch j.Kind {
			case adl.Semi:
				if matched {
					j.out = append(j.out, lrow)
				}
			case adl.Anti:
				if !matched {
					j.out = append(j.out, lrow)
				}
			case adl.Inner:
				// matches already emitted
			default:
				return fmt.Errorf("exec: vectorized nested-loop join does not support kind %v", j.Kind)
			}
		}
	}
}

// Next yields the next joined row.
func (j *VecNLJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *VecNLJoin) Close() error { j.out = nil; return nil }

// CollectSet materializes the join straight into a set.
func (j *VecNLJoin) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := j.Open(ctx); err != nil {
		return nil, errors.Join(err, j.Close())
	}
	s := value.NewSetFromSlice(j.out)
	j.out = j.out[:0]
	if cerr := j.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}

// VecSetProbeJoin is the batch form of the set-probe (anti)semijoin: left
// rows carry a set-valued attribute whose elements probe a table built over
// the right operand's key (key(y) ∈ x.attr). Left batches pass through with
// the selection narrowed, like VecSemiJoin.
//
// Build keys of the shape the planner actually produces — x[pid]-style unary
// tuples over an int-backed attribute — get a typed fast path: the table
// holds the raw int64s, and probe elements match when they are unary tuples
// of the same name and kind (exactly value.Equal on that shape). Anything
// else uses the generic hash/Equal structure of the scalar SetProbeJoin.
type VecSetProbeJoin struct {
	L    VecOp
	R    Operator
	Attr string
	RKey Scalar
	// Anti flips the semijoin to its complement.
	Anti bool

	ctx *Ctx
	tab setKeyTable
}

// setKeyTable is the build side of the vectorized set-probe joins: the
// right operand's evaluated keys under either the unary-tuple int fast path
// (a flat i64Table over the raw bits) or the generic hash/Equal structure of
// the scalar SetProbeJoin.
type setKeyTable struct {
	keys []value.Value
	gen  map[uint64][]int32
	u    *i64Table
	// uname/ukind describe the unary-tuple fast path's element shape.
	uname string
	ukind value.Kind
}

// build evaluates the key over each build row and constructs the table.
func (t *setKeyTable) build(ctx *Ctx, rrows []value.Value, key Scalar) error {
	t.keys = t.keys[:0]
	t.gen, t.u = nil, nil
	if bs, name, kind, ok := subscriptIntKeys(rrows, key); ok {
		t.u, t.uname, t.ukind = newI64Table(bs), name, kind
		return nil
	}
	for _, rrow := range rrows {
		k, err := key.Eval(ctx, rrow)
		if err != nil {
			return err
		}
		t.keys = append(t.keys, k)
	}
	if bs, name, kind, ok := unaryIntKeys(t.keys); ok {
		t.u, t.uname, t.ukind = newI64Table(bs), name, kind
	} else {
		t.gen = make(map[uint64][]int32, len(t.keys))
		for i, k := range t.keys {
			h := value.Hash(k)
			t.gen[h] = append(t.gen[h], int32(i))
		}
	}
	return nil
}

// anyMatch reports whether any element of as matches a build key.
func (t *setKeyTable) anyMatch(as *value.Set) bool {
	if t.u != nil {
		for _, elem := range as.Elems() {
			et, ok := elem.(*value.Tuple)
			if !ok || et.Len() != 1 || et.Names()[0] != t.uname {
				continue
			}
			ev, _ := et.Get(t.uname)
			if ev.Kind() != t.ukind {
				continue
			}
			b, _ := valueBits(ev)
			if t.u.contains(b) {
				return true
			}
		}
		return false
	}
	for _, elem := range as.Elems() {
		h := value.Hash(elem)
		for _, ri := range t.gen[h] {
			if value.Equal(t.keys[ri], elem) {
				return true
			}
		}
	}
	return false
}

// forEachElem calls fn for every (set element, matching build row) pair in
// element order — the scalar SetProbeJoin's probe loop. fn may return
// errStopProbe to end the walk early.
func (t *setKeyTable) forEachElem(as *value.Set, fn func(ri int) error) error {
	err := t.walkElems(as, fn)
	if err == errStopProbe {
		return nil
	}
	return err
}

func (t *setKeyTable) walkElems(as *value.Set, fn func(ri int) error) error {
	if t.u != nil {
		for _, elem := range as.Elems() {
			et, ok := elem.(*value.Tuple)
			if !ok || et.Len() != 1 || et.Names()[0] != t.uname {
				continue
			}
			ev, _ := et.Get(t.uname)
			if ev.Kind() != t.ukind {
				continue
			}
			b, _ := valueBits(ev)
			for s := t.u.head(b); s != 0; s = t.u.next[s-1] {
				if t.u.keys[s-1] == b {
					if err := fn(int(s - 1)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, elem := range as.Elems() {
		for _, ri := range t.gen[value.Hash(elem)] {
			if value.Equal(t.keys[ri], elem) {
				if err := fn(int(ri)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// OpenVec builds the table from the right operand and opens the left
// pipeline.
func (j *VecSetProbeJoin) OpenVec(ctx *Ctx) error {
	j.ctx = ctx
	rrows, err := drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.tab.build(ctx, rrows, j.RKey); err != nil {
		return err
	}
	return j.L.OpenVec(ctx)
}

// subscriptIntKeys evaluates a v[attr] build key straight off the tuples
// when every row carries an int-backed value of one kind under attr — the
// unary-tuple fast path's table built without materializing a single unary
// tuple or environment frame. The shape produced is exactly what
// unaryIntKeys would extract from the evaluated keys (name = attr, uniform
// kind, raw bits), so probe semantics are unchanged. ok=false sends the
// caller through the interpreter loop, which also reproduces its errors
// (non-tuple rows, missing attributes).
func subscriptIntKeys(rows []value.Value, key Scalar) ([]int64, string, value.Kind, bool) {
	sub, ok := key.Expr.(*adl.Subscript)
	if !ok || len(sub.Attrs) != 1 || len(key.Vars) != 1 || len(rows) == 0 {
		return nil, "", value.KindNull, false
	}
	v, ok := sub.X.(*adl.Var)
	if !ok || v.Name != key.Vars[0] {
		return nil, "", value.KindNull, false
	}
	attr := sub.Attrs[0]
	var kind value.Kind
	bs := make([]int64, len(rows))
	for i, r := range rows {
		tup, ok := r.(*value.Tuple)
		if !ok {
			return nil, "", value.KindNull, false
		}
		ev, ok := tup.Get(attr)
		if !ok {
			return nil, "", value.KindNull, false
		}
		if i == 0 {
			kind = ev.Kind()
		} else if ev.Kind() != kind {
			return nil, "", value.KindNull, false
		}
		b, ok := valueBits(ev)
		if !ok {
			return nil, "", value.KindNull, false
		}
		bs[i] = b
	}
	return bs, attr, kind, true
}

// unaryIntKeys recognizes a uniform build-key shape of unary tuples over one
// int-backed attribute, returning the raw key bits.
func unaryIntKeys(keys []value.Value) ([]int64, string, value.Kind, bool) {
	if len(keys) == 0 {
		return nil, "", value.KindNull, false
	}
	first, ok := keys[0].(*value.Tuple)
	if !ok || first.Len() != 1 {
		return nil, "", value.KindNull, false
	}
	name := first.Names()[0]
	v, _ := first.Get(name)
	kind := v.Kind()
	if _, ok := valueBits(v); !ok {
		return nil, "", value.KindNull, false
	}
	bs := make([]int64, len(keys))
	for i, k := range keys {
		t, ok := k.(*value.Tuple)
		if !ok || t.Len() != 1 || t.Names()[0] != name {
			return nil, "", value.KindNull, false
		}
		ev, _ := t.Get(name)
		if ev.Kind() != kind {
			return nil, "", value.KindNull, false
		}
		bs[i], _ = valueBits(ev)
	}
	return bs, name, kind, true
}

// NextBatch yields the next non-empty probed batch.
func (j *VecSetProbeJoin) NextBatch() (Batch, bool, error) {
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil || !ok {
			return Batch{}, false, err
		}
		if b.Sel, err = j.probe(b.Proj, b.Sel); err != nil {
			return Batch{}, false, err
		}
		if len(b.Sel) > 0 {
			return b, true, nil
		}
	}
}

// CloseVec closes the left pipeline.
func (j *VecSetProbeJoin) CloseVec() error { return j.L.CloseVec() }

// probe narrows sel to the rows whose set attribute hits (semi) or misses
// (anti) the table.
func (j *VecSetProbeJoin) probe(p *col.Proj, sel []int32) ([]int32, error) {
	c := p.Col(j.Attr)
	out := sel[:0]
	for _, i := range sel {
		as, err := setAttrOf(p, c, i, j.Attr)
		if err != nil {
			return nil, err
		}
		if j.tab.anyMatch(as) != j.Anti {
			out = append(out, i)
		}
	}
	return out, nil
}

// setAttrOf extracts the set-valued probe attribute of left row i, reading
// the typed column when present and falling back to the decoded tuple with
// the scalar SetProbeJoin's exact errors.
func setAttrOf(p *col.Proj, c *col.Col, i int32, attr string) (*value.Set, error) {
	if c != nil && c.Kind == col.Set {
		return c.Sets[i], nil
	}
	lt, err := asTuple(p.Rows[i], "set-probe join")
	if err != nil {
		return nil, err
	}
	av, ok := lt.Get(attr)
	if !ok {
		return nil, fmt.Errorf("exec: set-probe join on missing attribute %q", attr)
	}
	as, ok := av.(*value.Set)
	if !ok {
		return nil, fmt.Errorf("exec: set-probe join on non-set attribute %q", attr)
	}
	return as, nil
}

// VecSetGroupJoin is the batch set-probe nestjoin: each left row gains a
// set-valued attribute collecting the right rows (or their RFun images)
// whose key matches some element of the left row's set attribute — the
// single-segment PNHL shape with grouping output, sinking the batch
// pipeline like VecHashGroupJoin.
type VecSetGroupJoin struct {
	L    VecOp
	R    Operator
	Attr string
	RKey Scalar
	As   string
	RFun *Scalar

	right []value.Value
	tab   setKeyTable
	out   []value.Value
	pos   int
}

// Open builds the table from the right operand and computes the grouping
// join eagerly.
func (j *VecSetGroupJoin) Open(ctx *Ctx) (err error) {
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	if err := j.tab.build(ctx, j.right, j.RKey); err != nil {
		return err
	}
	if err := j.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := j.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	j.out = j.out[:0]
	j.pos = 0
	for {
		b, ok, err := j.L.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		c := b.Proj.Col(j.Attr)
		for _, i := range b.Sel {
			lrow := b.Proj.Rows[i]
			lt, err := asTuple(lrow, "set-probe join")
			if err != nil {
				return err
			}
			as, err := setAttrOf(b.Proj, c, i, j.Attr)
			if err != nil {
				return err
			}
			nest := value.EmptySet()
			if err := j.tab.forEachElem(as, func(ri int) error {
				member := j.right[ri]
				if j.RFun != nil {
					if member, err = j.RFun.Eval(ctx, lrow, j.right[ri]); err != nil {
						return err
					}
				}
				nest.Add(member)
				return nil
			}); err != nil {
				return err
			}
			j.out = append(j.out, lt.With(j.As, nest))
		}
	}
}

// Next yields the next grouped row.
func (j *VecSetGroupJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *VecSetGroupJoin) Close() error {
	j.right, j.out = nil, nil
	return nil
}

// CollectSet materializes the grouping join straight into a set.
func (j *VecSetGroupJoin) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := j.Open(ctx); err != nil {
		return nil, errors.Join(err, j.Close())
	}
	s := value.NewSetFromSlice(j.out)
	j.out = j.out[:0]
	if cerr := j.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}
