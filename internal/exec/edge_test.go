package exec

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

// Edge cases for the PNHL and sort-merge operators: empty inputs on either
// side, all-duplicate keys (one giant merge group / one hash bucket spanning
// segments), and a single-row build side.

func pnhlOp(budget int) *PNHL {
	return &PNHL{
		L: &Scan{Table: "N"}, R: &Scan{Table: "R"},
		Attr:       "parts",
		ElemKey:    NewScalar(adl.Dot(adl.V("e"), "k"), "e"),
		BuildKey:   NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		BudgetRows: budget,
	}
}

// pnhlSpec is the logical specification PNHL implements:
// α[z : z except (parts = {e ∘ y | e ∈ z.parts, y ∈ R, e.k = y.d})](N).
func pnhlSpec() adl.Expr {
	return adl.MapE("z",
		adl.Exc(adl.V("z"), "parts",
			adl.Flat(adl.MapE("e",
				adl.MapE("y2", adl.Cat(adl.V("e"), adl.V("y2")),
					adl.Sel("y", adl.EqE(adl.Dot(adl.V("e"), "k"), adl.Dot(adl.V("y"), "d")), adl.T("R"))),
				adl.Dot(adl.V("z"), "parts")))),
		adl.T("N"))
}

func TestPNHLEmptyProbe(t *testing.T) {
	d := storage.NewMemDB(
		"N", value.EmptySet(),
		"R", value.NewSet(value.NewTuple("d", value.Int(1), "c", value.Int(9))),
	)
	for _, budget := range []int{0, 1} {
		if got := collect(t, pnhlOp(budget), d); got.Len() != 0 {
			t.Fatalf("budget %d: empty probe side must yield ∅, got %v", budget, got)
		}
	}
}

func TestPNHLAllDuplicateKeys(t *testing.T) {
	// Every element and every build row carries the same key: one hash
	// bucket, sliced across segments by a tiny budget. The per-left-tuple
	// merge must still produce each element ∘ row pair exactly once.
	parts := value.EmptySet()
	for i := 0; i < 4; i++ {
		parts.Add(value.NewTuple("k", value.Int(7), "tag", value.Int(int64(i))))
	}
	r := value.EmptySet()
	for i := 0; i < 6; i++ {
		r.Add(value.NewTuple("d", value.Int(7), "c", value.Int(int64(100+i))))
	}
	d := storage.NewMemDB(
		"N", value.NewSet(
			value.NewTuple("a", value.Int(1), "parts", parts),
			value.NewTuple("a", value.Int(2), "parts", value.EmptySet()),
		),
		"R", r,
	)
	want := evalRef(t, pnhlSpec(), d)
	for _, budget := range []int{0, 1, 2, 5} {
		p := pnhlOp(budget)
		if got := collect(t, p, d); !value.Equal(got, want) {
			t.Fatalf("budget %d: all-duplicate keys diverge from spec:\n got  %v\n want %v",
				budget, got, want)
		}
		if budget == 1 && p.Segments() != 6 {
			t.Fatalf("budget 1 over 6 build rows must use 6 segments, used %d", p.Segments())
		}
	}
}

func TestPNHLSingleRowBuild(t *testing.T) {
	parts := value.NewSet(
		value.NewTuple("k", value.Int(1), "tag", value.Int(10)),
		value.NewTuple("k", value.Int(2), "tag", value.Int(20)),
	)
	d := storage.NewMemDB(
		"N", value.NewSet(value.NewTuple("a", value.Int(1), "parts", parts)),
		"R", value.NewSet(value.NewTuple("d", value.Int(2), "c", value.Int(5))),
	)
	want := evalRef(t, pnhlSpec(), d)
	for _, budget := range []int{0, 1} {
		if got := collect(t, pnhlOp(budget), d); !value.Equal(got, want) {
			t.Fatalf("budget %d: single-row build diverges:\n got  %v\n want %v", budget, got, want)
		}
	}
}

func sortMergeOp(kind adl.JoinKind, as string) *SortMergeJoin {
	return &SortMergeJoin{Kind: kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), As: as}
}

func TestSortMergeEmptyInputs(t *testing.T) {
	lrow := value.NewTuple("a", value.Int(1), "b", value.Int(2))
	rrow := value.NewTuple("c", value.Int(3), "d", value.Int(2))
	cases := []struct {
		name string
		l, r *value.Set
	}{
		{"both-empty", value.EmptySet(), value.EmptySet()},
		{"left-empty", value.EmptySet(), value.NewSet(rrow)},
		{"right-empty", value.NewSet(lrow), value.EmptySet()},
	}
	for _, tc := range cases {
		d := storage.NewMemDB("L", tc.l, "R", tc.r)
		if got := collect(t, sortMergeOp(adl.Inner, ""), d); got.Len() != 0 {
			t.Fatalf("%s: inner sort-merge must be ∅, got %v", tc.name, got)
		}
		got := collect(t, sortMergeOp(adl.NestJ, "g"), d)
		if got.Len() != tc.l.Len() {
			t.Fatalf("%s: nestjoin must keep all %d left rows, got %v", tc.name, tc.l.Len(), got)
		}
		for _, e := range got.Elems() {
			g := e.(*value.Tuple).MustGet("g").(*value.Set)
			if g.Len() != 0 {
				t.Fatalf("%s: dangling left row must group ∅, got %v", tc.name, g)
			}
		}
	}
}

func TestSortMergeAllDuplicateKeys(t *testing.T) {
	// One merge group on each side: the group-by-group pairing degenerates
	// to a full cross product (inner) / one full group per left row (nestj).
	l := value.EmptySet()
	for i := 0; i < 5; i++ {
		l.Add(value.NewTuple("a", value.Int(int64(i)), "b", value.Int(3)))
	}
	r := value.EmptySet()
	for i := 0; i < 4; i++ {
		r.Add(value.NewTuple("c", value.Int(int64(10+i)), "d", value.Int(3)))
	}
	d := storage.NewMemDB("L", l, "R", r)

	want := evalRef(t, logicalJoin(adl.Inner, "", nil), d)
	if got := collect(t, sortMergeOp(adl.Inner, ""), d); !value.Equal(got, want) {
		t.Fatalf("inner all-duplicate keys:\n got  %v\n want %v", got, want)
	}
	if want.Len() != 20 {
		t.Fatalf("oracle sanity: 5×4 cross product expected, got %d", want.Len())
	}

	want = evalRef(t, logicalJoin(adl.NestJ, "g", nil), d)
	if got := collect(t, sortMergeOp(adl.NestJ, "g"), d); !value.Equal(got, want) {
		t.Fatalf("nestjoin all-duplicate keys:\n got  %v\n want %v", got, want)
	}
}

func TestSortMergeSingleRowBuild(t *testing.T) {
	l := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(2)),
		value.NewTuple("a", value.Int(2), "b", value.Int(2)),
		value.NewTuple("a", value.Int(3), "b", value.Int(9)),
	)
	r := value.NewSet(value.NewTuple("c", value.Int(4), "d", value.Int(2)))
	d := storage.NewMemDB("L", l, "R", r)

	for _, k := range []struct {
		kind adl.JoinKind
		as   string
	}{{adl.Inner, ""}, {adl.NestJ, "g"}} {
		want := evalRef(t, logicalJoin(k.kind, k.as, nil), d)
		if got := collect(t, sortMergeOp(k.kind, k.as), d); !value.Equal(got, want) {
			t.Fatalf("%v single-row build:\n got  %v\n want %v", k.kind, got, want)
		}
	}
}
