package exec

import (
	"errors"
	"fmt"

	"repro/internal/adl"
	"repro/internal/col"
	"repro/internal/value"
)

// VecPNHL is the batch-native Partitioned Nested-Hashed-Loops join: the
// same two-phase, budget-segmented algorithm as the scalar PNHL ([DeLa92]
// §6.2), with the probe side streaming in as columnar batches and each
// build segment indexed through the typed flat keyTable instead of a boxed
// hash map. Set-valued probe attributes come straight off the typed Set
// column when present, element keys are evaluated once and reused across
// segments, and v.attr-shaped keys skip the interpreter entirely.
type VecPNHL struct {
	L VecOp    // operand with the set-valued attribute (probe side)
	R Operator // flat build table
	// Attr is the set-valued attribute of left tuples; its elements must be
	// tuples.
	Attr string
	// ElemKey computes the join key of an attribute element.
	ElemKey Scalar
	// BuildKey computes the join key of a build-table row.
	BuildKey Scalar
	// BudgetRows is the memory budget: build rows hashed per segment. Zero
	// means unlimited (single segment).
	BudgetRows int
	// Member, if non-nil, computes the joined member from (element, build
	// row) instead of the default concatenation.
	Member *Scalar

	segmentsUsed int
	out          []value.Value
	pos          int
}

// Segments reports how many build segments the last Open needed.
func (p *VecPNHL) Segments() int { return p.segmentsUsed }

// Open runs both phases eagerly.
func (p *VecPNHL) Open(ctx *Ctx) (err error) {
	build, err := drain(p.R, ctx)
	if err != nil {
		return err
	}

	// Drain the probe pipeline, keeping each row's tuple and set attribute.
	var (
		tuples []*value.Tuple
		sets   []*value.Set
	)
	if err := p.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := p.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for {
		b, ok, nerr := p.L.NextBatch()
		if nerr != nil {
			return nerr
		}
		if !ok {
			break
		}
		c := b.Proj.Col(p.Attr)
		for _, i := range b.Sel {
			lt, terr := asTuple(b.Proj.Rows[i], "PNHL")
			if terr != nil {
				return terr
			}
			var as *value.Set
			if c != nil && c.Kind == col.Set {
				as = c.Sets[i]
			} else {
				av, ok := lt.Get(p.Attr)
				if !ok {
					return fmt.Errorf("exec: PNHL on missing attribute %q", p.Attr)
				}
				if as, ok = av.(*value.Set); !ok {
					return fmt.Errorf("exec: PNHL on non-set attribute %q", p.Attr)
				}
			}
			tuples = append(tuples, lt)
			sets = append(sets, as)
		}
	}

	// Evaluate element keys once per (row, element); the scalar PNHL
	// re-evaluates them per segment, which is identical for pure keys.
	fattr := fieldKeyAttr(p.ElemKey)
	elemKeys := make([][]value.Value, len(sets))
	for pi, as := range sets {
		ks := make([]value.Value, as.Len())
		for ei, elem := range as.Elems() {
			et, ok := elem.(*value.Tuple)
			if !ok {
				return fmt.Errorf("exec: PNHL element of %q is not a tuple", p.Attr)
			}
			if fattr != "" {
				if k, ok := et.Get(fattr); ok {
					ks[ei] = k
					continue
				}
			}
			k, kerr := p.ElemKey.Eval(ctx, elem)
			if kerr != nil {
				return kerr
			}
			ks[ei] = k
		}
		elemKeys[pi] = ks
	}

	// Evaluate every build key once; segments slice into this.
	var bt keyTable
	if !bt.appendFast(build, p.BuildKey) {
		bt.keys = bt.keys[:0]
		for _, r := range build {
			k, kerr := p.BuildKey.Eval(ctx, r)
			if kerr != nil {
				return kerr
			}
			bt.keys = append(bt.keys, k)
		}
	}
	buildKeys := bt.keys

	segment := p.BudgetRows
	if segment <= 0 || segment > len(build) {
		segment = len(build)
	}
	if segment == 0 {
		segment = 1
	}

	partial := make([]*value.Set, len(tuples))
	for i := range partial {
		partial[i] = value.EmptySet()
	}

	p.segmentsUsed = 0
	for lo := 0; lo < len(build) || lo == 0; lo += segment {
		hi := lo + segment
		if hi > len(build) {
			hi = len(build)
		}
		if lo >= hi && lo > 0 {
			break
		}
		p.segmentsUsed++
		// Build phase: a typed flat table over this segment's keys.
		seg := keyTable{keys: buildKeys[lo:hi]}
		seg.index()
		// Probe phase: each element's precomputed key against the segment.
		for pi := range tuples {
			for ei, elem := range sets[pi].Elems() {
				if ferr := seg.forEach(elemKeys[pi][ei], func(li int) error {
					bi := lo + li
					if p.Member != nil {
						m, merr := p.Member.Eval(ctx, elem, build[bi])
						if merr != nil {
							return merr
						}
						partial[pi].Add(m)
						return nil
					}
					brow, berr := asTuple(build[bi], "PNHL")
					if berr != nil {
						return berr
					}
					cat, cerr := elem.(*value.Tuple).Concat(brow)
					if cerr != nil {
						return cerr
					}
					partial[pi].Add(cat)
					return nil
				}); ferr != nil {
					return ferr
				}
			}
		}
		if len(build) == 0 {
			break
		}
	}

	// Merge phase: replace the attribute with the accumulated join result.
	p.out = p.out[:0]
	p.pos = 0
	for pi, lt := range tuples {
		p.out = append(p.out, lt.Except(value.NewTuple(p.Attr, partial[pi])))
	}
	return nil
}

// fieldKeyAttr returns the attribute a v.attr-shaped key scalar reads, or
// "" when the key has another shape.
func fieldKeyAttr(key Scalar) string {
	f, ok := key.Expr.(*adl.Field)
	if !ok || len(key.Vars) != 1 {
		return ""
	}
	v, ok := f.X.(*adl.Var)
	if !ok || v.Name != key.Vars[0] {
		return ""
	}
	return f.Name
}

// Next yields the next merged row.
func (p *VecPNHL) Next() (value.Value, bool, error) {
	if p.pos >= len(p.out) {
		return nil, false, nil
	}
	row := p.out[p.pos]
	p.pos++
	return row, true, nil
}

// Close releases buffers.
func (p *VecPNHL) Close() error { p.out = nil; return nil }

// CollectSet materializes the merged rows straight into a set.
func (p *VecPNHL) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := p.Open(ctx); err != nil {
		return nil, errors.Join(err, p.Close())
	}
	s := value.NewSetFromSlice(p.out)
	p.out = p.out[:0]
	if cerr := p.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}
