package exec

import (
	"repro/internal/adl"
	"repro/internal/col"
	"repro/internal/value"
)

// VecScan produces an extent in batches over a columnar projection. Against
// a ColumnarDB provider the projection is served snapshot-pinned and cached
// by the store; otherwise the extent is fetched with Table and decoded here.
// The selection vector is one reused buffer.
type VecScan struct {
	Extent string
	// Attrs are the attributes the pipeline above reads columnar; the
	// planner accumulates them while building the pipeline.
	Attrs []string
	// Batch is the number of rows per batch (plan.Config.BatchSize);
	// non-positive falls back to DefaultBatchSize.
	Batch int

	proj *col.Proj
	pos  int
	sel  []int32
}

// OpenVec obtains the projection.
func (s *VecScan) OpenVec(ctx *Ctx) error {
	if cdb, ok := ctx.DB.(ColumnarDB); ok {
		proj, err := cdb.ColProj(s.Extent, s.Attrs)
		if err != nil {
			return err
		}
		s.proj = proj
	} else {
		set, err := ctx.DB.Table(s.Extent)
		if err != nil {
			return err
		}
		s.proj = col.New(s.Extent, set.Elems(), s.Attrs)
	}
	s.pos = 0
	return nil
}

// NextBatch yields the next run of rows with a dense selection vector.
func (s *VecScan) NextBatch() (Batch, bool, error) {
	n := s.proj.Len() - s.pos
	if n <= 0 {
		return Batch{}, false, nil
	}
	size := s.Batch
	if size <= 0 {
		size = DefaultBatchSize
	}
	if n > size {
		n = size
	}
	if cap(s.sel) < n {
		s.sel = make([]int32, n)
	}
	sel := s.sel[:n]
	for i := range sel {
		sel[i] = int32(s.pos + i)
	}
	s.pos += n
	return Batch{Proj: s.proj, Sel: sel}, true, nil
}

// CloseVec drops the projection reference (the store keeps its own cache).
func (s *VecScan) CloseVec() error { s.proj = nil; return nil }

// projection exposes the opened columnar projection to the exchange, which
// claims row ranges from it directly instead of calling NextBatch.
func (s *VecScan) projection() *col.Proj { return s.proj }

// VecCmp is one compiled filter conjunct: column-versus-constant or
// column-versus-column comparison. The typed kernels run only when the
// column kinds line up exactly with the reference semantics (evalCmp); any
// other shape evaluates Pred row-wise through the interpreter, so results
// and errors match the scalar Filter bit for bit.
type VecCmp struct {
	Attr string
	Op   adl.CmpOp
	// Const is the right operand for column-vs-constant kernels; when nil,
	// RAttr names the right column.
	Const value.Value
	RAttr string
	// Pred is the conjunct's scalar form (over the filter's Var), the
	// row-wise fallback.
	Pred Scalar
}

// VecFilter narrows each batch's selection vector in place, one conjunct at
// a time — conjunct order matches the scalar And's left-to-right
// short-circuit, so rows are eliminated (and errors surface) in the same
// order as the reference arm.
type VecFilter struct {
	Src     VecOp
	Var     string
	Kernels []VecCmp

	ctx *Ctx
}

// OpenVec opens the source.
func (f *VecFilter) OpenVec(ctx *Ctx) error { f.ctx = ctx; return f.Src.OpenVec(ctx) }

// NextBatch yields the source's next batch with the selection narrowed.
func (f *VecFilter) NextBatch() (Batch, bool, error) {
	for {
		b, ok, err := f.Src.NextBatch()
		if err != nil || !ok {
			return Batch{}, false, err
		}
		for ki := range f.Kernels {
			if b.Sel, err = f.Kernels[ki].apply(f.ctx, b.Proj, b.Sel); err != nil {
				return Batch{}, false, err
			}
			if len(b.Sel) == 0 {
				break
			}
		}
		if len(b.Sel) > 0 {
			return b, true, nil
		}
	}
}

// CloseVec closes the source.
func (f *VecFilter) CloseVec() error { return f.Src.CloseVec() }

// apply narrows sel to the rows satisfying the conjunct, writing in place.
func (k *VecCmp) apply(ctx *Ctx, p *col.Proj, sel []int32) ([]int32, error) {
	c := p.Col(k.Attr)
	if c == nil || c.Kind == col.Mixed {
		return k.applyRows(ctx, p, sel)
	}
	if k.Const != nil {
		return k.applyConst(ctx, p, c, sel)
	}
	rc := p.Col(k.RAttr)
	if rc == nil || rc.Kind == col.Mixed {
		return k.applyRows(ctx, p, sel)
	}
	return k.applyCols(ctx, p, c, rc, sel)
}

// applyRows is the reference fallback: evaluate the conjunct on each
// selected row through the interpreter.
func (k *VecCmp) applyRows(ctx *Ctx, p *col.Proj, sel []int32) ([]int32, error) {
	out := sel[:0]
	for _, i := range sel {
		keep, err := k.Pred.Bool(ctx, p.Rows[i])
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, i)
		}
	}
	return out, nil
}

// constKind maps a constant to the column kind it compares against natively.
func constKind(v value.Value) col.Kind {
	switch v.Kind() {
	case value.KindBool:
		return col.Bool
	case value.KindInt:
		return col.Int
	case value.KindFloat:
		return col.Float
	case value.KindString:
		return col.Str
	case value.KindDate:
		return col.Date
	case value.KindOID:
		return col.OID
	}
	return col.Mixed
}

// ordered reports whether a column kind supports the ordered comparisons
// (mirrors eval's orderedKind: int, float, string, date).
func ordered(k col.Kind) bool {
	return k == col.Int || k == col.Float || k == col.Str || k == col.Date
}

// constBits extracts the int64 image of a constant for Ints-backed columns.
func constBits(v value.Value) int64 {
	switch cv := v.(type) {
	case value.Int:
		return int64(cv)
	case value.Date:
		return int64(cv)
	case value.OID:
		return int64(cv)
	case value.Bool:
		if cv {
			return 1
		}
		return 0
	}
	return 0
}

// applyConst runs the column-vs-constant kernel.
func (k *VecCmp) applyConst(ctx *Ctx, p *col.Proj, c *col.Col, sel []int32) ([]int32, error) {
	ck := constKind(k.Const)
	if ck != c.Kind {
		// Cross-kind: Eq is uniformly false, Ne uniformly true
		// (value.Equal never crosses kinds); ordered comparisons error in
		// the interpreter — fall back so the error text matches.
		switch k.Op {
		case adl.Eq:
			return sel[:0], nil
		case adl.Ne:
			return sel, nil
		}
		return k.applyRows(ctx, p, sel)
	}
	if k.Op != adl.Eq && k.Op != adl.Ne && !ordered(c.Kind) {
		return k.applyRows(ctx, p, sel)
	}
	out := sel[:0]
	switch c.Kind {
	case col.Int, col.Date, col.OID, col.Bool:
		cv := constBits(k.Const)
		for _, i := range sel {
			if cmpInt64(c.Ints[i], cv, k.Op) {
				out = append(out, i)
			}
		}
	case col.Float:
		cv := float64(k.Const.(value.Float))
		for _, i := range sel {
			if cmpFloat64(c.Floats[i], cv, k.Op) {
				out = append(out, i)
			}
		}
	case col.Str:
		cv := string(k.Const.(value.String))
		for _, i := range sel {
			if cmpString(c.Strs[i], cv, k.Op) {
				out = append(out, i)
			}
		}
	default:
		return k.applyRows(ctx, p, sel)
	}
	return out, nil
}

// applyCols runs the column-vs-column kernel.
func (k *VecCmp) applyCols(ctx *Ctx, p *col.Proj, l, r *col.Col, sel []int32) ([]int32, error) {
	if l.Kind != r.Kind {
		switch k.Op {
		case adl.Eq:
			return sel[:0], nil
		case adl.Ne:
			return sel, nil
		}
		return k.applyRows(ctx, p, sel)
	}
	if k.Op != adl.Eq && k.Op != adl.Ne && !ordered(l.Kind) {
		return k.applyRows(ctx, p, sel)
	}
	out := sel[:0]
	switch l.Kind {
	case col.Int, col.Date, col.OID, col.Bool:
		for _, i := range sel {
			if cmpInt64(l.Ints[i], r.Ints[i], k.Op) {
				out = append(out, i)
			}
		}
	case col.Float:
		for _, i := range sel {
			if cmpFloat64(l.Floats[i], r.Floats[i], k.Op) {
				out = append(out, i)
			}
		}
	case col.Str:
		for _, i := range sel {
			if cmpString(l.Strs[i], r.Strs[i], k.Op) {
				out = append(out, i)
			}
		}
	default:
		return k.applyRows(ctx, p, sel)
	}
	return out, nil
}

func cmpInt64(a, b int64, op adl.CmpOp) bool {
	switch op {
	case adl.Eq:
		return a == b
	case adl.Ne:
		return a != b
	case adl.Lt:
		return a < b
	case adl.Le:
		return a <= b
	case adl.Gt:
		return a > b
	case adl.Ge:
		return a >= b
	}
	return false
}

func cmpFloat64(a, b float64, op adl.CmpOp) bool {
	// Matches evalCmp: Eq/Ne via Go == (NaN ≠ NaN), ordered via
	// value.Compare's natural float order.
	switch op {
	case adl.Eq:
		return a == b
	case adl.Ne:
		return a != b
	case adl.Lt:
		return a < b
	case adl.Le:
		return a <= b
	case adl.Gt:
		return a > b
	case adl.Ge:
		return a >= b
	}
	return false
}

func cmpString(a, b string, op adl.CmpOp) bool {
	switch op {
	case adl.Eq:
		return a == b
	case adl.Ne:
		return a != b
	case adl.Lt:
		return a < b
	case adl.Le:
		return a <= b
	case adl.Gt:
		return a > b
	case adl.Ge:
		return a >= b
	}
	return false
}

// VecScanOf walks a batch pipeline to its scan leaf (used by the planner to
// accumulate required attributes while wrapping fragments).
func VecScanOf(op VecOp) *VecScan {
	for {
		switch v := op.(type) {
		case *VecScan:
			return v
		case *VecFilter:
			op = v.Src
		default:
			return nil
		}
	}
}
