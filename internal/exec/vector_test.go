package exec

import (
	"fmt"
	"testing"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/storage"
	"repro/internal/value"
)

// vecScan builds a batch scan over a table with a deliberately small batch
// size so multi-batch paths are exercised even on tiny tables.
func vecScan(table string, attrs []string, batch int) *VecScan {
	return &VecScan{Extent: table, Attrs: attrs, Batch: batch}
}

// fieldPred builds the conjunct x.attr <op> const and its compiled kernel.
func fieldKernel(attr string, op adl.CmpOp, c value.Value) VecCmp {
	pred := adl.CmpE(op, adl.Dot(adl.V("x"), attr), adl.C(c))
	return VecCmp{Attr: attr, Op: op, Const: c, Pred: NewScalar(pred, "x")}
}

// colKernel builds the conjunct x.l <op> x.r and its compiled kernel.
func colKernel(l string, op adl.CmpOp, r string) VecCmp {
	pred := adl.CmpE(op, adl.Dot(adl.V("x"), l), adl.Dot(adl.V("x"), r))
	return VecCmp{Attr: l, Op: op, RAttr: r, Pred: NewScalar(pred, "x")}
}

// TestVecFilterAgainstScalar checks every kernel op against the scalar
// Filter on randomized int tables, across batch sizes.
func TestVecFilterAgainstScalar(t *testing.T) {
	ops := []adl.CmpOp{adl.Eq, adl.Ne, adl.Lt, adl.Le, adl.Gt, adl.Ge}
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 30, 20)
		for _, op := range ops {
			for _, batch := range []int{1, 7, 0} { // 0 → DefaultBatchSize
				k := fieldKernel("b", op, value.Int(4))
				vf := &VecFilter{Src: vecScan("L", []string{"b"}, batch), Var: "x", Kernels: []VecCmp{k}}
				got := collect(t, &VecAdapter{Src: vf}, d)

				sf := &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: k.Pred}
				want := collect(t, sf, d)
				if !value.Equal(got, want) {
					t.Errorf("seed %d op %v batch %d: got %v want %v", seed, op, batch, got, want)
				}

				ck := colKernel("a", op, "b")
				vf2 := &VecFilter{Src: vecScan("L", []string{"a", "b"}, batch), Var: "x", Kernels: []VecCmp{ck}}
				got2 := collect(t, &VecAdapter{Src: vf2}, d)
				sf2 := &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: ck.Pred}
				want2 := collect(t, sf2, d)
				if !value.Equal(got2, want2) {
					t.Errorf("seed %d col-col op %v batch %d: got %v want %v", seed, op, batch, got2, want2)
				}
			}
		}
	}
}

// TestVecFilterConjunctChain checks multiple kernels narrow in sequence.
func TestVecFilterConjunctChain(t *testing.T) {
	d := db(5, 40, 10)
	ks := []VecCmp{
		fieldKernel("b", adl.Lt, value.Int(6)),
		fieldKernel("a", adl.Ge, value.Int(3)),
		fieldKernel("b", adl.Ne, value.Int(2)),
	}
	vf := &VecFilter{Src: vecScan("L", []string{"a", "b"}, 8), Var: "x", Kernels: ks}
	got := collect(t, &VecAdapter{Src: vf}, d)

	pred := adl.AndE(ks[0].Pred.Expr, ks[1].Pred.Expr, ks[2].Pred.Expr)
	sf := &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: NewScalar(pred, "x")}
	want := collect(t, sf, d)
	if !value.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// TestVecFilterCrossKindAndFallback checks the semantics corners: cross-kind
// Eq/Ne kernels, ordered comparisons that must fall back and error exactly
// like the interpreter, and Mixed columns going row-wise.
func TestVecFilterCrossKindAndFallback(t *testing.T) {
	d := db(2, 10, 5)

	// Cross-kind Eq on an int column: empty; Ne: everything.
	eq := fieldKernel("b", adl.Eq, value.String("x"))
	vf := &VecFilter{Src: vecScan("L", []string{"b"}, 4), Var: "x", Kernels: []VecCmp{eq}}
	if got := collect(t, &VecAdapter{Src: vf}, d); got.Len() != 0 {
		t.Errorf("cross-kind Eq kept %d rows", got.Len())
	}
	ne := fieldKernel("b", adl.Ne, value.String("x"))
	vf = &VecFilter{Src: vecScan("L", []string{"b"}, 4), Var: "x", Kernels: []VecCmp{ne}}
	all := collect(t, &Scan{Table: "L"}, d)
	if got := collect(t, &VecAdapter{Src: vf}, d); !value.Equal(got, all) {
		t.Errorf("cross-kind Ne dropped rows: %v", got)
	}

	// Cross-kind ordered comparison: the scalar arm errors; the vectorized
	// arm must produce the identical error.
	lt := fieldKernel("b", adl.Lt, value.String("x"))
	vf = &VecFilter{Src: vecScan("L", []string{"b"}, 4), Var: "x", Kernels: []VecCmp{lt}}
	_, vecErr := Collect(&VecAdapter{Src: vf}, &Ctx{DB: d})
	sf := &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: lt.Pred}
	_, scalErr := Collect(sf, &Ctx{DB: d})
	if vecErr == nil || scalErr == nil || vecErr.Error() != scalErr.Error() {
		t.Errorf("error mismatch: vec=%v scalar=%v", vecErr, scalErr)
	}

	// A column absent from the projection attrs is nil → row-wise fallback,
	// still correct.
	k := fieldKernel("b", adl.Lt, value.Int(4))
	vf = &VecFilter{Src: vecScan("L", nil, 4), Var: "x", Kernels: []VecCmp{k}}
	got := collect(t, &VecAdapter{Src: vf}, d)
	want := collect(t, &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: k.Pred}, d)
	if !value.Equal(got, want) {
		t.Errorf("fallback: got %v want %v", got, want)
	}
}

// TestVecAdapterProject checks the π applied during materialization.
func TestVecAdapterProject(t *testing.T) {
	d := db(3, 12, 5)
	va := &VecAdapter{Src: vecScan("L", []string{"b"}, 5), Project: []string{"b"}}
	got := collect(t, va, d)
	want := evalRef(t, adl.Proj(adl.T("L"), "b"), d)
	if !value.Equal(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

// TestVecSemiJoinAgainstScalar checks semi/anti against HashJoin, across
// batch sizes and a filtered build side.
func TestVecSemiJoinAgainstScalar(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		d := db(seed, 25, 18)
		for _, anti := range []bool{false, true} {
			kind := adl.Semi
			if anti {
				kind = adl.Anti
			}
			lkey := NewScalar(adl.Dot(adl.V("x"), "b"), "x")
			rkey := NewScalar(adl.Dot(adl.V("y"), "d"), "y")
			want := collect(t, &HashJoin{Kind: kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
				LVar: "x", RVar: "y", LKey: lkey, RKey: rkey}, d)

			vj := &VecSemiJoin{Anti: anti, L: vecScan("L", []string{"b"}, 6), R: &Scan{Table: "R"},
				LAttr: "b", LKey: lkey, RKey: rkey}
			got := collect(t, &VecAdapter{Src: vj}, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d anti=%v: got %v want %v", seed, anti, got, want)
			}
		}
	}
}

// TestVecSemiJoinKeyShapes drives the non-int table paths: string keys, a
// cross-kind build side, and an empty build side.
func TestVecSemiJoinKeyShapes(t *testing.T) {
	l := value.EmptySet()
	for i := 0; i < 6; i++ {
		l.Add(value.NewTuple("a", value.Int(int64(i)), "s", value.String(fmt.Sprintf("k%d", i%3))))
	}
	r := value.EmptySet()
	r.Add(value.NewTuple("t", value.String("k1")))
	r.Add(value.NewTuple("t", value.String("k2")))
	mixed := value.EmptySet()
	mixed.Add(value.NewTuple("t", value.String("k1")))
	mixed.Add(value.NewTuple("t", value.Int(0)))
	empty := value.EmptySet()
	d := storage.NewMemDB("L", l, "R", r, "M", mixed, "E", empty)

	lkeyS := NewScalar(adl.Dot(adl.V("x"), "s"), "x")
	lkeyA := NewScalar(adl.Dot(adl.V("x"), "a"), "x")
	rkey := NewScalar(adl.Dot(adl.V("y"), "t"), "y")

	cases := []struct {
		name  string
		lattr string
		lkey  Scalar
		table string
	}{
		{"string-keys", "s", lkeyS, "R"},
		{"mixed-build", "s", lkeyS, "M"},
		{"cross-kind", "a", lkeyA, "R"},
		{"empty-build", "s", lkeyS, "E"},
	}
	for _, tc := range cases {
		for _, anti := range []bool{false, true} {
			kind := adl.Semi
			if anti {
				kind = adl.Anti
			}
			want := collect(t, &HashJoin{Kind: kind, L: &Scan{Table: "L"}, R: &Scan{Table: tc.table},
				LVar: "x", RVar: "y", LKey: tc.lkey, RKey: rkey}, d)
			vj := &VecSemiJoin{Anti: anti, L: vecScan("L", []string{tc.lattr}, 2), R: &Scan{Table: tc.table},
				LAttr: tc.lattr, LKey: tc.lkey, RKey: rkey}
			got := collect(t, &VecAdapter{Src: vj}, d)
			if !value.Equal(got, want) {
				t.Errorf("%s anti=%v: got %v want %v", tc.name, anti, got, want)
			}
		}
	}
}

// TestVecInnerJoinAgainstScalar checks the inner join across batch sizes
// and both the typed and generic table paths.
func TestVecInnerJoinAgainstScalar(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		d := db(seed, 22, 16)
		lkey := NewScalar(adl.Dot(adl.V("x"), "b"), "x")
		rkey := NewScalar(adl.Dot(adl.V("y"), "d"), "y")
		want := collect(t, &HashJoin{Kind: adl.Inner, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
			LVar: "x", RVar: "y", LKey: lkey, RKey: rkey}, d)
		for _, batch := range []int{3, 0} {
			vj := &VecInnerJoin{L: vecScan("L", []string{"b"}, batch), R: &Scan{Table: "R"},
				LAttr: "b", LKey: lkey, RKey: rkey}
			got := collect(t, vj, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d batch %d: got %v want %v", seed, batch, got, want)
			}
		}
	}
}

// TestVecNLJoinAgainstScalar checks the batch nested-loop reference for
// inner, semi and anti kinds with an arbitrary (non-equi) predicate.
func TestVecNLJoinAgainstScalar(t *testing.T) {
	d := db(9, 15, 12)
	pred := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "d")), "x", "y")
	for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti} {
		want := collect(t, &NLJoin{Kind: kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
			LVar: "x", RVar: "y", Pred: pred}, d)
		vj := &VecNLJoin{Kind: kind, L: vecScan("L", []string{"b"}, 4), R: &Scan{Table: "R"}, Pred: pred}
		got := collect(t, vj, d)
		if !value.Equal(got, want) {
			t.Errorf("kind %v: got %v want %v", kind, got, want)
		}
	}
}

// TestVecSetProbeJoinGeneric drives the generic (hash/Equal) probe path:
// sets of plain ints probed with an atomic int build key.
func TestVecSetProbeJoinGeneric(t *testing.T) {
	owners := value.EmptySet()
	for i := 0; i < 8; i++ {
		refs := value.EmptySet()
		for j := 0; j <= i%4; j++ {
			refs.Add(value.Int(int64(i + j)))
		}
		owners.Add(value.NewTuple("a", value.Int(int64(i)), "refs", refs))
	}
	items := value.EmptySet()
	for i := 0; i < 6; i++ {
		items.Add(value.NewTuple("k", value.Int(int64(2*i)), "w", value.Int(int64(i))))
	}
	d := storage.NewMemDB("O", owners, "I", items)

	rkey := NewScalar(adl.Dot(adl.V("y"), "k"), "y")
	for _, anti := range []bool{false, true} {
		kind := adl.Semi
		if anti {
			kind = adl.Anti
		}
		want := collect(t, &SetProbeJoin{Kind: kind, L: &Scan{Table: "O"}, R: &Scan{Table: "I"},
			Attr: "refs", RKey: rkey}, d)
		vj := &VecSetProbeJoin{Anti: anti, L: vecScan("O", []string{"refs"}, 3), R: &Scan{Table: "I"},
			Attr: "refs", RKey: rkey}
		got := collect(t, &VecAdapter{Src: vj}, d)
		if !value.Equal(got, want) {
			t.Errorf("anti=%v: got %v want %v", anti, got, want)
		}
	}
}

// TestVecSetProbeJoinHits builds a database where the unary-tuple fast path
// gets genuine hits and misses, and cross-checks the scalar result.
func TestVecSetProbeJoinHits(t *testing.T) {
	// Owners hold sets of ⟨k:int⟩ refs; ITEMS is the flat table keyed by k.
	// Items carry even keys only, so odd owners miss and even owners hit.
	owners := value.EmptySet()
	for i := 0; i < 8; i++ {
		parts := value.EmptySet()
		parts.Add(value.NewTuple("k", value.Int(int64(i))))
		parts.Add(value.NewTuple("k", value.Int(int64(i+4))))
		owners.Add(value.NewTuple("a", value.Int(int64(i)), "parts", parts))
	}
	items := value.EmptySet()
	for i := 0; i < 6; i++ {
		items.Add(value.NewTuple("k", value.Int(int64(2*i)), "w", value.Int(int64(i))))
	}
	d := storage.NewMemDB("O", owners, "I", items)

	rkey := NewScalar(adl.SubT(adl.V("y"), "k"), "y")
	for _, anti := range []bool{false, true} {
		kind := adl.Semi
		if anti {
			kind = adl.Anti
		}
		want := collect(t, &SetProbeJoin{Kind: kind, L: &Scan{Table: "O"}, R: &Scan{Table: "I"},
			Attr: "parts", RKey: rkey}, d)
		vj := &VecSetProbeJoin{Anti: anti, L: vecScan("O", []string{"parts"}, 3), R: &Scan{Table: "I"},
			Attr: "parts", RKey: rkey}
		got := collect(t, &VecAdapter{Src: vj}, d)
		if !value.Equal(got, want) {
			t.Errorf("anti=%v: got %v want %v", anti, got, want)
		}
		if anti && got.Len() == 0 {
			t.Errorf("anti arm matched every owner — fast path suspiciously total")
		}
		if !anti && got.Len() == 0 {
			t.Errorf("semi arm matched nothing — fast path suspiciously empty")
		}
	}

	// Error parity: probing a non-set attribute.
	vj := &VecSetProbeJoin{L: vecScan("O", []string{"a"}, 3), R: &Scan{Table: "I"},
		Attr: "a", RKey: rkey}
	_, gerr := Collect(&VecAdapter{Src: vj}, &Ctx{DB: d})
	_, werr := Collect(&SetProbeJoin{Kind: adl.Semi, L: &Scan{Table: "O"}, R: &Scan{Table: "I"},
		Attr: "a", RKey: rkey}, &Ctx{DB: d})
	if gerr == nil || werr == nil || gerr.Error() != werr.Error() {
		t.Errorf("non-set error mismatch: vec=%v scalar=%v", gerr, werr)
	}
}

// rowFacade drives op through the plain Open/Next/Close contract. Collect
// prefers the bulk SetCollector path and drain short-circuits VecAdapter,
// so without this loop the row-at-a-time facades would go untested.
func rowFacade(t *testing.T, op Operator, d eval.DB) *value.Set {
	t.Helper()
	ctx := &Ctx{DB: d}
	if err := op.Open(ctx); err != nil {
		t.Fatalf("Open: %v", err)
	}
	got := value.EmptySet()
	for {
		v, ok, err := op.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			break
		}
		got.Add(v)
	}
	if err := op.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return got
}

// TestRowFacadesMatchBulkCollect checks that each vectorized operator's
// Operator facade yields exactly what its bulk CollectSet path yields.
func TestRowFacadesMatchBulkCollect(t *testing.T) {
	d := db(11, 20, 14)
	lkey := NewScalar(adl.Dot(adl.V("x"), "b"), "x")
	rkey := NewScalar(adl.Dot(adl.V("y"), "d"), "y")
	nlPred := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "d")), "x", "y")
	makers := map[string]func() Operator{
		"adapter": func() Operator {
			vf := &VecFilter{Src: vecScan("L", []string{"a", "b"}, 6), Var: "x",
				Kernels: []VecCmp{fieldKernel("b", adl.Ge, value.Int(2))}}
			return &VecAdapter{Src: vf, Project: []string{"b"}}
		},
		"inner": func() Operator {
			return &VecInnerJoin{L: vecScan("L", []string{"b"}, 5), R: &Scan{Table: "R"},
				LAttr: "b", LKey: lkey, RKey: rkey}
		},
		"nljoin": func() Operator {
			return &VecNLJoin{Kind: adl.Inner, L: vecScan("L", []string{"b"}, 5),
				R: &Scan{Table: "R"}, Pred: nlPred}
		},
	}
	for name, mk := range makers {
		want := collect(t, mk(), d)
		got := rowFacade(t, mk(), d)
		if !value.Equal(got, want) {
			t.Errorf("%s: row facade %v, bulk %v", name, got, want)
		}
	}
}

// TestVecFilterFloatAndStringKernels checks the float and string compare
// kernels (const and column-column) against the scalar Filter for every op.
func TestVecFilterFloatAndStringKernels(t *testing.T) {
	set := value.EmptySet()
	names := []string{"ash", "birch", "cedar", "fir", "oak"}
	for i := 0; i < 25; i++ {
		set.Add(value.NewTuple(
			"f", value.Float(float64(i%7))/2,
			"g", value.Float(float64(i%5)),
			"s", value.String(names[i%5]),
			"u", value.String(names[(i*3)%5])))
	}
	d := storage.NewMemDB("S", set)
	for _, op := range []adl.CmpOp{adl.Eq, adl.Ne, adl.Lt, adl.Le, adl.Gt, adl.Ge} {
		for _, k := range []VecCmp{
			fieldKernel("f", op, value.Float(1.5)),
			fieldKernel("s", op, value.String("cedar")),
			colKernel("f", op, "g"),
			colKernel("s", op, "u"),
		} {
			attrs := []string{k.Attr}
			if k.RAttr != "" {
				attrs = append(attrs, k.RAttr)
			}
			vf := &VecFilter{Src: vecScan("S", attrs, 4), Var: "x", Kernels: []VecCmp{k}}
			got := collect(t, &VecAdapter{Src: vf}, d)
			sf := &Filter{Child: &Scan{Table: "S"}, Var: "x", Pred: k.Pred}
			want := collect(t, sf, d)
			if !value.Equal(got, want) {
				t.Errorf("op %v attr %s/%s: got %v want %v", op, k.Attr, k.RAttr, got, want)
			}
		}
	}
}

// TestVecScanOfWalksToTheLeaf checks the planner's pipeline-leaf walk.
func TestVecScanOfWalksToTheLeaf(t *testing.T) {
	scan := vecScan("L", []string{"b"}, 4)
	chain := &VecFilter{Src: &VecFilter{Src: scan}}
	if got := VecScanOf(chain); got != scan {
		t.Errorf("VecScanOf(filter chain) = %v, want the scan leaf", got)
	}
	if got := VecScanOf(&VecSemiJoin{}); got != nil {
		t.Errorf("VecScanOf(join) = %v, want nil", got)
	}
}
