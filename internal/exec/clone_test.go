package exec

import (
	"sync"
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

func cloneFixtureTree() Operator {
	return &HashJoin{
		Kind: adl.Semi,
		L: &Filter{
			Child: &Scan{Table: "L"},
			Var:   "x",
			Pred:  NewScalar(adl.EqE(adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("x"), "b")), "x"),
		},
		R:    &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
	}
}

func TestCloneTreeIsDeepAndEquivalent(t *testing.T) {
	l, r, _ := randomTables(7, 64, 32)
	db := storage.NewMemDB("L", l, "R", r)

	orig := cloneFixtureTree()
	want, err := Collect(orig, &Ctx{DB: db})
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	// The original has now been Opened and drained: its unexported iterator
	// state is dirty. A clone taken from it must still run fresh.
	cl := CloneTree(orig)
	if cl == orig {
		t.Fatalf("CloneTree returned the same root")
	}
	cj, oj := cl.(*HashJoin), orig.(*HashJoin)
	if cj.L == oj.L || cj.R == oj.R {
		t.Fatalf("children must be cloned, not shared")
	}
	if cj.L.(*Filter).Child == oj.L.(*Filter).Child {
		t.Fatalf("grandchildren must be cloned, not shared")
	}
	got, err := Collect(cl, &Ctx{DB: db})
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if got.Len() != want.Len() || !got.SubsetOf(want) {
		t.Fatalf("clone returned %d rows, original %d", got.Len(), want.Len())
	}
}

// TestCloneTreeConcurrentExecutions is the plan-cache usage pattern: one
// cached tree, many concurrent executions, each over its own clone.
func TestCloneTreeConcurrentExecutions(t *testing.T) {
	l, r, _ := randomTables(7, 64, 32)
	db := storage.NewMemDB("L", l, "R", r)
	cached := cloneFixtureTree()
	want, err := Collect(CloneTree(cached), &Ctx{DB: db})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Collect(CloneTree(cached), &Ctx{DB: db})
			if err != nil {
				errs <- err
				return
			}
			if got.Len() != want.Len() || !got.SubsetOf(want) {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent clone execution diverged" }

func TestCloneTreeNil(t *testing.T) {
	if CloneTree(nil) != nil {
		t.Fatalf("CloneTree(nil) must be nil")
	}
	if CloneVecTree(nil) != nil {
		t.Fatalf("CloneVecTree(nil) must be nil")
	}
}

// TestCloneTreeVecPipeline checks cloning recurses through VecOp fields:
// the adapter, the batch filter chain and the scan must all be fresh, and
// the clone of a drained pipeline must still run.
func TestCloneTreeVecPipeline(t *testing.T) {
	l, r, _ := randomTables(3, 48, 24)
	db := storage.NewMemDB("L", l, "R", r)
	k := fieldKernel("b", adl.Lt, value.Int(5))
	orig := &VecAdapter{Src: &VecSemiJoin{
		L:     &VecFilter{Src: &VecScan{Extent: "L", Attrs: []string{"b"}, Batch: 8}, Var: "x", Kernels: []VecCmp{k}},
		R:     &Scan{Table: "R"},
		LAttr: "b",
		LKey:  NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey:  NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
	}}
	want, err := Collect(orig, &Ctx{DB: db})
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	cl := CloneTree(orig).(*VecAdapter)
	if cl == orig || cl.Src == orig.Src {
		t.Fatalf("vec pipeline must be cloned, not shared")
	}
	cj, oj := cl.Src.(*VecSemiJoin), orig.Src.(*VecSemiJoin)
	if cj.L == oj.L || cj.R == oj.R {
		t.Fatalf("vec join inputs must be cloned, not shared")
	}
	if cj.L.(*VecFilter).Src == oj.L.(*VecFilter).Src {
		t.Fatalf("vec scan must be cloned, not shared")
	}
	got, err := Collect(cl, &Ctx{DB: db})
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("clone returned %d rows, original %d", got.Len(), want.Len())
	}
}

// BenchmarkCloneTree measures the per-execution cost of cloning a cached
// plan — the hot edge of the serving path — over a representative scalar
// tree and a batch pipeline.
func BenchmarkCloneTree(b *testing.B) {
	b.Run("scalar", func(b *testing.B) {
		tree := cloneFixtureTree()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if CloneTree(tree) == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		k := fieldKernel("b", adl.Lt, value.Int(5))
		tree := Operator(&VecAdapter{Src: &VecSemiJoin{
			L:     &VecFilter{Src: &VecScan{Extent: "L", Attrs: []string{"b"}}, Var: "x", Kernels: []VecCmp{k}},
			R:     &Scan{Table: "R"},
			LAttr: "b",
			LKey:  NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
			RKey:  NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		}})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if CloneTree(tree) == nil {
				b.Fatal("nil clone")
			}
		}
	})
}
