package exec

import (
	"fmt"
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

// exchangeOf converts a scan+filter pipeline and fails the test when the
// shape is not convertible.
func exchangeOf(t *testing.T, op VecOp, workers int) *VecExchange {
	t.Helper()
	ex, ok := Exchange(op, workers)
	if !ok {
		t.Fatalf("Exchange rejected a scan+filter pipeline: %T", op)
	}
	return ex
}

// TestVecExchangeAgainstSerial checks the morsel-driven exchange produces
// exactly the serial pipeline's rows across worker counts (including the
// single-worker degeneracy) and morsel sizes.
func TestVecExchangeAgainstSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 150, 10)
		ks := []VecCmp{
			fieldKernel("b", adl.Lt, value.Int(6)),
			fieldKernel("a", adl.Ge, value.Int(3)),
		}
		serial := &VecFilter{Src: vecScan("L", []string{"a", "b"}, 8), Var: "x", Kernels: ks}
		want := collect(t, &VecAdapter{Src: serial}, d)
		for _, workers := range []int{1, 2, 5} {
			for _, morsel := range []int{1, 7, 0} { // 0 → the scan's batch size
				pipe := &VecFilter{Src: vecScan("L", []string{"a", "b"}, 8), Var: "x", Kernels: ks}
				ex := exchangeOf(t, pipe, workers)
				ex.Morsel = morsel
				got := collect(t, &VecAdapter{Src: ex}, d)
				if !value.Equal(got, want) {
					t.Errorf("seed %d workers %d morsel %d: got %v want %v",
						seed, workers, morsel, got, want)
				}
			}
		}
	}
}

// TestExchangeShape pins the pipeline walk: kernels from nested filters
// flatten in application order (inner first), the morsel defaults to the
// scan's batch size, and non-scan-leaf pipelines are rejected.
func TestExchangeShape(t *testing.T) {
	k1 := fieldKernel("b", adl.Lt, value.Int(6))
	k2 := fieldKernel("a", adl.Ge, value.Int(3))
	inner := &VecFilter{Src: vecScan("L", []string{"a", "b"}, 16), Var: "x", Kernels: []VecCmp{k1}}
	outer := &VecFilter{Src: inner, Var: "x", Kernels: []VecCmp{k2}}
	ex := exchangeOf(t, outer, 2)
	if len(ex.Kernels) != 2 || ex.Kernels[0].Attr != "b" || ex.Kernels[1].Attr != "a" {
		t.Errorf("kernels out of application order: %+v", ex.Kernels)
	}
	if ex.Morsel != 16 {
		t.Errorf("morsel = %d, want the scan batch 16", ex.Morsel)
	}
	join := &VecSemiJoin{L: vecScan("L", nil, 0), R: &Scan{Table: "R"},
		LAttr: "b", LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
	if _, ok := Exchange(join, 2); ok {
		t.Error("Exchange must reject a join-rooted pipeline")
	}
}

// TestVecExchangeErrorAndReopen surfaces a kernel error raised on a worker
// (identical to the serial pipeline's error) and reruns the same instance.
func TestVecExchangeErrorAndReopen(t *testing.T) {
	d := db(5, 120, 10)

	// Cross-kind ordered comparison: the interpreter errors row-wise.
	bad := fieldKernel("b", adl.Lt, value.String("x"))
	pipe := &VecFilter{Src: vecScan("L", []string{"b"}, 8), Var: "x", Kernels: []VecCmp{bad}}
	_, serialErr := Collect(&VecAdapter{Src: pipe}, &Ctx{DB: d})
	ex := exchangeOf(t, &VecFilter{Src: vecScan("L", []string{"b"}, 8), Var: "x",
		Kernels: []VecCmp{bad}}, 3)
	_, exErr := Collect(&VecAdapter{Src: ex}, &Ctx{DB: d})
	if serialErr == nil || exErr == nil || exErr.Error() != serialErr.Error() {
		t.Errorf("error mismatch: exchange=%v serial=%v", exErr, serialErr)
	}

	good := fieldKernel("b", adl.Lt, value.Int(5))
	ex = exchangeOf(t, &VecFilter{Src: vecScan("L", []string{"b"}, 8), Var: "x",
		Kernels: []VecCmp{good}}, 3)
	want := collect(t, &VecAdapter{Src: ex}, d)
	for i := 0; i < 3; i++ {
		if got := collect(t, &VecAdapter{Src: ex}, d); !value.Equal(got, want) {
			t.Fatalf("reopen %d: got %v want %v", i, got, want)
		}
	}
}

// TestVecExchangeEarlyClose abandons the stream after one batch: the
// workers must unwind through the abort channel and the completion
// goroutine must still close the source (a hang fails by timeout, a leaked
// projection by -race).
func TestVecExchangeEarlyClose(t *testing.T) {
	d := db(7, 5000, 10)
	ctx := &Ctx{DB: d}
	ex := exchangeOf(t, vecScan("L", []string{"b"}, 4), 4)
	if err := ex.OpenVec(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ex.NextBatch(); err != nil || !ok {
		t.Fatalf("NextBatch: ok=%v err=%v", ok, err)
	}
	if err := ex.CloseVec(); err != nil {
		t.Fatal(err)
	}
	if err := ex.CloseVec(); err != nil { // CloseVec is idempotent
		t.Fatal(err)
	}
}

// partJoin builds the batch partitioned join over L ⋈ R on b = d.
func partJoin(kind adl.JoinKind, batch, parts int, res *Scalar) *VecPartitionedHashJoin {
	return &VecPartitionedHashJoin{Kind: kind,
		L: vecScan("L", []string{"b"}, batch), R: &Scan{Table: "R"},
		LAttr:    "b",
		LKey:     NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey:     NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		Residual: res, Partitions: parts}
}

// TestVecPartitionedHashJoinAgainstScalar cross-validates every supported
// kind, with and without a residual, against the serial HashJoin across
// partition counts (including the single-partition degeneracy) and batch
// sizes.
func TestVecPartitionedHashJoinAgainstScalar(t *testing.T) {
	residual := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "c")), "x", "y")
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 60, 40)
		for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.Outer} {
			for _, res := range []*Scalar{nil, &residual} {
				want := collect(t, &HashJoin{Kind: kind,
					L: &Scan{Table: "L"}, R: &Scan{Table: "R"}, LVar: "x", RVar: "y",
					LKey:     NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
					RKey:     NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
					Residual: res}, d)
				for _, parts := range []int{1, 4} {
					for _, batch := range []int{3, 0} {
						got := collect(t, partJoin(kind, batch, parts, res), d)
						if !value.Equal(got, want) {
							t.Errorf("seed %d %v parts %d batch %d residual=%v: got %v want %v",
								seed, kind, parts, batch, res != nil, got, want)
						}
					}
				}
			}
		}
	}
}

// TestVecPartitionedHashJoinKeyShapes drives the routing modes off the int
// fast path: string keys, a mixed-kind build side (generic routing), a
// cross-kind probe, and an empty build side (nil typed tables in every
// partition).
func TestVecPartitionedHashJoinKeyShapes(t *testing.T) {
	l := value.EmptySet()
	for i := 0; i < 12; i++ {
		l.Add(value.NewTuple("a", value.Int(int64(i)), "s", value.String(fmt.Sprintf("k%d", i%5))))
	}
	r := value.EmptySet()
	r.Add(value.NewTuple("t", value.String("k1"), "c", value.Int(1)))
	r.Add(value.NewTuple("t", value.String("k3"), "c", value.Int(2)))
	mixed := value.EmptySet()
	mixed.Add(value.NewTuple("t", value.String("k1"), "c", value.Int(1)))
	mixed.Add(value.NewTuple("t", value.Int(0), "c", value.Int(2)))
	d := storage.NewMemDB("L", l, "R", r, "M", mixed, "E", value.EmptySet())

	lkeyS := NewScalar(adl.Dot(adl.V("x"), "s"), "x")
	lkeyA := NewScalar(adl.Dot(adl.V("x"), "a"), "x")
	rkey := NewScalar(adl.Dot(adl.V("y"), "t"), "y")
	cases := []struct {
		name  string
		lattr string
		lkey  Scalar
		table string
	}{
		{"string-keys", "s", lkeyS, "R"},
		{"mixed-build", "s", lkeyS, "M"},
		{"cross-kind", "a", lkeyA, "R"},
		{"empty-build", "s", lkeyS, "E"},
	}
	for _, tc := range cases {
		for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.Outer} {
			want := collect(t, &HashJoin{Kind: kind, L: &Scan{Table: "L"}, R: &Scan{Table: tc.table},
				LVar: "x", RVar: "y", LKey: tc.lkey, RKey: rkey}, d)
			vj := &VecPartitionedHashJoin{Kind: kind,
				L: vecScan("L", []string{tc.lattr}, 3), R: &Scan{Table: tc.table},
				LAttr: tc.lattr, LKey: tc.lkey, RKey: rkey, Partitions: 3}
			got := collect(t, vj, d)
			if !value.Equal(got, want) {
				t.Errorf("%s %v: got %v want %v", tc.name, kind, got, want)
			}
		}
	}
}

// TestVecPartitionedHashJoinErrors pins the unsupported-kind error and key
// errors surfacing from workers without a hang.
func TestVecPartitionedHashJoinErrors(t *testing.T) {
	d := db(9, 20, 10)
	nj := partJoin(adl.NestJ, 0, 2, nil)
	if _, err := Collect(nj, &Ctx{DB: d}); err == nil {
		t.Error("nestjoin kind must be rejected")
	}
	bad := &VecPartitionedHashJoin{Kind: adl.Inner,
		L: vecScan("L", nil, 4), R: &Scan{Table: "R"},
		LAttr: "nope",
		LKey:  NewScalar(adl.Dot(adl.V("x"), "nope"), "x"),
		RKey:  NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 3}
	if _, err := Collect(bad, &Ctx{DB: d}); err == nil {
		t.Error("probe key error must surface")
	}
}

// TestVecHashGroupJoinAgainstScalar cross-validates the batch nestjoin
// against the scalar HashJoin grouping, including the right-tuple function
// and a residual.
func TestVecHashGroupJoinAgainstScalar(t *testing.T) {
	rfun := NewScalar(adl.Dot(adl.V("y"), "c"), "x", "y")
	residual := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "c")), "x", "y")
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 20, 15)
		for _, cfg := range []struct {
			name string
			rfun *Scalar
			res  *Scalar
		}{
			{"plain", nil, nil},
			{"rfun", &rfun, nil},
			{"residual", nil, &residual},
		} {
			want := collect(t, &HashJoin{Kind: adl.NestJ,
				L: &Scan{Table: "L"}, R: &Scan{Table: "R"}, LVar: "x", RVar: "y",
				LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
				RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
				As:   "ys", RFun: cfg.rfun, Residual: cfg.res}, d)
			for _, batch := range []int{3, 0} {
				vj := &VecHashGroupJoin{L: vecScan("L", []string{"b"}, batch), R: &Scan{Table: "R"},
					LAttr: "b",
					LKey:  NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
					RKey:  NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
					As:    "ys", RFun: cfg.rfun, Residual: cfg.res}
				got := collect(t, vj, d)
				if !value.Equal(got, want) {
					t.Errorf("seed %d %s batch %d: got %v want %v", seed, cfg.name, batch, got, want)
				}
			}
		}
	}
}

// TestVecSetGroupJoinAgainstScalar cross-validates the batch set-probe
// nestjoin against the scalar SetProbeJoin grouping, on both the whole-
// element key shape and the unary-subtuple fast path, with and without the
// right-tuple function.
func TestVecSetGroupJoinAgainstScalar(t *testing.T) {
	rfun := NewScalar(adl.Dot(adl.V("y"), "c"), "x", "y")
	wholeKey := adl.Tup("k", adl.Dot(adl.V("y"), "d"), "w", adl.Dot(adl.V("y"), "c"))
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 15, 12)
		for _, rf := range []*Scalar{nil, &rfun} {
			want := collect(t, &SetProbeJoin{Kind: adl.NestJ,
				L: &Scan{Table: "N"}, R: &Scan{Table: "R"},
				Attr: "parts", RKey: NewScalar(wholeKey, "y"), As: "ys", RFun: rf}, d)
			vj := &VecSetGroupJoin{L: vecScan("N", []string{"parts"}, 4), R: &Scan{Table: "R"},
				Attr: "parts", RKey: NewScalar(wholeKey, "y"), As: "ys", RFun: rf}
			got := collect(t, vj, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d whole-element rfun=%v: got %v want %v", seed, rf != nil, got, want)
			}
		}
	}

	// The unary-subtuple fast path needs ⟨k⟩ refs (TestVecSetProbeJoinHits
	// shapes): even item keys so groups are non-trivially empty and full.
	owners := value.EmptySet()
	for i := 0; i < 8; i++ {
		parts := value.EmptySet()
		parts.Add(value.NewTuple("k", value.Int(int64(i))))
		parts.Add(value.NewTuple("k", value.Int(int64(i+4))))
		owners.Add(value.NewTuple("a", value.Int(int64(i)), "parts", parts))
	}
	items := value.EmptySet()
	for i := 0; i < 6; i++ {
		items.Add(value.NewTuple("k", value.Int(int64(2*i)), "w", value.Int(int64(i))))
	}
	d := storage.NewMemDB("O", owners, "I", items)
	subKey := NewScalar(adl.SubT(adl.V("y"), "k"), "y")
	rfunW := NewScalar(adl.Dot(adl.V("y"), "w"), "x", "y")
	for _, rf := range []*Scalar{nil, &rfunW} {
		want := collect(t, &SetProbeJoin{Kind: adl.NestJ,
			L: &Scan{Table: "O"}, R: &Scan{Table: "I"},
			Attr: "parts", RKey: subKey, As: "ys", RFun: rf}, d)
		vj := &VecSetGroupJoin{L: vecScan("O", []string{"parts"}, 3), R: &Scan{Table: "I"},
			Attr: "parts", RKey: subKey, As: "ys", RFun: rf}
		got := collect(t, vj, d)
		if !value.Equal(got, want) {
			t.Errorf("subtuple rfun=%v: got %v want %v", rf != nil, got, want)
		}
	}
}

// TestVecPNHLAgainstScalar cross-validates the batch PNHL against the
// scalar one across budgets, pins the segment count, and covers the member
// function.
func TestVecPNHLAgainstScalar(t *testing.T) {
	member := NewScalar(adl.Dot(adl.V("y"), "c"), "e", "y")
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 15, 12)
		for _, m := range []*Scalar{nil, &member} {
			ref := &PNHL{L: &Scan{Table: "N"}, R: &Scan{Table: "R"}, Attr: "parts",
				ElemKey:  NewScalar(adl.Dot(adl.V("e"), "k"), "e"),
				BuildKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
				Member:   m}
			want := collect(t, ref, d)
			for _, budget := range []int{0, 1, 3, 5, 100} {
				vp := &VecPNHL{L: vecScan("N", []string{"parts"}, 4), R: &Scan{Table: "R"},
					Attr:       "parts",
					ElemKey:    NewScalar(adl.Dot(adl.V("e"), "k"), "e"),
					BuildKey:   NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
					BudgetRows: budget, Member: m}
				got := collect(t, vp, d)
				if !value.Equal(got, want) {
					t.Errorf("seed %d budget %d member=%v: got %v want %v",
						seed, budget, m != nil, got, want)
				}
				if budget == 3 && vp.Segments() < 2 {
					t.Errorf("budget 3 over 12 build rows should need ≥2 segments, used %d",
						vp.Segments())
				}
			}
		}
	}
}
