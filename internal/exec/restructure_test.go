package exec

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/storage"
	"repro/internal/value"
)

func TestRenameOp(t *testing.T) {
	d := db(21, 6, 4)
	want := evalRef(t, adl.Rho(adl.T("L"), "a", "k"), d)
	op := &RenameOp{Child: &Scan{Table: "L"}, From: "a", To: "k"}
	if got := collect(t, op, d); !value.Equal(got, want) {
		t.Errorf("RenameOp = %v, want %v", got, want)
	}
	bad := &RenameOp{Child: &Scan{Table: "L"}, From: "zz", To: "k"}
	if _, err := Collect(bad, &Ctx{DB: d}); err == nil {
		t.Errorf("missing source attribute must fail")
	}
	clash := &RenameOp{Child: &Scan{Table: "L"}, From: "a", To: "b"}
	if _, err := Collect(clash, &Ctx{DB: d}); err == nil {
		t.Errorf("clashing target attribute must fail")
	}
}

func TestDivideOp(t *testing.T) {
	// Which a-values are paired with ALL b-values of R?
	l := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(10)),
		value.NewTuple("a", value.Int(1), "b", value.Int(20)),
		value.NewTuple("a", value.Int(2), "b", value.Int(10)),
		value.NewTuple("a", value.Int(3), "b", value.Int(10)),
		value.NewTuple("a", value.Int(3), "b", value.Int(20)),
		value.NewTuple("a", value.Int(3), "b", value.Int(30)),
	)
	r := value.NewSet(
		value.NewTuple("b", value.Int(10)),
		value.NewTuple("b", value.Int(20)),
	)
	d := storage.NewMemDB("L", l, "R", r)
	want := evalRef(t, adl.DivE(adl.T("L"), adl.T("R")), d)
	op := &DivideOp{L: &Scan{Table: "L"}, R: &Scan{Table: "R"}}
	got := collect(t, op, d)
	if !value.Equal(got, want) {
		t.Errorf("DivideOp = %v, want %v", got, want)
	}
	if !value.Equal(got, value.NewSet(
		value.NewTuple("a", value.Int(1)), value.NewTuple("a", value.Int(3)))) {
		t.Errorf("division content = %v", got)
	}
	// Empty dividend.
	d2 := storage.NewMemDB("L", value.EmptySet(), "R", r)
	op2 := &DivideOp{L: &Scan{Table: "L"}, R: &Scan{Table: "R"}}
	if got := collect(t, op2, d2); got.Len() != 0 {
		t.Errorf("∅ ÷ R = %v", got)
	}
}

func TestLetOpBindsOnce(t *testing.T) {
	d := db(23, 5, 5)
	// Let v = R in filter L by (x.b, x.b) membership against v's d values.
	inner := &Filter{Child: &Scan{Table: "L"}, Var: "x",
		Pred: NewScalar(adl.Ex("y", adl.V("v"),
			adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "b"))), "x")}
	op := &LetOp{Var: "v", Val: adl.T("R"), Child: inner}
	want := evalRef(t, adl.LetE("v", adl.T("R"),
		adl.Sel("x", adl.Ex("y", adl.V("v"),
			adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "b"))), adl.T("L"))), d)
	if got := collect(t, op, d); !value.Equal(got, want) {
		t.Errorf("LetOp = %v, want %v", got, want)
	}
}
