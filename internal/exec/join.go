package exec

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/value"
)

// NLJoin is the tuple-oriented nested-loop join family — the baseline
// execution model the paper's rewrites escape from. It supports every join
// kind (inner, semi, anti, nestjoin, outer) with an arbitrary predicate.
type NLJoin struct {
	Kind       adl.JoinKind
	L, R       Operator
	LVar, RVar string
	Pred       Scalar
	As         string // nestjoin result attribute
	RFun       *Scalar

	ctx   *Ctx
	right []value.Value
	out   []value.Value
	pos   int
}

// Open materializes the right operand and computes the join eagerly (the
// result is bounded by the inputs; eager evaluation keeps Next trivial and
// the timing honest for benchmarks).
func (j *NLJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	var err error
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	lrows, err := drain(j.L, ctx)
	if err != nil {
		return err
	}
	j.out = j.out[:0]
	j.pos = 0
	nullPad := outerNullPad(j.Kind, j.right)
	for _, lrow := range lrows {
		lt, err := asTuple(lrow, "join")
		if err != nil {
			return err
		}
		matched := false
		var nest *value.Set
		if j.Kind == adl.NestJ {
			nest = value.EmptySet()
		}
		for _, rrow := range j.right {
			ok, err := j.Pred.Bool(ctx, lrow, rrow)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			matched = true
			switch j.Kind {
			case adl.Inner, adl.Outer:
				rt, err := asTuple(rrow, "join")
				if err != nil {
					return err
				}
				cat, err := lt.Concat(rt)
				if err != nil {
					return err
				}
				j.out = append(j.out, cat)
			case adl.NestJ:
				member := rrow
				if j.RFun != nil {
					member, err = j.RFun.Eval(ctx, lrow, rrow)
					if err != nil {
						return err
					}
				}
				nest.Add(member)
			}
			if j.Kind == adl.Semi {
				break
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched {
				j.out = append(j.out, lrow)
			}
		case adl.Anti:
			if !matched {
				j.out = append(j.out, lrow)
			}
		case adl.NestJ:
			j.out = append(j.out, lt.With(j.As, nest))
		case adl.Outer:
			if !matched {
				cat, err := lt.Concat(nullPad)
				if err != nil {
					return err
				}
				j.out = append(j.out, cat)
			}
		}
	}
	return nil
}

// Next yields the next joined row.
func (j *NLJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *NLJoin) Close() error {
	j.right, j.out = nil, nil
	return nil
}

// outerNullPad builds the null tuple over the right schema for outer joins.
func outerNullPad(kind adl.JoinKind, right []value.Value) *value.Tuple {
	pad := value.EmptyTuple()
	if kind != adl.Outer || len(right) == 0 {
		return pad
	}
	if rt, ok := right[0].(*value.Tuple); ok {
		for _, name := range rt.Names() {
			pad = pad.With(name, value.Null{})
		}
	}
	return pad
}

// HashJoin is the set-oriented join family on equi-keys: it builds a hash
// table on the right operand keyed by RKey and probes it with LKey,
// applying an optional residual predicate. All join kinds are supported;
// for the nestjoin this is the paper's "common join implementation methods
// like the hash join can be adapted" (§6.1).
type HashJoin struct {
	Kind       adl.JoinKind
	L, R       Operator
	LVar, RVar string
	LKey, RKey Scalar
	// Residual is an optional extra predicate over both variables.
	Residual *Scalar
	As       string
	RFun     *Scalar

	ctx   *Ctx
	table map[uint64][]int // hash(key) → indices into right
	rkeys []value.Value    // right rows' evaluated keys
	right []value.Value    // retained for matching and outer-join null padding
	out   []value.Value
	pos   int
}

// Open builds and probes. The hash table stores row indices with the keys in
// a flat side slice — one map and no per-bucket key storage — the same
// layout the partitioned variant uses per partition.
func (j *HashJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	var err error
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	j.table = make(map[uint64][]int, len(j.right))
	j.rkeys = make([]value.Value, len(j.right))
	for i, rrow := range j.right {
		k, err := j.RKey.Eval(ctx, rrow)
		if err != nil {
			return err
		}
		j.rkeys[i] = k
		h := value.Hash(k)
		j.table[h] = append(j.table[h], i)
	}
	lrows, err := drain(j.L, ctx)
	if err != nil {
		return err
	}
	j.out = j.out[:0]
	j.pos = 0
	nullPad := outerNullPad(j.Kind, j.right)
	for _, lrow := range lrows {
		lt, err := asTuple(lrow, "hash join")
		if err != nil {
			return err
		}
		lk, err := j.LKey.Eval(ctx, lrow)
		if err != nil {
			return err
		}
		h := value.Hash(lk)
		matched := false
		var nest *value.Set
		if j.Kind == adl.NestJ {
			nest = value.EmptySet()
		}
		for _, ri := range j.table[h] {
			if !value.Equal(j.rkeys[ri], lk) {
				continue
			}
			rrow := j.right[ri]
			if j.Residual != nil {
				ok, err := j.Residual.Bool(ctx, lrow, rrow)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			matched = true
			switch j.Kind {
			case adl.Inner, adl.Outer:
				rt, err := asTuple(rrow, "hash join")
				if err != nil {
					return err
				}
				cat, err := lt.Concat(rt)
				if err != nil {
					return err
				}
				j.out = append(j.out, cat)
			case adl.NestJ:
				member := rrow
				if j.RFun != nil {
					member, err = j.RFun.Eval(ctx, lrow, rrow)
					if err != nil {
						return err
					}
				}
				nest.Add(member)
			}
			if j.Kind == adl.Semi {
				break
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched {
				j.out = append(j.out, lrow)
			}
		case adl.Anti:
			if !matched {
				j.out = append(j.out, lrow)
			}
		case adl.NestJ:
			j.out = append(j.out, lt.With(j.As, nest))
		case adl.Outer:
			if !matched {
				cat, err := lt.Concat(nullPad)
				if err != nil {
					return err
				}
				j.out = append(j.out, cat)
			}
		}
	}
	return nil
}

// Next yields the next joined row.
func (j *HashJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *HashJoin) Close() error {
	j.table, j.rkeys, j.right, j.out = nil, nil, nil, nil
	return nil
}

// SetProbeJoin is the set-oriented implementation of joins whose predicate
// is a membership test against a set-valued attribute of the left operand:
//
//	L ⋉/▷/⊣ (x,y : key(y) ∈ x.attr) R
//
// — exactly the predicate shape the paper's Example Queries 5 and 6 reach
// after rewriting (p[pid] ∈ s.parts). The right operand is hashed once by
// key; each left tuple probes with the elements of its set-valued attribute.
// This is the single-segment core of the PNHL idea: the flat table is the
// build input, the nested operand probes.
type SetProbeJoin struct {
	Kind adl.JoinKind
	L, R Operator
	// Attr is the set-valued attribute of left tuples whose elements are
	// probe keys.
	Attr string
	// RKey computes the build key of right rows (e.g. p[pid]).
	RKey Scalar
	As   string
	RFun *Scalar

	ctx *Ctx
	out []value.Value
	pos int
}

// Open builds and probes.
func (j *SetProbeJoin) Open(ctx *Ctx) error {
	j.ctx = ctx
	rrows, err := drain(j.R, ctx)
	if err != nil {
		return err
	}
	table := make(map[uint64][]int, len(rrows))
	keys := make([]value.Value, len(rrows))
	for i, rrow := range rrows {
		k, err := j.RKey.Eval(ctx, rrow)
		if err != nil {
			return err
		}
		keys[i] = k
		h := value.Hash(k)
		table[h] = append(table[h], i)
	}
	lrows, err := drain(j.L, ctx)
	if err != nil {
		return err
	}
	j.out = j.out[:0]
	j.pos = 0
	for _, lrow := range lrows {
		lt, err := asTuple(lrow, "set-probe join")
		if err != nil {
			return err
		}
		av, ok := lt.Get(j.Attr)
		if !ok {
			return fmt.Errorf("exec: set-probe join on missing attribute %q", j.Attr)
		}
		as, ok := av.(*value.Set)
		if !ok {
			return fmt.Errorf("exec: set-probe join on non-set attribute %q", j.Attr)
		}
		matched := false
		var nest *value.Set
		if j.Kind == adl.NestJ {
			nest = value.EmptySet()
		}
	probe:
		for _, elem := range as.Elems() {
			h := value.Hash(elem)
			for _, ri := range table[h] {
				if !value.Equal(keys[ri], elem) {
					continue
				}
				matched = true
				switch j.Kind {
				case adl.Semi:
					break probe
				case adl.NestJ:
					member := rrows[ri]
					if j.RFun != nil {
						member, err = j.RFun.Eval(ctx, lrow, rrows[ri])
						if err != nil {
							return err
						}
					}
					nest.Add(member)
				}
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched {
				j.out = append(j.out, lrow)
			}
		case adl.Anti:
			if !matched {
				j.out = append(j.out, lrow)
			}
		case adl.NestJ:
			j.out = append(j.out, lt.With(j.As, nest))
		default:
			return fmt.Errorf("exec: set-probe join does not support kind %v", j.Kind)
		}
	}
	return nil
}

// Next yields the next row.
func (j *SetProbeJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *SetProbeJoin) Close() error { j.out = nil; return nil }
