// Index access paths: physical operators that read base extents through
// secondary indexes instead of full scans. IndexScan is the leaf — an
// equality or range probe with constant bounds — and IndexNLJoin is the
// index-nested-loop join: the outer operand streams and every row probes the
// inner extent's index, the classic Selinger-era alternative the cost model
// weighs against the hash and sort-merge family.
package exec

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/value"
)

// IndexedDB is the optional store capability the index operators require:
// secondary-index probes by equality and by range. storage.Store implements
// it; plans containing index operators fail to Open against databases that
// do not.
type IndexedDB interface {
	// IndexLookup returns the extent's objects whose indexed attribute
	// equals key.
	IndexLookup(extent, attr string, key value.Value) ([]value.Value, error)
	// IndexRange returns the objects whose indexed attribute falls within
	// [lo, hi]; a nil bound is unbounded, the Incl flags select closed ends.
	// It requires an ordered index.
	IndexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool) ([]value.Value, error)
}

// indexedDB asserts the context's database supports index probes.
func indexedDB(ctx *Ctx, op string) (IndexedDB, error) {
	idb, ok := ctx.DB.(IndexedDB)
	if !ok {
		return nil, fmt.Errorf("exec: %s requires an index-capable store, got %T", op, ctx.DB)
	}
	return idb, nil
}

// IndexScan reads one extent through a secondary index on Attr: either the
// equality probe Eq (any index kind) or the range [Lo, Hi] (ordered indexes
// only). The bound scalars are constants — they close over no operator row —
// and are evaluated once at Open against the plan's outer environment.
type IndexScan struct {
	Table, Attr string
	// Eq is the equality key; nil selects the range form.
	Eq *Scalar
	// Lo and Hi are the optional range bounds (nil = unbounded).
	Lo, Hi         *Scalar
	LoIncl, HiIncl bool

	rows []value.Value
	pos  int
}

// Open evaluates the bounds and runs the probe.
func (s *IndexScan) Open(ctx *Ctx) error {
	idb, err := indexedDB(ctx, "index scan")
	if err != nil {
		return err
	}
	bound := func(b *Scalar) (value.Value, error) {
		if b == nil {
			return nil, nil
		}
		return b.Eval(ctx)
	}
	if s.Eq != nil {
		key, err := s.Eq.Eval(ctx)
		if err != nil {
			return err
		}
		s.rows, err = idb.IndexLookup(s.Table, s.Attr, key)
		if err != nil {
			return err
		}
	} else {
		lo, err := bound(s.Lo)
		if err != nil {
			return err
		}
		hi, err := bound(s.Hi)
		if err != nil {
			return err
		}
		s.rows, err = idb.IndexRange(s.Table, s.Attr, lo, hi, s.LoIncl, s.HiIncl)
		if err != nil {
			return err
		}
	}
	s.pos = 0
	return nil
}

// Next yields the next matching object.
func (s *IndexScan) Next() (value.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close releases the buffer.
func (s *IndexScan) Close() error { s.rows = nil; return nil }

// IndexNLJoin is the index-nested-loop join: the outer operand L streams,
// and each outer row's key LKey probes the secondary index on Table.Attr —
// the unfiltered inner extent — in place of building a hash table over a
// full inner scan. An optional Residual (the remaining join conjuncts)
// filters the candidate matches. The planner emits it only when the inner
// side of the logical join is the bare extent, so the index, which covers
// every object of the extent, cannot resurrect rows a pushed-down selection
// should have removed. Kinds: inner, semi, anti, and nestjoin (outer joins
// need the inner schema for null padding, which an index probe cannot
// provide without a scan).
type IndexNLJoin struct {
	Kind adl.JoinKind
	L    Operator
	// Table and Attr name the inner extent and its indexed attribute.
	Table, Attr string
	LVar, RVar  string
	// LKey computes the probe key from an outer row.
	LKey Scalar
	// Residual is the conjunction of the remaining join conjuncts, over
	// (LVar, RVar).
	Residual *Scalar
	As       string
	RFun     *Scalar

	out []value.Value
	pos int
}

// Open drains the outer side and probes per row.
func (j *IndexNLJoin) Open(ctx *Ctx) error {
	idb, err := indexedDB(ctx, "index-nested-loop join")
	if err != nil {
		return err
	}
	if j.Kind == adl.Outer {
		return fmt.Errorf("exec: index-nested-loop join does not support kind %v", j.Kind)
	}
	lrows, err := drain(j.L, ctx)
	if err != nil {
		return err
	}
	j.out = j.out[:0]
	j.pos = 0
	for _, lrow := range lrows {
		lt, err := asTuple(lrow, "index join")
		if err != nil {
			return err
		}
		lk, err := j.LKey.Eval(ctx, lrow)
		if err != nil {
			return err
		}
		matches, err := idb.IndexLookup(j.Table, j.Attr, lk)
		if err != nil {
			return err
		}
		matched := false
		var nest *value.Set
		if j.Kind == adl.NestJ {
			nest = value.EmptySet()
		}
		for _, rrow := range matches {
			if j.Residual != nil {
				ok, err := j.Residual.Bool(ctx, lrow, rrow)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			matched = true
			switch j.Kind {
			case adl.Inner:
				rt, err := asTuple(rrow, "index join")
				if err != nil {
					return err
				}
				cat, err := lt.Concat(rt)
				if err != nil {
					return err
				}
				j.out = append(j.out, cat)
			case adl.NestJ:
				member := rrow
				if j.RFun != nil {
					member, err = j.RFun.Eval(ctx, lrow, rrow)
					if err != nil {
						return err
					}
				}
				nest.Add(member)
			}
			if j.Kind == adl.Semi {
				break
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched {
				j.out = append(j.out, lrow)
			}
		case adl.Anti:
			if !matched {
				j.out = append(j.out, lrow)
			}
		case adl.NestJ:
			j.out = append(j.out, lt.With(j.As, nest))
		}
	}
	return nil
}

// Next yields the next joined row.
func (j *IndexNLJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *IndexNLJoin) Close() error { j.out = nil; return nil }
