package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/storage"
	"repro/internal/value"
)

// randomTables builds two random flat tables L(a, b) and R(c, d) with
// controlled key overlap, plus a nested table N(a, parts:{(k, w)}).
func randomTables(seed int64, nl, nr int) (l, r, nested *value.Set) {
	rng := rand.New(rand.NewSource(seed))
	l = value.EmptySet()
	for i := 0; i < nl; i++ {
		l.Add(value.NewTuple("a", value.Int(int64(i)), "b", value.Int(int64(rng.Intn(8)))))
	}
	r = value.EmptySet()
	for i := 0; i < nr; i++ {
		r.Add(value.NewTuple("c", value.Int(int64(rng.Intn(16))), "d", value.Int(int64(rng.Intn(8)))))
	}
	nested = value.EmptySet()
	for i := 0; i < nl; i++ {
		inner := value.EmptySet()
		for j := 0; j < rng.Intn(4); j++ {
			inner.Add(value.NewTuple("k", value.Int(int64(rng.Intn(8))), "w", value.Int(int64(j))))
		}
		nested.Add(value.NewTuple("a", value.Int(int64(i)), "parts", inner))
	}
	return l, r, nested
}

func db(seed int64, nl, nr int) *storage.MemDB {
	l, r, n := randomTables(seed, nl, nr)
	return storage.NewMemDB("L", l, "R", r, "N", n)
}

func collect(t *testing.T, op Operator, d eval.DB) *value.Set {
	t.Helper()
	got, err := Collect(op, &Ctx{DB: d})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return got
}

func evalRef(t *testing.T, e adl.Expr, d eval.DB) *value.Set {
	t.Helper()
	got, err := eval.EvalSet(e, nil, d)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return got
}

// joinPred is b = d, the equi-join predicate used throughout.
func joinPred() adl.Expr {
	return adl.EqE(adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "d"))
}

// logicalJoin builds the corresponding logical join for the oracle.
func logicalJoin(kind adl.JoinKind, as string, rfun adl.Expr) *adl.Join {
	return &adl.Join{Kind: kind, LVar: "x", RVar: "y", On: joinPred(),
		As: as, RFun: rfun, L: adl.T("L"), R: adl.T("R")}
}

// TestJoinOperatorsAgainstOracle cross-validates NLJoin, HashJoin and
// SortMergeJoin for every applicable kind against the reference interpreter
// on randomized inputs.
func TestJoinOperatorsAgainstOracle(t *testing.T) {
	kinds := []struct {
		kind adl.JoinKind
		as   string
	}{
		{adl.Inner, ""}, {adl.Semi, ""}, {adl.Anti, ""}, {adl.NestJ, "ys"}, {adl.Outer, ""},
	}
	for seed := int64(1); seed <= 4; seed++ {
		d := db(seed, 20, 15)
		for _, k := range kinds {
			want := evalRef(t, logicalJoin(k.kind, k.as, nil), d)

			nl := &NLJoin{Kind: k.kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
				LVar: "x", RVar: "y", Pred: NewScalar(joinPred(), "x", "y"), As: k.as}
			if got := collect(t, nl, d); !value.Equal(got, want) {
				t.Errorf("seed %d NLJoin %v: got %v want %v", seed, k.kind, got, want)
			}

			hj := &HashJoin{Kind: k.kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
				LVar: "x", RVar: "y",
				LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
				RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), As: k.as}
			if got := collect(t, hj, d); !value.Equal(got, want) {
				t.Errorf("seed %d HashJoin %v: got %v want %v", seed, k.kind, got, want)
			}

			if k.kind == adl.Inner || k.kind == adl.NestJ {
				sm := &SortMergeJoin{Kind: k.kind, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
					LVar: "x", RVar: "y",
					LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
					RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), As: k.as}
				if got := collect(t, sm, d); !value.Equal(got, want) {
					t.Errorf("seed %d SortMergeJoin %v: got %v want %v", seed, k.kind, got, want)
				}
			}
		}
	}
}

// TestHashJoinResidual checks residual predicate handling.
func TestHashJoinResidual(t *testing.T) {
	d := db(7, 25, 20)
	pred := adl.AndE(joinPred(), adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "c")))
	logical := &adl.Join{Kind: adl.Inner, LVar: "x", RVar: "y", On: pred, L: adl.T("L"), R: adl.T("R")}
	want := evalRef(t, logical, d)
	res := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "c")), "x", "y")
	hj := &HashJoin{Kind: adl.Inner, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey:     NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey:     NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		Residual: &res}
	if got := collect(t, hj, d); !value.Equal(got, want) {
		t.Errorf("residual hash join: got %v want %v", got, want)
	}
}

// TestNestJoinRFun checks the extended nestjoin's right-tuple function.
func TestNestJoinRFun(t *testing.T) {
	d := db(9, 15, 12)
	rfunExpr := adl.Dot(adl.V("y"), "c")
	want := evalRef(t, logicalJoin(adl.NestJ, "cs", rfunExpr), d)
	rfun := NewScalar(rfunExpr, "x", "y")
	hj := &HashJoin{Kind: adl.NestJ, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		As:   "cs", RFun: &rfun}
	if got := collect(t, hj, d); !value.Equal(got, want) {
		t.Errorf("nestjoin rfun: got %v want %v", got, want)
	}
}

// TestSetProbeJoin validates the membership-probe join against the logical
// semantics of key(y) ∈ x.parts for semi, anti and nest kinds.
func TestSetProbeJoin(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 12, 10)
		// Logical: N ⋉(x,y: (k = y.d) ∈ α-elems of x.parts) ... expressed
		// directly: the probe element is the unary tuple (k = y.d, w = ...)?
		// Elements of parts are (k, w) pairs; use key k only via RKey
		// producing a (k, w) shape is wrong — so probe on whole elements:
		// build R rows keyed by (k=d, w=0..3) cannot match generally.
		// Instead use membership of (k=y.d, w=y.c) — construct matching
		// tuples so whole-element equality is exercised.
		rk := adl.Tup("k", adl.Dot(adl.V("y"), "d"), "w", adl.Dot(adl.V("y"), "c"))
		on := adl.CmpE(adl.In, rk, adl.Dot(adl.V("x"), "parts"))
		for _, kind := range []adl.JoinKind{adl.Semi, adl.Anti, adl.NestJ} {
			as := ""
			if kind == adl.NestJ {
				as = "ys"
			}
			logical := &adl.Join{Kind: kind, LVar: "x", RVar: "y", On: on, As: as,
				L: adl.T("N"), R: adl.T("R")}
			want := evalRef(t, logical, d)
			sp := &SetProbeJoin{Kind: kind, L: &Scan{Table: "N"}, R: &Scan{Table: "R"},
				Attr: "parts", RKey: NewScalar(rk, "y"), As: as}
			if got := collect(t, sp, d); !value.Equal(got, want) {
				t.Errorf("seed %d SetProbeJoin %v: got %v want %v", seed, kind, got, want)
			}
		}
	}
}

// TestUnnestNestRoundTrip validates μ and ν operators against the logical
// ones.
func TestUnnestNestRoundTrip(t *testing.T) {
	d := db(11, 18, 5)
	wantU := evalRef(t, adl.Mu("parts", adl.T("N")), d)
	u := &UnnestOp{Child: &Scan{Table: "N"}, Attr: "parts"}
	if got := collect(t, u, d); !value.Equal(got, wantU) {
		t.Errorf("UnnestOp: got %v want %v", got, wantU)
	}
	wantN := evalRef(t, adl.Nu(adl.Mu("parts", adl.T("N")), "parts", "k", "w"), d)
	nst := &NestOp{Child: &UnnestOp{Child: &Scan{Table: "N"}, Attr: "parts"},
		Attrs: []string{"k", "w"}, As: "parts"}
	if got := collect(t, nst, d); !value.Equal(got, wantN) {
		t.Errorf("NestOp: got %v want %v", got, wantN)
	}
}

// TestFilterMapProjectFlatten validates the row operators.
func TestFilterMapProjectFlatten(t *testing.T) {
	d := db(13, 20, 8)
	pred := adl.CmpE(adl.Gt, adl.Dot(adl.V("x"), "b"), adl.CInt(3))
	want := evalRef(t, adl.Sel("x", pred, adl.T("L")), d)
	f := &Filter{Child: &Scan{Table: "L"}, Var: "x", Pred: NewScalar(pred, "x")}
	if got := collect(t, f, d); !value.Equal(got, want) {
		t.Errorf("Filter: got %v want %v", got, want)
	}

	body := adl.Tup("bb", adl.Dot(adl.V("x"), "b"))
	wantM := evalRef(t, adl.MapE("x", body, adl.T("L")), d)
	m := &MapOp{Child: &Scan{Table: "L"}, Var: "x", Body: NewScalar(body, "x")}
	if got := collect(t, m, d); !value.Equal(got, wantM) {
		t.Errorf("MapOp: got %v want %v", got, wantM)
	}

	wantP := evalRef(t, adl.Proj(adl.T("L"), "b"), d)
	p := &ProjectOp{Child: &Scan{Table: "L"}, Attrs: []string{"b"}}
	if got := collect(t, p, d); !value.Equal(got, wantP) {
		t.Errorf("ProjectOp: got %v want %v", got, wantP)
	}

	wantF := evalRef(t, adl.Flat(adl.MapE("x", adl.Dot(adl.V("x"), "parts"), adl.T("N"))), d)
	fl := &FlattenOp{Child: &MapOp{Child: &Scan{Table: "N"}, Var: "x",
		Body: NewScalar(adl.Dot(adl.V("x"), "parts"), "x")}}
	if got := collect(t, fl, d); !value.Equal(got, wantF) {
		t.Errorf("FlattenOp: got %v want %v", got, wantF)
	}
}

// TestAssembly validates the pointer-based materialize against the logical
// operator.
func TestAssembly(t *testing.T) {
	d := storage.NewMemDB("S", value.NewSet(
		value.NewTuple("sid", value.OID(1), "ref", value.OID(10),
			"refs", value.NewSet(value.NewTuple("pid", value.OID(10)), value.NewTuple("pid", value.OID(11)))),
	))
	d.Objs[10] = value.NewTuple("pid", value.OID(10), "v", value.Int(1))
	d.Objs[11] = value.NewTuple("pid", value.OID(11), "v", value.Int(2))

	want := evalRef(t, adl.Mat(adl.T("S"), "ref", "obj"), d)
	a := &Assembly{Child: &Scan{Table: "S"}, Attr: "ref", As: "obj"}
	if got := collect(t, a, d); !value.Equal(got, want) {
		t.Errorf("Assembly scalar: got %v want %v", got, want)
	}

	want2 := evalRef(t, adl.Mat(adl.T("S"), "refs", "objs"), d)
	a2 := &Assembly{Child: &Scan{Table: "S"}, Attr: "refs", As: "objs"}
	if got := collect(t, a2, d); !value.Equal(got, want2) {
		t.Errorf("Assembly set: got %v want %v", got, want2)
	}

	// Dangling pointers surface as errors.
	d.Objs = map[value.OID]*value.Tuple{}
	a3 := &Assembly{Child: &Scan{Table: "S"}, Attr: "ref", As: "obj"}
	if _, err := Collect(a3, &Ctx{DB: d}); err == nil {
		t.Errorf("Assembly must fail on dangling oid")
	}
}

// TestPNHL validates the partitioned algorithm against its logical
// specification — the nested natural join of the set-valued attribute with
// the flat table — across memory budgets, including budgets smaller than
// the build table.
func TestPNHL(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d := db(seed, 15, 12)
		// Logical spec: α[z : z except (parts = {e ∘ y | e ∈ z.parts,
		// y ∈ R, e.k = y.d})](N).
		spec := adl.MapE("z",
			adl.Exc(adl.V("z"), "parts",
				adl.Flat(adl.MapE("e",
					adl.MapE("y2", adl.Cat(adl.V("e"), adl.V("y2")),
						adl.Sel("y", adl.EqE(adl.Dot(adl.V("e"), "k"), adl.Dot(adl.V("y"), "d")), adl.T("R"))),
					adl.Dot(adl.V("z"), "parts")))),
			adl.T("N"))
		want := evalRef(t, spec, d)
		for _, budget := range []int{0, 1, 3, 5, 100} {
			p := &PNHL{
				L: &Scan{Table: "N"}, R: &Scan{Table: "R"},
				Attr:       "parts",
				ElemKey:    NewScalar(adl.Dot(adl.V("e"), "k"), "e"),
				BuildKey:   NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
				BudgetRows: budget,
			}
			got := collect(t, p, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d budget %d: PNHL got %v want %v", seed, budget, got, want)
			}
			if budget == 3 && p.Segments() < 2 {
				t.Errorf("budget 3 over 12 build rows should need ≥2 segments, used %d", p.Segments())
			}
		}
	}
}

// TestPNHLEmptyInputs covers the degenerate cases.
func TestPNHLEmptyInputs(t *testing.T) {
	d := storage.NewMemDB(
		"N", value.NewSet(value.NewTuple("a", value.Int(1), "parts", value.EmptySet())),
		"R", value.EmptySet(),
	)
	p := &PNHL{L: &Scan{Table: "N"}, R: &Scan{Table: "R"}, Attr: "parts",
		ElemKey:  NewScalar(adl.Dot(adl.V("e"), "k"), "e"),
		BuildKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), BudgetRows: 2}
	got := collect(t, p, d)
	if got.Len() != 1 {
		t.Fatalf("empty-build PNHL = %v", got)
	}
	tup := got.Elems()[0].(*value.Tuple)
	if set := tup.MustGet("parts").(*value.Set); set.Len() != 0 {
		t.Errorf("empty join result expected, got %v", set)
	}
}

// TestOperatorsReopen ensures plans can be executed repeatedly.
func TestOperatorsReopen(t *testing.T) {
	d := db(17, 10, 8)
	hj := &HashJoin{Kind: adl.Inner, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
	first := collect(t, hj, d)
	second := collect(t, hj, d)
	if !value.Equal(first, second) {
		t.Errorf("re-open changed results")
	}
}

// TestScalarArity pins the scalar arity check.
func TestScalarArity(t *testing.T) {
	s := NewScalar(adl.CBool(true), "x")
	if _, err := s.Eval(&Ctx{DB: storage.NewMemDB()}); err == nil {
		t.Errorf("arity mismatch must fail")
	}
}

// TestCollectDeduplicates: set semantics at the collection boundary.
func TestCollectDeduplicates(t *testing.T) {
	dup := value.NewSet(
		value.NewTuple("a", value.Int(1), "b", value.Int(1)),
		value.NewTuple("a", value.Int(2), "b", value.Int(1)),
	)
	d := storage.NewMemDB("T", dup)
	p := &ProjectOp{Child: &Scan{Table: "T"}, Attrs: []string{"b"}}
	got := collect(t, p, d)
	if got.Len() != 1 {
		t.Errorf("projection duplicates must collapse, got %v", got)
	}
}

// TestScanErrors covers missing tables and attribute errors.
func TestScanErrors(t *testing.T) {
	d := storage.NewMemDB()
	if _, err := Collect(&Scan{Table: "NOPE"}, &Ctx{DB: d}); err == nil {
		t.Errorf("unknown table must fail")
	}
	d2 := db(19, 3, 3)
	u := &UnnestOp{Child: &Scan{Table: "L"}, Attr: "zzz"}
	if _, err := Collect(u, &Ctx{DB: d2}); err == nil {
		t.Errorf("unnest of missing attribute must fail")
	}
}

var _ = fmt.Sprintf // keep fmt for debug helpers
