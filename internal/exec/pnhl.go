package exec

import (
	"fmt"

	"repro/internal/value"
)

// PNHL implements the Partitioned Nested-Hashed-Loops algorithm of [DeLa92]
// (§6.2) for the nested natural join of a set-valued attribute with a base
// table:
//
//	σ-free form:  α[z : z except (attr = z.attr ⋈(e,y : key(e)=key(y)) R)](L)
//
// Each left tuple's set-valued attribute is joined element-wise with the
// flat build table R; the matching pairs e ∘ y replace the attribute. Unlike
// a relational hash join, only the flat table can be the build input: the
// algorithm builds a hash table for those segments of R that fit into main
// memory (BudgetRows rows per segment) and probes the left operand against
// each segment, producing partial results that are merged — per left tuple —
// in the second phase.
//
// Compared to the unnest–join–nest alternative, PNHL never restructures: the
// nested representation flows through unchanged, dangling elements and empty
// sets survive, and the left operand is scanned once per segment rather than
// being unnested and regrouped.
type PNHL struct {
	L Operator // operand with the set-valued attribute (probe side)
	R Operator // flat build table
	// Attr is the set-valued attribute of left tuples; its elements must be
	// tuples.
	Attr string
	// ElemKey computes the join key of an attribute element.
	ElemKey Scalar
	// BuildKey computes the join key of a build-table row.
	BuildKey Scalar
	// BudgetRows is the memory budget: build rows hashed per segment. Zero
	// means unlimited (single segment).
	BudgetRows int
	// Member, if non-nil, computes the joined member from (element, build
	// row) instead of the default concatenation — e.g. the build row alone,
	// which turns PNHL into reference materialization.
	Member *Scalar

	// segmentsUsed counts the build segments the last Open needed. It is
	// per-run state (unexported so CloneTree zeroes it per clone, caught by
	// the clonesafety analyzer); read it through Segments.
	segmentsUsed int

	out []value.Value
	pos int
}

// Segments reports how many build segments the last Open needed.
func (p *PNHL) Segments() int { return p.segmentsUsed }

// Open runs both phases eagerly.
func (p *PNHL) Open(ctx *Ctx) error {
	build, err := drain(p.R, ctx)
	if err != nil {
		return err
	}
	probe, err := drain(p.L, ctx)
	if err != nil {
		return err
	}
	segment := p.BudgetRows
	if segment <= 0 || segment > len(build) {
		segment = len(build)
	}
	if segment == 0 {
		segment = 1
	}

	// Partial results: per left tuple, the accumulating set of e ∘ y pairs.
	partial := make([]*value.Set, len(probe))
	for i := range partial {
		partial[i] = value.EmptySet()
	}

	p.segmentsUsed = 0
	for lo := 0; lo < len(build) || lo == 0; lo += segment {
		hi := lo + segment
		if hi > len(build) {
			hi = len(build)
		}
		if lo >= hi && lo > 0 {
			break
		}
		p.segmentsUsed++
		// Build phase: hash this segment of the flat table.
		table := map[uint64][]int{}
		keys := make([]value.Value, hi-lo)
		for i := lo; i < hi; i++ {
			k, err := p.BuildKey.Eval(ctx, build[i])
			if err != nil {
				return err
			}
			keys[i-lo] = k
			table[value.Hash(k)] = append(table[value.Hash(k)], i)
		}
		// Probe phase: stream the nested operand against the segment.
		for pi, lrow := range probe {
			lt, err := asTuple(lrow, "PNHL")
			if err != nil {
				return err
			}
			av, ok := lt.Get(p.Attr)
			if !ok {
				return fmt.Errorf("exec: PNHL on missing attribute %q", p.Attr)
			}
			set, ok := av.(*value.Set)
			if !ok {
				return fmt.Errorf("exec: PNHL on non-set attribute %q", p.Attr)
			}
			for _, elem := range set.Elems() {
				et, ok := elem.(*value.Tuple)
				if !ok {
					return fmt.Errorf("exec: PNHL element of %q is not a tuple", p.Attr)
				}
				k, err := p.ElemKey.Eval(ctx, elem)
				if err != nil {
					return err
				}
				h := value.Hash(k)
				for _, bi := range table[h] {
					if !value.Equal(keys[bi-lo], k) {
						continue
					}
					if p.Member != nil {
						m, err := p.Member.Eval(ctx, elem, build[bi])
						if err != nil {
							return err
						}
						partial[pi].Add(m)
						continue
					}
					bt, err := asTuple(build[bi], "PNHL")
					if err != nil {
						return err
					}
					cat, err := et.Concat(bt)
					if err != nil {
						return err
					}
					partial[pi].Add(cat)
				}
			}
		}
		if len(build) == 0 {
			break
		}
	}

	// Merge phase: replace the attribute with the accumulated join result.
	p.out = p.out[:0]
	p.pos = 0
	for pi, lrow := range probe {
		lt := lrow.(*value.Tuple)
		p.out = append(p.out, lt.Except(value.NewTuple(p.Attr, partial[pi])))
	}
	return nil
}

// Next yields the next merged row.
func (p *PNHL) Next() (value.Value, bool, error) {
	if p.pos >= len(p.out) {
		return nil, false, nil
	}
	row := p.out[p.pos]
	p.pos++
	return row, true, nil
}

// Close releases buffers.
func (p *PNHL) Close() error { p.out = nil; return nil }
