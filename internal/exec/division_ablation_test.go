package exec

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/value"
)

// TestUniversalQuantificationViaDivision cross-validates the two classical
// routes the paper mentions for universal quantification: the antijoin
// (Rule 1 after negation pushing) and relational division [Codd72].
//
// Query: suppliers that supply ALL red parts —
//
//	σ[s : RED ⊆ s.parts](SUPPLIER)   with RED = π_pid(σ[color=red](PART))
//
// Division route: μ_parts(SUPPLIER) ÷ RED yields the supplier part of every
// supplier whose unnested (pid, …) rows cover RED. Note the division route
// inherits μ's dangling-tuple loss: suppliers with empty part sets vanish,
// which is only correct because RED ≠ ∅ here — the same safety condition
// the attribute-unnest option checks.
func TestUniversalQuantificationViaDivision(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 60, Parts: 12, Fanout: 9,
		RedFrac: 0.2, Seed: 31})
	red := adl.Proj(adl.Sel("p",
		adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red")), adl.T("PART")), "pid")

	// Ground truth by nested loops: RED ⊆ s.parts, with RED's unary (pid)
	// tuples compared against the parts elements directly.
	spec := adl.Sel("s", adl.CmpE(adl.SubEq, red, adl.Dot(adl.V("s"), "parts")), adl.T("SUPPLIER"))
	wantFull, err := Collect(&ExprScan{Expr: spec}, &Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	// Project to eid for comparison (division returns the non-divisor part).
	wantIDs := value.EmptySet()
	for _, el := range wantFull.Elems() {
		wantIDs.Add(el.(*value.Tuple).MustGet("eid"))
	}

	// Division route: μ then ÷, then project the id.
	div := &DivideOp{
		L: &UnnestOp{Child: &Scan{Table: "SUPPLIER"}, Attr: "parts"},
		R: &ExprScan{Expr: red},
	}
	quot, err := Collect(&ProjectOp{Child: div, Attrs: []string{"eid"}}, &Ctx{DB: st})
	if err != nil {
		t.Fatal(err)
	}
	gotIDs := value.EmptySet()
	for _, el := range quot.Elems() {
		gotIDs.Add(el.(*value.Tuple).MustGet("eid"))
	}
	if !value.Equal(gotIDs, wantIDs) {
		t.Fatalf("division route = %v, want %v", gotIDs, wantIDs)
	}
	if red, err := Collect(&ExprScan{Expr: red}, &Ctx{DB: st}); err != nil || red.Len() == 0 {
		t.Fatalf("fixture must have red parts (safety condition): %v %v", red, err)
	}
}
