// Parallel partitioned execution: a Grace-style partitioned hash join and
// worker-pool wrappers for σ and α. The paper's argument is that rewriting
// nested loops into explicit joins lets the optimizer pick efficient join
// implementations (§5.1); on modern hardware "efficient" includes exploiting
// every core. Hash partitioning both operands on the join key makes each
// partition an independent join: equal keys hash equally, so a left row's
// matches — and therefore its semi/anti/nest/outer verdict — are decided
// entirely within its own partition.
//
// All parallel operators preserve the Operator (Open/Next/Close) contract:
// Open launches the workers, Next streams merged results from a bounded
// channel, Close tears the pipeline down. Result order is nondeterministic,
// which is harmless under the algebra's set semantics.
package exec

import (
	"runtime"
	"sync"

	"repro/internal/adl"
	"repro/internal/value"
)

// mergeBuffer is the capacity of the bounded channel merging worker output.
const mergeBuffer = 1024

// Parallelism resolves a parallelism knob: n if positive, else NumCPU. It
// is exported so Explain and benchmark harnesses can report the effective
// partition/worker counts.
func Parallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// parMerge is the shared fan-in plumbing: workers send rows into a bounded
// channel, the consumer pulls them out of Next, and the first error aborts
// the pipeline.
type parMerge struct {
	out   chan value.Value
	abort chan struct{}
	once  sync.Once // guards closing abort
	errMu sync.Mutex
	err   error
}

func newParMerge() *parMerge {
	return &parMerge{
		out:   make(chan value.Value, mergeBuffer),
		abort: make(chan struct{}),
	}
}

// emit sends a row unless the pipeline is aborting. It reports whether the
// worker should continue.
func (m *parMerge) emit(row value.Value) bool {
	select {
	case m.out <- row:
		return true
	case <-m.abort:
		return false
	}
}

// fail records the first error and aborts the pipeline.
func (m *parMerge) fail(err error) {
	m.errMu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.errMu.Unlock()
	m.stop()
}

// stop makes all workers wind down; it is safe to call repeatedly.
func (m *parMerge) stop() { m.once.Do(func() { close(m.abort) }) }

// next implements Operator.Next over the merged stream.
func (m *parMerge) next() (value.Value, bool, error) {
	row, ok := <-m.out
	if !ok {
		m.errMu.Lock()
		defer m.errMu.Unlock()
		return nil, false, m.err
	}
	return row, true, nil
}

// drain tears the pipeline down: abort workers and consume until the merge
// channel is closed so no worker stays blocked on a send.
func (m *parMerge) drain() {
	m.stop()
	for range m.out {
	}
}

// evalKeys computes key(row) for every row with a pool of workers. The rows
// are split into contiguous chunks, one per worker, so no locking is needed
// on the result slice.
func evalKeys(ctx *Ctx, rows []value.Value, key Scalar, workers int) ([]value.Value, error) {
	keys := make([]value.Value, len(rows))
	if len(rows) == 0 {
		return keys, nil
	}
	w := Parallelism(workers)
	if w > len(rows) {
		w = len(rows)
	}
	chunk := (len(rows) + w - 1) / w
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				k, err := key.Eval(ctx, rows[r])
				if err != nil {
					errs[i] = err
					return
				}
				keys[r] = k
			}
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// partition groups row indices by hash(key) mod p.
func partition(keys []value.Value, p int) [][]int {
	parts := make([][]int, p)
	for i, k := range keys {
		h := value.Hash(k) % uint64(p)
		parts[h] = append(parts[h], i)
	}
	return parts
}

// PartitionedHashJoin is the Grace-style parallel variant of HashJoin: both
// operands are hash-partitioned on their join keys into Partitions buckets;
// each bucket is then built and probed by its own goroutine, with results
// merged through a bounded channel. All join kinds are supported with the
// same semantics as the serial HashJoin, including the optional residual
// predicate and the nestjoin's per-left-row grouping.
type PartitionedHashJoin struct {
	Kind       adl.JoinKind
	L, R       Operator
	LVar, RVar string
	LKey, RKey Scalar
	Residual   *Scalar
	As         string
	RFun       *Scalar
	// Partitions is the partition/goroutine count; <=0 means NumCPU.
	Partitions int

	merge *parMerge
	wg    sync.WaitGroup
}

// Open drains and partitions both inputs, then launches one build+probe
// worker per partition.
func (j *PartitionedHashJoin) Open(ctx *Ctx) error {
	p := Parallelism(j.Partitions)

	rrows, err := drain(j.R, ctx)
	if err != nil {
		return err
	}
	rkeys, err := evalKeys(ctx, rrows, j.RKey, p)
	if err != nil {
		return err
	}
	lrows, err := drain(j.L, ctx)
	if err != nil {
		return err
	}
	lkeys, err := evalKeys(ctx, lrows, j.LKey, p)
	if err != nil {
		return err
	}
	rparts := partition(rkeys, p)
	lparts := partition(lkeys, p)
	nullPad := outerNullPad(j.Kind, rrows)

	j.merge = newParMerge()
	for i := 0; i < p; i++ {
		j.wg.Add(1)
		go func(li, ri []int) {
			defer j.wg.Done()
			j.joinPartition(ctx, lrows, lkeys, li, rrows, rkeys, ri, nullPad)
		}(lparts[i], rparts[i])
	}
	merge := j.merge
	go func() {
		j.wg.Wait()
		close(merge.out)
	}()
	return nil
}

// joinPartition builds a hash table over one right partition and probes it
// with the matching left partition, emitting result rows into the merge
// channel.
func (j *PartitionedHashJoin) joinPartition(ctx *Ctx, lrows, lkeys []value.Value, li []int, rrows, rkeys []value.Value, ri []int, nullPad *value.Tuple) {
	table := make(map[uint64][]int, len(ri))
	for _, r := range ri {
		h := value.Hash(rkeys[r])
		table[h] = append(table[h], r)
	}
	for _, l := range li {
		lrow := lrows[l]
		lt, err := asTuple(lrow, "partitioned hash join")
		if err != nil {
			j.merge.fail(err)
			return
		}
		lk := lkeys[l]
		matched := false
		var nest *value.Set
		if j.Kind == adl.NestJ {
			nest = value.EmptySet()
		}
		for _, r := range table[value.Hash(lk)] {
			if !value.Equal(rkeys[r], lk) {
				continue
			}
			rrow := rrows[r]
			if j.Residual != nil {
				ok, err := j.Residual.Bool(ctx, lrow, rrow)
				if err != nil {
					j.merge.fail(err)
					return
				}
				if !ok {
					continue
				}
			}
			matched = true
			switch j.Kind {
			case adl.Inner, adl.Outer:
				rt, err := asTuple(rrow, "partitioned hash join")
				if err != nil {
					j.merge.fail(err)
					return
				}
				cat, err := lt.Concat(rt)
				if err != nil {
					j.merge.fail(err)
					return
				}
				if !j.merge.emit(cat) {
					return
				}
			case adl.NestJ:
				member := rrow
				if j.RFun != nil {
					member, err = j.RFun.Eval(ctx, lrow, rrow)
					if err != nil {
						j.merge.fail(err)
						return
					}
				}
				nest.Add(member)
			}
			if j.Kind == adl.Semi {
				break
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched && !j.merge.emit(lrow) {
				return
			}
		case adl.Anti:
			if !matched && !j.merge.emit(lrow) {
				return
			}
		case adl.NestJ:
			if !j.merge.emit(lt.With(j.As, nest)) {
				return
			}
		case adl.Outer:
			if !matched {
				cat, err := lt.Concat(nullPad)
				if err != nil {
					j.merge.fail(err)
					return
				}
				if !j.merge.emit(cat) {
					return
				}
			}
		}
	}
}

// Next yields the next joined row from the merge channel.
func (j *PartitionedHashJoin) Next() (value.Value, bool, error) {
	return j.merge.next()
}

// Close aborts any still-running workers and waits for them.
func (j *PartitionedHashJoin) Close() error {
	if j.merge != nil {
		j.merge.drain()
		j.wg.Wait()
		j.merge = nil
	}
	return nil
}

// parPool fans a child operator's rows out to a worker pool applying fn, and
// merges results through a bounded channel. It is the shared engine of
// ParallelMap and ParallelFilter. The child is pulled from a single feeder
// goroutine, respecting the single-threaded Operator contract.
type parPool struct {
	merge *parMerge
	wg    sync.WaitGroup // feeder + workers
}

// start opens the pipeline: fn maps a row to (result, keep); workers drop
// rows with keep=false.
func (p *parPool) start(ctx *Ctx, child Operator, workers int, fn func(*Ctx, value.Value) (value.Value, bool, error)) {
	p.merge = newParMerge()
	in := make(chan value.Value, mergeBuffer)
	merge := p.merge

	p.wg.Add(1)
	go func() { // feeder: sole caller of child.Next
		defer p.wg.Done()
		defer close(in)
		for {
			row, ok, err := child.Next()
			if err != nil {
				merge.fail(err)
				return
			}
			if !ok {
				return
			}
			select {
			case in <- row:
			case <-merge.abort:
				return
			}
		}
	}()

	w := Parallelism(workers)
	var workerWG sync.WaitGroup
	for i := 0; i < w; i++ {
		p.wg.Add(1)
		workerWG.Add(1)
		go func() {
			defer p.wg.Done()
			defer workerWG.Done()
			for row := range in {
				out, keep, err := fn(ctx, row)
				if err != nil {
					merge.fail(err)
					return
				}
				if keep && !merge.emit(out) {
					return
				}
			}
		}()
	}
	go func() {
		workerWG.Wait()
		close(merge.out)
	}()
}

// next forwards the merged stream.
func (p *parPool) next() (value.Value, bool, error) { return p.merge.next() }

// stop aborts and waits for the pipeline.
func (p *parPool) stop() {
	if p.merge != nil {
		p.merge.drain()
		p.wg.Wait()
		p.merge = nil
	}
}

// ParallelMap is α with the body evaluated by a worker pool: rows are pulled
// from the child by a feeder goroutine, mapped concurrently, and merged
// through a bounded channel.
type ParallelMap struct {
	Child Operator
	Var   string
	Body  Scalar
	// Workers is the pool size; <=0 means NumCPU.
	Workers int

	pool parPool
}

// Open opens the child and starts the pool.
func (m *ParallelMap) Open(ctx *Ctx) error {
	if err := m.Child.Open(ctx); err != nil {
		return err
	}
	m.pool.start(ctx, m.Child, m.Workers, func(ctx *Ctx, row value.Value) (value.Value, bool, error) {
		v, err := m.Body.Eval(ctx, row)
		return v, true, err
	})
	return nil
}

// Next yields the image of some input row; order is not preserved.
func (m *ParallelMap) Next() (value.Value, bool, error) { return m.pool.next() }

// Close tears down the pool and closes the child.
func (m *ParallelMap) Close() error {
	m.pool.stop()
	return m.Child.Close()
}

// ParallelFilter is σ with the predicate evaluated by a worker pool.
type ParallelFilter struct {
	Child Operator
	Var   string
	Pred  Scalar
	// Workers is the pool size; <=0 means NumCPU.
	Workers int

	pool parPool
}

// Open opens the child and starts the pool.
func (f *ParallelFilter) Open(ctx *Ctx) error {
	if err := f.Child.Open(ctx); err != nil {
		return err
	}
	f.pool.start(ctx, f.Child, f.Workers, func(ctx *Ctx, row value.Value) (value.Value, bool, error) {
		keep, err := f.Pred.Bool(ctx, row)
		return row, keep, err
	})
	return nil
}

// Next yields some input row satisfying the predicate; order is not
// preserved.
func (f *ParallelFilter) Next() (value.Value, bool, error) { return f.pool.next() }

// Close tears down the pool and closes the child.
func (f *ParallelFilter) Close() error {
	f.pool.stop()
	return f.Child.Close()
}
