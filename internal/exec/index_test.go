package exec

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/storage"
	"repro/internal/value"
)

// indexedStore builds a small supplier-delivery database with indexes on
// SUPPLIER.sname (ordered) and DELIVERY.supplier (hash).
func indexedStore(t *testing.T) *storage.Store {
	t.Helper()
	st := bench.Generate(bench.Config{Suppliers: 20, Parts: 10, Fanout: 2,
		Deliveries: 200, Seed: 7})
	if err := st.CreateIndex("SUPPLIER", "sname", storage.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureIndexes("DELIVERY", "supplier"); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestIndexScanEqMatchesFilteredScan(t *testing.T) {
	st := indexedStore(t)
	ctx := &Ctx{DB: st}
	eq := NewScalar(adl.CStr("supplier-3"))
	idx := &IndexScan{Table: "SUPPLIER", Attr: "sname", Eq: &eq}
	got, err := Collect(idx, ctx)
	if err != nil {
		t.Fatal(err)
	}
	pred := NewScalar(adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-3")), "s")
	want, err := Collect(&Filter{Child: &Scan{Table: "SUPPLIER"}, Var: "s", Pred: pred}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("IndexScan(eq) = %v, filtered scan = %v", got, want)
	}
	if got.Len() != 1 {
		t.Fatalf("IndexScan(eq) returned %d rows, want 1", got.Len())
	}
}

func TestIndexScanRangeMatchesFilteredScan(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 5, Parts: 60, Seed: 7})
	if err := st.CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
		t.Fatal(err)
	}
	ctx := &Ctx{DB: st}
	lo, hi := NewScalar(adl.CInt(20)), NewScalar(adl.CInt(60))
	idx := &IndexScan{Table: "PART", Attr: "price", Lo: &lo, LoIncl: true, Hi: &hi}
	got, err := Collect(idx, ctx)
	if err != nil {
		t.Fatal(err)
	}
	pred := NewScalar(adl.AndE(
		adl.CmpE(adl.Ge, adl.Dot(adl.V("p"), "price"), adl.CInt(20)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("p"), "price"), adl.CInt(60))), "p")
	want, err := Collect(&Filter{Child: &Scan{Table: "PART"}, Var: "p", Pred: pred}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("IndexScan(range) diverges from filtered scan:\n got %v\nwant %v", got, want)
	}
	if got.Len() == 0 {
		t.Fatal("range scan returned no rows; fixture too small")
	}
}

// TestIndexNLJoinMatchesHashJoin: every supported kind must produce exactly
// the hash join's result on the same logical join.
func TestIndexNLJoinMatchesHashJoin(t *testing.T) {
	st := indexedStore(t)
	ctx := &Ctx{DB: st}
	lk := NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk := NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.NestJ} {
		as := ""
		var rfun *Scalar
		if kind == adl.NestJ {
			as = "ds"
			s := NewScalar(adl.SubT(adl.V("d"), "did"), "s", "d")
			rfun = &s
		}
		idx := &IndexNLJoin{Kind: kind, L: &Scan{Table: "SUPPLIER"},
			Table: "DELIVERY", Attr: "supplier", LVar: "s", RVar: "d",
			LKey: lk, As: as, RFun: rfun}
		got, err := Collect(idx, ctx)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		hj := &HashJoin{Kind: kind, L: &Scan{Table: "SUPPLIER"}, R: &Scan{Table: "DELIVERY"},
			LVar: "s", RVar: "d", LKey: lk, RKey: rk, As: as, RFun: rfun}
		want, err := Collect(hj, ctx)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !value.Equal(got, want) {
			t.Errorf("kind %v: IndexNLJoin diverges from HashJoin (%d vs %d rows)",
				kind, got.Len(), want.Len())
		}
	}
}

// TestIndexNLJoinResidual: extra conjuncts run as a residual on the probed
// matches.
func TestIndexNLJoinResidual(t *testing.T) {
	st := indexedStore(t)
	ctx := &Ctx{DB: st}
	lk := NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk := NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	resid := NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-2")), "s", "d")
	idx := &IndexNLJoin{Kind: adl.Inner, L: &Scan{Table: "SUPPLIER"},
		Table: "DELIVERY", Attr: "supplier", LVar: "s", RVar: "d",
		LKey: lk, Residual: &resid}
	got, err := Collect(idx, ctx)
	if err != nil {
		t.Fatal(err)
	}
	hj := &HashJoin{Kind: adl.Inner, L: &Scan{Table: "SUPPLIER"}, R: &Scan{Table: "DELIVERY"},
		LVar: "s", RVar: "d", LKey: lk, RKey: rk, Residual: &resid}
	want, err := Collect(hj, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("residual IndexNLJoin diverges (%d vs %d rows)", got.Len(), want.Len())
	}
}

// TestIndexOperatorsRequireIndexedDB: plans with index operators fail
// loudly against databases without index support, and the index join
// refuses the outer kind.
func TestIndexOperatorsRequireIndexedDB(t *testing.T) {
	db := storage.NewMemDB("T", value.NewSet(value.NewTuple("a", value.Int(1))))
	ctx := &Ctx{DB: db}
	eq := NewScalar(adl.CInt(1))
	if err := (&IndexScan{Table: "T", Attr: "a", Eq: &eq}).Open(ctx); err == nil {
		t.Error("IndexScan over a MemDB must error")
	}
	lk := NewScalar(adl.Dot(adl.V("x"), "a"), "x")
	if err := (&IndexNLJoin{Kind: adl.Inner, L: &Scan{Table: "T"}, Table: "T", Attr: "a",
		LVar: "x", RVar: "y", LKey: lk}).Open(ctx); err == nil {
		t.Error("IndexNLJoin over a MemDB must error")
	}
	st := indexedStore(t)
	if err := (&IndexNLJoin{Kind: adl.Outer, L: &Scan{Table: "SUPPLIER"},
		Table: "DELIVERY", Attr: "supplier", LVar: "s", RVar: "d",
		LKey: lk}).Open(&Ctx{DB: st}); err == nil {
		t.Error("IndexNLJoin must refuse the outer kind")
	}
}
