package exec

import (
	"errors"
	"testing"

	"repro/internal/adl"
	"repro/internal/value"
)

// closeFailOp yields its rows normally and fails on Close — the regression
// shape for the swallowed-Close-error bug in Collect/drain.
type closeFailOp struct {
	rows    []value.Value
	nextErr error
	closed  int
	pos     int
}

func (o *closeFailOp) Open(*Ctx) error { o.pos = 0; return nil }
func (o *closeFailOp) Next() (value.Value, bool, error) {
	if o.nextErr != nil {
		return nil, false, o.nextErr
	}
	if o.pos >= len(o.rows) {
		return nil, false, nil
	}
	row := o.rows[o.pos]
	o.pos++
	return row, true, nil
}
func (o *closeFailOp) Close() error {
	o.closed++
	return errors.New("close failed")
}

func TestCollectPropagatesCloseError(t *testing.T) {
	op := &closeFailOp{rows: []value.Value{value.Int(1)}}
	_, err := Collect(op, &Ctx{})
	if err == nil || err.Error() != "close failed" {
		t.Fatalf("Collect swallowed the Close error: %v", err)
	}
	if op.closed != 1 {
		t.Fatalf("Close called %d times", op.closed)
	}
}

func TestCollectPrefersIterationError(t *testing.T) {
	nextErr := errors.New("next failed")
	op := &closeFailOp{nextErr: nextErr}
	_, err := Collect(op, &Ctx{})
	if !errors.Is(err, nextErr) {
		t.Fatalf("iteration error masked by Close error: %v", err)
	}
}

// TestDrainPropagatesCloseError exercises drain through an operator that
// drains its children eagerly: a child whose Close fails must fail the
// join's Open.
func TestDrainPropagatesCloseError(t *testing.T) {
	child := &closeFailOp{rows: []value.Value{value.NewTuple("a", value.Int(1))}}
	j := &NLJoin{
		Kind: adl.Inner,
		L:    &closeFailOp{rows: nil},
		R:    child,
		LVar: "x", RVar: "y",
		Pred: NewScalar(adl.CBool(true), "x", "y"),
	}
	if err := j.Open(&Ctx{}); err == nil {
		t.Fatal("NLJoin.Open swallowed a child Close error")
	}
}
