package exec

import (
	"fmt"

	"repro/internal/value"
)

// UnnestOp implements μ_attr: each input tuple fans out into one row per
// element of its set-valued attribute, concatenated with the remaining
// attributes. Tuples with empty sets are dropped (the PNF caveat).
type UnnestOp struct {
	Child Operator
	Attr  string

	pending []value.Value
	ppos    int
}

// Open opens the child.
func (u *UnnestOp) Open(ctx *Ctx) error {
	u.pending = nil
	u.ppos = 0
	return u.Child.Open(ctx)
}

// Next yields the next unnested row.
func (u *UnnestOp) Next() (value.Value, bool, error) {
	for {
		if u.ppos < len(u.pending) {
			row := u.pending[u.ppos]
			u.ppos++
			return row, true, nil
		}
		row, ok, err := u.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		t, err := asTuple(row, "μ")
		if err != nil {
			return nil, false, err
		}
		av, ok := t.Get(u.Attr)
		if !ok {
			return nil, false, fmt.Errorf("exec: μ on missing attribute %q", u.Attr)
		}
		set, ok := av.(*value.Set)
		if !ok {
			return nil, false, fmt.Errorf("exec: μ on non-set attribute %q", u.Attr)
		}
		rest := t.Drop([]string{u.Attr})
		u.pending = u.pending[:0]
		u.ppos = 0
		for _, el := range set.Elems() {
			et, ok := el.(*value.Tuple)
			if !ok {
				return nil, false, fmt.Errorf("exec: μ element of %q is not a tuple", u.Attr)
			}
			cat, err := et.Concat(rest)
			if err != nil {
				return nil, false, err
			}
			u.pending = append(u.pending, cat)
		}
	}
}

// Close closes the child.
func (u *UnnestOp) Close() error { return u.Child.Close() }

// NestOp implements ν_{Attrs→As} by hash grouping: rows are grouped by all
// attributes not in Attrs; each group's Attrs-subtuples are collected into a
// set-valued attribute As.
type NestOp struct {
	Child Operator
	Attrs []string
	As    string

	out []value.Value
	pos int
}

// Open groups eagerly (ν is a pipeline breaker).
func (n *NestOp) Open(ctx *Ctx) error {
	rows, err := drain(n.Child, ctx)
	if err != nil {
		return err
	}
	type group struct {
		key     *value.Tuple
		members *value.Set
	}
	var groups []*group
	index := map[uint64][]int{}
	for _, row := range rows {
		t, err := asTuple(row, "ν")
		if err != nil {
			return err
		}
		sub, err := t.Subscript(n.Attrs)
		if err != nil {
			return err
		}
		key := t.Drop(n.Attrs)
		h := value.Hash(key)
		found := false
		for _, gi := range index[h] {
			if value.Equal(groups[gi].key, key) {
				groups[gi].members.Add(sub)
				found = true
				break
			}
		}
		if !found {
			index[h] = append(index[h], len(groups))
			groups = append(groups, &group{key: key, members: value.NewSet(sub)})
		}
	}
	n.out = n.out[:0]
	n.pos = 0
	for _, g := range groups {
		n.out = append(n.out, g.key.With(n.As, g.members))
	}
	return nil
}

// Next yields the next group.
func (n *NestOp) Next() (value.Value, bool, error) {
	if n.pos >= len(n.out) {
		return nil, false, nil
	}
	row := n.out[n.pos]
	n.pos++
	return row, true, nil
}

// Close releases buffers.
func (n *NestOp) Close() error { n.out = nil; return n.Child.Close() }

// FlattenOp implements multiple union over a child producing sets.
type FlattenOp struct {
	Child Operator

	pending []value.Value
	ppos    int
}

// Open opens the child.
func (f *FlattenOp) Open(ctx *Ctx) error {
	f.pending = nil
	f.ppos = 0
	return f.Child.Open(ctx)
}

// Next yields the next inner element.
func (f *FlattenOp) Next() (value.Value, bool, error) {
	for {
		if f.ppos < len(f.pending) {
			row := f.pending[f.ppos]
			f.ppos++
			return row, true, nil
		}
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		set, isSet := row.(*value.Set)
		if !isSet {
			return nil, false, fmt.Errorf("exec: flatten over non-set row %s", row.Kind())
		}
		f.pending = set.Elems()
		f.ppos = 0
	}
}

// Close closes the child.
func (f *FlattenOp) Close() error { return f.Child.Close() }

// DivideOp implements relational division [Codd72], the classical operator
// for universal quantification (§3): with SCH(L) = A ∪ B and SCH(R) = B,
// it returns the A-subtuples of L paired with every R tuple. The
// implementation hash-groups L by its A-part and checks each group for
// coverage of R.
type DivideOp struct {
	L, R Operator

	out []value.Value
	pos int
}

// Open computes the division eagerly.
func (d *DivideOp) Open(ctx *Ctx) error {
	lrows, err := drain(d.L, ctx)
	if err != nil {
		return err
	}
	rrows, err := drain(d.R, ctx)
	if err != nil {
		return err
	}
	d.out = d.out[:0]
	d.pos = 0
	if len(lrows) == 0 {
		return nil
	}
	var bNames []string
	if len(rrows) > 0 {
		rt, err := asTuple(rrows[0], "÷")
		if err != nil {
			return err
		}
		bNames = rt.Names()
	}
	divisor := value.NewSetCap(len(rrows))
	for _, r := range rrows {
		divisor.Add(r)
	}
	// Group L rows by their A-part, collecting the B-parts.
	type group struct {
		key   *value.Tuple
		bPart *value.Set
	}
	var groups []*group
	index := map[uint64][]int{}
	for _, lrow := range lrows {
		lt, err := asTuple(lrow, "÷")
		if err != nil {
			return err
		}
		key := lt.Drop(bNames)
		b, err := lt.Subscript(bNames)
		if err != nil {
			return err
		}
		h := value.Hash(key)
		found := false
		for _, gi := range index[h] {
			if value.Equal(groups[gi].key, key) {
				groups[gi].bPart.Add(b)
				found = true
				break
			}
		}
		if !found {
			index[h] = append(index[h], len(groups))
			groups = append(groups, &group{key: key, bPart: value.NewSet(b)})
		}
	}
	for _, g := range groups {
		if divisor.SubsetOf(g.bPart) {
			d.out = append(d.out, g.key)
		}
	}
	return nil
}

// Next yields the next quotient tuple.
func (d *DivideOp) Next() (value.Value, bool, error) {
	if d.pos >= len(d.out) {
		return nil, false, nil
	}
	row := d.out[d.pos]
	d.pos++
	return row, true, nil
}

// Close releases buffers.
func (d *DivideOp) Close() error { d.out = nil; return nil }

// RenameOp implements ρ_{from→to}.
type RenameOp struct {
	Child    Operator
	From, To string
}

// Open opens the child.
func (r *RenameOp) Open(ctx *Ctx) error { return r.Child.Open(ctx) }

// Next yields the next renamed row.
func (r *RenameOp) Next() (value.Value, bool, error) {
	row, ok, err := r.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	t, err := asTuple(row, "ρ")
	if err != nil {
		return nil, false, err
	}
	v, ok := t.Get(r.From)
	if !ok {
		return nil, false, fmt.Errorf("exec: ρ on missing attribute %q", r.From)
	}
	renamed := t.Drop([]string{r.From})
	if renamed.Has(r.To) {
		return nil, false, fmt.Errorf("exec: ρ target attribute %q already exists", r.To)
	}
	return renamed.With(r.To, v), true, nil
}

// Close closes the child.
func (r *RenameOp) Close() error { return r.Child.Close() }

// Assembly is the physical counterpart of the materialize operator
// ([BlMG93]): it dereferences an oid-valued attribute (or a set of unary
// oid-reference tuples) through the object store and extends each tuple with
// the referenced object(s) — a pointer-based join, no value comparison and
// no hash table.
type Assembly struct {
	Child Operator
	Attr  string
	As    string

	ctx *Ctx
}

// Open opens the child.
func (a *Assembly) Open(ctx *Ctx) error { a.ctx = ctx; return a.Child.Open(ctx) }

// Next yields the next assembled row.
func (a *Assembly) Next() (value.Value, bool, error) {
	row, ok, err := a.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	t, err := asTuple(row, "assembly")
	if err != nil {
		return nil, false, err
	}
	av, ok := t.Get(a.Attr)
	if !ok {
		return nil, false, fmt.Errorf("exec: assembly on missing attribute %q", a.Attr)
	}
	switch ref := av.(type) {
	case value.OID:
		obj, err := a.ctx.DB.Deref(ref)
		if err != nil {
			return nil, false, err
		}
		return t.With(a.As, obj), true, nil
	case *value.Set:
		objs := value.NewSetCap(ref.Len())
		for _, el := range ref.Elems() {
			oid, err := elemOID(el)
			if err != nil {
				return nil, false, err
			}
			obj, err := a.ctx.DB.Deref(oid)
			if err != nil {
				return nil, false, err
			}
			objs.Add(obj)
		}
		return t.With(a.As, objs), true, nil
	}
	return nil, false, fmt.Errorf("exec: assembly on non-reference attribute %q", a.Attr)
}

// Close closes the child.
func (a *Assembly) Close() error { return a.Child.Close() }

// elemOID extracts the oid from a reference-set element.
func elemOID(el value.Value) (value.OID, error) {
	switch rv := el.(type) {
	case value.OID:
		return rv, nil
	case *value.Tuple:
		if rv.Len() == 1 {
			_, v := rv.At(0)
			if oid, ok := v.(value.OID); ok {
				return oid, nil
			}
		}
	}
	return 0, fmt.Errorf("exec: reference element %v is not an oid", el)
}
