package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/adl"
	"repro/internal/col"
	"repro/internal/value"
)

// routeMode is how build and probe keys are routed to partitions. The mode
// is chosen once from the build keys' uniformity and both sides must use
// it: mixing typed and generic routes would send equal keys to different
// partitions.
type routeMode int

const (
	routeGeneric routeMode = iota // value.Hash
	routeInt                      // uniform int-backed keys, Fibonacci-mixed bits
	routeStr                      // uniform strings, FNV + Fibonacci mix
)

// vecPartition is one build partition: a typed key table over the keys
// routed here plus the mapping from local slot to global build row.
type vecPartition struct {
	tab keyTable
	idx []int32
}

// VecPartitionedHashJoin is the batch-native Grace-style parallel hash join
// on an equi-key: the right operand is drained once, its keys partitioned by
// hash into per-worker flat tables (built concurrently), and then left
// batches are dispatched whole over one bounded channel to probe workers
// that each probe all partitions read-only. The exchange granularity is
// Batch — the hot path performs one channel send per batch and per recycled
// selection buffer, never per tuple. Workers buffer their output rows
// locally together with each row's precomputed value.Hash, so CollectSet's
// final set build skips the serial deep-hash pass.
//
// Inner, semi, anti and outer kinds with an optional residual predicate —
// the batch counterpart of the tuple-at-a-time PartitionedHashJoin.
type VecPartitionedHashJoin struct {
	Kind adl.JoinKind
	L    VecOp
	R    Operator
	// LAttr is the left key column; LKey the same key as a scalar fallback.
	LAttr string
	LKey  Scalar
	RKey  Scalar
	// Residual is an optional extra predicate over both join variables.
	Residual *Scalar
	// Partitions is the partition/worker count; <=0 means NumCPU.
	Partitions int

	right  []value.Value
	out    []value.Value
	hashes []uint64
	pos    int
}

// probeOut is one worker's private output buffer.
type probeOut struct {
	rows   []value.Value
	hashes []uint64
	err    error
}

// add appends a result row with its hash.
func (w *probeOut) add(v value.Value) {
	w.rows = append(w.rows, v)
	w.hashes = append(w.hashes, value.Hash(v))
}

// Open materializes the build side, partitions and indexes it, then feeds
// left batches to the probe workers and concatenates their outputs.
func (j *VecPartitionedHashJoin) Open(ctx *Ctx) (err error) {
	switch j.Kind {
	case adl.Inner, adl.Semi, adl.Anti, adl.Outer:
	default:
		return fmt.Errorf("exec: partitioned batch join does not support kind %v", j.Kind)
	}
	p := Parallelism(j.Partitions)
	j.right, err = drain(j.R, ctx)
	if err != nil {
		return err
	}
	rkeys, err := buildKeys(ctx, j.right, j.RKey, p)
	if err != nil {
		return err
	}
	mode, vkind := chooseRoute(rkeys)

	parts := make([]vecPartition, p)
	for i, k := range rkeys {
		pt := &parts[routeOf(mode, p, k)]
		pt.tab.keys = append(pt.tab.keys, k)
		pt.idx = append(pt.idx, int32(i))
	}
	// Index the partitions concurrently: index touches only its receiver
	// and never fails.
	var bwg sync.WaitGroup
	for pi := range parts {
		bwg.Add(1)
		go func(pt *vecPartition) {
			defer bwg.Done()
			pt.tab.index()
		}(&parts[pi])
	}
	bwg.Wait()

	nullPad := outerNullPad(j.Kind, j.right)

	if err := j.L.OpenVec(ctx); err != nil {
		return err
	}
	defer func() {
		if cerr := j.L.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	j.out, j.hashes, j.pos = j.out[:0], j.hashes[:0], 0

	// The caller's goroutine is the feeder: it is the sole caller of
	// L.NextBatch and copies each selection into a pooled buffer before
	// dispatch (the producer may reuse its own buffer on the next call).
	in := make(chan Batch, p)
	pool := make(chan []int32, p+1)
	ws := make([]probeOut, p)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for wi := 0; wi < p; wi++ {
		wg.Add(1)
		go func(w *probeOut) {
			defer wg.Done()
			for b := range in {
				if !failed.Load() {
					if perr := j.probeBatch(ctx, b, parts, mode, vkind, nullPad, w); perr != nil {
						w.err = perr
						failed.Store(true)
					}
				}
				select {
				case pool <- b.Sel[:cap(b.Sel)]:
				default:
				}
			}
		}(&ws[wi])
	}
	var feedErr error
	for {
		b, ok, nerr := j.L.NextBatch()
		if nerr != nil {
			feedErr = nerr
			break
		}
		if !ok || failed.Load() {
			break
		}
		var buf []int32
		select {
		case buf = <-pool:
		default:
		}
		if cap(buf) < len(b.Sel) {
			buf = make([]int32, len(b.Sel))
		}
		sel := buf[:len(b.Sel)]
		copy(sel, b.Sel)
		in <- Batch{Proj: b.Proj, Sel: sel}
	}
	close(in)
	wg.Wait()
	if feedErr != nil {
		return feedErr
	}
	total := 0
	for i := range ws {
		if ws[i].err != nil {
			return ws[i].err
		}
		total += len(ws[i].rows)
	}
	if cap(j.out) < total {
		j.out = make([]value.Value, 0, total)
		j.hashes = make([]uint64, 0, total)
	}
	for i := range ws {
		j.out = append(j.out, ws[i].rows...)
		j.hashes = append(j.hashes, ws[i].hashes...)
	}
	return nil
}

// buildKeys evaluates the build key over every row: the v.attr shape reads
// straight off the tuples, anything else goes through the interpreter in
// parallel contiguous chunks.
func buildKeys(ctx *Ctx, rows []value.Value, key Scalar, workers int) ([]value.Value, error) {
	var kt keyTable
	if kt.appendFast(rows, key) {
		return kt.keys, nil
	}
	return evalKeys(ctx, rows, key, workers)
}

// chooseRoute picks the partition routing mode from the build keys.
func chooseRoute(keys []value.Value) (routeMode, value.Kind) {
	if len(keys) == 0 {
		return routeGeneric, value.KindNull
	}
	kind := keys[0].Kind()
	for _, k := range keys[1:] {
		if k.Kind() != kind {
			return routeGeneric, value.KindNull
		}
	}
	switch kind {
	case value.KindInt, value.KindDate, value.KindOID, value.KindBool:
		return routeInt, kind
	case value.KindString:
		return routeStr, kind
	}
	return routeGeneric, value.KindNull
}

// routeOf maps a key to its partition. Typed modes must only be called with
// keys of the routing kind.
func routeOf(mode routeMode, p int, k value.Value) int {
	switch mode {
	case routeInt:
		b, _ := valueBits(k)
		return int((uint64(b) * fibMix) % uint64(p))
	case routeStr:
		return int((fnv64(string(k.(value.String))) * fibMix) % uint64(p))
	}
	return int(value.Hash(k) % uint64(p))
}

// probeBatch probes one batch against the partitioned tables into w. It
// runs on a worker goroutine; parts, nullPad and j's exported config are
// read-only here.
func (j *VecPartitionedHashJoin) probeBatch(ctx *Ctx, b Batch, parts []vecPartition, mode routeMode, vkind value.Kind, nullPad *value.Tuple, w *probeOut) error {
	p := len(parts)
	c := b.Proj.Col(j.LAttr)
	typedCol := c != nil && c.Kind != col.Mixed
	intCol := typedCol && mode == routeInt && intBacked(c.Kind) && mustColValueKind(c.Kind) == vkind
	strCol := typedCol && mode == routeStr && c.Kind == col.Str
	for _, i := range b.Sel {
		lrow := b.Proj.Rows[i]
		lt, err := asTuple(lrow, "partitioned hash join")
		if err != nil {
			return err
		}
		matched := false
		switch {
		case intCol:
			k := c.Ints[i]
			pt := &parts[(uint64(k)*fibMix)%uint64(p)]
			if t := pt.tab.i64; t != nil {
				for s := t.head(k); s != 0; s = t.next[s-1] {
					if t.keys[s-1] == k {
						if merr := j.matchRow(ctx, lt, lrow, int(pt.idx[s-1]), &matched, w); merr != nil {
							if merr == errStopProbe {
								break
							}
							return merr
						}
					}
				}
			}
		case strCol:
			k := c.Strs[i]
			pt := &parts[(fnv64(k)*fibMix)%uint64(p)]
			if t := pt.tab.str; t != nil {
				for s := t.head(k); s != 0; s = t.next[s-1] {
					if t.keys[s-1] == k {
						if merr := j.matchRow(ctx, lt, lrow, int(pt.idx[s-1]), &matched, w); merr != nil {
							if merr == errStopProbe {
								break
							}
							return merr
						}
					}
				}
			}
		case typedCol && mode != routeGeneric:
			// Typed routing, probe column of another kind: Equal never
			// crosses kinds, so nothing matches.
		default:
			var k value.Value
			if typedCol {
				k, _ = lt.Get(j.LAttr)
			} else if k, err = j.LKey.Eval(ctx, lrow); err != nil {
				return err
			}
			// Route with the same function the build side used; under typed
			// routing a cross-kind key matches nothing.
			if mode == routeGeneric || k.Kind() == vkind {
				pt := &parts[routeOf(mode, p, k)]
				if ferr := pt.tab.forEach(k, func(li int) error {
					return j.matchRow(ctx, lt, lrow, int(pt.idx[li]), &matched, w)
				}); ferr != nil && ferr != errStopProbe {
					return ferr
				}
			}
		}
		switch j.Kind {
		case adl.Semi:
			if matched {
				w.add(lrow)
			}
		case adl.Anti:
			if !matched {
				w.add(lrow)
			}
		case adl.Outer:
			if !matched {
				cat, cerr := lt.Concat(nullPad)
				if cerr != nil {
					return cerr
				}
				w.add(cat)
			}
		}
	}
	return nil
}

// matchRow applies the residual to one candidate pair and emits per kind.
// For semi/anti it returns errStopProbe after the first residual-passing
// match — the scalar operators' probe break, which also skips any further
// residual evaluations.
func (j *VecPartitionedHashJoin) matchRow(ctx *Ctx, lt *value.Tuple, lrow value.Value, ri int, matched *bool, w *probeOut) error {
	if j.Residual != nil {
		ok, err := j.Residual.Bool(ctx, lrow, j.right[ri])
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	*matched = true
	switch j.Kind {
	case adl.Semi, adl.Anti:
		return errStopProbe
	}
	rt, err := asTuple(j.right[ri], "partitioned hash join")
	if err != nil {
		return err
	}
	cat, err := lt.Concat(rt)
	if err != nil {
		return err
	}
	w.add(cat)
	return nil
}

// Next yields the next joined row.
func (j *VecPartitionedHashJoin) Next() (value.Value, bool, error) {
	if j.pos >= len(j.out) {
		return nil, false, nil
	}
	row := j.out[j.pos]
	j.pos++
	return row, true, nil
}

// Close releases buffers.
func (j *VecPartitionedHashJoin) Close() error {
	j.right, j.out, j.hashes = nil, nil, nil
	return nil
}

// CollectSet materializes the join straight into a set, reusing the hashes
// the workers computed in parallel.
func (j *VecPartitionedHashJoin) CollectSet(ctx *Ctx) (*value.Set, error) {
	if err := j.Open(ctx); err != nil {
		return nil, errors.Join(err, j.Close())
	}
	s := value.NewSetFromSliceHashed(j.out, j.hashes)
	j.out, j.hashes = j.out[:0], j.hashes[:0]
	if cerr := j.Close(); cerr != nil {
		return nil, cerr
	}
	return s, nil
}
