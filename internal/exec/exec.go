// Package exec implements the physical algebra: Volcano-style iterator
// operators realizing the logical ADL operators. It contains the set-
// oriented implementations whose availability is the whole point of the
// paper's rewriting — hash joins, hash semijoins/antijoins, the hash and
// sort-merge nestjoin (grouping during join, §6.1), the PNHL algorithm of
// [DeLa92] for joining a set-valued attribute with a base table (§6.2), and
// the assembly operator implementing materialize via oid pointers
// ([BlMG93], §6.2) — alongside naive nested-loop counterparts used as
// baselines.
//
// Rows are value.Value (usually *value.Tuple); duplicate elimination happens
// when a result is collected into a set, matching the algebra's set
// semantics.
package exec

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/value"
)

// Ctx is the runtime context of a plan: the database and the environment of
// outer (correlated) variable bindings.
type Ctx struct {
	DB  eval.DB
	Env *eval.Env
}

// Operator is a Volcano-style iterator.
type Operator interface {
	// Open prepares the operator for iteration.
	Open(ctx *Ctx) error
	// Next returns the next row; ok is false at end of stream.
	Next() (row value.Value, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Scalar is a compiled scalar expression evaluated against operator rows:
// Vars name the positional bindings supplied at call time, on top of the
// plan context's outer environment.
type Scalar struct {
	Vars []string
	Expr adl.Expr
}

// NewScalar builds a scalar over the given variables.
func NewScalar(e adl.Expr, vars ...string) Scalar {
	return Scalar{Vars: vars, Expr: e}
}

// Eval evaluates the scalar with the given variable values.
func (s Scalar) Eval(ctx *Ctx, vals ...value.Value) (value.Value, error) {
	if len(vals) != len(s.Vars) {
		return nil, fmt.Errorf("exec: scalar arity mismatch: %d vars, %d values", len(s.Vars), len(vals))
	}
	env := ctx.Env
	for i, v := range s.Vars {
		env = env.Bind(v, vals[i])
	}
	return eval.Eval(s.Expr, env, ctx.DB)
}

// Bool evaluates the scalar as a predicate.
func (s Scalar) Bool(ctx *Ctx, vals ...value.Value) (bool, error) {
	v, err := s.Eval(ctx, vals...)
	if err != nil {
		return false, err
	}
	b, ok := v.(value.Bool)
	if !ok {
		return false, fmt.Errorf("exec: predicate returned %s", v.Kind())
	}
	return bool(b), nil
}

// Collect drains an operator into a set (deduplicating, per set semantics).
// A Close error surfaces unless iteration already failed — operators release
// pipelines (goroutines, channels) in Close, and swallowing their errors
// would hide a failed teardown.
func Collect(op Operator, ctx *Ctx) (_ *value.Set, err error) {
	if sc, ok := op.(SetCollector); ok {
		return sc.CollectSet(ctx)
	}
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	out := value.EmptySet()
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Add(row)
	}
}

// drain materializes an operator's rows into a slice, propagating Close
// errors like Collect. A VecAdapter hands over its materialized buffer
// directly instead of being copied row by row.
func drain(op Operator, ctx *Ctx) (_ []value.Value, err error) {
	if a, ok := op.(*VecAdapter); ok {
		rows, err := a.drainVec(ctx)
		if err != nil {
			return nil, err
		}
		a.rows = nil // ownership moves to the caller
		return rows, nil
	}
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := op.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	var rows []value.Value
	for {
		row, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

// asTuple asserts a row is a tuple.
func asTuple(row value.Value, op string) (*value.Tuple, error) {
	t, ok := row.(*value.Tuple)
	if !ok {
		return nil, fmt.Errorf("exec: %s over non-tuple row %s", op, row.Kind())
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Leaf operators
// ---------------------------------------------------------------------------

// Scan iterates a base table.
type Scan struct {
	Table string

	rows []value.Value
	pos  int
}

// Open materializes the extent.
func (s *Scan) Open(ctx *Ctx) error {
	set, err := ctx.DB.Table(s.Table)
	if err != nil {
		return err
	}
	s.rows = set.Elems()
	s.pos = 0
	return nil
}

// Next yields the next object.
func (s *Scan) Next() (value.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close releases the scan.
func (s *Scan) Close() error { s.rows = nil; return nil }

// SetScan iterates an in-memory set.
type SetScan struct {
	Set *value.Set

	pos int
}

// Open resets the iterator.
func (s *SetScan) Open(*Ctx) error { s.pos = 0; return nil }

// Next yields the next element.
func (s *SetScan) Next() (value.Value, bool, error) {
	if s.pos >= s.Set.Len() {
		return nil, false, nil
	}
	row := s.Set.Elems()[s.pos]
	s.pos++
	return row, true, nil
}

// Close is a no-op.
func (s *SetScan) Close() error { return nil }

// ExprScan evaluates an arbitrary ADL expression to a set with the
// reference interpreter and iterates it — the nested-loop fallback for plan
// fragments without a dedicated physical operator.
type ExprScan struct {
	Expr adl.Expr

	rows []value.Value
	pos  int
}

// Open evaluates the expression.
func (s *ExprScan) Open(ctx *Ctx) error {
	set, err := eval.EvalSet(s.Expr, ctx.Env, ctx.DB)
	if err != nil {
		return err
	}
	s.rows = set.Elems()
	s.pos = 0
	return nil
}

// Next yields the next element.
func (s *ExprScan) Next() (value.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close releases the buffer.
func (s *ExprScan) Close() error { s.rows = nil; return nil }

// ---------------------------------------------------------------------------
// Row-at-a-time operators
// ---------------------------------------------------------------------------

// Filter implements σ with a compiled predicate.
type Filter struct {
	Child Operator
	Var   string
	Pred  Scalar

	ctx *Ctx
}

// Open opens the child.
func (f *Filter) Open(ctx *Ctx) error { f.ctx = ctx; return f.Child.Open(ctx) }

// Next yields the next row satisfying the predicate.
func (f *Filter) Next() (value.Value, bool, error) {
	for {
		row, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		keep, err := f.Pred.Bool(f.ctx, row)
		if err != nil {
			return nil, false, err
		}
		if keep {
			return row, true, nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.Child.Close() }

// MapOp implements α with a compiled body.
type MapOp struct {
	Child Operator
	Var   string
	Body  Scalar

	ctx *Ctx
}

// Open opens the child.
func (m *MapOp) Open(ctx *Ctx) error { m.ctx = ctx; return m.Child.Open(ctx) }

// Next yields the image of the next row.
func (m *MapOp) Next() (value.Value, bool, error) {
	row, ok, err := m.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	v, err := m.Body.Eval(m.ctx, row)
	if err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// Close closes the child.
func (m *MapOp) Close() error { return m.Child.Close() }

// LetOp implements a with-binding: the (typically constant) value expression
// is evaluated once at Open and bound into the environment the child's
// scalars see — the physical form of "uncorrelated subqueries are constants"
// (§3).
type LetOp struct {
	Var   string
	Val   adl.Expr
	Child Operator
}

// Open evaluates the binding and opens the child under the extended
// environment.
func (l *LetOp) Open(ctx *Ctx) error {
	v, err := eval.Eval(l.Val, ctx.Env, ctx.DB)
	if err != nil {
		return err
	}
	child := &Ctx{DB: ctx.DB, Env: ctx.Env.Bind(l.Var, v)}
	return l.Child.Open(child)
}

// Next forwards to the child.
func (l *LetOp) Next() (value.Value, bool, error) { return l.Child.Next() }

// Close closes the child.
func (l *LetOp) Close() error { return l.Child.Close() }

// ProjectOp implements π.
type ProjectOp struct {
	Child Operator
	Attrs []string
}

// Open opens the child.
func (p *ProjectOp) Open(ctx *Ctx) error { return p.Child.Open(ctx) }

// Next yields the projection of the next row.
func (p *ProjectOp) Next() (value.Value, bool, error) {
	row, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	t, err := asTuple(row, "π")
	if err != nil {
		return nil, false, err
	}
	sub, err := t.Subscript(p.Attrs)
	if err != nil {
		return nil, false, err
	}
	return sub, true, nil
}

// Close closes the child.
func (p *ProjectOp) Close() error { return p.Child.Close() }
