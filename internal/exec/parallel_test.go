package exec

import (
	"errors"
	"testing"

	"repro/internal/adl"
	"repro/internal/value"
)

// TestPartitionedHashJoinAgainstSerial cross-validates the parallel
// partitioned join against the serial HashJoin (and thereby the interpreter
// oracle, via TestJoinOperatorsAgainstOracle) for every join kind over
// randomized inputs and several partition counts, including more partitions
// than rows.
func TestPartitionedHashJoinAgainstSerial(t *testing.T) {
	kinds := []struct {
		kind adl.JoinKind
		as   string
	}{
		{adl.Inner, ""}, {adl.Semi, ""}, {adl.Anti, ""}, {adl.NestJ, "ys"}, {adl.Outer, ""},
	}
	for seed := int64(1); seed <= 4; seed++ {
		d := db(seed, 40, 30)
		for _, k := range kinds {
			want := evalRef(t, logicalJoin(k.kind, k.as, nil), d)
			for _, parts := range []int{0, 1, 3, 64} {
				pj := &PartitionedHashJoin{Kind: k.kind,
					L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
					LVar: "x", RVar: "y",
					LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
					RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
					As:   k.as, Partitions: parts}
				if got := collect(t, pj, d); !value.Equal(got, want) {
					t.Errorf("seed %d PartitionedHashJoin(%d) %v: got %v want %v",
						seed, parts, k.kind, got, want)
				}
			}
		}
	}
}

// TestPartitionedHashJoinResidualAndRFun checks the residual predicate and
// the nestjoin right-tuple function in the parallel join.
func TestPartitionedHashJoinResidualAndRFun(t *testing.T) {
	d := db(7, 30, 25)

	resExpr := adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "c"))
	logical := &adl.Join{Kind: adl.Inner, LVar: "x", RVar: "y",
		On: adl.AndE(joinPred(), resExpr), L: adl.T("L"), R: adl.T("R")}
	want := evalRef(t, logical, d)
	res := NewScalar(resExpr, "x", "y")
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey:     NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey:     NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		Residual: &res, Partitions: 4}
	if got := collect(t, pj, d); !value.Equal(got, want) {
		t.Errorf("residual: got %v want %v", got, want)
	}

	rfunExpr := adl.Dot(adl.V("y"), "c")
	want = evalRef(t, logicalJoin(adl.NestJ, "cs", rfunExpr), d)
	rfun := NewScalar(rfunExpr, "x", "y")
	pj = &PartitionedHashJoin{Kind: adl.NestJ,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"),
		As:   "cs", RFun: &rfun, Partitions: 4}
	if got := collect(t, pj, d); !value.Equal(got, want) {
		t.Errorf("nestjoin rfun: got %v want %v", got, want)
	}
}

// TestPartitionedHashJoinEmptyInputs exercises the degenerate shapes.
func TestPartitionedHashJoinEmptyInputs(t *testing.T) {
	d := db(3, 10, 8)
	empty := &SetScan{Set: value.EmptySet()}
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: empty, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
	if got := collect(t, pj, d); got.Len() != 0 {
		t.Errorf("empty left: got %v", got)
	}
	pj = &PartitionedHashJoin{Kind: adl.Anti,
		L: &Scan{Table: "L"}, R: &SetScan{Set: value.EmptySet()},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
	lt, _ := d.Table("L")
	if got := collect(t, pj, d); got.Len() != lt.Len() {
		t.Errorf("anti join with empty right should keep all left rows, got %d", got.Len())
	}
}

// TestParallelMapFilterAgainstSerial cross-validates the worker-pool σ/α
// wrappers against their serial counterparts over randomized inputs.
func TestParallelMapFilterAgainstSerial(t *testing.T) {
	pred := adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "b"), adl.C(value.Int(4)))
	body := adl.Tup("s", adl.Dot(adl.V("x"), "b"))
	for seed := int64(1); seed <= 4; seed++ {
		d := db(seed, 50, 10)
		for _, workers := range []int{0, 1, 7} {
			want := collect(t, &Filter{Child: &Scan{Table: "L"}, Var: "x",
				Pred: NewScalar(pred, "x")}, d)
			got := collect(t, &ParallelFilter{Child: &Scan{Table: "L"}, Var: "x",
				Pred: NewScalar(pred, "x"), Workers: workers}, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d ParallelFilter(%d): got %v want %v", seed, workers, got, want)
			}

			want = collect(t, &MapOp{Child: &Scan{Table: "L"}, Var: "x",
				Body: NewScalar(body, "x")}, d)
			got = collect(t, &ParallelMap{Child: &Scan{Table: "L"}, Var: "x",
				Body: NewScalar(body, "x"), Workers: workers}, d)
			if !value.Equal(got, want) {
				t.Errorf("seed %d ParallelMap(%d): got %v want %v", seed, workers, got, want)
			}
		}
	}
}

// errAfter yields n rows and then fails, for error-propagation tests.
type errAfter struct {
	n   int
	pos int
}

func (e *errAfter) Open(*Ctx) error { e.pos = 0; return nil }
func (e *errAfter) Next() (value.Value, bool, error) {
	if e.pos >= e.n {
		return nil, false, errors.New("child exploded")
	}
	e.pos++
	return value.NewTuple("b", value.Int(int64(e.pos))), true, nil
}
func (e *errAfter) Close() error { return nil }

// TestParallelErrorPropagation checks that errors from children and from
// scalar evaluation surface through Next and that Close does not hang.
func TestParallelErrorPropagation(t *testing.T) {
	d := db(5, 20, 10)

	// Child error in the feeder.
	pf := &ParallelFilter{Child: &errAfter{n: 5}, Var: "x",
		Pred: NewScalar(adl.CBool(true), "x"), Workers: 3}
	if _, err := Collect(pf, &Ctx{DB: d}); err == nil {
		t.Error("ParallelFilter should surface child error")
	}

	// Predicate error in a worker (field access on missing attribute).
	pf = &ParallelFilter{Child: &Scan{Table: "L"}, Var: "x",
		Pred:    NewScalar(adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "nope"), adl.C(value.Int(1))), "x"),
		Workers: 3}
	if _, err := Collect(pf, &Ctx{DB: d}); err == nil {
		t.Error("ParallelFilter should surface predicate error")
	}

	// Key error in the parallel join's partitioning phase.
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "nope"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 4}
	if _, err := Collect(pj, &Ctx{DB: d}); err == nil {
		t.Error("PartitionedHashJoin should surface key error")
	}
}

// TestParallelEarlyClose closes parallel operators mid-stream; the workers
// must unwind without deadlocking (the test would time out otherwise).
func TestParallelEarlyClose(t *testing.T) {
	d := db(11, 3000, 100)
	ctx := &Ctx{DB: d}
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 8}
	if err := pj.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pj.Next(); err != nil {
		t.Fatal(err)
	}
	if err := pj.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pj.Close(); err != nil { // Close is idempotent
		t.Fatal(err)
	}

	pm := &ParallelMap{Child: &Scan{Table: "L"}, Var: "x",
		Body: NewScalar(adl.Dot(adl.V("x"), "b"), "x"), Workers: 4}
	if err := pm.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pm.Next(); err != nil {
		t.Fatal(err)
	}
	if err := pm.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelReopen re-runs one operator instance several times, as the
// benchmark harness does via Collect per iteration.
func TestParallelReopen(t *testing.T) {
	d := db(13, 60, 40)
	pj := &PartitionedHashJoin{Kind: adl.Semi,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 4}
	want := collect(t, pj, d)
	for i := 0; i < 3; i++ {
		if got := collect(t, pj, d); !value.Equal(got, want) {
			t.Fatalf("reopen %d: got %v want %v", i, got, want)
		}
	}
}

// TestParallelismResolution pins the knob semantics: positive passes
// through, zero and negative mean NumCPU.
func TestParallelismResolution(t *testing.T) {
	if got := Parallelism(5); got != 5 {
		t.Errorf("Parallelism(5) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Errorf("Parallelism(0) = %d", got)
	}
	if got := Parallelism(-1); got < 1 {
		t.Errorf("Parallelism(-1) = %d", got)
	}
}

// TestEvalKeysChunking checks the parallel key evaluation helper across
// worker counts and row counts, including workers > rows.
func TestEvalKeysChunking(t *testing.T) {
	d := db(17, 33, 5)
	ctx := &Ctx{DB: d}
	lt, _ := d.Table("L")
	rows := lt.Elems()
	key := NewScalar(adl.Dot(adl.V("x"), "b"), "x")
	want, err := evalKeys(ctx, rows, key, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 100} {
		got, err := evalKeys(ctx, rows, key, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !value.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d key %d: %v != %v", w, i, got[i], want[i])
			}
		}
	}
	if _, err := evalKeys(ctx, nil, key, 4); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPartitionedVsSerialHashJoin is the in-package microbenchmark pair
// (the root bench_test.go carries the workload-level pairs).
func BenchmarkPartitionedVsSerialHashJoin(b *testing.B) {
	d := db(21, 20000, 20000)
	ctx := &Ctx{DB: d}
	mk := map[string]func() Operator{
		"serial": func() Operator {
			return &HashJoin{Kind: adl.Inner, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
				LVar: "x", RVar: "y",
				LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
				RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
		},
		"parallel": func() Operator {
			return &PartitionedHashJoin{Kind: adl.Inner, L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
				LVar: "x", RVar: "y",
				LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
				RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}
		},
	}
	for _, name := range []string{"serial", "parallel"} {
		op := mk[name]()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Collect(op, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// closeErr yields n rows and then fails on Close, for teardown-error tests.
type closeErr struct {
	n   int
	pos int
}

var errTeardown = errors.New("teardown failed")

func (e *closeErr) Open(*Ctx) error { e.pos = 0; return nil }
func (e *closeErr) Next() (value.Value, bool, error) {
	if e.pos >= e.n {
		return nil, false, nil
	}
	e.pos++
	return value.NewTuple("d", value.Int(int64(e.pos%4)), "c", value.Int(int64(e.pos))), true, nil
}
func (e *closeErr) Close() error { return errTeardown }

// TestParallelCloseErrorPropagation checks Close errors surface instead of
// vanishing into the merge machinery: a build side failing on teardown
// fails the join's Open (drain semantics), and a child failing on teardown
// fails the parallel map's Close.
func TestParallelCloseErrorPropagation(t *testing.T) {
	d := db(19, 20, 10)
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &closeErr{n: 8},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 3}
	if _, err := Collect(pj, &Ctx{DB: d}); !errors.Is(err, errTeardown) {
		t.Errorf("build-side Close error lost: got %v", err)
	}

	pm := &ParallelMap{Child: &closeErr{n: 8}, Var: "x",
		Body: NewScalar(adl.Dot(adl.V("x"), "c"), "x"), Workers: 3}
	if _, err := Collect(pm, &Ctx{DB: d}); !errors.Is(err, errTeardown) {
		t.Errorf("ParallelMap child Close error lost: got %v", err)
	}
}

// TestPartitionedHashJoinSinglePartition pins the Partitions=1 degeneracy:
// one worker, one partition, still identical to the serial join for every
// kind.
func TestPartitionedHashJoinSinglePartition(t *testing.T) {
	d := db(23, 50, 30)
	for _, kind := range []adl.JoinKind{adl.Inner, adl.Semi, adl.Anti, adl.Outer, adl.NestJ} {
		as := ""
		if kind == adl.NestJ {
			as = "ys"
		}
		want := collect(t, &HashJoin{Kind: kind,
			L: &Scan{Table: "L"}, R: &Scan{Table: "R"}, LVar: "x", RVar: "y",
			LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
			RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), As: as}, d)
		got := collect(t, &PartitionedHashJoin{Kind: kind,
			L: &Scan{Table: "L"}, R: &Scan{Table: "R"}, LVar: "x", RVar: "y",
			LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
			RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), As: as, Partitions: 1}, d)
		if !value.Equal(got, want) {
			t.Errorf("%v: got %v want %v", kind, got, want)
		}
	}
}

// TestParallelCancelMidPartition opens a join whose output far exceeds the
// merge buffer, closes it while workers are parked on the full channel,
// then reopens the same instance and checks full equivalence — cancellation
// must not corrupt operator state.
func TestParallelCancelMidPartition(t *testing.T) {
	d := db(29, 4000, 200)
	ctx := &Ctx{DB: d}
	pj := &PartitionedHashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"},
		LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y"), Partitions: 4}
	if err := pj.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// No Next at all: every worker still mid-partition when Close lands.
	if err := pj.Close(); err != nil {
		t.Fatal(err)
	}
	want := collect(t, &HashJoin{Kind: adl.Inner,
		L: &Scan{Table: "L"}, R: &Scan{Table: "R"}, LVar: "x", RVar: "y",
		LKey: NewScalar(adl.Dot(adl.V("x"), "b"), "x"),
		RKey: NewScalar(adl.Dot(adl.V("y"), "d"), "y")}, d)
	if got := collect(t, pj, d); !value.Equal(got, want) {
		t.Fatal("post-cancel reopen diverged from serial join")
	}
}
