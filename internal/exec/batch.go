// Batch execution mode. The scalar operators in this package hand rows up
// one value.Value at a time, paying an environment binding and an
// interpreter dispatch per row; the vectorized operators below move batches:
// a columnar projection of an extent (col.Proj — each referenced attribute
// decoded once into a typed slice) plus a selection vector of row indices.
// Filters narrow the selection in place, joins probe flat hash tables of
// typed keys, and the buffers (selection vectors, key slices, hash tables)
// are reused across batches, so steady-state execution allocates near zero.
//
// The scalar operators remain the reference semantics: every vectorized
// fast path either reproduces the scalar result exactly or falls back to
// row-wise evaluation through the same interpreter (Mixed columns,
// untypeable keys), and the differential harness asserts scalar ≡
// vectorized on randomized queries.
package exec

import (
	"repro/internal/col"
	"repro/internal/value"
)

// DefaultBatchSize is the fallback batch size when an operator was built
// without one; the planner normally derives it from plan.Config.
const DefaultBatchSize = 1024

// Batch is a view over a columnar projection: Sel lists the visible row
// indices, in order. A batch is only valid until the producer's next
// NextBatch call — consumers must not retain Sel.
type Batch struct {
	Proj *col.Proj
	Sel  []int32
}

// VecOp is a batch-at-a-time operator. The method names are disjoint from
// Operator's so one struct can implement both deliberately, never by
// accident.
type VecOp interface {
	// OpenVec prepares the pipeline.
	OpenVec(ctx *Ctx) error
	// NextBatch returns the next batch; ok is false at end of stream.
	NextBatch() (b Batch, ok bool, err error)
	// CloseVec releases buffers. Idempotent.
	CloseVec() error
}

// ColumnarDB is the optional storage capability the batch scan prefers: a
// provider that serves snapshot-pinned columnar projections directly
// (storage.Store and storage.Snapshot implement it). Providers without it
// fall back to Table plus an in-executor decode.
type ColumnarDB interface {
	ColProj(extent string, attrs []string) (*col.Proj, error)
}

// SetCollector is implemented by operators that can materialize their whole
// result set in one step, cheaper than the generic Open/Next/Add loop.
// Collect uses it when present.
type SetCollector interface {
	Operator
	CollectSet(ctx *Ctx) (*value.Set, error)
}

// VecAdapter bridges a batch pipeline into the row-at-a-time Operator tree:
// as an Operator it drains batches and hands the underlying tuples up one
// at a time; as a SetCollector it materializes the whole result with a bulk
// set build. Project, when set, applies π over the named attributes during
// materialization (the batch pipeline itself never rewrites tuples).
type VecAdapter struct {
	Src     VecOp
	Project []string

	rows []value.Value
	pos  int
}

// Open drains the batch pipeline eagerly (results are bounded by the
// inputs, like the eager scalar joins).
func (a *VecAdapter) Open(ctx *Ctx) error {
	rows, err := a.drainVec(ctx)
	if err != nil {
		return err
	}
	a.rows, a.pos = rows, 0
	return nil
}

// drainVec materializes the pipeline's rows, applying the projection.
func (a *VecAdapter) drainVec(ctx *Ctx) (_ []value.Value, err error) {
	if err := a.Src.OpenVec(ctx); err != nil {
		return nil, err
	}
	defer func() {
		if cerr := a.Src.CloseVec(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	rows := a.rows[:0]
	for {
		b, ok, err := a.Src.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		for _, i := range b.Sel {
			row := b.Proj.Rows[i]
			if a.Project != nil {
				t, err := asTuple(row, "π")
				if err != nil {
					return nil, err
				}
				if row, err = t.Subscript(a.Project); err != nil {
					return nil, err
				}
			}
			rows = append(rows, row)
		}
	}
}

// Next yields the next materialized row.
func (a *VecAdapter) Next() (value.Value, bool, error) {
	if a.pos >= len(a.rows) {
		return nil, false, nil
	}
	row := a.rows[a.pos]
	a.pos++
	return row, true, nil
}

// Close releases the row buffer.
func (a *VecAdapter) Close() error { a.rows = nil; return nil }

// CollectSet materializes the pipeline straight into a set with the bulk
// constructor — one hash pass, a handful of allocations, no per-row Add.
func (a *VecAdapter) CollectSet(ctx *Ctx) (*value.Set, error) {
	rows, err := a.drainVec(ctx)
	if err != nil {
		return nil, err
	}
	a.rows = rows[:0] // keep the buffer for the next execution of this clone
	return value.NewSetFromSlice(rows), nil
}
