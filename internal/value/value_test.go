package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtomEquality(t *testing.T) {
	cases := []struct {
		a, b Value
		eq   bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // strong typing: no cross-kind equality
		{String("red"), String("red"), true},
		{String("red"), String("blue"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Date(940101), Date(940101), true},
		{Date(940101), Date(940102), false},
		{OID(7), OID(7), true},
		{OID(7), OID(8), false},
		{Null{}, Null{}, true},
		{Null{}, Int(0), false},
		{Float(2.5), Float(2.5), true},
	}
	for _, c := range cases {
		if got := Equal(c.a, c.b); got != c.eq {
			t.Errorf("Equal(%v, %v) = %v, want %v", c.a, c.b, got, c.eq)
		}
		if c.eq && Hash(c.a) != Hash(c.b) {
			t.Errorf("Hash(%v) != Hash(%v) for equal values", c.a, c.b)
		}
		if c.eq != (Compare(c.a, c.b) == 0) {
			t.Errorf("Compare(%v, %v) inconsistent with Equal", c.a, c.b)
		}
	}
}

func TestTupleFieldOrderInsensitive(t *testing.T) {
	a := NewTuple("a", Int(1), "b", String("x"))
	b := NewTuple("b", String("x"), "a", Int(1))
	if !Equal(a, b) {
		t.Fatalf("tuples with same fields in different order must be equal: %v vs %v", a, b)
	}
	if Hash(a) != Hash(b) {
		t.Fatalf("hashes of equal tuples differ")
	}
	if Compare(a, b) != 0 {
		t.Fatalf("compare of equal tuples nonzero")
	}
}

func TestTupleAccessors(t *testing.T) {
	tp := NewTuple("a", Int(1), "c", NewSet(Int(1), Int(2)))
	if tp.Len() != 2 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if v, ok := tp.Get("a"); !ok || !Equal(v, Int(1)) {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("zzz"); ok {
		t.Fatalf("Get(zzz) should miss")
	}
	if !tp.Has("c") || tp.Has("d") {
		t.Fatalf("Has misbehaves")
	}
	name, v := tp.At(0)
	if name != "a" || !Equal(v, Int(1)) {
		t.Fatalf("At(0) = %s, %v", name, v)
	}
}

func TestTupleDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on duplicate attribute")
		}
	}()
	NewTuple("a", Int(1), "a", Int(2))
}

func TestTupleConcat(t *testing.T) {
	a := NewTuple("a", Int(1))
	b := NewTuple("b", Int(2))
	ab, err := a.Concat(b)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if !Equal(ab, NewTuple("a", Int(1), "b", Int(2))) {
		t.Fatalf("Concat = %v", ab)
	}
	if _, err := ab.Concat(a); err == nil {
		t.Fatalf("expected conflict error on overlapping concat")
	}
}

func TestTupleSubscriptDropExcept(t *testing.T) {
	tp := NewTuple("a", Int(1), "b", Int(2), "c", Int(3))
	sub, err := tp.Subscript([]string{"c", "a"})
	if err != nil {
		t.Fatalf("Subscript: %v", err)
	}
	if !Equal(sub, NewTuple("a", Int(1), "c", Int(3))) {
		t.Fatalf("Subscript = %v", sub)
	}
	if _, err := tp.Subscript([]string{"zzz"}); err == nil {
		t.Fatalf("expected error for missing attribute")
	}
	if d := tp.Drop([]string{"b"}); !Equal(d, NewTuple("a", Int(1), "c", Int(3))) {
		t.Fatalf("Drop = %v", d)
	}
	// Paper semantics rule 3: update existing, keep others, extend with new.
	up := tp.Except(NewTuple("b", Int(20), "d", Int(4)))
	if !Equal(up, NewTuple("a", Int(1), "b", Int(20), "c", Int(3), "d", Int(4))) {
		t.Fatalf("Except = %v", up)
	}
	// Except must not mutate the original.
	if !Equal(tp, NewTuple("a", Int(1), "b", Int(2), "c", Int(3))) {
		t.Fatalf("Except mutated receiver: %v", tp)
	}
}

func TestSetDeduplication(t *testing.T) {
	s := NewSet(Int(1), Int(2), Int(1), Int(2), Int(3))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Deep duplicates: equal tuples collapse.
	s2 := NewSet(NewTuple("a", Int(1)), NewTuple("a", Int(1)))
	if s2.Len() != 1 {
		t.Fatalf("deep dedup failed: %v", s2)
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(Int(1), Int(2), Int(3))
	b := NewSet(Int(2), Int(3), Int(4))
	if got := a.Union(b); got.Len() != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b); !Equal(got, NewSet(Int(2), Int(3))) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Diff(b); !Equal(got, NewSet(Int(1))) {
		t.Fatalf("Diff = %v", got)
	}
	if !NewSet(Int(1)).SubsetOf(a) || a.SubsetOf(b) {
		t.Fatalf("SubsetOf misbehaves")
	}
	if !NewSet(Int(1)).ProperSubsetOf(a) || a.ProperSubsetOf(a) {
		t.Fatalf("ProperSubsetOf misbehaves")
	}
	if !a.Contains(Int(2)) || a.Contains(Int(9)) {
		t.Fatalf("Contains misbehaves")
	}
	// The empty set is a subset, but not a proper superset, of itself.
	e := EmptySet()
	if !e.SubsetOf(e) || e.ProperSubsetOf(e) {
		t.Fatalf("empty set inclusion misbehaves")
	}
}

func TestSetFlatten(t *testing.T) {
	s := NewSet(NewSet(Int(1), Int(2)), NewSet(Int(2), Int(3)), EmptySet())
	f, err := s.Flatten()
	if err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if !Equal(f, NewSet(Int(1), Int(2), Int(3))) {
		t.Fatalf("Flatten = %v", f)
	}
	if _, err := NewSet(Int(1)).Flatten(); err == nil {
		t.Fatalf("Flatten of non-set elements must error")
	}
}

func TestSetOrderInsensitiveEquality(t *testing.T) {
	a := NewSet(Int(1), Int(2), Int(3))
	b := NewSet(Int(3), Int(1), Int(2))
	if !Equal(a, b) || Hash(a) != Hash(b) || Compare(a, b) != 0 {
		t.Fatalf("sets differing only in insertion order must be identical")
	}
}

func TestStringRendering(t *testing.T) {
	tp := NewTuple("a", Int(2), "c", EmptySet())
	if got := tp.String(); got != "(a=2, c={})" {
		t.Errorf("tuple String = %q", got)
	}
	s := NewSet(Int(3), Int(1), Int(2))
	if got := s.String(); got != "{1, 2, 3}" {
		t.Errorf("set String = %q (must be canonically sorted)", got)
	}
	if got := Date(940101).String(); got != "d940101" {
		t.Errorf("date String = %q", got)
	}
	if got := OID(12).String(); got != "@12" {
		t.Errorf("oid String = %q", got)
	}
	if got := String("red").String(); got != `"red"` {
		t.Errorf("string String = %q", got)
	}
}

// randomValue builds a random value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Int(r.Intn(10))
		case 1:
			return String([]string{"a", "b", "c"}[r.Intn(3)])
		case 2:
			return Bool(r.Intn(2) == 0)
		default:
			return OID(r.Intn(8))
		}
	}
	switch r.Intn(6) {
	case 0:
		n := r.Intn(4)
		s := EmptySet()
		for i := 0; i < n; i++ {
			s.Add(randomValue(r, depth-1))
		}
		return s
	case 1:
		t := EmptyTuple()
		for i, name := range []string{"a", "b", "c"}[:r.Intn(3)+1] {
			_ = i
			t = t.With(name, randomValue(r, depth-1))
		}
		return t
	default:
		return randomValue(r, 0)
	}
}

func TestEqualityPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	// Reflexivity, symmetry, hash consistency, compare consistency.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomValue(r, 3)
		b := randomValue(r, 3)
		if !Equal(a, a) || Compare(a, a) != 0 {
			return false
		}
		if Equal(a, b) != Equal(b, a) {
			return false
		}
		if Equal(a, b) && Hash(a) != Hash(b) {
			return false
		}
		if Equal(a, b) != (Compare(a, b) == 0) {
			return false
		}
		// Antisymmetry of Compare.
		return Compare(a, b) == -Compare(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSetAlgebraPropertiesQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Set {
			s := EmptySet()
			for i := 0; i < r.Intn(8); i++ {
				s.Add(randomValue(r, 1))
			}
			return s
		}
		a, b := mk(), mk()
		u, i, d := a.Union(b), a.Intersect(b), a.Diff(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Len() != a.Len()+b.Len()-i.Len() {
			return false
		}
		// A−B ⊆ A, A∩B ⊆ A, A ⊆ A∪B
		if !d.SubsetOf(a) || !i.SubsetOf(a) || !a.SubsetOf(u) {
			return false
		}
		// (A−B) ∪ (A∩B) = A
		if !Equal(d.Union(i), a) {
			return false
		}
		// Union commutes.
		return Equal(u, b.Union(a))
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTruth(t *testing.T) {
	if !Truth(Bool(true)) || Truth(Bool(false)) || Truth(Int(1)) || Truth(Null{}) {
		t.Fatalf("Truth misbehaves")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Int(5), Float(2.5), String("red"), Bool(true), Date(940101), OID(12), Null{},
		NewTuple("a", Int(1), "c", NewSet(Int(1), Int(2))),
		NewSet(NewTuple("pid", OID(3)), NewTuple("pid", OID(4))),
		EmptySet(),
		EmptyTuple(),
		NewSet(NewSet(Int(1)), EmptySet()), // set of sets
	}
	for _, v := range vals {
		data, err := EncodeJSON(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := DecodeJSON(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if !Equal(v, back) {
			t.Errorf("round trip changed %v into %v", v, back)
		}
	}
}

func TestJSONRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 3)
		data, err := EncodeJSON(v)
		if err != nil {
			return false
		}
		back, err := DecodeJSON(data)
		if err != nil {
			return false
		}
		return Equal(v, back)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	for name, src := range map[string]string{
		"garbage":   `zzz`,
		"two tags":  `{"int":1,"str":"x"}`,
		"bad tag":   `{"frob":1}`,
		"bad tuple": `{"tuple":[["a"]]}`,
		"dup field": `{"tuple":[["a",{"int":1}],["a",{"int":2}]]}`,
		"bad int":   `{"int":"x"}`,
		"bad set":   `{"set":{"a":1}}`,
	} {
		if _, err := DecodeJSON([]byte(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJSONCanonicalSets(t *testing.T) {
	// Equal sets built in different orders encode identically.
	a := NewSet(Int(1), Int(2), Int(3))
	b := NewSet(Int(3), Int(1), Int(2))
	ea, _ := EncodeJSON(a)
	eb, _ := EncodeJSON(b)
	if string(ea) != string(eb) {
		t.Errorf("set encodings differ:\n %s\n %s", ea, eb)
	}
}

func TestSetCloneIndependence(t *testing.T) {
	orig := NewSet(Int(1), Int(2), Int(3))
	c := orig.Clone()
	if c == orig || c.Len() != 3 {
		t.Fatalf("clone = %v", c)
	}
	// Growing the clone must never write into storage shared with the
	// original: concurrent readers of the original rely on this.
	for i := 4; i <= 64; i++ {
		c.Add(Int(int64(i)))
	}
	if orig.Len() != 3 {
		t.Fatalf("original grew to %d elements", orig.Len())
	}
	for _, v := range []Value{Int(1), Int(2), Int(3)} {
		if !orig.Contains(v) || !c.Contains(v) {
			t.Fatalf("element %v lost", v)
		}
	}
	if orig.Contains(Int(10)) {
		t.Fatalf("original sees the clone's additions")
	}
	if !c.Contains(Int(64)) {
		t.Fatalf("clone lost its own addition")
	}
}
