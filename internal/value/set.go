package value

import (
	"sort"
	"strings"
	"sync"
)

// Set is a finite set value built with the paper's { } constructor. Element
// order is insignificant; duplicates are eliminated on insertion using deep
// equality. A Set must not be mutated after it has been shared.
type Set struct {
	elems []Value
	// index maps element hash to the positions of elements with that hash,
	// making insertion near O(1) even for large extents.
	index map[uint64][]int
}

// Kind reports KindSet.
func (*Set) Kind() Kind { return KindSet }

// NewSet builds a set from the given elements, eliminating duplicates.
func NewSet(elems ...Value) *Set {
	s := NewSetCap(len(elems))
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// NewSetCap returns an empty set with capacity for n elements.
func NewSetCap(n int) *Set {
	return &Set{
		elems: make([]Value, 0, n),
		index: make(map[uint64][]int, n),
	}
}

// EmptySet returns a new empty set.
func EmptySet() *Set { return NewSetCap(0) }

// setScratch is the transient state of the bulk set builders: the element
// hash slice and the per-hash bucket counts. Neither escapes into the
// returned Set, so pooling them drops the fixed allocation floor a small
// query pays per result-set materialization.
type setScratch struct {
	hashes []uint64
	counts map[uint64]int32
}

var setScratchPool = sync.Pool{
	New: func() any { return &setScratch{counts: make(map[uint64]int32, 64)} },
}

// hashBuf returns the scratch hash slice sized to n.
func (sc *setScratch) hashBuf(n int) []uint64 {
	if cap(sc.hashes) < n {
		sc.hashes = make([]uint64, n)
	}
	return sc.hashes[:n]
}

// release clears the bucket counts and returns the scratch to the pool.
func (sc *setScratch) release() {
	clear(sc.counts)
	setScratchPool.Put(sc)
}

// NewSetFromSlice builds a set from elems with full duplicate elimination
// (same semantics as repeated Add) but a constant number of allocations:
// element hashes are computed once into a pooled scratch slice, per-hash
// bucket sizes are counted up front, and every index bucket is carved out of
// one shared arena instead of growing through per-bucket appends. The batch
// executor uses it to materialize result sets without Add's per-element
// allocation cost; elems is not retained.
func NewSetFromSlice(elems []Value) *Set {
	n := len(elems)
	if n == 0 {
		return EmptySet()
	}
	sc := setScratchPool.Get().(*setScratch)
	hashes := sc.hashBuf(n)
	for i, e := range elems {
		h := Hash(e)
		hashes[i] = h
		sc.counts[h]++
	}
	s := newSetHashed(elems, hashes, sc.counts)
	sc.release()
	return s
}

// NewSetFromSliceHashed is NewSetFromSlice for callers that already hold
// each element's Hash — the parallel batch operators compute hashes inside
// their workers so the serial set build no longer pays the deep-hash pass.
// hashes[i] must equal Hash(elems[i]); neither slice is retained.
func NewSetFromSliceHashed(elems []Value, hashes []uint64) *Set {
	n := len(elems)
	if n == 0 {
		return EmptySet()
	}
	sc := setScratchPool.Get().(*setScratch)
	for _, h := range hashes[:n] {
		sc.counts[h]++
	}
	s := newSetHashed(elems, hashes, sc.counts)
	sc.release()
	return s
}

// newSetHashed is the shared core of the bulk builders: counts must hold the
// number of occurrences of every hash in hashes[:len(elems)].
func newSetHashed(elems []Value, hashes []uint64, counts map[uint64]int32) *Set {
	n := len(elems)
	s := &Set{elems: make([]Value, 0, n), index: make(map[uint64][]int, n)}
	arena := make([]int, n)
	off := 0
next:
	for i, e := range elems {
		h := hashes[i]
		bucket, seen := s.index[h]
		for _, j := range bucket {
			if Equal(s.elems[j], e) {
				continue next
			}
		}
		if !seen {
			// First element with this hash: reserve capacity for every
			// candidate that hashes here (duplicates overcount harmlessly),
			// so the appends below never leave the arena.
			c := int(counts[h])
			bucket = arena[off : off : off+c]
			off += c
		}
		s.index[h] = append(bucket, len(s.elems))
		s.elems = append(s.elems, e)
	}
	return s
}

// Add inserts v unless an equal element is already present. It reports
// whether the set grew. Add must only be called while the set is being
// built, before it is shared.
func (s *Set) Add(v Value) bool {
	h := Hash(v)
	if s.index == nil {
		s.index = make(map[uint64][]int)
	}
	for _, i := range s.index[h] {
		if Equal(s.elems[i], v) {
			return false
		}
	}
	s.index[h] = append(s.index[h], len(s.elems))
	s.elems = append(s.elems, v)
	return true
}

// Clone returns an independent copy of the set sharing only the (immutable)
// element values. Backing arrays are allocated exactly, so growing the clone
// never writes into storage shared with the original — the original may keep
// being read concurrently while the clone is extended. This is what the
// storage layer's copy-on-write extent materialization builds new versions
// from without rehashing every element.
func (s *Set) Clone() *Set {
	c := &Set{elems: make([]Value, len(s.elems))}
	copy(c.elems, s.elems)
	if s.index != nil {
		c.index = make(map[uint64][]int, len(s.index))
		for h, idx := range s.index {
			cp := make([]int, len(idx))
			copy(cp, idx)
			c.index[h] = cp
		}
	}
	return c
}

// AddAll inserts every element of t into s.
func (s *Set) AddAll(t *Set) {
	for _, e := range t.elems {
		s.Add(e)
	}
}

// Len reports the cardinality of the set.
func (s *Set) Len() int { return len(s.elems) }

// Elems returns the elements in insertion order. The slice is shared; callers
// must not modify it.
func (s *Set) Elems() []Value { return s.elems }

// Contains reports whether an element equal to v is in the set.
func (s *Set) Contains(v Value) bool {
	h := Hash(v)
	for _, i := range s.index[h] {
		if Equal(s.elems[i], v) {
			return true
		}
	}
	return false
}

// SubsetOf reports s ⊆ t.
func (s *Set) SubsetOf(t *Set) bool {
	if s.Len() > t.Len() {
		return false
	}
	for _, e := range s.elems {
		if !t.Contains(e) {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports s ⊂ t.
func (s *Set) ProperSubsetOf(t *Set) bool {
	return s.Len() < t.Len() && s.SubsetOf(t)
}

// Union returns s ∪ t as a fresh set.
func (s *Set) Union(t *Set) *Set {
	r := NewSetCap(s.Len() + t.Len())
	r.AddAll(s)
	r.AddAll(t)
	return r
}

// Intersect returns s ∩ t as a fresh set.
func (s *Set) Intersect(t *Set) *Set {
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	r := NewSetCap(small.Len())
	for _, e := range small.elems {
		if big.Contains(e) {
			r.Add(e)
		}
	}
	return r
}

// Diff returns s − t as a fresh set.
func (s *Set) Diff(t *Set) *Set {
	r := NewSetCap(s.Len())
	for _, e := range s.elems {
		if !t.Contains(e) {
			r.Add(e)
		}
	}
	return r
}

// Flatten implements the paper's multiple union ∪(e) (semantics rule 1):
// the union of all elements of s, each of which must itself be a set.
func (s *Set) Flatten() (*Set, error) {
	r := NewSetCap(s.Len())
	for _, e := range s.elems {
		inner, ok := e.(*Set)
		if !ok {
			return nil, &KindError{Op: "flatten", Want: KindSet, Got: e.Kind()}
		}
		r.AddAll(inner)
	}
	return r, nil
}

// Sorted returns the elements in the canonical total order of Compare.
// The receiver is unchanged.
func (s *Set) Sorted() []Value {
	out := append(make([]Value, 0, len(s.elems)), s.elems...)
	sort.Slice(out, func(i, j int) bool { return Compare(out[i], out[j]) < 0 })
	return out
}

func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	b.WriteString(joinStrings(s.Sorted()))
	b.WriteByte('}')
	return b.String()
}

// KindError reports an operation applied to a value of the wrong kind.
type KindError struct {
	Op   string
	Want Kind
	Got  Kind
}

func (e *KindError) Error() string {
	return "value: " + e.Op + ": want " + e.Want.String() + ", got " + e.Got.String()
}
