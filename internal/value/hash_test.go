package value

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
)

// refHash is the original hash/fnv-based implementation, kept verbatim as
// the reference: the hand-rolled FNV-1a in compare.go must produce the same
// 64-bit values, bit for bit, or every persisted hash-keyed structure
// (set indexes, materialization cache) would silently mismatch.
func refHash(v Value) uint64 {
	switch av := v.(type) {
	case Null:
		return 0x9e3779b97f4a7c15
	case Bool:
		if av {
			return 0xff51afd7ed558ccd
		}
		return 0xc4ceb9fe1a85ec53
	case Int:
		return refScalar(byte(KindInt), uint64(av))
	case Float:
		return refScalar(byte(KindFloat), math.Float64bits(float64(av)))
	case String:
		h := fnv.New64a()
		h.Write([]byte{byte(KindString)})
		h.Write([]byte(av))
		return h.Sum64()
	case Date:
		return refScalar(byte(KindDate), uint64(uint32(av)))
	case OID:
		return refScalar(byte(KindOID), uint64(av))
	case *Tuple:
		var sum uint64
		for i, n := range av.names {
			h := fnv.New64a()
			h.Write([]byte(n))
			fieldHash := h.Sum64() * 0x100000001b3
			sum += fieldHash ^ refHash(av.vals[i])
		}
		return sum ^ 0xa5a5a5a5a5a5a5a5
	case *Set:
		var sum uint64
		for _, e := range av.elems {
			sum += refHash(e)
		}
		return sum ^ 0x5a5a5a5a5a5a5a5a
	}
	panic("refHash: unknown kind")
}

func refScalar(kind byte, bits uint64) uint64 {
	var buf [9]byte
	buf[0] = kind
	binary.LittleEndian.PutUint64(buf[1:], bits)
	h := fnv.New64a()
	h.Write(buf[:])
	return h.Sum64()
}

func hashSamples(rng *rand.Rand) []Value {
	samples := []Value{
		Null{}, Bool(true), Bool(false),
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-3.25), Float(math.Inf(1)),
		String(""), String("red"), String("a longer string with spaces"),
		Date(940101), OID(0), OID(1 << 40),
		NewTuple(), NewTuple("a", Int(1), "b", String("x")),
		EmptySet(), NewSet(Int(1), Int(2), Int(3)),
		NewSet(NewTuple("pid", OID(7)), NewTuple("pid", OID(9))),
	}
	for i := 0; i < 200; i++ {
		samples = append(samples,
			Int(rng.Int63()-rng.Int63()),
			String(randWord(rng)),
			NewTuple("k", Int(rng.Int63n(100)), "s", String(randWord(rng))),
		)
	}
	return samples
}

func randWord(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(12))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func TestHashMatchesFNVReference(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, v := range hashSamples(rng) {
		if got, want := Hash(v), refHash(v); got != want {
			t.Errorf("Hash(%v) = %#x, reference fnv gives %#x", v, got, want)
		}
	}
}

func TestHashAllocationFree(t *testing.T) {
	vals := []Value{
		Int(42), String("supplier"), OID(9),
		NewTuple("a", Int(1), "b", String("x")),
		NewSet(Int(1), Int(2)),
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			Hash(v)
		}
	})
	if allocs != 0 {
		t.Errorf("Hash allocates %.1f times per run, want 0", allocs)
	}
}

func TestNewSetFromSliceMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		elems := make([]Value, n)
		for i := range elems {
			// Small domains force duplicates, including hash collisions of
			// equal values.
			elems[i] = NewTuple("k", Int(rng.Int63n(8)), "s", String("ab"[:rng.Intn(3)]))
		}
		want := NewSet(elems...)
		got := NewSetFromSlice(elems)
		if !Equal(want, got) {
			t.Fatalf("trial %d: NewSetFromSlice = %v, want %v", trial, got, want)
		}
		// The carved index must stay queryable.
		for _, e := range elems {
			if !got.Contains(e) {
				t.Fatalf("trial %d: bulk set lost element %v", trial, e)
			}
		}
		if got.Contains(Int(12345)) {
			t.Fatalf("trial %d: bulk set contains foreign element", trial)
		}
	}
}

func TestNewSetFromSliceEmpty(t *testing.T) {
	s := NewSetFromSlice(nil)
	if s.Len() != 0 {
		t.Fatalf("empty bulk set has %d elements", s.Len())
	}
	if !s.Add(Int(1)) {
		t.Fatal("empty bulk set rejects Add")
	}
}

func BenchmarkSetBuild(b *testing.B) {
	elems := make([]Value, 4096)
	for i := range elems {
		elems[i] = NewTuple("k", Int(int64(i%1024)), "v", Int(int64(i)))
	}
	b.Run("add", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := NewSetCap(len(elems))
			for _, e := range elems {
				s.Add(e)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			NewSetFromSlice(elems)
		}
	})
}
