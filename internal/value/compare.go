package value

import (
	"math"
)

// Equal reports deep equality of two values. Tuples are compared as
// name→value maps; sets by mutual containment. Values of different kinds are
// never equal (the model is strongly typed, so mixed-kind comparisons only
// arise for Null, which equals only itself).
func Equal(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch av := a.(type) {
	case Null:
		return true
	case Bool:
		return av == b.(Bool)
	case Int:
		return av == b.(Int)
	case Float:
		return av == b.(Float)
	case String:
		return av == b.(String)
	case Date:
		return av == b.(Date)
	case OID:
		return av == b.(OID)
	case *Tuple:
		bt := b.(*Tuple)
		if av.Len() != bt.Len() {
			return false
		}
		for i, n := range av.names {
			bv, ok := bt.Get(n)
			if !ok || !Equal(av.vals[i], bv) {
				return false
			}
		}
		return true
	case *Set:
		bs := b.(*Set)
		return av.Len() == bs.Len() && av.SubsetOf(bs)
	}
	panic("value.Equal: unknown kind")
}

// Compare imposes a deterministic total order on all values: first by kind,
// then by the natural order within the kind. Tuples compare by sorted
// attribute name then value; sets compare by cardinality then by their
// canonically sorted element sequences. The order is used for canonical
// printing and by sort-based physical operators; it has no semantic role in
// the algebra beyond the ordered atomic comparisons (<, ≤, >, ≥).
func Compare(a, b Value) int {
	if a.Kind() != b.Kind() {
		return int(a.Kind()) - int(b.Kind())
	}
	switch av := a.(type) {
	case Null:
		return 0
	case Bool:
		bv := b.(Bool)
		switch {
		case av == bv:
			return 0
		case bool(bv):
			return -1
		default:
			return 1
		}
	case Int:
		return cmpOrdered(av, b.(Int))
	case Float:
		return cmpOrdered(av, b.(Float))
	case String:
		return cmpOrdered(av, b.(String))
	case Date:
		return cmpOrdered(av, b.(Date))
	case OID:
		return cmpOrdered(av, b.(OID))
	case *Tuple:
		bt := b.(*Tuple)
		ai, bi := av.sortedIdx(), bt.sortedIdx()
		for k := 0; k < len(ai) && k < len(bi); k++ {
			an, bn := av.names[ai[k]], bt.names[bi[k]]
			if an != bn {
				if an < bn {
					return -1
				}
				return 1
			}
			if c := Compare(av.vals[ai[k]], bt.vals[bi[k]]); c != 0 {
				return c
			}
		}
		return av.Len() - bt.Len()
	case *Set:
		bs := b.(*Set)
		if av.Len() != bs.Len() {
			return av.Len() - bs.Len()
		}
		as, bss := av.Sorted(), bs.Sorted()
		for i := range as {
			if c := Compare(as[i], bss[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	panic("value.Compare: unknown kind")
}

func cmpOrdered[T interface {
	~int32 | ~int64 | ~uint64 | ~float64 | ~string
}](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash consistent with Equal: equal values hash
// equally. Tuple and set hashes combine member hashes commutatively so that
// attribute order and element order do not matter.
func Hash(v Value) uint64 {
	switch av := v.(type) {
	case Null:
		return 0x9e3779b97f4a7c15
	case Bool:
		if av {
			return 0xff51afd7ed558ccd
		}
		return 0xc4ceb9fe1a85ec53
	case Int:
		return hashScalar(byte(KindInt), uint64(av))
	case Float:
		return hashScalar(byte(KindFloat), math.Float64bits(float64(av)))
	case String:
		return fnvString(fnvByte(fnvOffset64, byte(KindString)), string(av))
	case Date:
		return hashScalar(byte(KindDate), uint64(uint32(av)))
	case OID:
		return hashScalar(byte(KindOID), uint64(av))
	case *Tuple:
		var sum uint64
		for i, n := range av.names {
			fieldHash := fnvString(fnvOffset64, n) * fnvPrime64
			sum += fieldHash ^ Hash(av.vals[i])
		}
		return sum ^ 0xa5a5a5a5a5a5a5a5
	case *Set:
		var sum uint64
		for _, e := range av.elems {
			sum += Hash(e)
		}
		return sum ^ 0x5a5a5a5a5a5a5a5a
	}
	panic("value.Hash: unknown kind")
}

// FNV-1a, hand-rolled so hashing never allocates: hash/fnv's New64a boxes
// the state behind hash.Hash64 and forces []byte conversions of strings.
// The byte-for-byte fold order below reproduces the library exactly, so
// hash values are unchanged (sets, hash joins and the storage layer's
// materialization cache all key on them).
const (
	fnvOffset64 uint64 = 0xcbf29ce484222325
	fnvPrime64  uint64 = 0x100000001b3
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// hashScalar folds the kind byte then the value bits little-endian, matching
// the former binary.LittleEndian.PutUint64 buffer layout.
func hashScalar(kind byte, bits uint64) uint64 {
	h := fnvByte(fnvOffset64, kind)
	for i := 0; i < 64; i += 8 {
		h = fnvByte(h, byte(bits>>i))
	}
	return h
}
