package value

import (
	"encoding/json"
	"fmt"
)

// The JSON codec gives complex objects a stable interchange form. Values are
// tagged one-key objects so kinds survive the round trip unambiguously:
//
//	{"int": 5}  {"float": 2.5}  {"str": "red"}  {"bool": true}
//	{"date": 940101}  {"oid": 12}  {"null": true}
//	{"tuple": [["a", {"int": 1}], ["c", {"set": [...]}]]}
//	{"set": [ ... ]}
//
// Tuple fields are encoded as ordered name/value pairs (objects would lose
// declaration order); sets are encoded in canonical order so equal sets
// encode identically.

// EncodeJSON renders a value in the tagged JSON form.
func EncodeJSON(v Value) ([]byte, error) {
	t, err := toTagged(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(t)
}

// DecodeJSON parses the tagged JSON form.
func DecodeJSON(data []byte) (Value, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("value: decode: %w", err)
	}
	return fromTagged(raw)
}

func toTagged(v Value) (map[string]any, error) {
	switch vv := v.(type) {
	case Null:
		return map[string]any{"null": true}, nil
	case Bool:
		return map[string]any{"bool": bool(vv)}, nil
	case Int:
		return map[string]any{"int": int64(vv)}, nil
	case Float:
		return map[string]any{"float": float64(vv)}, nil
	case String:
		return map[string]any{"str": string(vv)}, nil
	case Date:
		return map[string]any{"date": int32(vv)}, nil
	case OID:
		return map[string]any{"oid": uint64(vv)}, nil
	case *Tuple:
		fields := make([]any, 0, vv.Len())
		for i := 0; i < vv.Len(); i++ {
			name, fv := vv.At(i)
			ft, err := toTagged(fv)
			if err != nil {
				return nil, err
			}
			fields = append(fields, []any{name, ft})
		}
		return map[string]any{"tuple": fields}, nil
	case *Set:
		elems := make([]any, 0, vv.Len())
		for _, e := range vv.Sorted() {
			et, err := toTagged(e)
			if err != nil {
				return nil, err
			}
			elems = append(elems, et)
		}
		return map[string]any{"set": elems}, nil
	}
	return nil, fmt.Errorf("value: cannot encode %T", v)
}

func fromTagged(raw map[string]json.RawMessage) (Value, error) {
	if len(raw) != 1 {
		return nil, fmt.Errorf("value: decode: want exactly one tag, got %d", len(raw))
	}
	for tag, body := range raw {
		switch tag {
		case "null":
			return Null{}, nil
		case "bool":
			var b bool
			if err := json.Unmarshal(body, &b); err != nil {
				return nil, err
			}
			return Bool(b), nil
		case "int":
			var i int64
			if err := json.Unmarshal(body, &i); err != nil {
				return nil, err
			}
			return Int(i), nil
		case "float":
			var f float64
			if err := json.Unmarshal(body, &f); err != nil {
				return nil, err
			}
			return Float(f), nil
		case "str":
			var s string
			if err := json.Unmarshal(body, &s); err != nil {
				return nil, err
			}
			return String(s), nil
		case "date":
			var d int32
			if err := json.Unmarshal(body, &d); err != nil {
				return nil, err
			}
			return Date(d), nil
		case "oid":
			var o uint64
			if err := json.Unmarshal(body, &o); err != nil {
				return nil, err
			}
			return OID(o), nil
		case "tuple":
			var fields []json.RawMessage
			if err := json.Unmarshal(body, &fields); err != nil {
				return nil, err
			}
			t := EmptyTuple()
			for _, f := range fields {
				var pair []json.RawMessage
				if err := json.Unmarshal(f, &pair); err != nil {
					return nil, err
				}
				if len(pair) != 2 {
					return nil, fmt.Errorf("value: decode: tuple field needs [name, value]")
				}
				var name string
				if err := json.Unmarshal(pair[0], &name); err != nil {
					return nil, err
				}
				var inner map[string]json.RawMessage
				if err := json.Unmarshal(pair[1], &inner); err != nil {
					return nil, err
				}
				fv, err := fromTagged(inner)
				if err != nil {
					return nil, err
				}
				if t.Has(name) {
					return nil, fmt.Errorf("value: decode: duplicate tuple attribute %q", name)
				}
				t = t.With(name, fv)
			}
			return t, nil
		case "set":
			var elems []map[string]json.RawMessage
			if err := json.Unmarshal(body, &elems); err != nil {
				return nil, err
			}
			s := NewSetCap(len(elems))
			for _, e := range elems {
				ev, err := fromTagged(e)
				if err != nil {
					return nil, err
				}
				s.Add(ev)
			}
			return s, nil
		default:
			return nil, fmt.Errorf("value: decode: unknown tag %q", tag)
		}
	}
	return nil, fmt.Errorf("value: decode: empty document")
}
