// Package value implements the complex-object data model underlying the ADL
// algebra of Steenhagen et al. (VLDB 1994): atomic values (booleans, integers,
// floats, strings, dates), object identifiers (oid), tuples built with the
// ⟨ ⟩ constructor, and sets built with the { } constructor. Tuples and sets
// nest arbitrarily.
//
// Values are immutable once constructed. The package provides deep equality,
// a total order (used for canonical printing and sort-based operators),
// hashing (used by hash-based physical operators and by set deduplication),
// and the set algebra the paper relies on: membership, inclusion, union,
// intersection, difference, and flattening.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of the Value sum type.
type Kind uint8

// The kinds of values in the complex object model.
const (
	KindNull Kind = iota // SQL-style null, used by the outer-join repair of the COUNT bug
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
	KindOID
	KindTuple
	KindSet
)

// String returns the name of the kind as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindDate:
		return "date"
	case KindOID:
		return "oid"
	case KindTuple:
		return "tuple"
	case KindSet:
		return "set"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is the sum type of all complex-object values. The concrete variants
// are Null, Bool, Int, Float, String, Date, OID, *Tuple and *Set.
type Value interface {
	// Kind reports which variant this value is.
	Kind() Kind
	// String renders the value in the paper's surface notation, e.g.
	// ⟨a = 1, c = {1, 2}⟩ printed as (a=1, c={1, 2}).
	String() string
}

// Null is the absent value. It only arises from outer joins (the [GaWo87]
// COUNT-bug repair); the core algebra never produces it.
type Null struct{}

// Kind reports KindNull.
func (Null) Kind() Kind { return KindNull }

func (Null) String() string { return "null" }

// Bool is an atomic boolean value.
type Bool bool

// Kind reports KindBool.
func (Bool) Kind() Kind { return KindBool }

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Int is an atomic 64-bit integer value.
type Int int64

// Kind reports KindInt.
func (Int) Kind() Kind { return KindInt }

func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Float is an atomic 64-bit floating point value.
type Float float64

// Kind reports KindFloat.
func (Float) Kind() Kind { return KindFloat }

func (f Float) String() string { return strconv.FormatFloat(float64(f), 'g', -1, 64) }

// String is an atomic string value.
type String string

// Kind reports KindString.
func (String) Kind() Kind { return KindString }

func (s String) String() string { return strconv.Quote(string(s)) }

// Date is an atomic date in the paper's literal format yyyymmdd
// (e.g. 940101 for January 1, 1994).
type Date int32

// Kind reports KindDate.
func (Date) Kind() Kind { return KindDate }

func (d Date) String() string { return fmt.Sprintf("d%06d", int32(d)) }

// OID is an object identifier. The paper's logical design maps each class
// extension to a table of tuples carrying an oid field; class references
// become oid-valued attributes.
type OID uint64

// Kind reports KindOID.
func (OID) Kind() Kind { return KindOID }

func (o OID) String() string { return "@" + strconv.FormatUint(uint64(o), 10) }

// Truth reports whether v is the boolean true. Non-boolean values are never
// true; predicates in the algebra are boolean-typed by construction.
func Truth(v Value) bool {
	b, ok := v.(Bool)
	return ok && bool(b)
}

// joinStrings renders a list of values separated by ", ".
func joinStrings(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}
