package value

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a record value built with the paper's ⟨ ⟩ constructor: an unordered
// mapping from attribute names to values. Field declaration order is preserved
// for printing, but equality, hashing and comparison treat tuples as
// name→value functions, so ⟨a=1, b=2⟩ equals ⟨b=2, a=1⟩.
type Tuple struct {
	names []string
	vals  []Value
}

// Kind reports KindTuple.
func (*Tuple) Kind() Kind { return KindTuple }

// NewTuple constructs a tuple from alternating name/value pairs. It panics on
// duplicate attribute names: the algebra's well-formedness conditions ("it is
// assumed no attribute naming conflicts occur", §3) are enforced at
// construction time so that every operator can rely on them.
func NewTuple(pairs ...any) *Tuple {
	if len(pairs)%2 != 0 {
		panic("value.NewTuple: odd number of arguments")
	}
	t := &Tuple{
		names: make([]string, 0, len(pairs)/2),
		vals:  make([]Value, 0, len(pairs)/2),
	}
	for i := 0; i < len(pairs); i += 2 {
		name, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("value.NewTuple: argument %d is not a field name", i))
		}
		v, ok := pairs[i+1].(Value)
		if !ok {
			panic(fmt.Sprintf("value.NewTuple: field %q is not a Value", name))
		}
		t = t.With(name, v)
	}
	return t
}

// EmptyTuple returns the tuple with no attributes, the unit of concatenation.
func EmptyTuple() *Tuple { return &Tuple{} }

// With returns a copy of t extended with the field name=v. It panics if the
// name is already present; use Except for updates.
func (t *Tuple) With(name string, v Value) *Tuple {
	if t.Has(name) {
		panic(fmt.Sprintf("value: duplicate attribute %q in tuple", name))
	}
	nt := &Tuple{
		names: append(append(make([]string, 0, len(t.names)+1), t.names...), name),
		vals:  append(append(make([]Value, 0, len(t.vals)+1), t.vals...), v),
	}
	return nt
}

// Len reports the number of attributes.
func (t *Tuple) Len() int { return len(t.names) }

// Names returns the attribute names in declaration order. The slice is shared;
// callers must not modify it.
func (t *Tuple) Names() []string { return t.names }

// Has reports whether the tuple has an attribute called name.
func (t *Tuple) Has(name string) bool {
	for _, n := range t.names {
		if n == name {
			return true
		}
	}
	return false
}

// Get returns the value of the named attribute.
func (t *Tuple) Get(name string) (Value, bool) {
	for i, n := range t.names {
		if n == name {
			return t.vals[i], true
		}
	}
	return nil, false
}

// MustGet returns the value of the named attribute and panics if absent.
// It is used where well-typedness has already been established.
func (t *Tuple) MustGet(name string) Value {
	v, ok := t.Get(name)
	if !ok {
		panic(fmt.Sprintf("value: tuple %v has no attribute %q", t, name))
	}
	return v
}

// At returns the i'th attribute name and value in declaration order.
func (t *Tuple) At(i int) (string, Value) { return t.names[i], t.vals[i] }

// Concat implements the paper's tuple concatenation x ∘ y. It returns an
// error if the operands share an attribute name, which the algebra's
// well-formedness conditions forbid.
func (t *Tuple) Concat(u *Tuple) (*Tuple, error) {
	for _, n := range u.names {
		if t.Has(n) {
			return nil, fmt.Errorf("value: concatenation conflict on attribute %q", n)
		}
	}
	return &Tuple{
		names: append(append(make([]string, 0, len(t.names)+len(u.names)), t.names...), u.names...),
		vals:  append(append(make([]Value, 0, len(t.vals)+len(u.vals)), t.vals...), u.vals...),
	}, nil
}

// Subscript implements the paper's tuple subscription e[a1, ..., an]
// (semantics rule 2): the sub-tuple with exactly the named attributes.
func (t *Tuple) Subscript(attrs []string) (*Tuple, error) {
	nt := &Tuple{names: make([]string, 0, len(attrs)), vals: make([]Value, 0, len(attrs))}
	for _, a := range attrs {
		v, ok := t.Get(a)
		if !ok {
			return nil, fmt.Errorf("value: subscript on missing attribute %q", a)
		}
		nt.names = append(nt.names, a)
		nt.vals = append(nt.vals, v)
	}
	return nt, nil
}

// Drop returns the tuple without the named attributes (those absent are
// ignored). It is the complement of Subscript, used by nest and unnest.
func (t *Tuple) Drop(attrs []string) *Tuple {
	drop := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		drop[a] = true
	}
	nt := &Tuple{}
	for i, n := range t.names {
		if !drop[n] {
			nt.names = append(nt.names, n)
			nt.vals = append(nt.vals, t.vals[i])
		}
	}
	return nt
}

// Except implements the paper's tuple "update" (semantics rule 3): existing
// attributes listed in updates get new values, attributes not listed keep
// their values, and new attributes are appended.
func (t *Tuple) Except(updates *Tuple) *Tuple {
	nt := &Tuple{
		names: append(make([]string, 0, len(t.names)+updates.Len()), t.names...),
		vals:  append(make([]Value, 0, len(t.vals)+updates.Len()), t.vals...),
	}
	for i, n := range updates.names {
		replaced := false
		for j, m := range nt.names {
			if m == n {
				nt.vals[j] = updates.vals[i]
				replaced = true
				break
			}
		}
		if !replaced {
			nt.names = append(nt.names, n)
			nt.vals = append(nt.vals, updates.vals[i])
		}
	}
	return nt
}

// sortedIdx returns attribute indices ordered by name; used by the
// order-insensitive equality, hash and compare operations.
func (t *Tuple) sortedIdx() []int {
	idx := make([]int, len(t.names))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return t.names[idx[a]] < t.names[idx[b]] })
	return idx
}

func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, n := range t.names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(t.vals[i].String())
	}
	b.WriteByte(')')
	return b.String()
}
