package core

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/value"
)

func TestPrepareExecuteExplain(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 10, Parts: 12, Seed: 3})
	q, err := Prepare(`
		select s from s in SUPPLIER
		where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
		st.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Execute(st)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.ExecuteNaive(st)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(got, want) {
		t.Fatalf("physical and naive execution diverge")
	}
	exp := q.Explain()
	for _, s := range []string{"OOSQL:", "ADL (§3 translation):", "⋉", "SetProbeJoin", "options used"} {
		if !strings.Contains(exp, s) {
			t.Errorf("explain missing %q:\n%s", s, exp)
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 2, Parts: 2, Seed: 1})
	if _, err := Prepare(`select from`, st.Catalog()); err == nil {
		t.Errorf("parse error must surface")
	}
	if _, err := Prepare(`select x from x in NOPE`, st.Catalog()); err == nil {
		t.Errorf("resolution error must surface")
	}
}
