// Package core is the front door of the library: it wires the full pipeline
// of the paper together — OOSQL parsing, translation into the ADL algebra
// (§3), the rewrite strategy turning nested queries into join queries
// (§4–§6), physical planning, and execution — behind a small API.
//
//	q, err := core.Prepare(src, store.Catalog())
//	result, err := q.Execute(store)
//	fmt.Println(q.Explain())
package core

import (
	"fmt"
	"strings"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/oosql"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/types"
	"repro/internal/value"
)

// Query is a prepared OOSQL query: every pipeline stage is retained for
// inspection.
type Query struct {
	// Source is the OOSQL text.
	Source string
	// AST is the parsed syntax tree.
	AST oosql.Expr
	// ADL is the §3 translation (nested algebraic form, the nested-loop
	// execution model).
	ADL adl.Expr
	// Type is the reference-annotated result type.
	Type types.Type
	// Rewritten is the result of the §4 optimization strategy.
	Rewritten *rewrite.Result
	// Plan is the physical operator tree for the rewritten form.
	Plan exec.Operator
	// Planned is the annotated plan behind Plan: per-node cost estimates
	// (when planned with statistics) and the runtime-feedback surface
	// (instrumented execution, observed row counts, q-error drift).
	Planned *plan.Plan

	cat *schema.Catalog
}

// Prepare parses, typechecks, translates, optimizes and plans an OOSQL
// query against a catalog.
func Prepare(src string, cat *schema.Catalog) (*Query, error) {
	return PrepareCfg(src, cat, plan.Config{})
}

// PrepareCfg is Prepare with an explicit physical-planner configuration, so
// callers holding collected statistics (or tuning parallelism) get a
// cost-based plan instead of the zero-config heuristics. The serving layer
// prepares through this entry and caches the result keyed on the statistics
// epoch the Config's stats were published under.
func PrepareCfg(src string, cat *schema.Catalog, cfg plan.Config) (*Query, error) {
	ast, err := oosql.Parse(src)
	if err != nil {
		return nil, err
	}
	e, t, err := translate.Translate(ast, cat)
	if err != nil {
		return nil, err
	}
	res := rewrite.Optimize(e, rewrite.NewContext(cat))
	pl := cfg.Plan(res.Expr)
	return &Query{
		Source:    src,
		AST:       ast,
		ADL:       e,
		Type:      t,
		Rewritten: res,
		Plan:      pl.Root,
		Planned:   pl,
		cat:       cat,
	}, nil
}

// Execute runs the optimized physical plan.
func (q *Query) Execute(db eval.DB) (*value.Set, error) {
	return exec.Collect(q.Plan, &exec.Ctx{DB: db})
}

// ExecuteNaive runs the untransformed nested form tuple-at-a-time — the
// baseline the paper's optimizations are measured against.
func (q *Query) ExecuteNaive(db eval.DB) (*value.Set, error) {
	return eval.EvalSet(q.ADL, nil, db)
}

// Explain renders every pipeline stage: the translation, the rewrite trace
// with the §4 options used, and the physical plan.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OOSQL:\n  %s\n\n", strings.Join(strings.Fields(q.Source), " "))
	fmt.Fprintf(&b, "ADL (§3 translation):\n  %s\n\n", q.ADL)
	if len(q.Rewritten.Trace) > 0 {
		b.WriteString("rewrite steps:\n")
		for _, s := range q.Rewritten.Trace {
			fmt.Fprintf(&b, "  [%s]\n    %s\n", s.Rule, s.After)
		}
		b.WriteString("\n")
	}
	opts := "none — executed by nested loops"
	if len(q.Rewritten.OptionsUsed) > 0 {
		opts = strings.Join(q.Rewritten.OptionsUsed, ", ")
	}
	fmt.Fprintf(&b, "options used (§4 strategy): %s\n", opts)
	fmt.Fprintf(&b, "nested base tables: %d → %d\n\n", q.Rewritten.NestedBefore, q.Rewritten.NestedAfter)
	fmt.Fprintf(&b, "optimized ADL:\n  %s\n\n", q.Rewritten.Expr)
	fmt.Fprintf(&b, "physical plan:\n%s", indent(plan.Explain(q.Plan), "  "))
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
