// Package stats holds the collected-statistics value types shared by the
// storage layer (which builds them during ANALYZE) and the planner (which
// consumes them for cardinality estimation). It sits below both so neither
// has to import the other.
//
// The only type today is the equi-depth histogram. The paper's cost
// arguments (§5.1) assume the optimizer knows enough to rank join
// strategies; a fixed 1/NDV equality rule assumes every value is equally
// frequent, which skewed data — the common case for foreign keys and
// categorical attributes — violates badly. An equi-depth histogram keeps
// per-bucket row and distinct counts with exact bucket bounds, so heavy
// hitters surface as narrow, dense buckets and estimates degrade gracefully
// instead of uniformly.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// DefaultBuckets is the bucket budget ANALYZE uses per attribute. 32 buckets
// keep a histogram under ~1KB while resolving skew well past the point where
// the planner's strategy choices stop changing.
const DefaultBuckets = 32

// Bucket is one equi-depth bucket: the inclusive value bounds, the number of
// rows that fell in it, and the number of distinct values among them. A run
// of equal values is never split across buckets, so a heavy hitter occupies
// a bucket of its own (Lo == Hi, NDV == 1) and its frequency is exact.
type Bucket struct {
	Lo, Hi value.Value
	Rows   int
	NDV    int
}

// Histogram is an equi-depth histogram over one attribute's values, buckets
// sorted ascending by value.Compare. Rows is the total row count behind it.
type Histogram struct {
	Buckets []Bucket
	Rows    int
}

// NewEquiDepth builds an equi-depth histogram over vals with at most
// maxBuckets buckets (DefaultBuckets when <= 0). It returns nil when there
// are no values — "no histogram" and "no data" are the same to a consumer.
// vals is sorted in place.
func NewEquiDepth(vals []value.Value, maxBuckets int) *Histogram {
	if len(vals) == 0 {
		return nil
	}
	if maxBuckets <= 0 {
		maxBuckets = DefaultBuckets
	}
	sort.Slice(vals, func(i, j int) bool { return value.Compare(vals[i], vals[j]) < 0 })
	depth := (len(vals) + maxBuckets - 1) / maxBuckets
	h := &Histogram{Rows: len(vals)}
	var cur *Bucket
	for i := 0; i < len(vals); {
		// One run of equal values at a time, kept whole.
		j := i + 1
		for j < len(vals) && value.Compare(vals[j], vals[i]) == 0 {
			j++
		}
		run := j - i
		// Start a new bucket when the current one is full — and also when
		// the incoming run is itself bucket-sized: appending a heavy hitter
		// to a partially-filled bucket would dilute its exact frequency by
		// the bucket's other values.
		if cur == nil || cur.Rows >= depth || (cur.Rows > 0 && run >= depth) {
			h.Buckets = append(h.Buckets, Bucket{Lo: vals[i], Hi: vals[i]})
			cur = &h.Buckets[len(h.Buckets)-1]
		}
		cur.Hi = vals[i]
		cur.Rows += run
		cur.NDV++
		i = j
	}
	return h
}

// Clone returns an independent deep copy. The storage layer's incremental
// ANALYZE maintenance mutates a live histogram per insert (Absorb) and
// publishes immutable copies to the planner; Clone is that publication step.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	c := &Histogram{Rows: h.Rows, Buckets: make([]Bucket, len(h.Buckets))}
	copy(c.Buckets, h.Buckets)
	return c
}

// Absorb folds one new value into the histogram in place — the incremental
// counterpart of NewEquiDepth for a store that keeps statistics fresh across
// inserts without re-scanning the extent. A value inside an existing bucket
// bumps that bucket (its NDV only when the bucket was a different singleton
// run is unknowable, so NDV is left alone — an equi-depth bucket's density
// estimate tolerates that); a value outside every bucket gets a singleton
// bucket of its own, so new heavy hitters stay exact. When the bucket list
// grows past four times the default budget, adjacent buckets are merged
// pairwise to bound the footprint.
func (h *Histogram) Absorb(v value.Value) {
	h.Rows++
	i := sort.Search(len(h.Buckets), func(i int) bool {
		return value.Compare(h.Buckets[i].Hi, v) >= 0
	})
	if i < len(h.Buckets) && value.Compare(h.Buckets[i].Lo, v) <= 0 {
		h.Buckets[i].Rows++
		return
	}
	// v falls in the gap before bucket i: insert a singleton bucket.
	h.Buckets = append(h.Buckets, Bucket{})
	copy(h.Buckets[i+1:], h.Buckets[i:])
	h.Buckets[i] = Bucket{Lo: v, Hi: v, Rows: 1, NDV: 1}
	if len(h.Buckets) > 4*DefaultBuckets {
		h.compact()
	}
}

// Unabsorb removes one value from the histogram in place — the inverse of
// Absorb, used when the store deletes or rewrites a row. The containing
// bucket loses one row (and is dropped when emptied; its NDV is unknowable
// without the values, so a partially drained bucket keeps it — the density
// estimate tolerates that the same way Absorb's does). A value outside every
// bucket still decrements the row total: the histogram may have been
// compacted past the exact bounds the value was absorbed under.
func (h *Histogram) Unabsorb(v value.Value) {
	if h == nil || h.Rows == 0 {
		return
	}
	h.Rows--
	i := sort.Search(len(h.Buckets), func(i int) bool {
		return value.Compare(h.Buckets[i].Hi, v) >= 0
	})
	if i == len(h.Buckets) || value.Compare(h.Buckets[i].Lo, v) > 0 {
		return
	}
	h.Buckets[i].Rows--
	if h.Buckets[i].Rows <= 0 {
		h.Buckets = append(h.Buckets[:i], h.Buckets[i+1:]...)
	}
}

// compact halves the bucket count by merging adjacent pairs.
func (h *Histogram) compact() {
	out := h.Buckets[:0]
	for i := 0; i < len(h.Buckets); i += 2 {
		b := h.Buckets[i]
		if i+1 < len(h.Buckets) {
			n := h.Buckets[i+1]
			b.Hi = n.Hi
			b.Rows += n.Rows
			b.NDV += n.NDV
		}
		out = append(out, b)
	}
	h.Buckets = out
}

// NDV reports the total number of distinct values the histogram saw.
func (h *Histogram) NDV() int {
	n := 0
	for i := range h.Buckets {
		n += h.Buckets[i].NDV
	}
	return n
}

// EqFraction estimates the fraction of rows equal to v: the containing
// bucket's average per-value frequency (exact for heavy hitters, which own
// their bucket). A value outside every bucket estimates 0.
func (h *Histogram) EqFraction(v value.Value) float64 {
	if h == nil || h.Rows == 0 {
		return 0
	}
	i := sort.Search(len(h.Buckets), func(i int) bool {
		return value.Compare(h.Buckets[i].Hi, v) >= 0
	})
	if i == len(h.Buckets) || value.Compare(h.Buckets[i].Lo, v) > 0 {
		return 0
	}
	b := &h.Buckets[i]
	return float64(b.Rows) / float64(b.NDV) / float64(h.Rows)
}

// LessFraction estimates the fraction of rows with a value < v (or <= v when
// orEqual). Within the straddled bucket the position is interpolated for
// numeric kinds and assumed halfway otherwise.
func (h *Histogram) LessFraction(v value.Value, orEqual bool) float64 {
	if h == nil || h.Rows == 0 {
		return 0
	}
	rows := 0.0
	for i := range h.Buckets {
		b := &h.Buckets[i]
		if value.Compare(b.Hi, v) < 0 {
			rows += float64(b.Rows)
			continue
		}
		if value.Compare(b.Lo, v) > 0 {
			break
		}
		// v falls inside [Lo, Hi].
		frac := interpolate(b.Lo, b.Hi, v)
		part := float64(b.Rows) * frac
		perValue := float64(b.Rows) / float64(b.NDV)
		if orEqual {
			// Credit one value's worth of rows for v itself.
			part += perValue
		} else {
			// Strictly below v: v's own rows cannot be counted, so at least
			// one value's worth stays out. For a singleton bucket (Lo == Hi
			// == v, the heavy-hitter case) this caps the contribution at 0 —
			// interpolate alone would report the whole bucket as below its
			// own value.
			if part > float64(b.Rows)-perValue {
				part = float64(b.Rows) - perValue
			}
		}
		part = clamp01(part/float64(b.Rows)) * float64(b.Rows)
		rows += part
		break
	}
	return clamp01(rows / float64(h.Rows))
}

// RangeFraction estimates the fraction of rows within the (possibly
// one-sided) range: nil bounds are open ends.
func (h *Histogram) RangeFraction(lo, hi value.Value, loIncl, hiIncl bool) float64 {
	if h == nil || h.Rows == 0 {
		return 0
	}
	upper := 1.0
	if hi != nil {
		upper = h.LessFraction(hi, hiIncl)
	}
	lower := 0.0
	if lo != nil {
		// Rows below the lower bound: strictly below for an inclusive bound,
		// up to and including for an exclusive one.
		lower = h.LessFraction(lo, !loIncl)
	}
	return clamp01(upper - lower)
}

// JoinSelectivity estimates the selectivity of an equality join between two
// attributes from their histograms: overlapping bucket pairs contribute
// rowsA·rowsB/max(ndvA, ndvB) matches (the containment assumption applied
// per overlap instead of globally), non-overlapping value ranges contribute
// nothing. This is what replaces the global min-NDV rule: two attributes
// whose domains barely intersect estimate near zero instead of 1/NDV.
func JoinSelectivity(a, b *Histogram) (float64, bool) {
	if a == nil || b == nil || a.Rows == 0 || b.Rows == 0 {
		return 0, false
	}
	matches := 0.0
	i, j := 0, 0
	for i < len(a.Buckets) && j < len(b.Buckets) {
		ba, bb := &a.Buckets[i], &b.Buckets[j]
		if value.Compare(ba.Hi, bb.Lo) < 0 {
			i++
			continue
		}
		if value.Compare(bb.Hi, ba.Lo) < 0 {
			j++
			continue
		}
		// Overlapping value range [max(Lo), min(Hi)].
		lo, hi := ba.Lo, ba.Hi
		if value.Compare(bb.Lo, lo) > 0 {
			lo = bb.Lo
		}
		if value.Compare(bb.Hi, hi) < 0 {
			hi = bb.Hi
		}
		fa := overlapFraction(ba, lo, hi)
		fb := overlapFraction(bb, lo, hi)
		ra, rb := float64(ba.Rows)*fa, float64(bb.Rows)*fb
		na := maxf(1, float64(ba.NDV)*fa)
		nb := maxf(1, float64(bb.NDV)*fb)
		matches += ra * rb / maxf(na, nb)
		if value.Compare(ba.Hi, bb.Hi) <= 0 {
			i++
		} else {
			j++
		}
	}
	return clamp01(matches / (float64(a.Rows) * float64(b.Rows))), true
}

// overlapFraction estimates what fraction of a bucket's rows fall inside the
// value range [lo, hi] (both within the bucket's bounds).
func overlapFraction(b *Bucket, lo, hi value.Value) float64 {
	if value.Compare(b.Lo, b.Hi) == 0 {
		return 1 // single-value bucket: in the overlap entirely or not at all
	}
	f := interpolate(b.Lo, b.Hi, hi) - interpolate(b.Lo, b.Hi, lo)
	// The bounds themselves carry rows; give the closed range one value's
	// width so [v, v] overlaps don't vanish.
	f += 1 / maxf(1, float64(b.NDV))
	return clamp01(f)
}

// interpolate estimates the position of v within [lo, hi] as a fraction in
// [0, 1]: linear for the numeric kinds, 1/2 for kinds without a metric.
func interpolate(lo, hi, v value.Value) float64 {
	l, lok := numeric(lo)
	h, hok := numeric(hi)
	x, vok := numeric(v)
	if !lok || !hok || !vok || h <= l {
		if value.Compare(v, hi) >= 0 {
			return 1
		}
		if value.Compare(v, lo) <= 0 {
			return 0
		}
		return 0.5
	}
	return clamp01((x - l) / (h - l))
}

// numeric projects the orderable numeric kinds onto float64.
func numeric(v value.Value) (float64, bool) {
	switch n := v.(type) {
	case value.Int:
		return float64(n), true
	case value.Float:
		return float64(n), true
	case value.Date:
		return float64(n), true
	case value.OID:
		return float64(n), true
	}
	return 0, false
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the histogram compactly: total rows, then one
// [lo..hi]×rows/ndv cell per bucket.
func (h *Histogram) String() string {
	if h == nil {
		return "<no histogram>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "equi-depth %d rows, %d buckets:", h.Rows, len(h.Buckets))
	for i := range h.Buckets {
		bk := &h.Buckets[i]
		if value.Compare(bk.Lo, bk.Hi) == 0 {
			fmt.Fprintf(&b, " [%s]×%d/%d", bk.Lo, bk.Rows, bk.NDV)
		} else {
			fmt.Fprintf(&b, " [%s..%s]×%d/%d", bk.Lo, bk.Hi, bk.Rows, bk.NDV)
		}
	}
	return b.String()
}
