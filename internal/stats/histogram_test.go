package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/value"
)

func ints(vs ...int64) []value.Value {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		out[i] = value.Int(v)
	}
	return out
}

func TestNewEquiDepthEmpty(t *testing.T) {
	if h := NewEquiDepth(nil, 8); h != nil {
		t.Fatalf("histogram over no values should be nil, got %v", h)
	}
	// A nil histogram is safe to query.
	var h *Histogram
	if f := h.EqFraction(value.Int(1)); f != 0 {
		t.Errorf("nil EqFraction = %v, want 0", f)
	}
	if f := h.LessFraction(value.Int(1), true); f != 0 {
		t.Errorf("nil LessFraction = %v, want 0", f)
	}
	if f := h.RangeFraction(value.Int(0), value.Int(1), true, true); f != 0 {
		t.Errorf("nil RangeFraction = %v, want 0", f)
	}
	if s := h.String(); s != "<no histogram>" {
		t.Errorf("nil String = %q", s)
	}
}

func TestNewEquiDepthSingleValue(t *testing.T) {
	h := NewEquiDepth(ints(7, 7, 7, 7, 7), 4)
	if len(h.Buckets) != 1 || h.Rows != 5 {
		t.Fatalf("single-value histogram = %v", h)
	}
	b := h.Buckets[0]
	if b.NDV != 1 || b.Rows != 5 || value.Compare(b.Lo, b.Hi) != 0 {
		t.Fatalf("single-value bucket = %+v", b)
	}
	if f := h.EqFraction(value.Int(7)); f != 1 {
		t.Errorf("EqFraction(7) = %v, want 1", f)
	}
	if f := h.EqFraction(value.Int(8)); f != 0 {
		t.Errorf("EqFraction(8) = %v, want 0", f)
	}
	if h.NDV() != 1 {
		t.Errorf("NDV = %d, want 1", h.NDV())
	}
}

// TestEquiDepthHeavyHitter: a run of equal values is never split, so the hot
// value's frequency is exact while the uniform 1/NDV rule would be off by an
// order of magnitude.
func TestEquiDepthHeavyHitter(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 700; i++ {
		vals = append(vals, value.Int(0)) // the heavy hitter
	}
	for i := 0; i < 300; i++ {
		vals = append(vals, value.Int(int64(1+i%30)))
	}
	h := NewEquiDepth(vals, 16)
	got := h.EqFraction(value.Int(0))
	if math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("heavy hitter EqFraction = %v, want exactly 0.7", got)
	}
	// A cold value estimates near its bucket's average, far below 0.7.
	if cold := h.EqFraction(value.Int(5)); cold <= 0 || cold > 0.1 {
		t.Errorf("cold value EqFraction = %v, want small positive", cold)
	}
	// Buckets must cover every row exactly once.
	rows := 0
	for _, b := range h.Buckets {
		rows += b.Rows
	}
	if rows != len(vals) {
		t.Errorf("bucket rows sum to %d, want %d", rows, len(vals))
	}
	if h.NDV() != 31 {
		t.Errorf("NDV = %d, want 31", h.NDV())
	}
}

// TestEquiDepthHeavyHitterMidDomain: the exact-frequency invariant must
// hold wherever the heavy hitter sorts, not only at the domain minimum. A
// bucket-sized run arriving at a partially-filled bucket must open its own
// bucket instead of being diluted by the bucket's earlier values.
func TestEquiDepthHeavyHitterMidDomain(t *testing.T) {
	var vals []value.Value
	for v := int64(0); v < 3; v++ { // small values sorting before the hitter
		for i := 0; i < 10; i++ {
			vals = append(vals, value.Int(v))
		}
	}
	for i := 0; i < 1400; i++ {
		vals = append(vals, value.Int(5)) // the heavy hitter, mid-domain
	}
	for i := 0; i < 570; i++ {
		vals = append(vals, value.Int(int64(10+i%30)))
	}
	h := NewEquiDepth(vals, 16)
	if got := h.EqFraction(value.Int(5)); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("mid-domain heavy hitter EqFraction = %v, want exactly 0.7", got)
	}
	// And the strict-less fraction excludes the hitter's own rows: only the
	// 30 smaller rows are below it.
	if got := h.LessFraction(value.Int(5), false); math.Abs(got-30.0/2000) > 1e-9 {
		t.Errorf("LessFraction(hitter, strict) = %v, want %v", got, 30.0/2000)
	}
}

// TestLessFractionSingletonBucket: a heavy hitter's singleton bucket
// contributes nothing to the strictly-less fraction of its own value, and
// everything to the or-equal fraction.
func TestLessFractionSingletonBucket(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 1400; i++ {
		vals = append(vals, value.Int(0))
	}
	for i := 0; i < 600; i++ {
		vals = append(vals, value.Int(int64(1+i%30)))
	}
	h := NewEquiDepth(vals, 16)
	if got := h.LessFraction(value.Int(0), false); got != 0 {
		t.Errorf("LessFraction(0, strict) = %v, want 0 — nothing sorts below the minimum", got)
	}
	if got := h.LessFraction(value.Int(0), true); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("LessFraction(0, orEqual) = %v, want 0.7", got)
	}
	// The derived one-sided selectivities: sev >= 0 keeps everything,
	// sev < 0 nothing.
	if got := h.RangeFraction(value.Int(0), nil, true, false); got != 1 {
		t.Errorf("RangeFraction[0,∞) = %v, want 1", got)
	}
	if got := h.RangeFraction(nil, value.Int(0), false, false); got != 0 {
		t.Errorf("RangeFraction(-∞,0) = %v, want 0", got)
	}
}

// TestLessFractionUniform: range interpolation over a uniform domain should
// land near the true fraction.
func TestLessFractionUniform(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.Int(int64(i%100)))
	}
	h := NewEquiDepth(vals, 20)
	cases := []struct {
		v    int64
		want float64
	}{
		{50, 0.5}, {90, 0.9}, {10, 0.1},
	}
	for _, c := range cases {
		got := h.LessFraction(value.Int(c.v), false)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("LessFraction(%d) = %v, want ≈%v", c.v, got, c.want)
		}
	}
	if f := h.LessFraction(value.Int(1000), true); f != 1 {
		t.Errorf("LessFraction above the domain = %v, want 1", f)
	}
	if f := h.LessFraction(value.Int(-5), false); f != 0 {
		t.Errorf("LessFraction below the domain = %v, want 0", f)
	}
}

func TestRangeFractionTwoSided(t *testing.T) {
	var vals []value.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, value.Int(int64(i%100)))
	}
	h := NewEquiDepth(vals, 20)
	got := h.RangeFraction(value.Int(20), value.Int(30), true, false)
	if math.Abs(got-0.1) > 0.05 {
		t.Errorf("RangeFraction[20,30) = %v, want ≈0.1", got)
	}
	// One-sided ranges fall back to the matching LessFraction.
	lo := h.RangeFraction(value.Int(90), nil, true, false)
	if math.Abs(lo-0.1) > 0.05 {
		t.Errorf("RangeFraction[90,∞) = %v, want ≈0.1", lo)
	}
	if f := h.RangeFraction(value.Int(70), value.Int(20), true, true); f != 0 {
		t.Errorf("inverted range = %v, want 0", f)
	}
}

// TestJoinSelectivity: overlapping uniform domains reproduce the containment
// estimate; disjoint domains estimate (near) zero, which the global min-NDV
// rule cannot do.
func TestJoinSelectivity(t *testing.T) {
	uni := func(n, dom int) *Histogram {
		var vals []value.Value
		for i := 0; i < n; i++ {
			vals = append(vals, value.Int(int64(i%dom)))
		}
		return NewEquiDepth(vals, 16)
	}
	a, b := uni(1000, 100), uni(500, 100)
	sel, ok := JoinSelectivity(a, b)
	if !ok {
		t.Fatal("join selectivity not computed")
	}
	if math.Abs(sel-0.01) > 0.005 {
		t.Errorf("same-domain join selectivity = %v, want ≈1/100", sel)
	}

	var shifted []value.Value
	for i := 0; i < 500; i++ {
		shifted = append(shifted, value.Int(int64(1000+i%100)))
	}
	c := NewEquiDepth(shifted, 16)
	sel, ok = JoinSelectivity(a, c)
	if !ok {
		t.Fatal("disjoint join selectivity not computed")
	}
	if sel > 0.0001 {
		t.Errorf("disjoint-domain join selectivity = %v, want ≈0", sel)
	}
	if _, ok := JoinSelectivity(a, nil); ok {
		t.Error("nil histogram should report not-ok")
	}
}

// TestJoinSelectivityHotKey: a skewed probe side joined with a uniform key
// side estimates far more matches than the min-NDV rule would.
func TestJoinSelectivityHotKey(t *testing.T) {
	var fact []value.Value
	for i := 0; i < 1000; i++ {
		v := int64(i % 50)
		if i < 700 {
			v = 3 // hot foreign key
		}
		fact = append(fact, value.Int(v))
	}
	var dim []value.Value
	for i := 0; i < 50; i++ {
		dim = append(dim, value.Int(int64(i)))
	}
	sel, ok := JoinSelectivity(NewEquiDepth(fact, 16), NewEquiDepth(dim, 16))
	if !ok {
		t.Fatal("not computed")
	}
	// True selectivity: every fact row matches exactly one dim row →
	// 1000 matches / (1000·50) = 1/50 = 0.02.
	if math.Abs(sel-0.02) > 0.01 {
		t.Errorf("hot-key join selectivity = %v, want ≈0.02", sel)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewEquiDepth(ints(1, 1, 2, 3, 9), 2)
	s := h.String()
	for _, want := range []string{"equi-depth 5 rows", "buckets:", "×"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestNonNumericKinds: strings order correctly and interpolate at the
// half-bucket default instead of failing.
func TestNonNumericKinds(t *testing.T) {
	var vals []value.Value
	for _, s := range []string{"ant", "bee", "cat", "dog", "eel", "fox"} {
		vals = append(vals, value.String(s))
	}
	h := NewEquiDepth(vals, 3)
	if f := h.EqFraction(value.String("cat")); f <= 0 {
		t.Errorf("string EqFraction = %v, want > 0", f)
	}
	lt := h.LessFraction(value.String("cap"), false)
	if lt <= 0 || lt >= 1 {
		t.Errorf("string LessFraction = %v, want interior", lt)
	}
}

func TestAbsorbIncremental(t *testing.T) {
	h := NewEquiDepth(ints(1, 2, 3, 4, 5, 6, 7, 8), 4)
	rows := h.Rows
	// In-range value lands in an existing bucket.
	h.Absorb(value.Int(3))
	if h.Rows != rows+1 {
		t.Fatalf("Rows = %d, want %d", h.Rows, rows+1)
	}
	if f := h.EqFraction(value.Int(3)); f <= 0 {
		t.Errorf("EqFraction(3) = %v after absorb, want > 0", f)
	}
	// Out-of-range value grows a singleton bucket, so it estimates exactly.
	h.Absorb(value.Int(100))
	if f := h.EqFraction(value.Int(100)); f != 1.0/float64(h.Rows) {
		t.Errorf("EqFraction(100) = %v, want exact 1/%d", f, h.Rows)
	}
	// Absorb into a fresh zero histogram is the degenerate bootstrap case the
	// live statistics layer relies on for extents analyzed while empty.
	var z Histogram
	z.Absorb(value.Int(9))
	z.Absorb(value.Int(9))
	if z.Rows != 2 || len(z.Buckets) != 1 || z.Buckets[0].Rows != 2 {
		t.Fatalf("bootstrap absorb = %+v", z)
	}
}

func TestAbsorbCompactBoundsBuckets(t *testing.T) {
	var h Histogram
	n := 16 * DefaultBuckets
	for i := 0; i < n; i++ {
		h.Absorb(value.Int(int64(i)))
	}
	if h.Rows != n {
		t.Fatalf("Rows = %d, want %d", h.Rows, n)
	}
	if len(h.Buckets) > 4*DefaultBuckets {
		t.Fatalf("compact failed to bound buckets: %d > %d", len(h.Buckets), 4*DefaultBuckets)
	}
	if h.NDV() != n {
		t.Errorf("NDV = %d, want %d (compaction must preserve distinct counts)", h.NDV(), n)
	}
	// Mass is conserved across compactions.
	total := 0
	for _, b := range h.Buckets {
		total += b.Rows
	}
	if total != n {
		t.Errorf("bucket mass = %d, want %d", total, n)
	}
}

func TestCloneIndependence(t *testing.T) {
	if (*Histogram)(nil).Clone() != nil {
		t.Fatalf("nil Clone must stay nil")
	}
	h := NewEquiDepth(ints(1, 2, 3, 4, 5), 4)
	c := h.Clone()
	if c == h {
		t.Fatalf("Clone returned the receiver")
	}
	rows, buckets := c.Rows, len(c.Buckets)
	// Mutating the original (the live copy) must not leak into the clone
	// (the published copy) — this is the stats-publication contract.
	for i := 0; i < 64; i++ {
		h.Absorb(value.Int(int64(1000 + i)))
	}
	if c.Rows != rows || len(c.Buckets) != buckets {
		t.Fatalf("published clone mutated: rows %d→%d buckets %d→%d",
			rows, c.Rows, buckets, len(c.Buckets))
	}
}

func TestUnabsorbInverseOfAbsorb(t *testing.T) {
	h := NewEquiDepth(ints(1, 1, 2, 3, 5, 8, 8, 8), 4)
	before := h.Clone()
	h.Absorb(value.Int(5))
	h.Unabsorb(value.Int(5))
	if h.Rows != before.Rows || len(h.Buckets) != len(before.Buckets) {
		t.Fatalf("Unabsorb did not invert Absorb: %v vs %v", h, before)
	}
	for i := range h.Buckets {
		if h.Buckets[i] != before.Buckets[i] {
			t.Fatalf("bucket %d changed: %+v vs %+v", i, h.Buckets[i], before.Buckets[i])
		}
	}
}

func TestUnabsorbDropsEmptiedBucket(t *testing.T) {
	// 7 is a heavy hitter in its own singleton bucket; draining it removes
	// the bucket and its equality estimate drops to zero.
	h := NewEquiDepth(ints(1, 2, 7, 7, 7, 7, 9, 10), 4)
	if f := h.EqFraction(value.Int(7)); f != 0.5 {
		t.Fatalf("EqFraction(7) = %v, want 0.5", f)
	}
	for i := 0; i < 4; i++ {
		h.Unabsorb(value.Int(7))
	}
	if h.Rows != 4 {
		t.Fatalf("Rows = %d, want 4", h.Rows)
	}
	if f := h.EqFraction(value.Int(7)); f != 0 {
		t.Fatalf("EqFraction(7) after drain = %v, want 0", f)
	}
	// The neighbouring buckets are intact.
	if f := h.LessFraction(value.Int(3), true); f != 0.5 {
		t.Fatalf("LessFraction(<=3) = %v, want 0.5", f)
	}
}

func TestUnabsorbOutsideBuckets(t *testing.T) {
	// A value in no bucket (histogram compacted past its bounds) still
	// decrements the total so fractions stay honest.
	h := NewEquiDepth(ints(10, 20, 30, 40), 4)
	h.Unabsorb(value.Int(25)) // gap between buckets
	h.Unabsorb(value.Int(99)) // beyond the last bucket
	if h.Rows != 2 {
		t.Fatalf("Rows = %d, want 2", h.Rows)
	}
	if len(h.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 untouched", len(h.Buckets))
	}
}

func TestUnabsorbNilAndEmpty(t *testing.T) {
	var h *Histogram
	h.Unabsorb(value.Int(1)) // nil-safe no-op
	h = NewEquiDepth(ints(5), 1)
	h.Unabsorb(value.Int(5))
	if h.Rows != 0 || len(h.Buckets) != 0 {
		t.Fatalf("drained histogram = %v, want empty", h)
	}
	h.Unabsorb(value.Int(5)) // underflow-safe no-op
	if h.Rows != 0 {
		t.Fatalf("Rows went negative: %d", h.Rows)
	}
}
