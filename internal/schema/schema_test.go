package schema

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func TestSupplierPartTypes(t *testing.T) {
	c := SupplierPart()

	// The §4 types, verbatim.
	sup, err := c.ExtentType("SUPPLIER")
	if err != nil {
		t.Fatalf("SUPPLIER: %v", err)
	}
	wantSup := types.NewSet(types.NewTuple(
		"eid", types.OIDType,
		"sname", types.StringType,
		"parts", types.NewSet(types.NewTuple("pid", types.OIDType)),
	))
	if !types.Equal(sup, wantSup) {
		t.Errorf("SUPPLIER type = %s, want %s", sup, wantSup)
	}

	part, err := c.ExtentType("PART")
	if err != nil {
		t.Fatalf("PART: %v", err)
	}
	wantPart := types.NewSet(types.NewTuple(
		"pid", types.OIDType,
		"pname", types.StringType,
		"price", types.IntType,
		"color", types.StringType,
	))
	if !types.Equal(part, wantPart) {
		t.Errorf("PART type = %s, want %s", part, wantPart)
	}

	del, err := c.ExtentType("DELIVERY")
	if err != nil {
		t.Fatalf("DELIVERY: %v", err)
	}
	wantDel := types.NewSet(types.NewTuple(
		"did", types.OIDType,
		"supplier", types.OIDType,
		"supply", types.NewSet(types.NewTuple("part", types.OIDType, "quantity", types.IntType)),
		"date", types.DateType,
	))
	if !types.Equal(del, wantDel) {
		t.Errorf("DELIVERY type = %s, want %s", del, wantDel)
	}
}

func TestCatalogLookups(t *testing.T) {
	c := SupplierPart()
	if _, ok := c.Class("Supplier"); !ok {
		t.Fatalf("Class(Supplier) missing")
	}
	if _, ok := c.ByExtent("SUPPLIER"); !ok {
		t.Fatalf("ByExtent(SUPPLIER) missing")
	}
	if _, ok := c.Class("Nope"); ok {
		t.Fatalf("unknown class found")
	}
	exts := c.Extents()
	if len(exts) != 3 || exts[0] != "DELIVERY" || exts[1] != "PART" || exts[2] != "SUPPLIER" {
		t.Fatalf("Extents = %v", exts)
	}
	if _, err := c.ExtentType("NOPE"); err == nil {
		t.Fatalf("unknown extent must error")
	}
}

func TestDefineValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.Define(&Class{Name: "A"}); err == nil {
		t.Fatalf("incomplete class must fail")
	}
	ok := &Class{Name: "A", Extent: "AS", IDField: "aid",
		Attrs: []Attr{{Name: "x", Kind: Plain, Type: types.IntType}}}
	if err := c.Define(ok); err != nil {
		t.Fatalf("Define: %v", err)
	}
	if err := c.Define(&Class{Name: "A", Extent: "A2", IDField: "aid"}); err == nil {
		t.Fatalf("duplicate class name must fail")
	}
	if err := c.Define(&Class{Name: "B", Extent: "AS", IDField: "bid"}); err == nil {
		t.Fatalf("duplicate extent must fail")
	}
	dupAttr := &Class{Name: "C", Extent: "CS", IDField: "cid",
		Attrs: []Attr{{Name: "cid", Kind: Plain, Type: types.IntType}}}
	if err := c.Define(dupAttr); err == nil {
		t.Fatalf("attribute colliding with id field must fail")
	}
}

func TestRefToUnknownClassFails(t *testing.T) {
	c := NewCatalog()
	if err := c.Define(&Class{Name: "A", Extent: "AS", IDField: "aid",
		Attrs: []Attr{{Name: "r", Kind: Ref, RefClass: "Ghost"}}}); err != nil {
		t.Fatalf("Define: %v", err)
	}
	if _, err := c.ExtentType("AS"); err == nil {
		t.Fatalf("dangling class reference must fail at type mapping")
	}
}

func TestCatalogString(t *testing.T) {
	s := SupplierPart().String()
	for _, want := range []string{
		"Class Supplier with extension SUPPLIER",
		"parts : { Part }",
		"supplier : Supplier",
		"end Delivery",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("catalog rendering missing %q in:\n%s", want, s)
		}
	}
}
