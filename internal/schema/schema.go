// Package schema models the logical database design phase of the paper (§3):
// OOSQL class definitions with extensions are mapped to ADL table types. Each
// class extension becomes a table of (possibly complex) objects; a field of
// type oid is added to represent object identity, and class references are
// implemented by oid-valued pointers — a reference-valued attribute becomes
// an oid attribute, and a set-of-references attribute becomes a set of unary
// tuples holding oids (the paper's parts: {(pid: oid)} mapping for
// parts_supplied: {Part}).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// AttrKind distinguishes how an OOSQL attribute type maps to ADL.
type AttrKind uint8

// Attribute kinds.
const (
	// Plain attributes keep their declared ADL type.
	Plain AttrKind = iota
	// Ref attributes reference a single object of class RefClass; they map
	// to an oid-typed attribute.
	Ref
	// RefSet attributes hold a set of references to RefClass objects; they
	// map to a set of unary tuples {(idField: oid)}.
	RefSet
)

// Attr declares one attribute of a class.
type Attr struct {
	Name string
	Kind AttrKind
	// Type is the declared type for Plain attributes (possibly complex).
	// Class references inside plain types are declared with types.Ref
	// (e.g. Delivery.supply = {(part: Ref(Part), quantity: int)}); the ADL
	// mapping erases them to oid.
	Type types.Type
	// RefClass names the referenced class for Ref and RefSet attributes.
	RefClass string
	// Surface is the OOSQL-level attribute name when it differs from the
	// ADL name (the paper abbreviates parts_supplied to parts in §4's ADL
	// types; queries may use either).
	Surface string
}

// Class is an OOSQL class with an extension ("base table").
type Class struct {
	// Name of the class, e.g. "Supplier".
	Name string
	// Extent is the base table name, e.g. "SUPPLIER".
	Extent string
	// IDField is the oid attribute added by the logical design; the paper
	// uses eid for Supplier and pid for Part.
	IDField string
	Attrs   []Attr
}

// Catalog is the database schema: the set of classes, addressable by class
// name or extent name.
type Catalog struct {
	classes []*Class
	byName  map[string]*Class
	byExt   map[string]*Class
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: map[string]*Class{}, byExt: map[string]*Class{}}
}

// Define adds a class to the catalog. It validates that names are fresh and
// that the id field does not collide with a declared attribute.
func (c *Catalog) Define(cl *Class) error {
	if cl.Name == "" || cl.Extent == "" || cl.IDField == "" {
		return fmt.Errorf("schema: class needs name, extent and id field")
	}
	if _, dup := c.byName[cl.Name]; dup {
		return fmt.Errorf("schema: duplicate class %q", cl.Name)
	}
	if _, dup := c.byExt[cl.Extent]; dup {
		return fmt.Errorf("schema: duplicate extent %q", cl.Extent)
	}
	seen := map[string]bool{cl.IDField: true}
	for _, a := range cl.Attrs {
		if seen[a.Name] {
			return fmt.Errorf("schema: class %q: duplicate attribute %q", cl.Name, a.Name)
		}
		seen[a.Name] = true
	}
	c.classes = append(c.classes, cl)
	c.byName[cl.Name] = cl
	c.byExt[cl.Extent] = cl
	return nil
}

// Class looks a class up by class name.
func (c *Catalog) Class(name string) (*Class, bool) {
	cl, ok := c.byName[name]
	return cl, ok
}

// ByExtent looks a class up by extent (base table) name.
func (c *Catalog) ByExtent(ext string) (*Class, bool) {
	cl, ok := c.byExt[ext]
	return cl, ok
}

// Extents returns all extent names, sorted.
func (c *Catalog) Extents() []string {
	out := make([]string, 0, len(c.classes))
	for _, cl := range c.classes {
		out = append(out, cl.Extent)
	}
	sort.Strings(out)
	return out
}

// Classes returns the classes in definition order.
func (c *Catalog) Classes() []*Class { return c.classes }

// refIDField returns the id-field name used when a reference to class name
// is flattened into a unary tuple (the paper names the member of
// parts: {(pid: oid)} after the referenced class's id field).
func (c *Catalog) refIDField(name string) string {
	if cl, ok := c.byName[name]; ok {
		return cl.IDField
	}
	// Fall back to first letter + "id" for undefined classes so TableType
	// can still report a best-effort error later.
	return strings.ToLower(name[:1]) + "id"
}

// AttrType returns the reference-annotated type an attribute maps to under
// the logical design rules: references become types.Ref, set-of-references
// become sets of unary Ref tuples. Erase the result for the pure ADL view.
func (c *Catalog) AttrType(a Attr) (types.Type, error) {
	switch a.Kind {
	case Plain:
		if a.Type == nil {
			return nil, fmt.Errorf("schema: plain attribute %q lacks a type", a.Name)
		}
		return a.Type, nil
	case Ref:
		if _, ok := c.byName[a.RefClass]; !ok {
			return nil, fmt.Errorf("schema: attribute %q references unknown class %q", a.Name, a.RefClass)
		}
		return types.Ref{Class: a.RefClass}, nil
	case RefSet:
		if _, ok := c.byName[a.RefClass]; !ok {
			return nil, fmt.Errorf("schema: attribute %q references unknown class %q", a.Name, a.RefClass)
		}
		return types.NewSet(types.NewTuple(c.refIDField(a.RefClass), types.Ref{Class: a.RefClass})), nil
	}
	return nil, fmt.Errorf("schema: unknown attribute kind %d", a.Kind)
}

// ObjectType returns the reference-annotated tuple type of one object of the
// class: the identity oid field first, then the mapped attributes. The
// typechecker uses this view; the ADL view is its erasure.
func (c *Catalog) ObjectType(cl *Class) (*types.Tuple, error) {
	tt := &types.Tuple{Fields: []types.Field{{Name: cl.IDField, Type: types.OIDType}}}
	for _, a := range cl.Attrs {
		at, err := c.AttrType(a)
		if err != nil {
			return nil, fmt.Errorf("schema: class %q: %w", cl.Name, err)
		}
		tt.Fields = append(tt.Fields, types.Field{Name: a.Name, Type: at})
	}
	return tt, nil
}

// TableType returns the pure ADL table type of the class extension (all
// class references erased to oid).
func (c *Catalog) TableType(cl *Class) (*types.Set, error) {
	tt, err := c.ObjectType(cl)
	if err != nil {
		return nil, err
	}
	return types.Erase(types.NewSet(tt)).(*types.Set), nil
}

// ExtentType returns the ADL table type for an extent name.
func (c *Catalog) ExtentType(ext string) (*types.Set, error) {
	cl, ok := c.byExt[ext]
	if !ok {
		return nil, fmt.Errorf("schema: unknown base table %q", ext)
	}
	return c.TableType(cl)
}

// ResolveAttr maps an OOSQL-surface attribute name of a class to its
// declaration, honouring Surface aliases (parts_supplied → parts).
func (cl *Class) ResolveAttr(name string) (Attr, bool) {
	for _, a := range cl.Attrs {
		if a.Name == name || (a.Surface != "" && a.Surface == name) {
			return a, true
		}
	}
	return Attr{}, false
}

// String renders the catalog in the paper's class-definition style.
func (c *Catalog) String() string {
	var b strings.Builder
	for i, cl := range c.classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "Class %s with extension %s\n", cl.Name, cl.Extent)
		b.WriteString("  attributes\n")
		for _, a := range cl.Attrs {
			switch a.Kind {
			case Plain:
				fmt.Fprintf(&b, "    %s : %s\n", a.Name, a.Type)
			case Ref:
				fmt.Fprintf(&b, "    %s : %s\n", a.Name, a.RefClass)
			case RefSet:
				fmt.Fprintf(&b, "    %s : { %s }\n", a.Name, a.RefClass)
			}
		}
		fmt.Fprintf(&b, "end %s\n", cl.Name)
	}
	return b.String()
}
