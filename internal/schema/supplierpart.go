package schema

import "repro/internal/types"

// SupplierPart returns the paper's §2 example schema:
//
//	Class Supplier with extension SUPPLIER
//	  attributes sname: string, parts_supplied: {Part}
//	Class Part with extension PART
//	  attributes pname: string, price: int, color: string
//	Class Delivery with extension DELIVERY
//	  attributes supplier: Supplier,
//	             supply: {(part: Part, quantity: int)}, date: date
//
// mapped, per §3/§4, to the ADL types
//
//	SUPPLIER : {(eid: oid, sname: string, parts: {(pid: oid)})}
//	PART     : {(pid: oid, pname: string, price: int, color: string)}
//	DELIVERY : {(did: oid, supplier: oid,
//	             supply: {(part: oid, quantity: int)}, date: date)}
//
// The paper abbreviates Supplier.parts_supplied to parts at the ADL level;
// we follow that by naming the attribute parts in both worlds and noting the
// OOSQL surface name as an alias handled by the parser fixture.
func SupplierPart() *Catalog {
	c := NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.Define(&Class{
		Name:    "Part",
		Extent:  "PART",
		IDField: "pid",
		Attrs: []Attr{
			{Name: "pname", Kind: Plain, Type: types.StringType},
			{Name: "price", Kind: Plain, Type: types.IntType},
			{Name: "color", Kind: Plain, Type: types.StringType},
		},
	}))
	must(c.Define(&Class{
		Name:    "Supplier",
		Extent:  "SUPPLIER",
		IDField: "eid",
		Attrs: []Attr{
			{Name: "sname", Kind: Plain, Type: types.StringType},
			{Name: "parts", Kind: RefSet, RefClass: "Part", Surface: "parts_supplied"},
		},
	}))
	must(c.Define(&Class{
		Name:    "Delivery",
		Extent:  "DELIVERY",
		IDField: "did",
		Attrs: []Attr{
			{Name: "supplier", Kind: Ref, RefClass: "Supplier"},
			{Name: "supply", Kind: Plain, Type: types.NewSet(types.NewTuple(
				"part", types.Ref{Class: "Part"},
				"quantity", types.IntType,
			))},
			{Name: "date", Kind: Plain, Type: types.DateType},
		},
	}))
	return c
}
