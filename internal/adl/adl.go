// Package adl defines the complex object algebra ADL of Steenhagen et al.
// (VLDB 1994, §3): a typed algebra in the style of the NF² algebra of
// [ScSc86] with the tuple ⟨ ⟩ and set { } constructors and the basic type
// oid. The operators are the standard set (comparison) operators, multiple
// union (flatten), extended Cartesian product, division, the map operator α,
// selection σ, projection π, restructuring operators nest ν and unnest μ,
// the join family — regular join ⋈, semijoin ⋉, antijoin ▷, and the paper's
// new nestjoin ⊣ — plus quantifiers and aggregate functions. Iterators (map,
// select, joins, quantifiers) take lambda-style parameter expressions in
// which arbitrary nesting may occur; that nesting is exactly what the
// rewrite package removes.
package adl

import "repro/internal/value"

// Expr is an ADL expression. The concrete node types below form a closed
// sum; the rewriter pattern-matches on them.
type Expr interface {
	exprNode()
	// String renders the expression in an ASCII version of the paper's
	// notation; see print.go.
	String() string
}

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

// Const is a literal value.
type Const struct{ Val value.Value }

// Var references an iteration variable bound by an enclosing iterator
// (map, select, join, quantifier) or a with-binding.
type Var struct{ Name string }

// Table references a base table (class extension) by name. The goal of the
// paper's optimization is to make Table nodes occur only at top level, never
// nested inside iterator parameter expressions.
type Table struct{ Name string }

// ---------------------------------------------------------------------------
// Tuple constructors and accessors
// ---------------------------------------------------------------------------

// Field is attribute access e.a. When e evaluates to an oid, the reference
// is implicitly followed through the object store (OOSQL path expressions,
// e.g. d.supplier.sname); the Materialize operator is the explicit, logical
// marker for such pointer navigation that a planner can map to an assembly
// algorithm [BlMG93].
type Field struct {
	X    Expr
	Name string
}

// TupleExpr builds a tuple value ⟨a1 = e1, ..., an = en⟩.
type TupleExpr struct {
	Names []string
	Elems []Expr
}

// SetExpr builds a set value {e1, ..., en}.
type SetExpr struct{ Elems []Expr }

// Subscript is the paper's tuple subscription e[a1, ..., an] (semantics
// rule 2): projection of a single tuple onto the named attributes.
type Subscript struct {
	X     Expr
	Attrs []string
}

// ExceptExpr is the paper's tuple "update" e except (a1=e1, ..., c1=e1')
// (semantics rule 3): update existing fields, keep the rest, append new ones.
type ExceptExpr struct {
	X     Expr
	Names []string
	Elems []Expr
}

// Concat is tuple concatenation x ∘ y.
type Concat struct{ L, R Expr }

// ---------------------------------------------------------------------------
// Scalar operators
// ---------------------------------------------------------------------------

// CmpOp enumerates comparison operators, including the set comparison
// operators of §5.2 whose rewriting into quantifier expressions is Table 1.
type CmpOp uint8

// Comparison operators. The set comparators follow the paper's θ ∈
// {∈, ⊂, ⊆, =, ⊃, ⊇, ∋}; NotIn/NotHas and the negations of the others are
// expressed with Not.
const (
	Eq    CmpOp = iota // =   (atoms, tuples, and set equality)
	Ne                 // ≠
	Lt                 // <   (ordered atoms)
	Le                 // ≤
	Gt                 // >
	Ge                 // ≥
	In                 // ∈   element-of
	Sub                // ⊂   proper subset
	SubEq              // ⊆   subset
	Sup                // ⊃   proper superset
	SupEq              // ⊇   superset
	Has                // ∋   contains element (x.c ∋ Y′: Y′ is a member of the set-of-sets x.c)
)

// Cmp is a binary comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Subtract
	Mul
	Div
)

// Arith is binary arithmetic on int/float atoms.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ X Expr }

// And is logical conjunction.
type And struct{ L, R Expr }

// Or is logical disjunction.
type Or struct{ L, R Expr }

// SetOpKind enumerates the binary set operators.
type SetOpKind uint8

// Binary set operators.
const (
	Union SetOpKind = iota
	Intersect
	Diff
)

// SetOp is a binary set operation L op R.
type SetOp struct {
	Op   SetOpKind
	L, R Expr
}

// ---------------------------------------------------------------------------
// Iterators and table operators
// ---------------------------------------------------------------------------

// Flatten is the paper's multiple union ∪(e) (semantics rule 1).
type Flatten struct{ X Expr }

// Map is the map operator α[x : body](src) (semantics rule 4): apply the
// function body to every element of src. The body may be arbitrarily
// complex, from a simple projection to the production of complex results.
type Map struct {
	Var  string
	Body Expr
	Src  Expr
}

// Select is the selection σ[x : pred](src) (semantics rule 5).
type Select struct {
	Var  string
	Pred Expr
	Src  Expr
}

// Project is the projection π[a1, ..., an](e) (semantics rule 6), defined on
// sets of tuples.
type Project struct {
	Attrs []string
	X     Expr
}

// Unnest is μ_attr(e) (semantics rule 7): flatten the set-valued attribute
// attr into the parent tuples.
type Unnest struct {
	Attr string
	X    Expr
}

// Nest is ν_{A→a}(e) (semantics rule 8): group by the attributes not in
// Attrs and collect each group's Attrs-subtuples into a set-valued
// attribute As.
type Nest struct {
	Attrs []string
	As    string
	X     Expr
}

// Product is the extended Cartesian product (semantics rule 9), in which
// operand tuples are concatenated.
type Product struct{ L, R Expr }

// JoinKind enumerates the join family.
type JoinKind uint8

// Join kinds. Inner/Semi/Anti are the relational operators of semantics
// rules 10–12; Nest is the paper's nestjoin ⊣ (Definition 1, §6.1); Outer is
// the left outer join used by the [GaWo87] COUNT-bug repair.
const (
	Inner JoinKind = iota
	Semi
	Anti
	NestJ
	Outer
)

// Join is the join family: L kind(LVar, RVar : On) R. For the nestjoin,
// As names the set-valued result attribute and RFun — if non-nil — is the
// extended nestjoin's function applied to each matching right-operand tuple
// ([StAB94]; the simple nestjoin of Definition 1 has RFun == nil, meaning
// identity). For Outer joins, unmatched left tuples are padded with null.
type Join struct {
	Kind       JoinKind
	LVar, RVar string
	On         Expr
	As         string // NestJ only
	RFun       Expr   // NestJ only; function of LVar and RVar
	L, R       Expr
}

// Divide is relational division e1 ÷ e2 [Codd72]: with SCH(e1) = A ∪ B and
// SCH(e2) = B, it yields the A-subtuples of e1 paired with every e2 tuple.
// The paper lists division among ADL's operators as the classical way to
// handle universal quantification.
type Divide struct{ L, R Expr }

// QuantKind enumerates quantifiers.
type QuantKind uint8

// Quantifier kinds.
const (
	Exists QuantKind = iota
	Forall
)

// Quant is a quantifier expression ∃x ∈ src • pred or ∀x ∈ src • pred.
// Quantifiers are iterators: the range src may be a base table or a
// set-valued attribute, and pred may nest further iterators.
type Quant struct {
	Kind QuantKind
	Var  string
	Src  Expr
	Pred Expr
}

// AggOp enumerates aggregate functions.
type AggOp uint8

// Aggregate functions.
const (
	Count AggOp = iota
	Sum
	Min
	Max
	Avg
)

// Agg applies an aggregate function to a set.
type Agg struct {
	Op AggOp
	X  Expr
}

// Rename is the renaming operator ρ_{from→to}(e) (§3 lists ρ among ADL's
// operators): each tuple's attribute From is renamed To. It is used to
// repair attribute naming conflicts before concatenating operators.
type Rename struct {
	From, To string
	X        Expr
}

// Materialize is the logical materialize operator of [BlMG93]: it makes the
// use of inter-object references explicit so algebraic transformations and a
// pointer-based access algorithm (assembly) can be applied. For each tuple x
// of the table X, the oid-valued attribute Attr (or set of unary oid tuples)
// is dereferenced and the referenced object(s) are added as attribute As.
type Materialize struct {
	X    Expr
	Attr string
	As   string
}

// Let is the with-construct of the paper's general query format: Let binds
// Var to Val inside Body. Translation inlines Lets before rewriting.
type Let struct {
	Var  string
	Val  Expr
	Body Expr
}

func (*Const) exprNode()       {}
func (*Var) exprNode()         {}
func (*Table) exprNode()       {}
func (*Field) exprNode()       {}
func (*TupleExpr) exprNode()   {}
func (*SetExpr) exprNode()     {}
func (*Subscript) exprNode()   {}
func (*ExceptExpr) exprNode()  {}
func (*Concat) exprNode()      {}
func (*Cmp) exprNode()         {}
func (*Arith) exprNode()       {}
func (*Not) exprNode()         {}
func (*And) exprNode()         {}
func (*Or) exprNode()          {}
func (*SetOp) exprNode()       {}
func (*Flatten) exprNode()     {}
func (*Map) exprNode()         {}
func (*Select) exprNode()      {}
func (*Project) exprNode()     {}
func (*Unnest) exprNode()      {}
func (*Nest) exprNode()        {}
func (*Product) exprNode()     {}
func (*Join) exprNode()        {}
func (*Divide) exprNode()      {}
func (*Quant) exprNode()       {}
func (*Agg) exprNode()         {}
func (*Rename) exprNode()      {}
func (*Materialize) exprNode() {}
func (*Let) exprNode()         {}
