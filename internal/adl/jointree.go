package adl

import (
	"fmt"

	"repro/internal/value"
)

// Join-tree decomposition and recomposition. A chain of inner joins produced
// by the rewriter — ((A ⋈ B) ⋈ C) ⋈ ... — fixes an evaluation order that the
// rewriter chose for convenience, not for cost. DecomposeJoinTree flattens
// such a tree into its leaf relations and a bag of predicate conjuncts
// rewritten in terms of per-leaf variables, so an optimizer can re-derive
// any join order; ComposeConjunct is the inverse direction, re-binding leaf
// variables to the operand variables of a newly chosen join node. Only the
// regular (inner) join without a right-tuple function is freely reorderable:
// semi/anti/nest/outer joins and extended nestjoins are treated as opaque
// leaves.

// JoinLeaf is one relation of a decomposed inner-join tree: a leaf
// expression (base extent or arbitrary subplan) and the fresh variable its
// rows are referred to by in the decomposed conjuncts.
type JoinLeaf struct {
	Var  string
	Expr Expr
}

// JoinTree is the flattened form of an inner-join chain: the leaf relations
// and every predicate conjunct of every join in the chain, each rewritten so
// it references leaf variables only.
type JoinTree struct {
	Leaves []JoinLeaf
	Conjs  []Expr
}

// Reorderable reports whether a join node may participate in join-order
// enumeration: the regular inner join, with no right-tuple function.
func Reorderable(j *Join) bool { return j.Kind == Inner && j.RFun == nil }

// DecomposeJoinTree flattens the maximal inner-join tree rooted at j into a
// JoinTree. attrsOf resolves the output attribute names of a leaf expression
// (nil means unknown); it is needed to re-point a predicate like ab.x — where
// ab ranges over the concatenated tuples of a multi-leaf operand — at the
// unique leaf owning attribute x. Decomposition fails (ok == false) when a
// conjunct's references cannot be attributed faithfully: an ambiguous or
// unresolvable attribute, a bare reference to an operand tuple as a whole, or
// a conjunct that rebinds an operand variable in a nested iterator.
func DecomposeJoinTree(j *Join, attrsOf func(Expr) []string) (*JoinTree, bool) {
	d := &treeDecomposer{attrsOf: attrsOf, root: j}
	leaves, conjs, ok := d.decompose(j)
	if !ok {
		return nil, false
	}
	return &JoinTree{Leaves: leaves, Conjs: conjs}, true
}

type treeDecomposer struct {
	attrsOf func(Expr) []string
	root    *Join
	nleaf   int
}

// decompose returns e's leaves and leaf-variable conjuncts. A non-join (or
// non-reorderable join) expression becomes a single leaf with no conjuncts.
func (d *treeDecomposer) decompose(e Expr) ([]JoinLeaf, []Expr, bool) {
	j, isJoin := e.(*Join)
	if !isJoin || !Reorderable(j) {
		v := Fresh(fmt.Sprintf("r%d", d.nleaf), d.root)
		d.nleaf++
		return []JoinLeaf{{Var: v, Expr: e}}, nil, true
	}
	lLeaves, lConjs, ok := d.decompose(j.L)
	if !ok {
		return nil, nil, false
	}
	rLeaves, rConjs, ok := d.decompose(j.R)
	if !ok {
		return nil, nil, false
	}
	conjs := append(lConjs, rConjs...)
	for _, c := range Conjuncts(j.On) {
		c, ok = d.rebase(c, j.LVar, lLeaves)
		if !ok {
			return nil, nil, false
		}
		c, ok = d.rebase(c, j.RVar, rLeaves)
		if !ok {
			return nil, nil, false
		}
		conjs = append(conjs, c)
	}
	return append(lLeaves, rLeaves...), conjs, true
}

// rebase rewrites every reference to the operand variable v in conjunct c
// into a reference to the leaf owning the accessed attribute.
func (d *treeDecomposer) rebase(c Expr, v string, leaves []JoinLeaf) (Expr, bool) {
	if !HasFree(c, v) {
		return c, true
	}
	// A conjunct that rebinds v in a nested iterator would make the textual
	// rewrite below unsound; such shapes do not occur in rewriter output.
	if bindsVar(c, v) {
		return nil, false
	}
	if len(leaves) == 1 {
		// Single-leaf operand: every reference to v is a reference to the
		// leaf, attribute knowledge not needed.
		return Subst(c, v, V(leaves[0].Var)), true
	}
	owner, ok := d.attrOwner(leaves)
	if !ok {
		return nil, false
	}
	failed := false
	out := Transform(c, func(x Expr) Expr {
		switch n := x.(type) {
		case *Field:
			if vr, isVar := n.X.(*Var); isVar && vr.Name == v {
				lf, found := owner[n.Name]
				if !found {
					failed = true
					return x
				}
				return &Field{X: V(lf), Name: n.Name}
			}
		case *Subscript:
			if vr, isVar := n.X.(*Var); isVar && vr.Name == v {
				lf, found := sameOwner(owner, n.Attrs)
				if !found {
					failed = true
					return x
				}
				return &Subscript{X: V(lf), Attrs: n.Attrs}
			}
		}
		return x
	})
	// Any remaining free occurrence of v (e.g. the bare operand tuple) has no
	// per-leaf meaning.
	if failed || HasFree(out, v) {
		return nil, false
	}
	return out, true
}

// attrOwner maps every attribute of the given leaves to the variable of its
// unique owner; ambiguity or an attribute-less leaf fails.
func (d *treeDecomposer) attrOwner(leaves []JoinLeaf) (map[string]string, bool) {
	owner := map[string]string{}
	for _, lf := range leaves {
		var attrs []string
		if d.attrsOf != nil {
			attrs = d.attrsOf(lf.Expr)
		}
		if len(attrs) == 0 {
			return nil, false
		}
		for _, a := range attrs {
			if _, dup := owner[a]; dup {
				return nil, false
			}
			owner[a] = lf.Var
		}
	}
	return owner, true
}

// sameOwner resolves a multi-attribute subscript: all attributes must belong
// to the same leaf.
func sameOwner(owner map[string]string, attrs []string) (string, bool) {
	if len(attrs) == 0 {
		return "", false
	}
	lf, ok := owner[attrs[0]]
	if !ok {
		return "", false
	}
	for _, a := range attrs[1:] {
		if owner[a] != lf {
			return "", false
		}
	}
	return lf, true
}

// bindsVar reports whether any iterator inside e binds the variable name.
func bindsVar(e Expr, name string) bool {
	found := false
	Walk(e, func(x Expr) bool {
		switch n := x.(type) {
		case *Map:
			found = found || n.Var == name
		case *Select:
			found = found || n.Var == name
		case *Quant:
			found = found || n.Var == name
		case *Let:
			found = found || n.Var == name
		case *Join:
			found = found || n.LVar == name || n.RVar == name
		}
		return !found
	})
	return found
}

// Conjuncts splits a predicate into its conjunct list, dropping literal
// trues. It is the predicate-level inverse of AndE.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	if c, ok := e.(*Const); ok {
		if b, isB := c.Val.(value.Bool); isB && bool(b) {
			return nil
		}
	}
	return []Expr{e}
}

// ComposeConjunct rewrites a decomposed conjunct for a newly composed join
// node: every leaf variable in lvars is re-bound to the join's left operand
// variable lv, every one in rvars to rv. Inner-join outputs concatenate
// operand tuples, so an attribute access through a leaf variable stays valid
// through the operand variable of any join whose side contains that leaf.
func ComposeConjunct(c Expr, lvars []string, lv string, rvars []string, rv string) Expr {
	for _, v := range lvars {
		if v != lv {
			c = Subst(c, v, V(lv))
		}
	}
	for _, v := range rvars {
		if v != rv {
			c = Subst(c, v, V(rv))
		}
	}
	return c
}

// ComposeJoin builds the inner join of two recomposed operands over the given
// conjuncts (leaf-variable form): the conjuncts are re-bound via
// ComposeConjunct and folded with AndE.
func ComposeJoin(l Expr, lvars []string, lv string, r Expr, rvars []string, rv string, conjs []Expr) *Join {
	on := make([]Expr, len(conjs))
	for i, c := range conjs {
		on[i] = ComposeConjunct(c, lvars, lv, rvars, rv)
	}
	return &Join{Kind: Inner, LVar: lv, RVar: rv, On: AndE(on...), L: l, R: r}
}

// RecomposeJoinTree rebuilds a left-deep inner-join chain from a JoinTree in
// leaf order — the identity recomposition used to round-trip decomposition in
// tests and as the rewriter-order reference. Conjuncts are attached to the
// first join at which every leaf they reference is available; conjuncts
// referencing a single leaf are attached at that leaf's join (or wrapped as a
// selection when they touch only the first leaf).
func RecomposeJoinTree(t *JoinTree) (Expr, bool) {
	if len(t.Leaves) == 0 {
		return nil, false
	}
	all := map[string]bool{}
	for _, lf := range t.Leaves {
		all[lf.Var] = true
	}
	used := make([]bool, len(t.Conjs))
	cur := t.Leaves[0].Expr
	curVars := []string{t.Leaves[0].Var}
	// Single-leaf conjuncts on the first leaf become a selection.
	var first []Expr
	for i, c := range t.Conjs {
		if coveredBy(c, curVars, all) {
			first = append(first, c)
			used[i] = true
		}
	}
	if len(first) > 0 {
		cur = &Select{Var: t.Leaves[0].Var, Pred: AndE(first...), Src: cur}
	}
	avoid := make([]Expr, 0, len(t.Leaves)+len(t.Conjs))
	for _, lf := range t.Leaves {
		avoid = append(avoid, lf.Expr)
	}
	avoid = append(avoid, t.Conjs...)
	lv := Fresh("jl", avoid...)
	for _, lf := range t.Leaves[1:] {
		nextVars := append(append([]string{}, curVars...), lf.Var)
		var here []Expr
		for i, c := range t.Conjs {
			if !used[i] && coveredBy(c, nextVars, all) {
				here = append(here, c)
				used[i] = true
			}
		}
		cur = ComposeJoin(cur, curVars, lv, lf.Expr, []string{lf.Var}, lf.Var, here)
		curVars = nextVars
	}
	for _, u := range used {
		if !u {
			return nil, false
		}
	}
	return cur, true
}

// coveredBy reports whether every leaf variable free in c is in vars. Free
// variables that are not leaf variables at all (correlated outer variables)
// do not count against coverage.
func coveredBy(c Expr, vars []string, leafVars map[string]bool) bool {
	have := map[string]bool{}
	for _, v := range vars {
		have[v] = true
	}
	for v := range FreeVars(c) {
		if leafVars[v] && !have[v] {
			return false
		}
	}
	return true
}
