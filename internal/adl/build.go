package adl

import "repro/internal/value"

// Constructor helpers. These keep rewrite rules and tests close to the
// paper's notation: Sel("x", p, X) is σ[x : p](X), MapE("x", b, X) is
// α[x : b](X), and so on.

// C wraps a value as a constant expression.
func C(v value.Value) *Const { return &Const{Val: v} }

// CInt is a shorthand integer constant.
func CInt(i int64) *Const { return &Const{Val: value.Int(i)} }

// CStr is a shorthand string constant.
func CStr(s string) *Const { return &Const{Val: value.String(s)} }

// CBool is a shorthand boolean constant.
func CBool(b bool) *Const { return &Const{Val: value.Bool(b)} }

// V references a variable.
func V(name string) *Var { return &Var{Name: name} }

// T references a base table.
func T(name string) *Table { return &Table{Name: name} }

// Dot is attribute access x.a; extra names chain: Dot(V("d"), "supplier",
// "sname") is d.supplier.sname.
func Dot(x Expr, names ...string) Expr {
	for _, n := range names {
		x = &Field{X: x, Name: n}
	}
	return x
}

// Tup builds a tuple constructor from alternating name/Expr pairs.
func Tup(pairs ...any) *TupleExpr {
	t := &TupleExpr{}
	for i := 0; i < len(pairs); i += 2 {
		t.Names = append(t.Names, pairs[i].(string))
		t.Elems = append(t.Elems, pairs[i+1].(Expr))
	}
	return t
}

// SetOf builds a set constructor.
func SetOf(elems ...Expr) *SetExpr { return &SetExpr{Elems: elems} }

// SubT is tuple subscription x[attrs...].
func SubT(x Expr, attrs ...string) *Subscript { return &Subscript{X: x, Attrs: attrs} }

// Exc is the except operator; pairs alternate name/Expr.
func Exc(x Expr, pairs ...any) *ExceptExpr {
	e := &ExceptExpr{X: x}
	for i := 0; i < len(pairs); i += 2 {
		e.Names = append(e.Names, pairs[i].(string))
		e.Elems = append(e.Elems, pairs[i+1].(Expr))
	}
	return e
}

// Cat is tuple concatenation l ∘ r.
func Cat(l, r Expr) *Concat { return &Concat{L: l, R: r} }

// CmpE builds a comparison.
func CmpE(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// EqE is l = r.
func EqE(l, r Expr) *Cmp { return &Cmp{Op: Eq, L: l, R: r} }

// NotE negates an expression.
func NotE(x Expr) *Not { return &Not{X: x} }

// AndE folds expressions with conjunction; AndE() is true.
func AndE(xs ...Expr) Expr {
	if len(xs) == 0 {
		return CBool(true)
	}
	out := xs[0]
	for _, x := range xs[1:] {
		out = &And{L: out, R: x}
	}
	return out
}

// OrE folds expressions with disjunction; OrE() is false.
func OrE(xs ...Expr) Expr {
	if len(xs) == 0 {
		return CBool(false)
	}
	out := xs[0]
	for _, x := range xs[1:] {
		out = &Or{L: out, R: x}
	}
	return out
}

// Sel is σ[v : pred](src).
func Sel(v string, pred, src Expr) *Select { return &Select{Var: v, Pred: pred, Src: src} }

// MapE is α[v : body](src).
func MapE(v string, body, src Expr) *Map { return &Map{Var: v, Body: body, Src: src} }

// Proj is π[attrs...](x).
func Proj(x Expr, attrs ...string) *Project { return &Project{Attrs: attrs, X: x} }

// Mu is μ_attr(x).
func Mu(attr string, x Expr) *Unnest { return &Unnest{Attr: attr, X: x} }

// Nu is ν_{attrs→as}(x).
func Nu(x Expr, as string, attrs ...string) *Nest { return &Nest{Attrs: attrs, As: as, X: x} }

// Flat is ∪(x), multiple union.
func Flat(x Expr) *Flatten { return &Flatten{X: x} }

// Prod is the extended Cartesian product.
func Prod(l, r Expr) *Product { return &Product{L: l, R: r} }

// JoinE is the regular join L ⋈(lv,rv : on) R.
func JoinE(l Expr, lv, rv string, on, r Expr) *Join {
	return &Join{Kind: Inner, LVar: lv, RVar: rv, On: on, L: l, R: r}
}

// SemiJoin is L ⋉(lv,rv : on) R.
func SemiJoin(l Expr, lv, rv string, on, r Expr) *Join {
	return &Join{Kind: Semi, LVar: lv, RVar: rv, On: on, L: l, R: r}
}

// AntiJoin is L ▷(lv,rv : on) R.
func AntiJoin(l Expr, lv, rv string, on, r Expr) *Join {
	return &Join{Kind: Anti, LVar: lv, RVar: rv, On: on, L: l, R: r}
}

// NestJoin is the simple nestjoin L ⊣(lv,rv : on ; as) R (Definition 1).
func NestJoin(l Expr, lv, rv string, on Expr, as string, r Expr) *Join {
	return &Join{Kind: NestJ, LVar: lv, RVar: rv, On: on, As: as, L: l, R: r}
}

// NestJoinF is the extended nestjoin with a function applied to matching
// right tuples: L ⊣(lv,rv : on ; rv→fun ; as) R.
func NestJoinF(l Expr, lv, rv string, on Expr, fun Expr, as string, r Expr) *Join {
	return &Join{Kind: NestJ, LVar: lv, RVar: rv, On: on, As: as, RFun: fun, L: l, R: r}
}

// OuterJoin is the left outer join L ⟕(lv,rv : on) R.
func OuterJoin(l Expr, lv, rv string, on, r Expr) *Join {
	return &Join{Kind: Outer, LVar: lv, RVar: rv, On: on, L: l, R: r}
}

// Ex is ∃v ∈ src • pred.
func Ex(v string, src, pred Expr) *Quant {
	return &Quant{Kind: Exists, Var: v, Src: src, Pred: pred}
}

// All is ∀v ∈ src • pred.
func All(v string, src, pred Expr) *Quant {
	return &Quant{Kind: Forall, Var: v, Src: src, Pred: pred}
}

// AggE applies an aggregate.
func AggE(op AggOp, x Expr) *Agg { return &Agg{Op: op, X: x} }

// LetE binds v to val in body (the with-construct).
func LetE(v string, val, body Expr) *Let { return &Let{Var: v, Val: val, Body: body} }

// Rho is the renaming operator ρ[from→to](x).
func Rho(x Expr, from, to string) *Rename { return &Rename{From: from, To: to, X: x} }

// Mat is the materialize operator.
func Mat(x Expr, attr, as string) *Materialize { return &Materialize{X: x, Attr: attr, As: as} }

// DivE is relational division.
func DivE(l, r Expr) *Divide { return &Divide{L: l, R: r} }
