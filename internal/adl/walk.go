package adl

import "repro/internal/value"

// Rebuild returns a copy of e in which every direct subexpression c has been
// replaced by f(c). Leaves are returned unchanged (not copied). Rebuild is
// the single place that knows the shape of every node; traversals and the
// rewrite engine are built on it.
func Rebuild(e Expr, f func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *Const, *Var, *Table:
		return e
	case *Field:
		return &Field{X: f(n.X), Name: n.Name}
	case *TupleExpr:
		return &TupleExpr{Names: n.Names, Elems: mapExprs(n.Elems, f)}
	case *SetExpr:
		return &SetExpr{Elems: mapExprs(n.Elems, f)}
	case *Subscript:
		return &Subscript{X: f(n.X), Attrs: n.Attrs}
	case *ExceptExpr:
		return &ExceptExpr{X: f(n.X), Names: n.Names, Elems: mapExprs(n.Elems, f)}
	case *Concat:
		return &Concat{L: f(n.L), R: f(n.R)}
	case *Cmp:
		return &Cmp{Op: n.Op, L: f(n.L), R: f(n.R)}
	case *Arith:
		return &Arith{Op: n.Op, L: f(n.L), R: f(n.R)}
	case *Not:
		return &Not{X: f(n.X)}
	case *And:
		return &And{L: f(n.L), R: f(n.R)}
	case *Or:
		return &Or{L: f(n.L), R: f(n.R)}
	case *SetOp:
		return &SetOp{Op: n.Op, L: f(n.L), R: f(n.R)}
	case *Flatten:
		return &Flatten{X: f(n.X)}
	case *Map:
		return &Map{Var: n.Var, Body: f(n.Body), Src: f(n.Src)}
	case *Select:
		return &Select{Var: n.Var, Pred: f(n.Pred), Src: f(n.Src)}
	case *Project:
		return &Project{Attrs: n.Attrs, X: f(n.X)}
	case *Unnest:
		return &Unnest{Attr: n.Attr, X: f(n.X)}
	case *Nest:
		return &Nest{Attrs: n.Attrs, As: n.As, X: f(n.X)}
	case *Product:
		return &Product{L: f(n.L), R: f(n.R)}
	case *Join:
		j := &Join{Kind: n.Kind, LVar: n.LVar, RVar: n.RVar, On: f(n.On),
			As: n.As, L: f(n.L), R: f(n.R)}
		if n.RFun != nil {
			j.RFun = f(n.RFun)
		}
		return j
	case *Divide:
		return &Divide{L: f(n.L), R: f(n.R)}
	case *Quant:
		return &Quant{Kind: n.Kind, Var: n.Var, Src: f(n.Src), Pred: f(n.Pred)}
	case *Agg:
		return &Agg{Op: n.Op, X: f(n.X)}
	case *Rename:
		return &Rename{From: n.From, To: n.To, X: f(n.X)}
	case *Materialize:
		return &Materialize{X: f(n.X), Attr: n.Attr, As: n.As}
	case *Let:
		return &Let{Var: n.Var, Val: f(n.Val), Body: f(n.Body)}
	}
	panic("adl.Rebuild: unknown node")
}

func mapExprs(es []Expr, f func(Expr) Expr) []Expr {
	out := make([]Expr, len(es))
	for i, e := range es {
		out[i] = f(e)
	}
	return out
}

// Children returns the direct subexpressions of e in a fixed order.
func Children(e Expr) []Expr {
	var out []Expr
	Rebuild(e, func(c Expr) Expr {
		out = append(out, c)
		return c
	})
	return out
}

// Transform applies rule bottom-up: children are transformed first, then the
// rule is applied to the rebuilt node. The rule must return its argument
// unchanged when it does not apply.
func Transform(e Expr, rule func(Expr) Expr) Expr {
	e = Rebuild(e, func(c Expr) Expr { return Transform(c, rule) })
	return rule(e)
}

// Walk calls visit on e and every descendant, pre-order. If visit returns
// false the node's children are skipped.
func Walk(e Expr, visit func(Expr) bool) {
	if !visit(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, visit)
	}
}

// CountNodes reports how many nodes satisfy pred.
func CountNodes(e Expr, pred func(Expr) bool) int {
	n := 0
	Walk(e, func(x Expr) bool {
		if pred(x) {
			n++
		}
		return true
	})
	return n
}

// Equal reports structural equality of expressions (names compared
// literally, constants by deep value equality).
func Equal(a, b Expr) bool {
	switch an := a.(type) {
	case *Const:
		bn, ok := b.(*Const)
		return ok && value.Equal(an.Val, bn.Val)
	case *Var:
		bn, ok := b.(*Var)
		return ok && an.Name == bn.Name
	case *Table:
		bn, ok := b.(*Table)
		return ok && an.Name == bn.Name
	case *Field:
		bn, ok := b.(*Field)
		return ok && an.Name == bn.Name && Equal(an.X, bn.X)
	case *TupleExpr:
		bn, ok := b.(*TupleExpr)
		return ok && eqNames(an.Names, bn.Names) && eqExprs(an.Elems, bn.Elems)
	case *SetExpr:
		bn, ok := b.(*SetExpr)
		return ok && eqExprs(an.Elems, bn.Elems)
	case *Subscript:
		bn, ok := b.(*Subscript)
		return ok && eqNames(an.Attrs, bn.Attrs) && Equal(an.X, bn.X)
	case *ExceptExpr:
		bn, ok := b.(*ExceptExpr)
		return ok && eqNames(an.Names, bn.Names) && Equal(an.X, bn.X) && eqExprs(an.Elems, bn.Elems)
	case *Concat:
		bn, ok := b.(*Concat)
		return ok && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Cmp:
		bn, ok := b.(*Cmp)
		return ok && an.Op == bn.Op && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Arith:
		bn, ok := b.(*Arith)
		return ok && an.Op == bn.Op && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Not:
		bn, ok := b.(*Not)
		return ok && Equal(an.X, bn.X)
	case *And:
		bn, ok := b.(*And)
		return ok && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Or:
		bn, ok := b.(*Or)
		return ok && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *SetOp:
		bn, ok := b.(*SetOp)
		return ok && an.Op == bn.Op && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Flatten:
		bn, ok := b.(*Flatten)
		return ok && Equal(an.X, bn.X)
	case *Map:
		bn, ok := b.(*Map)
		return ok && an.Var == bn.Var && Equal(an.Body, bn.Body) && Equal(an.Src, bn.Src)
	case *Select:
		bn, ok := b.(*Select)
		return ok && an.Var == bn.Var && Equal(an.Pred, bn.Pred) && Equal(an.Src, bn.Src)
	case *Project:
		bn, ok := b.(*Project)
		return ok && eqNames(an.Attrs, bn.Attrs) && Equal(an.X, bn.X)
	case *Unnest:
		bn, ok := b.(*Unnest)
		return ok && an.Attr == bn.Attr && Equal(an.X, bn.X)
	case *Nest:
		bn, ok := b.(*Nest)
		return ok && eqNames(an.Attrs, bn.Attrs) && an.As == bn.As && Equal(an.X, bn.X)
	case *Product:
		bn, ok := b.(*Product)
		return ok && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Join:
		bn, ok := b.(*Join)
		if !ok || an.Kind != bn.Kind || an.LVar != bn.LVar || an.RVar != bn.RVar || an.As != bn.As {
			return false
		}
		if (an.RFun == nil) != (bn.RFun == nil) {
			return false
		}
		if an.RFun != nil && !Equal(an.RFun, bn.RFun) {
			return false
		}
		return Equal(an.On, bn.On) && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Divide:
		bn, ok := b.(*Divide)
		return ok && Equal(an.L, bn.L) && Equal(an.R, bn.R)
	case *Quant:
		bn, ok := b.(*Quant)
		return ok && an.Kind == bn.Kind && an.Var == bn.Var && Equal(an.Src, bn.Src) && Equal(an.Pred, bn.Pred)
	case *Agg:
		bn, ok := b.(*Agg)
		return ok && an.Op == bn.Op && Equal(an.X, bn.X)
	case *Rename:
		bn, ok := b.(*Rename)
		return ok && an.From == bn.From && an.To == bn.To && Equal(an.X, bn.X)
	case *Materialize:
		bn, ok := b.(*Materialize)
		return ok && an.Attr == bn.Attr && an.As == bn.As && Equal(an.X, bn.X)
	case *Let:
		bn, ok := b.(*Let)
		return ok && an.Var == bn.Var && Equal(an.Val, bn.Val) && Equal(an.Body, bn.Body)
	}
	panic("adl.Equal: unknown node")
}

func eqNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqExprs(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
