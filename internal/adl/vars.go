package adl

import (
	"fmt"
)

// FreeVars returns the set of variable names occurring free in e.
// Binders: Map/Select bind their variable in the body/predicate, Quant in
// the predicate, Let in the body, and Join binds both variables in the join
// predicate and the nestjoin right-tuple function. Range/source expressions
// are always outside the binding scope.
func FreeVars(e Expr) map[string]bool {
	fv := map[string]bool{}
	collectFree(e, map[string]bool{}, fv)
	return fv
}

func collectFree(e Expr, bound map[string]bool, fv map[string]bool) {
	switch n := e.(type) {
	case *Var:
		if !bound[n.Name] {
			fv[n.Name] = true
		}
	case *Map:
		collectFree(n.Src, bound, fv)
		withBound(bound, n.Var, func() { collectFree(n.Body, bound, fv) })
	case *Select:
		collectFree(n.Src, bound, fv)
		withBound(bound, n.Var, func() { collectFree(n.Pred, bound, fv) })
	case *Quant:
		collectFree(n.Src, bound, fv)
		withBound(bound, n.Var, func() { collectFree(n.Pred, bound, fv) })
	case *Let:
		collectFree(n.Val, bound, fv)
		withBound(bound, n.Var, func() { collectFree(n.Body, bound, fv) })
	case *Join:
		collectFree(n.L, bound, fv)
		collectFree(n.R, bound, fv)
		withBound(bound, n.LVar, func() {
			withBound(bound, n.RVar, func() {
				collectFree(n.On, bound, fv)
				if n.RFun != nil {
					collectFree(n.RFun, bound, fv)
				}
			})
		})
	default:
		for _, c := range Children(e) {
			collectFree(c, bound, fv)
		}
	}
}

// withBound runs f with name marked bound, restoring the previous state.
func withBound(bound map[string]bool, name string, f func()) {
	prev, had := bound[name]
	bound[name] = true
	f()
	if had {
		bound[name] = prev
	} else {
		delete(bound, name)
	}
}

// HasFree reports whether name occurs free in e.
func HasFree(e Expr, name string) bool { return FreeVars(e)[name] }

// Fresh returns a variable name based on base that is free in none of the
// given expressions. It is deterministic.
func Fresh(base string, avoid ...Expr) string {
	used := map[string]bool{}
	for _, e := range avoid {
		for v := range FreeVars(e) {
			used[v] = true
		}
		// Bound variables are avoided too: reusing a bound name is legal but
		// makes printed rewrite traces confusing.
		Walk(e, func(x Expr) bool {
			switch n := x.(type) {
			case *Map:
				used[n.Var] = true
			case *Select:
				used[n.Var] = true
			case *Quant:
				used[n.Var] = true
			case *Let:
				used[n.Var] = true
			case *Join:
				used[n.LVar] = true
				used[n.RVar] = true
			}
			return true
		})
	}
	if !used[base] {
		return base
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !used[cand] {
			return cand
		}
	}
}

// Subst returns e with every free occurrence of the variable name replaced
// by repl. The substitution is capture-avoiding: binders whose variable
// occurs free in repl are alpha-renamed first.
func Subst(e Expr, name string, repl Expr) Expr {
	switch n := e.(type) {
	case *Var:
		if n.Name == name {
			return repl
		}
		return e
	case *Map:
		src := Subst(n.Src, name, repl)
		if n.Var == name {
			return &Map{Var: n.Var, Body: n.Body, Src: src}
		}
		v, body := avoidCapture(n.Var, n.Body, name, repl)
		return &Map{Var: v, Body: Subst(body, name, repl), Src: src}
	case *Select:
		src := Subst(n.Src, name, repl)
		if n.Var == name {
			return &Select{Var: n.Var, Pred: n.Pred, Src: src}
		}
		v, pred := avoidCapture(n.Var, n.Pred, name, repl)
		return &Select{Var: v, Pred: Subst(pred, name, repl), Src: src}
	case *Quant:
		src := Subst(n.Src, name, repl)
		if n.Var == name {
			return &Quant{Kind: n.Kind, Var: n.Var, Pred: n.Pred, Src: src}
		}
		v, pred := avoidCapture(n.Var, n.Pred, name, repl)
		return &Quant{Kind: n.Kind, Var: v, Pred: Subst(pred, name, repl), Src: src}
	case *Let:
		val := Subst(n.Val, name, repl)
		if n.Var == name {
			return &Let{Var: n.Var, Val: val, Body: n.Body}
		}
		v, body := avoidCapture(n.Var, n.Body, name, repl)
		return &Let{Var: v, Val: val, Body: Subst(body, name, repl)}
	case *Join:
		l := Subst(n.L, name, repl)
		r := Subst(n.R, name, repl)
		if n.LVar == name || n.RVar == name {
			return &Join{Kind: n.Kind, LVar: n.LVar, RVar: n.RVar, On: n.On,
				As: n.As, RFun: n.RFun, L: l, R: r}
		}
		lv, rv, on, rfun := n.LVar, n.RVar, n.On, n.RFun
		if HasFree(repl, lv) && (HasFree(on, name) || (rfun != nil && HasFree(rfun, name))) {
			nv := Fresh(lv, repl, on, e)
			on = Subst(on, lv, V(nv))
			if rfun != nil {
				rfun = Subst(rfun, lv, V(nv))
			}
			lv = nv
		}
		if HasFree(repl, rv) && (HasFree(on, name) || (rfun != nil && HasFree(rfun, name))) {
			nv := Fresh(rv, repl, on, e)
			on = Subst(on, rv, V(nv))
			if rfun != nil {
				rfun = Subst(rfun, rv, V(nv))
			}
			rv = nv
		}
		j := &Join{Kind: n.Kind, LVar: lv, RVar: rv, On: Subst(on, name, repl),
			As: n.As, L: l, R: r}
		if rfun != nil {
			j.RFun = Subst(rfun, name, repl)
		}
		return j
	default:
		return Rebuild(e, func(c Expr) Expr { return Subst(c, name, repl) })
	}
}

// avoidCapture alpha-renames the binder v of scope if v occurs free in repl
// and the substitution would actually descend into scope.
func avoidCapture(v string, scope Expr, name string, repl Expr) (string, Expr) {
	if !HasFree(repl, v) || !HasFree(scope, name) {
		return v, scope
	}
	nv := Fresh(v, repl, scope)
	return nv, Subst(scope, v, V(nv))
}
