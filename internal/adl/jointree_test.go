package adl

import (
	"testing"
)

// chainAttrs resolves attributes for the three-table fixtures below.
func chainAttrs(e Expr) []string {
	t, ok := e.(*Table)
	if !ok {
		return nil
	}
	switch t.Name {
	case "A":
		return []string{"a_id", "a_v"}
	case "B":
		return []string{"b_a", "b_c", "b_v"}
	case "C":
		return []string{"c_id", "c_v"}
	}
	return nil
}

// chain3 is ((A ⋈ B) ⋈ C) with the outer predicate referencing the
// concatenated left tuple.
func chain3() *Join {
	inner := JoinE(T("A"), "x", "y",
		EqE(Dot(V("x"), "a_id"), Dot(V("y"), "b_a")), T("B"))
	return JoinE(inner, "xy", "z",
		EqE(Dot(V("xy"), "b_c"), Dot(V("z"), "c_id")), T("C"))
}

func TestDecomposeJoinTreeChain(t *testing.T) {
	tree, ok := DecomposeJoinTree(chain3(), chainAttrs)
	if !ok {
		t.Fatal("chain should decompose")
	}
	if len(tree.Leaves) != 3 {
		t.Fatalf("got %d leaves, want 3", len(tree.Leaves))
	}
	if len(tree.Conjs) != 2 {
		t.Fatalf("got %d conjuncts, want 2", len(tree.Conjs))
	}
	// The outer conjunct must have been re-pointed at the B leaf: no conjunct
	// may still reference the operand variables.
	for _, c := range tree.Conjs {
		for _, v := range []string{"x", "y", "z", "xy"} {
			if HasFree(c, v) {
				t.Errorf("conjunct %s still references operand variable %s", c, v)
			}
		}
	}
	// Every conjunct references exactly two distinct leaf variables.
	leafVars := map[string]bool{}
	for _, lf := range tree.Leaves {
		leafVars[lf.Var] = true
	}
	for _, c := range tree.Conjs {
		n := 0
		for v := range FreeVars(c) {
			if leafVars[v] {
				n++
			}
		}
		if n != 2 {
			t.Errorf("conjunct %s references %d leaf vars, want 2", c, n)
		}
	}
}

func TestDecomposeJoinTreeBailsOnUnknownAttrs(t *testing.T) {
	if _, ok := DecomposeJoinTree(chain3(), nil); ok {
		t.Fatal("decomposition without attribute knowledge must fail for multi-leaf operands")
	}
	// Ambiguity: both A and B claim b_c.
	dup := func(e Expr) []string {
		if tb, ok := e.(*Table); ok && (tb.Name == "A" || tb.Name == "B") {
			return []string{"b_c"}
		}
		return chainAttrs(e)
	}
	if _, ok := DecomposeJoinTree(chain3(), dup); ok {
		t.Fatal("ambiguous attribute ownership must fail")
	}
}

func TestDecomposeJoinTreeBailsOnWholeTupleRef(t *testing.T) {
	// The outer predicate uses the concatenated tuple as a whole (xy ∈ …):
	// no single leaf owns it.
	inner := JoinE(T("A"), "x", "y",
		EqE(Dot(V("x"), "a_id"), Dot(V("y"), "b_a")), T("B"))
	outer := JoinE(inner, "xy", "z",
		CmpE(In, V("xy"), Dot(V("z"), "c_v")), T("C"))
	if _, ok := DecomposeJoinTree(outer, chainAttrs); ok {
		t.Fatal("whole-tuple reference must fail decomposition")
	}
}

func TestDecomposeJoinTreeSubscript(t *testing.T) {
	// The outer predicate subscripts the concatenated tuple: xy[b_c] must be
	// re-pointed at B; a subscript mixing attributes of two leaves must fail.
	inner := JoinE(T("A"), "x", "y",
		EqE(Dot(V("x"), "a_id"), Dot(V("y"), "b_a")), T("B"))
	good := JoinE(inner, "xy", "z",
		EqE(SubT(V("xy"), "b_c"), SubT(V("z"), "c_id")), T("C"))
	tree, ok := DecomposeJoinTree(good, chainAttrs)
	if !ok {
		t.Fatal("single-owner subscript should decompose")
	}
	for _, c := range tree.Conjs {
		if HasFree(c, "xy") {
			t.Errorf("subscript conjunct %s still references xy", c)
		}
	}
	mixed := JoinE(inner, "xy", "z",
		EqE(SubT(V("xy"), "a_id", "b_c"), SubT(V("z"), "c_id")), T("C"))
	if _, ok := DecomposeJoinTree(mixed, chainAttrs); ok {
		t.Fatal("cross-leaf subscript must fail decomposition")
	}
}

func TestDecomposeJoinTreeBailsOnShadowedVar(t *testing.T) {
	// The outer conjunct rebinds the operand variable xy inside a nested
	// iterator; textual re-pointing would be unsound, so decomposition bails.
	inner := JoinE(T("A"), "x", "y",
		EqE(Dot(V("x"), "a_id"), Dot(V("y"), "b_a")), T("B"))
	shadow := CmpE(In, Dot(V("xy"), "b_c"),
		MapE("xy", V("xy"), Dot(V("z"), "c_v")))
	outer := JoinE(inner, "xy", "z", shadow, T("C"))
	if _, ok := DecomposeJoinTree(outer, chainAttrs); ok {
		t.Fatal("shadowed operand variable must fail decomposition")
	}
}

func TestDecomposeJoinTreeOpaqueKinds(t *testing.T) {
	// A semijoin operand is an opaque leaf; the top join still decomposes
	// with the semijoin as one relation.
	semi := SemiJoin(T("A"), "x", "y",
		EqE(Dot(V("x"), "a_id"), Dot(V("y"), "b_a")), T("B"))
	top := JoinE(semi, "s", "z",
		EqE(Dot(V("s"), "a_id"), Dot(V("z"), "c_id")), T("C"))
	attrs := func(e Expr) []string {
		if _, isJoin := e.(*Join); isJoin {
			return []string{"a_id", "a_v"}
		}
		return chainAttrs(e)
	}
	tree, ok := DecomposeJoinTree(top, attrs)
	if !ok {
		t.Fatal("top join over opaque leaves should decompose")
	}
	if len(tree.Leaves) != 2 {
		t.Fatalf("got %d leaves, want 2 (semijoin stays opaque)", len(tree.Leaves))
	}
	if _, isJoin := tree.Leaves[0].Expr.(*Join); !isJoin {
		t.Errorf("first leaf should be the semijoin subplan")
	}
}

func TestRecomposeJoinTreeRoundTrip(t *testing.T) {
	tree, ok := DecomposeJoinTree(chain3(), chainAttrs)
	if !ok {
		t.Fatal("chain should decompose")
	}
	e, ok := RecomposeJoinTree(tree)
	if !ok {
		t.Fatal("recompose failed")
	}
	// The recomposition must be a two-join chain over the same three tables
	// with both conjuncts placed.
	joins := CountNodes(e, func(x Expr) bool { _, isJ := x.(*Join); return isJ })
	if joins != 2 {
		t.Fatalf("recomposed tree has %d joins, want 2:\n%s", joins, e)
	}
	tables := CountNodes(e, func(x Expr) bool { _, isT := x.(*Table); return isT })
	if tables != 3 {
		t.Fatalf("recomposed tree has %d tables, want 3:\n%s", tables, e)
	}
}

func TestComposeConjunctRebinds(t *testing.T) {
	c := EqE(Dot(V("r0"), "b_c"), Dot(V("r1"), "c_id"))
	got := ComposeConjunct(c, []string{"r0", "rX"}, "L", []string{"r1"}, "r1")
	want := EqE(Dot(V("L"), "b_c"), Dot(V("r1"), "c_id"))
	if !Equal(got, want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestConjunctsDropsTrue(t *testing.T) {
	e := AndE(CBool(true), EqE(V("a"), V("b")), CBool(true))
	cs := Conjuncts(e)
	if len(cs) != 1 {
		t.Fatalf("got %d conjuncts, want 1", len(cs))
	}
}
