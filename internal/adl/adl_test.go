package adl

import (
	"strings"
	"testing"
)

func TestFreeVarsBinders(t *testing.T) {
	// σ[x : x.a = y.b](X): x is bound, y is free.
	e := Sel("x", EqE(Dot(V("x"), "a"), Dot(V("y"), "b")), T("X"))
	fv := FreeVars(e)
	if fv["x"] {
		t.Errorf("x must be bound in select predicate")
	}
	if !fv["y"] {
		t.Errorf("y must be free")
	}

	// The source of an iterator is outside the binding scope:
	// α[x : x](x) has x free (the operand x).
	e2 := MapE("x", V("x"), V("x"))
	if !FreeVars(e2)["x"] {
		t.Errorf("operand occurrence of x must be free")
	}

	// Join binds both variables in the predicate.
	j := SemiJoin(T("X"), "x", "y", EqE(Dot(V("x"), "a"), Dot(V("y"), "b")), T("Y"))
	if len(FreeVars(j)) != 0 {
		t.Errorf("join with only bound vars must be closed: %v", FreeVars(j))
	}

	// Quantifier: ∃y ∈ Y • y = x has x free.
	q := Ex("y", T("Y"), EqE(V("y"), V("x")))
	fv = FreeVars(q)
	if fv["y"] || !fv["x"] {
		t.Errorf("quantifier binding wrong: %v", fv)
	}

	// Let binds in body only.
	l := LetE("v", V("w"), V("v"))
	fv = FreeVars(l)
	if fv["v"] || !fv["w"] {
		t.Errorf("let binding wrong: %v", fv)
	}
}

func TestSubstBasic(t *testing.T) {
	// (x.a = 1)[x := t] = (t.a = 1)
	e := EqE(Dot(V("x"), "a"), CInt(1))
	got := Subst(e, "x", V("t"))
	want := EqE(Dot(V("t"), "a"), CInt(1))
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
}

func TestSubstRespectsShadowing(t *testing.T) {
	// σ[x : x.a = 1](x) — the bound x in the predicate must not be replaced,
	// the operand occurrence must.
	e := Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), V("x"))
	got := Subst(e, "x", T("X"))
	want := Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), T("X"))
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
}

func TestSubstCaptureAvoiding(t *testing.T) {
	// σ[y : y.a = x](Y)[x := y.b] must rename the binder y: the free y in
	// the replacement must not be captured.
	e := Sel("y", EqE(Dot(V("y"), "a"), V("x")), T("Y"))
	got := Subst(e, "x", Dot(V("y"), "b"))
	sel, ok := got.(*Select)
	if !ok {
		t.Fatalf("result is %T", got)
	}
	if sel.Var == "y" {
		t.Fatalf("binder must have been renamed: %s", got)
	}
	// The replacement's free y must survive.
	if !FreeVars(got)["y"] {
		t.Fatalf("free y of replacement was captured: %s", got)
	}
	// And the bound occurrences must follow the rename.
	want := Sel(sel.Var, EqE(Dot(V(sel.Var), "a"), Dot(V("y"), "b")), T("Y"))
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
}

func TestSubstIntoJoinPredicate(t *testing.T) {
	// (X ⋉[x,y : x.a = z] Y)[z := 5]
	e := SemiJoin(T("X"), "x", "y", EqE(Dot(V("x"), "a"), V("z")), T("Y"))
	got := Subst(e, "z", CInt(5))
	want := SemiJoin(T("X"), "x", "y", EqE(Dot(V("x"), "a"), CInt(5)), T("Y"))
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
	// Bound join variables block substitution.
	got2 := Subst(e, "x", CInt(7))
	if !Equal(got2, e) {
		t.Errorf("substitution for bound join var must be a no-op, got %s", got2)
	}
}

func TestSubstJoinCaptureAvoiding(t *testing.T) {
	// (X ⋉[x,y : x.a = z] Y)[z := y.q]: replacement mentions y which the
	// join binds, so the join's y must be renamed.
	e := SemiJoin(T("X"), "x", "y", EqE(Dot(V("x"), "a"), V("z")), T("Y"))
	got := Subst(e, "z", Dot(V("y"), "q"))
	j, ok := got.(*Join)
	if !ok {
		t.Fatalf("result is %T", got)
	}
	if j.RVar == "y" {
		t.Fatalf("join RVar must have been renamed: %s", got)
	}
	if !FreeVars(got)["y"] {
		t.Fatalf("free y of replacement was captured: %s", got)
	}
}

func TestFresh(t *testing.T) {
	e := Sel("x", EqE(V("x"), V("x1")), T("X"))
	if got := Fresh("y", e); got != "y" {
		t.Errorf("Fresh(y) = %q", got)
	}
	if got := Fresh("x", e); got == "x" || got == "x1" {
		t.Errorf("Fresh(x) = %q must avoid x and x1", got)
	}
}

func TestEqualAndRebuild(t *testing.T) {
	a := Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), T("X"))
	b := Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), T("X"))
	if !Equal(a, b) {
		t.Errorf("structurally identical expressions must be Equal")
	}
	c := Sel("x", EqE(Dot(V("x"), "a"), CInt(2)), T("X"))
	if Equal(a, c) {
		t.Errorf("different constants must differ")
	}
	// Rebuild with identity preserves structure.
	id := Rebuild(a, func(e Expr) Expr { return e })
	if !Equal(a, id) {
		t.Errorf("identity rebuild changed the expression")
	}
}

func TestTransformBottomUp(t *testing.T) {
	// Replace every constant 1 with 2, everywhere.
	e := Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), SetOf(CInt(1), CInt(3)))
	got := Transform(e, func(x Expr) Expr {
		if c, ok := x.(*Const); ok && Equal(c, CInt(1)) {
			return CInt(2)
		}
		return x
	})
	want := Sel("x", EqE(Dot(V("x"), "a"), CInt(2)), SetOf(CInt(2), CInt(3)))
	if !Equal(got, want) {
		t.Errorf("Transform = %s, want %s", got, want)
	}
}

func TestWalkAndCountNodes(t *testing.T) {
	e := Sel("x", Ex("y", T("Y"), EqE(V("y"), V("x"))), T("X"))
	tables := CountNodes(e, func(x Expr) bool {
		_, ok := x.(*Table)
		return ok
	})
	if tables != 2 {
		t.Errorf("CountNodes(tables) = %d, want 2", tables)
	}
	// Walk can prune: skip quantifier subtrees.
	n := 0
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*Quant); ok {
			return false
		}
		n++
		return true
	})
	if n != 2 { // the Select and its source table
		t.Errorf("pruned walk visited %d nodes, want 2", n)
	}
}

func TestPrintNotation(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Sel("x", EqE(Dot(V("x"), "a"), CInt(1)), T("X")), "σ[x : x.a = 1](X)"},
		{MapE("x", Dot(V("x"), "sname"), T("SUPPLIER")), "α[x : x.sname](SUPPLIER)"},
		{Proj(T("X"), "a", "b"), "π[a, b](X)"},
		{Mu("parts", T("SUPPLIER")), "μ[parts](SUPPLIER)"},
		{Nu(T("X"), "ys", "d", "e"), "ν[{d, e}→ys](X)"},
		{Flat(T("X")), "flatten(X)"},
		{SemiJoin(T("X"), "x", "y", EqE(V("x"), V("y")), T("Y")), "(X ⋉[x,y : x = y] Y)"},
		{AntiJoin(T("X"), "x", "y", EqE(V("x"), V("y")), T("Y")), "(X ▷[x,y : x = y] Y)"},
		{NestJoin(T("X"), "x", "y", EqE(V("x"), V("y")), "ys", T("Y")), "(X ⊣[x,y : x = y ; ys] Y)"},
		{NestJoinF(T("X"), "x", "y", CBool(true), Dot(V("y"), "e"), "ys", T("Y")), "(X ⊣[x,y : true ; y→y.e ; ys] Y)"},
		{Ex("y", T("Y"), CBool(true)), "(∃y ∈ Y • true)"},
		{All("y", T("Y"), CBool(true)), "(∀y ∈ Y • true)"},
		{NotE(CmpE(In, V("z"), Dot(V("x"), "c"))), "¬(z ∈ x.c)"},
		{CmpE(SubEq, Dot(V("x"), "c"), V("Y1")), "x.c ⊆ Y1"},
		{AggE(Count, V("Y1")), "count(Y1)"},
		{Exc(V("z"), "parts", CInt(1)), "(z except (parts = 1))"},
		{SubT(V("z"), "a", "b"), "z[a, b]"},
		{Cat(V("x"), V("y")), "(x ∘ y)"},
		{DivE(T("X"), T("Y")), "(X ÷ Y)"},
		{Mat(T("D"), "supplier", "sup"), "mat[supplier→sup](D)"},
		{LetE("Y1", T("Y"), V("Y1")), "(Y1 with Y1 = Y)"},
		{Tup("sname", Dot(V("s"), "sname")), "(sname = s.sname)"},
		{AndE(CBool(true), CBool(false)), "(true ∧ false)"},
		{OrE(CBool(true), CBool(false)), "(true ∨ false)"},
		{Prod(T("X"), T("Y")), "(X × Y)"},
		{OuterJoin(T("X"), "x", "y", CBool(true), T("Y")), "(X ⟕[x,y : true] Y)"},
		{&Arith{Op: Add, L: CInt(1), R: CInt(2)}, "(1 + 2)"},
		{&SetOp{Op: Union, L: T("X"), R: T("Y")}, "(X ∪ Y)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestAndOrFolding(t *testing.T) {
	if got := AndE().String(); got != "true" {
		t.Errorf("empty AndE = %q", got)
	}
	if got := OrE().String(); got != "false" {
		t.Errorf("empty OrE = %q", got)
	}
	if got := AndE(CBool(true)); !Equal(got, CBool(true)) {
		t.Errorf("singleton AndE = %v", got)
	}
}

func TestDotChain(t *testing.T) {
	e := Dot(V("d"), "supplier", "sname")
	if got := e.String(); got != "d.supplier.sname" {
		t.Errorf("Dot chain = %q", got)
	}
}

func TestChildrenOrder(t *testing.T) {
	j := NestJoinF(T("L"), "x", "y", CBool(true), V("y"), "ys", T("R"))
	kids := Children(j)
	if len(kids) != 4 { // On, L, R, RFun
		t.Fatalf("nestjoin children = %d", len(kids))
	}
	var hasL, hasR bool
	for _, k := range kids {
		if tb, ok := k.(*Table); ok {
			hasL = hasL || tb.Name == "L"
			hasR = hasR || tb.Name == "R"
		}
	}
	if !hasL || !hasR {
		t.Fatalf("children missing operands: %v", kids)
	}
}

func TestStringsAreStable(t *testing.T) {
	// Guard against accidental notation drift used by paperrepro goldens.
	e := Sel("s",
		Ex("x", Dot(V("s"), "parts"),
			Ex("p", T("PART"),
				AndE(EqE(V("x"), SubT(V("p"), "pid")),
					EqE(Dot(V("p"), "color"), CStr("red"))))),
		T("SUPPLIER"))
	want := `σ[s : (∃x ∈ s.parts • (∃p ∈ PART • (x = p[pid] ∧ p.color = "red")))](SUPPLIER)`
	if got := e.String(); got != want {
		t.Errorf("EQ5 rendering drifted:\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(want, "∃") {
		t.Fatal("sanity")
	}
}
