package adl

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// everyNode returns one instance of every expression node, pairwise distinct
// under Equal. The list is the workhorse for the printer/Equal/Rebuild
// round-trip tests below: a node type added to the package without being
// added here will still round-trip (Rebuild panics on unknown nodes), but
// add it anyway so its printer clause stays exercised.
func everyNode() []Expr {
	return []Expr{
		C(value.Int(42)),
		V("v"),
		T("TBL"),
		Dot(V("t"), "a"),
		Tup("a", CInt(1), "b", CStr("s")),
		SetOf(CInt(1), CInt(2)),
		SubT(V("t"), "a", "b"),
		Exc(V("t"), "a", CInt(9)),
		Cat(V("l"), V("r")),
		CmpE(Le, V("l"), V("r")),
		&Arith{Op: Mul, L: V("l"), R: V("r")},
		NotE(V("p")),
		&And{L: V("p"), R: V("q")},
		&Or{L: V("p"), R: V("q")},
		&SetOp{Op: Diff, L: T("A"), R: T("B")},
		Flat(T("NESTED")),
		MapE("m", Dot(V("m"), "a"), T("M")),
		Sel("s", CBool(true), T("S")),
		Proj(T("P"), "a", "b"),
		Mu("kids", T("U")),
		Nu(T("N"), "grp", "a"),
		Prod(T("A"), T("C")),
		JoinE(T("A"), "x", "y", EqE(Dot(V("x"), "a"), Dot(V("y"), "b")), T("B")),
		SemiJoin(T("A"), "x", "y", CBool(true), T("B")),
		AntiJoin(T("A"), "x", "y", CBool(true), T("B")),
		NestJoin(T("A"), "x", "y", CBool(true), "as", T("B")),
		NestJoinF(T("A"), "x", "y", CBool(true), Dot(V("y"), "f"), "as", T("B")),
		OuterJoin(T("A"), "x", "y", CBool(true), T("B")),
		DivE(T("A"), T("D")),
		Ex("e", T("E"), CBool(true)),
		All("e", T("E"), CBool(true)),
		AggE(Sum, T("A")),
		Rho(T("R"), "from", "to"),
		Mat(T("M2"), "attr", "as"),
		LetE("w", CInt(1), V("w")),
	}
}

func TestEveryNodePrintsEqualsAndRebuilds(t *testing.T) {
	nodes := everyNode()
	for i, e := range nodes {
		e.exprNode() // the interface marker — every node must carry it
		if e.String() == "" {
			t.Errorf("node %d (%T) prints empty", i, e)
		}
		if !Equal(e, e) {
			t.Errorf("node %d (%T) not Equal to itself", i, e)
		}
		// Identity Rebuild yields a structurally equal copy; leaves come back
		// as the same pointer, interior nodes as fresh ones.
		cp := Rebuild(e, func(c Expr) Expr { return c })
		if !Equal(e, cp) {
			t.Errorf("node %d (%T): identity Rebuild not Equal: %s vs %s", i, e, e, cp)
		}
		if got, want := len(Children(cp)), len(Children(e)); got != want {
			t.Errorf("node %d (%T): Rebuild changed arity %d → %d", i, e, want, got)
		}
	}
	// Pairwise distinct: this drives every wrong-type and
	// same-type-different-content branch of Equal.
	for i := range nodes {
		for j := range nodes {
			if i != j && Equal(nodes[i], nodes[j]) {
				t.Errorf("nodes %d (%s) and %d (%s) compare Equal", i, nodes[i], j, nodes[j])
			}
		}
	}
}

func TestEqualNameAndLengthMismatches(t *testing.T) {
	if Equal(Tup("a", CInt(1)), Tup("b", CInt(1))) {
		t.Errorf("tuples with different attribute names compare Equal")
	}
	if Equal(SetOf(CInt(1)), SetOf(CInt(1), CInt(2))) {
		t.Errorf("sets of different arity compare Equal")
	}
	if Equal(Proj(T("A"), "a"), Proj(T("A"), "a", "b")) {
		t.Errorf("projections over different attribute lists compare Equal")
	}
	// A nestjoin with a right-tuple function never equals one without.
	plain := NestJoin(T("A"), "x", "y", CBool(true), "as", T("B"))
	funned := NestJoinF(T("A"), "x", "y", CBool(true), V("y"), "as", T("B"))
	if Equal(plain, funned) || Equal(funned, plain) {
		t.Errorf("nestjoin RFun presence ignored by Equal")
	}
}

func TestOperatorSymbols(t *testing.T) {
	cmps := map[CmpOp]string{Eq: "=", Ne: "≠", Lt: "<", Le: "≤", Gt: ">", Ge: "≥",
		In: "∈", Sub: "⊂", SubEq: "⊆", Sup: "⊃", SupEq: "⊇", Has: "∋"}
	for op, want := range cmps {
		if op.String() != want {
			t.Errorf("CmpOp %d prints %q, want %q", op, op.String(), want)
		}
	}
	ariths := map[ArithOp]string{Add: "+", Subtract: "-", Mul: "*", Div: "/"}
	for op, want := range ariths {
		if op.String() != want {
			t.Errorf("ArithOp %d prints %q, want %q", op, op.String(), want)
		}
	}
	setops := map[SetOpKind]string{Union: "∪", Intersect: "∩", Diff: "−"}
	for op, want := range setops {
		if op.String() != want {
			t.Errorf("SetOpKind %d prints %q, want %q", op, op.String(), want)
		}
	}
	joins := map[JoinKind]string{Inner: "⋈", Semi: "⋉", Anti: "▷", NestJ: "⊣", Outer: "⟕"}
	for k, want := range joins {
		if k.String() != want {
			t.Errorf("JoinKind %d prints %q, want %q", k, k.String(), want)
		}
	}
	aggs := map[AggOp]string{Count: "count", Sum: "sum", Min: "min", Max: "max", Avg: "avg"}
	for op, want := range aggs {
		if op.String() != want {
			t.Errorf("AggOp %d prints %q, want %q", op, op.String(), want)
		}
	}
	if Exists.String() != "∃" || QuantKind(1).String() != "∀" {
		t.Errorf("quantifier symbols wrong: %s %s", Exists, QuantKind(1))
	}
	// Out-of-range values print a debuggable fallback, not garbage.
	for _, s := range []string{
		CmpOp(200).String(), ArithOp(200).String(), SetOpKind(200).String(),
		JoinKind(200).String(), AggOp(200).String(),
	} {
		if !strings.Contains(s, "200") {
			t.Errorf("fallback rendering lost the raw value: %q", s)
		}
	}
}

func TestPrinterNotation(t *testing.T) {
	cases := []struct{ got, want string }{
		{Rho(T("X"), "a", "b").String(), "ρ[a→b](X)"},
		{Mat(T("X"), "a", "m").String(), "mat[a→m](X)"},
		{DivE(T("A"), T("B")).String(), "(A ÷ B)"},
		{Cat(V("l"), V("r")).String(), "(l ∘ r)"},
		{Exc(V("t"), "a", CInt(1)).String(), "(t except (a = 1))"},
		{Nu(T("X"), "g", "a", "b").String(), "ν[{a, b}→g](X)"},
		{LetE("v", CInt(1), V("v")).String(), "(v with v = 1)"},
		{AggE(Count, T("X")).String(), "count(X)"},
		{NestJoin(T("A"), "x", "y", CBool(true), "kids", T("B")).String(),
			"(A ⊣[x,y : true ; kids] B)"},
		{NestJoinF(T("A"), "x", "y", CBool(true), Dot(V("y"), "f"), "kids", T("B")).String(),
			"(A ⊣[x,y : true ; y→y.f ; kids] B)"},
		{SemiJoin(T("A"), "x", "y", CBool(true), T("B")).String(),
			"(A ⋉[x,y : true] B)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("printed %q, want %q", c.got, c.want)
		}
	}
}

func TestFreshNumberedFallback(t *testing.T) {
	avoid := AndE(EqE(V("x"), V("x1")), EqE(V("x2"), CInt(1)))
	if got := Fresh("x", avoid); got != "x3" {
		t.Errorf("Fresh = %q, want x3", got)
	}
	// Bound occurrences count as used too.
	if got := Fresh("b", Sel("b", CBool(true), T("X"))); got != "b1" {
		t.Errorf("Fresh past bound var = %q, want b1", got)
	}
}

func TestFreeVarsNestJoinRFun(t *testing.T) {
	// The right-tuple function is inside the join's binding scope: its x and
	// y are bound, its z is free.
	j := NestJoinF(T("A"), "x", "y", CBool(true),
		EqE(Dot(V("y"), "f"), V("z")), "as", T("B"))
	fv := FreeVars(j)
	if fv["x"] || fv["y"] || !fv["z"] {
		t.Errorf("nestjoin RFun scope wrong: %v", fv)
	}
}

func TestSubstBinderShadowsEachIterator(t *testing.T) {
	// For every binding construct, substituting its own variable must stop at
	// the binder and still rewrite the non-scope operand.
	cases := []struct{ e, want Expr }{
		{MapE("x", V("x"), V("x")), MapE("x", V("x"), T("X"))},
		{Ex("x", V("x"), V("x")), Ex("x", T("X"), V("x"))},
		{LetE("x", V("x"), V("x")), LetE("x", T("X"), V("x"))},
		{JoinE(V("x"), "x", "y", V("x"), V("x")),
			JoinE(T("X"), "x", "y", V("x"), T("X"))},
	}
	for _, c := range cases {
		if got := Subst(c.e, "x", T("X")); !Equal(got, c.want) {
			t.Errorf("Subst(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}

func TestSubstJoinCaptureBothSides(t *testing.T) {
	// ((A ⋈[x,y : x.a = z] B))[z := x.b]: the replacement's free x would be
	// captured by the join's left binder, so the binder must be renamed.
	j := JoinE(T("A"), "x", "y", EqE(Dot(V("x"), "a"), V("z")), T("B"))
	got, ok := Subst(j, "z", Dot(V("x"), "b")).(*Join)
	if !ok {
		t.Fatalf("result is not a join")
	}
	if got.LVar == "x" {
		t.Fatalf("left binder not renamed: %s", got)
	}
	if !HasFree(got.On, "x") {
		t.Fatalf("replacement's free x was captured: %s", got)
	}
	if !Equal(got.On, EqE(Dot(V(got.LVar), "a"), Dot(V("x"), "b"))) {
		t.Fatalf("predicate misrewritten: %s", got.On)
	}

	// Same through the right binder, with a right-tuple function in scope.
	nj := NestJoinF(T("A"), "x", "y", EqE(Dot(V("x"), "a"), V("z")),
		EqE(Dot(V("y"), "f"), V("z")), "as", T("B"))
	got, ok = Subst(nj, "z", Dot(V("y"), "b")).(*Join)
	if !ok {
		t.Fatalf("result is not a join")
	}
	if got.RVar == "y" {
		t.Fatalf("right binder not renamed: %s", got)
	}
	if !Equal(got.RFun, EqE(Dot(V(got.RVar), "f"), Dot(V("y"), "b"))) {
		t.Fatalf("right-tuple function misrewritten: %s", got.RFun)
	}
}

// supplierAttrs is a leaf-attribute oracle for the decomposition tests.
func attrsOracle(m map[string][]string) func(Expr) []string {
	return func(e Expr) []string {
		if tb, ok := e.(*Table); ok {
			return m[tb.Name]
		}
		return nil
	}
}

func TestDecomposeMultiLeafOperand(t *testing.T) {
	attrs := attrsOracle(map[string][]string{
		"A": {"x"}, "B": {"y"}, "C": {"z"},
	})
	// ((A ⋈ B) ⋈[ab,c : ab.x = c.z ∧ ab[y] = c.z] C): both the field and the
	// subscript through the two-leaf operand variable must re-point at the
	// owning leaf.
	inner := JoinE(T("A"), "a", "b", EqE(Dot(V("a"), "x"), Dot(V("b"), "y")), T("B"))
	outer := JoinE(inner, "ab", "c",
		AndE(EqE(Dot(V("ab"), "x"), Dot(V("c"), "z")),
			EqE(SubT(V("ab"), "y"), Dot(V("c"), "z"))),
		T("C"))
	tree, ok := DecomposeJoinTree(outer, attrs)
	if !ok {
		t.Fatalf("decomposition failed")
	}
	if len(tree.Leaves) != 3 || len(tree.Conjs) != 3 {
		t.Fatalf("got %d leaves, %d conjuncts; want 3, 3", len(tree.Leaves), len(tree.Conjs))
	}
	for _, c := range tree.Conjs {
		if HasFree(c, "ab") {
			t.Errorf("conjunct still references the operand tuple: %s", c)
		}
	}
	re, ok := RecomposeJoinTree(tree)
	if !ok {
		t.Fatalf("recomposition failed")
	}
	if CountNodes(re, func(e Expr) bool { j, isJ := e.(*Join); return isJ && j.Kind == Inner }) != 2 {
		t.Fatalf("recomposition is not a two-join chain: %s", re)
	}
}

func TestDecomposeFailureModes(t *testing.T) {
	ab := func(on Expr) *Join {
		inner := JoinE(T("A"), "a", "b", CBool(true), T("B"))
		return JoinE(inner, "ab", "c", on, T("C"))
	}
	cases := []struct {
		name  string
		j     *Join
		attrs func(Expr) []string
	}{
		{"ambiguous attribute", ab(EqE(Dot(V("ab"), "x"), Dot(V("c"), "z"))),
			attrsOracle(map[string][]string{"A": {"x"}, "B": {"x"}, "C": {"z"}})},
		{"unresolvable attribute", ab(EqE(Dot(V("ab"), "w"), Dot(V("c"), "z"))),
			attrsOracle(map[string][]string{"A": {"x"}, "B": {"y"}, "C": {"z"}})},
		{"bare operand tuple", ab(CmpE(In, V("ab"), Dot(V("c"), "z"))),
			attrsOracle(map[string][]string{"A": {"x"}, "B": {"y"}, "C": {"z"}})},
		{"subscript spans leaves", ab(EqE(SubT(V("ab"), "x", "y"), Dot(V("c"), "z"))),
			attrsOracle(map[string][]string{"A": {"x"}, "B": {"y"}, "C": {"z"}})},
		{"no attribute oracle", ab(EqE(Dot(V("ab"), "x"), Dot(V("c"), "z"))), nil},
		{"conjunct rebinds operand var",
			JoinE(T("A"), "a", "b",
				EqE(AggE(Count, MapE("a", V("a"), T("Z"))), Dot(V("a"), "x")), T("B")),
			attrsOracle(map[string][]string{"A": {"x"}, "B": {"y"}})},
	}
	for _, c := range cases {
		if _, ok := DecomposeJoinTree(c.j, c.attrs); ok {
			t.Errorf("%s: decomposition must fail", c.name)
		}
	}
}

func TestDecomposeHelpers(t *testing.T) {
	owner := map[string]string{"x": "a", "y": "a", "z": "b"}
	if lf, ok := sameOwner(owner, []string{"x", "y"}); !ok || lf != "a" {
		t.Errorf("sameOwner(x,y) = %q, %v", lf, ok)
	}
	if _, ok := sameOwner(owner, []string{"x", "z"}); ok {
		t.Errorf("subscript across owners must fail")
	}
	if _, ok := sameOwner(owner, []string{"w"}); ok {
		t.Errorf("unknown attribute must fail")
	}
	if _, ok := sameOwner(owner, nil); ok {
		t.Errorf("empty subscript must fail")
	}
	if bindsVar(Sel("v", CBool(true), T("X")), "v") != true {
		t.Errorf("bindsVar must see the select binder")
	}
	if bindsVar(NestJoin(T("A"), "x", "y", CBool(true), "as", T("B")), "y") != true {
		t.Errorf("bindsVar must see join binders")
	}
	if bindsVar(Dot(V("v"), "a"), "v") {
		t.Errorf("a reference is not a binding")
	}
}

func TestRecomposeDegenerate(t *testing.T) {
	if _, ok := RecomposeJoinTree(&JoinTree{}); ok {
		t.Errorf("empty tree must not recompose")
	}
	// Single leaf with a local conjunct becomes a selection over the leaf.
	tree := &JoinTree{
		Leaves: []JoinLeaf{{Var: "r0", Expr: T("A")}},
		Conjs:  []Expr{EqE(Dot(V("r0"), "x"), CInt(1))},
	}
	re, ok := RecomposeJoinTree(tree)
	if !ok {
		t.Fatalf("single-leaf recomposition failed")
	}
	sel, isSel := re.(*Select)
	if !isSel || sel.Var != "r0" {
		t.Fatalf("want a selection over the leaf, got %s", re)
	}
}
