package adl

import (
	"fmt"
	"strings"
)

// The printer renders expressions in the paper's notation (σ, α, π, μ, ν,
// joins, quantifiers). Binary scalar operators are parenthesized liberally
// rather than by precedence: printed expressions are for humans reading
// rewrite traces, not for re-parsing.

func (e *Const) String() string { return e.Val.String() }
func (e *Var) String() string   { return e.Name }
func (e *Table) String() string { return e.Name }
func (e *Field) String() string { return fmt.Sprintf("%s.%s", e.X, e.Name) }

func (e *TupleExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i := range e.Elems {
		parts[i] = e.Names[i] + " = " + e.Elems[i].String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (e *SetExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i := range e.Elems {
		parts[i] = e.Elems[i].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (e *Subscript) String() string {
	return fmt.Sprintf("%s[%s]", e.X, strings.Join(e.Attrs, ", "))
}

func (e *ExceptExpr) String() string {
	parts := make([]string, len(e.Elems))
	for i := range e.Elems {
		parts[i] = e.Names[i] + " = " + e.Elems[i].String()
	}
	return fmt.Sprintf("(%s except (%s))", e.X, strings.Join(parts, ", "))
}

func (e *Concat) String() string { return fmt.Sprintf("(%s ∘ %s)", e.L, e.R) }

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "≠"
	case Lt:
		return "<"
	case Le:
		return "≤"
	case Gt:
		return ">"
	case Ge:
		return "≥"
	case In:
		return "∈"
	case Sub:
		return "⊂"
	case SubEq:
		return "⊆"
	case Sup:
		return "⊃"
	case SupEq:
		return "⊇"
	case Has:
		return "∋"
	}
	return fmt.Sprintf("cmp(%d)", uint8(op))
}

func (e *Cmp) String() string { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Subtract:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return fmt.Sprintf("arith(%d)", uint8(op))
}

func (e *Arith) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *Not) String() string   { return fmt.Sprintf("¬(%s)", e.X) }
func (e *And) String() string   { return fmt.Sprintf("(%s ∧ %s)", e.L, e.R) }
func (e *Or) String() string    { return fmt.Sprintf("(%s ∨ %s)", e.L, e.R) }

func (op SetOpKind) String() string {
	switch op {
	case Union:
		return "∪"
	case Intersect:
		return "∩"
	case Diff:
		return "−"
	}
	return fmt.Sprintf("setop(%d)", uint8(op))
}

func (e *SetOp) String() string   { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *Flatten) String() string { return fmt.Sprintf("flatten(%s)", e.X) }

func (e *Map) String() string {
	return fmt.Sprintf("α[%s : %s](%s)", e.Var, e.Body, e.Src)
}

func (e *Select) String() string {
	return fmt.Sprintf("σ[%s : %s](%s)", e.Var, e.Pred, e.Src)
}

func (e *Project) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(e.Attrs, ", "), e.X)
}

func (e *Unnest) String() string { return fmt.Sprintf("μ[%s](%s)", e.Attr, e.X) }

func (e *Nest) String() string {
	return fmt.Sprintf("ν[{%s}→%s](%s)", strings.Join(e.Attrs, ", "), e.As, e.X)
}

func (e *Product) String() string { return fmt.Sprintf("(%s × %s)", e.L, e.R) }

func (k JoinKind) String() string {
	switch k {
	case Inner:
		return "⋈"
	case Semi:
		return "⋉"
	case Anti:
		return "▷"
	case NestJ:
		return "⊣"
	case Outer:
		return "⟕"
	}
	return fmt.Sprintf("join(%d)", uint8(k))
}

func (e *Join) String() string {
	switch {
	case e.Kind == NestJ && e.RFun != nil:
		return fmt.Sprintf("(%s ⊣[%s,%s : %s ; %s→%s ; %s] %s)",
			e.L, e.LVar, e.RVar, e.On, e.RVar, e.RFun, e.As, e.R)
	case e.Kind == NestJ:
		return fmt.Sprintf("(%s ⊣[%s,%s : %s ; %s] %s)",
			e.L, e.LVar, e.RVar, e.On, e.As, e.R)
	default:
		return fmt.Sprintf("(%s %s[%s,%s : %s] %s)",
			e.L, e.Kind, e.LVar, e.RVar, e.On, e.R)
	}
}

func (e *Divide) String() string { return fmt.Sprintf("(%s ÷ %s)", e.L, e.R) }

func (k QuantKind) String() string {
	if k == Exists {
		return "∃"
	}
	return "∀"
}

func (e *Quant) String() string {
	return fmt.Sprintf("(%s%s ∈ %s • %s)", e.Kind, e.Var, e.Src, e.Pred)
}

func (op AggOp) String() string {
	switch op {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", uint8(op))
}

func (e *Agg) String() string { return fmt.Sprintf("%s(%s)", e.Op, e.X) }

func (e *Rename) String() string {
	return fmt.Sprintf("ρ[%s→%s](%s)", e.From, e.To, e.X)
}

func (e *Materialize) String() string {
	return fmt.Sprintf("mat[%s→%s](%s)", e.Attr, e.As, e.X)
}

func (e *Let) String() string {
	return fmt.Sprintf("(%s with %s = %s)", e.Body, e.Var, e.Val)
}
