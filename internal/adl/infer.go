package adl

import (
	"fmt"

	"repro/internal/types"
)

// TypeResolver supplies schema information to static type inference: the
// (reference-annotated) element types of base tables and the object tuple
// types of classes (for typing implicit pointer navigation).
type TypeResolver interface {
	// TableElem returns the reference-annotated element tuple type of a base
	// table.
	TableElem(name string) (*types.Tuple, error)
	// ClassTuple returns the reference-annotated object type of a class.
	ClassTuple(class string) (*types.Tuple, error)
}

// TypeEnv maps free variables to their (reference-annotated) types.
type TypeEnv map[string]types.Type

// bind returns a copy of the environment extended with name = t.
func (env TypeEnv) bind(name string, t types.Type) TypeEnv {
	out := make(TypeEnv, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	out[name] = t
	return out
}

// Infer statically types an ADL expression. It mirrors the §3 semantics and
// is used by the rewriter (to compute the schema function SCH of operands)
// and by the planner. Reference-annotated types flow through so pointer
// navigation (Field on a Ref) can be typed.
func Infer(e Expr, env TypeEnv, r TypeResolver) (types.Type, error) {
	switch n := e.(type) {
	case *Const:
		return types.Infer(n.Val)

	case *Var:
		t, ok := env[n.Name]
		if !ok {
			return nil, fmt.Errorf("adl: unbound variable %q in type inference", n.Name)
		}
		return t, nil

	case *Table:
		elem, err := r.TableElem(n.Name)
		if err != nil {
			return nil, err
		}
		return types.NewSet(elem), nil

	case *Field:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := derefTuple(xt, r)
		if err != nil {
			return nil, fmt.Errorf("adl: field .%s: %w", n.Name, err)
		}
		ft, ok := tt.Field(n.Name)
		if !ok {
			return nil, fmt.Errorf("adl: tuple %s has no attribute %q", tt, n.Name)
		}
		return ft, nil

	case *TupleExpr:
		out := &types.Tuple{}
		for i, name := range n.Names {
			ft, err := Infer(n.Elems[i], env, r)
			if err != nil {
				return nil, err
			}
			out.Fields = append(out.Fields, types.Field{Name: name, Type: ft})
		}
		return out, nil

	case *SetExpr:
		var elem types.Type = types.Bottom
		for _, el := range n.Elems {
			et, err := Infer(el, env, r)
			if err != nil {
				return nil, err
			}
			u, ok := types.Unify(elem, et)
			if !ok {
				return nil, fmt.Errorf("adl: heterogeneous set constructor: %s vs %s", elem, et)
			}
			elem = u
		}
		return types.NewSet(elem), nil

	case *Subscript:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := derefTuple(xt, r)
		if err != nil {
			return nil, fmt.Errorf("adl: subscript: %w", err)
		}
		out := &types.Tuple{}
		for _, a := range n.Attrs {
			ft, ok := tt.Field(a)
			if !ok {
				return nil, fmt.Errorf("adl: subscript on missing attribute %q", a)
			}
			out.Fields = append(out.Fields, types.Field{Name: a, Type: ft})
		}
		return out, nil

	case *ExceptExpr:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := derefTuple(xt, r)
		if err != nil {
			return nil, fmt.Errorf("adl: except: %w", err)
		}
		out := &types.Tuple{Fields: append([]types.Field(nil), tt.Fields...)}
		for i, name := range n.Names {
			et, err := Infer(n.Elems[i], env, r)
			if err != nil {
				return nil, err
			}
			replaced := false
			for j := range out.Fields {
				if out.Fields[j].Name == name {
					out.Fields[j].Type = et
					replaced = true
					break
				}
			}
			if !replaced {
				out.Fields = append(out.Fields, types.Field{Name: name, Type: et})
			}
		}
		return out, nil

	case *Concat:
		lt, err := Infer(n.L, env, r)
		if err != nil {
			return nil, err
		}
		rt, err := Infer(n.R, env, r)
		if err != nil {
			return nil, err
		}
		ltt, err := derefTuple(lt, r)
		if err != nil {
			return nil, fmt.Errorf("adl: concat: %w", err)
		}
		rtt, err := derefTuple(rt, r)
		if err != nil {
			return nil, fmt.Errorf("adl: concat: %w", err)
		}
		return types.ConcatTuples(ltt, rtt)

	case *Cmp:
		if _, err := Infer(n.L, env, r); err != nil {
			return nil, err
		}
		if _, err := Infer(n.R, env, r); err != nil {
			return nil, err
		}
		return types.BoolType, nil

	case *Arith:
		lt, err := Infer(n.L, env, r)
		if err != nil {
			return nil, err
		}
		if _, err := Infer(n.R, env, r); err != nil {
			return nil, err
		}
		return lt, nil

	case *Not, *And, *Or, *Quant:
		for _, c := range Children(e) {
			var cenv TypeEnv = env
			if q, ok := e.(*Quant); ok && Equal(c, q.Pred) {
				st, err := Infer(q.Src, env, r)
				if err != nil {
					return nil, err
				}
				elem, err := elemType(st)
				if err != nil {
					return nil, fmt.Errorf("adl: quantifier range: %w", err)
				}
				cenv = env.bind(q.Var, elem)
			}
			if _, err := Infer(c, cenv, r); err != nil {
				return nil, err
			}
		}
		return types.BoolType, nil

	case *SetOp:
		lt, err := Infer(n.L, env, r)
		if err != nil {
			return nil, err
		}
		rt, err := Infer(n.R, env, r)
		if err != nil {
			return nil, err
		}
		u, ok := types.Unify(lt, rt)
		if !ok {
			return nil, fmt.Errorf("adl: set operation on %s and %s", lt, rt)
		}
		return u, nil

	case *Flatten:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		st, ok := xt.(*types.Set)
		if !ok {
			return nil, fmt.Errorf("adl: flatten of non-set %s", xt)
		}
		inner, ok := st.Elem.(*types.Set)
		if !ok {
			return nil, fmt.Errorf("adl: flatten of set of non-sets %s", xt)
		}
		return inner, nil

	case *Map:
		st, err := Infer(n.Src, env, r)
		if err != nil {
			return nil, err
		}
		elem, err := elemType(st)
		if err != nil {
			return nil, fmt.Errorf("adl: map source: %w", err)
		}
		bt, err := Infer(n.Body, env.bind(n.Var, elem), r)
		if err != nil {
			return nil, err
		}
		return types.NewSet(bt), nil

	case *Select:
		st, err := Infer(n.Src, env, r)
		if err != nil {
			return nil, err
		}
		elem, err := elemType(st)
		if err != nil {
			return nil, fmt.Errorf("adl: select source: %w", err)
		}
		if _, err := Infer(n.Pred, env.bind(n.Var, elem), r); err != nil {
			return nil, err
		}
		return st, nil

	case *Project:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := tableElem(xt)
		if err != nil {
			return nil, fmt.Errorf("adl: project: %w", err)
		}
		out := &types.Tuple{}
		for _, a := range n.Attrs {
			ft, ok := tt.Field(a)
			if !ok {
				return nil, fmt.Errorf("adl: project on missing attribute %q", a)
			}
			out.Fields = append(out.Fields, types.Field{Name: a, Type: ft})
		}
		return types.NewSet(out), nil

	case *Unnest:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := tableElem(xt)
		if err != nil {
			return nil, fmt.Errorf("adl: unnest: %w", err)
		}
		at, ok := tt.Field(n.Attr)
		if !ok {
			return nil, fmt.Errorf("adl: unnest on missing attribute %q", n.Attr)
		}
		ast, ok := at.(*types.Set)
		if !ok {
			return nil, fmt.Errorf("adl: unnest on non-set attribute %q: %s", n.Attr, at)
		}
		inner, ok := ast.Elem.(*types.Tuple)
		if !ok {
			return nil, fmt.Errorf("adl: unnest of set of non-tuples %q: %s", n.Attr, at)
		}
		rest := &types.Tuple{}
		for _, f := range tt.Fields {
			if f.Name != n.Attr {
				rest.Fields = append(rest.Fields, f)
			}
		}
		cat, err := types.ConcatTuples(inner, rest)
		if err != nil {
			return nil, fmt.Errorf("adl: unnest: %w", err)
		}
		return types.NewSet(cat), nil

	case *Nest:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := tableElem(xt)
		if err != nil {
			return nil, fmt.Errorf("adl: nest: %w", err)
		}
		grouped := &types.Tuple{}
		rest := &types.Tuple{}
		isGrouped := map[string]bool{}
		for _, a := range n.Attrs {
			ft, ok := tt.Field(a)
			if !ok {
				return nil, fmt.Errorf("adl: nest on missing attribute %q", a)
			}
			grouped.Fields = append(grouped.Fields, types.Field{Name: a, Type: ft})
			isGrouped[a] = true
		}
		for _, f := range tt.Fields {
			if !isGrouped[f.Name] {
				rest.Fields = append(rest.Fields, f)
			}
		}
		if _, dup := rest.Field(n.As); dup {
			return nil, fmt.Errorf("adl: nest result attribute %q already exists", n.As)
		}
		rest.Fields = append(rest.Fields, types.Field{Name: n.As, Type: types.NewSet(grouped)})
		return types.NewSet(rest), nil

	case *Product:
		return inferJoinLike(&Join{Kind: Inner, LVar: "_l", RVar: "_r", On: CBool(true), L: n.L, R: n.R}, env, r)

	case *Join:
		return inferJoinLike(n, env, r)

	case *Divide:
		lt, err := Infer(n.L, env, r)
		if err != nil {
			return nil, err
		}
		rt, err := Infer(n.R, env, r)
		if err != nil {
			return nil, err
		}
		ltt, err := tableElem(lt)
		if err != nil {
			return nil, fmt.Errorf("adl: divide: %w", err)
		}
		rtt, err := tableElem(rt)
		if err != nil {
			return nil, fmt.Errorf("adl: divide: %w", err)
		}
		out := &types.Tuple{}
		for _, f := range ltt.Fields {
			if _, inR := rtt.Field(f.Name); !inR {
				out.Fields = append(out.Fields, f)
			}
		}
		return types.NewSet(out), nil

	case *Agg:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		st, ok := xt.(*types.Set)
		if !ok {
			return nil, fmt.Errorf("adl: %s of non-set %s", n.Op, xt)
		}
		switch n.Op {
		case Count:
			return types.IntType, nil
		case Avg:
			return types.FloatType, nil
		default:
			return st.Elem, nil
		}

	case *Rename:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := tableElem(xt)
		if err != nil {
			return nil, fmt.Errorf("adl: rename: %w", err)
		}
		if _, dup := tt.Field(n.To); dup {
			return nil, fmt.Errorf("adl: rename target %q already exists", n.To)
		}
		out := &types.Tuple{}
		renamed := false
		for _, f := range tt.Fields {
			if f.Name == n.From {
				out.Fields = append(out.Fields, types.Field{Name: n.To, Type: f.Type})
				renamed = true
			} else {
				out.Fields = append(out.Fields, f)
			}
		}
		if !renamed {
			return nil, fmt.Errorf("adl: rename of missing attribute %q", n.From)
		}
		return types.NewSet(out), nil

	case *Materialize:
		xt, err := Infer(n.X, env, r)
		if err != nil {
			return nil, err
		}
		tt, err := tableElem(xt)
		if err != nil {
			return nil, fmt.Errorf("adl: materialize: %w", err)
		}
		at, ok := tt.Field(n.Attr)
		if !ok {
			return nil, fmt.Errorf("adl: materialize on missing attribute %q", n.Attr)
		}
		var resolved types.Type
		switch att := at.(type) {
		case types.Ref:
			obj, err := r.ClassTuple(att.Class)
			if err != nil {
				return nil, err
			}
			resolved = obj
		case *types.Set:
			inner, ok := att.Elem.(*types.Tuple)
			if !ok {
				return nil, fmt.Errorf("adl: materialize of non-reference set %q", n.Attr)
			}
			cls, _, ok := refTupleClassT(inner)
			if !ok {
				return nil, fmt.Errorf("adl: materialize of non-reference set %q", n.Attr)
			}
			obj, err := r.ClassTuple(cls)
			if err != nil {
				return nil, err
			}
			resolved = types.NewSet(obj)
		default:
			return nil, fmt.Errorf("adl: materialize on non-reference attribute %q: %s", n.Attr, at)
		}
		out := &types.Tuple{Fields: append([]types.Field(nil), tt.Fields...)}
		if _, dup := tt.Field(n.As); dup {
			return nil, fmt.Errorf("adl: materialize result attribute %q already exists", n.As)
		}
		out.Fields = append(out.Fields, types.Field{Name: n.As, Type: resolved})
		return types.NewSet(out), nil

	case *Let:
		vt, err := Infer(n.Val, env, r)
		if err != nil {
			return nil, err
		}
		return Infer(n.Body, env.bind(n.Var, vt), r)
	}
	return nil, fmt.Errorf("adl: cannot infer type of %T", e)
}

func inferJoinLike(n *Join, env TypeEnv, r TypeResolver) (types.Type, error) {
	lt, err := Infer(n.L, env, r)
	if err != nil {
		return nil, err
	}
	rt, err := Infer(n.R, env, r)
	if err != nil {
		return nil, err
	}
	ltt, err := tableElem(lt)
	if err != nil {
		return nil, fmt.Errorf("adl: join left operand: %w", err)
	}
	rtt, err := tableElem(rt)
	if err != nil {
		return nil, fmt.Errorf("adl: join right operand: %w", err)
	}
	benv := env.bind(n.LVar, types.Type(ltt)).bind(n.RVar, types.Type(rtt))
	if _, err := Infer(n.On, benv, r); err != nil {
		return nil, err
	}
	switch n.Kind {
	case Semi, Anti:
		return types.NewSet(ltt), nil
	case NestJ:
		var member types.Type = rtt
		if n.RFun != nil {
			// The extended nestjoin collects G(x1, x2) values.
			mt, err := Infer(n.RFun, benv, r)
			if err != nil {
				return nil, err
			}
			member = mt
		}
		out := &types.Tuple{Fields: append([]types.Field(nil), ltt.Fields...)}
		if _, dup := ltt.Field(n.As); dup {
			return nil, fmt.Errorf("adl: nestjoin result attribute %q already exists", n.As)
		}
		out.Fields = append(out.Fields, types.Field{Name: n.As, Type: types.NewSet(member)})
		return types.NewSet(out), nil
	default: // Inner, Outer
		cat, err := types.ConcatTuples(ltt, rtt)
		if err != nil {
			return nil, fmt.Errorf("adl: join: %w", err)
		}
		return types.NewSet(cat), nil
	}
}

// derefTuple views t as a tuple, following class references (the implicit
// pointer navigation of path expressions).
func derefTuple(t types.Type, r TypeResolver) (*types.Tuple, error) {
	switch tt := t.(type) {
	case *types.Tuple:
		return tt, nil
	case types.Object:
		return tt.Tup, nil
	case types.Ref:
		return r.ClassTuple(tt.Class)
	}
	return nil, fmt.Errorf("expected a tuple, got %s", t)
}

// elemType returns the element type of a set type.
func elemType(t types.Type) (types.Type, error) {
	st, ok := t.(*types.Set)
	if !ok {
		return nil, fmt.Errorf("expected a set, got %s", t)
	}
	return st.Elem, nil
}

// tableElem returns the element tuple type of a table type.
func tableElem(t types.Type) (*types.Tuple, error) {
	et, err := elemType(t)
	if err != nil {
		return nil, err
	}
	switch tt := et.(type) {
	case *types.Tuple:
		return tt, nil
	case types.Object:
		return tt.Tup, nil
	}
	return nil, fmt.Errorf("expected a set of tuples, got %s", t)
}

// refTupleClassT recognizes the unary reference tuple shape {(id: ref(C))}.
func refTupleClassT(t *types.Tuple) (class, idField string, ok bool) {
	if len(t.Fields) != 1 {
		return "", "", false
	}
	if r, isRef := t.Fields[0].Type.(types.Ref); isRef {
		return r.Class, t.Fields[0].Name, true
	}
	return "", "", false
}
