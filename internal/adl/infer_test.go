package adl

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/types"
)

// testResolver resolves two tables and one class for inference tests.
type testResolver struct{}

func (testResolver) TableElem(name string) (*types.Tuple, error) {
	switch name {
	case "X":
		return types.NewTuple("a", types.IntType, "c",
			types.NewSet(types.NewTuple("d", types.IntType, "e", types.IntType))), nil
	case "Y":
		return types.NewTuple("d", types.IntType, "e", types.IntType), nil
	case "S":
		return types.NewTuple("sid", types.OIDType, "ref", types.Ref{Class: "P"},
			"refs", types.NewSet(types.NewTuple("pid", types.Ref{Class: "P"}))), nil
	}
	return nil, fmt.Errorf("unknown table %q", name)
}

func (testResolver) ClassTuple(class string) (*types.Tuple, error) {
	if class == "P" {
		return types.NewTuple("pid", types.OIDType, "pname", types.StringType), nil
	}
	return nil, fmt.Errorf("unknown class %q", class)
}

func infer(t *testing.T, e Expr) types.Type {
	t.Helper()
	ty, err := Infer(e, TypeEnv{}, testResolver{})
	if err != nil {
		t.Fatalf("Infer(%s): %v", e, err)
	}
	return ty
}

func inferErr(t *testing.T, e Expr) {
	t.Helper()
	if ty, err := Infer(e, TypeEnv{}, testResolver{}); err == nil {
		t.Fatalf("Infer(%s) = %s, want error", e, ty)
	}
}

func TestInferTableAndSelect(t *testing.T) {
	ty := infer(t, Sel("x", CmpE(Gt, Dot(V("x"), "a"), CInt(1)), T("X")))
	want := "{(a: int, c: {(d: int, e: int)})}"
	if ty.String() != want {
		t.Errorf("σ type = %s, want %s", ty, want)
	}
}

func TestInferMapProjectUnnestNest(t *testing.T) {
	// α over field access.
	ty := infer(t, MapE("x", Dot(V("x"), "a"), T("X")))
	if ty.String() != "{int}" {
		t.Errorf("α type = %s", ty)
	}
	// π.
	ty = infer(t, Proj(T("Y"), "d"))
	if ty.String() != "{(d: int)}" {
		t.Errorf("π type = %s", ty)
	}
	// μ merges element fields with the rest.
	ty = infer(t, Mu("c", T("X")))
	if !strings.Contains(ty.String(), "d: int") || !strings.Contains(ty.String(), "a: int") {
		t.Errorf("μ type = %s", ty)
	}
	// ν groups the named attrs into a set attribute.
	ty = infer(t, Nu(T("Y"), "es", "e"))
	if ty.String() != "{(d: int, es: {(e: int)})}" {
		t.Errorf("ν type = %s", ty)
	}
	// ν with a clashing result attribute fails.
	inferErr(t, Nu(T("Y"), "d", "e"))
}

func TestInferJoins(t *testing.T) {
	on := EqE(Dot(V("x"), "a"), Dot(V("y"), "d"))
	// Inner join concatenates.
	ty := infer(t, JoinE(T("X"), "x", "y", on, T("Y")))
	for _, f := range []string{"a: int", "c:", "d: int", "e: int"} {
		if !strings.Contains(ty.String(), f) {
			t.Errorf("⋈ type = %s missing %s", ty, f)
		}
	}
	// Semijoin/antijoin keep exactly the left schema.
	left := infer(t, T("X"))
	for _, k := range []JoinKind{Semi, Anti} {
		j := &Join{Kind: k, LVar: "x", RVar: "y", On: on, L: T("X"), R: T("Y")}
		if ty := infer(t, j); !types.Equal(ty, left) {
			t.Errorf("%v type = %s, want %s", k, ty, left)
		}
	}
	// Nestjoin appends a set attribute; with RFun, of the mapped type.
	nj := NestJoin(T("X"), "x", "y", on, "ys", T("Y"))
	ty = infer(t, nj)
	if !strings.Contains(ty.String(), "ys: {(d: int, e: int)}") {
		t.Errorf("⊣ type = %s", ty)
	}
	njf := NestJoinF(T("X"), "x", "y", on, Dot(V("y"), "e"), "es", T("Y"))
	ty = infer(t, njf)
	if !strings.Contains(ty.String(), "es: {int}") {
		t.Errorf("⊣ with RFun type = %s", ty)
	}
	// Attribute collision in concat fails.
	inferErr(t, JoinE(T("X"), "x", "y", CBool(true), T("X")))
	// Nestjoin result attribute collision fails.
	inferErr(t, NestJoin(T("X"), "x", "y", on, "a", T("Y")))
}

func TestInferQuantifierAndAgg(t *testing.T) {
	ty := infer(t, Ex("y", T("Y"), EqE(Dot(V("y"), "d"), CInt(1))))
	if !types.Equal(ty, types.BoolType) {
		t.Errorf("∃ type = %s", ty)
	}
	if ty := infer(t, AggE(Count, T("Y"))); !types.Equal(ty, types.IntType) {
		t.Errorf("count type = %s", ty)
	}
	if ty := infer(t, AggE(Avg, MapE("y", Dot(V("y"), "d"), T("Y")))); !types.Equal(ty, types.FloatType) {
		t.Errorf("avg type = %s", ty)
	}
	if ty := infer(t, AggE(Max, MapE("y", Dot(V("y"), "d"), T("Y")))); !types.Equal(ty, types.IntType) {
		t.Errorf("max type = %s", ty)
	}
}

func TestInferPointerNavigation(t *testing.T) {
	// Field through a Ref type reaches the class tuple.
	ty := infer(t, MapE("s", Dot(V("s"), "ref", "pname"), T("S")))
	if ty.String() != "{string}" {
		t.Errorf("navigation type = %s", ty)
	}
	// Materialize on a scalar ref and on a ref set.
	ty = infer(t, Mat(T("S"), "ref", "obj"))
	if !strings.Contains(ty.String(), "obj: (pid: oid, pname: string)") {
		t.Errorf("materialize scalar type = %s", ty)
	}
	ty = infer(t, Mat(T("S"), "refs", "objs"))
	if !strings.Contains(ty.String(), "objs: {(pid: oid, pname: string)}") {
		t.Errorf("materialize set type = %s", ty)
	}
	inferErr(t, Mat(T("S"), "sid", "o")) // non-reference attribute
}

func TestInferDivide(t *testing.T) {
	ty := infer(t, DivE(T("Y"), Proj(T("Y"), "e")))
	if ty.String() != "{(d: int)}" {
		t.Errorf("÷ type = %s", ty)
	}
}

func TestInferLetAndFreeVars(t *testing.T) {
	ty := infer(t, LetE("v", T("Y"), V("v")))
	if ty.String() != "{(d: int, e: int)}" {
		t.Errorf("let type = %s", ty)
	}
	inferErr(t, V("unbound"))
}

func TestInferScalarOps(t *testing.T) {
	if ty := infer(t, Flat(MapE("x", Dot(V("x"), "c"), T("X")))); ty.String() != "{(d: int, e: int)}" {
		t.Errorf("flatten type = %s", ty)
	}
	inferErr(t, Flat(T("Y"))) // set of tuples, not of sets
	if ty := infer(t, &SetOp{Op: Union, L: T("Y"), R: T("Y")}); ty.String() != "{(d: int, e: int)}" {
		t.Errorf("∪ type = %s", ty)
	}
	inferErr(t, &SetOp{Op: Union, L: T("Y"), R: T("X")})
	if ty := infer(t, &Arith{Op: Add, L: CInt(1), R: CInt(2)}); !types.Equal(ty, types.IntType) {
		t.Errorf("arith type = %s", ty)
	}
	// Tuple ops.
	env := TypeEnv{"t": types.NewTuple("a", types.IntType, "b", types.StringType)}
	ty, err := Infer(SubT(V("t"), "b"), env, testResolver{})
	if err != nil || ty.String() != "(b: string)" {
		t.Errorf("subscript type = %s, %v", ty, err)
	}
	ty, err = Infer(Exc(V("t"), "a", CStr("s"), "z", CInt(1)), env, testResolver{})
	if err != nil || ty.String() != "(a: string, b: string, z: int)" {
		t.Errorf("except type = %s, %v", ty, err)
	}
	ty, err = Infer(Cat(SubT(V("t"), "a"), SubT(V("t"), "b")), env, testResolver{})
	if err != nil || ty.String() != "(a: int, b: string)" {
		t.Errorf("concat type = %s, %v", ty, err)
	}
}
