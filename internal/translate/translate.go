// Package translate implements the paper's §3 mapping of OOSQL expressions
// into the algebra ADL. Translation is "simple, almost one-to-one": the
// select-from-where block becomes a map over a selection,
//
//	select e1 from x in e2 where e3  ⇒  α[x : e1′](σ[x : e3′](e2′)),
//
// nested OOSQL queries become nested algebraic expressions, and the with
// construct becomes a local binding. Translation subsumes name resolution
// and typechecking: identifiers resolve to iteration variables, with-
// bindings, or base tables; path expressions over class references are
// checked against the catalog; and object identity comparisons are lowered
// to the oid representation chosen by the logical database design (the
// paper's z = p[pid] idiom falls out of this lowering).
package translate

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/oosql"
	"repro/internal/schema"
	"repro/internal/types"
	"repro/internal/value"
)

// scope is a lexical environment mapping variables to checker types
// (reference-annotated; see types.Ref and types.Object).
type scope struct {
	name   string
	t      types.Type
	parent *scope
}

func (s *scope) bind(name string, t types.Type) *scope {
	return &scope{name: name, t: t, parent: s}
}

func (s *scope) lookup(name string) (types.Type, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.name == name {
			return sc.t, true
		}
	}
	return nil, false
}

type translator struct {
	cat   *schema.Catalog
	fresh int
}

// Translate resolves, typechecks and translates an OOSQL query against a
// catalog. It returns the ADL expression and the (reference-annotated)
// result type; use types.Erase for the pure ADL type.
func Translate(q oosql.Expr, cat *schema.Catalog) (adl.Expr, types.Type, error) {
	tr := &translator{cat: cat}
	return tr.expr(q, nil)
}

// MustTranslate is Translate for fixtures and examples with known-good input.
func MustTranslate(q oosql.Expr, cat *schema.Catalog) adl.Expr {
	e, _, err := Translate(q, cat)
	if err != nil {
		panic(err)
	}
	return e
}

// Parse translates OOSQL source text end to end.
func Parse(src string, cat *schema.Catalog) (adl.Expr, types.Type, error) {
	q, err := oosql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return Translate(q, cat)
}

func (tr *translator) freshVar(base string) string {
	tr.fresh++
	return fmt.Sprintf("%s_%d", base, tr.fresh)
}

func (tr *translator) expr(q oosql.Expr, sc *scope) (adl.Expr, types.Type, error) {
	switch n := q.(type) {
	case *oosql.Lit:
		t, err := types.Infer(n.Val)
		if err != nil {
			return nil, nil, errAt(n.Pos(), "%v", err)
		}
		return adl.C(n.Val), t, nil

	case *oosql.Ident:
		if t, ok := sc.lookup(n.Name); ok {
			return adl.V(n.Name), t, nil
		}
		if cl, ok := tr.cat.ByExtent(n.Name); ok {
			obj, err := tr.cat.ObjectType(cl)
			if err != nil {
				return nil, nil, errAt(n.Pos(), "%v", err)
			}
			return adl.T(n.Name), types.NewSet(types.Object{Class: cl.Name, Tup: obj}), nil
		}
		return nil, nil, errAt(n.Pos(), "unknown name %q (not a variable or base table)", n.Name)

	case *oosql.FieldAcc:
		return tr.fieldAcc(n, sc)

	case *oosql.TupleCtor:
		tt := &types.Tuple{}
		ctor := &adl.TupleExpr{}
		seen := map[string]bool{}
		for i, name := range n.Names {
			if seen[name] {
				return nil, nil, errAt(n.Pos(), "duplicate attribute %q in tuple constructor", name)
			}
			seen[name] = true
			e, t, err := tr.expr(n.Elems[i], sc)
			if err != nil {
				return nil, nil, err
			}
			ctor.Names = append(ctor.Names, name)
			ctor.Elems = append(ctor.Elems, e)
			tt.Fields = append(tt.Fields, types.Field{Name: name, Type: t})
		}
		return ctor, tt, nil

	case *oosql.SetCtor:
		var elem types.Type = types.Bottom
		ctor := &adl.SetExpr{}
		for _, el := range n.Elems {
			e, t, err := tr.expr(el, sc)
			if err != nil {
				return nil, nil, err
			}
			u, ok := types.Unify(elem, t)
			if !ok {
				return nil, nil, errAt(n.Pos(), "heterogeneous set constructor: %s vs %s", elem, t)
			}
			elem = u
			ctor.Elems = append(ctor.Elems, e)
		}
		return ctor, types.NewSet(elem), nil

	case *oosql.Unary:
		return tr.unary(n, sc)

	case *oosql.Binary:
		return tr.binary(n, sc)

	case *oosql.SFW:
		return tr.sfw(n, sc)

	case *oosql.Quant:
		return tr.quant(n, sc)

	case *oosql.Call:
		return tr.call(n, sc)
	}
	return nil, nil, errAt(q.Pos(), "unsupported expression %T", q)
}

// fieldAcc checks and translates a path step. Reference-valued operands
// (plain refs and unary reference tuples) navigate implicitly.
func (tr *translator) fieldAcc(n *oosql.FieldAcc, sc *scope) (adl.Expr, types.Type, error) {
	xe, xt, err := tr.expr(n.X, sc)
	if err != nil {
		return nil, nil, err
	}
	switch t := xt.(type) {
	case types.Object:
		cl, ok := tr.cat.Class(t.Class)
		if !ok {
			return nil, nil, errAt(n.Pos(), "unknown class %q", t.Class)
		}
		return tr.classField(xe, cl, n)
	case types.Ref:
		cl, ok := tr.cat.Class(t.Class)
		if !ok {
			return nil, nil, errAt(n.Pos(), "unknown class %q", t.Class)
		}
		// Implicit deref: the evaluator follows the oid.
		return tr.classField(xe, cl, n)
	case *types.Tuple:
		if ft, ok := t.Field(n.Name); ok {
			return &adl.Field{X: xe, Name: n.Name}, ft, nil
		}
		// A unary reference tuple (the RefSet element shape) navigates to
		// the referenced class: x.color ⇒ x.pid.color.
		if cls, idf, ok := refTupleClass(t); ok {
			cl, _ := tr.cat.Class(cls)
			return tr.classField(&adl.Field{X: xe, Name: idf}, cl, n)
		}
		return nil, nil, errAt(n.Pos(), "tuple %s has no attribute %q", t, n.Name)
	}
	return nil, nil, errAt(n.Pos(), "cannot access attribute %q of %s", n.Name, xt)
}

// classField resolves an attribute (or the identity field) of a class,
// honouring surface aliases, and emits the ADL field access.
func (tr *translator) classField(xe adl.Expr, cl *schema.Class, n *oosql.FieldAcc) (adl.Expr, types.Type, error) {
	if n.Name == cl.IDField {
		return &adl.Field{X: xe, Name: cl.IDField}, types.OIDType, nil
	}
	a, ok := cl.ResolveAttr(n.Name)
	if !ok {
		return nil, nil, errAt(n.Pos(), "class %s has no attribute %q", cl.Name, n.Name)
	}
	at, err := tr.cat.AttrType(a)
	if err != nil {
		return nil, nil, errAt(n.Pos(), "%v", err)
	}
	return &adl.Field{X: xe, Name: a.Name}, at, nil
}

// refTupleClass recognizes the RefSet element shape: a unary tuple whose
// single attribute is a class reference. It returns the class and the
// attribute (id-field) name.
func refTupleClass(t *types.Tuple) (class, idField string, ok bool) {
	if len(t.Fields) != 1 {
		return "", "", false
	}
	if r, isRef := t.Fields[0].Type.(types.Ref); isRef {
		return r.Class, t.Fields[0].Name, true
	}
	return "", "", false
}

func (tr *translator) unary(n *oosql.Unary, sc *scope) (adl.Expr, types.Type, error) {
	xe, xt, err := tr.expr(n.X, sc)
	if err != nil {
		return nil, nil, err
	}
	switch n.Op {
	case "not":
		if !types.Equal(xt, types.BoolType) {
			return nil, nil, errAt(n.Pos(), "not requires a boolean, got %s", xt)
		}
		return adl.NotE(xe), types.BoolType, nil
	case "-":
		switch {
		case types.Equal(xt, types.IntType):
			return &adl.Arith{Op: adl.Subtract, L: adl.CInt(0), R: xe}, types.IntType, nil
		case types.Equal(xt, types.FloatType):
			return &adl.Arith{Op: adl.Subtract, L: adl.C(value.Float(0)), R: xe}, types.FloatType, nil
		}
		return nil, nil, errAt(n.Pos(), "unary minus requires a number, got %s", xt)
	}
	return nil, nil, errAt(n.Pos(), "unknown unary operator %q", n.Op)
}

func (tr *translator) sfw(n *oosql.SFW, sc *scope) (adl.Expr, types.Type, error) {
	from, fromT, err := tr.expr(n.From, sc)
	if err != nil {
		return nil, nil, err
	}
	st, ok := fromT.(*types.Set)
	if !ok {
		return nil, nil, errAt(n.Pos(), "from-clause operand must be a set, got %s", fromT)
	}
	if _, shadow := sc.lookup(n.Var); shadow {
		// Shadowing is legal; the inner binding simply wins, as in the
		// paper's nested blocks that reuse variable names.
		_ = shadow
	}
	inner := sc.bind(n.Var, st.Elem)

	// with-bindings: scoped over the where- and select-clause, evaluated
	// with the iteration variable in scope (they are typically correlated:
	// Y′ = σ[y : Q(x, y)](Y) references x).
	wrap := func(body adl.Expr) adl.Expr { return body }
	wsc := inner
	for _, w := range n.Withs {
		val, vt, err := tr.expr(w.Val, wsc)
		if err != nil {
			return nil, nil, err
		}
		wsc = wsc.bind(w.Name, vt)
		name, v := w.Name, val
		prev := wrap
		wrap = func(body adl.Expr) adl.Expr { return prev(adl.LetE(name, v, body)) }
	}

	src := from
	if n.Where != nil {
		pred, pt, err := tr.expr(n.Where, wsc)
		if err != nil {
			return nil, nil, err
		}
		if !types.Equal(pt, types.BoolType) {
			return nil, nil, errAt(n.Where.Pos(), "where-clause must be boolean, got %s", pt)
		}
		src = adl.Sel(n.Var, wrap(pred), src)
	}

	sel, selT, err := tr.expr(n.Sel, wsc)
	if err != nil {
		return nil, nil, err
	}
	// Identity map elision: "select x from x in e" needs no α.
	if v, isVar := sel.(*adl.Var); isVar && v.Name == n.Var && len(n.Withs) == 0 {
		return src, types.NewSet(selT), nil
	}
	return adl.MapE(n.Var, wrap(sel), src), types.NewSet(selT), nil
}

func (tr *translator) quant(n *oosql.Quant, sc *scope) (adl.Expr, types.Type, error) {
	src, srcT, err := tr.expr(n.Src, sc)
	if err != nil {
		return nil, nil, err
	}
	st, ok := srcT.(*types.Set)
	if !ok {
		return nil, nil, errAt(n.Pos(), "quantifier range must be a set, got %s", srcT)
	}
	var pred adl.Expr = adl.CBool(true)
	if n.Pred != nil {
		p, pt, err := tr.expr(n.Pred, sc.bind(n.Var, st.Elem))
		if err != nil {
			return nil, nil, err
		}
		if !types.Equal(pt, types.BoolType) {
			return nil, nil, errAt(n.Pred.Pos(), "quantifier predicate must be boolean, got %s", pt)
		}
		pred = p
	}
	kind := adl.Exists
	if n.Kind == oosql.QForall {
		kind = adl.Forall
	}
	return &adl.Quant{Kind: kind, Var: n.Var, Src: src, Pred: pred}, types.BoolType, nil
}

func (tr *translator) call(n *oosql.Call, sc *scope) (adl.Expr, types.Type, error) {
	arg, argT, err := tr.expr(n.Args[0], sc)
	if err != nil {
		return nil, nil, err
	}
	st, ok := argT.(*types.Set)
	if !ok {
		return nil, nil, errAt(n.Pos(), "%s requires a set argument, got %s", n.Fn, argT)
	}
	switch n.Fn {
	case "count":
		return adl.AggE(adl.Count, arg), types.IntType, nil
	case "sum":
		if !types.Equal(st.Elem, types.IntType) && !types.Equal(st.Elem, types.FloatType) {
			return nil, nil, errAt(n.Pos(), "sum over non-numeric set %s", argT)
		}
		return adl.AggE(adl.Sum, arg), st.Elem, nil
	case "avg":
		if !types.Equal(st.Elem, types.IntType) && !types.Equal(st.Elem, types.FloatType) {
			return nil, nil, errAt(n.Pos(), "avg over non-numeric set %s", argT)
		}
		return adl.AggE(adl.Avg, arg), types.FloatType, nil
	case "min", "max":
		op := adl.Min
		if n.Fn == "max" {
			op = adl.Max
		}
		if !orderedType(st.Elem) {
			return nil, nil, errAt(n.Pos(), "%s over non-ordered set %s", n.Fn, argT)
		}
		return adl.AggE(op, arg), st.Elem, nil
	case "flatten":
		inner, ok := st.Elem.(*types.Set)
		if !ok {
			return nil, nil, errAt(n.Pos(), "flatten requires a set of sets, got %s", argT)
		}
		return adl.Flat(arg), inner, nil
	}
	return nil, nil, errAt(n.Pos(), "unknown function %q", n.Fn)
}

func orderedType(t types.Type) bool {
	switch t {
	case types.IntType, types.FloatType, types.StringType, types.DateType:
		return true
	}
	return false
}

func errAt(p oosql.Pos, format string, args ...any) error {
	return fmt.Errorf("translate: %s: %s", p, fmt.Sprintf(format, args...))
}
