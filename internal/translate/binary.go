package translate

import (
	"repro/internal/adl"
	"repro/internal/oosql"
	"repro/internal/types"
	"repro/internal/value"
)

// shape classifies how a checker type is represented at runtime, which
// drives the lowering of object identity comparisons:
//
//	shapeObj    — full object tuple (iteration over an extent)
//	shapeOID    — bare oid (a reference-valued attribute)
//	shapeRefTup — unary tuple holding an oid (element of a set-of-references
//	              attribute, the {(pid: oid)} mapping)
//	shapePlain  — anything else; ordinary value semantics
type shape uint8

const (
	shapePlain shape = iota
	shapeObj
	shapeOID
	shapeRefTup
)

// classify returns the shape of t and, for reference shapes, the class name.
func classify(t types.Type) (shape, string) {
	switch tt := t.(type) {
	case types.Object:
		return shapeObj, tt.Class
	case types.Ref:
		return shapeOID, tt.Class
	case *types.Tuple:
		if cls, _, ok := refTupleClass(tt); ok {
			return shapeRefTup, cls
		}
	}
	return shapePlain, ""
}

func (tr *translator) binary(n *oosql.Binary, sc *scope) (adl.Expr, types.Type, error) {
	switch n.Op {
	case oosql.OpAnd, oosql.OpOr:
		le, lt, err := tr.expr(n.L, sc)
		if err != nil {
			return nil, nil, err
		}
		re, rt, err := tr.expr(n.R, sc)
		if err != nil {
			return nil, nil, err
		}
		if !types.Equal(lt, types.BoolType) || !types.Equal(rt, types.BoolType) {
			return nil, nil, errAt(n.Pos(), "%s requires booleans, got %s and %s", n.Op, lt, rt)
		}
		if n.Op == oosql.OpAnd {
			return &adl.And{L: le, R: re}, types.BoolType, nil
		}
		return &adl.Or{L: le, R: re}, types.BoolType, nil

	case oosql.OpEq, oosql.OpNe:
		le, lt, err := tr.expr(n.L, sc)
		if err != nil {
			return nil, nil, err
		}
		re, rt, err := tr.expr(n.R, sc)
		if err != nil {
			return nil, nil, err
		}
		eq, err := tr.coerceEqual(n, le, lt, re, rt)
		if err != nil {
			return nil, nil, err
		}
		if n.Op == oosql.OpNe {
			return adl.NotE(eq), types.BoolType, nil
		}
		return eq, types.BoolType, nil

	case oosql.OpLt, oosql.OpLe, oosql.OpGt, oosql.OpGe:
		return tr.ordered(n, sc)

	case oosql.OpIn, oosql.OpNotIn:
		le, lt, err := tr.expr(n.L, sc)
		if err != nil {
			return nil, nil, err
		}
		re, rt, err := tr.expr(n.R, sc)
		if err != nil {
			return nil, nil, err
		}
		st, ok := rt.(*types.Set)
		if !ok {
			return nil, nil, errAt(n.Pos(), "in requires a set right operand, got %s", rt)
		}
		mem, err := tr.coerceMember(n, le, lt, re, st.Elem)
		if err != nil {
			return nil, nil, err
		}
		if n.Op == oosql.OpNotIn {
			return adl.NotE(mem), types.BoolType, nil
		}
		return mem, types.BoolType, nil

	case oosql.OpSubset, oosql.OpPSubset, oosql.OpSuperset, oosql.OpPSuperset, oosql.OpContains:
		return tr.setCompare(n, sc)

	case oosql.OpUnion, oosql.OpIntersect, oosql.OpMinus:
		le, lt, err := tr.expr(n.L, sc)
		if err != nil {
			return nil, nil, err
		}
		re, rt, err := tr.expr(n.R, sc)
		if err != nil {
			return nil, nil, err
		}
		u, ok := types.Unify(lt, rt)
		if !ok {
			return nil, nil, errAt(n.Pos(), "%s on incompatible sets %s and %s", n.Op, lt, rt)
		}
		if _, isSet := u.(*types.Set); !isSet {
			return nil, nil, errAt(n.Pos(), "%s requires sets, got %s", n.Op, u)
		}
		kind := map[oosql.BinOp]adl.SetOpKind{
			oosql.OpUnion: adl.Union, oosql.OpIntersect: adl.Intersect, oosql.OpMinus: adl.Diff,
		}[n.Op]
		return &adl.SetOp{Op: kind, L: le, R: re}, u, nil

	case oosql.OpAdd, oosql.OpSub, oosql.OpMul, oosql.OpDiv:
		le, lt, err := tr.expr(n.L, sc)
		if err != nil {
			return nil, nil, err
		}
		re, rt, err := tr.expr(n.R, sc)
		if err != nil {
			return nil, nil, err
		}
		if !types.Equal(lt, rt) || (!types.Equal(lt, types.IntType) && !types.Equal(lt, types.FloatType)) {
			return nil, nil, errAt(n.Pos(), "arithmetic on %s and %s", lt, rt)
		}
		op := map[oosql.BinOp]adl.ArithOp{
			oosql.OpAdd: adl.Add, oosql.OpSub: adl.Subtract, oosql.OpMul: adl.Mul, oosql.OpDiv: adl.Div,
		}[n.Op]
		return &adl.Arith{Op: op, L: le, R: re}, lt, nil
	}
	return nil, nil, errAt(n.Pos(), "unknown operator %s", n.Op)
}

func (tr *translator) ordered(n *oosql.Binary, sc *scope) (adl.Expr, types.Type, error) {
	le, lt, err := tr.expr(n.L, sc)
	if err != nil {
		return nil, nil, err
	}
	re, rt, err := tr.expr(n.R, sc)
	if err != nil {
		return nil, nil, err
	}
	le, lt, re, rt = coerceDate(le, lt, re, rt)
	if !types.Equal(lt, rt) || !orderedType(lt) {
		return nil, nil, errAt(n.Pos(), "ordered comparison %s on %s and %s", n.Op, lt, rt)
	}
	op := map[oosql.BinOp]adl.CmpOp{
		oosql.OpLt: adl.Lt, oosql.OpLe: adl.Le, oosql.OpGt: adl.Gt, oosql.OpGe: adl.Ge,
	}[n.Op]
	return adl.CmpE(op, le, re), types.BoolType, nil
}

// coerceDate turns an integer literal into a date when compared against a
// date-typed expression: the paper writes d.date = 940101.
func coerceDate(le adl.Expr, lt types.Type, re adl.Expr, rt types.Type) (adl.Expr, types.Type, adl.Expr, types.Type) {
	if types.Equal(lt, types.DateType) && types.Equal(rt, types.IntType) {
		if c, ok := re.(*adl.Const); ok {
			if i, isInt := c.Val.(value.Int); isInt {
				return le, lt, adl.C(value.Date(int32(i))), types.DateType
			}
		}
	}
	if types.Equal(rt, types.DateType) && types.Equal(lt, types.IntType) {
		if c, ok := le.(*adl.Const); ok {
			if i, isInt := c.Val.(value.Int); isInt {
				return adl.C(value.Date(int32(i))), types.DateType, re, rt
			}
		}
	}
	return le, lt, re, rt
}

// coerceEqual lowers equality between possibly reference-shaped operands to
// the oid representation. Mixed shapes compare identities:
//
//	Obj = Obj      ⇒  l.id = r.id
//	Obj = OID      ⇒  l.id = r
//	RefTup = Obj   ⇒  l = r[id]        (the paper's z = p[pid])
//	RefTup = OID   ⇒  l.id = r
//	same shapes    ⇒  l = r
func (tr *translator) coerceEqual(n *oosql.Binary, le adl.Expr, lt types.Type, re adl.Expr, rt types.Type) (adl.Expr, error) {
	ls, lc := classify(lt)
	rs, rc := classify(rt)
	if ls == shapePlain && rs == shapePlain {
		le, lt, re, rt = coerceDate(le, lt, re, rt)
		if _, ok := types.Unify(lt, rt); !ok {
			return nil, errAt(n.Pos(), "cannot compare %s with %s", lt, rt)
		}
		return adl.EqE(le, re), nil
	}
	if ls == shapePlain || rs == shapePlain || lc != rc {
		return nil, errAt(n.Pos(), "cannot compare %s with %s", lt, rt)
	}
	id := tr.idField(lc)
	switch {
	case ls == rs:
		return adl.EqE(le, re), nil
	case ls == shapeObj && rs == shapeOID:
		return adl.EqE(adl.Dot(le, id), re), nil
	case ls == shapeOID && rs == shapeObj:
		return adl.EqE(le, adl.Dot(re, id)), nil
	case ls == shapeRefTup && rs == shapeObj:
		return adl.EqE(le, adl.SubT(re, id)), nil
	case ls == shapeObj && rs == shapeRefTup:
		return adl.EqE(adl.SubT(le, id), re), nil
	case ls == shapeRefTup && rs == shapeOID:
		return adl.EqE(adl.Dot(le, id), re), nil
	case ls == shapeOID && rs == shapeRefTup:
		return adl.EqE(le, adl.Dot(re, id)), nil
	}
	return nil, errAt(n.Pos(), "cannot compare %s with %s", lt, rt)
}

// coerceMember lowers "l in S". When l's shape matches S's element shape the
// membership test stays a single ∈; otherwise it becomes an existential
// quantification with a coerced identity equality, which the rewriter can
// unnest further (Rule 1).
func (tr *translator) coerceMember(n *oosql.Binary, le adl.Expr, lt types.Type, se adl.Expr, elemT types.Type) (adl.Expr, error) {
	ls, lc := classify(lt)
	es, ec := classify(elemT)
	if ls == es && lc == ec {
		if ls == shapePlain {
			if _, ok := types.Unify(lt, elemT); !ok {
				return nil, errAt(n.Pos(), "cannot test membership of %s in set of %s", lt, elemT)
			}
		}
		return adl.CmpE(adl.In, le, se), nil
	}
	if ls == shapePlain || es == shapePlain || lc != ec {
		return nil, errAt(n.Pos(), "cannot test membership of %s in set of %s", lt, elemT)
	}
	id := tr.idField(lc)
	// Two direct lowerings keep the single ∈ (the paper's p[pid] ∈ s.parts):
	switch {
	case ls == shapeObj && es == shapeRefTup:
		return adl.CmpE(adl.In, adl.SubT(le, id), se), nil
	case ls == shapeOID && es == shapeRefTup:
		return adl.CmpE(adl.In, adl.Tup(id, le), se), nil
	}
	// General lowering: ∃v ∈ S • id(l) = id(v).
	v := tr.freshVar("m")
	eq, err := tr.coerceEqual(n, le, lt, adl.V(v), elemT)
	if err != nil {
		return nil, err
	}
	return adl.Ex(v, se, eq), nil
}

// setCompare lowers the set comparison operators. When both element shapes
// agree the ADL set comparator applies directly; mixed reference shapes are
// expanded into the quantifier forms of the paper's Table 1 with coerced
// element equalities.
func (tr *translator) setCompare(n *oosql.Binary, sc *scope) (adl.Expr, types.Type, error) {
	le, lt, err := tr.expr(n.L, sc)
	if err != nil {
		return nil, nil, err
	}
	re, rt, err := tr.expr(n.R, sc)
	if err != nil {
		return nil, nil, err
	}
	lset, lok := lt.(*types.Set)
	rset, rok := rt.(*types.Set)
	if !lok || !rok {
		return nil, nil, errAt(n.Pos(), "%s requires set operands, got %s and %s", n.Op, lt, rt)
	}

	if n.Op == oosql.OpContains {
		// l ∋ r: r must be an element of the set-of-sets l.
		inner, ok := lset.Elem.(*types.Set)
		if !ok {
			return nil, nil, errAt(n.Pos(), "contains requires a set of sets on the left, got %s", lt)
		}
		if _, ok := types.Unify(types.Type(inner), types.Type(rset)); !ok {
			return nil, nil, errAt(n.Pos(), "contains element type mismatch: %s vs %s", inner, rt)
		}
		return adl.CmpE(adl.Has, le, re), types.BoolType, nil
	}

	ls, lc := classify(lset.Elem)
	rs, rc := classify(rset.Elem)
	if ls == rs && lc == rc {
		if ls == shapePlain {
			if _, ok := types.Unify(lset.Elem, rset.Elem); !ok {
				return nil, nil, errAt(n.Pos(), "%s on incompatible sets %s and %s", n.Op, lt, rt)
			}
		}
		op := map[oosql.BinOp]adl.CmpOp{
			oosql.OpSubset: adl.SubEq, oosql.OpPSubset: adl.Sub,
			oosql.OpSuperset: adl.SupEq, oosql.OpPSuperset: adl.Sup,
		}[n.Op]
		return adl.CmpE(op, le, re), types.BoolType, nil
	}
	if ls == shapePlain || rs == shapePlain || lc != rc {
		return nil, nil, errAt(n.Pos(), "%s on incompatible sets %s and %s", n.Op, lt, rt)
	}

	// Mixed reference shapes: expand per Table 1.
	// l ⊆ r ⇔ ∀x ∈ l • ∃y ∈ r • x = y.
	subEq := func(a adl.Expr, at types.Type, b adl.Expr, bt types.Type) (adl.Expr, error) {
		x := tr.freshVar("u")
		y := tr.freshVar("w")
		eq, err := tr.coerceEqual(n, adl.V(x), at, adl.V(y), bt)
		if err != nil {
			return nil, err
		}
		return adl.All(x, a, adl.Ex(y, b, eq)), nil
	}
	switch n.Op {
	case oosql.OpSubset:
		e, err := subEq(le, lset.Elem, re, rset.Elem)
		if err != nil {
			return nil, nil, err
		}
		return e, types.BoolType, nil
	case oosql.OpSuperset:
		e, err := subEq(re, rset.Elem, le, lset.Elem)
		if err != nil {
			return nil, nil, err
		}
		return e, types.BoolType, nil
	case oosql.OpPSubset:
		sub, err := subEq(le, lset.Elem, re, rset.Elem)
		if err != nil {
			return nil, nil, err
		}
		sup, err := subEq(re, rset.Elem, le, lset.Elem)
		if err != nil {
			return nil, nil, err
		}
		return adl.AndE(sub, adl.NotE(sup)), types.BoolType, nil
	case oosql.OpPSuperset:
		sup, err := subEq(re, rset.Elem, le, lset.Elem)
		if err != nil {
			return nil, nil, err
		}
		sub, err := subEq(le, lset.Elem, re, rset.Elem)
		if err != nil {
			return nil, nil, err
		}
		return adl.AndE(sup, adl.NotE(sub)), types.BoolType, nil
	}
	return nil, nil, errAt(n.Pos(), "unknown set comparison %s", n.Op)
}

// idField returns the identity field name of a class.
func (tr *translator) idField(class string) string {
	if cl, ok := tr.cat.Class(class); ok {
		return cl.IDField
	}
	return "oid"
}
