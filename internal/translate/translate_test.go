package translate

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/eval"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// testDB builds a small supplier-part database:
//
//	PART:     p1 bolt/10/red, p2 nut/5/blue, p3 gear/20/red
//	SUPPLIER: s1 → {p1, p2}, s2 → {p2}, s3 → {}, s4 → {p1, p2, p3}
//	DELIVERY: d1 by s1 on 940101 of (p1 × 5); d2 by s2 on 940102 of (p2 × 3)
func testDB(t *testing.T) (*storage.Store, map[string]value.OID) {
	t.Helper()
	st := storage.New(schema.SupplierPart())
	oids := map[string]value.OID{}
	ins := func(key, extent string, tup *value.Tuple) {
		oid, err := st.Insert(extent, tup)
		if err != nil {
			t.Fatalf("insert %s: %v", key, err)
		}
		oids[key] = oid
	}
	part := func(key, name string, price int64, color string) {
		ins(key, "PART", value.NewTuple(
			"pname", value.String(name), "price", value.Int(price), "color", value.String(color)))
	}
	part("p1", "bolt", 10, "red")
	part("p2", "nut", 5, "blue")
	part("p3", "gear", 20, "red")

	refs := func(keys ...string) *value.Set {
		s := value.EmptySet()
		for _, k := range keys {
			s.Add(value.NewTuple("pid", oids[k]))
		}
		return s
	}
	sup := func(key, name string, parts *value.Set) {
		ins(key, "SUPPLIER", value.NewTuple("sname", value.String(name), "parts", parts))
	}
	sup("s1", "s1", refs("p1", "p2"))
	sup("s2", "s2", refs("p2"))
	sup("s3", "s3", refs())
	sup("s4", "s4", refs("p1", "p2", "p3"))

	del := func(key string, supplier string, date int32, partKey string, qty int64) {
		ins(key, "DELIVERY", value.NewTuple(
			"supplier", oids[supplier],
			"supply", value.NewSet(value.NewTuple("part", oids[partKey], "quantity", value.Int(qty))),
			"date", value.Date(date)))
	}
	del("d1", "s1", 940101, "p1", 5)
	del("d2", "s2", 940102, "p2", 3)
	return st, oids
}

func xlate(t *testing.T, src string) (adl.Expr, *storage.Store, map[string]value.OID) {
	t.Helper()
	st, oids := testDB(t)
	e, _, err := Parse(src, st.Catalog())
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e, st, oids
}

func run(t *testing.T, src string) (*value.Set, map[string]value.OID) {
	t.Helper()
	e, st, oids := xlate(t, src)
	got, err := eval.EvalSet(e, nil, st)
	if err != nil {
		t.Fatalf("eval(%s): %v", e, err)
	}
	return got, oids
}

func xlateErr(t *testing.T, src string) error {
	t.Helper()
	st, _ := testDB(t)
	_, _, err := Parse(src, st.Catalog())
	if err == nil {
		t.Fatalf("Parse(%q): expected error", src)
	}
	return err
}

// TestEQ5TranslationMatchesPaper checks that Example Query 5 translates to
// the exact ADL form printed in the paper's §4:
// σ[s : ∃x ∈ s.parts • ∃p ∈ PART • x = p[pid] ∧ p.color = "red"](SUPPLIER).
func TestEQ5TranslationMatchesPaper(t *testing.T) {
	e, _, _ := xlate(t, `
		select s from s in SUPPLIER
		where exists x in s.parts_supplied :
		      exists p in PART : x = p and p.color = "red"`)
	want := `σ[s : (∃x ∈ s.parts • (∃p ∈ PART • (x = p[pid] ∧ p.color = "red")))](SUPPLIER)`
	if got := e.String(); got != want {
		t.Errorf("EQ5 translation:\n got %s\nwant %s", got, want)
	}
}

// TestEQ4TranslationMatchesPaper checks Example Query 4 (§4):
// α[s : s.eid](σ[s : ∃z ∈ s.parts • ¬∃p ∈ PART • z = p[pid]](SUPPLIER)).
func TestEQ4TranslationMatchesPaper(t *testing.T) {
	e, _, _ := xlate(t, `
		select s.eid from s in SUPPLIER
		where exists z in s.parts_supplied : not exists p in PART : z = p`)
	want := `α[s : s.eid](σ[s : (∃z ∈ s.parts • ¬((∃p ∈ PART • z = p[pid])))](SUPPLIER))`
	if got := e.String(); got != want {
		t.Errorf("EQ4 translation:\n got %s\nwant %s", got, want)
	}
}

// TestEQ6TranslationMatchesPaper checks the p[pid] ∈ s.parts lowering of §4:
// α[s : (sname = s.sname, parts_suppl = σ[p : p[pid] ∈ s.parts](PART))](SUPPLIER).
func TestEQ6TranslationMatchesPaper(t *testing.T) {
	e, _, _ := xlate(t, `
		select (sname = s.sname,
		        parts_suppl = select p from p in PART where p in s.parts_supplied)
		from s in SUPPLIER`)
	want := `α[s : (sname = s.sname, parts_suppl = σ[p : p[pid] ∈ s.parts](PART))](SUPPLIER)`
	if got := e.String(); got != want {
		t.Errorf("EQ6 translation:\n got %s\nwant %s", got, want)
	}
}

func TestEQ1RunsAndNavigatesRefs(t *testing.T) {
	got, _ := run(t, `
		select (sname = s.sname,
		        pnames = select p.pname from p in s.parts_supplied where p.color = "red")
		from s in SUPPLIER`)
	if got.Len() != 4 {
		t.Fatalf("EQ1 result size = %d", got.Len())
	}
	byName := map[string]*value.Set{}
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		byName[string(tup.MustGet("sname").(value.String))] = tup.MustGet("pnames").(*value.Set)
	}
	if !value.Equal(byName["s1"], value.NewSet(value.String("bolt"))) {
		t.Errorf("s1 red parts = %v", byName["s1"])
	}
	if byName["s2"].Len() != 0 {
		t.Errorf("s2 red parts = %v", byName["s2"])
	}
	if !value.Equal(byName["s4"], value.NewSet(value.String("bolt"), value.String("gear"))) {
		t.Errorf("s4 red parts = %v", byName["s4"])
	}
}

func TestEQ2FromClauseNesting(t *testing.T) {
	got, oids := run(t, `
		select d
		from d in (select e from e in DELIVERY where e.supplier.sname = "s1")
		where d.date = 940101`)
	if got.Len() != 1 {
		t.Fatalf("EQ2 = %v", got)
	}
	d := got.Elems()[0].(*value.Tuple)
	if !value.Equal(d.MustGet("did"), oids["d1"]) {
		t.Errorf("EQ2 selected %v", d)
	}
}

func TestEQ3aSetComparison(t *testing.T) {
	// Suppliers whose parts ⊇ the parts supplied by s1 (= {p1, p2}).
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where s.parts_supplied superset
		      flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "s1")`)
	want := value.NewSet(value.String("s1"), value.String("s4"))
	if !value.Equal(got, want) {
		t.Errorf("EQ3a = %v, want %v", got, want)
	}
}

func TestEQ3bQuantifierOverSubquery(t *testing.T) {
	got, oids := run(t, `
		select d from d in DELIVERY
		where exists x in (select s from s in d.supply where s.part.color = "red")`)
	if got.Len() != 1 {
		t.Fatalf("EQ3b = %v", got)
	}
	if !value.Equal(got.Elems()[0].(*value.Tuple).MustGet("did"), oids["d1"]) {
		t.Errorf("EQ3b selected wrong delivery")
	}
}

func TestEQ4FindsDanglingReference(t *testing.T) {
	// Inject a referential-integrity violation: a supplier holding a
	// reference to a part that does not exist. EQ4 compares identities
	// without navigating, so the dangling oid is detected, not followed.
	st, oids := testDB(t)
	bad := value.NewSet(value.NewTuple("pid", value.OID(9999)))
	badOID, err := st.Insert("SUPPLIER", value.NewTuple("sname", value.String("s5"), "parts", bad))
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := Parse(`
		select s.eid from s in SUPPLIER
		where exists z in s.parts_supplied : not exists p in PART : z = p`, st.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.EvalSet(e, nil, st)
	if err != nil {
		t.Fatal(err)
	}
	want := value.NewSet(badOID)
	if !value.Equal(got, want) {
		t.Errorf("EQ4 = %v, want %v (s5 has the dangling ref)", got, want)
	}
	_ = oids
}

func TestEQ5SelectsRedPartSuppliers(t *testing.T) {
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where exists x in s.parts_supplied :
		      exists p in PART : x = p and p.color = "red"`)
	want := value.NewSet(value.String("s1"), value.String("s4"))
	if !value.Equal(got, want) {
		t.Errorf("EQ5 = %v, want %v", got, want)
	}
}

func TestEQ6BuildsNestedResult(t *testing.T) {
	got, oids := run(t, `
		select (sname = s.sname,
		        parts_suppl = select p from p in PART where p in s.parts_supplied)
		from s in SUPPLIER`)
	for _, el := range got.Elems() {
		tup := el.(*value.Tuple)
		name := string(tup.MustGet("sname").(value.String))
		parts := tup.MustGet("parts_suppl").(*value.Set)
		switch name {
		case "s1":
			if parts.Len() != 2 {
				t.Errorf("s1 parts = %v", parts)
			}
		case "s3":
			if parts.Len() != 0 {
				t.Errorf("s3 parts = %v (dangling ref must not match)", parts)
			}
		case "s4":
			if parts.Len() != 3 {
				t.Errorf("s4 parts = %v", parts)
			}
		}
		// The nested objects are full Part tuples.
		for _, p := range parts.Elems() {
			if !p.(*value.Tuple).Has("color") {
				t.Errorf("nested part lacks attributes: %v", p)
			}
		}
	}
	_ = oids
}

func TestWithBindingCorrelated(t *testing.T) {
	// The general format of §5.1: a correlated with-binding.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where count(Y') = 2
		with Y' = select p from p in PART where p in s.parts_supplied`)
	if !value.Equal(got, value.NewSet(value.String("s1"))) {
		t.Errorf("with query = %v", got)
	}
}

func TestDateCoercion(t *testing.T) {
	got, oids := run(t, `select d from d in DELIVERY where d.date = 940101`)
	if got.Len() != 1 || !value.Equal(got.Elems()[0].(*value.Tuple).MustGet("did"), oids["d1"]) {
		t.Errorf("date query = %v", got)
	}
	got2, _ := run(t, `select d from d in DELIVERY where d.date >= 940102`)
	if got2.Len() != 1 {
		t.Errorf("date range query = %v", got2)
	}
}

func TestIdentityComparisonShapes(t *testing.T) {
	// OID vs Object: d.supplier = s.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where exists d in DELIVERY : d.supplier = s`)
	if !value.Equal(got, value.NewSet(value.String("s1"), value.String("s2"))) {
		t.Errorf("oid=obj = %v", got)
	}
	// Object vs Object: p = q.
	got2, _ := run(t, `
		select p.pname from p in PART
		where exists q in PART : p = q and q.color = "red"`)
	if !value.Equal(got2, value.NewSet(value.String("bolt"), value.String("gear"))) {
		t.Errorf("obj=obj = %v", got2)
	}
	// OID vs RefTup: d.supply's part refs against s.parts_supplied elements.
	// s1 supplies {p1, p2}; d1 delivers p1 and d2 delivers p2, so both match.
	got3, _ := run(t, `
		select d from d in DELIVERY
		where exists sp in d.supply :
		      exists z in (select s from s in SUPPLIER where s.sname = "s1") :
		      exists w in z.parts_supplied : sp.part = w`)
	if got3.Len() != 2 {
		t.Errorf("oid=reftup = %v", got3)
	}
}

func TestMembershipShapeLowering(t *testing.T) {
	// Obj in {Obj} set from a subquery: plain ∈.
	got, _ := run(t, `
		select p.pname from p in PART
		where p in (select q from q in PART where q.color = "red")`)
	if !value.Equal(got, value.NewSet(value.String("bolt"), value.String("gear"))) {
		t.Errorf("obj in {obj} = %v", got)
	}
	// OID in {RefTup}: d.supplier's ... build via supply.part in parts_supplied.
	got2, _ := run(t, `
		select d from d in DELIVERY
		where exists sp in d.supply :
		      exists s in SUPPLIER : sp.part in s.parts_supplied`)
	if got2.Len() != 2 {
		t.Errorf("oid in {reftup} = %v", got2)
	}
}

func TestSubsetMixedShapesExpandsToQuantifiers(t *testing.T) {
	// {RefTup} subset {Obj}: must expand into ∀/∃ with coerced equality.
	e, st, _ := xlate(t, `
		select s from s in SUPPLIER
		where s.parts_supplied subset (select p from p in PART where p.color = "red")`)
	if !strings.Contains(e.String(), "∀") || !strings.Contains(e.String(), "∃") {
		t.Errorf("mixed-shape subset did not expand: %s", e)
	}
	got, err := eval.EvalSet(e, nil, st)
	if err != nil {
		t.Fatal(err)
	}
	// Only s3 qualifies: its parts set is empty (∀ over ∅), while s1, s2 and
	// s4 all supply the blue p2.
	names := value.NewSet()
	for _, el := range got.Elems() {
		names.Add(el.(*value.Tuple).MustGet("sname"))
	}
	if !value.Equal(names, value.NewSet(value.String("s3"))) {
		t.Errorf("red-only suppliers = %v, want {s3}", names)
	}
}

func TestSetOpsAndAggregates(t *testing.T) {
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where count(s.parts_supplied) >= 2`)
	if !value.Equal(got, value.NewSet(value.String("s1"), value.String("s4"))) {
		t.Errorf("count query = %v", got)
	}
	got2, _ := run(t, `
		select p.pname from p in PART
		where p.price = max(select q.price from q in PART where true)`)
	if !value.Equal(got2, value.NewSet(value.String("gear"))) {
		t.Errorf("max query = %v", got2)
	}
	got3, _ := run(t, `
		select x from x in ({1, 2} union {2, 3}) where x > 1`)
	if !value.Equal(got3, value.NewSet(value.Int(2), value.Int(3))) {
		t.Errorf("union query = %v", got3)
	}
}

func TestArithmeticAndUnaryMinus(t *testing.T) {
	got, _ := run(t, `select p.pname from p in PART where p.price * 2 > 15 + 5`)
	if !value.Equal(got, value.NewSet(value.String("gear"))) {
		t.Errorf("arith query = %v", got)
	}
	got2, _ := run(t, `select x from x in {1, 2, 3} where x > -1 + 2`)
	if !value.Equal(got2, value.NewSet(value.Int(2), value.Int(3))) {
		t.Errorf("unary minus = %v", got2)
	}
}

func TestTranslateErrors(t *testing.T) {
	cases := map[string]string{
		"unknown table":        `select x from x in NOPE`,
		"unknown attribute":    `select s.nope from s in SUPPLIER`,
		"non-bool where":       `select s from s in SUPPLIER where 1`,
		"non-set from":         `select x from x in 1`,
		"bad membership":       `select s from s in SUPPLIER where 1 in 2`,
		"heterogeneous set":    `select x from x in {1, "a"}`,
		"cmp class mismatch":   `select s from s in SUPPLIER where exists p in PART : s = p`,
		"ordered cmp on sets":  `select s from s in SUPPLIER where s.parts_supplied < s.parts_supplied`,
		"sum of strings":       `select s from s in SUPPLIER where sum(select t.sname from t in SUPPLIER where true) = 1`,
		"flatten of flat":      `select x from x in flatten(PART)`,
		"arith type mismatch":  `select p from p in PART where p.price + "x" = 1`,
		"subset incompatible":  `select s from s in SUPPLIER where s.parts_supplied subset {1}`,
		"dup tuple attr":       `select (a = 1, a = 2) from s in SUPPLIER`,
		"not of non-boolean":   `select s from s in SUPPLIER where not 1`,
		"contains of flat set": `select s from s in SUPPLIER where {1} contains {1}`,
	}
	for name, src := range cases {
		if err := xlateErr(t, src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestPaperEQ3VerbatimIsIllTyped documents the paper's informality: EQ3's
// first query compares a set of parts with a set of sets of parts; the
// checker rejects it with a set-comparison type error (we reproduce the
// query with an explicit flatten, see TestEQ3aSetComparison).
func TestPaperEQ3VerbatimIsIllTyped(t *testing.T) {
	err := xlateErr(t, `
		select s.sname from s in SUPPLIER
		where s.parts_supplied superset
		      (select t.parts_supplied from t in SUPPLIER where t.sname = "s1")`)
	if !strings.Contains(err.Error(), "superset") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestIdentityMapElision(t *testing.T) {
	e, _, _ := xlate(t, `select s from s in SUPPLIER where s.sname = "s1"`)
	if _, isMap := e.(*adl.Map); isMap {
		t.Errorf("identity select must not produce α: %s", e)
	}
	if _, isSel := e.(*adl.Select); !isSel {
		t.Errorf("expected bare σ: %s", e)
	}
	// No where-clause and identity select: bare table.
	e2, _, _ := xlate(t, `select s from s in SUPPLIER`)
	if _, isTab := e2.(*adl.Table); !isTab {
		t.Errorf("trivial sfw must reduce to the table: %s", e2)
	}
}
