package translate

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/value"
)

// Positive-path coverage for the remaining OOSQL operators: the full set
// comparison family, not-in, set operations, forall, and nested aggregates.

func TestPSubsetPSupersetSurface(t *testing.T) {
	// psubset: suppliers whose parts are a PROPER subset of s4's parts
	// ({p1, p2, p3}); s1 ({p1,p2}), s2 ({p2}) and s3 (∅) qualify, s4 not.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where s.parts_supplied psubset
		      flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "s4")`)
	want := value.NewSet(value.String("s1"), value.String("s2"), value.String("s3"))
	if !value.Equal(got, want) {
		t.Errorf("psubset = %v, want %v", got, want)
	}
	// psuperset: who properly contains s2's parts ({p2})?
	got2, _ := run(t, `
		select s.sname from s in SUPPLIER
		where s.parts_supplied psuperset
		      flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "s2")`)
	want2 := value.NewSet(value.String("s1"), value.String("s4"))
	if !value.Equal(got2, want2) {
		t.Errorf("psuperset = %v, want %v", got2, want2)
	}
}

func TestContainsSurface(t *testing.T) {
	// The set of all parts_supplied sets contains s2's exact parts set.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where (select t.parts_supplied from t in SUPPLIER where true)
		      contains s.parts_supplied`)
	// Every supplier's own set is trivially a member.
	if got.Len() != 4 {
		t.Errorf("contains = %v", got)
	}
}

func TestNotInSurface(t *testing.T) {
	got, _ := run(t, `
		select p.pname from p in PART
		where p not in (select q from q in PART where q.color = "red")`)
	if !value.Equal(got, value.NewSet(value.String("nut"))) {
		t.Errorf("not in = %v", got)
	}
}

func TestSetOperationsSurface(t *testing.T) {
	got, _ := run(t, `
		select x from x in ({1, 2, 3} intersect {2, 3, 4}) where true`)
	if !value.Equal(got, value.NewSet(value.Int(2), value.Int(3))) {
		t.Errorf("intersect = %v", got)
	}
	got2, _ := run(t, `
		select x from x in ({1, 2, 3} minus {2}) where x > 0`)
	if !value.Equal(got2, value.NewSet(value.Int(1), value.Int(3))) {
		t.Errorf("minus = %v", got2)
	}
}

func TestForallSurface(t *testing.T) {
	// Suppliers all of whose parts are red: s3 (vacuously). The quantified
	// variable navigates the reference implicitly.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where forall x in s.parts_supplied : x.color = "red"`)
	if !value.Equal(got, value.NewSet(value.String("s3"))) {
		t.Errorf("forall = %v", got)
	}
}

func TestAggregatesOverPaths(t *testing.T) {
	got, _ := run(t, `
		select (n = s.sname, total = sum(select p.price from p in s.parts_supplied where true))
		from s in SUPPLIER where s.sname = "s1"`)
	tup := got.Elems()[0].(*value.Tuple)
	// s1 supplies bolt (10) and nut (5).
	if !value.Equal(tup.MustGet("total"), value.Int(15)) {
		t.Errorf("sum over path = %v", tup)
	}
	got2, _ := run(t, `
		select a from a in {avg(select p.price from p in PART where p.color = "red")}
		where true`)
	// bolt 10, gear 20 → avg 15.0.
	if !value.Equal(got2, value.NewSet(value.Float(15))) {
		t.Errorf("avg = %v", got2)
	}
	got3, _ := run(t, `
		select p.pname from p in PART
		where p.price = min(select q.price from q in PART where true)`)
	if !value.Equal(got3, value.NewSet(value.String("nut"))) {
		t.Errorf("min = %v", got3)
	}
}

func TestVariableShadowing(t *testing.T) {
	// The inner block reuses the outer variable name; the inner binding wins.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where exists s in PART : s.color = "zzz"`)
	if got.Len() != 0 {
		t.Errorf("shadowed query = %v", got)
	}
}

func TestDeeplyNestedBlocks(t *testing.T) {
	// Three levels: suppliers with a part that some delivery delivered.
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where exists x in s.parts_supplied :
		      exists d in DELIVERY :
		      exists sp in d.supply : sp.part = x`)
	// d1 delivers p1 (s1, s4 supply p1); d2 delivers p2 (s1, s2, s4).
	want := value.NewSet(value.String("s1"), value.String("s2"), value.String("s4"))
	if !value.Equal(got, want) {
		t.Errorf("three-level nesting = %v, want %v", got, want)
	}
}

func TestEmptySetLiteralInQuery(t *testing.T) {
	got, _ := run(t, `select s.sname from s in SUPPLIER where s.parts_supplied = {}`)
	if !value.Equal(got, value.NewSet(value.String("s3"))) {
		t.Errorf("= {} query = %v", got)
	}
}

func TestBoolLiteralsAndNot(t *testing.T) {
	got, _ := run(t, `select s.sname from s in SUPPLIER where not false and true`)
	if got.Len() != 4 {
		t.Errorf("boolean query = %v", got)
	}
}

var _ = eval.Eval // keep the import used if helpers change

func TestChainedWithBindings(t *testing.T) {
	// Later with-bindings may reference earlier ones. The binding values are
	// parenthesized: an unparenthesized sfw would greedily attach the next
	// "with" to itself (see the grammar note in package oosql).
	got, _ := run(t, `
		select s.sname from s in SUPPLIER
		where count(B) >= 1
		with A = (select p from p in PART where p in s.parts_supplied)
		with B = (select q from q in A where q.color = "red")`)
	// Suppliers with at least one red part: s1 (bolt), s4 (bolt, gear).
	want := value.NewSet(value.String("s1"), value.String("s4"))
	if !value.Equal(got, want) {
		t.Errorf("chained withs = %v, want %v", got, want)
	}
}

func TestFromClauseOverSetLiteral(t *testing.T) {
	got, _ := run(t, `select x + 1 from x in {1, 2, 3} where x < 3`)
	if !value.Equal(got, value.NewSet(value.Int(2), value.Int(3))) {
		t.Errorf("set-literal from = %v", got)
	}
}
