// Secondary indexes. The paper's optimizer "may choose from a number of
// different join processing strategies" (§5.1); Selinger-style access-path
// selection widens that choice below the join operators: with a secondary
// index on an extent attribute, a selective predicate or join key no longer
// forces a full extent scan. Two kinds are supported: a hash index answers
// equality probes, an ordered index additionally answers range probes.
// Indexes are built eagerly by CreateIndex and maintained incrementally:
// Insert and Update absorb the new row state under the index write lock
// instead of marking the index stale, so a long-lived server never pays a
// rebuild on the read path. One shared index answers for every version at
// once: entries accumulate the states of rows (deleted entries are pruned
// only by GC), and probes resolve each candidate through its version chain
// at the probing snapshot's seq and re-verify the key, so a pinned reader
// never observes a row a concurrent writer added, removed, or rewrote.
// Probes are safe for concurrent use, including concurrently with writes.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// IndexKind enumerates the secondary index implementations.
type IndexKind int

const (
	// HashIndex buckets oids by key hash; it answers equality probes only.
	HashIndex IndexKind = iota + 1
	// OrderedIndex keeps (key, oids) entries sorted by value.Compare; it
	// answers both equality and range probes.
	OrderedIndex
)

// String names the kind the way Analyze reports it.
func (k IndexKind) String() string {
	switch k {
	case HashIndex:
		return "hash"
	case OrderedIndex:
		return "ordered"
	}
	return "unknown"
}

// indexEntry groups the oids of all objects sharing one key value.
type indexEntry struct {
	key  value.Value
	oids []value.OID
}

// extIndex is one secondary index over extent.attr. Exactly one of buckets
// (hash) or entries (ordered) is populated. buildErr records a failed build
// or absorption — an object lacking the indexed attribute — and poisons
// every probe until CreateIndex replaces the index, so an index access path
// fails exactly where the equivalent scan + field read would.
type extIndex struct {
	extent, attr string
	kind         IndexKind
	buildErr     error

	buckets map[uint64][]*indexEntry // hash kind: key hash → entries
	entries []*indexEntry            // ordered kind: sorted by key
}

// CreateIndex builds a secondary index on an extent attribute, replacing any
// existing index on the same attribute. Every object of the extent must
// carry the attribute: silently skipping incomplete rows would let an index
// plan succeed where the scan-based plan's field read errors, and the two
// must stay interchangeable. CreateIndex serializes with Insert (writer
// lock) so the eager build misses no row.
func (s *Store) CreateIndex(extent, attr string, kind IndexKind) error {
	if _, ok := s.cat.ByExtent(extent); !ok {
		return fmt.Errorf("storage: unknown extent %q", extent)
	}
	if kind != HashIndex && kind != OrderedIndex {
		return fmt.Errorf("storage: unknown index kind %d", kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := &extIndex{extent: extent, attr: attr, kind: kind}
	s.build(idx)
	if idx.buildErr != nil {
		return idx.buildErr
	}
	s.idxMu.Lock()
	if s.indexes == nil {
		s.indexes = map[string]map[string]*extIndex{}
	}
	if s.indexes[extent] == nil {
		s.indexes[extent] = map[string]*extIndex{}
	}
	s.indexes[extent][attr] = idx
	s.idxMu.Unlock()
	// Collected statistics record index kinds, so a memoized Analyze result
	// is stale the moment an index appears; a new access path can change the
	// optimal plan, so the stats epoch advances and cached plans re-plan.
	s.statsMu.Lock()
	s.statsDirty = true
	s.statsMu.Unlock()
	s.statsEpoch.Add(1)
	return nil
}

// EnsureIndexes creates hash indexes on the given extent attributes, keeping
// any index (of either kind) that already exists.
func (s *Store) EnsureIndexes(extent string, attrs ...string) error {
	for _, attr := range attrs {
		s.idxMu.RLock()
		_, exists := s.indexes[extent][attr]
		s.idxMu.RUnlock()
		if exists {
			continue
		}
		if err := s.CreateIndex(extent, attr, HashIndex); err != nil {
			return err
		}
	}
	return nil
}

// IndexedAttrs reports the indexed attributes of an extent and their kinds.
func (s *Store) IndexedAttrs(extent string) map[string]IndexKind {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	if len(s.indexes[extent]) == 0 {
		return nil
	}
	out := make(map[string]IndexKind, len(s.indexes[extent]))
	for attr, idx := range s.indexes[extent] {
		out[attr] = idx.kind
	}
	return out
}

// build populates a fresh index from the extent's version chains: every
// reachable state of every object — current, superseded by an update, or
// deleted — is indexed under its key, so a snapshot pinned before the build
// probes the states it can see (probes resolve candidates through the chain
// at their own seq and re-verify the key). One shared grouping pass buckets
// oids by key, then the ordered kind sorts the entries and drops the
// buckets. The index is not yet shared, so no lock is needed; the caller
// holds the writer lock so no chain grows during the scan.
func (s *Store) build(idx *extIndex) {
	type state struct {
		oid value.OID
		obj *value.Tuple
	}
	var states []state
	s.objects.Range(func(k, v any) bool {
		start := len(states)
		for n := v.(*objVersion); n != nil; n = n.prev {
			if n.extent == idx.extent && n.obj != nil {
				states = append(states, state{oid: k.(value.OID), obj: n.obj})
			}
		}
		// The chain walk yields newest-first; flip this oid's run so entry
		// oid lists end up oldest-first.
		for i, j := start, len(states)-1; i < j; i, j = i+1, j-1 {
			states[i], states[j] = states[j], states[i]
		}
		return true
	})
	// Oldest state first per oid, oids ascending: keeps entry oid lists in
	// insertion order like the incremental absorb path does.
	sort.SliceStable(states, func(i, j int) bool { return states[i].oid < states[j].oid })
	buckets := map[uint64][]*indexEntry{}
	var entries []*indexEntry
	for _, st := range states {
		v, ok := st.obj.Get(idx.attr)
		if !ok {
			idx.buildErr = fmt.Errorf("storage: cannot index %s.%s: object %v lacks the attribute",
				idx.extent, idx.attr, st.oid)
			return
		}
		h := value.Hash(v)
		var e *indexEntry
		for _, cand := range buckets[h] {
			if value.Equal(cand.key, v) {
				e = cand
				break
			}
		}
		if e == nil {
			e = &indexEntry{key: v}
			buckets[h] = append(buckets[h], e)
			entries = append(entries, e)
		}
		e.oids = append(e.oids, st.oid)
	}
	if idx.kind == OrderedIndex {
		sort.Slice(entries, func(i, j int) bool {
			return value.Compare(entries[i].key, entries[j].key) < 0
		})
		idx.entries = entries
	} else {
		idx.buckets = buckets
	}
}

// absorbIndexes folds one new object state into every index of its extent —
// the incremental replacement for invalidate-and-rebuild, called by Insert
// and Update. The caller holds the writer lock and has not yet published
// the new version: probes re-verify candidates through the version chain at
// their snapshot's seq, so the early absorption is invisible to pinned
// readers and guaranteed-visible to any snapshot taken after the publish.
// An object lacking an indexed attribute poisons that index, matching the
// eager build's contract.
func (s *Store) absorbIndexes(extent string, oid value.OID, obj *value.Tuple) {
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	for _, idx := range s.indexes[extent] {
		if idx.buildErr != nil {
			continue
		}
		v, ok := obj.Get(idx.attr)
		if !ok {
			idx.buildErr = fmt.Errorf("storage: cannot index %s.%s: object %v lacks the attribute",
				idx.extent, idx.attr, oid)
			continue
		}
		idx.absorb(v, oid)
	}
}

// absorb inserts one (key, oid) pair. Caller holds the index write lock.
func (idx *extIndex) absorb(v value.Value, oid value.OID) {
	if idx.kind == HashIndex {
		h := value.Hash(v)
		for _, e := range idx.buckets[h] {
			if value.Equal(e.key, v) {
				e.oids = append(e.oids, oid)
				return
			}
		}
		if idx.buckets == nil {
			idx.buckets = map[uint64][]*indexEntry{}
		}
		idx.buckets[h] = append(idx.buckets[h], &indexEntry{key: v, oids: []value.OID{oid}})
		return
	}
	i := sort.Search(len(idx.entries), func(i int) bool {
		return value.Compare(idx.entries[i].key, v) >= 0
	})
	if i < len(idx.entries) && value.Equal(idx.entries[i].key, v) {
		idx.entries[i].oids = append(idx.entries[i].oids, oid)
		return
	}
	idx.entries = append(idx.entries, nil)
	copy(idx.entries[i+1:], idx.entries[i:])
	idx.entries[i] = &indexEntry{key: v, oids: []value.OID{oid}}
}

// probe runs f on an index under the read lock — f returns candidate oids
// copied out of the index, pre-filtered to oid < bound (the probing
// snapshot's allocation horizon) — then resolves each candidate through its
// version chain at seq via the metered Lookup path (an index probe pays
// per-object I/O, unlike an extent scan's page-granular sweep) and
// re-verifies the indexed attribute with match. The re-verification is what
// makes the shared index answer for every version at once: an entry may
// point at a row state the probing snapshot cannot see (deleted, or
// rewritten by an update), and the chain-resolved state either fails the
// match or resolves to nothing. Candidates are deduplicated — an updated
// row can appear under several keys of one range.
func (s *Store) probe(extent, attr string, seq uint64, match func(value.Value) bool, f func(*extIndex) ([]value.OID, error)) ([]value.Value, error) {
	s.idxMu.RLock()
	idx := s.indexes[extent][attr]
	if idx == nil {
		s.idxMu.RUnlock()
		return nil, fmt.Errorf("storage: no index on %s.%s", extent, attr)
	}
	if idx.buildErr != nil {
		err := idx.buildErr
		s.idxMu.RUnlock()
		return nil, err
	}
	oids, err := f(idx)
	s.idxMu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.indexProbes.Add(1)
	out := make([]value.Value, 0, len(oids))
	var seen map[value.OID]bool
	if len(oids) > 1 {
		seen = make(map[value.OID]bool, len(oids))
	}
	for _, oid := range oids {
		if seen != nil {
			if seen[oid] {
				continue
			}
			seen[oid] = true
		}
		obj, ok := s.lookupAt(oid, seq)
		if !ok {
			continue // deleted at seq, or born after it
		}
		v, ok := obj.Get(attr)
		if !ok || !match(v) {
			continue // the entry indexed a different state of this row
		}
		out = append(out, obj)
	}
	return out, nil
}

// visibleOIDs copies the entry oids that exist below the visibility bound.
// The copy happens under the caller's read lock: a concurrent absorb may
// extend the entry afterwards, but never mutates the prefix this probe saw.
func visibleOIDs(dst []value.OID, e *indexEntry, bound value.OID) []value.OID {
	for _, oid := range e.oids {
		if oid < bound {
			dst = append(dst, oid)
		}
	}
	return dst
}

// indexLookup answers an equality probe with rows visible at (bound, seq).
func (s *Store) indexLookup(extent, attr string, key value.Value, bound value.OID, seq uint64) ([]value.Value, error) {
	match := func(v value.Value) bool { return value.Equal(v, key) }
	return s.probe(extent, attr, seq, match, func(idx *extIndex) ([]value.OID, error) {
		switch idx.kind {
		case HashIndex:
			for _, e := range idx.buckets[value.Hash(key)] {
				if value.Equal(e.key, key) {
					return visibleOIDs(nil, e, bound), nil
				}
			}
			return nil, nil
		default:
			i := sort.Search(len(idx.entries), func(i int) bool {
				return value.Compare(idx.entries[i].key, key) >= 0
			})
			if i < len(idx.entries) && value.Equal(idx.entries[i].key, key) {
				return visibleOIDs(nil, idx.entries[i], bound), nil
			}
			return nil, nil
		}
	})
}

// indexRange answers a range probe (ordered indexes only) with rows visible
// at (bound, seq).
func (s *Store) indexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool, bound value.OID, seq uint64) ([]value.Value, error) {
	match := func(v value.Value) bool {
		if lo != nil {
			c := value.Compare(v, lo)
			if c < 0 || (c == 0 && !loIncl) {
				return false
			}
		}
		if hi != nil {
			c := value.Compare(v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				return false
			}
		}
		return true
	}
	return s.probe(extent, attr, seq, match, func(idx *extIndex) ([]value.OID, error) {
		if idx.kind != OrderedIndex {
			return nil, fmt.Errorf("storage: range probe needs an ordered index on %s.%s (have %s)",
				extent, attr, idx.kind)
		}
		start := 0
		if lo != nil {
			start = sort.Search(len(idx.entries), func(i int) bool {
				c := value.Compare(idx.entries[i].key, lo)
				if loIncl {
					return c >= 0
				}
				return c > 0
			})
		}
		end := len(idx.entries)
		if hi != nil {
			end = sort.Search(len(idx.entries), func(i int) bool {
				c := value.Compare(idx.entries[i].key, hi)
				if hiIncl {
					return c > 0
				}
				return c >= 0
			})
		}
		var oids []value.OID
		for i := start; i < end; i++ {
			oids = visibleOIDs(oids, idx.entries[i], bound)
		}
		return oids, nil
	})
}

// IndexLookup returns the objects of an extent whose indexed attribute
// equals key, in insertion order, as of the latest version. Both index
// kinds answer it.
func (s *Store) IndexLookup(extent, attr string, key value.Value) ([]value.Value, error) {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.IndexLookup(extent, attr, key)
}

// IndexRange returns the objects whose indexed attribute falls in the range
// [lo, hi] (nil bound = unbounded; loIncl/hiIncl select open or closed
// ends) as of the latest version. It requires an ordered index.
func (s *Store) IndexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool) ([]value.Value, error) {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.IndexRange(extent, attr, lo, hi, loIncl, hiIncl)
}
