// Secondary indexes. The paper's optimizer "may choose from a number of
// different join processing strategies" (§5.1); Selinger-style access-path
// selection widens that choice below the join operators: with a secondary
// index on an extent attribute, a selective predicate or join key no longer
// forces a full extent scan. Two kinds are supported: a hash index answers
// equality probes, an ordered index additionally answers range probes.
// Indexes are built eagerly by CreateIndex, invalidated by Insert, and
// rebuilt lazily on the next probe; probes are safe for concurrent use by
// the parallel execution operators.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/value"
)

// IndexKind enumerates the secondary index implementations.
type IndexKind int

const (
	// HashIndex buckets oids by key hash; it answers equality probes only.
	HashIndex IndexKind = iota + 1
	// OrderedIndex keeps (key, oids) entries sorted by value.Compare; it
	// answers both equality and range probes.
	OrderedIndex
)

// String names the kind the way Analyze reports it.
func (k IndexKind) String() string {
	switch k {
	case HashIndex:
		return "hash"
	case OrderedIndex:
		return "ordered"
	}
	return "unknown"
}

// indexEntry groups the oids of all objects sharing one key value.
type indexEntry struct {
	key  value.Value
	oids []value.OID
}

// extIndex is one secondary index over extent.attr. Exactly one of buckets
// (hash) or entries (ordered) is populated. dirty marks the index stale
// after an Insert; the next probe rebuilds it under the store's index lock.
// buildErr records a failed (re)build — an object lacking the indexed
// attribute — and poisons every probe until a rebuild succeeds, so an index
// access path fails exactly where the equivalent scan + field read would.
type extIndex struct {
	extent, attr string
	kind         IndexKind
	dirty        bool
	buildErr     error

	buckets map[uint64][]*indexEntry // hash kind: key hash → entries
	entries []*indexEntry            // ordered kind: sorted by key
}

// CreateIndex builds a secondary index on an extent attribute, replacing any
// existing index on the same attribute. Every object of the extent must
// carry the attribute: silently skipping incomplete rows would let an index
// plan succeed where the scan-based plan's field read errors, and the two
// must stay interchangeable.
func (s *Store) CreateIndex(extent, attr string, kind IndexKind) error {
	if _, ok := s.cat.ByExtent(extent); !ok {
		return fmt.Errorf("storage: unknown extent %q", extent)
	}
	if kind != HashIndex && kind != OrderedIndex {
		return fmt.Errorf("storage: unknown index kind %d", kind)
	}
	idx := &extIndex{extent: extent, attr: attr, kind: kind}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	s.rebuild(idx)
	if idx.buildErr != nil {
		return idx.buildErr
	}
	if s.indexes == nil {
		s.indexes = map[string]map[string]*extIndex{}
	}
	if s.indexes[extent] == nil {
		s.indexes[extent] = map[string]*extIndex{}
	}
	s.indexes[extent][attr] = idx
	// Collected statistics record index kinds, so a memoized Analyze result
	// is stale the moment an index appears.
	s.cacheMu.Lock()
	s.statsCache = nil
	s.cacheMu.Unlock()
	return nil
}

// EnsureIndexes creates hash indexes on the given extent attributes, keeping
// any index (of either kind) that already exists.
func (s *Store) EnsureIndexes(extent string, attrs ...string) error {
	for _, attr := range attrs {
		s.idxMu.RLock()
		_, exists := s.indexes[extent][attr]
		s.idxMu.RUnlock()
		if exists {
			continue
		}
		if err := s.CreateIndex(extent, attr, HashIndex); err != nil {
			return err
		}
	}
	return nil
}

// IndexedAttrs reports the indexed attributes of an extent and their kinds.
func (s *Store) IndexedAttrs(extent string) map[string]IndexKind {
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	if len(s.indexes[extent]) == 0 {
		return nil
	}
	out := make(map[string]IndexKind, len(s.indexes[extent]))
	for attr, idx := range s.indexes[extent] {
		out[attr] = idx.kind
	}
	return out
}

// rebuild (re)populates an index from the extent: one shared grouping pass
// buckets oids by key, then the ordered kind sorts the entries and drops the
// buckets. Caller holds idxMu.
func (s *Store) rebuild(idx *extIndex) {
	idx.buckets, idx.entries, idx.buildErr = nil, nil, nil
	buckets := map[uint64][]*indexEntry{}
	var entries []*indexEntry
	for _, oid := range s.extents[idx.extent] {
		v, ok := s.objects[oid].Get(idx.attr)
		if !ok {
			idx.buildErr = fmt.Errorf("storage: cannot index %s.%s: object %v lacks the attribute",
				idx.extent, idx.attr, oid)
			idx.dirty = false
			return
		}
		h := value.Hash(v)
		var e *indexEntry
		for _, cand := range buckets[h] {
			if value.Equal(cand.key, v) {
				e = cand
				break
			}
		}
		if e == nil {
			e = &indexEntry{key: v}
			buckets[h] = append(buckets[h], e)
			entries = append(entries, e)
		}
		e.oids = append(e.oids, oid)
	}
	if idx.kind == OrderedIndex {
		sort.Slice(entries, func(i, j int) bool {
			return value.Compare(entries[i].key, entries[j].key) < 0
		})
		idx.entries = entries
	} else {
		idx.buckets = buckets
	}
	idx.dirty = false
}

// probe runs f on a ready (built, non-dirty) index under at least a read
// lock, then fetches the matched oids through the metered Lookup path — an
// index probe pays per-object I/O, unlike an extent scan's page-granular
// sweep.
func (s *Store) probe(extent, attr string, f func(*extIndex) ([]value.OID, error)) ([]value.Value, error) {
	s.idxMu.RLock()
	idx := s.indexes[extent][attr]
	if idx == nil {
		s.idxMu.RUnlock()
		return nil, fmt.Errorf("storage: no index on %s.%s", extent, attr)
	}
	if idx.dirty {
		s.idxMu.RUnlock()
		s.idxMu.Lock()
		if idx.dirty {
			s.rebuild(idx)
		}
		s.idxMu.Unlock()
		s.idxMu.RLock()
	}
	if idx.buildErr != nil {
		err := idx.buildErr
		s.idxMu.RUnlock()
		return nil, err
	}
	oids, err := f(idx)
	s.idxMu.RUnlock()
	if err != nil {
		return nil, err
	}
	s.indexProbes.Add(1)
	out := make([]value.Value, 0, len(oids))
	for _, oid := range oids {
		if obj, ok := s.Lookup(oid); ok {
			out = append(out, obj)
		}
	}
	return out, nil
}

// IndexLookup returns the objects of an extent whose indexed attribute
// equals key, in insertion order. Both index kinds answer it.
func (s *Store) IndexLookup(extent, attr string, key value.Value) ([]value.Value, error) {
	return s.probe(extent, attr, func(idx *extIndex) ([]value.OID, error) {
		switch idx.kind {
		case HashIndex:
			for _, e := range idx.buckets[value.Hash(key)] {
				if value.Equal(e.key, key) {
					return e.oids, nil
				}
			}
			return nil, nil
		default:
			i := sort.Search(len(idx.entries), func(i int) bool {
				return value.Compare(idx.entries[i].key, key) >= 0
			})
			if i < len(idx.entries) && value.Equal(idx.entries[i].key, key) {
				return idx.entries[i].oids, nil
			}
			return nil, nil
		}
	})
}

// IndexRange returns the objects whose indexed attribute falls in the range
// [lo, hi] (nil bound = unbounded; loIncl/hiIncl select open or closed
// ends). It requires an ordered index.
func (s *Store) IndexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool) ([]value.Value, error) {
	return s.probe(extent, attr, func(idx *extIndex) ([]value.OID, error) {
		if idx.kind != OrderedIndex {
			return nil, fmt.Errorf("storage: range probe needs an ordered index on %s.%s (have %s)",
				extent, attr, idx.kind)
		}
		start := 0
		if lo != nil {
			start = sort.Search(len(idx.entries), func(i int) bool {
				c := value.Compare(idx.entries[i].key, lo)
				if loIncl {
					return c >= 0
				}
				return c > 0
			})
		}
		end := len(idx.entries)
		if hi != nil {
			end = sort.Search(len(idx.entries), func(i int) bool {
				c := value.Compare(idx.entries[i].key, hi)
				if hiIncl {
					return c > 0
				}
				return c >= 0
			})
		}
		var oids []value.OID
		for i := start; i < end; i++ {
			oids = append(oids, idx.entries[i].oids...)
		}
		return oids, nil
	})
}

// invalidateIndexes marks every index of an extent stale; the next probe
// rebuilds. Called by Insert, which is single-threaded by contract, but the
// flag is still set under the index lock so probes racing a rebuild are
// safe.
func (s *Store) invalidateIndexes(extent string) {
	s.idxMu.Lock()
	for _, idx := range s.indexes[extent] {
		idx.dirty = true
	}
	s.idxMu.Unlock()
}
