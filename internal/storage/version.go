// Multi-version extent snapshots. The store publishes an immutable version
// per write: a reader pins one (Snapshot) and keeps scanning it while later
// writes publish successors — the "populate, then query" restriction the
// original store had is gone. Versions share structure: the object table
// maps each oid to a version chain (newest first; insert-only objects have a
// single-node chain), and each version's extent oid-lists share their
// backing arrays with their predecessors where possible — only an insert's
// append or a delete/update's fresh slice replaces the touched extent's
// slice header. Publishing is one atomic pointer store; pinning is one
// atomic load plus a reference count that holds back the garbage collector
// (gc.go) until the snapshot is released.
package storage

import (
	"fmt"
	"sync/atomic"

	"repro/internal/value"
)

// version is one immutable store state. seq orders versions; nextOID is the
// allocation horizon — every oid allocated before the version was published
// is < nextOID (oids are monotonic and never reused, so the horizon is a
// cheap visibility pre-filter; the per-object version chain is the full
// rule).
type version struct {
	seq     uint64
	nextOID value.OID
	extents map[string][]value.OID
}

// objVersion is one state of one object in its version chain, newest first.
// born is the seq of the version that published this state; obj == nil marks
// a tombstone (the object was deleted at born). A snapshot at seq S sees the
// first node with born <= S. Chains are immutable except for GC truncation
// of links no live snapshot can reach.
type objVersion struct {
	extent string
	obj    *value.Tuple // nil = tombstone
	born   uint64
	prev   *objVersion
}

// at resolves the chain to the state visible at seq, or nil when the object
// did not exist yet.
func (n *objVersion) at(seq uint64) *objVersion {
	for ; n != nil; n = n.prev {
		if n.born <= seq {
			return n
		}
	}
	return nil
}

// cowExtents derives the successor extent map for an insert: a shallow copy
// with the touched extent's oid list extended. The append may write one slot
// past the predecessor's length into a shared backing array — invisible to
// readers of the old version, whose slice header bounds them to the old
// prefix.
func cowExtents(old map[string][]value.OID, extent string, oid value.OID) map[string][]value.OID {
	next := make(map[string][]value.OID, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[extent] = append(next[extent], oid)
	return next
}

// replaceExtent derives the successor extent map for a delete or update: the
// touched extent's list is rebuilt into a fresh backing array (with oid
// dropped when drop is set), so the materialization cache's pointer-identity
// check (store.go) can tell mutated lists from extended ones.
func replaceExtent(old map[string][]value.OID, extent string, oid value.OID, drop bool) map[string][]value.OID {
	next := make(map[string][]value.OID, len(old))
	for k, v := range old {
		next[k] = v
	}
	src := old[extent]
	dst := make([]value.OID, 0, len(src))
	for _, o := range src {
		if drop && o == oid {
			continue
		}
		dst = append(dst, o)
	}
	next[extent] = dst
	return next
}

// Snapshot is a pinned immutable view of the store: all reads — extent
// scans, oid dereferences, index probes — answer as of the pinned version,
// no matter how many writes commit concurrently. It implements the
// evaluator's DB interface and the executor's IndexedDB capability, so whole
// physical plans run against one snapshot. I/O metering is shared with the
// owning store. A Snapshot is safe for concurrent use.
//
// A Snapshot holds a reference that keeps its version's object states and
// cached materializations reachable; call Release when done with it so the
// garbage collector can reclaim superseded versions. An unreleased snapshot
// is never unsafe — it only holds back reclamation.
type Snapshot struct {
	st       *Store
	v        *version
	epoch    uint64
	released atomic.Bool
}

// Snapshot pins the current version. The returned view is immutable; the
// store remains free to accept writes.
func (s *Store) Snapshot() *Snapshot {
	s.pinMu.Lock()
	v := s.head.Load()
	s.pins[v.seq]++
	s.pinMu.Unlock()
	return &Snapshot{st: s, v: v, epoch: s.statsEpoch.Load()}
}

// Release drops the snapshot's pin on its version, allowing GC to reclaim
// object states and cache entries only this snapshot could still read.
// Release is idempotent and safe to call concurrently.
func (sn *Snapshot) Release() {
	if sn.released.Swap(true) {
		return
	}
	s := sn.st
	s.pinMu.Lock()
	if n := s.pins[sn.v.seq]; n <= 1 {
		delete(s.pins, sn.v.seq)
	} else {
		s.pins[sn.v.seq] = n - 1
	}
	s.pinMu.Unlock()
}

// Seq reports the pinned version's sequence number: one write (insert,
// delete, update) is one increment, so two snapshots compare by recency.
func (sn *Snapshot) Seq() uint64 { return sn.v.seq }

// StatsEpoch reports the statistics epoch observed when the snapshot was
// taken. The serving layer's plan cache keys prepared plans on it: a cached
// plan is reused while the epoch holds and re-planned once it drifts.
func (sn *Snapshot) StatsEpoch() uint64 { return sn.epoch }

// Lookup fetches an object's state as of the snapshot, metering the access
// (see Store.Lookup for the page model). Deleted objects and objects born
// after the pin report not-found.
func (sn *Snapshot) Lookup(oid value.OID) (*value.Tuple, bool) {
	if oid >= sn.v.nextOID {
		return nil, false
	}
	return sn.st.lookupAt(oid, sn.v.seq)
}

// Deref implements pointer dereferencing for the evaluator, failing loudly
// on oids dangling in this version.
func (sn *Snapshot) Deref(oid value.OID) (*value.Tuple, error) {
	obj, ok := sn.Lookup(oid)
	if !ok {
		return nil, fmt.Errorf("storage: dangling oid %v", oid)
	}
	return obj, nil
}

// Table returns the extent as of the snapshot as a set of tuples. Callers
// must treat the set as immutable. Materializations are cached per extent
// with copy-on-write extension (see Store.materialize), so consecutive
// versions pay for their delta, not the whole extent.
func (sn *Snapshot) Table(name string) (*value.Set, error) {
	oids, ok := sn.v.extents[name]
	if !ok {
		if _, known := sn.st.cat.ByExtent(name); !known {
			return nil, fmt.Errorf("storage: unknown base table %q", name)
		}
	}
	set := sn.st.materialize(name, oids, sn.v.seq)
	sn.st.meterScan(len(oids))
	return set, nil
}

// Size reports the number of objects the extent had at the pinned version.
func (sn *Snapshot) Size(extent string) int { return len(sn.v.extents[extent]) }

// OIDs returns the extent's oids at the pinned version, in insertion order.
func (sn *Snapshot) OIDs(extent string) []value.OID {
	return append([]value.OID(nil), sn.v.extents[extent]...)
}

// IndexLookup answers an equality probe as of the snapshot: the shared
// index (maintained incrementally across writes) is probed and every
// candidate is resolved through its version chain at the snapshot's seq and
// re-verified against the key, so a pinned reader never observes a row a
// concurrent writer added, removed, or rewrote.
func (sn *Snapshot) IndexLookup(extent, attr string, key value.Value) ([]value.Value, error) {
	return sn.st.indexLookup(extent, attr, key, sn.v.nextOID, sn.v.seq)
}

// IndexRange answers a range probe as of the snapshot (ordered indexes
// only); see IndexLookup for the visibility rule.
func (sn *Snapshot) IndexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool) ([]value.Value, error) {
	return sn.st.indexRange(extent, attr, lo, hi, loIncl, hiIncl, sn.v.nextOID, sn.v.seq)
}
