// Multi-version extent snapshots. The store publishes an immutable version
// per write: a reader pins one (Snapshot) and keeps scanning it while later
// inserts publish successors — the "populate, then query" restriction the
// original store had is gone. Versions share structure: the object table is
// append-only (objects are immutable once inserted and never deleted, so a
// version is fully described by its oid horizon), and each version's extent
// oid-lists share their backing arrays with their predecessors, with only
// the touched extent's slice header replaced on insert. Publishing is one
// atomic pointer store; pinning is one atomic load.
package storage

import (
	"fmt"

	"repro/internal/value"
)

// version is one immutable store state. seq orders versions; nextOID is the
// visibility horizon — exactly the objects with oid < nextOID existed when
// the version was published, because oids are allocated monotonically and
// objects are never updated or deleted.
type version struct {
	seq     uint64
	nextOID value.OID
	extents map[string][]value.OID
}

// cowExtents derives the successor extent map: a shallow copy with the
// touched extent's oid list extended. The append may write one slot past the
// predecessor's length into a shared backing array — invisible to readers of
// the old version, whose slice header bounds them to the old prefix.
func cowExtents(old map[string][]value.OID, extent string, oid value.OID) map[string][]value.OID {
	next := make(map[string][]value.OID, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[extent] = append(next[extent], oid)
	return next
}

// Snapshot is a pinned immutable view of the store: all reads — extent
// scans, oid dereferences, index probes — answer as of the pinned version,
// no matter how many inserts commit concurrently. It implements the
// evaluator's DB interface and the executor's IndexedDB capability, so whole
// physical plans run against one snapshot. I/O metering is shared with the
// owning store. A Snapshot is safe for concurrent use.
type Snapshot struct {
	st    *Store
	v     *version
	epoch uint64
}

// Snapshot pins the current version. The returned view is immutable; the
// store remains free to accept writes.
func (s *Store) Snapshot() *Snapshot {
	return &Snapshot{st: s, v: s.head.Load(), epoch: s.statsEpoch.Load()}
}

// Seq reports the pinned version's sequence number: one Insert is one
// increment, so two snapshots compare by recency.
func (sn *Snapshot) Seq() uint64 { return sn.v.seq }

// StatsEpoch reports the statistics epoch observed when the snapshot was
// taken. The serving layer's plan cache keys prepared plans on it: a cached
// plan is reused while the epoch holds and re-planned once it drifts.
func (sn *Snapshot) StatsEpoch() uint64 { return sn.epoch }

// visible reports whether an oid exists in the pinned version.
func (sn *Snapshot) visible(oid value.OID) bool { return oid < sn.v.nextOID }

// Lookup fetches an object by oid as of the snapshot, metering the access
// (see Store.Lookup for the page model).
func (sn *Snapshot) Lookup(oid value.OID) (*value.Tuple, bool) {
	if !sn.visible(oid) {
		return nil, false
	}
	return sn.st.Lookup(oid)
}

// Deref implements pointer dereferencing for the evaluator, failing loudly
// on oids dangling in this version.
func (sn *Snapshot) Deref(oid value.OID) (*value.Tuple, error) {
	obj, ok := sn.Lookup(oid)
	if !ok {
		return nil, fmt.Errorf("storage: dangling oid %v", oid)
	}
	return obj, nil
}

// Table returns the extent as of the snapshot as a set of tuples. Callers
// must treat the set as immutable. Materializations are cached per extent
// with copy-on-write extension (see Store.materialize), so consecutive
// versions pay for their delta, not the whole extent.
func (sn *Snapshot) Table(name string) (*value.Set, error) {
	oids, ok := sn.v.extents[name]
	if !ok {
		if _, known := sn.st.cat.ByExtent(name); !known {
			return nil, fmt.Errorf("storage: unknown base table %q", name)
		}
	}
	set := sn.st.materialize(name, oids)
	sn.st.meterScan(len(oids))
	return set, nil
}

// Size reports the number of objects the extent had at the pinned version.
func (sn *Snapshot) Size(extent string) int { return len(sn.v.extents[extent]) }

// OIDs returns the extent's oids at the pinned version, in insertion order.
func (sn *Snapshot) OIDs(extent string) []value.OID {
	return append([]value.OID(nil), sn.v.extents[extent]...)
}

// IndexLookup answers an equality probe as of the snapshot: the shared
// index (maintained incrementally across inserts) is probed and rows beyond
// the snapshot's oid horizon are filtered out, so a pinned reader never
// observes a row a concurrent writer added.
func (sn *Snapshot) IndexLookup(extent, attr string, key value.Value) ([]value.Value, error) {
	return sn.st.indexLookup(extent, attr, key, sn.v.nextOID)
}

// IndexRange answers a range probe as of the snapshot (ordered indexes
// only); see IndexLookup for the visibility rule.
func (sn *Snapshot) IndexRange(extent, attr string, lo, hi value.Value, loIncl, hiIncl bool) ([]value.Value, error) {
	return sn.st.indexRange(extent, attr, lo, hi, loIncl, hiIncl, sn.v.nextOID)
}
