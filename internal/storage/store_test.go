package storage

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	return New(schema.SupplierPart())
}

func TestInsertAssignsOIDsAndIDField(t *testing.T) {
	s := newStore(t)
	oid1, err := s.Insert("PART", value.NewTuple(
		"pname", value.String("bolt"), "price", value.Int(10), "color", value.String("red")))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	oid2, err := s.Insert("PART", value.NewTuple(
		"pname", value.String("nut"), "price", value.Int(5), "color", value.String("blue")))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if oid1 == oid2 {
		t.Fatalf("oids must be distinct")
	}
	obj, err := s.Deref(oid1)
	if err != nil {
		t.Fatalf("Deref: %v", err)
	}
	if got := obj.MustGet("pid"); !value.Equal(got, oid1) {
		t.Fatalf("id field = %v, want %v", got, oid1)
	}
	if got := obj.MustGet("pname"); !value.Equal(got, value.String("bolt")) {
		t.Fatalf("pname = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	s := newStore(t)
	if _, err := s.Insert("NOPE", value.EmptyTuple()); err == nil {
		t.Fatalf("unknown extent must fail")
	}
	if _, err := s.Insert("PART", value.NewTuple("pid", value.OID(9))); err == nil {
		t.Fatalf("pre-set id field must fail")
	}
}

func TestTableMaterializationAndCache(t *testing.T) {
	s := newStore(t)
	if _, err := s.Insert("PART", value.NewTuple("pname", value.String("a"), "price", value.Int(1), "color", value.String("red"))); err != nil {
		t.Fatal(err)
	}
	tab, err := s.Table("PART")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if tab.Len() != 1 {
		t.Fatalf("PART size = %d", tab.Len())
	}
	// Cache is invalidated by inserts.
	if _, err := s.Insert("PART", value.NewTuple("pname", value.String("b"), "price", value.Int(2), "color", value.String("blue"))); err != nil {
		t.Fatal(err)
	}
	tab, err = s.Table("PART")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("PART size after insert = %d", tab.Len())
	}
	// Empty but known extents yield empty sets; unknown extents error.
	emp, err := s.Table("SUPPLIER")
	if err != nil || emp.Len() != 0 {
		t.Fatalf("empty extent: %v, %v", emp, err)
	}
	if _, err := s.Table("NOPE"); err == nil {
		t.Fatalf("unknown table must error")
	}
}

func TestDanglingOID(t *testing.T) {
	s := newStore(t)
	if _, err := s.Deref(value.OID(999)); err == nil {
		t.Fatalf("dangling oid must error")
	}
}

func TestPageMetering(t *testing.T) {
	s := newStore(t)
	s.SetObjectsPerPage(4)
	var oids []value.OID
	for i := 0; i < 16; i++ {
		oid, err := s.Insert("PART", value.NewTuple(
			"pname", value.String("p"), "price", value.Int(int64(i)), "color", value.String("red")))
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	s.ResetStats()
	// Sequential scan through oids touches each of the 4+1 boundary pages once
	// (oids start at 1, so they straddle 5 pages of 4 objects each).
	for _, oid := range oids {
		if _, ok := s.Lookup(oid); !ok {
			t.Fatalf("missing object %v", oid)
		}
	}
	st := s.Stats()
	if st.ObjectReads != 16 {
		t.Fatalf("ObjectReads = %d", st.ObjectReads)
	}
	if st.PageReads != 5 {
		t.Fatalf("PageReads = %d, want 5 (sequential locality)", st.PageReads)
	}
	// Random-ish alternating access defeats the one-page buffer.
	s.ResetStats()
	for i := 0; i < 8; i++ {
		s.Lookup(oids[0])
		s.Lookup(oids[15])
	}
	if got := s.Stats().PageReads; got != 16 {
		t.Fatalf("alternating PageReads = %d, want 16", got)
	}
}

func TestMemDB(t *testing.T) {
	x := value.NewSet(value.NewTuple("a", value.Int(1)))
	db := NewMemDB("X", x)
	got, err := db.Table("X")
	if err != nil || !value.Equal(got, x) {
		t.Fatalf("Table = %v, %v", got, err)
	}
	if _, err := db.Table("Y"); err == nil {
		t.Fatalf("unknown table must error")
	}
	if _, err := db.Deref(value.OID(1)); err == nil {
		t.Fatalf("MemDB without objects must report dangling oid")
	}
	db.Objs[1] = value.NewTuple("a", value.Int(1))
	if tup, err := db.Deref(value.OID(1)); err != nil || tup == nil {
		t.Fatalf("Deref: %v, %v", tup, err)
	}
	if names := db.TableNames(); len(names) != 1 || names[0] != "X" {
		t.Fatalf("TableNames = %v", names)
	}
}
