package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func mustDelete(t *testing.T, s *Store, extent string, oid value.OID) {
	t.Helper()
	if err := s.Delete(extent, oid); err != nil {
		t.Fatalf("Delete(%s, %v): %v", extent, oid, err)
	}
}

func mustUpdate(t *testing.T, s *Store, oid value.OID, name, color string, price int64) {
	t.Helper()
	err := s.Update("PART", oid, value.NewTuple(
		"pname", value.String(name), "price", value.Int(price), "color", value.String(color)))
	if err != nil {
		t.Fatalf("Update(%v): %v", oid, err)
	}
}

func TestDeleteVisibilityAcrossSnapshots(t *testing.T) {
	s := newStore(t)
	bolt := insertPart(t, s, "bolt", "red", 10)
	nut := insertPart(t, s, "nut", "blue", 5)

	old := s.Snapshot()
	defer old.Release()
	mustDelete(t, s, "PART", bolt)

	// The pinned snapshot keeps seeing the deleted row.
	if got := old.Size("PART"); got != 2 {
		t.Fatalf("pinned Size = %d, want 2", got)
	}
	set, err := old.Table("PART")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if set.Len() != 2 {
		t.Fatalf("pinned Table has %d rows, want 2", set.Len())
	}
	if _, ok := old.Lookup(bolt); !ok {
		t.Fatalf("pinned snapshot must still see the deleted row")
	}

	// A snapshot taken after the delete does not.
	fresh := s.Snapshot()
	defer fresh.Release()
	if got := fresh.Size("PART"); got != 1 {
		t.Fatalf("fresh Size = %d, want 1", got)
	}
	if _, ok := fresh.Lookup(bolt); ok {
		t.Fatalf("fresh snapshot must not see the deleted row")
	}
	if _, err := fresh.Deref(bolt); err == nil {
		t.Fatalf("Deref of a deleted oid must fail")
	}
	if _, ok := fresh.Lookup(nut); !ok {
		t.Fatalf("undeleted row must stay visible")
	}

	// Error paths: double delete, unknown oid, wrong extent.
	if err := s.Delete("PART", bolt); err == nil {
		t.Fatalf("deleting a deleted object must fail")
	}
	if err := s.Delete("PART", value.OID(9999)); err == nil {
		t.Fatalf("deleting an unknown oid must fail")
	}
	if err := s.Delete("SUPPLIER", nut); err == nil {
		t.Fatalf("deleting via the wrong extent must fail")
	}
	if err := s.Delete("NOPE", nut); err == nil {
		t.Fatalf("deleting from an unknown extent must fail")
	}
}

func TestUpdateVisibilityAcrossSnapshots(t *testing.T) {
	s := newStore(t)
	bolt := insertPart(t, s, "bolt", "red", 10)

	old := s.Snapshot()
	defer old.Release()
	mustUpdate(t, s, bolt, "bolt", "green", 99)

	oldObj, ok := old.Lookup(bolt)
	if !ok {
		t.Fatalf("pinned snapshot lost the row")
	}
	if got := oldObj.MustGet("color"); !value.Equal(got, value.String("red")) {
		t.Fatalf("pinned snapshot color = %v, want red", got)
	}

	fresh := s.Snapshot()
	defer fresh.Release()
	newObj, ok := fresh.Lookup(bolt)
	if !ok {
		t.Fatalf("fresh snapshot lost the row")
	}
	if got := newObj.MustGet("color"); !value.Equal(got, value.String("green")) {
		t.Fatalf("fresh snapshot color = %v, want green", got)
	}
	if got := newObj.MustGet("pid"); !value.Equal(got, bolt) {
		t.Fatalf("update must preserve object identity, id = %v", got)
	}
	if got := fresh.Size("PART"); got != 1 {
		t.Fatalf("update must not change extent size, got %d", got)
	}

	// Error paths: id field in the update, dead object, unknown extent.
	if err := s.Update("PART", bolt, value.NewTuple("pid", value.OID(7))); err == nil {
		t.Fatalf("update carrying the id field must fail")
	}
	mustDelete(t, s, "PART", bolt)
	if err := s.Update("PART", bolt, value.NewTuple("pname", value.String("x"))); err == nil {
		t.Fatalf("updating a deleted object must fail")
	}
	if err := s.Update("NOPE", bolt, value.EmptyTuple()); err == nil {
		t.Fatalf("updating an unknown extent must fail")
	}
}

func TestIndexVisibilityUnderMutation(t *testing.T) {
	s := newStore(t)
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := s.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	a := insertPart(t, s, "a", "red", 1)
	b := insertPart(t, s, "b", "red", 2)
	insertPart(t, s, "c", "blue", 3)

	old := s.Snapshot()
	defer old.Release()
	mustDelete(t, s, "PART", a)
	mustUpdate(t, s, b, "b", "blue", 50)

	// The pinned snapshot probes the pre-mutation states.
	rows, err := old.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("pinned red probe returned %d rows, want 2", len(rows))
	}
	rows, err = old.IndexRange("PART", "price", value.Int(1), value.Int(10), true, true)
	if err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("pinned range probe returned %d rows, want 3", len(rows))
	}

	// A fresh snapshot probes the post-mutation states: a is gone, b moved
	// from red/2 to blue/50.
	fresh := s.Snapshot()
	defer fresh.Release()
	rows, err = fresh.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("fresh red probe returned %d rows, want 0", len(rows))
	}
	rows, err = fresh.IndexLookup("PART", "color", value.String("blue"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("fresh blue probe returned %d rows, want 2", len(rows))
	}
	rows, err = fresh.IndexRange("PART", "price", value.Int(1), value.Int(10), true, true)
	if err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("fresh range probe returned %d rows, want 1 (only c)", len(rows))
	}
	rows, err = fresh.IndexRange("PART", "price", value.Int(40), nil, true, true)
	if err != nil {
		t.Fatalf("IndexRange: %v", err)
	}
	if len(rows) != 1 || !value.Equal(rows[0].(*value.Tuple).MustGet("pid"), b) {
		t.Fatalf("fresh range probe over the updated price = %v, want just b", rows)
	}
}

func TestIndexBuildCoversHistoricalStates(t *testing.T) {
	s := newStore(t)
	a := insertPart(t, s, "a", "red", 1)
	b := insertPart(t, s, "b", "red", 2)

	old := s.Snapshot()
	defer old.Release()
	mustDelete(t, s, "PART", a)
	mustUpdate(t, s, b, "b", "blue", 2)

	// The index is created after the mutations; a snapshot pinned before
	// them must still probe its own states, so the build has to index
	// superseded and deleted states too.
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	rows, err := old.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("pinned red probe through the late index returned %d rows, want 2", len(rows))
	}
	fresh := s.Snapshot()
	defer fresh.Release()
	rows, err = fresh.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("fresh red probe returned %d rows, want 0", len(rows))
	}
}

func TestSaveLoadRoundTripsTombstones(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "a", "red", 1)
	b := insertPart(t, s, "b", "blue", 2)
	c := insertPart(t, s, "c", "red", 3)
	mustDelete(t, s, "PART", b)

	var buf bytes.Buffer
	if err := s.SaveJSON(&buf); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"tombstones"`) {
		t.Fatalf("dump lacks the tombstones block:\n%s", buf.String())
	}

	ld, err := LoadJSON(schema.SupplierPart(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got := ld.Size("PART"); got != 2 {
		t.Fatalf("loaded extent size = %d, want 2", got)
	}
	if _, ok := ld.Lookup(b); ok {
		t.Fatalf("tombstoned oid must stay dead after load")
	}
	if err := ld.Delete("PART", b); err == nil {
		t.Fatalf("deleting a loaded tombstone must fail")
	}
	// The allocator must continue past the dead oid, never reusing it: a
	// reused oid would re-point any reference-valued attribute still
	// carrying it.
	d := insertPart(t, ld, "d", "green", 4)
	if d <= c {
		t.Fatalf("fresh oid %v must exceed the persisted horizon %v", d, c)
	}

	// Dumps from before tombstones existed still load.
	legacy := `{"extents": {}}`
	if _, err := LoadJSON(schema.SupplierPart(), strings.NewReader(legacy)); err != nil {
		t.Fatalf("legacy dump failed to load: %v", err)
	}
}

func TestStatsUnabsorbOnDeleteAndUpdate(t *testing.T) {
	s := newStore(t)
	var reds []value.OID
	for i := 0; i < 30; i++ {
		reds = append(reds, insertPart(t, s, fmt.Sprintf("r%d", i), "red", int64(i)))
	}
	blue := insertPart(t, s, "b", "blue", 99)

	st1 := s.Analyze()
	if st1.RowCount("PART") != 31 {
		t.Fatalf("RowCount = %d, want 31", st1.RowCount("PART"))
	}
	if st1.DistinctValues("PART", "color") != 2 {
		t.Fatalf("color NDV = %d, want 2", st1.DistinctValues("PART", "color"))
	}

	epoch := s.StatsEpoch()
	for _, oid := range reds[:20] {
		mustDelete(t, s, "PART", oid)
	}
	if s.StatsEpoch() != epoch {
		t.Fatalf("deletes must not advance the stats epoch — runtime feedback owns mutation-driven replanning")
	}

	st2 := s.Analyze()
	if st2.RowCount("PART") != 11 {
		t.Fatalf("RowCount after deletes = %d, want 11", st2.RowCount("PART"))
	}
	if st2.DistinctValues("PART", "color") != 2 {
		t.Fatalf("color NDV after partial deletes = %d, want 2", st2.DistinctValues("PART", "color"))
	}
	if h := st2.Histogram("PART", "price"); h == nil || h.Rows != 11 {
		t.Fatalf("price histogram rows = %v, want 11", h)
	}

	// Deleting the last red row retires the value from the distinct counter.
	for _, oid := range reds[20:] {
		mustDelete(t, s, "PART", oid)
	}
	st3 := s.Analyze()
	if st3.DistinctValues("PART", "color") != 1 {
		t.Fatalf("color NDV after full red delete = %d, want 1", st3.DistinctValues("PART", "color"))
	}

	// An update unabsorbs the old values and absorbs the new ones.
	mustUpdate(t, s, blue, "b", "green", 5)
	st4 := s.Analyze()
	if st4.RowCount("PART") != 1 {
		t.Fatalf("RowCount after update = %d, want 1", st4.RowCount("PART"))
	}
	if st4.DistinctValues("PART", "color") != 1 {
		t.Fatalf("color NDV after update = %d, want 1", st4.DistinctValues("PART", "color"))
	}
	h := st4.Histogram("PART", "color")
	if h == nil {
		t.Fatalf("no color histogram")
	}
	if f := h.EqFraction(value.String("green")); f != 1 {
		t.Fatalf("EqFraction(green) = %v, want 1", f)
	}
	if f := h.EqFraction(value.String("blue")); f != 0 {
		t.Fatalf("EqFraction(blue) = %v, want 0", f)
	}

	// The explicit feedback hook advances the epoch unconditionally.
	epoch = s.StatsEpoch()
	s.AdvanceStatsEpoch()
	if s.StatsEpoch() != epoch+1 {
		t.Fatalf("AdvanceStatsEpoch did not advance")
	}
}

func TestGCReclaimsBeyondHorizon(t *testing.T) {
	s := newStore(t)
	s.SetAutoGC(0)
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	a := insertPart(t, s, "a", "red", 1)
	b := insertPart(t, s, "b", "blue", 2)
	if _, err := s.Table("PART"); err != nil { // populate the materialization cache
		t.Fatal(err)
	}

	pinned := s.Snapshot()
	mustDelete(t, s, "PART", a)
	mustUpdate(t, s, b, "b", "green", 20)

	st := s.GC()
	if st.RemovedObjects != 0 {
		t.Fatalf("GC removed %d objects while a snapshot pins them", st.RemovedObjects)
	}
	if obj, ok := pinned.Lookup(a); !ok || !value.Equal(obj.MustGet("color"), value.String("red")) {
		t.Fatalf("pinned snapshot lost its state after GC: %v %v", obj, ok)
	}
	if rows, err := pinned.IndexLookup("PART", "color", value.String("red")); err != nil || len(rows) != 1 {
		t.Fatalf("pinned index probe after GC = %v, %v; want the old red row", rows, err)
	}

	pinned.Release()
	st = s.GC()
	if st.RemovedObjects != 1 {
		t.Fatalf("GC removed %d objects after release, want 1", st.RemovedObjects)
	}
	if st.PrunedStates == 0 {
		t.Fatalf("GC pruned no superseded states, want the update's old state gone")
	}
	if st.PrunedIndexOIDs == 0 {
		t.Fatalf("GC pruned no index slots for the dead object")
	}
	if _, ok := s.Lookup(a); ok {
		t.Fatalf("dead object still resolvable after GC")
	}
	if rows, err := s.IndexLookup("PART", "color", value.String("green")); err != nil || len(rows) != 1 {
		t.Fatalf("surviving row lost from the index: %v, %v", rows, err)
	}
	// A second collection finds nothing left.
	st = s.GC()
	if st.RemovedObjects != 0 || st.PrunedStates != 0 {
		t.Fatalf("second GC found garbage: %+v", st)
	}
}

func TestAutoGCTriggers(t *testing.T) {
	s := newStore(t)
	s.SetAutoGC(4)
	var oids []value.OID
	for i := 0; i < 8; i++ {
		oids = append(oids, insertPart(t, s, fmt.Sprintf("p%d", i), "red", int64(i)))
	}
	for _, oid := range oids[:4] {
		mustDelete(t, s, "PART", oid)
	}
	// The 4th delete crossed the threshold: the dead objects are already
	// collected, so a manual GC has nothing left.
	if st := s.GC(); st.RemovedObjects != 0 {
		t.Fatalf("auto-GC did not run: manual GC still removed %d objects", st.RemovedObjects)
	}
	if _, ok := s.Lookup(oids[0]); ok {
		t.Fatalf("auto-GC left a dead object resolvable")
	}
}

func TestGCUnderConcurrentReaders(t *testing.T) {
	s := newStore(t)
	s.SetAutoGC(16)
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	if err := s.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	var oids []value.OID
	for i := 0; i < 128; i++ {
		oids = append(oids, insertPart(t, s, fmt.Sprintf("seed%d", i), "red", int64(i%50)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				set, err := sn.Table("PART")
				if err != nil {
					t.Errorf("Table: %v", err)
					sn.Release()
					return
				}
				if set.Len() != sn.Size("PART") {
					t.Errorf("snapshot tore: Table %d rows, Size %d at seq %d",
						set.Len(), sn.Size("PART"), sn.Seq())
					sn.Release()
					return
				}
				if _, err := sn.IndexLookup("PART", "color", value.String("red")); err != nil {
					t.Errorf("IndexLookup: %v", err)
					sn.Release()
					return
				}
				if _, err := sn.IndexRange("PART", "price", value.Int(10), value.Int(30), true, true); err != nil {
					t.Errorf("IndexRange: %v", err)
					sn.Release()
					return
				}
				sn.Release()
			}
		}()
	}

	rng := rand.New(rand.NewSource(42))
	colors := []string{"red", "blue", "green"}
	for i := 0; i < 600; i++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(oids) < 32:
			oids = append(oids, insertPart(t, s, fmt.Sprintf("n%d", i), colors[rng.Intn(3)], int64(rng.Intn(50))))
		case op == 1:
			j := rng.Intn(len(oids))
			mustDelete(t, s, "PART", oids[j])
			oids = append(oids[:j], oids[j+1:]...)
		default:
			j := rng.Intn(len(oids))
			mustUpdate(t, s, oids[j], fmt.Sprintf("u%d", i), colors[rng.Intn(3)], int64(rng.Intn(50)))
		}
		if i%100 == 99 {
			s.GC()
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a final collection must leave exactly the live rows.
	s.GC()
	if got := s.Size("PART"); got != len(oids) {
		t.Fatalf("final extent size = %d, want %d", got, len(oids))
	}
	for _, oid := range oids {
		if _, ok := s.Lookup(oid); !ok {
			t.Fatalf("live oid %v lost", oid)
		}
	}
}
