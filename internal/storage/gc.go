// Snapshot garbage collection. Deletes and updates leave superseded object
// states on their version chains and stale entries in the shared indexes
// and the materialization cache so that pinned snapshots keep reading the
// past; none of it is reclaimed automatically by Go because the chains stay
// reachable from the object table. GC computes the horizon — the oldest seq
// any live snapshot still pins — and prunes everything no snapshot at or
// above the horizon can observe: chain states superseded at the horizon,
// objects dead at every reachable version (removed from the object table
// and swept out of their extent's indexes), and cached materializations
// that no longer correspond to the current extent contents. A long-running
// server triggers it automatically every SetAutoGC mutations; unreleased
// snapshots are never corrupted — they only hold the horizon back.
package storage

import "repro/internal/value"

// GCStats reports what one collection reclaimed.
type GCStats struct {
	// Horizon is the seq the collection pruned up to: the oldest pinned
	// snapshot's seq, or the head seq when nothing was pinned.
	Horizon uint64
	// PrunedStates counts superseded object states unlinked from version
	// chains.
	PrunedStates int
	// RemovedObjects counts objects removed from the object table entirely
	// (deleted before the horizon, unreachable by every live snapshot).
	RemovedObjects int
	// PrunedIndexOIDs counts index slots swept for removed objects.
	PrunedIndexOIDs int
	// DroppedMaterializations counts stale extent materialization cache
	// entries released.
	DroppedMaterializations int
}

// SetAutoGC sets the automatic collection threshold: a GC runs after every n
// deletes/updates (default DefaultGCEvery); n <= 0 disables automatic
// collection, leaving reclamation to explicit GC calls.
func (s *Store) SetAutoGC(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gcEvery = n
}

// GC reclaims every object state, index slot and cached materialization
// that no live snapshot can reach. It is safe to run concurrently with
// readers and pinned snapshots: only state strictly below the oldest pin is
// touched. Writes are blocked for the duration (GC holds the writer lock).
func (s *Store) GC() GCStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcLocked()
}

// gcLocked is GC under an already-held writer lock (the auto-trigger runs
// inside Delete/Update).
func (s *Store) gcLocked() GCStats {
	head := s.head.Load()
	horizon := head.seq
	s.pinMu.Lock()
	for seq := range s.pins {
		if seq < horizon {
			horizon = seq
		}
	}
	s.pinMu.Unlock()
	st := GCStats{Horizon: horizon}

	// Pass 1: truncate chains below the horizon. The base — the newest state
	// with born <= horizon — is what every snapshot at or above the horizon
	// resolves to; nothing reachable ever dereferences base.prev, so the
	// truncation is safe under concurrent chain walks. A chain whose base is
	// a tombstone at the head of the chain (nothing can follow a tombstone —
	// dead objects reject further writes) is dead at every reachable
	// version: the object leaves the table, and its extent's indexes are
	// swept below.
	removed := map[string][]value.OID{}
	s.objects.Range(func(k, v any) bool {
		node := v.(*objVersion)
		base := node.at(horizon)
		if base == nil {
			return true // born entirely after the horizon: all states live
		}
		for n := base.prev; n != nil; n = n.prev {
			st.PrunedStates++
		}
		base.prev = nil
		if base == node && base.obj == nil {
			oid := k.(value.OID)
			s.objects.Delete(oid)
			st.RemovedObjects++
			removed[base.extent] = append(removed[base.extent], oid)
		}
		return true
	})

	// Pass 2: sweep removed oids out of their extent's indexes.
	if len(removed) > 0 {
		s.idxMu.Lock()
		for ext, oids := range removed {
			dead := make(map[value.OID]bool, len(oids))
			for _, oid := range oids {
				dead[oid] = true
			}
			for _, idx := range s.indexes[ext] {
				st.PrunedIndexOIDs += idx.prune(dead)
			}
		}
		s.idxMu.Unlock()
	}

	// Pass 3: drop materializations that no longer describe the current
	// extent contents (their oid list is not a live prefix of the head's).
	// They were kept alive only for old snapshots; any below the horizon are
	// unreachable now, and any above will be rebuilt on demand.
	s.matMu.Lock()
	for name, e := range s.mat {
		if !sharesPrefix(e.oids, head.extents[name]) {
			delete(s.mat, name)
			st.DroppedMaterializations++
		}
	}
	s.matMu.Unlock()
	// Columnar projections are derived from the same oid lists and go stale
	// under the same rule.
	s.colMu.Lock()
	for name, e := range s.colProjs {
		if !sharesPrefix(e.oids, head.extents[name]) {
			delete(s.colProjs, name)
			st.DroppedMaterializations++
		}
	}
	s.colMu.Unlock()

	s.mutations = 0
	return st
}

// prune removes dead oids from every entry of the index, dropping entries
// emptied entirely, and reports the number of slots removed. Caller holds
// the index write lock.
func (idx *extIndex) prune(dead map[value.OID]bool) int {
	pruned := 0
	filter := func(e *indexEntry) bool {
		kept := e.oids[:0]
		for _, oid := range e.oids {
			if dead[oid] {
				pruned++
				continue
			}
			kept = append(kept, oid)
		}
		e.oids = kept
		return len(kept) > 0
	}
	if idx.kind == HashIndex {
		for h, bucket := range idx.buckets {
			kept := bucket[:0]
			for _, e := range bucket {
				if filter(e) {
					kept = append(kept, e)
				}
			}
			if len(kept) == 0 {
				delete(idx.buckets, h)
			} else {
				idx.buckets[h] = kept
			}
		}
		return pruned
	}
	kept := idx.entries[:0]
	for _, e := range idx.entries {
		if filter(e) {
			kept = append(kept, e)
		}
	}
	idx.entries = kept
	return pruned
}
