package storage

import (
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// indexFixture builds a PART extent with known attribute values: prices
// 10, 20, 20, 30, 40 and colors red, blue, red, blue, red.
func indexFixture(t *testing.T) *Store {
	t.Helper()
	st := New(schema.SupplierPart())
	prices := []int64{10, 20, 20, 30, 40}
	colors := []string{"red", "blue", "red", "blue", "red"}
	for i := range prices {
		if _, err := st.Insert("PART", value.NewTuple(
			"pname", value.String([]string{"a", "b", "c", "d", "e"}[i]),
			"price", value.Int(prices[i]),
			"color", value.String(colors[i]),
		)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func names(t *testing.T, rows []value.Value) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, r := range rows {
		out[string(r.(*value.Tuple).MustGet("pname").(value.String))] = true
	}
	return out
}

func TestHashIndexLookup(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	rows, err := st.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatal(err)
	}
	got := names(t, rows)
	for _, want := range []string{"a", "c", "e"} {
		if !got[want] {
			t.Errorf("lookup(red) misses %s: %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("lookup(red) = %d rows, want 3", len(got))
	}
	// Missing key: empty, no error.
	rows, err = st.IndexLookup("PART", "color", value.String("mauve"))
	if err != nil || len(rows) != 0 {
		t.Errorf("lookup(mauve) = %v, %v; want empty", rows, err)
	}
	// Hash indexes refuse range probes.
	if _, err := st.IndexRange("PART", "color", nil, nil, false, false); err == nil {
		t.Error("range probe over a hash index must error")
	}
	// Unindexed attribute and unknown extent error.
	if _, err := st.IndexLookup("PART", "pname", value.String("a")); err == nil {
		t.Error("lookup on unindexed attribute must error")
	}
	if err := st.CreateIndex("NOPE", "x", HashIndex); err == nil {
		t.Error("CreateIndex on unknown extent must error")
	}
	if err := st.CreateIndex("PART", "price", IndexKind(99)); err == nil {
		t.Error("CreateIndex with unknown kind must error")
	}
}

// TestIndexRefusesIncompleteRows: an index access path must fail exactly
// where the scan-based plan's field read would, so indexing an attribute
// some object lacks errors — at build time, and at probe time after an
// invalidating insert.
func TestIndexRefusesIncompleteRows(t *testing.T) {
	st := indexFixture(t)
	if _, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("noprice"),
		"color", value.String("red"),
	)); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateIndex("PART", "price", OrderedIndex); err == nil {
		t.Fatal("CreateIndex over an incomplete attribute must error")
	}
	// Complete at build time, incomplete after an insert: the lazy rebuild
	// surfaces the error on the next probe.
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("nocolor"),
		"price", value.Int(5),
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.IndexLookup("PART", "color", value.String("red")); err == nil {
		t.Fatal("probe after an invalidating incomplete insert must error")
	}
}

func TestOrderedIndexLookupAndRange(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	// Equality works on ordered indexes too, duplicates included.
	rows, err := st.IndexLookup("PART", "price", value.Int(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("lookup(20) = %d rows, want 2", len(rows))
	}

	cases := []struct {
		lo, hi         value.Value
		loIncl, hiIncl bool
		want           int
	}{
		{value.Int(20), value.Int(30), true, true, 3},  // [20, 30]
		{value.Int(20), value.Int(30), false, true, 1}, // (20, 30]
		{value.Int(20), value.Int(30), true, false, 2}, // [20, 30)
		{nil, value.Int(20), false, true, 3},           // ≤ 20
		{value.Int(30), nil, false, false, 1},          // > 30
		{nil, nil, false, false, 5},                    // unbounded
		{value.Int(99), nil, true, false, 0},           // empty high range
	}
	for i, c := range cases {
		rows, err := st.IndexRange("PART", "price", c.lo, c.hi, c.loIncl, c.hiIncl)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("case %d: range = %d rows, want %d", i, len(rows), c.want)
		}
	}
}

// TestIndexInvalidatedOnInsertAndRebuilt: Insert marks the index stale; the
// next probe rebuilds and sees the new row.
func TestIndexInvalidatedOnInsertAndRebuilt(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	before, err := st.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("f"),
		"price", value.Int(99),
		"color", value.String("red"),
	)); err != nil {
		t.Fatal(err)
	}
	after, err := st.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("after insert lookup(red) = %d rows, want %d", len(after), len(before)+1)
	}
}

// TestEnsureIndexes creates hash indexes but keeps an existing ordered one.
func TestEnsureIndexes(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureIndexes("PART", "price", "color"); err != nil {
		t.Fatal(err)
	}
	idxs := st.IndexedAttrs("PART")
	if idxs["price"] != OrderedIndex {
		t.Errorf("EnsureIndexes replaced the existing ordered index: %v", idxs)
	}
	if idxs["color"] != HashIndex {
		t.Errorf("EnsureIndexes did not create the hash index: %v", idxs)
	}
	if got := st.IndexedAttrs("SUPPLIER"); got != nil {
		t.Errorf("IndexedAttrs(SUPPLIER) = %v, want nil", got)
	}
}

// TestIndexProbeMetering: probes count IndexProbes and the fetched objects
// meter ObjectReads; extent scans charge page-granular I/O.
func TestIndexProbeMetering(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	st.ResetStats()
	rows, err := st.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.IndexProbes != 1 {
		t.Errorf("IndexProbes = %d, want 1", got.IndexProbes)
	}
	if got.ObjectReads != len(rows) {
		t.Errorf("ObjectReads = %d, want %d (one per fetched object)", got.ObjectReads, len(rows))
	}

	// A full extent scan touches every page once — 5 objects on one page at
	// the default clustering factor.
	st.ResetStats()
	if _, err := st.Table("PART"); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.PageReads != 1 || got.ExtentScans != 1 {
		t.Errorf("scan metering = %+v, want 1 page read, 1 extent scan", got)
	}
	// The cached re-scan still pays the logical page I/O.
	if _, err := st.Table("PART"); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.PageReads != 2 {
		t.Errorf("cached re-scan PageReads = %d, want 2", got.PageReads)
	}
}

// TestConcurrentIndexProbes: concurrent probes (as the parallel operators
// issue) are race-clean, including the lazy rebuild after an insert.
func TestConcurrentIndexProbes(t *testing.T) {
	st := indexFixture(t)
	if err := st.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("g"),
		"price", value.Int(20),
		"color", value.String("red"),
	)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows, err := st.IndexLookup("PART", "price", value.Int(20))
			if err != nil || len(rows) != 3 {
				t.Errorf("concurrent lookup(20) = %d rows, %v; want 3", len(rows), err)
			}
		}()
	}
	wg.Wait()
}
