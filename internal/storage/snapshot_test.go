package storage

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func TestSnapshotRoundTrip(t *testing.T) {
	cat := schema.SupplierPart()
	st := New(cat)
	p1, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("bolt"), "price", value.Int(10), "color", value.String("red")))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("nut"), "price", value.Int(5), "color", value.String("blue")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("acme"),
		"parts", value.NewSet(value.NewTuple("pid", p1), value.NewTuple("pid", p2)))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("DELIVERY", value.NewTuple(
		"supplier", value.OID(3),
		"supply", value.NewSet(value.NewTuple("part", p1, "quantity", value.Int(4))),
		"date", value.Date(940101))); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := st.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadJSON(cat, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"PART", "SUPPLIER", "DELIVERY"} {
		a, err := st.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		b, err := st2.Table(ext)
		if err != nil {
			t.Fatal(err)
		}
		if !value.Equal(a, b) {
			t.Errorf("%s differs after round trip:\n a: %v\n b: %v", ext, a, b)
		}
	}
	// Object identity survives: dereferencing the old oid works.
	obj, err := st2.Deref(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(obj.MustGet("pname"), value.String("bolt")) {
		t.Errorf("deref after load = %v", obj)
	}
	// The allocator continues past loaded oids.
	p3, err := st2.Insert("PART", value.NewTuple(
		"pname", value.String("gear"), "price", value.Int(1), "color", value.String("red")))
	if err != nil {
		t.Fatal(err)
	}
	if p3 <= p1 || p3 <= p2 {
		t.Errorf("allocator reused oids: %v", p3)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cat := schema.SupplierPart()
	cases := map[string]string{
		"garbage":       `not json`,
		"unknown ext":   `{"extents":{"NOPE":[]}}`,
		"non-tuple":     `{"extents":{"PART":[{"int":1}]}}`,
		"missing id":    `{"extents":{"PART":[{"tuple":[["pname",{"str":"x"}]]}]}}`,
		"id not oid":    `{"extents":{"PART":[{"tuple":[["pid",{"int":1}]]}]}}`,
		"duplicate oid": `{"extents":{"PART":[{"tuple":[["pid",{"oid":1}]]},{"tuple":[["pid",{"oid":1}]]}]}}`,
	}
	for name, src := range cases {
		if _, err := LoadJSON(cat, strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Empty snapshot is fine.
	st, err := LoadJSON(cat, strings.NewReader(`{"extents":{}}`))
	if err != nil || st.Size("PART") != 0 {
		t.Errorf("empty snapshot: %v, %v", st, err)
	}
}
