package storage

import (
	"testing"

	"repro/internal/col"
	"repro/internal/value"
)

func TestColProjDecodesAndCaches(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "bolt", "red", 10)
	insertPart(t, s, "nut", "blue", 5)

	p1, err := s.ColProj("PART", []string{"price", "color"})
	if err != nil {
		t.Fatalf("ColProj: %v", err)
	}
	if p1.Len() != 2 {
		t.Fatalf("proj has %d rows, want 2", p1.Len())
	}
	if c := p1.Col("price"); c == nil || c.Kind != col.Int || c.Ints[0] != 10 || c.Ints[1] != 5 {
		t.Fatalf("price column = %+v", c)
	}
	if c := p1.Col("color"); c == nil || c.Kind != col.Str || c.Strs[1] != "blue" {
		t.Fatalf("color column = %+v", c)
	}

	// Same attrs, same version: served from cache.
	p2, err := s.ColProj("PART", []string{"price"})
	if err != nil {
		t.Fatalf("ColProj: %v", err)
	}
	if p2 != p1 {
		t.Fatalf("cache miss on identical version and subset attrs")
	}

	// A new attribute rebuilds with the union, so the old ones stay decoded.
	p3, err := s.ColProj("PART", []string{"pname"})
	if err != nil {
		t.Fatalf("ColProj: %v", err)
	}
	if p3 == p1 {
		t.Fatalf("superset miss must rebuild")
	}
	for _, a := range []string{"pname", "price", "color"} {
		if p3.Col(a) == nil {
			t.Fatalf("rebuilt projection lost attribute %q", a)
		}
	}

	if _, err := s.ColProj("NOPE", nil); err == nil {
		t.Fatalf("unknown extent must error")
	}
}

func TestColProjMVCCVisibility(t *testing.T) {
	s := newStore(t)
	o1 := insertPart(t, s, "bolt", "red", 10)
	insertPart(t, s, "nut", "blue", 5)

	old := s.Snapshot()
	defer old.Release()

	// Pending writes after the pin: an update, a delete, and an insert.
	if err := s.Update("PART", o1, value.NewTuple(
		"pname", value.String("bolt"), "price", value.Int(99), "color", value.String("green"))); err != nil {
		t.Fatalf("Update: %v", err)
	}
	o3 := insertPart(t, s, "washer", "red", 1)
	if err := s.Delete("PART", o3); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	// The pinned snapshot's projection reflects the pre-write state.
	pOld, err := old.ColProj("PART", []string{"price"})
	if err != nil {
		t.Fatalf("old ColProj: %v", err)
	}
	if pOld.Len() != 2 {
		t.Fatalf("old proj has %d rows, want 2", pOld.Len())
	}
	if c := pOld.Col("price"); c.Ints[0] != 10 {
		t.Fatalf("old proj sees updated price %d, want 10", c.Ints[0])
	}

	// A fresh snapshot sees the update and not the deleted row.
	fresh := s.Snapshot()
	defer fresh.Release()
	pNew, err := fresh.ColProj("PART", []string{"price"})
	if err != nil {
		t.Fatalf("fresh ColProj: %v", err)
	}
	if pNew.Len() != 2 {
		t.Fatalf("fresh proj has %d rows, want 2", pNew.Len())
	}
	prices := pNew.Col("price").Ints
	if prices[0] != 99 && prices[1] != 99 {
		t.Fatalf("fresh proj misses the update: %v", prices)
	}

	// Rows are identical (pointer-shared) with the snapshot's Table view.
	set, err := fresh.Table("PART")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	for i, r := range pNew.Rows {
		if r != set.Elems()[i] {
			t.Fatalf("proj row %d is not the Table row", i)
		}
	}
}

func TestColProjCacheDroppedByGC(t *testing.T) {
	s := newStore(t)
	s.SetAutoGC(0)
	o1 := insertPart(t, s, "bolt", "red", 10)
	if _, err := s.ColProj("PART", []string{"price"}); err != nil {
		t.Fatalf("ColProj: %v", err)
	}
	if err := s.Delete("PART", o1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st := s.GC()
	if st.DroppedMaterializations == 0 {
		t.Fatalf("GC dropped no cached projections/materializations: %+v", st)
	}
	p, err := s.ColProj("PART", []string{"price"})
	if err != nil {
		t.Fatalf("ColProj after GC: %v", err)
	}
	if p.Len() != 0 {
		t.Fatalf("post-delete proj has %d rows, want 0", p.Len())
	}
}
