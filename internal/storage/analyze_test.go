package storage

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// analyzeFixture builds a store with known statistics: 4 suppliers (2
// distinct names, parts sets of sizes 0,1,2,3) and 3 parts (3 distinct
// pnames, 2 distinct colors).
func analyzeFixture(t *testing.T) *Store {
	t.Helper()
	st := New(schema.SupplierPart())
	for i, color := range []string{"red", "red", "blue"} {
		if _, err := st.Insert("PART", value.NewTuple(
			"pname", value.String([]string{"a", "b", "c"}[i]),
			"price", value.Int(int64(10*i)),
			"color", value.String(color),
		)); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"n1", "n1", "n2", "n2"}
	for i, n := range names {
		parts := value.EmptySet()
		for j := 0; j < i; j++ {
			parts.Add(value.NewTuple("pid", value.OID(j+1)))
		}
		if _, err := st.Insert("SUPPLIER", value.NewTuple(
			"sname", value.String(n),
			"parts", parts,
		)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestAnalyzeCollectsTableStats(t *testing.T) {
	st := analyzeFixture(t)
	stats := st.Analyze()

	if got := stats.RowCount("SUPPLIER"); got != 4 {
		t.Errorf("RowCount(SUPPLIER) = %d, want 4", got)
	}
	if got := stats.RowCount("PART"); got != 3 {
		t.Errorf("RowCount(PART) = %d, want 3", got)
	}
	if got := stats.RowCount("DELIVERY"); got != 0 {
		t.Errorf("RowCount(DELIVERY) = %d, want 0 (empty extent)", got)
	}
	if got := stats.RowCount("NOPE"); got != -1 {
		t.Errorf("RowCount(NOPE) = %d, want -1 (unknown)", got)
	}

	if got := stats.DistinctValues("SUPPLIER", "sname"); got != 2 {
		t.Errorf("DistinctValues(SUPPLIER, sname) = %d, want 2", got)
	}
	if got := stats.DistinctValues("PART", "color"); got != 2 {
		t.Errorf("DistinctValues(PART, color) = %d, want 2", got)
	}
	if got := stats.DistinctValues("PART", "pname"); got != 3 {
		t.Errorf("DistinctValues(PART, pname) = %d, want 3", got)
	}
	// The id field is unique.
	if got := stats.DistinctValues("SUPPLIER", "eid"); got != 4 {
		t.Errorf("DistinctValues(SUPPLIER, eid) = %d, want 4", got)
	}
	if got := stats.DistinctValues("PART", "nope"); got != 0 {
		t.Errorf("DistinctValues of unknown attr = %d, want 0", got)
	}

	// parts sets have sizes 0,1,2,3 → average 1.5.
	if got := stats.AvgSetSize("SUPPLIER", "parts"); got != 1.5 {
		t.Errorf("AvgSetSize(SUPPLIER, parts) = %v, want 1.5", got)
	}
	// Scalar attributes report 0.
	if got := stats.AvgSetSize("SUPPLIER", "sname"); got != 0 {
		t.Errorf("AvgSetSize(SUPPLIER, sname) = %v, want 0", got)
	}

	// The legacy Size feed agrees with RowCount — including -1 (unknown) for
	// extents that were never analyzed. Reporting 0 made the planner's
	// threshold fallback treat unknown extents as empty (see
	// TestUnknownExtentSizeIsNotEmpty in internal/plan).
	if got := stats.Size("SUPPLIER"); got != 4 {
		t.Errorf("Size(SUPPLIER) = %d, want 4", got)
	}
	if got := stats.Size("NOPE"); got != -1 {
		t.Errorf("Size(NOPE) = %d, want -1 (unknown, not empty)", got)
	}
}

// TestAnalyzeMixedScalarSetAttribute: an attribute that is a set in some
// rows and a scalar in others must be recorded as unknown. The old behavior
// skipped the set rows but still emitted a Distinct entry covering only the
// scalar rows — an undercounted NDV presented as exact — and dropped the
// AvgSetSize silently.
func TestAnalyzeMixedScalarSetAttribute(t *testing.T) {
	st := New(schema.SupplierPart())
	// Three suppliers: "parts" is a set for two of them, a scalar for one.
	for i := 0; i < 2; i++ {
		if _, err := st.Insert("SUPPLIER", value.NewTuple(
			"sname", value.String("n"),
			"parts", value.NewSet(value.NewTuple("pid", value.OID(1))),
		)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("n"),
		"parts", value.Int(7),
	)); err != nil {
		t.Fatal(err)
	}
	stats := st.Analyze()

	if got := stats.DistinctValues("SUPPLIER", "parts"); got != 0 {
		t.Errorf("mixed attribute has Distinct = %d, want 0 (unknown)", got)
	}
	if got := stats.AvgSetSize("SUPPLIER", "parts"); got != 0 {
		t.Errorf("mixed attribute has AvgSetSize = %v, want 0 (unknown)", got)
	}
	ts := stats.Tables["SUPPLIER"]
	if len(ts.Mixed) != 1 || ts.Mixed[0] != "parts" {
		t.Errorf("Mixed = %v, want [parts]", ts.Mixed)
	}
	// Mixed attributes still appear in the attribute listing (the join-order
	// enumerator resolves predicates through it).
	found := false
	for _, a := range stats.Attributes("SUPPLIER") {
		if a == "parts" {
			found = true
		}
	}
	if !found {
		t.Errorf("Attributes(SUPPLIER) = %v misses the mixed attribute", stats.Attributes("SUPPLIER"))
	}
	// Scalar statistics of the other attributes are unaffected.
	if got := stats.DistinctValues("SUPPLIER", "sname"); got != 1 {
		t.Errorf("DistinctValues(sname) = %d, want 1", got)
	}
	if !strings.Contains(stats.String(), "mixed scalar/set") {
		t.Errorf("stats report does not mark the mixed attribute:\n%s", stats.String())
	}
}

// TestAnalyzePartiallySetAttribute: set-valued in some rows, absent in the
// rest — shape unknown, no AvgSetSize, listed as mixed.
func TestAnalyzePartiallySetAttribute(t *testing.T) {
	st := New(schema.SupplierPart())
	if _, err := st.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("a"),
		"parts", value.NewSet(value.NewTuple("pid", value.OID(1))),
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("b"),
	)); err != nil {
		t.Fatal(err)
	}
	stats := st.Analyze()
	if got := stats.AvgSetSize("SUPPLIER", "parts"); got != 0 {
		t.Errorf("partially-set attribute has AvgSetSize = %v, want 0", got)
	}
	if ts := stats.Tables["SUPPLIER"]; len(ts.Mixed) != 1 || ts.Mixed[0] != "parts" {
		t.Errorf("Mixed = %v, want [parts]", ts.Mixed)
	}
}

// TestAnalyzeRecordsIndexes: Analyze surfaces the index registry so the
// planner can admit index access paths.
func TestAnalyzeRecordsIndexes(t *testing.T) {
	st := analyzeFixture(t)
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	if err := st.CreateIndex("PART", "price", OrderedIndex); err != nil {
		t.Fatal(err)
	}
	stats := st.Analyze()
	if got := stats.IndexKind("PART", "color"); got != "hash" {
		t.Errorf("IndexKind(PART, color) = %q, want hash", got)
	}
	if got := stats.IndexKind("PART", "price"); got != "ordered" {
		t.Errorf("IndexKind(PART, price) = %q, want ordered", got)
	}
	if got := stats.IndexKind("PART", "pname"); got != "" {
		t.Errorf("IndexKind(PART, pname) = %q, want \"\"", got)
	}
	if got := stats.IndexKind("NOPE", "x"); got != "" {
		t.Errorf("IndexKind(NOPE, x) = %q, want \"\"", got)
	}
	if !strings.Contains(stats.String(), "[hash index]") ||
		!strings.Contains(stats.String(), "[ordered index]") {
		t.Errorf("stats report does not mark indexed attributes:\n%s", stats.String())
	}
}

func TestAnalyzeDoesNotPerturbIOMeters(t *testing.T) {
	st := analyzeFixture(t)
	st.ResetStats()
	_ = st.Analyze()
	if got := st.Stats(); got.ObjectReads != 0 || got.ExtentScans != 0 {
		t.Errorf("Analyze touched the I/O meters: %+v", got)
	}
}

// TestAnalyzeBuildsHistograms: scalar attributes get value histograms,
// set-valued attributes element histograms, and the fractions line up with
// the fixture's known distribution.
func TestAnalyzeBuildsHistograms(t *testing.T) {
	st := analyzeFixture(t)
	stats := st.Analyze()

	h := stats.Histogram("PART", "color")
	if h == nil {
		t.Fatal("no histogram for PART.color")
	}
	if got := h.EqFraction(value.String("red")); got != 2.0/3.0 {
		t.Errorf("EqFraction(red) = %v, want 2/3", got)
	}
	if got := h.EqFraction(value.String("blue")); got != 1.0/3.0 {
		t.Errorf("EqFraction(blue) = %v, want 1/3", got)
	}
	// The set-valued attribute's histogram describes the pooled elements:
	// sets of sizes 0,1,2,3 over pid tuples → 6 elements total.
	eh := stats.Histogram("SUPPLIER", "parts")
	if eh == nil {
		t.Fatal("no element histogram for SUPPLIER.parts")
	}
	if eh.Rows != 6 {
		t.Errorf("element histogram rows = %d, want 6", eh.Rows)
	}
	if got := stats.Histogram("SUPPLIER", "nope"); got != nil {
		t.Errorf("unknown attribute histogram = %v, want nil", got)
	}
	if got := stats.Histogram("NOPE", "x"); got != nil {
		t.Errorf("unknown extent histogram = %v, want nil", got)
	}
}

// TestAnalyzeHistogramEdgeCases: an empty extent has no histograms at all, a
// single-valued attribute collapses to one exact bucket, and a mixed
// scalar/set attribute stays unknown — no histogram that would present a
// partial distribution as the whole.
func TestAnalyzeHistogramEdgeCases(t *testing.T) {
	st := analyzeFixture(t)
	stats := st.Analyze()
	// DELIVERY is empty: analyzed (rows 0) but without histograms.
	if ts, ok := stats.Tables["DELIVERY"]; !ok {
		t.Fatal("empty extent not analyzed")
	} else if len(ts.Hist) != 0 || len(ts.ElemHist) != 0 {
		t.Errorf("empty extent has histograms: %v %v", ts.Hist, ts.ElemHist)
	}

	// Single-value attribute: one bucket, exact.
	single := New(schema.SupplierPart())
	for i := 0; i < 5; i++ {
		if _, err := single.Insert("PART", value.NewTuple(
			"pname", value.String("same"), "price", value.Int(9),
			"color", value.String("red"))); err != nil {
			t.Fatal(err)
		}
	}
	h := single.Analyze().Histogram("PART", "pname")
	if h == nil || len(h.Buckets) != 1 || h.Buckets[0].NDV != 1 || h.Buckets[0].Rows != 5 {
		t.Fatalf("single-value histogram = %v, want one exact bucket", h)
	}
	if got := h.EqFraction(value.String("same")); got != 1 {
		t.Errorf("EqFraction(same) = %v, want 1", got)
	}

	// Mixed scalar/set: no histogram under either map.
	mixed := New(schema.SupplierPart())
	if _, err := mixed.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("a"),
		"parts", value.NewSet(value.NewTuple("pid", value.OID(1))))); err != nil {
		t.Fatal(err)
	}
	if _, err := mixed.Insert("SUPPLIER", value.NewTuple(
		"sname", value.String("b"), "parts", value.Int(7))); err != nil {
		t.Fatal(err)
	}
	if got := mixed.Analyze().Histogram("SUPPLIER", "parts"); got != nil {
		t.Errorf("mixed attribute has a histogram: %v", got)
	}
}

// TestAnalyzeMemoizedAndInvalidated: Analyze memoizes its result; Insert and
// CreateIndex invalidate it, and the rebuilt statistics (histograms
// included) reflect the new state.
func TestAnalyzeMemoizedAndInvalidated(t *testing.T) {
	st := analyzeFixture(t)
	first := st.Analyze()
	if second := st.Analyze(); second != first {
		t.Fatal("Analyze did not memoize between mutations")
	}

	if _, err := st.Insert("PART", value.NewTuple(
		"pname", value.String("d"), "price", value.Int(99),
		"color", value.String("green"))); err != nil {
		t.Fatal(err)
	}
	rebuilt := st.Analyze()
	if rebuilt == first {
		t.Fatal("Analyze result not invalidated by Insert")
	}
	if got := rebuilt.RowCount("PART"); got != 4 {
		t.Errorf("rebuilt RowCount(PART) = %d, want 4", got)
	}
	h := rebuilt.Histogram("PART", "color")
	if h == nil || h.EqFraction(value.String("green")) != 0.25 {
		t.Errorf("rebuilt histogram misses the inserted row: %v", h)
	}
	// Stale pre-insert statistics still answer from their snapshot.
	if old := first.Histogram("PART", "color"); old.EqFraction(value.String("green")) != 0 {
		t.Errorf("old snapshot mutated: %v", old)
	}

	// Index registration invalidates too (index kinds are collected).
	if err := st.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatal(err)
	}
	withIdx := st.Analyze()
	if withIdx == rebuilt {
		t.Fatal("Analyze result not invalidated by CreateIndex")
	}
	if got := withIdx.IndexKind("PART", "color"); got != "hash" {
		t.Errorf("rebuilt IndexKind = %q, want hash", got)
	}
}

// TestDBStatsStringHistograms: the report marks attributes that carry
// histograms, and Histogram.String renders buckets.
func TestDBStatsStringHistograms(t *testing.T) {
	stats := analyzeFixture(t).Analyze()
	out := stats.String()
	if !strings.Contains(out, "hist(") {
		t.Errorf("stats report does not mention histograms:\n%s", out)
	}
	hs := stats.Histogram("PART", "price").String()
	if !strings.Contains(hs, "equi-depth 3 rows") {
		t.Errorf("histogram rendering = %q", hs)
	}
}

func TestDBStatsString(t *testing.T) {
	stats := analyzeFixture(t).Analyze()
	out := stats.String()
	for _, want := range []string{"SUPPLIER: 4 rows", "PART: 3 rows",
		".parts: set-valued, avg 1.5 elems", ".color: 2 distinct"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}
