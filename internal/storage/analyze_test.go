package storage

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

// analyzeFixture builds a store with known statistics: 4 suppliers (2
// distinct names, parts sets of sizes 0,1,2,3) and 3 parts (3 distinct
// pnames, 2 distinct colors).
func analyzeFixture(t *testing.T) *Store {
	t.Helper()
	st := New(schema.SupplierPart())
	for i, color := range []string{"red", "red", "blue"} {
		if _, err := st.Insert("PART", value.NewTuple(
			"pname", value.String([]string{"a", "b", "c"}[i]),
			"price", value.Int(int64(10*i)),
			"color", value.String(color),
		)); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"n1", "n1", "n2", "n2"}
	for i, n := range names {
		parts := value.EmptySet()
		for j := 0; j < i; j++ {
			parts.Add(value.NewTuple("pid", value.OID(j+1)))
		}
		if _, err := st.Insert("SUPPLIER", value.NewTuple(
			"sname", value.String(n),
			"parts", parts,
		)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestAnalyzeCollectsTableStats(t *testing.T) {
	st := analyzeFixture(t)
	stats := st.Analyze()

	if got := stats.RowCount("SUPPLIER"); got != 4 {
		t.Errorf("RowCount(SUPPLIER) = %d, want 4", got)
	}
	if got := stats.RowCount("PART"); got != 3 {
		t.Errorf("RowCount(PART) = %d, want 3", got)
	}
	if got := stats.RowCount("DELIVERY"); got != 0 {
		t.Errorf("RowCount(DELIVERY) = %d, want 0 (empty extent)", got)
	}
	if got := stats.RowCount("NOPE"); got != -1 {
		t.Errorf("RowCount(NOPE) = %d, want -1 (unknown)", got)
	}

	if got := stats.DistinctValues("SUPPLIER", "sname"); got != 2 {
		t.Errorf("DistinctValues(SUPPLIER, sname) = %d, want 2", got)
	}
	if got := stats.DistinctValues("PART", "color"); got != 2 {
		t.Errorf("DistinctValues(PART, color) = %d, want 2", got)
	}
	if got := stats.DistinctValues("PART", "pname"); got != 3 {
		t.Errorf("DistinctValues(PART, pname) = %d, want 3", got)
	}
	// The id field is unique.
	if got := stats.DistinctValues("SUPPLIER", "eid"); got != 4 {
		t.Errorf("DistinctValues(SUPPLIER, eid) = %d, want 4", got)
	}
	if got := stats.DistinctValues("PART", "nope"); got != 0 {
		t.Errorf("DistinctValues of unknown attr = %d, want 0", got)
	}

	// parts sets have sizes 0,1,2,3 → average 1.5.
	if got := stats.AvgSetSize("SUPPLIER", "parts"); got != 1.5 {
		t.Errorf("AvgSetSize(SUPPLIER, parts) = %v, want 1.5", got)
	}
	// Scalar attributes report 0.
	if got := stats.AvgSetSize("SUPPLIER", "sname"); got != 0 {
		t.Errorf("AvgSetSize(SUPPLIER, sname) = %v, want 0", got)
	}

	// The legacy Size feed agrees with RowCount, and is 0 for unknowns.
	if got := stats.Size("SUPPLIER"); got != 4 {
		t.Errorf("Size(SUPPLIER) = %d, want 4", got)
	}
	if got := stats.Size("NOPE"); got != 0 {
		t.Errorf("Size(NOPE) = %d, want 0", got)
	}
}

func TestAnalyzeDoesNotPerturbIOMeters(t *testing.T) {
	st := analyzeFixture(t)
	st.ResetStats()
	_ = st.Analyze()
	if got := st.Stats(); got.ObjectReads != 0 || got.ExtentScans != 0 {
		t.Errorf("Analyze touched the I/O meters: %+v", got)
	}
}

func TestDBStatsString(t *testing.T) {
	stats := analyzeFixture(t).Analyze()
	out := stats.String()
	for _, want := range []string{"SUPPLIER: 4 rows", "PART: 3 rows",
		".parts: set-valued, avg 1.5 elems", ".color: 2 distinct"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}
