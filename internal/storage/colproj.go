// Columnar projection reader for the batch executor. A projection decodes
// the referenced attributes of an extent once into typed slices (col.Proj);
// ColProj serves them snapshot-pinned — the rows are exactly the tuples the
// snapshot's Table would return, resolved through the same version chains,
// so batches respect MVCC visibility under concurrent deletes and updates.
//
// Projections are cached per extent like materializations (store.mat): an
// exact hit (same length, same backing oid array, attributes already
// decoded) is served as-is; anything else rebuilds, decoding the union of
// the requested and previously decoded attributes so pipelines alternating
// attribute sets converge on one cached projection instead of thrashing.
package storage

import (
	"fmt"

	"repro/internal/col"
	"repro/internal/value"
)

// colEntry is one cached columnar projection, identified like matEntry by
// the oid list it was built from and stamped with its version seq.
type colEntry struct {
	seq  uint64
	oids []value.OID
	proj *col.Proj
}

// ColProj returns a columnar projection of the extent as of the snapshot,
// with (at least) the named attributes decoded. The projection is shared and
// immutable; the scan is metered like Table.
func (sn *Snapshot) ColProj(extent string, attrs []string) (*col.Proj, error) {
	oids, ok := sn.v.extents[extent]
	if !ok {
		if _, known := sn.st.cat.ByExtent(extent); !known {
			return nil, fmt.Errorf("storage: unknown base table %q", extent)
		}
	}
	proj := sn.st.colProj(extent, oids, sn.v.seq, attrs)
	sn.st.meterScan(len(oids))
	return proj, nil
}

// ColProj is the latest-version convenience form (pins and releases
// internally, like Table).
func (s *Store) ColProj(extent string, attrs []string) (*col.Proj, error) {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.ColProj(extent, attrs)
}

// colProj serves the per-extent projection cache. The rows come from
// materialize, so visibility and row identity match Table exactly.
func (s *Store) colProj(name string, oids []value.OID, seq uint64, attrs []string) *col.Proj {
	set := s.materialize(name, oids, seq)
	s.colMu.Lock()
	defer s.colMu.Unlock()
	e := s.colProjs[name]
	if e.proj != nil && len(e.oids) == len(oids) && sharesPrefix(e.oids, oids) &&
		hasAttrs(e.proj, attrs) {
		return e.proj
	}
	union := attrs
	if e.proj != nil {
		union = unionAttrs(e.proj.Attrs(), attrs)
	}
	proj := col.New(name, set.Elems(), union)
	if seq >= e.seq || e.proj == nil {
		s.colProjs[name] = colEntry{seq: seq, oids: oids, proj: proj}
	}
	return proj
}

// hasAttrs reports whether every requested attribute is already decoded.
func hasAttrs(p *col.Proj, attrs []string) bool {
	for _, a := range attrs {
		if p.Col(a) == nil {
			return false
		}
	}
	return true
}

// unionAttrs merges two attribute lists preserving first-seen order.
func unionAttrs(have, want []string) []string {
	out := make([]string, 0, len(have)+len(want))
	seen := make(map[string]bool, len(have)+len(want))
	for _, lst := range [2][]string{have, want} {
		for _, a := range lst {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}
