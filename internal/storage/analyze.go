// ANALYZE-style statistics collection. The paper leaves the choice among
// join strategies to "the optimizer" (§5.1) without saying where its
// knowledge comes from; a modern engine answers with collected statistics.
// Analyze scans every extent once and records, per base table, the row
// count, per-attribute distinct-value counts, equi-depth histograms of the
// scalar attribute values (and of set-element values), and the average
// cardinality of set-valued attributes. The result feeds the estimator in
// internal/plan, which prices the physical join operators and picks the
// cheapest. The collected DBStats is memoized on the store and invalidated
// by Insert and index registration, so repeated Analyze calls between
// mutations are free.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/value"
)

// TableStats holds the collected statistics of one extent.
type TableStats struct {
	// Rows is the extent cardinality.
	Rows int
	// Distinct maps a scalar top-level attribute name to its number of
	// distinct values. Set-valued attributes are not counted — hashing whole
	// sets per row is expensive and no consumer prices set NDV; their shape
	// is AvgSetSize.
	Distinct map[string]int
	// AvgSetSize maps each set-valued attribute to the mean cardinality of
	// its sets across the extent.
	AvgSetSize map[string]float64
	// Mixed lists attributes that are set-valued in only some rows (or
	// scalar in some, set in others): their statistics are unknown — a
	// distinct count over just the scalar rows would be an undercount
	// presented as exact, and an average over just the set rows likewise.
	Mixed []string
	// Indexes maps each indexed attribute to its index kind ("hash" or
	// "ordered"), as registered with Store.CreateIndex at collection time.
	Indexes map[string]string
	// Hist maps each scalar attribute to the equi-depth histogram of its
	// values; Mixed attributes get none (the same undercount argument as
	// Distinct applies).
	Hist map[string]*stats.Histogram
	// ElemHist maps each set-valued attribute to the equi-depth histogram of
	// the elements pooled across all of the extent's sets — the element
	// distribution a membership probe runs against.
	ElemHist map[string]*stats.Histogram
}

// DBStats is the database-wide result of Analyze: extent name → TableStats.
// It implements the plan package's Statistics interface.
type DBStats struct {
	Tables map[string]TableStats
}

// RowCount reports the collected cardinality of an extent, or -1 if the
// extent was not analyzed.
func (d *DBStats) RowCount(extent string) int {
	t, ok := d.Tables[extent]
	if !ok {
		return -1
	}
	return t.Rows
}

// DistinctValues reports the collected distinct-value count of an attribute,
// or 0 if unknown.
func (d *DBStats) DistinctValues(extent, attr string) int {
	return d.Tables[extent].Distinct[attr]
}

// AvgSetSize reports the mean cardinality of a set-valued attribute, or 0 if
// the attribute is not set-valued or was not analyzed.
func (d *DBStats) AvgSetSize(extent, attr string) float64 {
	return d.Tables[extent].AvgSetSize[attr]
}

// Attributes lists an extent's collected top-level attribute names (scalar,
// set-valued, and mixed), sorted, or nil if the extent was not analyzed. The
// planner's join-order enumerator uses it to resolve which base relation a
// predicate over concatenated join tuples refers to, so mixed attributes are
// listed even though their statistics are unknown.
func (d *DBStats) Attributes(extent string) []string {
	t, ok := d.Tables[extent]
	if !ok {
		return nil
	}
	attrs := make([]string, 0, len(t.Distinct)+len(t.AvgSetSize)+len(t.Mixed))
	for a := range t.Distinct {
		attrs = append(attrs, a)
	}
	for a := range t.AvgSetSize {
		attrs = append(attrs, a)
	}
	attrs = append(attrs, t.Mixed...)
	sort.Strings(attrs)
	return attrs
}

// Histogram reports the equi-depth histogram collected for extent.attr, or
// nil when none was (unknown extent, mixed attribute, empty extent). For a
// scalar attribute it describes the attribute's values; for a set-valued
// attribute, the distribution of the set elements across the extent.
func (d *DBStats) Histogram(extent, attr string) *stats.Histogram {
	t, ok := d.Tables[extent]
	if !ok {
		return nil
	}
	if h, ok := t.Hist[attr]; ok {
		return h
	}
	return t.ElemHist[attr]
}

// IndexKind reports the kind of the secondary index on extent.attr at
// ANALYZE time ("hash" or "ordered"), or "" when the attribute is not
// indexed. The planner uses it to admit index access paths.
func (d *DBStats) IndexKind(extent, attr string) string {
	return d.Tables[extent].Indexes[attr]
}

// Size makes DBStats double as the planner's legacy cardinality feed
// (plan.Stats), so one collected object can drive both the threshold
// fallback and the cost model. An extent that was never analyzed reports -1
// (unknown), not 0: reporting 0 made the threshold fallback treat unknown
// extents as empty and lock in the serial operators no matter how large the
// extent really was. A negative size sends the planner down its no-stats
// path instead.
func (d *DBStats) Size(extent string) int {
	return d.RowCount(extent)
}

// String renders the collected statistics as a small report, one block per
// extent, for cmd/adlbench -analyze and debugging.
func (d *DBStats) String() string {
	names := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := d.Tables[n]
		fmt.Fprintf(&b, "%s: %d rows\n", n, t.Rows)
		attrs := d.Attributes(n)
		mixed := map[string]bool{}
		for _, a := range t.Mixed {
			mixed[a] = true
		}
		for _, a := range attrs {
			idx := ""
			if kind, ok := t.Indexes[a]; ok {
				idx = fmt.Sprintf(" [%s index]", kind)
			}
			hist := ""
			if h := d.Histogram(n, a); h != nil {
				hist = fmt.Sprintf(", hist(%d buckets)", len(h.Buckets))
			}
			avg, isSet := t.AvgSetSize[a]
			switch {
			case mixed[a]:
				fmt.Fprintf(&b, "  .%s: mixed scalar/set, statistics unknown%s\n", a, idx)
			case isSet:
				fmt.Fprintf(&b, "  .%s: set-valued, avg %.1f elems%s%s\n", a, avg, hist, idx)
			default:
				fmt.Fprintf(&b, "  .%s: %d distinct%s%s\n", a, t.Distinct[a], hist, idx)
			}
		}
	}
	return b.String()
}

// distinctCounter counts distinct values exactly: values are bucketed by
// hash and disambiguated with Equal, so hash collisions do not inflate the
// count.
type distinctCounter struct {
	buckets map[uint64][]value.Value
	n       int
}

func newDistinctCounter() *distinctCounter {
	return &distinctCounter{buckets: map[uint64][]value.Value{}}
}

func (c *distinctCounter) add(v value.Value) {
	h := value.Hash(v)
	for _, seen := range c.buckets[h] {
		if value.Equal(seen, v) {
			return
		}
	}
	c.buckets[h] = append(c.buckets[h], v)
	c.n++
}

// Analyze scans every extent of the store and collects statistics. It uses
// the raw object map rather than Table so collection does not perturb the
// I/O meters or the extent cache. The result is memoized: repeated calls
// return the same *DBStats until an Insert or index registration invalidates
// it, at which point the next call rebuilds (histograms included).
func (s *Store) Analyze() *DBStats {
	s.cacheMu.RLock()
	cached := s.statsCache
	s.cacheMu.RUnlock()
	if cached != nil {
		return cached
	}
	db := &DBStats{Tables: map[string]TableStats{}}
	for _, ext := range s.cat.Extents() {
		oids := s.extents[ext]
		ts := TableStats{
			Rows:       len(oids),
			Distinct:   map[string]int{},
			AvgSetSize: map[string]float64{},
		}
		counters := map[string]*distinctCounter{}
		vals := map[string][]value.Value{}  // scalar values per attr, all rows
		elems := map[string][]value.Value{} // pooled set elements per attr
		setRows := map[string]int{}         // rows carrying that attr as a set
		for _, oid := range oids {
			obj := s.objects[oid]
			for i := 0; i < obj.Len(); i++ {
				name, v := obj.At(i)
				if set, ok := v.(*value.Set); ok {
					elems[name] = append(elems[name], set.Elems()...)
					setRows[name]++
					continue
				}
				c, ok := counters[name]
				if !ok {
					c = newDistinctCounter()
					counters[name] = c
				}
				c.add(v)
				vals[name] = append(vals[name], v)
			}
		}
		mixed := map[string]bool{}
		for name, c := range counters {
			if setRows[name] > 0 {
				// Set-valued in some rows, scalar in others: a Distinct
				// count over just the scalar rows would be an undercount
				// presented as exact. Record the attribute as unknown.
				mixed[name] = true
				continue
			}
			ts.Distinct[name] = c.n
		}
		for name, rows := range setRows {
			if mixed[name] {
				continue
			}
			// Only attributes that are sets in every row count as set-valued;
			// sets in only some rows (absent elsewhere) are unknown too.
			if rows == ts.Rows && rows > 0 {
				ts.AvgSetSize[name] = float64(len(elems[name])) / float64(rows)
			} else if rows > 0 {
				mixed[name] = true
			}
		}
		// Histograms, under the same unknown-handling as the counts: scalar
		// attributes over their values, set-valued attributes over the pooled
		// elements, mixed attributes none.
		for name := range ts.Distinct {
			if h := stats.NewEquiDepth(vals[name], stats.DefaultBuckets); h != nil {
				if ts.Hist == nil {
					ts.Hist = map[string]*stats.Histogram{}
				}
				ts.Hist[name] = h
			}
		}
		for name := range ts.AvgSetSize {
			if h := stats.NewEquiDepth(elems[name], stats.DefaultBuckets); h != nil {
				if ts.ElemHist == nil {
					ts.ElemHist = map[string]*stats.Histogram{}
				}
				ts.ElemHist[name] = h
			}
		}
		for name := range mixed {
			ts.Mixed = append(ts.Mixed, name)
		}
		sort.Strings(ts.Mixed)
		if idxs := s.IndexedAttrs(ext); len(idxs) > 0 {
			ts.Indexes = map[string]string{}
			for attr, kind := range idxs {
				ts.Indexes[attr] = kind.String()
			}
		}
		db.Tables[ext] = ts
	}
	s.cacheMu.Lock()
	s.statsCache = db
	s.cacheMu.Unlock()
	return db
}
